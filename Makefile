# Local developer targets. `make ci` runs exactly what
# .github/workflows/ci.yml runs, in the same order.

GO ?= go

.PHONY: build examples test race bench bench-cpacache bench-compare bench-gate bench-multicore bench-gate-server bench-record opt-scoreboard alloc-guard fuzz-smoke serve loadtest server-smoke chaos-smoke mem-storm fmt fmt-check vet staticcheck vulncheck docs-check ci

build:
	$(GO) build ./...

examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass of every benchmark — a smoke test that the bench harness
# still runs, not a measurement. pkg/cpacache is excluded here because
# bench-cpacache gives it its own (longer) smoke pass.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x $$($(GO) list ./... | grep -v pkg/cpacache)

# Quick sanity pass over the cpacache hot paths (the BENCH_cpacache.json
# baseline uses -benchtime=1s instead).
bench-cpacache:
	$(GO) test -run=NONE -bench=. -benchtime=100x ./pkg/cpacache/

# Compare a fresh cpacache bench run against the checked-in
# BENCH_cpacache.json baseline with benchstat (skipped when benchstat is
# not installed: go install golang.org/x/perf/cmd/benchstat@latest).
# cmd/benchjson renders the JSON baseline in benchstat's input format.
bench-compare:
	@if ! command -v benchstat >/dev/null; then \
		echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); skipping"; exit 0; fi
	$(GO) run ./cmd/benchjson BENCH_cpacache.json > /tmp/bench_baseline.txt
	$(GO) test -run=NONE -bench='GetHit|SetChurn|ParallelGetSet|Rebalance|GetBatch|SetBatch' \
		-benchtime=1s -count=5 ./pkg/cpacache/ > /tmp/bench_fresh.txt
	benchstat /tmp/bench_baseline.txt /tmp/bench_fresh.txt

# Bench-regression gate: run the two headline hot-path benchmarks and
# fail if the best-of-3 ns/op regresses more than 15% against the
# checked-in BENCH_cpacache.json (or allocs/op grow at all). CI runs
# this; it is a smoke gate for gross regressions, not a statistically
# careful comparison — use bench-compare for that. The server req/s
# baseline (bench-gate-server) rides along as a prerequisite so one
# target gates both numbers.
bench-gate: bench-gate-server
	$(GO) test -run=NONE -bench='^BenchmarkGetHit$$|^BenchmarkParallelGetSet$$' \
		-benchtime=1s -count=3 ./pkg/cpacache/ | tee /tmp/bench_gate.txt
	$(GO) run ./cmd/benchjson -gate -tolerance 0.15 BENCH_cpacache.json /tmp/bench_gate.txt

# Multi-core scaling lane: the parallel hot-path benchmarks at
# GOMAXPROCS=1 vs GOMAXPROCS=NumCPU, gated on BenchmarkParallelGetHit
# showing at least 1.3x parallel speedup. On a single-core host the
# comparison is meaningless, so it degrades to an informational run.
bench-multicore:
	$(GO) test -run=NONE -bench='^BenchmarkParallelGetHit$$|^BenchmarkParallelGetSet$$' \
		-benchtime=1s -count=3 -cpu 1 ./pkg/cpacache/ | tee /tmp/bench_cpu1.txt
	$(GO) test -run=NONE -bench='^BenchmarkFig7Serial$$|^BenchmarkFig7Parallel$$' \
		-benchtime=1x -count=3 -cpu 1 . | tee -a /tmp/bench_cpu1.txt
	$(GO) test -run=NONE -bench='^BenchmarkParallelGetHit$$|^BenchmarkParallelGetSet$$' \
		-benchtime=1s -count=3 -cpu $$(nproc) ./pkg/cpacache/ | tee /tmp/bench_cpuN.txt
	$(GO) test -run=NONE -bench='^BenchmarkFig7Serial$$|^BenchmarkFig7Parallel$$' \
		-benchtime=1x -count=3 -cpu $$(nproc) . | tee -a /tmp/bench_cpuN.txt
	@if [ "$$(nproc)" -le 1 ]; then \
		echo "single-core host: reporting scaling informationally, no gate"; \
		$(GO) run ./cmd/benchjson -scaling -min 0 -benches '' /tmp/bench_cpu1.txt /tmp/bench_cpuN.txt; \
	else \
		$(GO) run ./cmd/benchjson -scaling -min 1.3 -benches BenchmarkParallelGetHit \
			/tmp/bench_cpu1.txt /tmp/bench_cpuN.txt; \
	fi

# Server throughput gate: boot cpacached on a free port, drive it with
# cpaload, and fail if req/s drops more than 40% below the committed
# BENCH_cpacached.json. The tolerance is wide because the baseline and
# the CI runner are different hosts; it catches gross regressions
# (an accidental per-command syscall, a lost pipelining path), not drift.
bench-gate-server:
	$(GO) build -o /tmp/cpacached ./cmd/cpacached
	$(GO) build -o /tmp/cpaload ./cmd/cpaload
	/tmp/cpacached -addr 127.0.0.1:0 -policy bt 2> /tmp/cpacached_gate.log & \
	pid=$$!; \
	for i in $$(seq 50); do \
		addr=$$(grep -oE 'listening on [^ ]+' /tmp/cpacached_gate.log | awk '{print $$3}'); \
		[ -n "$$addr" ] && break; sleep 0.1; done; \
	if [ -z "$$addr" ]; then echo "cpacached never came up"; kill $$pid; exit 1; fi; \
	/tmp/cpaload -addr "$$addr" -conns 4 -pipeline 32 -requests 400000 \
		-keyspace 20000 -value-size 128 -set-ratio 0.1 -zipf 1.1 \
		-json /tmp/cpaload_fresh.json; rc=$$?; \
	kill -TERM $$pid; wait $$pid || rc=1; \
	[ $$rc -eq 0 ] || exit $$rc; \
	$(GO) run ./cmd/benchjson -gate-server -tolerance 0.40 \
		BENCH_cpacached.json /tmp/cpaload_fresh.json

# Re-record the BENCH_cpacache.json hot-path baseline from a fresh run.
# REFUSES on a single-core host or with GOMAXPROCS=1: the parallel
# benchmarks degenerate to serial there, and committing those numbers
# would poison bench-gate and bench-multicore for every other machine.
# The shell guard catches the obvious case early; benchjson -record
# re-checks the GOMAXPROCS suffix actually present in the bench output,
# so piping in a stale single-core file fails too. Procedure and
# rationale: EXPERIMENTS.md "Re-recording benchmark baselines".
bench-record:
	@procs=$${GOMAXPROCS:-$$(nproc)}; \
	if [ "$$procs" -le 1 ]; then \
		echo "bench-record: refusing with GOMAXPROCS=$$procs — baselines must"; \
		echo "come from a multi-core run (see EXPERIMENTS.md)"; exit 1; fi
	$(GO) test -run=NONE -bench='GetHit|SetChurn|ParallelGet|Rebalance|GetBatch|SetBatch' \
		-benchtime=1s -count=3 ./pkg/cpacache/ | tee /tmp/bench_record.txt
	$(GO) run ./cmd/benchjson -record BENCH_cpacache.json /tmp/bench_record.txt

# Belady/OPT competitive-analysis gate: regenerate the fig6-style OPT
# scoreboard on the two cheapest workloads per thread count (the run is
# fully deterministic, ~1s) and diff it row-by-row against the committed
# OPT_SCOREBOARD.csv golden within a small tolerance band. Catches any
# change that silently shifts a policy's hit rate or its distance from
# optimal. Re-record the golden with the same repro invocation after an
# intentional policy change (see EXPERIMENTS.md).
opt-scoreboard:
	$(GO) run ./cmd/repro -experiment opt -insts 150000 -interval 50000 \
		-sample 8 -limit 2 -opt-cores 1,2 -opt-sizes 256 -csvdir /tmp/opt_lane
	$(GO) run ./cmd/benchjson -opt-gate -tolerance 0.02 \
		OPT_SCOREBOARD.csv /tmp/opt_lane/opt_scoreboard.csv

# Fuzz smoke: a short bounded pass over every fuzz target. Go allows one
# -fuzz pattern per invocation, so each target gets its own run.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz='^FuzzRESPParse$$' -fuzztime=30s ./internal/resp/
	$(GO) test -run=NONE -fuzz='^FuzzRESPRoundTrip$$' -fuzztime=10s ./internal/resp/
	$(GO) test -run=NONE -fuzz='^FuzzVictimInMask$$' -fuzztime=10s ./pkg/plru/
	$(GO) test -run=NONE -fuzz='^FuzzTouchBatchEquivalence$$' -fuzztime=10s ./pkg/plru/
	$(GO) test -run=NONE -fuzz='^FuzzTagCollisionFallback$$' -fuzztime=10s ./pkg/cpacache/
	$(GO) test -run=NONE -fuzz='^FuzzTouchRing$$' -fuzztime=10s ./pkg/cpacache/
	$(GO) test -run=NONE -fuzz='^FuzzCollisionStorm$$' -fuzztime=10s ./pkg/cpacache/

# Run the cache server on the default redis port (ctrl-C drains).
serve:
	$(GO) run ./cmd/cpacached -addr :6379 -policy bt

# Drive a running `make serve` with the default load mix.
loadtest:
	$(GO) run ./cmd/cpaload -addr 127.0.0.1:6379 -conns 4 -pipeline 32 \
		-requests 400000 -keyspace 20000 -value-size 128 -set-ratio 0.1 -zipf 1.1

# Server integration smoke: protocol conformance, in-process server
# tests, and the exec-based daemon end-to-end (SIGTERM drain) under -race.
server-smoke:
	$(GO) test -race -count=1 ./internal/resp/ ./internal/server/ ./internal/loadgen/ ./internal/faultinject/ ./cmd/cpacached/

# Chaos lane: the fault-injection unit tests plus the exec-based chaos
# smoke — a race-instrumented cpacached under injected accept errors,
# latency stalls, partial writes and resets, with connection caps and
# slow-client deadlines armed. Asserts the retrying load engine finishes
# its full budget with zero lost acknowledged writes, over-cap connects
# are refused, a client-triggered panic is contained, and the process
# still drains cleanly.
chaos-smoke: mem-storm
	$(GO) test -race -count=1 ./internal/faultinject/
	$(GO) test -race -count=1 -run '^TestDaemonChaosSmoke$$' -v ./cmd/cpacached/

# Memory-pressure chaos lane: a race-instrumented cpacached with a tiny
# -max-bytes cap stormed with 1 KB short-TTL values. Asserts the
# governor's three promises under fire: used_memory never exceeds the
# cap by more than the writers' in-flight entries, no acknowledged write
# is lost (-OOM refusals are requeued, never acked), and the server
# recovers to pressure_state:ok with ordinary writes flowing once the
# storm drains.
mem-storm:
	$(GO) test -race -count=1 -run '^TestDaemonMemStorm$$' -v ./cmd/cpacached/

# The hot-path allocation guards (testing.AllocsPerRun) run without -race:
# instrumentation skews the accounting. Alloc regressions fail here fast
# even on hosts too noisy for ns/op comparisons.
alloc-guard:
	$(GO) test -run 'ZeroAlloc|Allocs' ./pkg/cpacache/ ./pkg/cpapart/ ./internal/server/

# staticcheck / govulncheck run when installed and are skipped otherwise,
# so `make ci` works in hermetic containers; the CI lint job always runs
# them.
staticcheck:
	@if command -v staticcheck >/dev/null; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

vulncheck:
	@if command -v govulncheck >/dev/null; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping"; fi

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Docs gate (cmd/doccheck): every relative link in *.md resolves, every
# ```go fence parses (full-file blocks must also be gofmt-clean), and vet
# stays green. CI runs this as its own job.
docs-check: vet
	$(GO) run ./cmd/doccheck .

ci: fmt-check vet staticcheck build examples race alloc-guard bench bench-cpacache bench-gate opt-scoreboard server-smoke chaos-smoke docs-check
