# Local developer targets. `make ci` runs exactly what
# .github/workflows/ci.yml runs, in the same order.

GO ?= go

.PHONY: build examples test race bench bench-cpacache fmt fmt-check vet staticcheck vulncheck ci

build:
	$(GO) build ./...

examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass of every benchmark — a smoke test that the bench harness
# still runs, not a measurement. pkg/cpacache is excluded here because
# bench-cpacache gives it its own (longer) smoke pass.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x $$($(GO) list ./... | grep -v pkg/cpacache)

# Quick sanity pass over the cpacache hot paths (the BENCH_cpacache.json
# baseline uses -benchtime=1s instead).
bench-cpacache:
	$(GO) test -run=NONE -bench=. -benchtime=100x ./pkg/cpacache/

# staticcheck / govulncheck run when installed and are skipped otherwise,
# so `make ci` works in hermetic containers; the CI lint job always runs
# them.
staticcheck:
	@if command -v staticcheck >/dev/null; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

vulncheck:
	@if command -v govulncheck >/dev/null; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping"; fi

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet staticcheck build examples race bench bench-cpacache
