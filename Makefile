# Local developer targets. `make ci` runs exactly what
# .github/workflows/ci.yml runs, in the same order.

GO ?= go

.PHONY: build test race bench fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass of every benchmark — a smoke test that the bench harness
# still runs, not a measurement.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build race bench
