# Local developer targets. `make ci` runs exactly what
# .github/workflows/ci.yml runs, in the same order.

GO ?= go

.PHONY: build examples test race bench bench-cpacache bench-compare bench-gate alloc-guard fmt fmt-check vet staticcheck vulncheck docs-check ci

build:
	$(GO) build ./...

examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass of every benchmark — a smoke test that the bench harness
# still runs, not a measurement. pkg/cpacache is excluded here because
# bench-cpacache gives it its own (longer) smoke pass.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x $$($(GO) list ./... | grep -v pkg/cpacache)

# Quick sanity pass over the cpacache hot paths (the BENCH_cpacache.json
# baseline uses -benchtime=1s instead).
bench-cpacache:
	$(GO) test -run=NONE -bench=. -benchtime=100x ./pkg/cpacache/

# Compare a fresh cpacache bench run against the checked-in
# BENCH_cpacache.json baseline with benchstat (skipped when benchstat is
# not installed: go install golang.org/x/perf/cmd/benchstat@latest).
# cmd/benchjson renders the JSON baseline in benchstat's input format.
bench-compare:
	@if ! command -v benchstat >/dev/null; then \
		echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); skipping"; exit 0; fi
	$(GO) run ./cmd/benchjson BENCH_cpacache.json > /tmp/bench_baseline.txt
	$(GO) test -run=NONE -bench='GetHit|SetChurn|ParallelGetSet|Rebalance|GetBatch|SetBatch' \
		-benchtime=1s -count=5 ./pkg/cpacache/ > /tmp/bench_fresh.txt
	benchstat /tmp/bench_baseline.txt /tmp/bench_fresh.txt

# Bench-regression gate: run the two headline hot-path benchmarks and
# fail if the best-of-3 ns/op regresses more than 15% against the
# checked-in BENCH_cpacache.json (or allocs/op grow at all). CI runs
# this; it is a smoke gate for gross regressions, not a statistically
# careful comparison — use bench-compare for that.
bench-gate:
	$(GO) test -run=NONE -bench='^BenchmarkGetHit$$|^BenchmarkParallelGetSet$$' \
		-benchtime=1s -count=3 ./pkg/cpacache/ | tee /tmp/bench_gate.txt
	$(GO) run ./cmd/benchjson -gate -tolerance 0.15 BENCH_cpacache.json /tmp/bench_gate.txt

# The hot-path allocation guards (testing.AllocsPerRun) run without -race:
# instrumentation skews the accounting. Alloc regressions fail here fast
# even on hosts too noisy for ns/op comparisons.
alloc-guard:
	$(GO) test -run 'ZeroAlloc|Allocs' ./pkg/cpacache/ ./pkg/cpapart/

# staticcheck / govulncheck run when installed and are skipped otherwise,
# so `make ci` works in hermetic containers; the CI lint job always runs
# them.
staticcheck:
	@if command -v staticcheck >/dev/null; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

vulncheck:
	@if command -v govulncheck >/dev/null; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping"; fi

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Docs gate (cmd/doccheck): every relative link in *.md resolves, every
# ```go fence parses (full-file blocks must also be gofmt-clean), and vet
# stays green. CI runs this as its own job.
docs-check: vet
	$(GO) run ./cmd/doccheck .

ci: fmt-check vet staticcheck build examples race alloc-guard bench bench-cpacache bench-gate docs-check
