package plru

import "testing"

// Edge geometries: 1-way and 2-way caches exercise degenerate paths in
// every policy (single-line sets have no recency order; BT's smallest
// tree has one bit).

func TestOneWayLRU(t *testing.T) {
	p := NewLRUPolicy(4, 1)
	p.Touch(0, 0, 0)
	if v := p.Victim(0, 0, Full(1)); v != 0 {
		t.Fatalf("1-way victim = %d", v)
	}
	if d := p.Dist(0, 0); d != 1 {
		t.Fatalf("1-way stack distance = %d", d)
	}
}

func TestOneWayNRU(t *testing.T) {
	p := NewNRUPolicy(4, 1, 1)
	// Touch saturates the single-line scope; the reset must keep the
	// accessed line's bit and Victim must still terminate.
	p.Touch(0, 0, 0)
	if !p.Used(0, 0) {
		t.Fatal("single way should keep its used bit")
	}
	if v := p.Victim(0, 0, Full(1)); v != 0 {
		t.Fatalf("1-way victim = %d", v)
	}
}

func TestTwoWayBT(t *testing.T) {
	p := NewBTPolicy(2, 2)
	p.Touch(0, 0, 0)
	if v := p.Victim(0, 0, Full(2)); v != 1 {
		t.Fatalf("victim after touching way 0 = %d, want 1", v)
	}
	p.Touch(0, 1, 0)
	if v := p.Victim(0, 0, Full(2)); v != 0 {
		t.Fatalf("victim after touching way 1 = %d, want 0", v)
	}
	if est := p.EstStackPos(0, 1); est != 1 {
		t.Fatalf("just-touched estimate = %d", est)
	}
}

func TestOneWayBTPanics(t *testing.T) {
	// A 1-way BT has zero tree bits; the constructor accepts it only if
	// it stays consistent. ways=1 is a power of two, levels=0: Victim
	// must return way 0.
	p := NewBTPolicy(1, 1)
	if v := p.Victim(0, 0, Full(1)); v != 0 {
		t.Fatalf("1-way BT victim = %d", v)
	}
}

func TestSingleSetPolicies(t *testing.T) {
	for _, k := range []Kind{LRU, NRU, BT, Random} {
		p := New(k, 1, 4, 1, 3)
		for i := 0; i < 100; i++ {
			w := p.Victim(0, 0, Full(4))
			p.Touch(0, w, 0)
		}
	}
}

func TestVictimSetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range set")
		}
	}()
	NewLRUPolicy(2, 4).Victim(2, 0, Full(4))
}

func TestMaskBeyondWaysIgnored(t *testing.T) {
	// Bits above the associativity in the allowed mask must not yield
	// invalid ways.
	p := NewLRUPolicy(1, 4)
	v := p.Victim(0, 0, WayMask(0xF0F))
	if v < 0 || v >= 4 {
		t.Fatalf("victim %d out of range with oversized mask", v)
	}
}
