package plru

import "testing"

// TestAWRPVictimIsMinWeight cross-checks Victim against the Weight
// introspection after an arbitrary access schedule: the chosen way must
// carry the minimum weight within the mask, lowest index on ties.
func TestAWRPVictimIsMinWeight(t *testing.T) {
	p := NewAWRPPolicy(2, 8)
	rng := uint64(1)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 500; i++ {
		set := int(next() % 2)
		switch next() % 3 {
		case 0:
			p.Touch(set, int(next()%8), 0)
		case 1:
			p.Fill(set, int(next()%8), 0, uint8(next()))
		default:
			p.Invalidate(set, int(next()%8))
		}
		mask := WayMask(next()) & Full(8)
		if mask == 0 {
			mask = Full(8)
		}
		v := p.Victim(set, 0, mask)
		for _, w := range mask.Ways() {
			if p.Weight(set, w) < p.Weight(set, v) {
				t.Fatalf("step %d: victim %d (weight %d) not minimal; way %d has %d",
					i, v, p.Weight(set, v), w, p.Weight(set, w))
			}
			if p.Weight(set, w) == p.Weight(set, v) && w < v {
				t.Fatalf("step %d: tie at weight %d broken toward %d, want %d", i, p.Weight(set, v), v, w)
			}
		}
	}
}

// TestAWRPFrequencyDefendsHotLine is the policy's reason to exist: a line
// with accumulated frequency outranks lines touched more recently but
// only once, where pure LRU would evict it.
func TestAWRPFrequencyDefendsHotLine(t *testing.T) {
	p := NewAWRPPolicy(1, 4)
	for w := 0; w < 4; w++ {
		p.Fill(0, w, 0, uint8(w))
	}
	// Way 1 gets hot; then every other way is touched once, so way 1 is
	// the least recently used line.
	for i := 0; i < 10; i++ {
		p.Touch(0, 1, 0)
	}
	for _, w := range []int{0, 2, 3} {
		p.Touch(0, w, 0)
	}
	lru := NewLRUPolicy(1, 4)
	for w := 0; w < 4; w++ {
		lru.Touch(0, w, 0)
	}
	for i := 0; i < 10; i++ {
		lru.Touch(0, 1, 0)
	}
	for _, w := range []int{0, 2, 3} {
		lru.Touch(0, w, 0)
	}
	if v := lru.Victim(0, 0, Full(4)); v != 1 {
		t.Fatalf("setup broken: LRU victim = %d, want the stale hot line 1", v)
	}
	if v := p.Victim(0, 0, Full(4)); v == 1 {
		t.Fatal("AWRP evicted the hot line despite its frequency weight")
	}
}

// TestAWRPRecencyAgesOutStaleHotLine bounds the squatting: even a
// frequency-saturated line loses to fresh traffic once it has been stale
// for more than freqBoost*255 ticks.
func TestAWRPRecencyAgesOutStaleHotLine(t *testing.T) {
	p := NewAWRPPolicy(1, 2)
	p.Fill(0, 0, 0, 1)
	for i := 0; i < 300; i++ { // saturate way 0's frequency
		p.Touch(0, 0, 0)
	}
	p.Fill(0, 1, 0, 2)
	// Way 1 absorbs all traffic; each touch advances the set clock.
	for i := 0; i < awrpFreqBoost*255+10; i++ {
		p.Touch(0, 1, 0)
	}
	if v := p.Victim(0, 0, Full(2)); v != 0 {
		t.Fatalf("stale saturated line not aged out: victim = %d, want 0", v)
	}
}

// TestAWRPFillResetsFrequency checks a new line does not inherit the
// popularity of the line it replaced.
func TestAWRPFillResetsFrequency(t *testing.T) {
	p := NewAWRPPolicy(1, 4)
	for i := 0; i < 50; i++ {
		p.Touch(0, 2, 0)
	}
	if p.Freq(0, 2) != 50 {
		t.Fatalf("freq = %d, want 50", p.Freq(0, 2))
	}
	p.Fill(0, 2, 0, 9)
	if p.Freq(0, 2) != 1 {
		t.Fatalf("freq after Fill = %d, want 1", p.Freq(0, 2))
	}
}

// TestAWRPInvalidateMakesWayTheVictim checks the freed way drops to
// weight 0 and wins the next victim selection.
func TestAWRPInvalidateMakesWayTheVictim(t *testing.T) {
	p := NewAWRPPolicy(1, 8)
	for w := 0; w < 8; w++ {
		p.Fill(0, w, 0, uint8(w))
		p.Touch(0, w, 0)
	}
	for way := 0; way < 8; way++ {
		p.Invalidate(0, way)
		if v := p.Victim(0, 0, Full(8)); v != way {
			t.Fatalf("Victim after Invalidate(%d) = %d", way, v)
		}
		p.Touch(0, way, 0) // re-arm for the next round
	}
}

// TestAWRPFreqSaturates pins the 8-bit ceiling.
func TestAWRPFreqSaturates(t *testing.T) {
	p := NewAWRPPolicy(1, 1)
	for i := 0; i < 300; i++ {
		p.Touch(0, 0, 0)
	}
	if p.Freq(0, 0) != 255 {
		t.Fatalf("freq = %d, want saturation at 255", p.Freq(0, 0))
	}
}
