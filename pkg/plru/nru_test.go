package plru

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNRUTouchSetsUsedBit(t *testing.T) {
	p := NewNRUPolicy(2, 4, 1)
	p.Touch(1, 2, 0)
	if !p.Used(1, 2) {
		t.Fatal("used bit not set after Touch")
	}
	if p.Used(0, 2) {
		t.Fatal("used bit leaked across sets")
	}
}

func TestNRUResetRule(t *testing.T) {
	// When an access would leave all used bits at 1, all except the
	// accessed line are cleared.
	p := NewNRUPolicy(1, 4, 1)
	p.Touch(0, 0, 0)
	p.Touch(0, 1, 0)
	p.Touch(0, 2, 0)
	if p.UsedCount(0) != 3 {
		t.Fatalf("UsedCount = %d, want 3", p.UsedCount(0))
	}
	p.Touch(0, 3, 0) // would be 4th bit -> reset others
	if p.UsedCount(0) != 1 {
		t.Fatalf("after saturating access UsedCount = %d, want 1", p.UsedCount(0))
	}
	if !p.Used(0, 3) {
		t.Fatal("accessed line's bit must survive the reset")
	}
}

func TestNRUPaperFigure3Examples(t *testing.T) {
	// Figure 3(a): lines {A,B,C,D}=ways{0,1,2,3}, all bits 0. Accesses
	// C, D: bits of C and D set. U = 2 before the repeat access to D.
	p := NewNRUPolicy(1, 4, 1)
	p.Touch(0, 2, 0) // C
	p.Touch(0, 3, 0) // D
	if got := p.UsedCount(0); got != 2 {
		t.Fatalf("U = %d, want 2", got)
	}
	if !p.Used(0, 3) {
		t.Fatal("D's used bit should be 1 (estimator case: distance in [1,U])")
	}

	// Figure 3(b): accesses A, B then C: C's bit was 0 before its access
	// and U (including C after access) becomes 3.
	q := NewNRUPolicy(1, 4, 1)
	q.Touch(0, 0, 0) // A
	q.Touch(0, 1, 0) // B
	if q.Used(0, 2) {
		t.Fatal("C's used bit should still be 0")
	}
	q.Touch(0, 2, 0) // C
	if got := q.UsedCount(0); got != 3 {
		t.Fatalf("U after C = %d, want 3", got)
	}
}

func TestNRUUsedInvariant(t *testing.T) {
	// Invariant (unpartitioned, ways >= 2): after any Touch sequence at
	// least one used bit per set is 0.
	f := func(ops []uint8) bool {
		p := NewNRUPolicy(2, 8, 1)
		for _, op := range ops {
			p.Touch(int(op>>7)&1, int(op)%8, 0)
		}
		return p.UsedCount(0) < 8 && p.UsedCount(1) < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNRUVictimHasClearBit(t *testing.T) {
	p := NewNRUPolicy(1, 8, 1)
	rng := xrand.New(3)
	for i := 0; i < 500; i++ {
		if rng.Bool(0.7) {
			p.Touch(0, rng.Intn(8), 0)
		} else {
			v := p.Victim(0, 0, Full(8))
			if p.Used(0, v) {
				t.Fatalf("iteration %d: victim way %d has used bit set", i, v)
			}
			p.Touch(0, v, 0) // model the fill
		}
	}
}

func TestNRUPointerAdvancesOncePerReplacement(t *testing.T) {
	p := NewNRUPolicy(4, 8, 1)
	if p.Pointer() != 0 {
		t.Fatalf("initial pointer = %d", p.Pointer())
	}
	p.Victim(0, 0, Full(8))
	if p.Pointer() != 1 {
		t.Fatalf("pointer after one replacement = %d, want 1", p.Pointer())
	}
	p.Victim(3, 0, Full(8)) // different set — same global pointer
	if p.Pointer() != 2 {
		t.Fatalf("pointer after two replacements = %d, want 2", p.Pointer())
	}
	for i := 0; i < 6; i++ {
		p.Victim(0, 0, Full(8))
	}
	if p.Pointer() != 0 {
		t.Fatalf("pointer should wrap to 0, got %d", p.Pointer())
	}
}

func TestNRUVictimStartsAtPointer(t *testing.T) {
	p := NewNRUPolicy(1, 4, 1)
	// All bits clear; victim should be the pointer position itself.
	if v := p.Victim(0, 0, Full(4)); v != 0 {
		t.Fatalf("victim = %d, want 0 (pointer position)", v)
	}
	// Pointer is now 1; set used bit of way 1; victim should skip to 2.
	p.Touch(0, 1, 0)
	if v := p.Victim(0, 0, Full(4)); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
}

func TestNRUVictimRespectsMask(t *testing.T) {
	p := NewNRUPolicy(1, 8, 2)
	mask := WayMask(0).With(5).With(6)
	for i := 0; i < 20; i++ {
		v := p.Victim(0, 0, mask)
		if v != 5 && v != 6 {
			t.Fatalf("victim %d outside mask", v)
		}
		p.Touch(0, v, 0)
	}
}

func TestNRUVictimSaturatedMaskResets(t *testing.T) {
	// If every allowed way has used == 1, Victim must clear them and
	// still return an allowed way.
	p := NewNRUPolicy(1, 8, 2)
	mask := WayMask(0).With(2).With(3)
	// Saturate the allowed subset via an unpartitioned touch pattern that
	// leaves 2 and 3 set (touch 2, 3 and others to avoid global reset).
	p.Touch(0, 2, 0)
	p.Touch(0, 3, 0)
	if !p.Used(0, 2) || !p.Used(0, 3) {
		t.Fatal("setup failed")
	}
	v := p.Victim(0, 0, mask)
	if v != 2 && v != 3 {
		t.Fatalf("victim %d outside saturated mask", v)
	}
}

func TestNRUPartitionScopedReset(t *testing.T) {
	// With partitioning, the reset rule is scoped to the core's mask:
	// saturating core 0's two ways must not clear core 1's bits.
	p := NewNRUPolicy(1, 4, 2)
	masks := []WayMask{Full(4) &^ Full(2), Full(2)} // core0: {2,3}, core1: {0,1}
	p.SetPartition(masks)
	p.Touch(0, 0, 1) // core 1 uses its ways
	p.Touch(0, 2, 0)
	p.Touch(0, 3, 0) // saturates core 0's scope {2,3} -> reset within scope
	if p.UsedCount(0) != 2 {
		t.Fatalf("UsedCount = %d, want 2 (core1's bit + accessed line)", p.UsedCount(0))
	}
	if !p.Used(0, 0) {
		t.Fatal("core 1's used bit was cleared by core 0's scoped reset")
	}
	if !p.Used(0, 3) || p.Used(0, 2) {
		t.Fatal("scoped reset should keep only the accessed line within the scope")
	}
}

func TestNRUSetPartitionNilRestoresGlobalScope(t *testing.T) {
	p := NewNRUPolicy(1, 4, 2)
	p.SetPartition([]WayMask{Full(2), Full(4) &^ Full(2)})
	p.SetPartition(nil)
	// Global scope: saturating all four ways triggers a set-wide reset.
	for w := 0; w < 4; w++ {
		p.Touch(0, w, 0)
	}
	if p.UsedCount(0) != 1 {
		t.Fatalf("UsedCount = %d, want 1 after global reset", p.UsedCount(0))
	}
}

func TestNRUSetPartitionWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong mask count")
		}
	}()
	NewNRUPolicy(1, 4, 2).SetPartition([]WayMask{Full(4)})
}

func TestNRUVictimAlwaysInMaskProperty(t *testing.T) {
	f := func(ops []uint8, rawMask uint8) bool {
		mask := WayMask(rawMask)
		if mask == 0 {
			mask = Full(8)
		}
		p := NewNRUPolicy(1, 8, 1)
		for _, op := range ops {
			if op&1 == 0 {
				p.Touch(0, int(op>>1)%8, 0)
			} else {
				v := p.Victim(0, 0, mask)
				if !mask.Has(v) {
					return false
				}
				p.Touch(0, v, 0)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
