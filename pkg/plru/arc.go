package plru

import "math/bits"

// ARCPolicy is an ARC-style adaptive replacement policy (after Megiddo &
// Modha's ARC, as analyzed in "Analyzing Adaptive Cache Replacement
// Strategies", arXiv:1503.07624), reshaped for a fixed set-associative
// geometry. Each set splits its resident lines into two tiers — T1, lines
// seen once since insertion, and T2, lines seen at least twice — and
// keeps two ghost lists of small signatures of recently evicted lines: B1
// remembers T1 evictions, B2 remembers T2 evictions. A fill whose
// signature is found in B1 means the recency tier was sized too small, so
// the adaptation target p (the intended size of T1) grows; a B2 match
// shrinks it. Victims come from whichever tier is over its target, oldest
// line first, so the set continuously re-balances itself between a
// recency cache and a frequency cache — the adaptivity LRU lacks under
// scans and Random lacks everywhere.
//
// Unlike list-based ARC implementations, lines live in fixed ways:
// membership is a per-line tier tag, order within a tier is an LRU age
// permutation shared by the whole set, and the ghost lists are per-set
// rings of 8-bit partial signatures (the `sig` argument of Fill, e.g. the
// caller's packed tag byte). Partial signatures admit rare false ghost
// hits — the cost of keeping the ghost state at two bytes per way — which
// only nudge p, never correctness. Everything is flat arrays; no method
// allocates.
//
// The policy is exactly reproducible (no randomness), so it runs under
// the same differential testing as the static policies.
type ARCPolicy struct {
	sets, ways int
	age        []uint8  // sets*ways, LRU permutation per set (0 = MRU)
	state      []uint8  // sets*ways: arcFree, arcT1, arcT2
	sig        []uint8  // sets*ways, signature installed by Fill
	sigok      []bool   // sets*ways, sig is valid (line arrived via Fill)
	t1cnt      []uint8  // per set, resident T1 lines
	target     []uint8  // per set, p: the adaptation target for |T1|
	b1, b2     []uint16 // sets*ways ghost rings: 0 empty, else arcGhostTag|sig
	b1h, b2h   []uint8  // per set, ring heads
}

const (
	arcFree = uint8(iota) // way holds no tracked line
	arcT1                 // seen once since insertion
	arcT2                 // seen at least twice
)

// arcGhostTag marks a ghost ring entry as occupied; the low 8 bits hold
// the evicted line's signature.
const arcGhostTag = uint16(0x100)

// NewARCPolicy returns an ARC policy for the given geometry. All ways
// start free with the adaptation target at ways/2.
func NewARCPolicy(sets, ways int) *ARCPolicy {
	validateGeometry(sets, ways)
	p := &ARCPolicy{
		sets: sets, ways: ways,
		age:    make([]uint8, sets*ways),
		state:  make([]uint8, sets*ways),
		sig:    make([]uint8, sets*ways),
		sigok:  make([]bool, sets*ways),
		t1cnt:  make([]uint8, sets),
		target: make([]uint8, sets),
		b1:     make([]uint16, sets*ways),
		b2:     make([]uint16, sets*ways),
		b1h:    make([]uint8, sets),
		b2h:    make([]uint8, sets),
	}
	for s := 0; s < sets; s++ {
		p.target[s] = uint8(ways / 2)
		for w := 0; w < ways; w++ {
			p.age[s*ways+w] = uint8(w)
		}
	}
	return p
}

// Kind returns ARC.
func (p *ARCPolicy) Kind() Kind { return ARC }

// Ways returns the associativity.
func (p *ARCPolicy) Ways() int { return p.ways }

// Sets returns the number of sets.
func (p *ARCPolicy) Sets() int { return p.sets }

// SetPartition is a no-op for ARC: hits never consult the partition and
// victim scoping is entirely expressed through the Victim mask.
func (p *ARCPolicy) SetPartition(masks []WayMask) {}

// promote moves way to the MRU position of set (LRU permutation update).
func (p *ARCPolicy) promote(set, way int) {
	base := set * p.ways
	old := p.age[base+way]
	for w := 0; w < p.ways; w++ {
		if a := p.age[base+w]; a < old {
			p.age[base+w] = a + 1
		}
	}
	p.age[base+way] = 0
}

// Touch records a hit: a T1 line is promoted to T2 (it has now been seen
// twice), a T2 line stays T2, and either becomes MRU. A touch on a free
// way (possible for callers that never Fill) enters the line in T1.
func (p *ARCPolicy) Touch(set, way, core int) {
	i := set*p.ways + way
	switch p.state[i] {
	case arcFree:
		p.state[i] = arcT1
		p.t1cnt[set]++
	case arcT1:
		p.state[i] = arcT2
		p.t1cnt[set]--
	}
	p.promote(set, way)
}

// Fill installs a new line in (set, way). The line it replaces (if any)
// is remembered in its tier's ghost ring; then the new signature probes
// the ghosts: a B1 match grows the T1 target and installs the line in T2
// (it was evicted too eagerly from the recency tier), a B2 match shrinks
// the target and also installs in T2, and a miss in both installs in T1.
// The filled way becomes MRU.
func (p *ARCPolicy) Fill(set, way, core int, sig uint8) {
	i := set*p.ways + way
	if p.state[i] != arcFree && p.sigok[i] {
		p.ghostPush(set, p.state[i], p.sig[i])
	}
	if p.state[i] == arcT1 {
		p.t1cnt[set]--
	}
	tier := arcT1
	if p.ghostTake(p.b1, set, sig) {
		if p.target[set] < uint8(p.ways) {
			p.target[set]++
		}
		tier = arcT2
	} else if p.ghostTake(p.b2, set, sig) {
		if p.target[set] > 0 {
			p.target[set]--
		}
		tier = arcT2
	}
	p.state[i] = tier
	if tier == arcT1 {
		p.t1cnt[set]++
	}
	p.sig[i] = sig
	p.sigok[i] = true
	p.promote(set, way)
}

// TouchBatch applies deferred accesses in order (see Policy.TouchBatch),
// dispatching records flagged FillRec through Fill.
func (p *ARCPolicy) TouchBatch(recs []TouchRec) {
	for _, r := range recs {
		if r.Sig&FillRec != 0 {
			p.Fill(int(r.Set), int(r.Way), int(r.Core), uint8(r.Sig))
		} else {
			p.Touch(int(r.Set), int(r.Way), int(r.Core))
		}
	}
}

// Invalidate frees (set, way) — tier membership cleared, no ghost entry
// (the line left outside replacement, so it carries no eviction signal) —
// and demotes it to the LRU position, making it the preferred victim.
func (p *ARCPolicy) Invalidate(set, way int) {
	i := set*p.ways + way
	if p.state[i] == arcT1 {
		p.t1cnt[set]--
	}
	p.state[i] = arcFree
	p.sigok[i] = false
	base := set * p.ways
	old := p.age[base+way]
	for w := 0; w < p.ways; w++ {
		if a := p.age[base+w]; a > old {
			p.age[base+w] = a - 1
		}
	}
	p.age[base+way] = uint8(p.ways - 1)
}

// Victim selects the eviction way within the allowed mask: a free way if
// the mask holds one (oldest first), else the oldest line of the tier
// that is at or over its target — T1 when |T1| >= p (ARC's REPLACE rule,
// which is what makes a scan evict its own tail instead of the frequency
// tier), otherwise T2 — falling back to the other tier when the mask has
// no line of the preferred one. Victim reads but never mutates policy
// state, and never allocates.
func (p *ARCPolicy) Victim(set, core int, allowed WayMask) int {
	checkVictimArgs(p, set, allowed)
	m := uint64(allowed) & uint64(Full(p.ways))
	if w := p.oldest(set, m, arcFree); w >= 0 {
		return w
	}
	pref := arcT2
	if p.t1cnt[set] >= p.target[set] {
		pref = arcT1
	}
	if w := p.oldest(set, m, pref); w >= 0 {
		return w
	}
	return p.oldest(set, m, arcT1+arcT2-pref)
}

// oldest returns the masked way in the given state with the largest age,
// or -1 when the mask holds none.
func (p *ARCPolicy) oldest(set int, m uint64, state uint8) int {
	base := set * p.ways
	best, bestAge := -1, -1
	for v := m; v != 0; {
		w := bits.TrailingZeros64(v)
		v &^= 1 << uint(w)
		if p.state[base+w] != state {
			continue
		}
		if a := int(p.age[base+w]); a > bestAge {
			best, bestAge = w, a
		}
	}
	return best
}

// ghostPush records an evicted line's signature in its tier's ghost ring,
// overwriting the oldest entry when the ring is full.
func (p *ARCPolicy) ghostPush(set int, tier, sig uint8) {
	ring, head := p.b1, p.b1h
	if tier == arcT2 {
		ring, head = p.b2, p.b2h
	}
	ring[set*p.ways+int(head[set])] = arcGhostTag | uint16(sig)
	head[set] = uint8((int(head[set]) + 1) % p.ways)
}

// ghostTake reports whether sig is present in the set's slice of the
// given ghost ring, clearing the matched entry (a ghost hit consumes it).
func (p *ARCPolicy) ghostTake(ring []uint16, set int, sig uint8) bool {
	base := set * p.ways
	want := arcGhostTag | uint16(sig)
	for j := 0; j < p.ways; j++ {
		if ring[base+j] == want {
			ring[base+j] = 0
			return true
		}
	}
	return false
}

// Tier returns 0 for a free way, 1 for T1 and 2 for T2. Exposed for
// tests and introspection.
func (p *ARCPolicy) Tier(set, way int) int { return int(p.state[set*p.ways+way]) }

// Target returns the set's current adaptation target p for |T1|.
func (p *ARCPolicy) Target(set int) int { return int(p.target[set]) }
