package plru

import "testing"

// fillVictim runs one capacity replacement: pick the unmasked victim and
// fill it with sig, returning the way.
func fillVictim(p *ARCPolicy, set int, sig uint8) int {
	v := p.Victim(set, 0, Full(p.Ways()))
	p.Fill(set, v, 0, sig)
	return v
}

// TestARCVictimPrefersFreeWays checks untracked ways are always reclaimed
// before any resident line.
func TestARCVictimPrefersFreeWays(t *testing.T) {
	p := NewARCPolicy(1, 4)
	p.Fill(0, 0, 0, 10)
	p.Fill(0, 1, 0, 11)
	for i := 0; i < 2; i++ {
		v := p.Victim(0, 0, Full(4))
		if v != 2 && v != 3 {
			t.Fatalf("victim %d is a resident line while ways 2,3 are free", v)
		}
		p.Fill(0, v, 0, uint8(20+i))
	}
}

// TestARCTouchPromotesTiers pins the tier lifecycle: Fill lands in T1, a
// hit promotes to T2, another hit stays T2.
func TestARCTouchPromotesTiers(t *testing.T) {
	p := NewARCPolicy(1, 4)
	p.Fill(0, 2, 0, 7)
	if tier := p.Tier(0, 2); tier != 1 {
		t.Fatalf("tier after Fill = %d, want 1 (T1)", tier)
	}
	p.Touch(0, 2, 0)
	if tier := p.Tier(0, 2); tier != 2 {
		t.Fatalf("tier after first hit = %d, want 2 (T2)", tier)
	}
	p.Touch(0, 2, 0)
	if tier := p.Tier(0, 2); tier != 2 {
		t.Fatalf("tier after second hit = %d, want 2 (T2)", tier)
	}
}

// TestARCGhostHitAdaptsTarget checks the adaptation loop: re-filling a
// signature recently evicted from T1 grows the target (the recency tier
// was undersized) and installs the returning line directly in T2.
func TestARCGhostHitAdaptsTarget(t *testing.T) {
	p := NewARCPolicy(1, 4)
	for w := 0; w < 4; w++ {
		p.Fill(0, w, 0, uint8(100+w))
	}
	before := p.Target(0)
	// Evict the oldest T1 line (sig 100) into the B1 ghost ring.
	v := fillVictim(p, 0, 50)
	if v != 0 {
		t.Fatalf("victim = %d, want the oldest T1 line 0", v)
	}
	// The evicted signature returns: B1 hit.
	w := p.Victim(0, 0, Full(4))
	p.Fill(0, w, 0, 100)
	if got := p.Target(0); got != before+1 {
		t.Fatalf("target after B1 ghost hit = %d, want %d", got, before+1)
	}
	if tier := p.Tier(0, w); tier != 2 {
		t.Fatalf("returning line landed in tier %d, want 2 (T2)", tier)
	}
}

// TestARCScanResistance is the policy's reason to exist: lines hit twice
// (T2) survive a long stream of one-shot fills, which consume only the
// recency tier — the workload where LRU loses its whole set.
func TestARCScanResistance(t *testing.T) {
	p := NewARCPolicy(1, 4)
	for w := 0; w < 4; w++ {
		p.Fill(0, w, 0, uint8(w))
	}
	p.Touch(0, 0, 0) // ways 0,1 become T2
	p.Touch(0, 1, 0)
	for i := 0; i < 100; i++ {
		v := fillVictim(p, 0, uint8(200+i%50))
		if v == 0 || v == 1 {
			t.Fatalf("scan step %d evicted hot T2 line %d", i, v)
		}
	}
	if p.Tier(0, 0) != 2 || p.Tier(0, 1) != 2 {
		t.Fatal("hot lines lost their T2 membership during the scan")
	}
}

// TestARCInvalidateFreesWay checks Invalidate clears tier membership,
// makes the way the preferred victim, and pushes no ghost entry (a
// re-fill of the same signature must not adapt the target).
func TestARCInvalidateFreesWay(t *testing.T) {
	p := NewARCPolicy(1, 4)
	for w := 0; w < 4; w++ {
		p.Fill(0, w, 0, uint8(30+w))
	}
	p.Touch(0, 2, 0)
	p.Invalidate(0, 2)
	if tier := p.Tier(0, 2); tier != 0 {
		t.Fatalf("tier after Invalidate = %d, want 0 (free)", tier)
	}
	if v := p.Victim(0, 0, Full(4)); v != 2 {
		t.Fatalf("victim after Invalidate = %d, want 2", v)
	}
	before := p.Target(0)
	p.Fill(0, 2, 0, 32) // same sig as the invalidated line
	if got := p.Target(0); got != before {
		t.Fatalf("target moved %d -> %d on re-fill of an invalidated sig; Invalidate must not leave a ghost", before, got)
	}
}

// TestARCVictimFallsBackAcrossTiers checks a mask covering only the
// unpreferred tier still yields a victim.
func TestARCVictimFallsBackAcrossTiers(t *testing.T) {
	p := NewARCPolicy(1, 4)
	for w := 0; w < 4; w++ {
		p.Fill(0, w, 0, uint8(w))
	}
	p.Touch(0, 3, 0) // way 3 is the only T2 line; t1cnt=3 >= target=2 prefers T1
	if v := p.Victim(0, 0, WayMask(0).With(3)); v != 3 {
		t.Fatalf("mask holding only the T2 line: victim = %d, want 3", v)
	}
	// And the symmetric case: target forced to ways (prefer T2), mask
	// holding only T1 lines.
	p.target[0] = 4
	if v := p.Victim(0, 0, WayMask(0).With(0).With(1)); v != 0 && v != 1 {
		t.Fatalf("mask holding only T1 lines: victim = %d", v)
	}
}

// TestARCTargetStaysInRange drives a churning workload and checks the
// adaptation target never escapes [0, ways].
func TestARCTargetStaysInRange(t *testing.T) {
	p := NewARCPolicy(2, 4)
	rng := uint64(3)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 2000; i++ {
		set := int(next() % 2)
		if next()%3 == 0 {
			p.Touch(set, int(next()%4), 0)
		} else {
			fillVictim(p, set, uint8(next()%8)) // few sigs: frequent ghost hits
		}
		if tgt := p.Target(set); tgt < 0 || tgt > 4 {
			t.Fatalf("step %d: target %d out of [0,4]", i, tgt)
		}
	}
}
