package plru

import "math/bits"

// AWRPPolicy implements the Adaptive Weight Ranking Policy
// (Swain et al., arXiv:1107.4851): every line carries a weight that
// combines recency and access frequency, and the victim is the line with
// the lowest weight. Where pure LRU ranks by last access alone, AWRP lets
// a line's accumulated popularity defend it against a single cold touch —
// the "adaptive" ranking that makes the policy scan-resistant — while the
// recency term guarantees dead popular lines still age out.
//
// Representation: a per-set logical clock (incremented on every access to
// the set) plus, per line, the clock stamp of its last access and an
// 8-bit saturating access-frequency counter. The ranking weight is
//
//	weight(line) = stamp + freqBoost * freq
//
// so one unit of frequency is worth freqBoost clock ticks of recency.
// With freq saturated at 255 a hot line can outrank at most
// freqBoost*255 ticks of staleness, which bounds how long a formerly-hot
// line can squat. Fill (a new line) starts freq at 1; Touch (a hit)
// increments it. All state is flat arrays; nothing ever allocates.
//
// AWRP is exactly reproducible (no randomness, no global state shared
// between sets), so it runs under the same differential testing as the
// static policies.
type AWRPPolicy struct {
	sets, ways int
	clock      []uint64 // per set
	stamp      []uint64 // sets*ways, clock value of the last access
	freq       []uint8  // sets*ways, saturating access counter
}

// awrpFreqBoost is the weight of one frequency count in clock ticks.
// 16 ≈ two full rounds of an 8-way set: a line must sit untouched for
// two set rounds before it loses a rank step earned by one extra hit.
const awrpFreqBoost = 16

// NewAWRPPolicy returns an AWRP policy for the given geometry. All lines
// start with weight 0 (clock 0, frequency 0); ties break toward the
// lowest way index, so the initial victim order is way 0 upward.
func NewAWRPPolicy(sets, ways int) *AWRPPolicy {
	validateGeometry(sets, ways)
	return &AWRPPolicy{
		sets:  sets,
		ways:  ways,
		clock: make([]uint64, sets),
		stamp: make([]uint64, sets*ways),
		freq:  make([]uint8, sets*ways),
	}
}

// Kind returns AWRP.
func (p *AWRPPolicy) Kind() Kind { return AWRP }

// Ways returns the associativity.
func (p *AWRPPolicy) Ways() int { return p.ways }

// Sets returns the number of sets.
func (p *AWRPPolicy) Sets() int { return p.sets }

// SetPartition is a no-op for AWRP: hits never consult the partition and
// victim scoping is entirely expressed through the Victim mask.
func (p *AWRPPolicy) SetPartition(masks []WayMask) {}

// Touch records a hit: the line's stamp moves to the current clock tick
// and its frequency count rises (saturating at 255).
func (p *AWRPPolicy) Touch(set, way, core int) {
	p.clock[set]++
	i := set*p.ways + way
	p.stamp[i] = p.clock[set]
	if p.freq[i] < 255 {
		p.freq[i]++
	}
}

// Fill records a new line: stamp at the current tick, frequency reset to
// 1 — a fresh line starts with exactly one access of credit, however hot
// the line it replaced was.
func (p *AWRPPolicy) Fill(set, way, core int, sig uint8) {
	p.clock[set]++
	i := set*p.ways + way
	p.stamp[i] = p.clock[set]
	p.freq[i] = 1
}

// TouchBatch applies deferred accesses in order (see Policy.TouchBatch),
// dispatching records flagged FillRec through Fill.
func (p *AWRPPolicy) TouchBatch(recs []TouchRec) {
	for _, r := range recs {
		if r.Sig&FillRec != 0 {
			p.Fill(int(r.Set), int(r.Way), int(r.Core), uint8(r.Sig))
		} else {
			p.Touch(int(r.Set), int(r.Way), int(r.Core))
		}
	}
}

// Invalidate zeroes the line's weight (stamp and frequency), making the
// freed way the minimum-weight — hence preferred — victim until refilled.
func (p *AWRPPolicy) Invalidate(set, way int) {
	i := set*p.ways + way
	p.stamp[i] = 0
	p.freq[i] = 0
}

// Victim returns the minimum-weight way within the allowed mask, breaking
// ties toward the lowest way index. It never allocates.
func (p *AWRPPolicy) Victim(set, core int, allowed WayMask) int {
	checkVictimArgs(p, set, allowed)
	base := set * p.ways
	best := -1
	var bestW uint64
	for v := uint64(allowed) & uint64(Full(p.ways)); v != 0; {
		w := bits.TrailingZeros64(v)
		v &^= 1 << uint(w)
		weight := p.stamp[base+w] + awrpFreqBoost*uint64(p.freq[base+w])
		if best < 0 || weight < bestW {
			best, bestW = w, weight
		}
	}
	return best
}

// Weight returns the current ranking weight of (set, way) — the value
// Victim minimizes. Exposed for tests and introspection.
func (p *AWRPPolicy) Weight(set, way int) uint64 {
	i := set*p.ways + way
	return p.stamp[i] + awrpFreqBoost*uint64(p.freq[i])
}

// Freq returns the saturating access-frequency count of (set, way).
func (p *AWRPPolicy) Freq(set, way int) uint8 { return p.freq[set*p.ways+way] }
