package plru

import "math/bits"

// NRUPolicy implements the Not Recently Used replacement scheme of the Sun
// UltraSPARC T2 (paper §III-A): every line carries one used bit, set on any
// access; when an access would leave every used bit in its scope at 1, all
// other bits in the scope are cleared. A single cache-global replacement
// pointer — shared by all sets and all cores — gives victim selection its
// "random-like" character: the search for a used==0 line starts at the
// pointer's way and the pointer rotates forward one way after every
// replacement.
//
// Partitioning (paper §III-A, enforcement): the victim search is restricted
// to the core's allowed mask, skipping inaccessible ways, and the used-bit
// reset rule is scoped to the core's owned ways ("if all the used bits of
// the owned ways are set to 1, we reset all used bits except the one that
// belongs to the line currently accessed").
type NRUPolicy struct {
	sets, ways, cores int
	used              []bool // sets*ways
	ptr               int    // cache-global replacement pointer (way index)
	masks             []WayMask
}

// NewNRUPolicy returns an NRU policy for the given geometry.
func NewNRUPolicy(sets, ways, cores int) *NRUPolicy {
	validateGeometry(sets, ways)
	if cores <= 0 {
		cores = 1
	}
	return &NRUPolicy{
		sets:  sets,
		ways:  ways,
		cores: cores,
		used:  make([]bool, sets*ways),
	}
}

// Kind returns NRU.
func (p *NRUPolicy) Kind() Kind { return NRU }

// Ways returns the associativity.
func (p *NRUPolicy) Ways() int { return p.ways }

// Sets returns the number of sets.
func (p *NRUPolicy) Sets() int { return p.sets }

// Pointer returns the current global replacement pointer (for tests and
// the anatomy example).
func (p *NRUPolicy) Pointer() int { return p.ptr }

// SetPartition installs per-core masks that scope the used-bit reset rule.
// Passing nil restores unpartitioned behavior (scope = the whole set).
func (p *NRUPolicy) SetPartition(masks []WayMask) {
	if masks == nil {
		p.masks = nil
		return
	}
	if len(masks) != p.cores {
		panic("plru: SetPartition mask count != cores")
	}
	p.masks = append(p.masks[:0], masks...)
}

// scope returns the set of ways over which the used-bit invariant is
// maintained for the given core.
func (p *NRUPolicy) scope(core int) WayMask {
	if p.masks == nil || core < 0 || core >= len(p.masks) || p.masks[core] == 0 {
		return Full(p.ways)
	}
	return p.masks[core]
}

// Touch sets the used bit of (set, way) and applies the scoped reset rule.
// It never allocates.
func (p *NRUPolicy) Touch(set, way, core int) {
	base := set * p.ways
	p.used[base+way] = true
	scope := p.scope(core)
	// If every used bit in the scope is now 1, clear the scope except the
	// accessed line. (If the accessed line is outside the scope — a hit in
	// a way the core does not own — the whole scope is cleared.)
	all := true
	for v := uint64(scope); v != 0; {
		w := bits.TrailingZeros64(v)
		v &^= 1 << uint(w)
		if !p.used[base+w] {
			all = false
			break
		}
	}
	if all {
		for v := uint64(scope); v != 0; {
			w := bits.TrailingZeros64(v)
			v &^= 1 << uint(w)
			if w != way {
				p.used[base+w] = false
			}
		}
	}
}

// TouchBatch applies deferred accesses in order (see Policy.TouchBatch).
// The scoped reset rule runs per record with whatever partition masks are
// installed at drain time, exactly as the equivalent Touch sequence would.
func (p *NRUPolicy) TouchBatch(recs []TouchRec) {
	for _, r := range recs {
		p.Touch(int(r.Set), int(r.Way), int(r.Core))
	}
}

// Fill is Touch: NRU keeps no per-line identity, so a fill just sets the
// used bit under the scoped reset rule.
func (p *NRUPolicy) Fill(set, way, core int, sig uint8) { p.Touch(set, way, core) }

// Invalidate clears the used bit of (set, way): the way reads as "not
// recently used", so the victim scan can reclaim it immediately.
func (p *NRUPolicy) Invalidate(set, way int) {
	p.used[set*p.ways+way] = false
}

// Victim scans from the global replacement pointer for the first allowed
// way with used == 0; if every allowed way has its bit set (possible under
// partitioning, where the set-wide invariant does not cover arbitrary
// subsets), the allowed ways are cleared first. The global pointer then
// rotates forward one way, as in the T2. Victim never allocates.
func (p *NRUPolicy) Victim(set, core int, allowed WayMask) int {
	checkVictimArgs(p, set, allowed)
	base := set * p.ways
	victim := p.scan(base, allowed)
	if victim < 0 {
		// No allowed way had used == 0: clear the allowed subset and
		// retake. This mirrors the scoped reset rule at eviction time.
		for v := uint64(allowed) & uint64(Full(p.ways)); v != 0; {
			w := bits.TrailingZeros64(v)
			v &^= 1 << uint(w)
			p.used[base+w] = false
		}
		victim = p.scan(base, allowed)
	}
	p.ptr = (p.ptr + 1) % p.ways
	return victim
}

// scan looks for the first allowed way with used == 0, starting at the
// global pointer and rotating forward.
func (p *NRUPolicy) scan(base int, allowed WayMask) int {
	for k := 0; k < p.ways; k++ {
		w := (p.ptr + k) % p.ways
		if allowed.Has(w) && !p.used[base+w] {
			return w
		}
	}
	return -1
}

// Used reports the used bit of (set, way); the NRU profiling logic reads
// these to estimate stack distances.
func (p *NRUPolicy) Used(set, way int) bool { return p.used[set*p.ways+way] }

// UsedCount returns U — the number of used bits set in the given set —
// which the paper's eSDH estimator consumes.
func (p *NRUPolicy) UsedCount(set int) int {
	base := set * p.ways
	n := 0
	for w := 0; w < p.ways; w++ {
		if p.used[base+w] {
			n++
		}
	}
	return n
}
