package plru

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestBTRequiresPowerOfTwoWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 6-way BT")
		}
	}()
	NewBTPolicy(1, 6)
}

func TestBTTouchedLineIsNotVictim(t *testing.T) {
	for _, ways := range []int{2, 4, 8, 16} {
		p := NewBTPolicy(1, ways)
		for w := 0; w < ways; w++ {
			p.Touch(0, w, 0)
			if v := p.Victim(0, 0, Full(ways)); v == w {
				t.Fatalf("%d-way: way %d is victim immediately after touch", ways, w)
			}
		}
	}
}

func TestBTVictimCyclesThroughAllWays(t *testing.T) {
	// Fill-and-evict with touches on fill visits every way before
	// revisiting any (pseudo-LRU covers the whole set).
	const ways = 8
	p := NewBTPolicy(1, ways)
	seen := make(map[int]bool)
	for i := 0; i < ways; i++ {
		v := p.Victim(0, 0, Full(ways))
		if seen[v] {
			t.Fatalf("way %d evicted twice within one round", v)
		}
		seen[v] = true
		p.Touch(0, v, 0)
	}
	if len(seen) != ways {
		t.Fatalf("only %d distinct victims in one round", len(seen))
	}
}

func TestBTEstStackPosBounds(t *testing.T) {
	const ways = 16
	p := NewBTPolicy(4, ways)
	rng := xrand.New(17)
	for i := 0; i < 2000; i++ {
		set := rng.Intn(4)
		w := rng.Intn(ways)
		p.Touch(set, w, 0)
		for probe := 0; probe < ways; probe++ {
			est := p.EstStackPos(set, probe)
			if est < 1 || est > ways {
				t.Fatalf("EstStackPos = %d out of [1,%d]", est, ways)
			}
		}
	}
}

func TestBTEstimatorExtremes(t *testing.T) {
	const ways = 16
	p := NewBTPolicy(1, ways)
	w := 5
	p.Touch(0, w, 0)
	if est := p.EstStackPos(0, w); est != 1 {
		t.Fatalf("just-touched line estimate = %d, want 1 (MRU)", est)
	}
	v := p.Victim(0, 0, Full(ways))
	if est := p.EstStackPos(0, v); est != ways {
		t.Fatalf("victim line estimate = %d, want %d (LRU)", est, ways)
	}
}

func TestBTEstimatorPaperExample(t *testing.T) {
	// Paper Figure 4(b): 4-way, line D (the highest way) has ID bits 11.
	// With tree bits such that the path reads 10, the estimate is
	// 4 - (11 XOR 10) = 4 - 1 = 3.
	p := NewBTPolicy(1, 4)
	// Way 3's path: root (heap 1), right child (heap 3). Set root=1,
	// node3=0 => PathBits(3) = 0b10.
	p.setNode(0, 1, 1)
	p.setNode(0, 3, 0)
	if got := p.PathBits(0, 3); got != 0b10 {
		t.Fatalf("PathBits = %b, want 10", got)
	}
	if got := p.IDBits(3); got != 0b11 {
		t.Fatalf("IDBits = %b, want 11", got)
	}
	if got := p.EstStackPos(0, 3); got != 3 {
		t.Fatalf("EstStackPos = %d, want 3", got)
	}
}

func TestBTVictimHasEstimateWays(t *testing.T) {
	// Property: the unconstrained victim is exactly the way whose
	// estimated stack position equals the associativity (XOR == 0).
	f := func(ops []uint8) bool {
		p := NewBTPolicy(1, 8)
		for _, op := range ops {
			p.Touch(0, int(op)%8, 0)
		}
		v := p.Victim(0, 0, Full(8))
		return p.EstStackPos(0, v) == 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBTEstimatesAreDistinctPerSubtreeDepth(t *testing.T) {
	// The estimator maps the 2^levels path-XOR values onto [1, ways];
	// across all ways of a set, values may repeat (the paper's Figure 4(d)
	// limitation), but each way's estimate must be consistent with its
	// path bits. Sanity-check the mapping is total.
	p := NewBTPolicy(1, 16)
	seen := make(map[int]bool)
	for w := 0; w < 16; w++ {
		seen[p.EstStackPos(0, w)] = true
	}
	if len(seen) == 0 {
		t.Fatal("no estimates produced")
	}
}

func TestBTVictimRespectsMask(t *testing.T) {
	p := NewBTPolicy(1, 16)
	rng := xrand.New(23)
	for i := 0; i < 500; i++ {
		mask := WayMask(rng.Uint64()) & Full(16)
		if mask == 0 {
			mask = Full(16)
		}
		v := p.Victim(0, 0, mask)
		if !mask.Has(v) {
			t.Fatalf("victim %d outside mask %v", v, mask)
		}
		p.Touch(0, rng.Intn(16), 0)
	}
}

func TestBTVictimForcedMatchesTruthTable(t *testing.T) {
	// Figure 5: up forces the upper (left) subtree regardless of the BT
	// bit; down forces the lower (right); neither defers to the bit.
	p := NewBTPolicy(1, 4)
	p.setNode(0, 1, 1) // root says right
	p.setNode(0, 2, 0)
	p.setNode(0, 3, 1)

	up := []bool{true, false}
	down := []bool{false, false}
	// Root forced left; node 2 bit (0) says left -> way 0.
	if v := p.VictimForced(0, up, down); v != 0 {
		t.Fatalf("forced-up victim = %d, want 0", v)
	}

	up = []bool{false, false}
	down = []bool{false, true}
	// Root follows bit (right); level-1 forced right -> way 3.
	if v := p.VictimForced(0, up, down); v != 3 {
		t.Fatalf("forced-down victim = %d, want 3", v)
	}

	up = []bool{false, false}
	down = []bool{false, false}
	// No forcing: root right (bit 1), node 3 bit 1 -> way 3.
	if v := p.VictimForced(0, up, down); v != 3 {
		t.Fatalf("unforced victim = %d, want 3", v)
	}
}

func TestBTVictimForcedPanicsOnConflict(t *testing.T) {
	p := NewBTPolicy(1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when up and down both forced")
		}
	}()
	p.VictimForced(0, []bool{true, false}, []bool{true, false})
}

// forceVectorsForBlock builds up/down vectors that confine victim search to
// the aligned block [lo, lo+size) of a `ways`-way set, mirroring what the
// buddy partitioner produces.
func forceVectorsForBlock(ways, lo, size int) (up, down []bool) {
	levels := 0
	for 1<<uint(levels) < ways {
		levels++
	}
	up = make([]bool, levels)
	down = make([]bool, levels)
	span := ways
	base := 0
	for d := 0; d < levels && span > size; d++ {
		mid := base + span/2
		if lo < mid {
			up[d] = true
		} else {
			down[d] = true
			base = mid
		}
		span /= 2
	}
	return up, down
}

func TestBTForcedAgreesWithMaskOnAlignedBlocks(t *testing.T) {
	// For every aligned power-of-two block, VictimForced and Victim with
	// the corresponding mask must select the same way, whatever the tree
	// state. This ties the paper's up/down enforcement to the generic
	// mask enforcement used elsewhere.
	const ways = 16
	rng := xrand.New(99)
	p := NewBTPolicy(1, ways)
	for trial := 0; trial < 300; trial++ {
		p.Touch(0, rng.Intn(ways), 0)
		for size := 1; size <= ways; size *= 2 {
			for lo := 0; lo < ways; lo += size {
				up, down := forceVectorsForBlock(ways, lo, size)
				mask := rangeMask(lo, lo+size)
				vf := p.VictimForced(0, up, down)
				vm := p.Victim(0, 0, mask)
				if vf != vm {
					t.Fatalf("block [%d,%d): forced victim %d != masked victim %d",
						lo, lo+size, vf, vm)
				}
				if !mask.Has(vf) {
					t.Fatalf("forced victim %d escaped block [%d,%d)", vf, lo, lo+size)
				}
			}
		}
	}
}

func TestBTOnlyLog2BitsChangePerTouch(t *testing.T) {
	// Table I(b): BT updates exactly log2(A) bits per access.
	const ways = 16
	p := NewBTPolicy(1, ways)
	rng := xrand.New(5)
	for i := 0; i < 200; i++ {
		before := append([]uint8(nil), p.tree...)
		p.Touch(0, rng.Intn(ways), 0)
		changed := 0
		for j := range before {
			if before[j] != p.tree[j] {
				changed++
			}
		}
		if changed > 4 {
			t.Fatalf("touch changed %d bits, max is log2(16)=4", changed)
		}
	}
}

func TestBTPathBitsRoundTrip(t *testing.T) {
	// After touching way w, PathBits(w) must be the complement of IDBits
	// within levels bits (every bit points away), giving estimate 1.
	const ways = 16
	p := NewBTPolicy(1, ways)
	for w := 0; w < ways; w++ {
		p.Touch(0, w, 0)
		want := (ways - 1) ^ w // complement of ID bits in 4 bits
		if got := p.PathBits(0, w); got != want {
			t.Fatalf("way %d: PathBits = %04b, want %04b", w, got, want)
		}
	}
}
