package plru

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestLRUInitialAgesArePermutation(t *testing.T) {
	p := NewLRUPolicy(4, 8)
	for s := 0; s < 4; s++ {
		seen := make([]bool, 8)
		for w := 0; w < 8; w++ {
			d := p.Dist(s, w)
			if d < 1 || d > 8 || seen[d-1] {
				t.Fatalf("set %d: stack positions are not a permutation", s)
			}
			seen[d-1] = true
		}
	}
}

func TestLRUTouchPromotesToMRU(t *testing.T) {
	p := NewLRUPolicy(1, 4)
	p.Touch(0, 2, 0)
	if d := p.Dist(0, 2); d != 1 {
		t.Fatalf("touched way has stack position %d, want 1", d)
	}
}

func TestLRUPaperFigure2Example(t *testing.T) {
	// Paper Figure 2(a): set holds {A,B,C,D} with A MRU and D LRU; after
	// accesses to C then D, the next access to D has stack distance 1 and
	// B sits in the LRU position.
	p := NewLRUPolicy(1, 4)
	// Establish A=way0 MRU ... D=way3 LRU by touching in reverse order.
	for w := 3; w >= 0; w-- {
		p.Touch(0, w, 0)
	}
	if p.Dist(0, 0) != 1 || p.Dist(0, 3) != 4 {
		t.Fatalf("setup failed: order %v", p.order(0))
	}
	p.Touch(0, 2, 0) // access C
	p.Touch(0, 3, 0) // access D
	if d := p.Dist(0, 3); d != 1 {
		t.Errorf("second access to D sees stack distance %d, want 1", d)
	}
	if d := p.Dist(0, 1); d != 4 {
		t.Errorf("B should be at LRU position, has %d", d)
	}
}

func TestLRUVictimIsOldest(t *testing.T) {
	p := NewLRUPolicy(1, 4)
	for w := 0; w < 4; w++ {
		p.Touch(0, w, 0) // 3 is MRU, 0 is LRU
	}
	if v := p.Victim(0, 0, Full(4)); v != 0 {
		t.Fatalf("victim = %d, want 0", v)
	}
}

func TestLRUVictimRespectsMask(t *testing.T) {
	p := NewLRUPolicy(1, 4)
	for w := 0; w < 4; w++ {
		p.Touch(0, w, 0) // LRU order: 0,1,2,3 (0 oldest)
	}
	mask := WayMask(0).With(2).With(3)
	if v := p.Victim(0, 0, mask); v != 2 {
		t.Fatalf("masked victim = %d, want 2 (oldest allowed)", v)
	}
}

func TestLRUVictimPanicsOnEmptyMask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty mask")
		}
	}()
	NewLRUPolicy(1, 4).Victim(0, 0, 0)
}

func TestLRUStackProperty(t *testing.T) {
	// The inclusion (stack) property: an access that hits at stack
	// distance d in a cache of associativity A hits in any cache of
	// associativity >= d with the same access sequence. We verify by
	// running the same random sequence against different associativities
	// mapped onto a single set and checking hit sets are nested.
	const accesses = 2000
	const addrSpace = 24
	rng := xrand.New(101)
	seq := make([]int, accesses)
	for i := range seq {
		seq[i] = rng.Intn(addrSpace)
	}

	hitsAt := func(ways int) []bool {
		p := NewLRUPolicy(1, ways)
		content := make([]int, ways)
		for i := range content {
			content[i] = -1 - i // unique invalid tags
		}
		hits := make([]bool, accesses)
		for i, a := range seq {
			way := -1
			for w, tag := range content {
				if tag == a {
					way = w
					break
				}
			}
			if way >= 0 {
				hits[i] = true
			} else {
				way = p.Victim(0, 0, Full(ways))
				content[way] = a
			}
			p.Touch(0, way, 0)
		}
		return hits
	}

	h4, h8, h16 := hitsAt(4), hitsAt(8), hitsAt(16)
	for i := 0; i < accesses; i++ {
		if h4[i] && !h8[i] {
			t.Fatalf("access %d: hit in 4-way but miss in 8-way (stack property violated)", i)
		}
		if h8[i] && !h16[i] {
			t.Fatalf("access %d: hit in 8-way but miss in 16-way (stack property violated)", i)
		}
	}
}

func TestLRUAgesStayPermutation(t *testing.T) {
	f := func(ops []uint8) bool {
		p := NewLRUPolicy(2, 8)
		for _, op := range ops {
			set := int(op>>7) & 1
			way := int(op) % 8
			p.Touch(set, way, 0)
		}
		for s := 0; s < 2; s++ {
			seen := make([]bool, 8)
			for w := 0; w < 8; w++ {
				d := p.Dist(s, w)
				if d < 1 || d > 8 || seen[d-1] {
					return false
				}
				seen[d-1] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLRUDistMatchesVictimOrder(t *testing.T) {
	// Property: evicting repeatedly without touching yields ways in
	// decreasing stack-position order.
	p := NewLRUPolicy(1, 8)
	rng := xrand.New(7)
	for i := 0; i < 100; i++ {
		p.Touch(0, rng.Intn(8), 0)
	}
	mask := Full(8)
	prev := 9
	for i := 0; i < 8; i++ {
		v := p.Victim(0, 0, mask)
		d := p.Dist(0, v)
		if d >= prev {
			t.Fatalf("eviction %d: stack position %d not decreasing (prev %d)", i, d, prev)
		}
		prev = d
		mask = mask.Without(v)
		if mask == 0 {
			break
		}
	}
}
