package plru_test

import (
	"fmt"

	"repro/pkg/plru"
)

// A policy tracks recency for every set of a cache; Victim answers "which
// way do I evict?" restricted to an allowed mask — the paper's global
// replacement masks, and equally a tenant's way quota.
func Example() {
	p := plru.New(plru.LRU, 1, 4, 1, 0) // 1 set, 4 ways, 1 core

	// Fill ways 0..3 in order: way 0 becomes the least recently used.
	for w := 0; w < 4; w++ {
		p.Touch(0, w, 0)
	}
	fmt.Println("unrestricted victim:", p.Victim(0, 0, plru.Full(4)))

	// Restrict replacement to ways {2,3}: the LRU way inside the mask.
	mask := plru.WayMask(0).With(2).With(3)
	fmt.Println("masked victim:     ", p.Victim(0, 0, mask))

	// A hit on way 2 makes way 3 the masked victim.
	p.Touch(0, 2, 0)
	fmt.Println("after touching 2:  ", p.Victim(0, 0, mask))
	// Output:
	// unrestricted victim: 0
	// masked victim:      2
	// after touching 2:   3
}

// Invalidate clears a way's recency when its line leaves the cache
// outside the replacement path (an explicit delete, a TTL expiry), making
// the freed way the preferred next victim.
func ExamplePolicy_invalidate() {
	p := plru.New(plru.BT, 1, 8, 1, 0)
	for w := 0; w < 8; w++ {
		p.Touch(0, w, 0)
	}
	p.Invalidate(0, 5)
	fmt.Println("victim after invalidating way 5:", p.Victim(0, 0, plru.Full(8)))
	// Output:
	// victim after invalidating way 5: 5
}

// WayMask is a bitmask over cache ways with allocation-free accessors.
func ExampleWayMask() {
	m := plru.Full(8).Without(0).Without(7)
	fmt.Println(m, "holds", m.Count(), "ways; third is", m.Nth(2))
	// Output:
	// {1,2,3,4,5,6} holds 6 ways; third is 3
}
