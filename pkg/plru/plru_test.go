package plru

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		LRU: "LRU", NRU: "NRU", BT: "BT", Random: "Random",
		AWRP: "AWRP", ARC: "ARC",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(42).String(); got != "Kind(42)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestParseKind(t *testing.T) {
	for _, name := range []string{"LRU", "NRU", "BT", "Random", "AWRP", "ARC"} {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("round trip %q -> %q", name, k.String())
		}
	}
	if _, err := ParseKind("plru"); err == nil {
		t.Error("ParseKind accepted unknown name")
	}
}

func TestFullMask(t *testing.T) {
	if Full(0) != 0 {
		t.Error("Full(0) != 0")
	}
	if Full(4) != 0xF {
		t.Errorf("Full(4) = %x", Full(4))
	}
	if Full(64) != ^WayMask(0) {
		t.Errorf("Full(64) = %x", Full(64))
	}
	if Full(-3) != 0 {
		t.Error("Full(negative) != 0")
	}
}

func TestWayMaskOps(t *testing.T) {
	m := WayMask(0).With(1).With(5)
	if !m.Has(1) || !m.Has(5) || m.Has(0) {
		t.Fatalf("mask membership wrong: %v", m)
	}
	if m.Count() != 2 {
		t.Fatalf("Count = %d", m.Count())
	}
	m = m.Without(1)
	if m.Has(1) || !m.Has(5) {
		t.Fatalf("Without failed: %v", m)
	}
	ws := WayMask(0).With(3).With(0).With(7).Ways()
	if len(ws) != 3 || ws[0] != 0 || ws[1] != 3 || ws[2] != 7 {
		t.Fatalf("Ways() = %v", ws)
	}
	if s := WayMask(0).With(0).With(2).String(); s != "{0,2}" {
		t.Fatalf("String() = %q", s)
	}
}

func TestWayMaskCountMatchesWaysLen(t *testing.T) {
	f := func(m uint64) bool {
		wm := WayMask(m)
		return wm.Count() == len(wm.Ways())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewConstructsAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		p := New(k, 8, 16, 2, 1)
		if p.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, p.Kind())
		}
		if p.Ways() != 16 || p.Sets() != 8 {
			t.Errorf("%v geometry wrong: %d ways %d sets", k, p.Ways(), p.Sets())
		}
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown kind")
		}
	}()
	New(Kind(99), 1, 4, 1, 0)
}

// TestAllPoliciesVictimInMask exercises the shared Victim contract across
// every policy: the returned way is always within the allowed mask.
func TestAllPoliciesVictimInMask(t *testing.T) {
	for _, k := range Kinds() {
		p := New(k, 4, 16, 2, 7)
		masks := []WayMask{
			Full(16),
			Full(8),
			Full(16) &^ Full(8),
			WayMask(0).With(3),
			WayMask(0).With(0).With(15),
		}
		for trial := 0; trial < 200; trial++ {
			for _, m := range masks {
				set := trial % 4
				v := p.Victim(set, trial%2, m)
				if !m.Has(v) {
					t.Fatalf("%v: victim %d outside mask %v", k, v, m)
				}
				p.Touch(set, v, trial%2)
			}
		}
	}
}

func TestRandomVictimCoversMask(t *testing.T) {
	p := NewRandomPolicy(1, 8, 42)
	mask := WayMask(0).With(1).With(4).With(6)
	seen := map[int]int{}
	for i := 0; i < 3000; i++ {
		seen[p.Victim(0, 0, mask)]++
	}
	for _, w := range mask.Ways() {
		if seen[w] < 500 {
			t.Errorf("way %d selected only %d/3000 times", w, seen[w])
		}
	}
	if len(seen) != 3 {
		t.Fatalf("victims outside mask: %v", seen)
	}
}

func TestRangeMask(t *testing.T) {
	if rangeMask(0, 4) != Full(4) {
		t.Errorf("rangeMask(0,4) = %v", rangeMask(0, 4))
	}
	if rangeMask(4, 8) != Full(8)&^Full(4) {
		t.Errorf("rangeMask(4,8) = %v", rangeMask(4, 8))
	}
	if rangeMask(3, 3) != 0 {
		t.Errorf("rangeMask(3,3) = %v", rangeMask(3, 3))
	}
}
