package plru

// LRUPolicy implements true Least Recently Used replacement with exact
// per-line stack positions. It is the reference policy the paper compares
// against, and also serves as the profiling substrate for the classic
// stack-distance histogram: Dist reports the 1-based LRU stack position of
// a line before it is touched, which is exactly what the SDH records.
//
// Representation: one age counter per line; age 0 is the MRU position and
// age ways-1 the LRU position. Ages within a set are always a permutation
// of [0, ways).
type LRUPolicy struct {
	sets, ways int
	age        []uint8 // sets*ways, age[set*ways+way]
}

// NewLRUPolicy returns an LRU policy for the given geometry. All lines
// start with a well-defined arbitrary recency order (way w has age w).
func NewLRUPolicy(sets, ways int) *LRUPolicy {
	validateGeometry(sets, ways)
	if ways > 256 {
		panic("plru: LRU supports at most 256 ways")
	}
	p := &LRUPolicy{sets: sets, ways: ways, age: make([]uint8, sets*ways)}
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			p.age[s*ways+w] = uint8(w)
		}
	}
	return p
}

// Kind returns LRU.
func (p *LRUPolicy) Kind() Kind { return LRU }

// Ways returns the associativity.
func (p *LRUPolicy) Ways() int { return p.ways }

// Sets returns the number of sets.
func (p *LRUPolicy) Sets() int { return p.sets }

// SetPartition is a no-op for LRU: hits never consult the partition and
// victim scoping is entirely expressed through the Victim mask.
func (p *LRUPolicy) SetPartition(masks []WayMask) {}

// Touch promotes way to the MRU position of set, aging every line that was
// more recent than it. This is the paper's worst-case A*log2(A)-bit update.
func (p *LRUPolicy) Touch(set, way, core int) {
	base := set * p.ways
	old := p.age[base+way]
	for w := 0; w < p.ways; w++ {
		if a := p.age[base+w]; a < old {
			p.age[base+w] = a + 1
		}
	}
	p.age[base+way] = 0
}

// TouchBatch applies deferred accesses in order (see Policy.TouchBatch).
func (p *LRUPolicy) TouchBatch(recs []TouchRec) {
	for _, r := range recs {
		p.Touch(int(r.Set), int(r.Way), int(r.Core))
	}
}

// Fill is Touch: LRU keeps no per-line identity, so a new line simply
// becomes MRU.
func (p *LRUPolicy) Fill(set, way, core int, sig uint8) { p.Touch(set, way, core) }

// Invalidate demotes way to the LRU position of set, promoting every line
// that was older than it by one step; the freed way becomes the unmasked
// victim until it is touched again.
func (p *LRUPolicy) Invalidate(set, way int) {
	base := set * p.ways
	old := p.age[base+way]
	for w := 0; w < p.ways; w++ {
		if a := p.age[base+w]; a > old {
			p.age[base+w] = a - 1
		}
	}
	p.age[base+way] = uint8(p.ways - 1)
}

// Victim returns the least recently used way within the allowed mask.
func (p *LRUPolicy) Victim(set, core int, allowed WayMask) int {
	checkVictimArgs(p, set, allowed)
	base := set * p.ways
	best, bestAge := -1, -1
	for w := 0; w < p.ways; w++ {
		if !allowed.Has(w) {
			continue
		}
		if a := int(p.age[base+w]); a > bestAge {
			best, bestAge = w, a
		}
	}
	return best
}

// Dist returns the 1-based LRU stack position of way in set: 1 means MRU,
// Ways() means LRU. Profiling reads this before Touch to obtain the access's
// stack distance.
func (p *LRUPolicy) Dist(set, way int) int {
	return int(p.age[set*p.ways+way]) + 1
}

// order returns the ways of set ordered MRU first. Exposed for tests.
func (p *LRUPolicy) order(set int) []int {
	out := make([]int, p.ways)
	base := set * p.ways
	for w := 0; w < p.ways; w++ {
		out[p.age[base+w]] = w
	}
	return out
}
