package plru

import "testing"

// FuzzVictimInMask drives every policy family through a fuzzer-chosen
// schedule of Touch/Victim/SetPartition operations and checks the core
// contract the partitioning enforcement relies on: Victim never returns a
// way outside the allowed mask (nor outside the geometry, even when the
// mask carries bits above the associativity).
func FuzzVictimInMask(f *testing.F) {
	f.Add(uint8(0), uint8(2), uint64(1), []byte{0x00, 0x7F, 0xA5})
	f.Add(uint8(1), uint8(4), uint64(7), []byte{0xFF, 0x01, 0x80, 0x3C})
	f.Add(uint8(2), uint8(3), uint64(9), []byte{0x10, 0x42})
	f.Add(uint8(3), uint8(6), uint64(3), []byte{0xEE, 0x12, 0x9A, 0x55, 0x04})
	f.Fuzz(func(t *testing.T, kindRaw, waysExp uint8, seed uint64, ops []byte) {
		kind := Kind(int(kindRaw) % 4)
		ways := 1 << (int(waysExp) % 7) // 1..64: every policy accepts these
		const sets, cores = 8, 3
		p := New(kind, sets, ways, cores, seed)

		// A cheap deterministic stream to stretch each op byte into a mask.
		rng := seed | 1
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}

		for i, op := range ops {
			set := int(op) % sets
			core := int(op>>3) % cores
			switch op % 3 {
			case 0:
				p.Touch(set, int(next()%uint64(ways)), core)
			case 1:
				// Random mask, sometimes with bits above the associativity.
				mask := WayMask(next())
				if mask&Full(ways) == 0 {
					mask |= Full(ways)
				}
				v := p.Victim(set, core, mask)
				if v < 0 || v >= ways {
					t.Fatalf("%v ways=%d op=%d: victim %d outside geometry", kind, ways, i, v)
				}
				if !mask.Has(v) {
					t.Fatalf("%v ways=%d op=%d: victim %d outside mask %v", kind, ways, i, v, mask)
				}
				p.Touch(set, v, core)
			default:
				// Install (or clear) a partition mid-stream; masks may be
				// empty for some cores, which scope() treats as "whole set".
				if op&0x40 != 0 {
					p.SetPartition(nil)
				} else {
					masks := make([]WayMask, cores)
					for c := range masks {
						masks[c] = WayMask(next()) & Full(ways)
					}
					p.SetPartition(masks)
				}
			}
		}
	})
}
