package plru

import "testing"

// FuzzVictimInMask drives every policy family through a fuzzer-chosen
// schedule of Touch/Fill/Invalidate/Victim/SetPartition operations and
// checks the core contract the partitioning enforcement relies on: Victim
// never returns a way outside the allowed mask (nor outside the geometry,
// even when the mask carries bits above the associativity).
func FuzzVictimInMask(f *testing.F) {
	f.Add(uint8(0), uint8(2), uint64(1), []byte{0x00, 0x7F, 0xA5})
	f.Add(uint8(1), uint8(4), uint64(7), []byte{0xFF, 0x01, 0x80, 0x3C})
	f.Add(uint8(2), uint8(3), uint64(9), []byte{0x10, 0x42})
	f.Add(uint8(3), uint8(6), uint64(3), []byte{0xEE, 0x12, 0x9A, 0x55, 0x04})
	f.Add(uint8(4), uint8(3), uint64(11), []byte{0x21, 0x13, 0x08, 0x6D})
	f.Add(uint8(5), uint8(5), uint64(13), []byte{0xC4, 0x3B, 0x57, 0x02, 0x99})
	f.Fuzz(func(t *testing.T, kindRaw, waysExp uint8, seed uint64, ops []byte) {
		kinds := Kinds()
		kind := kinds[int(kindRaw)%len(kinds)]
		ways := 1 << (int(waysExp) % 7) // 1..64: every policy accepts these
		const sets, cores = 8, 3
		p := New(kind, sets, ways, cores, seed)

		// A cheap deterministic stream to stretch each op byte into a mask.
		rng := seed | 1
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}

		for i, op := range ops {
			set := int(op) % sets
			core := int(op>>3) % cores
			switch op % 5 {
			case 0:
				p.Touch(set, int(next()%uint64(ways)), core)
			case 1:
				// Random mask, sometimes with bits above the associativity.
				mask := WayMask(next())
				if mask&Full(ways) == 0 {
					mask |= Full(ways)
				}
				v := p.Victim(set, core, mask)
				if v < 0 || v >= ways {
					t.Fatalf("%v ways=%d op=%d: victim %d outside geometry", kind, ways, i, v)
				}
				if !mask.Has(v) {
					t.Fatalf("%v ways=%d op=%d: victim %d outside mask %v", kind, ways, i, v, mask)
				}
				p.Touch(set, v, core)
			case 2:
				p.Fill(set, int(next()%uint64(ways)), core, uint8(next()))
			case 3:
				p.Invalidate(set, int(next()%uint64(ways)))
			default:
				// Install (or clear) a partition mid-stream; masks may be
				// empty for some cores, which scope() treats as "whole set".
				if op&0x40 != 0 {
					p.SetPartition(nil)
				} else {
					masks := make([]WayMask, cores)
					for c := range masks {
						masks[c] = WayMask(next()) & Full(ways)
					}
					p.SetPartition(masks)
				}
			}
		}
	})
}

// FuzzTouchBatchEquivalence pins the TouchBatch contract for every policy
// family: applying a fuzzer-chosen record stream through one TouchBatch
// call must leave the policy in exactly the state the equivalent sequence
// of Touch/Fill calls produces — observed through the victim choices of
// both instances over a shared schedule of masks.
func FuzzTouchBatchEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint64(5), []byte{0x01, 0x82, 0x13})
	f.Add(uint8(4), uint8(3), uint64(9), []byte{0xFF, 0x40, 0x2A, 0x07})
	f.Add(uint8(5), uint8(4), uint64(2), []byte{0x90, 0x65, 0x11, 0xC3, 0x38})
	f.Fuzz(func(t *testing.T, kindRaw, waysExp uint8, seed uint64, ops []byte) {
		kinds := Kinds()
		kind := kinds[int(kindRaw)%len(kinds)]
		ways := 1 << (int(waysExp) % 7)
		const sets, cores = 4, 2
		batched := New(kind, sets, ways, cores, seed)
		direct := New(kind, sets, ways, cores, seed)

		rng := seed | 1
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}

		recs := make([]TouchRec, 0, len(ops))
		for _, op := range ops {
			r := TouchRec{
				Set:  int32(int(op) % sets),
				Way:  int32(next() % uint64(ways)),
				Core: int32(int(op>>4) % cores),
			}
			if op&0x80 != 0 {
				r.Sig = FillRec | int32(uint8(next()))
			}
			recs = append(recs, r)
		}

		batched.TouchBatch(recs)
		for _, r := range recs {
			if r.Sig&FillRec != 0 {
				direct.Fill(int(r.Set), int(r.Way), int(r.Core), uint8(r.Sig))
			} else {
				direct.Touch(int(r.Set), int(r.Way), int(r.Core))
			}
		}

		// Same victim schedule against both instances: any state divergence
		// shows up as a differing choice (both policies see identical masks,
		// so even stateful Victims — NRU's pointer, Random's RNG — stay in
		// lockstep when the states match).
		for trial := 0; trial < 32; trial++ {
			set := trial % sets
			mask := WayMask(next())
			if mask&Full(ways) == 0 {
				mask |= Full(ways)
			}
			vb := batched.Victim(set, trial%cores, mask)
			vd := direct.Victim(set, trial%cores, mask)
			if vb != vd {
				t.Fatalf("%v ways=%d trial=%d: batched victim %d != direct victim %d (mask %v)",
					kind, ways, trial, vb, vd, mask)
			}
			batched.Touch(set, vb, trial%cores)
			direct.Touch(set, vd, trial%cores)
		}
	})
}
