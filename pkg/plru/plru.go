// Package plru provides allocation-free, per-set recency state for
// set-associative caches under the replacement policies studied by
// Kedzierski et al., "Adapting cache partitioning algorithms to pseudo-LRU
// replacement policies" (IPDPS 2010): true LRU, NRU (Not Recently Used, as
// in the Sun UltraSPARC T2) and BT (Binary Tree pseudo-LRU, as in IBM
// designs), plus a Random reference policy.
//
// Every policy manages the recency state for all sets of one cache and
// supports partition-aware victim selection: Victim takes a WayMask that
// restricts which ways may be evicted, which is how the paper's "global
// replacement masks" enforcement works — and, equally, how a multi-tenant
// software cache enforces per-tenant way quotas (see repro/pkg/cpacache).
// The BT policy additionally exposes the paper's per-level up/down force
// vectors (VictimForced), and each policy exposes the introspection the
// corresponding profiling logic needs (LRU stack distance, NRU used-bit
// counts, BT path bits).
//
// Policies are not safe for concurrent use; callers own the locking (a
// sharded cache typically keeps one policy instance per shard behind the
// shard lock). Touch and Victim never allocate on any policy except
// Random's mask enumeration, so they are safe for hot paths.
package plru

import (
	"fmt"
	"math/bits"
)

// Kind identifies a replacement policy family.
type Kind int

// The replacement policy families used in the paper's evaluation
// (LRU/NRU/BT/Random), plus the adaptive policies layered on afterwards:
// AWRP (Adaptive Weight Ranking Policy, arXiv:1107.4851) and ARC (an
// ARC-style adaptive policy with ghost tiers, after arXiv:1503.07624).
const (
	LRU    Kind = iota // true Least Recently Used
	NRU                // Not Recently Used (used bit + global replacement pointer)
	BT                 // Binary Tree pseudo-LRU
	Random             // uniform random victim (reference)
	AWRP               // Adaptive Weight Ranking (frequency + recency weights)
	ARC                // ARC-style adaptive (T1/T2 tiers + ghost lists)
)

// String returns the conventional short name of the policy kind.
func (k Kind) String() string {
	switch k {
	case LRU:
		return "LRU"
	case NRU:
		return "NRU"
	case BT:
		return "BT"
	case Random:
		return "Random"
	case AWRP:
		return "AWRP"
	case ARC:
		return "ARC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns every policy kind in declaration order. The slice is
// freshly allocated; callers may modify it.
func Kinds() []Kind {
	return []Kind{LRU, NRU, BT, Random, AWRP, ARC}
}

// ParseKind converts a policy name ("LRU", "NRU", "BT", "Random", "AWRP",
// "ARC", case-sensitive) into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "LRU":
		return LRU, nil
	case "NRU":
		return NRU, nil
	case "BT":
		return BT, nil
	case "Random":
		return Random, nil
	case "AWRP":
		return AWRP, nil
	case "ARC":
		return ARC, nil
	}
	return 0, fmt.Errorf("plru: unknown policy %q", s)
}

// WayMask is a bitmask over cache ways; bit w set means way w is included.
// The zero mask is "no ways"; use Full for "all ways".
type WayMask uint64

// MaxWays is the largest associativity a WayMask can describe.
const MaxWays = 64

// Full returns a mask with the low `ways` bits set.
func Full(ways int) WayMask {
	if ways <= 0 {
		return 0
	}
	if ways >= MaxWays {
		return ^WayMask(0)
	}
	return WayMask(1)<<uint(ways) - 1
}

// Has reports whether way w is in the mask.
func (m WayMask) Has(w int) bool { return m&(1<<uint(w)) != 0 }

// With returns the mask with way w added.
func (m WayMask) With(w int) WayMask { return m | 1<<uint(w) }

// Without returns the mask with way w removed.
func (m WayMask) Without(w int) WayMask { return m &^ (1 << uint(w)) }

// Count returns the number of ways in the mask.
func (m WayMask) Count() int { return bits.OnesCount64(uint64(m)) }

// Nth returns the i-th way of the mask in ascending order (0-based), or
// -1 when the mask holds fewer than i+1 ways. It never allocates.
func (m WayMask) Nth(i int) int {
	for v := uint64(m); v != 0; i-- {
		w := bits.TrailingZeros64(v)
		if i == 0 {
			return w
		}
		v &^= 1 << uint(w)
	}
	return -1
}

// Ways returns the way indices in the mask in ascending order.
func (m WayMask) Ways() []int {
	out := make([]int, 0, m.Count())
	for v := uint64(m); v != 0; {
		w := bits.TrailingZeros64(v)
		out = append(out, w)
		v &^= 1 << uint(w)
	}
	return out
}

// String renders the mask as e.g. "{0,1,5}".
func (m WayMask) String() string {
	ws := m.Ways()
	s := "{"
	for i, w := range ws {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(w)
	}
	return s + "}"
}

// TouchRec is one deferred recency record: an access to way Way of set
// Set by core Core whose Touch was postponed by the caller (typically a
// lock-free read path that batches recency updates — see
// repro/pkg/cpacache's touch ring). Records are applied in slice order by
// TouchBatch.
//
// Sig distinguishes hits from fills for the adaptive policies: zero means
// a plain Touch; FillRec|sigByte means the record is a deferred Fill
// whose line signature is the low 8 bits. The static policies ignore the
// distinction (their Fill is Touch).
type TouchRec struct {
	Set, Way, Core int32
	Sig            int32
}

// FillRec flags a TouchRec as a deferred Fill; the low 8 bits of Sig
// carry the line signature passed to Fill.
const FillRec int32 = 1 << 8

// Policy is the common behavior of a replacement policy instance covering
// every set of one cache.
type Policy interface {
	// Kind identifies the policy family.
	Kind() Kind
	// Ways returns the cache associativity the policy was built for.
	Ways() int
	// Sets returns the number of sets the policy tracks.
	Sets() int
	// Touch records an access — hit or fill — to way `way` of set `set`
	// by core `core`, updating the recency state.
	Touch(set, way, core int)
	// Fill records that a *new line* was installed in way `way` of set
	// `set` by core `core`. `sig` is a small partial signature of the
	// line's identity (the caller's packed tag byte, or any stable hash
	// byte); the adaptive policies use it to probe and maintain their
	// ghost/history state, and to reset per-line frequency. For the
	// static policies Fill is exactly Touch. Fill never allocates.
	Fill(set, way, core int, sig uint8)
	// TouchBatch applies a batch of deferred accesses in order, exactly
	// as the equivalent sequence of Touch (or, for records flagged
	// FillRec, Fill) calls would. It exists so
	// callers that defer recency (pseudo-LRU state tolerates late and
	// even dropped touches) can drain a whole buffer through one call
	// that stays on the policy's concrete type. TouchBatch never
	// allocates.
	TouchBatch(recs []TouchRec)
	// Victim selects the way to evict in `set` for `core`, restricted to
	// the allowed mask. The mask must be non-empty; Victim panics on an
	// empty mask because that is always a caller bug.
	Victim(set, core int, allowed WayMask) int
	// Invalidate clears any recency the way had accumulated in `set`,
	// making it the policy's preferred next victim (exactly how a hardware
	// valid-bit clear interacts with replacement state). Callers use it
	// when a line leaves the cache outside the replacement path — an
	// explicit delete, an external invalidation — so the recency state
	// never points at a stale line. Invalidate never allocates.
	Invalidate(set, way int)
	// SetPartition installs per-core way masks that scope NRU's used-bit
	// reset rule (and are available to any policy that wants partition
	// awareness on hits). A nil slice returns to unpartitioned behavior.
	SetPartition(masks []WayMask)
}

// New constructs a policy of the given kind for a cache with `sets` sets,
// `ways` ways and `cores` sharer cores. The seed is used only by Random.
func New(kind Kind, sets, ways, cores int, seed uint64) Policy {
	switch kind {
	case LRU:
		return NewLRUPolicy(sets, ways)
	case NRU:
		return NewNRUPolicy(sets, ways, cores)
	case BT:
		return NewBTPolicy(sets, ways)
	case Random:
		return NewRandomPolicy(sets, ways, seed)
	case AWRP:
		return NewAWRPPolicy(sets, ways)
	case ARC:
		return NewARCPolicy(sets, ways)
	default:
		panic(fmt.Sprintf("plru: unknown kind %d", kind))
	}
}

func validateGeometry(sets, ways int) {
	if sets <= 0 {
		panic("plru: sets must be positive")
	}
	if ways <= 0 || ways > MaxWays {
		panic(fmt.Sprintf("plru: ways must be in [1,%d]", MaxWays))
	}
}

func checkVictimArgs(p Policy, set int, allowed WayMask) {
	if set < 0 || set >= p.Sets() {
		panic(fmt.Sprintf("plru: set %d out of range [0,%d)", set, p.Sets()))
	}
	if allowed&Full(p.Ways()) == 0 {
		panic("plru: Victim called with empty allowed mask")
	}
}
