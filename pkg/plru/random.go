package plru

import "repro/internal/xrand"

// RandomPolicy evicts a uniformly random allowed way. It keeps no recency
// state. The paper notes NRU's global replacement pointer "guarantees a
// random-like replacement"; this policy is the limit case and serves as a
// reference curve in the Figure 6 extension.
type RandomPolicy struct {
	sets, ways int
	rng        *xrand.RNG
}

// NewRandomPolicy returns a Random policy seeded deterministically.
func NewRandomPolicy(sets, ways int, seed uint64) *RandomPolicy {
	validateGeometry(sets, ways)
	return &RandomPolicy{sets: sets, ways: ways, rng: xrand.New(seed)}
}

// Kind returns Random.
func (p *RandomPolicy) Kind() Kind { return Random }

// Ways returns the associativity.
func (p *RandomPolicy) Ways() int { return p.ways }

// Sets returns the number of sets.
func (p *RandomPolicy) Sets() int { return p.sets }

// SetPartition is a no-op for Random.
func (p *RandomPolicy) SetPartition(masks []WayMask) {}

// Touch is a no-op: random replacement keeps no recency state.
func (p *RandomPolicy) Touch(set, way, core int) {}

// TouchBatch is a no-op: random replacement keeps no recency state.
func (p *RandomPolicy) TouchBatch(recs []TouchRec) {}

// Fill is a no-op, like Touch.
func (p *RandomPolicy) Fill(set, way, core int, sig uint8) {}

// Invalidate is a no-op: there is no recency state to clear.
func (p *RandomPolicy) Invalidate(set, way int) {}

// Victim returns a uniformly random way from the allowed mask. It never
// allocates: the i-th set bit is selected directly from the mask.
func (p *RandomPolicy) Victim(set, core int, allowed WayMask) int {
	checkVictimArgs(p, set, allowed)
	m := allowed & Full(p.ways)
	return m.Nth(p.rng.Intn(m.Count()))
}
