package plru

import "testing"

// Per-policy microbenchmarks for the hot operations: Touch (every access)
// and Victim (every replacement). These correspond to the activity counts
// of the paper's Table I(b).

func benchTouch(b *testing.B, p Policy) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Touch(i&1023, i&15, 0)
	}
}

func benchVictim(b *testing.B, p Policy) {
	b.Helper()
	full := Full(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := p.Victim(i&1023, 0, full)
		p.Touch(i&1023, w, 0)
	}
}

func BenchmarkTouchLRU(b *testing.B)   { benchTouch(b, NewLRUPolicy(1024, 16)) }
func BenchmarkTouchNRU(b *testing.B)   { benchTouch(b, NewNRUPolicy(1024, 16, 2)) }
func BenchmarkTouchBT(b *testing.B)    { benchTouch(b, NewBTPolicy(1024, 16)) }
func BenchmarkVictimLRU(b *testing.B)  { benchVictim(b, NewLRUPolicy(1024, 16)) }
func BenchmarkVictimNRU(b *testing.B)  { benchVictim(b, NewNRUPolicy(1024, 16, 2)) }
func BenchmarkVictimBT(b *testing.B)   { benchVictim(b, NewBTPolicy(1024, 16)) }
func BenchmarkVictimRand(b *testing.B) { benchVictim(b, NewRandomPolicy(1024, 16, 1)) }

// BenchmarkVictimMasked measures masked victim selection (the global
// replacement masks enforcement path).
func BenchmarkVictimMasked(b *testing.B) {
	p := NewLRUPolicy(1024, 16)
	mask := Full(16) &^ Full(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := p.Victim(i&1023, 0, mask)
		p.Touch(i&1023, w, 0)
	}
}

// BenchmarkVictimForcedBT measures the up/down force-vector walk.
func BenchmarkVictimForcedBT(b *testing.B) {
	p := NewBTPolicy(1024, 16)
	up := []bool{true, false, false, false}
	down := make([]bool, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := p.VictimForced(i&1023, up, down)
		p.Touch(i&1023, w, 0)
	}
}

// BenchmarkEstStackPosBT measures the profiling estimator arithmetic.
func BenchmarkEstStackPosBT(b *testing.B) {
	p := NewBTPolicy(1024, 16)
	var sink int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink += p.EstStackPos(i&1023, i&15)
	}
	_ = sink
}
