package plru

import (
	"encoding/binary"
	"math/bits"
)

// BTPolicy implements Binary Tree pseudo-LRU (paper §III-B, the IBM
// scheme): each set carries ways-1 tree bits arranged as a complete binary
// tree over the ways. Each node bit records which subtree holds the
// pseudo-LRU candidate; an access flips the bits on its path to point away
// from the accessed line, and victim selection walks the bits from the
// root.
//
// Bit convention: bit == 0 means the pseudo-LRU line is in the LEFT (lower
// way indices) subtree, bit == 1 the RIGHT subtree. The paper's figures use
// the mirrored encoding ("upper"/"lower" sub-tree); the two are isomorphic
// and the ID-XOR-SUB profiling identity holds identically.
//
// Partitioning: the paper extends BT with per-core up/down force vectors,
// one bit pair per tree level, that override the stored bit during victim
// search (VictimForced, with the Figure 5 truth table). Victim with an
// arbitrary WayMask is also provided; for the aligned power-of-two masks
// produced by the buddy partitioner the two mechanisms select identical
// victims (a property covered by tests).
type BTPolicy struct {
	sets, ways, levels int
	tree               []uint8 // sets*(ways-1), heap-indexed per set (slot 0 unused within each set's block of `ways` entries)

	// For 8-way trees the set's whole node block is exactly one 64-bit
	// word, so Touch/Invalidate collapse to a single masked word store
	// instead of a levels-deep loop: clearMask[way] zeroes the three
	// path node bytes and touchMask/invMask[way] write them pointing
	// away from (Touch) or at (Invalidate) the way. Nil for other
	// associativities, which keep the loop.
	clearMask, touchMask, invMask []uint64
}

// NewBTPolicy returns a BT policy. The associativity must be a power of
// two (the tree is complete), as in every hardware BT implementation.
func NewBTPolicy(sets, ways int) *BTPolicy {
	validateGeometry(sets, ways)
	if ways&(ways-1) != 0 {
		panic("plru: BT requires power-of-two associativity")
	}
	p := &BTPolicy{
		sets:   sets,
		ways:   ways,
		levels: bits.Len(uint(ways)) - 1,
		// Allocate `ways` slots per set so heap indices 1..ways-1 map
		// directly; slot 0 of each block is unused.
		tree: make([]uint8, sets*ways),
	}
	if ways == 8 {
		p.clearMask = make([]uint64, ways)
		p.touchMask = make([]uint64, ways)
		p.invMask = make([]uint64, ways)
		for way := 0; way < ways; way++ {
			i := 1
			for d := 0; d < p.levels; d++ {
				dir := p.dirOf(way, d)
				p.clearMask[way] |= 0xFF << (8 * uint(i))
				p.touchMask[way] |= uint64(1-dir) << (8 * uint(i))
				p.invMask[way] |= uint64(dir) << (8 * uint(i))
				i = 2*i + dir
			}
		}
	}
	return p
}

// Kind returns BT.
func (p *BTPolicy) Kind() Kind { return BT }

// Ways returns the associativity.
func (p *BTPolicy) Ways() int { return p.ways }

// Sets returns the number of sets.
func (p *BTPolicy) Sets() int { return p.sets }

// Levels returns log2(ways), the number of tree levels (and the length of
// the up/down force vectors).
func (p *BTPolicy) Levels() int { return p.levels }

// SetPartition is a no-op: BT partition enforcement is expressed through
// VictimForced / the Victim mask, and hits update the tree identically
// with or without partitioning.
func (p *BTPolicy) SetPartition(masks []WayMask) {}

// node returns the tree bit at heap index i of set.
func (p *BTPolicy) node(set, i int) uint8 { return p.tree[set*p.ways+i] }

func (p *BTPolicy) setNode(set, i int, v uint8) { p.tree[set*p.ways+i] = v }

// dirOf returns the branch direction (0 = left, 1 = right) taken at depth
// `depth` on the path from the root to `way`.
func (p *BTPolicy) dirOf(way, depth int) int {
	return (way >> uint(p.levels-1-depth)) & 1
}

// Touch promotes (set, way): every tree bit on the path from the root to
// the way is set to point away from it, making the way maximally recent.
// Only log2(ways) bits change — the paper's Table I(b) "update position"
// cost for BT; for the 8-way tree they change in one masked word store.
func (p *BTPolicy) Touch(set, way, core int) {
	if p.clearMask != nil {
		t := p.tree[set*8 : set*8+8 : set*8+8]
		w := binary.LittleEndian.Uint64(t)
		binary.LittleEndian.PutUint64(t, w&^p.clearMask[way]|p.touchMask[way])
		return
	}
	i := 1
	for d := 0; d < p.levels; d++ {
		dir := p.dirOf(way, d)
		p.setNode(set, i, uint8(1-dir)) // point pseudo-LRU to the other side
		i = 2*i + dir
	}
}

// TouchBatch applies deferred accesses in order (see Policy.TouchBatch).
// Each record costs the same log2(ways) bit flips as a direct Touch; the
// batch loop keeps the call on the concrete type so the per-record work
// inlines.
func (p *BTPolicy) TouchBatch(recs []TouchRec) {
	for _, r := range recs {
		p.Touch(int(r.Set), int(r.Way), int(r.Core))
	}
}

// Fill is Touch: BT keeps no per-line identity, so a new line just turns
// its root path away, like any access.
func (p *BTPolicy) Fill(set, way, core int, sig uint8) { p.Touch(set, way, core) }

// Invalidate points every tree bit on the way's root path toward it —
// the inverse of Touch — so an unmasked victim walk lands exactly on the
// freed way. Only log2(ways) bits change.
func (p *BTPolicy) Invalidate(set, way int) {
	if p.clearMask != nil {
		t := p.tree[set*8 : set*8+8 : set*8+8]
		w := binary.LittleEndian.Uint64(t)
		binary.LittleEndian.PutUint64(t, w&^p.clearMask[way]|p.invMask[way])
		return
	}
	i := 1
	for d := 0; d < p.levels; d++ {
		dir := p.dirOf(way, d)
		p.setNode(set, i, uint8(dir)) // point pseudo-LRU at the freed way
		i = 2*i + dir
	}
}

// Victim walks the tree bits from the root, restricted to the allowed
// mask: at each node it follows the stored bit when both subtrees contain
// allowed ways and otherwise the only viable side.
func (p *BTPolicy) Victim(set, core int, allowed WayMask) int {
	checkVictimArgs(p, set, allowed)
	lo, hi := 0, p.ways
	i := 1
	for d := 0; d < p.levels; d++ {
		mid := (lo + hi) / 2
		leftOK := allowed&rangeMask(lo, mid) != 0
		rightOK := allowed&rangeMask(mid, hi) != 0
		var dir int
		switch {
		case leftOK && rightOK:
			dir = int(p.node(set, i))
		case leftOK:
			dir = 0
		default:
			dir = 1
		}
		if dir == 0 {
			hi = mid
		} else {
			lo = mid
		}
		i = 2*i + dir
	}
	return lo
}

// VictimForced walks the tree with the paper's per-level force vectors
// (Figure 5 truth table): at depth d, up[d] forces the left ("upper")
// subtree, down[d] forces the right ("lower") subtree, and otherwise the
// stored bit decides. up[d] and down[d] must not both be set.
func (p *BTPolicy) VictimForced(set int, up, down []bool) int {
	if len(up) != p.levels || len(down) != p.levels {
		panic("plru: force vectors must have log2(ways) entries")
	}
	i := 1
	way := 0
	for d := 0; d < p.levels; d++ {
		if up[d] && down[d] {
			panic("plru: up and down both forced at level " + itoa(d))
		}
		var dir int
		switch {
		case up[d]:
			dir = 0
		case down[d]:
			dir = 1
		default:
			dir = int(p.node(set, i))
		}
		way = way<<1 | dir
		i = 2*i + dir
	}
	return way
}

// PathBits returns the current tree bits along the path from the root to
// `way`, packed MSB-first (root bit highest). The BT profiling logic XORs
// these against the way's ID bits.
func (p *BTPolicy) PathBits(set, way int) int {
	v := 0
	i := 1
	for d := 0; d < p.levels; d++ {
		v = v<<1 | int(p.node(set, i))
		i = 2*i + p.dirOf(way, d)
	}
	return v
}

// IDBits returns the identifier bits of `way`: the tree-path bit values
// that would make the way the pseudo-LRU victim. With our bit convention
// these are simply the way's binary digits MSB-first, which is the paper's
// "simple decoder" (Figure 4(c)) — a wiring permutation, no storage.
func (p *BTPolicy) IDBits(way int) int { return way }

// EstStackPos implements the paper's BT stack-position estimator
// (Figure 4(b)): ways − (IDBits XOR PathBits). The result is in [1, ways]:
// ways when the line is exactly the pseudo-LRU victim and 1 when every
// path bit points away from it (just accessed).
func (p *BTPolicy) EstStackPos(set, way int) int {
	return p.ways - (p.IDBits(way) ^ p.PathBits(set, way))
}

// rangeMask returns the mask of ways in [lo, hi).
func rangeMask(lo, hi int) WayMask {
	return Full(hi) &^ Full(lo)
}

func itoa(d int) string {
	if d == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for d > 0 {
		i--
		buf[i] = byte('0' + d%10)
		d /= 10
	}
	return string(buf[i:])
}
