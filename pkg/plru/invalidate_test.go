package plru

import "testing"

// TestLRUInvalidateDemotesToLRU checks the invalidated way becomes the
// unmasked victim and the remaining ages stay a permutation.
func TestLRUInvalidateDemotesToLRU(t *testing.T) {
	p := NewLRUPolicy(2, 4)
	for _, w := range []int{3, 2, 1, 0} { // MRU order 0,1,2,3
		p.Touch(0, w, 0)
	}
	p.Invalidate(0, 0) // 0 was MRU; demote it
	if v := p.Victim(0, 0, Full(4)); v != 0 {
		t.Fatalf("Victim after Invalidate = %d, want 0", v)
	}
	// Ages must remain a permutation of [0,4).
	seen := [4]bool{}
	for w := 0; w < 4; w++ {
		seen[p.Dist(0, w)-1] = true
	}
	for d, ok := range seen {
		if !ok {
			t.Fatalf("ages not a permutation: distance %d missing (order %v)", d+1, p.order(0))
		}
	}
	// Relative order of the survivors is preserved: 1 is now MRU, then 2, 3.
	if got := p.order(0); got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 0 {
		t.Fatalf("order after Invalidate = %v, want [1 2 3 0]", got)
	}
	// Other sets untouched.
	if p.Dist(1, 0) != 1 {
		t.Fatal("Invalidate leaked into another set")
	}
}

// TestNRUInvalidateClearsUsedBit checks the way reads as not-recently-used
// again and is reclaimed by the next victim scan at its pointer position.
func TestNRUInvalidateClearsUsedBit(t *testing.T) {
	p := NewNRUPolicy(1, 4, 1)
	p.Touch(0, 1, 0)
	p.Touch(0, 2, 0)
	if !p.Used(0, 1) || !p.Used(0, 2) {
		t.Fatal("setup: used bits not set")
	}
	p.Invalidate(0, 2)
	if p.Used(0, 2) {
		t.Fatal("used bit survived Invalidate")
	}
	if p.Used(0, 1) {
		// touch state of other ways must be untouched
	} else {
		t.Fatal("Invalidate cleared a neighbor's used bit")
	}
}

// TestBTInvalidateMakesWayTheVictim checks that after Invalidate the
// unmasked tree walk lands exactly on the freed way, for every way.
func TestBTInvalidateMakesWayTheVictim(t *testing.T) {
	p := NewBTPolicy(1, 8)
	for way := 0; way < 8; way++ {
		// Touch everything in some order so the tree points elsewhere.
		for w := 0; w < 8; w++ {
			p.Touch(0, w, 0)
		}
		p.Invalidate(0, way)
		if v := p.Victim(0, 0, Full(8)); v != way {
			t.Fatalf("Victim after Invalidate(%d) = %d", way, v)
		}
		if pos := p.EstStackPos(0, way); pos != 8 {
			t.Fatalf("EstStackPos after Invalidate(%d) = %d, want 8 (pseudo-LRU)", way, pos)
		}
	}
}

// TestRandomInvalidateIsNoop just pins that Invalidate exists and does not
// disturb the RNG stream (same victims with and without interleaved calls).
func TestRandomInvalidateIsNoop(t *testing.T) {
	a := NewRandomPolicy(1, 8, 7)
	b := NewRandomPolicy(1, 8, 7)
	for i := 0; i < 100; i++ {
		b.Invalidate(0, i%8)
		if av, bv := a.Victim(0, 0, Full(8)), b.Victim(0, 0, Full(8)); av != bv {
			t.Fatalf("step %d: RNG streams diverged (%d vs %d)", i, av, bv)
		}
	}
}
