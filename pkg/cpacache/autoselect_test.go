package cpacache

import (
	"strings"
	"testing"

	"repro/pkg/plru"
)

// scanWorkload is the canonical adversary for recency-only replacement: a
// hot pool reused forever plus a stream of one-shot scan keys. LRU keeps
// evicting the hot pool; ARC's two-tier structure protects it. next()
// must be the shared RNG so replays across caches stay identical.
func scanKey(next func() uint64, hot []uint64, scanCtr *uint64) uint64 {
	if next()%10 < 4 {
		return hot[next()%uint64(len(hot))]
	}
	*scanCtr++
	return 1<<32 + *scanCtr
}

// access drives one get-miss-then-set step, the flow the profiler (and
// therefore the shadow scorer) counts exactly once.
func access(c *Cache[uint64, uint64], key uint64) {
	if _, ok := c.Get(key); !ok {
		c.Set(key, key)
	}
}

// TestAutoSelectConvergesOnScanResistantPolicy is the end-to-end
// auto-selection acceptance test: a cache born on LRU with ARC as the
// only alternative candidate, driven with a scan-heavy workload, must
// switch to ARC within a bounded number of rebalance windows, never
// switch back, emit a well-formed PolicySwitchEvent, and finish the run
// with a hit rate within one point of the best static policy.
func TestAutoSelectConvergesOnScanResistantPolicy(t *testing.T) {
	var events []PolicySwitchEvent
	build := func(extra ...Option) *Cache[uint64, uint64] {
		c, err := New[uint64, uint64](append([]Option{
			WithShards(1), WithSets(64), WithWays(8), WithPartitions(1),
			WithSeed(7), WithProfileSampling(1),
			WithRebalanceHysteresis(0.05, 512),
		}, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	adaptive := build(
		WithPolicy(plru.LRU),
		WithPolicyAutoSelect(plru.ARC),
		WithMetricsSink(MetricsSink{PolicySwitch: func(ev PolicySwitchEvent) { events = append(events, ev) }}),
	)
	staticLRU := build(WithPolicy(plru.LRU))
	staticARC := build(WithPolicy(plru.ARC))
	// Identical key placement across all three caches (white box), so the
	// hit-rate comparison is apples to apples.
	staticLRU.seed = adaptive.seed
	staticARC.seed = adaptive.seed
	caches := []*Cache[uint64, uint64]{adaptive, staticLRU, staticARC}

	hot := make([]uint64, 256)
	for i := range hot {
		hot[i] = uint64(i)
	}
	rng := uint64(42)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var scanCtr uint64

	const (
		windows     = 20
		perWindow   = 30_000
		convergeBy  = 6  // switch must land within this many windows
		measureFrom = 15 // final-phase hit-rate measurement window
	)
	switchedAt := -1
	var before [3]TenantStats
	for w := 0; w < windows; w++ {
		if w == measureFrom {
			for i, c := range caches {
				before[i] = c.Stats()[0]
			}
		}
		for i := 0; i < perWindow; i++ {
			key := scanKey(next, hot, &scanCtr)
			for _, c := range caches {
				access(c, key)
			}
		}
		if _, err := adaptive.Rebalance(); err != nil {
			t.Fatal(err)
		}
		pol := adaptive.Snapshot().Policies[0]
		if switchedAt < 0 && pol == plru.ARC {
			switchedAt = w
		}
		if switchedAt >= 0 && pol != plru.ARC {
			t.Fatalf("window %d: selector flipped back to %v after settling on ARC at window %d", w, pol, switchedAt)
		}
	}
	if switchedAt < 0 || switchedAt >= convergeBy {
		t.Fatalf("selector settled on ARC at window %d, want within [0,%d)", switchedAt, convergeBy)
	}

	if len(events) != 1 {
		t.Fatalf("got %d PolicySwitch events, want exactly 1 (switch + no churn)", len(events))
	}
	ev := events[0]
	if ev.Tenant != 0 || ev.From != plru.LRU || ev.To != plru.ARC {
		t.Fatalf("switch event = %+v, want tenant 0 LRU->ARC", ev)
	}
	if ev.WindowAccesses < 512 {
		t.Fatalf("switch event window accesses = %d, below the minSamples floor 512", ev.WindowAccesses)
	}
	if len(ev.Candidates) != 2 || len(ev.ShadowHits) != 2 {
		t.Fatalf("switch event candidates %v / shadow hits %v, want 2 of each", ev.Candidates, ev.ShadowHits)
	}
	snap := adaptive.Snapshot()
	if snap.PolicySwitches != 1 {
		t.Fatalf("Snapshot.PolicySwitches = %d, want 1", snap.PolicySwitches)
	}
	if got := adaptive.TenantPolicies(); len(got) != 1 || got[0] != plru.ARC {
		t.Fatalf("TenantPolicies = %v, want [ARC]", got)
	}

	rate := func(i int) float64 {
		s := caches[i].Stats()[0]
		s.Hits -= before[i].Hits
		s.Misses -= before[i].Misses
		return s.HitRate()
	}
	adaptiveRate, lruRate, arcRate := rate(0), rate(1), rate(2)
	best := lruRate
	if arcRate > best {
		best = arcRate
	}
	if arcRate <= lruRate {
		t.Fatalf("workload is not ARC-favoring (ARC %.4f <= LRU %.4f); the convergence claim is vacuous", arcRate, lruRate)
	}
	if adaptiveRate < best-0.01 {
		t.Fatalf("adaptive final hit rate %.4f more than 1 point below best static %.4f (LRU %.4f, ARC %.4f)",
			adaptiveRate, best, lruRate, arcRate)
	}
}

// TestAutoSelectMatchesBaseBeforeSwitch pins that auto-selection is
// semantically invisible until a switch happens: with no Rebalance call,
// an auto-select cache and a static base-policy cache sharing one hash
// seed must hold identical contents after an arbitrary workload (the
// victim routing goes to the warm base instance, which sees exactly the
// stream a standalone instance would).
func TestAutoSelectMatchesBaseBeforeSwitch(t *testing.T) {
	build := func(extra ...Option) *Cache[uint64, uint64] {
		c, err := New[uint64, uint64](append([]Option{
			WithShards(2), WithSets(16), WithWays(8), WithPartitions(2),
			WithPolicy(plru.LRU), WithSeed(3),
		}, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	auto := build(WithPolicyAutoSelect(plru.AWRP, plru.ARC))
	static := build()
	static.seed = auto.seed

	rng := uint64(11)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 50_000; i++ {
		tenant := int(next() % 2)
		key := next() % 600
		switch next() % 3 {
		case 0:
			va, oka := auto.GetTenant(tenant, key)
			vs, oks := static.GetTenant(tenant, key)
			if oka != oks || va != vs {
				t.Fatalf("step %d: Get(%d,%d) = (%d,%v) auto vs (%d,%v) static", i, tenant, key, va, oka, vs, oks)
			}
		case 1:
			auto.SetTenant(tenant, key, key*3)
			static.SetTenant(tenant, key, key*3)
		default:
			if ga, gs := auto.Delete(key), static.Delete(key); ga != gs {
				t.Fatalf("step %d: Delete(%d) = %v auto vs %v static", i, key, ga, gs)
			}
		}
	}
	if auto.Len() != static.Len() {
		t.Fatalf("Len: auto %d vs static %d", auto.Len(), static.Len())
	}
	for k := uint64(0); k < 600; k++ {
		va, oka := auto.Get(k)
		vs, oks := static.Get(k)
		if oka != oks || va != vs {
			t.Fatalf("final contents diverge at key %d: (%d,%v) vs (%d,%v)", k, va, oka, vs, oks)
		}
	}
}

// TestWithPolicyAutoSelectValidation covers the option's error surface
// and candidate-list normalization.
func TestWithPolicyAutoSelectValidation(t *testing.T) {
	if _, err := New[int, int](WithWays(6), WithPolicy(plru.LRU), WithPolicyAutoSelect(plru.BT)); err == nil ||
		!strings.Contains(err.Error(), "power-of-two") {
		t.Fatalf("BT candidate on 6 ways: err = %v, want power-of-two complaint", err)
	}
	if _, err := New[int, int](WithPolicy(plru.LRU), WithPolicyAutoSelect(plru.LRU)); err == nil ||
		!strings.Contains(err.Error(), "two distinct") {
		t.Fatalf("single candidate: err = %v, want two-distinct complaint", err)
	}
	if _, err := New[int, int](WithPolicyAutoSelect(plru.Kind(250))); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown kind: err = %v, want unknown-candidate complaint", err)
	}

	// Defaults on a power-of-two geometry: every kind but Random, base
	// included, every tenant starting on the base policy.
	c, err := New[int, int](WithWays(8), WithPolicy(plru.NRU), WithPartitions(2), WithPolicyAutoSelect())
	if err != nil {
		t.Fatal(err)
	}
	want := []plru.Kind{plru.LRU, plru.NRU, plru.BT, plru.AWRP, plru.ARC}
	if len(c.activeKinds) != len(want) {
		t.Fatalf("default candidates = %v, want %v", c.activeKinds, want)
	}
	for i, k := range want {
		if c.activeKinds[i] != k {
			t.Fatalf("default candidates = %v, want %v", c.activeKinds, want)
		}
	}
	for _, p := range c.TenantPolicies() {
		if p != plru.NRU {
			t.Fatalf("TenantPolicies before any window = %v, want all NRU", c.TenantPolicies())
		}
	}
	// Non-power-of-two ways: BT silently dropped from the defaults.
	c2, err := New[int, int](WithWays(6), WithPolicy(plru.LRU), WithPolicyAutoSelect())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range c2.activeKinds {
		if k == plru.BT {
			t.Fatalf("default candidates on 6 ways include BT: %v", c2.activeKinds)
		}
	}
}
