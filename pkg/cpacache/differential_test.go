package cpacache

import (
	"fmt"
	"hash/maphash"
	"testing"
	"time"

	"repro/pkg/plru"
)

// refModel is a reference implementation of the cache's exact semantics
// built on linear full-key scans over (keys, owner) slots — the
// pre-tag-acceleration probe. It shares the real cache's hash seed and
// policy seeds, so a random workload driven through both must produce
// identical hits, misses, victim choices, eviction streams and final
// contents; any divergence is a bug in the tag fast path.
type refModel[K comparable, V any] struct {
	c       *Cache[K, V] // geometry + hash source only
	pols    []plru.Policy
	keys    [][]K
	vals    [][]V
	owner   [][]int16
	dl      [][]int64 // expiry deadline per slot, 0 = none
	cost    [][]uint64
	masks   []plru.WayMask
	stats   []TenantStats
	live    int
	evicts  []K // live-eviction stream, in order
	expires []K // expiration stream, in order

	now    func() int64      // nil = TTL semantics never triggered
	costFn func(K, V) uint64 // nil = cost accounting off

	// Memory-governor mirror (governor_diff_test.go): the hard limits the
	// model enforces and its copy of the cache's global byte gauge.
	budgets     []uint64
	maxBytes    uint64
	hardBudgets bool
	totalBytes  uint64
}

func newRefModel[K comparable, V any](c *Cache[K, V], kind plru.Kind, polSeed uint64) *refModel[K, V] {
	m := &refModel[K, V]{c: c}
	n := len(c.shards)
	m.pols = make([]plru.Policy, n)
	m.keys = make([][]K, n)
	m.vals = make([][]V, n)
	m.owner = make([][]int16, n)
	m.dl = make([][]int64, n)
	m.cost = make([][]uint64, n)
	for i := 0; i < n; i++ {
		m.pols[i] = plru.New(kind, c.sets, c.ways, c.tenants, polSeed+uint64(i))
		m.keys[i] = make([]K, c.sets*c.ways)
		m.vals[i] = make([]V, c.sets*c.ways)
		m.owner[i] = make([]int16, c.sets*c.ways)
		m.dl[i] = make([]int64, c.sets*c.ways)
		m.cost[i] = make([]uint64, c.sets*c.ways)
		for j := range m.owner[i] {
			m.owner[i][j] = -1
		}
	}
	m.stats = make([]TenantStats, c.tenants)
	m.syncMasks()
	return m
}

// syncMasks copies the cache's currently installed masks into the model
// (mask computation is cpapart's job, not what this test differentiates).
func (m *refModel[K, V]) syncMasks() {
	m.masks = append(m.masks[:0], m.c.shards[0].masks...)
	for _, p := range m.pols {
		p.SetPartition(m.masks)
	}
}

func (m *refModel[K, V]) locate(key K) (int, int) {
	h := maphash.Comparable(m.c.seed, key)
	return int(h & m.c.shardMask), m.c.setOf(h)
}

// expired reports whether the occupied slot's TTL has lapsed.
func (m *refModel[K, V]) expired(si, slot int) bool {
	return m.now != nil && m.dl[si][slot] != 0 && m.dl[si][slot] <= m.now()
}

// clearSlot mirrors clearSlotLocked: empty the slot, refund its cost and
// invalidate its recency.
func (m *refModel[K, V]) clearSlot(si, set, w int) {
	base := set * m.c.ways
	var zeroK K
	var zeroV V
	if m.costFn != nil {
		m.stats[m.owner[si][base+w]].Bytes -= m.cost[si][base+w]
		m.totalBytes -= m.cost[si][base+w]
		m.cost[si][base+w] = 0
	}
	m.keys[si][base+w] = zeroK
	m.vals[si][base+w] = zeroV
	m.owner[si][base+w] = -1
	m.dl[si][base+w] = 0
	m.pols[si].Invalidate(set, w)
	m.live--
}

// expire mirrors expireLocked: reclaim an expired slot, counting the
// expiration against its owner.
func (m *refModel[K, V]) expire(si, set, w int) {
	base := set * m.c.ways
	m.stats[m.owner[si][base+w]].Expirations++
	m.expires = append(m.expires, m.keys[si][base+w])
	m.clearSlot(si, set, w)
}

func (m *refModel[K, V]) get(tenant int, key K) (V, bool) {
	si, set := m.locate(key)
	base := set * m.c.ways
	for w := 0; w < m.c.ways; w++ {
		if m.owner[si][base+w] >= 0 && m.keys[si][base+w] == key {
			if m.expired(si, base+w) {
				m.expire(si, set, w)
				m.stats[tenant].Misses++
				var zero V
				return zero, false
			}
			m.stats[tenant].Hits++
			m.pols[si].Touch(set, w, tenant)
			return m.vals[si][base+w], true
		}
	}
	m.stats[tenant].Misses++
	var zero V
	return zero, false
}

func (m *refModel[K, V]) set(tenant int, key K, value V) {
	m.setDL(tenant, key, value, 0)
}

// setDL mirrors setLocked with an explicit deadline (0 = none), returning
// the shard, set and way the line landed in (for budget enforcement).
func (m *refModel[K, V]) setDL(tenant int, key K, value V, dl int64) (int, int, int) {
	si, set := m.locate(key)
	tag := tagOf(maphash.Comparable(m.c.seed, key))
	base := set * m.c.ways
	way := -1
	for w := 0; w < m.c.ways; w++ {
		if m.owner[si][base+w] >= 0 && m.keys[si][base+w] == key {
			way = w
			break
		}
	}
	update := way >= 0
	if update {
		// In-place update: an expired old value surfaces as an expiration.
		if m.expired(si, base+way) {
			m.stats[m.owner[si][base+way]].Expirations++
			m.expires = append(m.expires, m.keys[si][base+way])
		}
		if m.costFn != nil {
			m.stats[m.owner[si][base+way]].Bytes -= m.cost[si][base+way]
			m.totalBytes -= m.cost[si][base+way]
		}
	} else {
		mask := m.masks[tenant]
		for v := mask; v != 0; {
			w := v.Nth(0)
			v = v.Without(w)
			if m.owner[si][base+w] < 0 {
				way = w
				break
			}
		}
		if way < 0 {
			for w := 0; w < m.c.ways; w++ {
				if m.owner[si][base+w] < 0 {
					way = w
					break
				}
			}
		}
		if way < 0 {
			// Mirror the cache: an already-expired line is reclaimed in
			// preference to evicting a live one — partition first, then
			// anywhere in the set.
			for v := mask; v != 0; {
				w := v.Nth(0)
				v = v.Without(w)
				if m.expired(si, base+w) {
					way = w
					break
				}
			}
			if way < 0 {
				for w := 0; w < m.c.ways; w++ {
					if m.expired(si, base+w) {
						way = w
						break
					}
				}
			}
			if way >= 0 {
				m.stats[m.owner[si][base+way]].Expirations++
				m.expires = append(m.expires, m.keys[si][base+way])
			} else {
				way = m.pols[si].Victim(set, tenant, mask)
				m.stats[m.owner[si][base+way]].Evictions++
				m.evicts = append(m.evicts, m.keys[si][base+way])
			}
			if m.costFn != nil {
				m.stats[m.owner[si][base+way]].Bytes -= m.cost[si][base+way]
				m.totalBytes -= m.cost[si][base+way]
			}
			m.live--
		}
		m.live++
	}
	m.keys[si][base+way] = key
	m.vals[si][base+way] = value
	m.owner[si][base+way] = int16(tenant)
	m.dl[si][base+way] = dl
	// Mirror setLocked's recency split: updates of a resident line are
	// Touches, new fills are Fills carrying the line's tag byte.
	if update {
		m.pols[si].Touch(set, way, tenant)
	} else {
		m.pols[si].Fill(set, way, tenant, tag)
	}
	if m.costFn != nil {
		cost := m.costFn(key, value)
		m.cost[si][base+way] = cost
		m.stats[tenant].Bytes += cost
		m.totalBytes += cost
	}
	return si, set, way
}

// setTTL mirrors SetTTL with an explicit new deadline (0 = remove).
func (m *refModel[K, V]) setTTL(key K, dl int64) bool {
	si, set := m.locate(key)
	base := set * m.c.ways
	for w := 0; w < m.c.ways; w++ {
		if m.owner[si][base+w] >= 0 && m.keys[si][base+w] == key {
			if m.expired(si, base+w) {
				m.expire(si, set, w)
				return false
			}
			m.dl[si][base+w] = dl
			return true
		}
	}
	return false
}

func (m *refModel[K, V]) delete(key K) bool {
	si, set := m.locate(key)
	base := set * m.c.ways
	for w := 0; w < m.c.ways; w++ {
		if m.owner[si][base+w] >= 0 && m.keys[si][base+w] == key {
			if m.expired(si, base+w) {
				m.expire(si, set, w)
				return false
			}
			m.clearSlot(si, set, w)
			return true
		}
	}
	return false
}

// checkState compares the cache's full slot contents — and the tag words'
// consistency with them — against the model.
func checkState[K comparable, V comparable](t *testing.T, c *Cache[K, V], m *refModel[K, V], step int) {
	t.Helper()
	if got := c.Len(); got != m.live {
		t.Fatalf("step %d: Len = %d, model %d", step, got, m.live)
	}
	for si := range c.shards {
		sh := &c.shards[si]
		for set := 0; set < c.sets; set++ {
			base := set * c.ways
			tbase := c.tagBase(set)
			if seq := sh.tags[c.seqBase(set)]; seq&1 != 0 {
				t.Fatalf("step %d: shard %d set %d sequence word odd (%d) with no writer in flight", step, si, set, seq)
			}
			for w := 0; w < c.ways; w++ {
				slotTag := uint8(sh.tags[tbase+w>>3] >> (uint(w&7) * 8))
				if sh.owner[base+w] != m.owner[si][base+w] {
					t.Fatalf("step %d: shard %d set %d way %d owner %d, model %d",
						step, si, set, w, sh.owner[base+w], m.owner[si][base+w])
				}
				if sh.owner[base+w] < 0 {
					if slotTag != tagEmpty {
						t.Fatalf("step %d: empty slot carries tag %#x", step, slotTag)
					}
					continue
				}
				if sh.keys[base+w] != m.keys[si][base+w] || sh.vals[base+w] != m.vals[si][base+w] {
					t.Fatalf("step %d: shard %d set %d way %d holds (%v,%v), model (%v,%v)",
						step, si, set, w, sh.keys[base+w], sh.vals[base+w], m.keys[si][base+w], m.vals[si][base+w])
				}
				if want := tagOf(maphash.Comparable(c.seed, sh.keys[base+w])); slotTag != want {
					t.Fatalf("step %d: slot tag %#x inconsistent with key hash tag %#x", step, slotTag, want)
				}
				hasTTL := sh.ttl[set]&(1<<uint(w)) != 0
				if hasTTL != (m.dl[si][base+w] != 0) {
					t.Fatalf("step %d: shard %d set %d way %d ttl bit %v, model deadline %d",
						step, si, set, w, hasTTL, m.dl[si][base+w])
				}
				if hasTTL && sh.deadline[base+w] != m.dl[si][base+w] {
					t.Fatalf("step %d: deadline %d, model %d", step, sh.deadline[base+w], m.dl[si][base+w])
				}
				// Timing-wheel invariant: a slot is linked iff it
				// carries a deadline.
				if sh.wheel != nil {
					if linked := sh.wheel.where[base+w] != wheelNoBucket; linked != hasTTL {
						t.Fatalf("step %d: shard %d set %d way %d wheel-linked=%v but ttl bit=%v",
							step, si, set, w, linked, hasTTL)
					}
				}
				if sh.cost != nil && sh.cost[base+w] != m.cost[si][base+w] {
					t.Fatalf("step %d: slot cost %d, model %d", step, sh.cost[base+w], m.cost[si][base+w])
				}
			}
		}
	}
	gotStats := c.Stats()
	for tn := range gotStats {
		if gotStats[tn] != m.stats[tn] {
			t.Fatalf("step %d: tenant %d stats %+v, model %+v", step, tn, gotStats[tn], m.stats[tn])
		}
	}
}

// randomQuotas derives a valid quota vector (each >= 1, sums to ways) from
// an RNG.
func randomQuotas(rng *uint64, tenants, ways int) []int {
	next := func() uint64 {
		*rng ^= *rng << 13
		*rng ^= *rng >> 7
		*rng ^= *rng << 17
		return *rng
	}
	q := make([]int, tenants)
	left := ways - tenants
	for i := range q {
		q[i] = 1
	}
	for left > 0 {
		q[int(next()%uint64(tenants))]++
		left--
	}
	return q
}

// recencyModes parametrizes differential runs over both data planes: the
// default deferred/optimistic one (whose drain-order rule makes single-
// threaded executions exactly equivalent as long as the touch ring never
// overflows — the model is the proof) and the fully locked
// WithImmediateRecency configuration, which is the issue's
// "immediate-drain" eviction-stream-equivalence requirement.
var recencyModes = []struct {
	name string
	opts []Option
}{
	{"deferred", nil},
	{"immediate", []Option{WithImmediateRecency()}},
}

// TestDifferentialAgainstLinearModel drives identical random workloads
// (gets, sets, deletes, quota changes, rebalances) through the
// tag-accelerated cache and the linear-scan reference model under every
// policy, on both power-of-two and odd set counts, and requires hit/miss
// results, eviction streams, stats and full final state to match exactly
// — in both the deferred-recency and immediate-recency configurations.
func TestDifferentialAgainstLinearModel(t *testing.T) {
	type geo struct {
		shards, sets, ways, tenants int
	}
	geos := []geo{
		{shards: 2, sets: 8, ways: 8, tenants: 3},
		{shards: 1, sets: 5, ways: 4, tenants: 2}, // odd sets: modulo set mapping
		{shards: 4, sets: 16, ways: 16, tenants: 4},
	}
	const polSeed = 99
	for _, mode := range recencyModes {
		for _, pol := range diffKinds {
			for _, g := range geos {
				if pol == plru.BT && g.ways&(g.ways-1) != 0 {
					continue
				}
				t.Run(fmt.Sprintf("%s/%v/%dx%dx%d", mode.name, pol, g.shards, g.sets, g.ways), func(t *testing.T) {
					var evicted []uint64
					c, err := New[uint64, uint64](append([]Option{
						WithShards(g.shards), WithSets(g.sets), WithWays(g.ways),
						WithPolicy(pol), WithPartitions(g.tenants), WithSeed(polSeed),
						WithProfileSampling(2),
						WithOnEvict(func(k, v uint64) { evicted = append(evicted, k) }),
					}, mode.opts...)...)
					if err != nil {
						t.Fatal(err)
					}
					m := newRefModel(c, pol, polSeed)

					rng := uint64(g.shards*1000+g.ways) ^ uint64(pol)<<32 | 1
					next := func() uint64 {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						return rng
					}
					keySpace := uint64(g.shards * g.sets * g.ways * 2)
					const steps = 30_000
					for i := 0; i < steps; i++ {
						op := next() % 100
						tenant := int(next() % uint64(g.tenants))
						key := next() % keySpace
						switch {
						case op < 55: // lookup
							gv, gok := c.GetTenant(tenant, key)
							mv, mok := m.get(tenant, key)
							if gok != mok || gv != mv {
								t.Fatalf("step %d: Get(%d,%d) = (%d,%v), model (%d,%v)", i, tenant, key, gv, gok, mv, mok)
							}
						case op < 85: // insert/update
							c.SetTenant(tenant, key, key*3)
							m.set(tenant, key, key*3)
						case op < 95: // delete
							if got, want := c.Delete(key), m.delete(key); got != want {
								t.Fatalf("step %d: Delete(%d) = %v, model %v", i, key, got, want)
							}
						case op < 98: // quota change
							q := randomQuotas(&rng, g.tenants, g.ways)
							if err := c.SetQuotas(q); err != nil {
								t.Fatalf("step %d: SetQuotas(%v): %v", i, q, err)
							}
							m.syncMasks()
						default: // online repartition
							if _, err := c.Rebalance(); err != nil {
								t.Fatalf("step %d: Rebalance: %v", i, err)
							}
							m.syncMasks()
						}
						if i%2048 == 0 {
							checkState(t, c, m, i)
						}
					}
					checkState(t, c, m, steps)
					if len(evicted) != len(m.evicts) {
						t.Fatalf("eviction streams differ in length: %d vs model %d", len(evicted), len(m.evicts))
					}
					for i := range evicted {
						if evicted[i] != m.evicts[i] {
							t.Fatalf("eviction %d: key %d, model %d", i, evicted[i], m.evicts[i])
						}
					}
				})
			}
		}
	}
}

// TestDifferentialTTLAndCost drives random workloads that mix lookups,
// plain and TTL'd inserts, TTL re-arms, deletes, clock advances, quota
// changes and budget-capped rebalances through the cache and the
// linear-scan model under every policy, on a shared fake clock. Hits,
// misses, SetTTL/Delete results, eviction and expiration streams, cost
// gauges and full slot state (including deadlines) must match exactly.
func TestDifferentialTTLAndCost(t *testing.T) {
	type geo struct {
		shards, sets, ways, tenants int
		defaultTTL                  int64 // nanoseconds on the fake clock
	}
	geos := []geo{
		{shards: 2, sets: 8, ways: 8, tenants: 3, defaultTTL: 0},
		{shards: 1, sets: 5, ways: 4, tenants: 2, defaultTTL: 100}, // odd sets + default TTL
		{shards: 4, sets: 16, ways: 16, tenants: 4, defaultTTL: 0},
	}
	const polSeed = 123
	costOf := func(k, v uint64) uint64 { return k%7 + 1 }
	for _, mode := range recencyModes {
		for _, pol := range diffKinds {
			for _, g := range geos {
				t.Run(fmt.Sprintf("%s/%v/%dx%dx%d", mode.name, pol, g.shards, g.sets, g.ways), func(t *testing.T) {
					clk := newFakeClock()
					var evicted, expired []uint64
					opts := []Option{
						WithShards(g.shards), WithSets(g.sets), WithWays(g.ways),
						WithPolicy(pol), WithPartitions(g.tenants), WithSeed(polSeed),
						WithProfileSampling(2),
						WithNow(clk.Load), WithTTLSweep(0),
						WithCost(costOf),
						WithOnEvict(func(k, v uint64) { evicted = append(evicted, k) }),
						WithOnExpire(func(k, v uint64) { expired = append(expired, k) }),
					}
					opts = append(opts, mode.opts...)
					if g.defaultTTL > 0 {
						opts = append(opts, WithDefaultTTL(time.Duration(g.defaultTTL)))
					}
					c, err := New[uint64, uint64](opts...)
					if err != nil {
						t.Fatal(err)
					}
					defer c.Close()
					budgets := make([]uint64, g.tenants)
					budgets[0] = 64 // tight: the capped DP actually binds
					if err := c.SetBudgets(budgets); err != nil {
						t.Fatal(err)
					}
					m := newRefModel(c, pol, polSeed)
					m.now = clk.Load
					m.costFn = costOf

					rng := uint64(g.shards*999+g.ways) ^ uint64(pol)<<24 | 1
					next := func() uint64 {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						return rng
					}
					ttlChoice := func() time.Duration {
						switch next() % 4 {
						case 0:
							return -5 * time.Nanosecond // born expired
						case 1:
							return 0 // pinned
						case 2:
							return 20 * time.Nanosecond
						default:
							return 500 * time.Nanosecond
						}
					}
					keySpace := uint64(g.shards * g.sets * g.ways * 2)
					const steps = 30_000
					for i := 0; i < steps; i++ {
						op := next() % 100
						tenant := int(next() % uint64(g.tenants))
						key := next() % keySpace
						switch {
						case op < 40: // lookup
							gv, gok := c.GetTenant(tenant, key)
							mv, mok := m.get(tenant, key)
							if gok != mok || gv != mv {
								t.Fatalf("step %d: Get(%d,%d) = (%d,%v), model (%d,%v)", i, tenant, key, gv, gok, mv, mok)
							}
						case op < 62: // plain insert/update (default TTL applies)
							var dl int64
							if g.defaultTTL > 0 {
								dl = clk.Load() + g.defaultTTL
							}
							c.SetTenant(tenant, key, key*3)
							m.setDL(tenant, key, key*3, dl)
						case op < 74: // insert/update with explicit TTL
							ttl := ttlChoice()
							var dl int64
							if ttl != 0 {
								dl = clk.Load() + int64(ttl)
							}
							c.SetTenantTTL(tenant, key, key*3, ttl)
							m.setDL(tenant, key, key*3, dl)
						case op < 80: // re-arm TTL
							ttl := ttlChoice()
							var dl int64
							if ttl != 0 {
								dl = clk.Load() + int64(ttl)
							}
							if got, want := c.SetTTL(key, ttl), m.setTTL(key, dl); got != want {
								t.Fatalf("step %d: SetTTL(%d,%v) = %v, model %v", i, key, ttl, got, want)
							}
						case op < 87: // delete
							if got, want := c.Delete(key), m.delete(key); got != want {
								t.Fatalf("step %d: Delete(%d) = %v, model %v", i, key, got, want)
							}
						case op < 92: // time passes
							clk.advance(time.Duration(next() % 60))
						case op < 95: // quota change
							q := randomQuotas(&rng, g.tenants, g.ways)
							if err := c.SetQuotas(q); err != nil {
								t.Fatalf("step %d: SetQuotas(%v): %v", i, q, err)
							}
							m.syncMasks()
						default: // budget-capped online repartition
							if _, err := c.Rebalance(); err != nil {
								t.Fatalf("step %d: Rebalance: %v", i, err)
							}
							m.syncMasks()
						}
						if i%2048 == 0 {
							checkState(t, c, m, i)
						}
					}
					checkState(t, c, m, steps)
					if len(evicted) != len(m.evicts) {
						t.Fatalf("eviction streams differ in length: %d vs model %d", len(evicted), len(m.evicts))
					}
					for i := range evicted {
						if evicted[i] != m.evicts[i] {
							t.Fatalf("eviction %d: key %d, model %d", i, evicted[i], m.evicts[i])
						}
					}
					if len(expired) != len(m.expires) {
						t.Fatalf("expiration streams differ in length: %d vs model %d", len(expired), len(m.expires))
					}
					for i := range expired {
						if expired[i] != m.expires[i] {
							t.Fatalf("expiration %d: key %d, model %d", i, expired[i], m.expires[i])
						}
					}
					if len(m.expires) == 0 {
						t.Fatal("workload never expired anything; TTL coverage is vacuous")
					}
				})
			}
		}
	}
}

// TestDifferentialBatchOps replays a workload through batch APIs on one
// cache and per-key APIs on another sharing the same hash seed; the final
// contents, stats and per-key results must match (batching only changes
// cross-shard interleaving, which is semantically inert). Every policy
// kind runs in both recency configurations: the default exercises the
// lock-free per-key GetBatch, the immediate one the shard-grouped
// single-lock walk.
func TestDifferentialBatchOps(t *testing.T) {
	for _, mode := range recencyModes {
		for _, pol := range diffBatchKinds {
			t.Run(mode.name+"/"+pol.String(), func(t *testing.T) { diffBatchOps(t, pol, mode.opts...) })
		}
	}
}

func diffBatchOps(t *testing.T, pol plru.Kind, modeOpts ...Option) {
	build := func() *Cache[uint64, uint64] {
		c, err := New[uint64, uint64](append([]Option{
			WithShards(4), WithSets(8), WithWays(8),
			WithPolicy(pol), WithPartitions(2), WithSeed(5),
		}, modeOpts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1 := build()
	c2 := build()
	c2.seed = c1.seed // same key placement (white box)

	const batch = 33 // deliberately not a multiple of anything
	keys := make([]uint64, batch)
	vals := make([]uint64, batch)
	gvals := make([]uint64, batch)
	oks := make([]bool, batch)

	rng := uint64(77)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for round := 0; round < 400; round++ {
		tenant := int(next() % 2)
		for i := range keys {
			keys[i] = next() % 1024
			vals[i] = keys[i] * 7
		}
		if next()%2 == 0 {
			c1.SetBatch(tenant, keys, vals)
			for i := range keys {
				c2.SetTenant(tenant, keys[i], vals[i])
			}
		} else {
			c1.GetBatch(tenant, keys, gvals, oks)
			for i := range keys {
				v, ok := c2.GetTenant(tenant, keys[i])
				if ok != oks[i] || v != gvals[i] {
					t.Fatalf("round %d key %d: batch (%d,%v) vs sequential (%d,%v)",
						round, keys[i], gvals[i], oks[i], v, ok)
				}
			}
		}
	}
	s1, s2 := c1.Stats(), c2.Stats()
	for tn := range s1 {
		if s1[tn] != s2[tn] {
			t.Fatalf("tenant %d stats: batch %+v vs sequential %+v", tn, s1[tn], s2[tn])
		}
	}
	if c1.Len() != c2.Len() {
		t.Fatalf("Len: batch %d vs sequential %d", c1.Len(), c2.Len())
	}
	for k := uint64(0); k < 1024; k++ {
		v1, ok1 := c1.Get(k)
		v2, ok2 := c2.Get(k)
		if ok1 != ok2 || v1 != v2 {
			t.Fatalf("final content diverges at key %d: (%d,%v) vs (%d,%v)", k, v1, ok1, v2, ok2)
		}
	}
}
