package cpacache

import (
	"fmt"
	"math/bits"
	"time"
)

// Lifecycle management: TTL/expiry, the background goroutines (coarse
// clock, incremental sweeper, auto-rebalance ticker) and byte budgets.
//
// Expiry is hardware-flavored like the rest of the cache: each set keeps
// one word with a bit per way marking slots that carry a deadline, so the
// lookup hot path pays a single word test when the probed line has no TTL
// and one clock read when it does — the Get path stays allocation-free
// and within noise of the TTL-less probe. Reclamation is lazy (any
// lookup, Set or Delete that lands on an expired line reclaims it) plus
// an incremental background sweeper that walks a chunk of every shard's
// sets per tick, so idle expired entries are bounded without a
// stop-the-world scan.
//
// The TTL clock is deliberately coarse: a background goroutine stores
// time.Now().UnixNano() into an atomic every clockResolution, and the hot
// path only ever loads that atomic. WithNow replaces the clock entirely
// (no goroutine), which callers use to share an existing coarse clock or
// to drive expiry deterministically in tests.

// clockResolution is how often the internal coarse clock advances, and
// therefore the precision of TTL expiry under the built-in clock.
const clockResolution = time.Millisecond

// sweepChunks is the number of ticks a full sweep pass is spread over:
// each tick sweeps ceil(sets/sweepChunks) sets per shard.
const sweepChunks = 16

// now returns the TTL clock reading. The common case — no WithNow — is a
// nil check plus one atomic load, small enough to inline into the lookup
// hot path; an indirect call happens only when the caller supplied its
// own clock.
func (c *Cache[K, V]) now() int64 {
	if c.nowFn != nil {
		return c.nowFn()
	}
	return c.coarse.Load()
}

// armTTL starts the TTL machinery on first use (construction with a
// default TTL, or the first SetTTL/SetTenantTTL call): the coarse clock
// goroutine — unless WithNow supplied one — and the incremental sweeper,
// unless sweeping is disabled. Idempotent and cheap after the first call.
func (c *Cache[K, V]) armTTL() {
	c.ttlArm.Do(func() {
		// Allocate the per-slot deadline arrays now that TTLs exist. A
		// deadline is only ever read for a slot whose per-set TTL bit is
		// set, and bits are only set by writes that happen after this
		// (under the shard lock), so every reader finds the array.
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			sh.deadline = make([]int64, c.sets*c.ways)
			sh.mu.Unlock()
		}
		if c.nowFn == nil {
			// The coarse clock was last stored at New and has been idle
			// since; catch it up before the first deadline is computed
			// from it, or a TTL shorter than the cache's age would be
			// born already expired.
			c.coarse.Store(time.Now().UnixNano())
			c.goBG(c.clockLoop)
		}
		if c.sweepInterval > 0 {
			c.goBG(c.sweepLoop)
		}
	})
}

// goBG spawns a background goroutine tracked by the WaitGroup, unless the
// cache is already closed (a lazy TTL arm can race Close). The bgMu
// ordering guarantees Close never observes a spawn after its bg.Wait
// began: either the spawn sees closed and does nothing, or Close's Wait
// sees the incremented counter.
func (c *Cache[K, V]) goBG(fn func()) {
	c.bgMu.Lock()
	defer c.bgMu.Unlock()
	if c.closed {
		return
	}
	c.bg.Add(1)
	go fn()
}

// clockLoop advances the coarse TTL clock until Close.
func (c *Cache[K, V]) clockLoop() {
	defer c.bg.Done()
	t := time.NewTicker(clockResolution)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.coarse.Store(time.Now().UnixNano())
		}
	}
}

// sweepLoop runs the incremental expiry sweeper until Close.
func (c *Cache[K, V]) sweepLoop() {
	defer c.bg.Done()
	t := time.NewTicker(c.sweepInterval)
	defer t.Stop()
	chunk := (c.sets + sweepChunks - 1) / sweepChunks
	var exK []K
	var exV []V
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			scanned, expired := 0, 0
			for i := range c.shards {
				exK, exV = c.sweepShard(&c.shards[i], chunk, exK[:0], exV[:0])
				scanned += chunk
				expired += len(exK)
				for j := range exK {
					if c.onExpire != nil {
						c.onExpire(exK[j], exV[j])
					}
				}
				clear(exK)
				clear(exV)
			}
			if expired > 0 {
				c.nSweepExpired.Add(uint64(expired))
				if c.sink.Sweep != nil {
					c.sink.Sweep(SweepEvent{SetsScanned: scanned, Expired: expired})
				}
			}
		}
	}
}

// sweepShard scans the next `chunk` sets of one shard from its cursor,
// reclaiming expired entries. The expired pairs are appended to exK/exV
// for the caller to hand to OnExpire after the lock is released.
func (c *Cache[K, V]) sweepShard(sh *shard[K, V], chunk int, exK []K, exV []V) ([]K, []V) {
	sh.mu.Lock()
	now := c.now()
	for n := 0; n < chunk; n++ {
		set := sh.sweepCur
		sh.sweepCur++
		if sh.sweepCur >= c.sets {
			sh.sweepCur = 0
		}
		w := sh.ttl[set]
		if w == 0 {
			continue
		}
		base := set * c.ways
		for ; w != 0; w &= w - 1 {
			way := bits.TrailingZeros64(w)
			if sh.deadline[base+way] <= now {
				k, v := c.expireLocked(sh, set, way)
				exK = append(exK, k)
				exV = append(exV, v)
			}
		}
	}
	sh.mu.Unlock()
	return exK, exV
}

// autoRebalanceLoop drives rebalance(auto) every WithAutoRebalance
// interval until Close.
func (c *Cache[K, V]) autoRebalanceLoop() {
	defer c.bg.Done()
	t := time.NewTicker(c.autoInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			// The only possible error is an invalid computed allocation,
			// which would be a bug surfaced by tests, not a runtime
			// condition a background loop can act on.
			_, _, _ = c.rebalance(true)
		}
	}
}

// Close stops the cache's background goroutines (coarse clock, sweeper,
// auto-rebalance ticker) and waits for them to exit. The cache itself
// remains usable for data-plane operations, but with the built-in clock
// stopped entries no longer expire and quotas no longer adjust on their
// own. Close is idempotent and always returns nil (the error return
// satisfies io.Closer).
func (c *Cache[K, V]) Close() error {
	c.bgMu.Lock()
	if !c.closed {
		c.closed = true
		close(c.stop)
	}
	c.bgMu.Unlock()
	c.bg.Wait()
	return nil
}

// defaultDeadline returns the expiry instant for an entry inserted now
// under the default TTL, or 0 when no default is configured.
func (c *Cache[K, V]) defaultDeadline() int64 {
	if c.ttlDefault == 0 {
		return 0
	}
	return c.now() + c.ttlDefault
}

// deadlineFor converts a per-entry TTL into an expiry instant: ttl > 0
// expires after ttl, ttl == 0 never expires (overriding any default), and
// ttl < 0 yields an already-lapsed deadline (the entry is reclaimed on
// its next touch or sweep).
func (c *Cache[K, V]) deadlineFor(ttl time.Duration) int64 {
	if ttl == 0 {
		return 0
	}
	return c.now() + int64(ttl)
}

// SetTenantTTL inserts or updates key → value on behalf of tenant with an
// explicit TTL, overriding any WithDefaultTTL for this entry: ttl > 0
// expires the entry after ttl, ttl == 0 pins it (no expiry), ttl < 0
// inserts it already expired. Quota enforcement, eviction and callbacks
// behave exactly as SetTenant.
func (c *Cache[K, V]) SetTenantTTL(tenant int, key K, value V, ttl time.Duration) {
	c.checkTenant(tenant)
	// A ttl of 0 pins the entry — no deadline will ever be stored, so a
	// TTL-free cache doesn't pay for the clock, sweeper and deadline
	// arrays just because a caller pins defensively.
	if ttl != 0 {
		c.armTTL()
	}
	sh, set, tag := c.locate(key)
	dl := c.deadlineFor(ttl)

	sh.mu.Lock()
	evKey, evVal, kind := c.setLocked(sh, set, tenant, tag, key, value, dl)
	sh.mu.Unlock()

	c.displaced(evKey, evVal, kind)
}

// SetTTL re-arms the TTL of an already-resident entry: ttl > 0 expires it
// after ttl from now, ttl == 0 removes its deadline, ttl < 0 marks it
// already expired. It reports whether the key was resident and live; a
// key whose previous TTL had already lapsed is reclaimed and false is
// returned. The entry's value, owner and recency are untouched.
func (c *Cache[K, V]) SetTTL(key K, ttl time.Duration) bool {
	if ttl != 0 {
		c.armTTL() // a 0 pin never stores a deadline: no machinery needed
	}
	sh, set, tag := c.locate(key)
	base := set * c.ways
	tbase := set * c.tagWords

	sh.mu.Lock()
	w := c.findLocked(sh, base, tbase, tag, key)
	if w < 0 {
		sh.mu.Unlock()
		return false
	}
	if sh.ttl[set]&(1<<uint(w)) != 0 && sh.deadline[base+w] <= c.now() {
		exK, exV := c.expireLocked(sh, set, w)
		sh.mu.Unlock()
		if c.onExpire != nil {
			c.onExpire(exK, exV)
		}
		return false
	}
	if dl := c.deadlineFor(ttl); dl != 0 {
		sh.ttl[set] |= 1 << uint(w)
		sh.deadline[base+w] = dl
	} else {
		sh.ttl[set] &^= 1 << uint(w)
	}
	sh.mu.Unlock()
	return true
}

// SetBudgets installs per-tenant byte budgets (len must equal Tenants();
// 0 = unlimited; nil clears all budgets). Budgets require a WithCost
// function — without one the cache has no byte measurements to enforce.
// Budgets steer the partitioning, they are not a hard byte limiter: at
// each Rebalance (manual or auto) the budgets are translated into
// per-tenant way caps from the tenant's observed bytes-per-way, and the
// allocation never hands a tenant more ways than its budget supports. A
// tenant over budget because its entries grew is pulled back at the next
// rebalance rather than evicted mid-interval.
func (c *Cache[K, V]) SetBudgets(budgets []uint64) error {
	if budgets == nil {
		c.quotaMu.Lock()
		c.budgets = nil
		c.quotaMu.Unlock()
		return nil
	}
	if c.costFn == nil {
		return fmt.Errorf("cpacache: SetBudgets requires a WithCost function")
	}
	if len(budgets) != c.tenants {
		return fmt.Errorf("cpacache: got %d budgets for %d tenants", len(budgets), c.tenants)
	}
	c.quotaMu.Lock()
	c.budgets = append(c.budgets[:0], budgets...)
	c.quotaMu.Unlock()
	return nil
}

// Budgets returns a copy of the installed per-tenant byte budgets, or nil
// when none are set.
func (c *Cache[K, V]) Budgets() []uint64 {
	c.quotaMu.Lock()
	defer c.quotaMu.Unlock()
	if c.budgets == nil {
		return nil
	}
	return append([]uint64(nil), c.budgets...)
}
