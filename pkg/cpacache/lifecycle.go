package cpacache

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Lifecycle management: TTL/expiry, the background goroutines (coarse
// clock, timing-wheel sweeper, auto-rebalance ticker) and byte budgets.
//
// Expiry is hardware-flavored like the rest of the cache: each set keeps
// one word with a bit per way marking slots that carry a deadline, so the
// lookup hot path pays a single word test when the probed line has no TTL
// and one clock read when it does — the Get path stays allocation-free
// and within noise of the TTL-less probe. Reclamation is lazy (any
// lookup, Set or Delete that lands on an expired line reclaims it) plus a
// background sweeper driven by a hierarchical timing wheel: every
// deadline-carrying slot is linked — through intrusive doubly linked
// lists, so inserts, moves and removals are O(1) and allocation-free —
// into the bucket of the wheel level matching its distance-to-deadline,
// and a sweep tick visits only the entries that are actually due instead
// of scanning sets. A tick that finds a shard's lock contended skips that
// shard (backpressure; the entries remain linked and the next tick
// retries) and reports the skip through the metrics sink.
//
// The TTL clock is deliberately coarse: a background goroutine stores
// time.Now().UnixNano() into an atomic every clockResolution, and the hot
// path only ever loads that atomic. WithNow replaces the clock entirely
// (no goroutine), which callers use to share an existing coarse clock or
// to drive expiry deterministically in tests.

// clockResolution is how often the internal coarse clock advances, and
// therefore the precision of TTL expiry under the built-in clock.
const clockResolution = time.Millisecond

// Timing-wheel geometry. Each of the wheelLevels levels has wheelSlots
// buckets; a level-0 bucket spans one wheelTick (= the clock
// resolution), level 1 spans wheelSlots ticks, level 2 wheelSlots²
// ticks, giving the wheel a ~4.4-minute horizon at the 1ms tick. Slots
// due beyond the horizon sit in the overflow list and are re-filed when
// the wheel's level-2 window wraps; slots already due sit in the due
// list, which every sweep tick examines.
const (
	wheelTick       = int64(clockResolution)
	wheelSlots      = 64
	wheelLevels     = 3
	wheelDueBucket  = wheelLevels * wheelSlots
	wheelOverflow   = wheelDueBucket + 1
	wheelNumBuckets = wheelOverflow + 1
	wheelJumpRescan = wheelSlots * wheelSlots // clock jumped past the L0+L1 horizon: rescan
	wheelHorizon    = wheelSlots * wheelSlots * wheelSlots
	wheelNoBucket   = int32(-1)
	wheelListEnd    = int32(-1)
)

// ttlWheel is one shard's hierarchical timing wheel. All state is
// guarded by the shard mutex. Links are intrusive: next/prev/where are
// indexed by slot (set*ways+way), so a slot is in at most one bucket and
// every operation is pointer surgery on preallocated arrays — the wheel
// never allocates after armTTL.
type ttlWheel struct {
	next, prev []int32
	where      []int32 // bucket the slot is linked into, wheelNoBucket when unlinked
	heads      [wheelNumBuckets]int32
	cur        int64 // last fully processed tick (deadline / wheelTick)
}

func newTTLWheel(slots int, nowTick int64) *ttlWheel {
	w := &ttlWheel{
		next:  make([]int32, slots),
		prev:  make([]int32, slots),
		where: make([]int32, slots),
		cur:   nowTick,
	}
	for i := range w.where {
		w.where[i] = wheelNoBucket
	}
	for i := range w.heads {
		w.heads[i] = wheelListEnd
	}
	return w
}

// bucketFor maps a deadline to the bucket that will examine it next.
func (w *ttlWheel) bucketFor(d int64) int32 {
	t := d / wheelTick
	delta := t - w.cur
	switch {
	case delta <= 0:
		return wheelDueBucket
	case delta < wheelSlots:
		return int32(t & (wheelSlots - 1))
	case delta < wheelSlots*wheelSlots:
		return int32(wheelSlots + (t>>6)&(wheelSlots-1))
	case delta < wheelHorizon:
		return int32(2*wheelSlots + (t>>12)&(wheelSlots-1))
	default:
		return wheelOverflow
	}
}

// link pushes slot onto the front of bucket b.
func (w *ttlWheel) link(slot, b int32) {
	w.prev[slot] = wheelListEnd
	w.next[slot] = w.heads[b]
	if h := w.heads[b]; h != wheelListEnd {
		w.prev[h] = slot
	}
	w.heads[b] = slot
	w.where[slot] = b
}

// unlink removes slot from whatever bucket holds it; a no-op when the
// slot is not linked (or the wheel was never armed).
func (w *ttlWheel) unlink(slot int32) {
	if w == nil || w.where[slot] == wheelNoBucket {
		return
	}
	if p := w.prev[slot]; p != wheelListEnd {
		w.next[p] = w.next[slot]
	} else {
		w.heads[w.where[slot]] = w.next[slot]
	}
	if n := w.next[slot]; n != wheelListEnd {
		w.prev[n] = w.prev[slot]
	}
	w.where[slot] = wheelNoBucket
}

// schedule (re)files slot under its new deadline, moving it between
// buckets if it was already linked. No-op when the wheel is not armed
// (then reclamation is purely lazy, as with WithTTLSweep(0) before).
func (w *ttlWheel) schedule(slot int32, d int64) {
	if w == nil {
		return
	}
	w.unlink(slot)
	w.link(slot, w.bucketFor(d))
}

// advanceWheelLocked moves the shard's wheel forward to now, expiring
// every linked slot whose deadline lapsed and cascading not-yet-due
// entries toward level 0. Expired pairs are appended to exK/exV for the
// caller to hand to OnExpire outside the lock; the return also counts
// the wheel entries visited. Caller holds sh.mu.
func (c *Cache[K, V]) advanceWheelLocked(sh *shard[K, V], now int64, exK []K, exV []V) ([]K, []V, int) {
	w := sh.wheel
	if w == nil {
		return exK, exV, 0
	}
	visited := 0
	tNow := now / wheelTick
	switch {
	case tNow-w.cur > wheelJumpRescan:
		// The clock jumped far past the fine levels (a test clock, or a
		// sweeper that was starved for minutes): re-examine everything
		// once instead of replaying millions of empty ticks.
		w.cur = tNow
		for b := int32(0); b < wheelNumBuckets; b++ {
			exK, exV = c.wheelVisit(sh, b, now, &visited, exK, exV)
		}
		return exK, exV, visited
	case tNow > w.cur:
		for w.cur < tNow {
			w.cur++
			cur := w.cur
			if cur&(wheelSlots-1) == 0 {
				// Entering a new level-1 window: pull its bucket down.
				c.wheelRefile(sh, int32(wheelSlots+(cur>>6)&(wheelSlots-1)))
				if cur&(wheelSlots*wheelSlots-1) == 0 {
					c.wheelRefile(sh, int32(2*wheelSlots+(cur>>12)&(wheelSlots-1)))
					if cur&(wheelHorizon-1) == 0 {
						c.wheelRefile(sh, wheelOverflow)
					}
				}
			}
			exK, exV = c.wheelVisit(sh, int32(cur&(wheelSlots-1)), now, &visited, exK, exV)
		}
	}
	exK, exV = c.wheelVisit(sh, wheelDueBucket, now, &visited, exK, exV)
	return exK, exV, visited
}

// wheelVisit walks bucket b, expiring slots whose deadline lapsed and
// moving the rest toward their correct bucket (entries that are not yet
// due stay parked in the due list until they are). The walk captures
// each next pointer before mutating, so re-filed entries pushed onto a
// bucket front are not revisited.
func (c *Cache[K, V]) wheelVisit(sh *shard[K, V], b int32, now int64, visited *int, exK []K, exV []V) ([]K, []V) {
	w := sh.wheel
	for slot := w.heads[b]; slot != wheelListEnd; {
		nxt := w.next[slot]
		*visited++
		if d := sh.deadline[slot]; d <= now {
			set, way := int(slot)/c.ways, int(slot)%c.ways
			k, v := c.expireLocked(sh, set, way) // clearSlotLocked unlinks
			exK = append(exK, k)
			exV = append(exV, v)
		} else if nb := w.bucketFor(d); nb != b {
			w.unlink(slot)
			w.link(slot, nb)
		}
		slot = nxt
	}
	return exK, exV
}

// wheelRefile cascades bucket b: every entry moves to the bucket its
// deadline now maps to (level 0, or the due list if it lapsed — the due
// walk at the end of the advance expires it).
func (c *Cache[K, V]) wheelRefile(sh *shard[K, V], b int32) {
	w := sh.wheel
	for slot := w.heads[b]; slot != wheelListEnd; {
		nxt := w.next[slot]
		if nb := w.bucketFor(sh.deadline[slot]); nb != b {
			w.unlink(slot)
			w.link(slot, nb)
		}
		slot = nxt
	}
}

// now returns the TTL clock reading. The common case — no WithNow — is a
// nil check plus one atomic load, small enough to inline into the lookup
// hot path; an indirect call happens only when the caller supplied its
// own clock.
func (c *Cache[K, V]) now() int64 {
	if c.nowFn != nil {
		return c.nowFn()
	}
	return c.coarse.Load()
}

// armTTL starts the TTL machinery on first use (construction with a
// default TTL, or the first SetTTL/SetTenantTTL/SetTenantDefaultTTL
// call): the per-slot deadline arrays and timing wheels, the coarse
// clock goroutine — unless WithNow supplied one — and the sweeper,
// unless sweeping is disabled. Idempotent and cheap after the first call.
func (c *Cache[K, V]) armTTL() {
	c.ttlArm.Do(func() {
		if c.nowFn == nil {
			// The coarse clock was last stored at New and has been idle
			// since; catch it up before the first deadline is computed
			// from it, or a TTL shorter than the cache's age would be
			// born already expired.
			c.coarse.Store(time.Now().UnixNano())
		}
		nowTick := c.now() / wheelTick
		// Allocate the per-slot deadline arrays and wheels now that TTLs
		// exist. A deadline is only ever read for a slot whose per-set
		// ttl bit is set; bits are stored atomically (release) after this
		// lock-ordered allocation, so even the lock-free reader's
		// acquire load of a set bit proves the arrays are visible.
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			sh.deadline = make([]int64, c.sets*c.ways)
			sh.wheel = newTTLWheel(c.sets*c.ways, nowTick)
			sh.mu.Unlock()
		}
		if c.nowFn == nil {
			c.goBG(c.clockLoop)
		}
		if c.sweepInterval > 0 {
			c.goBG(c.sweepLoop)
		}
	})
}

// goBG spawns a background goroutine tracked by the WaitGroup, unless the
// cache is already closed (a lazy TTL arm can race Close). The bgMu
// ordering guarantees Close never observes a spawn after its bg.Wait
// began: either the spawn sees closed and does nothing, or Close's Wait
// sees the incremented counter.
func (c *Cache[K, V]) goBG(fn func()) {
	c.bgMu.Lock()
	defer c.bgMu.Unlock()
	if c.closed {
		return
	}
	c.bg.Add(1)
	go fn()
}

// clockLoop advances the coarse TTL clock until Close.
func (c *Cache[K, V]) clockLoop() {
	defer c.bg.Done()
	t := time.NewTicker(clockResolution)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.coarse.Store(time.Now().UnixNano())
		}
	}
}

// sweepLoop runs the timing-wheel sweeper until Close. Under memory
// pressure (WithMaxBytes ladder ≥ aggressive) the tick shortens to
// pressureInterval so expired bytes come back faster; the ticker is
// re-armed only when the desired cadence actually changes, so without a
// pressure ladder the loop keeps the plain fixed-period ticker (missed
// ticks stay pending rather than sliding later, which matters on
// starved single-core hosts).
func (c *Cache[K, V]) sweepLoop() {
	defer c.bg.Done()
	cur := c.pressureInterval(c.sweepInterval)
	t := time.NewTicker(cur)
	defer t.Stop()
	var exK []K
	var exV []V
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			exK, exV = c.sweepOnce(exK, exV)
			if want := c.pressureInterval(c.sweepInterval); want != cur {
				cur = want
				t.Reset(cur)
			}
		}
	}
}

// sweepOnce runs one sweeper tick over every shard: drain the touch
// ring, advance the wheel, reclaim due entries, run OnExpire outside the
// lock. A shard whose mutex is contended is skipped — the data plane
// owns it right now, and whatever was due stays linked for the next tick
// — with the skip surfaced through SweepEvent.Skipped. The exK/exV
// buffers are reused tick to tick so steady-state sweeping does not
// allocate.
func (c *Cache[K, V]) sweepOnce(exK []K, exV []V) ([]K, []V) {
	now := c.now()
	expired, visited, skipped := 0, 0, 0
	for i := range c.shards {
		sh := &c.shards[i]
		if !sh.mu.TryLock() {
			skipped++
			continue
		}
		c.drainTouches(sh)
		var vis int
		exK, exV, vis = c.advanceWheelLocked(sh, now, exK[:0], exV[:0])
		sh.mu.Unlock()
		visited += vis
		expired += len(exK)
		for j := range exK {
			if c.onExpire != nil {
				c.onExpire(exK[j], exV[j])
			}
		}
		clear(exK)
		clear(exV)
	}
	if expired > 0 {
		c.nSweepExpired.Add(uint64(expired))
	}
	if skipped > 0 {
		c.nSweepSkipped.Add(uint64(skipped))
	}
	if (expired > 0 || skipped > 0) && c.sink.Sweep != nil {
		c.sink.Sweep(SweepEvent{Visited: visited, Expired: expired, Skipped: skipped})
	}
	// Sweeping is what drains the gauge while writes are being shed (an
	// OOM-gated caller never reaches the set path that would notice the
	// recovery), so the ladder must be re-examined here.
	c.checkPressure()
	return exK[:0], exV[:0]
}

// autoRebalanceLoop drives rebalance(auto) every WithAutoRebalance
// interval until Close. Like the sweeper, the tick shortens under
// memory pressure so budget-violating quotas are corrected promptly,
// re-arming the ticker only on a cadence change.
func (c *Cache[K, V]) autoRebalanceLoop() {
	defer c.bg.Done()
	cur := c.pressureInterval(c.autoInterval)
	t := time.NewTicker(cur)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			// The only possible error is an invalid computed allocation,
			// which would be a bug surfaced by tests, not a runtime
			// condition a background loop can act on.
			_, _, _ = c.rebalance(true)
			if want := c.pressureInterval(c.autoInterval); want != cur {
				cur = want
				t.Reset(cur)
			}
		}
	}
}

// Close stops the cache's background goroutines (coarse clock, sweeper,
// auto-rebalance ticker) and waits for them to exit. The cache itself
// remains usable for data-plane operations, but with the built-in clock
// stopped entries no longer expire and quotas no longer adjust on their
// own. Close is idempotent and always returns nil (the error return
// satisfies io.Closer).
func (c *Cache[K, V]) Close() error {
	c.bgMu.Lock()
	if !c.closed {
		c.closed = true
		close(c.stop)
	}
	c.bgMu.Unlock()
	c.bg.Wait()
	return nil
}

// defaultDeadline returns the expiry instant for an entry tenant inserts
// now without an explicit TTL: the tenant's SetTenantDefaultTTL override
// if one is set, else the cache-wide WithDefaultTTL, else 0 (no expiry).
func (c *Cache[K, V]) defaultDeadline(tenant int) int64 {
	ttl := c.tenantTTL[tenant].Load()
	if ttl == 0 {
		ttl = c.ttlDefault
	}
	if ttl == 0 {
		return 0
	}
	return c.now() + ttl
}

// deadlineFor converts a per-entry TTL into an expiry instant: ttl > 0
// expires after ttl, ttl == 0 never expires (overriding any default), and
// ttl < 0 yields an already-lapsed deadline (the entry is reclaimed on
// its next touch or sweep).
func (c *Cache[K, V]) deadlineFor(ttl time.Duration) int64 {
	if ttl == 0 {
		return 0
	}
	return c.now() + int64(ttl)
}

// SetTenantDefaultTTL overrides the cache-wide default TTL for one
// tenant: entries the tenant inserts without an explicit TTL (SetTenant,
// Set, SetBatch) expire after d. d == 0 removes the override (the
// WithDefaultTTL value, if any, applies again); d must not be negative.
// Entries already resident keep their deadlines — the override applies
// to subsequent inserts, like WithDefaultTTL itself.
func (c *Cache[K, V]) SetTenantDefaultTTL(tenant int, d time.Duration) error {
	c.checkTenant(tenant)
	if d < 0 {
		return fmt.Errorf("cpacache: tenant default TTL must be >= 0, got %v", d)
	}
	if d > 0 {
		c.armTTL()
	}
	c.tenantTTL[tenant].Store(int64(d))
	return nil
}

// TenantDefaultTTL returns the tenant's SetTenantDefaultTTL override, or
// 0 when the tenant uses the cache-wide default.
func (c *Cache[K, V]) TenantDefaultTTL(tenant int) time.Duration {
	c.checkTenant(tenant)
	return time.Duration(c.tenantTTL[tenant].Load())
}

// SetTenantTTL inserts or updates key → value on behalf of tenant with an
// explicit TTL, overriding any default for this entry: ttl > 0 expires
// the entry after ttl, ttl == 0 pins it (no expiry), ttl < 0 inserts it
// already expired. Quota enforcement, eviction, hard-budget enforcement
// and callbacks behave exactly as SetTenant, including the
// ErrEntryTooLarge rejection under WithHardBudgets/WithMaxBytes.
func (c *Cache[K, V]) SetTenantTTL(tenant int, key K, value V, ttl time.Duration) error {
	c.checkTenant(tenant)
	// A ttl of 0 pins the entry — no deadline will ever be stored, so a
	// TTL-free cache doesn't pay for the clock, sweeper and deadline
	// arrays just because a caller pins defensively.
	if ttl != 0 {
		c.armTTL()
	}
	return c.setWithDeadline(tenant, key, value, c.deadlineFor(ttl))
}

// SetTTL re-arms the TTL of an already-resident entry: ttl > 0 expires it
// after ttl from now, ttl == 0 removes its deadline, ttl < 0 marks it
// already expired. It reports whether the key was resident and live; a
// key whose previous TTL had already lapsed is reclaimed and false is
// returned. The entry's value, owner and recency are untouched.
func (c *Cache[K, V]) SetTTL(key K, ttl time.Duration) bool {
	if ttl != 0 {
		c.armTTL() // a 0 pin never stores a deadline: no machinery needed
	}
	sh, set, tag := c.locate(key)
	base := set * c.ways
	tbase := c.tagBase(set)

	sh.mu.Lock()
	w := c.findLocked(sh, base, tbase, tag, key)
	if w < 0 {
		sh.mu.Unlock()
		return false
	}
	if sh.ttl[set]&(1<<uint(w)) != 0 && sh.deadline[base+w] <= c.now() {
		c.drainTouches(sh) // Invalidate consults recency
		exK, exV := c.expireLocked(sh, set, w)
		sh.mu.Unlock()
		if c.onExpire != nil {
			c.onExpire(exK, exV)
		}
		return false
	}
	sbase := c.seqBase(set)
	sh.beginSetWrite(sbase)
	if dl := c.deadlineFor(ttl); dl != 0 {
		sh.setTTLBits(set, sh.ttl[set]|1<<uint(w))
		atomic.StoreInt64(&sh.deadline[base+w], dl)
		sh.wheel.schedule(int32(base+w), dl)
	} else if sh.ttl[set]&(1<<uint(w)) != 0 {
		sh.setTTLBits(set, sh.ttl[set]&^(1<<uint(w)))
		sh.wheel.unlink(int32(base + w))
	}
	sh.endSetWrite(sbase)
	sh.mu.Unlock()
	return true
}

// TTL reports the remaining time to live of key without refreshing its
// recency: present is false when the key is absent — including when its
// deadline already lapsed, in which case the entry is reclaimed exactly
// as a lookup would reclaim it — and hasTTL is false when the entry is
// resident but carries no deadline (it lives until displaced or
// deleted). remaining is positive only when present and hasTTL are both
// true. This is the query behind a wire protocol's TTL/PTTL/EXISTS
// commands: an existence or expiry probe must not perturb the
// replacement state the way GetTenant's touch would, and it records no
// hit/miss statistics for the same reason.
func (c *Cache[K, V]) TTL(key K) (remaining time.Duration, hasTTL, present bool) {
	sh, set, tag := c.locate(key)
	base := set * c.ways
	tbase := c.tagBase(set)

	sh.mu.Lock()
	w := c.findLocked(sh, base, tbase, tag, key)
	if w < 0 {
		sh.mu.Unlock()
		return 0, false, false
	}
	if sh.ttl[set]&(1<<uint(w)) == 0 {
		sh.mu.Unlock()
		return 0, false, true
	}
	dl := sh.deadline[base+w]
	now := c.now()
	if dl <= now {
		c.drainTouches(sh) // Invalidate consults recency; apply pending first
		exK, exV := c.expireLocked(sh, set, w)
		sh.mu.Unlock()
		if c.onExpire != nil {
			c.onExpire(exK, exV)
		}
		return 0, false, false
	}
	sh.mu.Unlock()
	return time.Duration(dl - now), true, true
}

// SetBudgets installs per-tenant byte budgets (len must equal Tenants();
// 0 = unlimited; nil clears all budgets). Budgets require a WithCost
// function — without one the cache has no byte measurements to enforce.
// By default budgets steer the partitioning rather than hard-limiting
// bytes: at each Rebalance (manual or auto) the budgets are translated
// into per-tenant way caps from the tenant's observed bytes-per-way, and
// the allocation never hands a tenant more ways than its budget
// supports; a tenant over budget because its entries grew is pulled back
// at the next rebalance. Under WithHardBudgets the budgets are
// additionally enforced on the write path itself — see that option for
// the evict-on-write semantics.
func (c *Cache[K, V]) SetBudgets(budgets []uint64) error {
	if budgets == nil {
		c.quotaMu.Lock()
		c.budgets = nil
		c.quotaMu.Unlock()
		if c.budgetAtomic != nil {
			for t := range c.budgetAtomic {
				c.budgetAtomic[t].Store(0)
			}
		}
		return nil
	}
	if c.costFn == nil {
		return fmt.Errorf("cpacache: SetBudgets requires a WithCost function")
	}
	if len(budgets) != c.tenants {
		return fmt.Errorf("cpacache: got %d budgets for %d tenants", len(budgets), c.tenants)
	}
	c.quotaMu.Lock()
	c.budgets = append(c.budgets[:0], budgets...)
	c.quotaMu.Unlock()
	// Mirror into the lock-free copy the write path's enforcement checks
	// read (costFn != nil guarantees the mirror was allocated at New).
	for t, b := range budgets {
		c.budgetAtomic[t].Store(b)
	}
	return nil
}

// Budgets returns a copy of the installed per-tenant byte budgets, or nil
// when none are set.
func (c *Cache[K, V]) Budgets() []uint64 {
	c.quotaMu.Lock()
	defer c.quotaMu.Unlock()
	if c.budgets == nil {
		return nil
	}
	return append([]uint64(nil), c.budgets...)
}
