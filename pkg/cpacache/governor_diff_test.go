package cpacache

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/pkg/plru"
)

// Memory-governor mirror for the linear-scan reference model: the exact
// evict-on-write semantics of governor.go — admission, insert-then-
// reclaim, the expired→owned→any reclaim ladder, ring-order cross-shard
// walk — re-implemented over the model's plain slot arrays so a random
// workload driven through both must produce identical gauges, budget-
// eviction counts, eviction/expiration streams and final contents under
// every policy kind.

// tenantOverM/globalOverM/stillOverM mirror stillOver/overBudget on the
// model's gauges.
func (m *refModel[K, V]) stillOverM(tenant, scope int) bool {
	if scope == scopeTenant {
		b := m.budgets[tenant]
		return b > 0 && m.stats[tenant].Bytes > b
	}
	return m.maxBytes > 0 && m.totalBytes > m.maxBytes
}

func (m *refModel[K, V]) overBudgetM(tenant int) bool {
	if m.hardBudgets && m.stillOverM(tenant, scopeTenant) {
		return true
	}
	return m.stillOverM(tenant, scopeGlobal)
}

// setHard mirrors setWithDeadline: admission check, insert, enforcement
// in the insert shard (protecting the just-written line), then the
// ring-order walk over the remaining shards.
func (m *refModel[K, V]) setHard(tenant int, key K, value V, dl int64) error {
	cost := m.costFn(key, value)
	if m.hardBudgets {
		if b := m.budgets[tenant]; b > 0 && cost > b {
			return ErrEntryTooLarge
		}
	}
	if m.maxBytes > 0 && cost > m.maxBytes {
		return ErrEntryTooLarge
	}
	si, set, way := m.setDL(tenant, key, value, dl)
	if m.overBudgetM(tenant) {
		m.enforceShard(si, tenant, set, way)
		if m.overBudgetM(tenant) {
			for off := 1; off < len(m.keys); off++ {
				if !m.overBudgetM(tenant) {
					break
				}
				m.enforceShard((si+off)&int(m.c.shardMask), tenant, -1, -1)
			}
		}
	}
	return nil
}

// enforceShard mirrors enforceShardLocked (the model's recency is always
// current, so there is no touch ring to drain).
func (m *refModel[K, V]) enforceShard(si, tenant, protSet, protWay int) {
	if m.hardBudgets {
		m.reclaimShard(si, tenant, scopeTenant, protSet, protWay)
	}
	if m.maxBytes > 0 {
		m.reclaimShard(si, tenant, scopeGlobal, protSet, protWay)
	}
}

// reclaimShard mirrors reclaimShardLocked's deterministic ladder: expired
// lines first (sets ascending, ways ascending), then the writing tenant's
// own live lines, then — global scope only — anyone's.
func (m *refModel[K, V]) reclaimShard(si, tenant, scope, protSet, protWay int) {
	if !m.stillOverM(tenant, scope) {
		return
	}
	var now int64
	if m.now != nil {
		now = m.now()
	}
	for set := 0; set < m.c.sets; set++ {
		if !m.stillOverM(tenant, scope) {
			return
		}
		base := set * m.c.ways
		for w := 0; w < m.c.ways; w++ {
			if m.dl[si][base+w] == 0 || m.owner[si][base+w] < 0 {
				continue
			}
			if set == protSet && w == protWay {
				continue
			}
			if scope == scopeTenant && int(m.owner[si][base+w]) != tenant {
				continue
			}
			if m.dl[si][base+w] > now {
				continue
			}
			m.expire(si, set, w)
			if !m.stillOverM(tenant, scope) {
				return
			}
		}
	}
	m.evictOwned(si, tenant, scope, protSet, protWay)
	if scope == scopeGlobal {
		m.evictAny(si, tenant, protSet, protWay)
	}
}

// evictOwned mirrors evictOwnedLocked: the tenant's own live lines,
// policy-chosen, mask-preferred.
func (m *refModel[K, V]) evictOwned(si, tenant, scope, protSet, protWay int) {
	for set := 0; set < m.c.sets; set++ {
		if !m.stillOverM(tenant, scope) {
			return
		}
		base := set * m.c.ways
		for m.stillOverM(tenant, scope) {
			var owned uint64
			for w := 0; w < m.c.ways; w++ {
				if int(m.owner[si][base+w]) == tenant && !(set == protSet && w == protWay) {
					owned |= 1 << uint(w)
				}
			}
			if owned == 0 {
				break
			}
			pick := owned & uint64(m.masks[tenant])
			if pick == 0 {
				pick = owned
			}
			way := m.pols[si].Victim(set, tenant, plru.WayMask(pick))
			m.budgetEvict(si, set, way)
		}
	}
}

// evictAny mirrors evictAnyLocked: the global scope's last resort.
func (m *refModel[K, V]) evictAny(si, tenant, protSet, protWay int) {
	for set := 0; set < m.c.sets; set++ {
		if !m.stillOverM(tenant, scopeGlobal) {
			return
		}
		base := set * m.c.ways
		for m.stillOverM(tenant, scopeGlobal) {
			var occ uint64
			for w := 0; w < m.c.ways; w++ {
				if m.owner[si][base+w] >= 0 && !(set == protSet && w == protWay) {
					occ |= 1 << uint(w)
				}
			}
			if occ == 0 {
				break
			}
			way := m.pols[si].Victim(set, tenant, plru.WayMask(occ))
			m.budgetEvict(si, set, way)
		}
	}
}

// budgetEvict mirrors budgetEvictLocked.
func (m *refModel[K, V]) budgetEvict(si, set, way int) {
	base := set * m.c.ways
	m.stats[m.owner[si][base+way]].BudgetEvictions++
	m.evicts = append(m.evicts, m.keys[si][base+way])
	m.clearSlot(si, set, way)
}

// TestDifferentialHardBudgets drives random workloads — lookups, plain
// and TTL'd inserts (including entries too large to ever fit), TTL
// re-arms, deletes, clock advances, quota changes and rebalances —
// through a WithHardBudgets+WithMaxBytes cache and the linear-scan model
// under every policy kind, in both recency configurations. Hits,
// eviction/expiration streams (budget evictions included), per-tenant
// gauges, BudgetEvictions counts and full slot state must match exactly,
// and after every single write the enforced invariant holds: no budgeted
// tenant's gauge above its budget, the global gauge never above
// WithMaxBytes.
func TestDifferentialHardBudgets(t *testing.T) {
	type geo struct {
		shards, sets, ways, tenants int
		defaultTTL                  int64
	}
	geos := []geo{
		{shards: 2, sets: 8, ways: 8, tenants: 3, defaultTTL: 0},
		{shards: 1, sets: 5, ways: 4, tenants: 2, defaultTTL: 100},
		{shards: 4, sets: 16, ways: 16, tenants: 4, defaultTTL: 0},
	}
	const polSeed = 321
	costOf := func(k, v uint64) uint64 {
		if k%97 == 0 {
			return 1 << 20 // can never fit: exercises ErrEntryTooLarge
		}
		return k%7 + 1
	}
	for _, mode := range recencyModes {
		for _, pol := range diffKinds {
			for _, g := range geos {
				if pol == plru.BT && g.ways&(g.ways-1) != 0 {
					continue
				}
				t.Run(fmt.Sprintf("%s/%v/%dx%dx%d", mode.name, pol, g.shards, g.sets, g.ways), func(t *testing.T) {
					capacityBytes := uint64(g.shards*g.sets*g.ways) * 4
					maxBytes := capacityBytes / 2
					budgets := make([]uint64, g.tenants)
					budgets[0] = capacityBytes / 8
					budgets[1] = capacityBytes / 6

					clk := newFakeClock()
					var evicted, expired []uint64
					opts := []Option{
						WithShards(g.shards), WithSets(g.sets), WithWays(g.ways),
						WithPolicy(pol), WithPartitions(g.tenants), WithSeed(polSeed),
						WithProfileSampling(2),
						WithNow(clk.Load), WithTTLSweep(0),
						WithCost(costOf),
						WithHardBudgets(),
						WithMaxBytes(maxBytes),
						WithOnEvict(func(k, v uint64) { evicted = append(evicted, k) }),
						WithOnExpire(func(k, v uint64) { expired = append(expired, k) }),
					}
					opts = append(opts, mode.opts...)
					if g.defaultTTL > 0 {
						opts = append(opts, WithDefaultTTL(time.Duration(g.defaultTTL)))
					}
					c, err := New[uint64, uint64](opts...)
					if err != nil {
						t.Fatal(err)
					}
					defer c.Close()
					if err := c.SetBudgets(budgets); err != nil {
						t.Fatal(err)
					}
					m := newRefModel(c, pol, polSeed)
					m.now = clk.Load
					m.costFn = costOf
					m.budgets = budgets
					m.maxBytes = maxBytes
					m.hardBudgets = true

					rng := uint64(g.shards*4242+g.ways) ^ uint64(pol)<<24 | 1
					next := func() uint64 {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						return rng
					}
					ttlChoice := func() time.Duration {
						switch next() % 4 {
						case 0:
							return -5 * time.Nanosecond
						case 1:
							return 0
						case 2:
							return 20 * time.Nanosecond
						default:
							return 500 * time.Nanosecond
						}
					}
					checkGauges := func(step int) {
						t.Helper()
						for tn := 0; tn < g.tenants; tn++ {
							got := uint64(c.gaugeTenant[tn].Load())
							if got != m.stats[tn].Bytes {
								t.Fatalf("step %d: tenant %d gauge %d, model %d", step, tn, got, m.stats[tn].Bytes)
							}
							if b := budgets[tn]; b > 0 && got > b {
								t.Fatalf("step %d: tenant %d gauge %d exceeds hard budget %d", step, tn, got, b)
							}
						}
						total := uint64(c.gaugeTotal.Load())
						if total != m.totalBytes {
							t.Fatalf("step %d: global gauge %d, model %d", step, total, m.totalBytes)
						}
						if total > maxBytes {
							t.Fatalf("step %d: global gauge %d exceeds WithMaxBytes %d", step, total, maxBytes)
						}
						if got := c.UsedBytes(); got != total {
							t.Fatalf("step %d: UsedBytes %d != gauge %d", step, got, total)
						}
					}
					keySpace := uint64(g.shards * g.sets * g.ways * 2)
					rejected := 0
					const steps = 30_000
					for i := 0; i < steps; i++ {
						op := next() % 100
						tenant := int(next() % uint64(g.tenants))
						key := next() % keySpace
						switch {
						case op < 40: // lookup
							gv, gok := c.GetTenant(tenant, key)
							mv, mok := m.get(tenant, key)
							if gok != mok || gv != mv {
								t.Fatalf("step %d: Get(%d,%d) = (%d,%v), model (%d,%v)", i, tenant, key, gv, gok, mv, mok)
							}
						case op < 62: // plain insert/update (default TTL applies)
							var dl int64
							if g.defaultTTL > 0 {
								dl = clk.Load() + g.defaultTTL
							}
							gerr := c.SetTenant(tenant, key, key*3)
							merr := m.setHard(tenant, key, key*3, dl)
							if (gerr != nil) != (merr != nil) {
								t.Fatalf("step %d: Set(%d,%d) err %v, model %v", i, tenant, key, gerr, merr)
							}
							if gerr != nil {
								if !errors.Is(gerr, ErrEntryTooLarge) {
									t.Fatalf("step %d: Set error %v, want ErrEntryTooLarge", i, gerr)
								}
								rejected++
							}
							checkGauges(i)
						case op < 74: // insert/update with explicit TTL
							ttl := ttlChoice()
							var dl int64
							if ttl != 0 {
								dl = clk.Load() + int64(ttl)
							}
							gerr := c.SetTenantTTL(tenant, key, key*3, ttl)
							merr := m.setHard(tenant, key, key*3, dl)
							if (gerr != nil) != (merr != nil) {
								t.Fatalf("step %d: SetTTL(%d,%d) err %v, model %v", i, tenant, key, gerr, merr)
							}
							checkGauges(i)
						case op < 80: // re-arm TTL
							ttl := ttlChoice()
							var dl int64
							if ttl != 0 {
								dl = clk.Load() + int64(ttl)
							}
							if got, want := c.SetTTL(key, ttl), m.setTTL(key, dl); got != want {
								t.Fatalf("step %d: SetTTL(%d,%v) = %v, model %v", i, key, ttl, got, want)
							}
						case op < 87: // delete
							if got, want := c.Delete(key), m.delete(key); got != want {
								t.Fatalf("step %d: Delete(%d) = %v, model %v", i, key, got, want)
							}
							checkGauges(i)
						case op < 92: // time passes
							clk.advance(time.Duration(next() % 60))
						case op < 95: // quota change
							q := randomQuotas(&rng, g.tenants, g.ways)
							if err := c.SetQuotas(q); err != nil {
								t.Fatalf("step %d: SetQuotas(%v): %v", i, q, err)
							}
							m.syncMasks()
						default: // budget-capped online repartition
							if _, err := c.Rebalance(); err != nil {
								t.Fatalf("step %d: Rebalance: %v", i, err)
							}
							m.syncMasks()
						}
						if i%2048 == 0 {
							checkState(t, c, m, i)
						}
					}
					checkState(t, c, m, steps)
					if len(evicted) != len(m.evicts) {
						t.Fatalf("eviction streams differ in length: %d vs model %d", len(evicted), len(m.evicts))
					}
					for i := range evicted {
						if evicted[i] != m.evicts[i] {
							t.Fatalf("eviction %d: key %d, model %d", i, evicted[i], m.evicts[i])
						}
					}
					if len(expired) != len(m.expires) {
						t.Fatalf("expiration streams differ in length: %d vs model %d", len(expired), len(m.expires))
					}
					for i := range expired {
						if expired[i] != m.expires[i] {
							t.Fatalf("expiration %d: key %d, model %d", i, expired[i], m.expires[i])
						}
					}
					var budgetEv uint64
					for _, ts := range c.Stats() {
						budgetEv += ts.BudgetEvictions
					}
					if budgetEv == 0 {
						t.Fatal("workload never forced a budget eviction; enforcement coverage is vacuous")
					}
					if rejected == 0 {
						t.Fatal("workload never rejected an oversized entry; ErrEntryTooLarge coverage is vacuous")
					}
					if got := c.Snapshot().BudgetEvictedBytes; got == 0 {
						t.Fatal("Snapshot.BudgetEvictedBytes stayed 0 despite budget evictions")
					}
				})
			}
		}
	}
}

// TestDifferentialHardBudgetBatch replays a hard-budget workload through
// SetBatch on one cache and per-key SetTenant on another sharing the same
// hash seed. On a single shard the batch's per-key enforcement order is
// identical to the sequential one, so stats (BudgetEvictions included),
// gauges and final contents must match exactly — the per-key equivalence
// the SetBatch enforcement break-out claims to preserve. Oversized keys
// must be skipped without poisoning the rest of the batch.
func TestDifferentialHardBudgetBatch(t *testing.T) {
	costOf := func(k, v uint64) uint64 {
		if k%89 == 0 {
			return 1 << 20
		}
		return k%9 + 1
	}
	for _, mode := range recencyModes {
		for _, pol := range diffBatchKinds {
			t.Run(mode.name+"/"+pol.String(), func(t *testing.T) {
				build := func() *Cache[uint64, uint64] {
					c, err := New[uint64, uint64](append([]Option{
						WithShards(1), WithSets(16), WithWays(8),
						WithPolicy(pol), WithPartitions(2), WithSeed(5),
						WithCost(costOf), WithHardBudgets(), WithMaxBytes(256),
					}, mode.opts...)...)
					if err != nil {
						t.Fatal(err)
					}
					if err := c.SetBudgets([]uint64{96, 0}); err != nil {
						t.Fatal(err)
					}
					return c
				}
				c1 := build()
				c2 := build()
				c2.seed = c1.seed // same key placement (white box)

				const batch = 33
				keys := make([]uint64, batch)
				vals := make([]uint64, batch)

				rng := uint64(77)
				next := func() uint64 {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					return rng
				}
				for round := 0; round < 400; round++ {
					tenant := int(next() % 2)
					oversized := 0
					for i := range keys {
						keys[i] = next() % 1024
						vals[i] = keys[i] * 7
						if keys[i]%89 == 0 {
							oversized++
						}
					}
					err1 := c1.SetBatch(tenant, keys, vals)
					sawErr := 0
					for i := range keys {
						if err := c2.SetTenant(tenant, keys[i], vals[i]); err != nil {
							if !errors.Is(err, ErrEntryTooLarge) {
								t.Fatalf("round %d: SetTenant error %v", round, err)
							}
							sawErr++
						}
					}
					if oversized != sawErr {
						t.Fatalf("round %d: %d oversized keys but %d per-key rejections", round, oversized, sawErr)
					}
					if (err1 != nil) != (oversized > 0) || (err1 != nil && !errors.Is(err1, ErrEntryTooLarge)) {
						t.Fatalf("round %d: SetBatch err %v with %d oversized keys", round, err1, oversized)
					}
					for tn := 0; tn < 2; tn++ {
						if g1, g2 := c1.gaugeTenant[tn].Load(), c2.gaugeTenant[tn].Load(); g1 != g2 {
							t.Fatalf("round %d: tenant %d gauge batch %d vs sequential %d", round, tn, g1, g2)
						}
					}
					if u1, u2 := c1.UsedBytes(), c2.UsedBytes(); u1 != u2 || u1 > 256 {
						t.Fatalf("round %d: UsedBytes batch %d vs sequential %d (cap 256)", round, u1, u2)
					}
				}
				s1, s2 := c1.Stats(), c2.Stats()
				var budgetEv uint64
				for tn := range s1 {
					if s1[tn] != s2[tn] {
						t.Fatalf("tenant %d stats: batch %+v vs sequential %+v", tn, s1[tn], s2[tn])
					}
					budgetEv += s1[tn].BudgetEvictions
				}
				if budgetEv == 0 {
					t.Fatal("workload never forced a budget eviction; coverage is vacuous")
				}
				if c1.Len() != c2.Len() {
					t.Fatalf("Len: batch %d vs sequential %d", c1.Len(), c2.Len())
				}
				for k := uint64(0); k < 1024; k++ {
					v1, ok1 := c1.Get(k)
					v2, ok2 := c2.Get(k)
					if ok1 != ok2 || v1 != v2 {
						t.Fatalf("final content diverges at key %d: (%d,%v) vs (%d,%v)", k, v1, ok1, v2, ok2)
					}
				}
			})
		}
	}
}
