package cpacache

import (
	"hash/maphash"
	"testing"

	"repro/internal/workload"
	"repro/pkg/plru"
)

// collisionClass builds the classifier workload.CollisionKeys needs to
// attack this cache instance: two keys are in the same class iff they
// land in the same shard and set with the same packed tag byte — the
// exact condition under which only the full-key confirm tells them
// apart.
func collisionClass[V any](c *Cache[uint64, V]) func(uint64) uint64 {
	return func(k uint64) uint64 {
		h := maphash.Comparable(c.seed, k)
		return (h&c.shardMask)<<40 | uint64(c.setOf(h))<<8 | uint64(tagOf(h))
	}
}

// TestCollisionStormDifferential pours engineered tag-collision storms
// — several classes of same-shard/same-set/same-tag keys, interleaved,
// at 3x the set's associativity — through the cache and the linear-scan
// reference model under every policy. Every Get/Set/Delete result must
// match the model exactly, and every hit must return the value stored
// under that exact key: a tag-probe false positive that escapes the
// full-key confirm shows up as either divergence or a wrong value.
func TestCollisionStormDifferential(t *testing.T) {
	const shards, sets, ways, tenants = 2, 8, 8, 2
	const polSeed = 321
	for _, kind := range plru.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			c, err := New[uint64, uint64](
				WithShards(shards), WithSets(sets), WithWays(ways),
				WithPolicy(kind), WithPartitions(tenants), WithSeed(polSeed),
			)
			if err != nil {
				t.Fatal(err)
			}
			m := newRefModel(c, kind, polSeed)

			// Three collision classes, each 3x deeper than the set is
			// associative, interleaved so their sets stay under pressure
			// together. Distant starts give (usually) distinct classes —
			// coincidental overlap is harmless, it is just a deeper storm.
			class := collisionClass(c)
			var groups [][]uint64
			for _, start := range []uint64{1, 1 << 20, 1 << 30} {
				g := workload.CollisionKeys(class, start, 3*ways, 0)
				if len(g) < ways+1 {
					t.Fatalf("collision search from %d found only %d keys", start, len(g))
				}
				groups = append(groups, g)
			}
			storm := workload.InterleaveKeys(groups...)

			rng := uint64(kind)<<16 | 7
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			const steps = 20_000
			for i := 0; i < steps; i++ {
				key := storm[next()%uint64(len(storm))]
				tenant := int(next() % tenants)
				switch next() % 10 {
				case 0: // delete
					if got, want := c.Delete(key), m.delete(key); got != want {
						t.Fatalf("step %d: Delete(%d) = %v, model %v", i, key, got, want)
					}
				case 1, 2, 3: // store
					c.SetTenant(tenant, key, key*3)
					m.set(tenant, key, key*3)
				default: // lookup
					gv, gok := c.GetTenant(tenant, key)
					mv, mok := m.get(tenant, key)
					if gok != mok || gv != mv {
						t.Fatalf("step %d: Get(%d,%d) = (%d,%v), model (%d,%v)", i, tenant, key, gv, gok, mv, mok)
					}
					if gok && gv != key*3 {
						t.Fatalf("step %d: Get(%d) returned %d — a colliding key's value (want %d)",
							i, key, gv, key*3)
					}
				}
				if i%4096 == 0 {
					checkState(t, c, m, i)
				}
			}
			checkState(t, c, m, steps)
		})
	}
}

// FuzzCollisionStorm lets the fuzzer pick the class anchor, the op
// stream and the policy, keeps the op keys confined to one engineered
// collision class, and asserts the full-key confirm invariant: a hit
// returns exactly the value last stored under that key, never a
// collider's.
func FuzzCollisionStorm(f *testing.F) {
	f.Add(uint64(1), uint64(99), uint8(0))
	f.Add(uint64(1<<33), uint64(5), uint8(2))
	f.Add(uint64(12345), uint64(0xffff), uint8(5))
	kinds := plru.Kinds()
	f.Fuzz(func(t *testing.T, start, opSeed uint64, kindSel uint8) {
		kind := kinds[int(kindSel)%len(kinds)]
		c, err := New[uint64, uint64](
			WithShards(1), WithSets(4), WithWays(4), WithPolicy(kind),
		)
		if err != nil {
			t.Fatal(err)
		}
		keys := workload.CollisionKeys(collisionClass(c), start, 12, 1<<20)
		if len(keys) < 2 {
			t.Skip("bounded collision search came up short")
		}
		// last[k] tracks the value the cache must return for k when it
		// hits; eviction legitimately forgets keys, wrong values never.
		last := make(map[uint64]uint64, len(keys))
		rng := opSeed | 1
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		for i := 0; i < 512; i++ {
			k := keys[next()%uint64(len(keys))]
			switch next() % 8 {
			case 0:
				c.Delete(k)
				delete(last, k)
			case 1, 2, 3:
				v := next()
				c.Set(k, v)
				last[k] = v
			default:
				if v, ok := c.Get(k); ok {
					want, stored := last[k]
					if !stored {
						t.Fatalf("op %d: Get(%d) hit a key that was never stored (v=%d)", i, k, v)
					}
					if v != want {
						t.Fatalf("op %d: Get(%d) = %d, want %d — collision crossed the key confirm", i, k, v, want)
					}
				}
			}
		}
	})
}
