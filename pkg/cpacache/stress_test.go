package cpacache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/plru"
)

// TestConcurrentStress hammers a sharded cache from many goroutines doing
// mixed Get/Set/Delete traffic across tenants while another goroutine
// rebalances quotas and reads stats. It exists to run under -race (the CI
// test step) and to check invariants survive heavy interleaving.
func TestConcurrentStress(t *testing.T) {
	const (
		workers   = 8
		opsPerG   = 20_000
		keySpace  = 4_096
		tenants   = 4
		rebalance = 50 // quota churn iterations
	)
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(64), WithWays(8),
		WithPolicy(plru.BT), WithPartitions(tenants),
		WithOnEvict(func(k, v uint64) {
			if k != v {
				panic("evicted pair corrupted")
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	var wrong atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := g % tenants
			rng := uint64(g)*0x9E3779B97F4A7C15 + 1
			for i := 0; i < opsPerG; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				key := rng % keySpace
				switch rng % 8 {
				case 0:
					c.Delete(key)
				case 1, 2, 3:
					c.SetTenant(tenant, key, key)
				default:
					if v, ok := c.GetTenant(tenant, key); ok && v != key {
						wrong.Add(1)
					}
				}
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rebalance; i++ {
			if _, err := c.Rebalance(); err != nil {
				panic(fmt.Sprintf("rebalance: %v", err))
			}
			_ = c.Stats()
			_ = c.MissCurves()
			_ = c.Len()
			if err := c.SetQuotas([]int{2, 2, 2, 2}); err != nil {
				panic(fmt.Sprintf("setquotas: %v", err))
			}
		}
	}()
	wg.Wait()

	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d lookups returned a value that did not match its key", n)
	}
	if got, cap := c.Len(), c.Capacity(); got > cap {
		t.Fatalf("Len %d exceeds capacity %d", got, cap)
	}
	st := c.Stats()
	var total uint64
	for _, s := range st {
		total += s.Hits + s.Misses
	}
	// Lookups are ~4/8 of the op mix; anything close to that proves the
	// counters are not losing updates under contention.
	if want := uint64(workers * opsPerG / 3); total < want {
		t.Fatalf("stats lost traffic: %d recorded, want >= %d", total, want)
	}
}

// TestConcurrentBatchStress hammers GetBatch/SetBatch from many
// goroutines (each with its own key/value slices, as the API requires)
// while per-key ops, deletes and rebalances interleave. It exists to run
// under -race: the pooled batch scratch must never leak state between
// concurrent calls.
func TestConcurrentBatchStress(t *testing.T) {
	const (
		workers  = 6
		rounds   = 400
		batch    = 96
		keySpace = 4_096
		tenants  = 4
	)
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(64), WithWays(8),
		WithPolicy(plru.BT), WithPartitions(tenants),
		WithOnEvict(func(k, v uint64) {
			if k != v {
				panic("evicted pair corrupted")
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wrong atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := g % tenants
			keys := make([]uint64, batch)
			vals := make([]uint64, batch)
			oks := make([]bool, batch)
			rng := uint64(g)*0x9E3779B97F4A7C15 + 3
			for r := 0; r < rounds; r++ {
				for i := range keys {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					keys[i] = rng % keySpace
					vals[i] = keys[i]
				}
				switch r % 3 {
				case 0:
					c.SetBatch(tenant, keys, vals)
				case 1:
					c.GetBatch(tenant, keys, vals, oks)
					for i := range keys {
						if oks[i] && vals[i] != keys[i] {
							wrong.Add(1)
						}
					}
				default:
					for _, k := range keys[:8] {
						c.Delete(k)
					}
					c.SetTenant(tenant, keys[0], keys[0])
					c.GetTenant(tenant, keys[1])
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := c.Rebalance(); err != nil {
				panic(fmt.Sprintf("rebalance: %v", err))
			}
			_ = c.Len()
		}
	}()
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d batch lookups returned a value that did not match its key", n)
	}
	if got, cap := c.Len(), c.Capacity(); got > cap {
		t.Fatalf("Len %d exceeds capacity %d", got, cap)
	}
}

// TestConcurrentLifecycleStress hammers a cache whose whole lifecycle is
// on: short TTLs on the real coarse clock, a fast background sweeper, a
// fast auto-rebalance ticker, cost accounting with byte budgets, and
// OnEvict/OnExpire callbacks — while workers mix per-key and batch
// traffic, deletes and TTL re-arms. It exists to run under -race (expiry
// racing Get/SetBatch, sweeper racing Rebalance) and to check the
// callbacks always carry coherent pairs.
func TestConcurrentLifecycleStress(t *testing.T) {
	const (
		workers  = 6
		rounds   = 300
		batch    = 64
		keySpace = 4_096
		tenants  = 4
	)
	var badEvict, badExpire atomic.Uint64
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(64), WithWays(8),
		WithPolicy(plru.BT), WithPartitions(tenants),
		WithDefaultTTL(2*time.Millisecond),
		WithTTLSweep(time.Millisecond),
		WithAutoRebalance(2*time.Millisecond),
		WithRebalanceHysteresis(0.01, 32),
		WithCost(func(k, v uint64) uint64 { return k%128 + 1 }),
		WithOnEvict(func(k, v uint64) {
			if k != v {
				badEvict.Add(1)
			}
		}),
		WithOnExpire(func(k, v uint64) {
			if k != v {
				badExpire.Add(1)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetBudgets([]uint64{1 << 16, 1 << 14, 0, 0}); err != nil {
		t.Fatal(err)
	}
	var wrong atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := g % tenants
			keys := make([]uint64, batch)
			vals := make([]uint64, batch)
			oks := make([]bool, batch)
			rng := uint64(g)*0x9E3779B97F4A7C15 + 11
			for r := 0; r < rounds; r++ {
				for i := range keys {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					keys[i] = rng % keySpace
					vals[i] = keys[i]
				}
				switch r % 4 {
				case 0:
					c.SetBatch(tenant, keys, vals)
				case 1:
					c.GetBatch(tenant, keys, vals, oks)
					for i := range keys {
						if oks[i] && vals[i] != keys[i] {
							wrong.Add(1)
						}
					}
				case 2:
					for _, k := range keys[:16] {
						if v, ok := c.GetTenant(tenant, k); ok && v != k {
							wrong.Add(1)
						}
					}
					c.SetTenantTTL(tenant, keys[0], keys[0], time.Duration(rng%uint64(4*time.Millisecond)))
					c.SetTTL(keys[1], time.Millisecond)
				default:
					for _, k := range keys[:8] {
						c.Delete(k)
					}
					c.SetTenant(tenant, keys[0], keys[0])
				}
			}
		}(g)
	}
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d lookups returned a value that did not match its key", n)
	}
	if n := badEvict.Load(); n != 0 {
		t.Fatalf("%d corrupted OnEvict pairs", n)
	}
	if n := badExpire.Load(); n != 0 {
		t.Fatalf("%d corrupted OnExpire pairs", n)
	}
	if got, cap := c.Len(), c.Capacity(); got > cap {
		t.Fatalf("Len %d exceeds capacity %d", got, cap)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the snapshot is quiescent and internally consistent.
	snap := c.Snapshot()
	var expir uint64
	for _, ts := range snap.Tenants {
		expir += ts.Expirations
	}
	if expir == 0 {
		t.Fatal("stress run never expired anything; TTL coverage is vacuous")
	}
}

// TestConcurrentQuotaSafety checks that quota swaps mid-flight never let a
// victim escape the tenant's current mask badly enough to corrupt slots:
// every eviction reported through OnEvict carries a coherent (key, value)
// pair even while SetQuotas races with fills.
func TestConcurrentQuotaSafety(t *testing.T) {
	var bad atomic.Uint64
	c, err := New[int, int](
		WithShards(2), WithSets(8), WithWays(8),
		WithPolicy(plru.NRU), WithPartitions(2),
		WithOnEvict(func(k, v int) {
			if k != v {
				bad.Add(1)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30_000; i++ {
				k := (g*31 + i*7) % 1024
				c.SetTenant(g%2, k, k)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			q := []int{1 + i%7, 7 - i%7}
			if err := c.SetQuotas(q); err != nil {
				panic(err)
			}
		}
	}()
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d corrupted evictions", n)
	}
}
