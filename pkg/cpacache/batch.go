package cpacache

import (
	"fmt"
	"hash/maphash"
	"math/bits"
)

// Batch operations group keys by shard and take each shard's lock exactly
// once per call, amortizing lock acquisition (and its cache-line traffic)
// over the whole batch — the dominant per-op cost once the probe itself is
// a tag match. Keys are processed in their original order within each
// shard, so a batch is equivalent to issuing its per-shard subsequences
// through SetTenant/GetTenant back to back; only the interleaving BETWEEN
// shards differs from the sequential loop. OnEvict callbacks still run
// after the owning shard's lock is released.
//
// The per-call scratch (hashes, shard grouping, displaced entries) is
// recycled through a sync.Pool, so steady-state batches do not allocate.

// batchScratch is the reusable working storage of one batch call.
type batchScratch[K comparable, V any] struct {
	hash  []uint64
	order []int32 // key indices grouped by shard
	start []int32 // len(shards)+1 group boundaries into order
	cur   []int32 // per-shard placement cursors
	evK   []K     // displaced live entries awaiting OnEvict
	evV   []V
	exK   []K // expired entries awaiting OnExpire
	exV   []V
}

// flushCallbacks runs the buffered OnEvict/OnExpire callbacks (the owning
// shard's lock must already be released) and clears the buffers.
func (c *Cache[K, V]) flushCallbacks(s *batchScratch[K, V]) {
	if len(s.evK) > 0 {
		for j := range s.evK {
			c.onEvict(s.evK[j], s.evV[j])
		}
		clear(s.evK) // drop references before pooling
		clear(s.evV)
		s.evK = s.evK[:0]
		s.evV = s.evV[:0]
	}
	if len(s.exK) > 0 {
		for j := range s.exK {
			c.onExpire(s.exK[j], s.exV[j])
		}
		clear(s.exK)
		clear(s.exV)
		s.exK = s.exK[:0]
		s.exV = s.exV[:0]
	}
}

// getScratch returns a scratch sized for n keys, reusing a pooled one
// when available.
func (c *Cache[K, V]) getScratch(n int) *batchScratch[K, V] {
	s, _ := c.batchPool.Get().(*batchScratch[K, V])
	if s == nil {
		s = &batchScratch[K, V]{}
	}
	if cap(s.hash) < n {
		s.hash = make([]uint64, n)
		s.order = make([]int32, n)
	}
	s.hash = s.hash[:n]
	s.order = s.order[:n]
	if s.start == nil {
		s.start = make([]int32, len(c.shards)+1)
		s.cur = make([]int32, len(c.shards))
	}
	return s
}

// putScratch returns a scratch to the pool. The eviction buffers were
// already cleared by the caller; hash/order hold no references.
func (c *Cache[K, V]) putScratch(s *batchScratch[K, V]) {
	c.batchPool.Put(s)
}

// groupByShard hashes every key and builds, in s.order, the key indices
// grouped by shard (original order preserved within each shard).
// s.start[si]..s.start[si+1] bounds shard si's group.
func (c *Cache[K, V]) groupByShard(s *batchScratch[K, V], keys []K) {
	for i := range s.start {
		s.start[i] = 0
	}
	for i, k := range keys {
		h := maphash.Comparable(c.seed, k)
		s.hash[i] = h
		s.start[(h&c.shardMask)+1]++
	}
	for i := 1; i < len(s.start); i++ {
		s.start[i] += s.start[i-1]
	}
	copy(s.cur, s.start[:len(s.cur)])
	for i := range keys {
		si := s.hash[i] & c.shardMask
		s.order[s.cur[si]] = int32(i)
		s.cur[si]++
	}
}

// GetBatch looks up every key on behalf of tenant, writing results into
// vals[i] and oks[i] (both must be at least len(keys) long; vals[i] is
// zeroed on a miss). It returns the number of hits. Stats, recency
// updates and profiling are identical to per-key GetTenant calls. When
// the lock-free read path is active each key takes the same optimistic
// probe GetTenant uses (there is no lock left to amortize); otherwise —
// pointerful key/value types, race builds, WithImmediateRecency — the
// keys are grouped by shard and each shard's lock is taken once for its
// whole group.
func (c *Cache[K, V]) GetBatch(tenant int, keys []K, vals []V, oks []bool) int {
	c.checkTenant(tenant)
	if len(vals) < len(keys) || len(oks) < len(keys) {
		panic("cpacache: GetBatch result slices shorter than keys")
	}
	if len(keys) == 0 {
		return 0
	}
	if c.lockFree {
		// Lock-free per-key probes; the locked fallback handles profiled
		// sets, expired lines, contended retries and pointerful types.
		hits := 0
		for i, k := range keys {
			h := maphash.Comparable(c.seed, k)
			sh := &c.shards[h&c.shardMask]
			set := c.setOf(h)
			tag := tagOf(h)
			var v V
			var ok, done bool
			if !sh.prof.isSampled(set) {
				v, ok, done = c.getNoLock(sh, set, tenant, tag, k)
			}
			if !done {
				v, ok = c.getLocked(sh, set, tenant, tag, k)
			}
			vals[i] = v
			oks[i] = ok
			if ok {
				hits++
			}
		}
		return hits
	}
	s := c.getScratch(len(keys))
	c.groupByShard(s, keys)
	hits := 0
	var zero V
	for si := range c.shards {
		lo, hi := s.start[si], s.start[si+1]
		if lo == hi {
			continue
		}
		sh := &c.shards[si]
		sh.mu.Lock()
		c.drainTouches(sh)
		for _, oi := range s.order[lo:hi] {
			i := int(oi)
			set := c.setOf(s.hash[i])
			tag := tagOf(s.hash[i])
			base := set * c.ways
			tbase := c.tagBase(set)
			if sh.prof.isSampled(set) {
				sh.prof.record(set, tenant, keys[i])
			}
			// Probe inlined (as in getLocked) to keep the per-key loop
			// free of call overhead.
			way := -1
			for j := 0; j < c.tagWords && way < 0; j++ {
				for m := matchTag(sh.tags[tbase+j], tag); m != 0; m &= m - 1 {
					w := j*8 + markWay(bits.TrailingZeros64(m))
					if sh.keys[base+w] == keys[i] {
						way = w
						break
					}
				}
			}
			if way >= 0 && sh.ttl[set]&(1<<uint(way)) != 0 && sh.deadline[base+way] <= c.now() {
				// Expired lines never surface through GetBatch: reclaim
				// and report a miss, exactly as GetTenant does. The
				// Invalidate inside consults recency, so pending
				// deferred touches apply first.
				c.drainTouches(sh)
				exK, exV := c.expireLocked(sh, set, way)
				if c.onExpire != nil {
					s.exK = append(s.exK, exK)
					s.exV = append(s.exV, exV)
				}
				way = -1
			}
			if way >= 0 {
				sh.hm[tenant].hits++
				c.touchOrPush(sh, set, way, tenant)
				vals[i] = sh.vals[base+way]
				oks[i] = true
				hits++
			} else {
				sh.hm[tenant].misses++
				vals[i] = zero
				oks[i] = false
			}
		}
		sh.mu.Unlock()
		c.flushCallbacks(s)
	}
	c.putScratch(s)
	return hits
}

// SetBatch inserts or updates every keys[i] → vals[i] pair on behalf of
// tenant (the slices must be the same length). Victim selection, quota
// enforcement, default TTL, hard-budget enforcement and stats are
// identical to per-key SetTenant calls; each shard's lock is taken once
// for its whole group of keys, and OnEvict/OnExpire callbacks for the
// entries a shard displaced run right after that shard's lock is
// released. Under WithHardBudgets/WithMaxBytes, a key whose cost alone
// exceeds the limit is skipped — the rest of the batch is still applied
// — and SetBatch returns an error wrapping ErrEntryTooLarge that counts
// the skips; enforcement for admitted keys runs after each insert, so a
// batch never overshoots a budget by more than one entry, exactly like a
// sequence of SetTenant calls.
func (c *Cache[K, V]) SetBatch(tenant int, keys []K, vals []V) error {
	c.checkTenant(tenant)
	if len(vals) != len(keys) {
		panic("cpacache: SetBatch keys and vals lengths differ")
	}
	if len(keys) == 0 {
		return nil
	}
	enforce := c.enforcing()
	s := c.getScratch(len(keys))
	c.groupByShard(s, keys)
	dl := c.defaultDeadline(tenant)
	oversized := 0
	for si := range c.shards {
		lo, hi := s.start[si], s.start[si+1]
		if lo == hi {
			continue
		}
		sh := &c.shards[si]
		sh.mu.Lock()
		for gi := lo; gi < hi; gi++ {
			i := int(s.order[gi])
			set := c.setOf(s.hash[i])
			tag := tagOf(s.hash[i])
			var cost uint64
			if c.costFn != nil {
				cost = c.costFn(keys[i], vals[i])
				if enforce && c.admitCost(tenant, cost) != nil {
					oversized++
					continue
				}
			}
			evKey, evVal, kind, way := c.setLocked(sh, set, tenant, tag, keys[i], vals[i], dl, cost)
			switch {
			case kind == evictLive && c.onEvict != nil:
				s.evK = append(s.evK, evKey)
				s.evV = append(s.evV, evVal)
			case kind == evictTTL && c.onExpire != nil:
				s.exK = append(s.exK, evKey)
				s.exV = append(s.exV, evVal)
			}
			if enforce && c.overBudget(tenant) {
				// Reclaim in this shard first (protecting the line just
				// written), spilling to the cross-shard walk only if the
				// tenant is still over — which requires dropping this
				// shard's lock, flushing its buffered callbacks, and
				// re-taking the lock to resume the group. The brief gap is
				// the same interleaving a concurrent writer could impose
				// between two per-key SetTenant calls.
				c.enforceShardLocked(sh, tenant, set, way, s)
				if c.overBudget(tenant) {
					sh.mu.Unlock()
					c.flushCallbacks(s)
					c.enforceAcross(tenant, si, s)
					sh.mu.Lock()
				}
			}
		}
		sh.mu.Unlock()
		c.flushCallbacks(s)
	}
	c.putScratch(s)
	if enforce {
		c.checkPressure()
	}
	if oversized > 0 {
		return fmt.Errorf("cpacache: SetBatch skipped %d oversized entries: %w", oversized, ErrEntryTooLarge)
	}
	return nil
}
