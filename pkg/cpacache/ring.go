package cpacache

import (
	"sync/atomic"

	"repro/pkg/plru"
)

// Deferred recency: the touch ring.
//
// The premise of the whole optimistic data plane is the paper's: pseudo-
// LRU recency state is approximate by construction, so the partitioning
// guarantees survive recency that is applied late — or, under pressure,
// not at all. A hit therefore does not call the policy's Touch under the
// shard lock; it appends a packed (set, way, tenant) record to a fixed-
// size per-shard ring with two atomic operations and moves on. Every
// mutating path that takes the shard lock — Set, Delete, SetTTL, quota
// installs, the sweeper, Rebalance — first drains the ring and applies
// the pending records through the policy's batched TouchBatch path, so
// recency is always current before any Victim or Invalidate consults it.
//
// The ring is deliberately lossy. Producers reserve slots with an atomic
// counter and overwrite the oldest records when more than the ring's
// capacity in hits queues between drains; a drain that raced a producer
// mid-store may also observe that slot empty and skip it. Dropped
// touches are exactly the "sampled recency" the paper's policies
// tolerate — correctness (which key maps to which value, quota
// enforcement, callback classification) never depends on the ring.
//
// Slot stores and loads are plain: an aligned 64-bit word cannot tear on
// the architectures Go supports, and the only writers that ever race on
// a slot are a producer overwriting it and the drainer clearing it —
// either order loses at most that one touch. Because "cannot tear" is an
// architectural fact rather than a memory-model guarantee, the drainer
// still bounds-checks every record before handing it to the policy; a
// mixed record at worst touches the wrong (valid) way. Race-detector
// builds never run the producer (lookups are fully locked there and
// apply Touch directly), so the detector has nothing to flag.
//
// Single-threaded executions never drop or reorder records (positions
// are sequential and drains run before every policy read), so with a
// ring large enough to hold the hits between two mutations the deferred
// configuration is *exactly* equivalent to immediate Touch — the
// property the differential tests lean on.

// touchRingDefault is the per-shard ring capacity installed unless
// WithTouchBuffer overrides it. 256 records = 2KB per shard.
const touchRingDefault = 256

// touch record layout:
// | valid(1) | fill(1) | sig(8) | set(22) | tenant(16) | way(16) |.
// The valid bit distinguishes a stored record from a never-written or
// already-drained slot; the fill bit marks a deferred policy Fill (a new
// line installed by a locked write path while hit records were still
// queued) whose 8-bit line signature rides in the sig field. Squeezing
// the signature in caps the set field at 22 bits — newSettings rejects
// geometries beyond 1<<22 sets per shard, far above any real
// configuration.
const (
	touchValid = uint64(1) << 63
	touchFill  = uint64(1) << 62
)

// maxRingSets is the largest per-shard set count the packed record can
// address.
const maxRingSets = 1 << 22

func packTouch(set, way, tenant int) uint64 {
	return touchValid | uint64(set)<<32 | uint64(tenant)<<16 | uint64(way)
}

func packFill(set, way, tenant int, sig uint8) uint64 {
	return touchValid | touchFill | uint64(sig)<<54 | uint64(set)<<32 | uint64(tenant)<<16 | uint64(way)
}

func unpackTouch(r uint64) (set, way, tenant int) {
	return int(r>>32) & (maxRingSets - 1), int(uint16(r)), int(uint16(r >> 16))
}

// pushTouch appends one deferred recency record. Safe for any number of
// concurrent producers, with or without the shard lock; never blocks and
// never allocates. Overflow overwrites the oldest unread record.
//
// The head increment is deliberately a plain read-modify-write, not a
// LOCK-prefixed one: an atomic add would cost more than the rest of the
// hit path combined, and the only effect of two producers racing the
// increment is that they write the same slot and one touch wins —
// indistinguishable from the overwrite the ring already performs under
// overflow. Single-threaded executions (where exactness matters) see
// every record in order.
func (sh *shard[K, V]) pushTouch(set, way, tenant int) {
	h := sh.touchHead
	sh.touchHead = h + 1
	sh.touchRing[h&sh.touchMask] = packTouch(set, way, tenant)
}

// touchOrPush records one access from a locked path. With records
// pending it must join the ring queue (applying directly would reorder
// it ahead of them); with the ring empty — the steady state of write-
// heavy workloads, whose drains run just before this — applying the
// policy Touch immediately is the same order at half the cost. Caller
// holds sh.mu.
func (c *Cache[K, V]) touchOrPush(sh *shard[K, V], set, way, tenant int) {
	if sh.touchRing != nil && atomic.LoadUint64(&sh.touchHead) != sh.touchDrained {
		sh.pushTouch(set, way, tenant)
		return
	}
	sh.polTouch(set, way, tenant)
}

// fillOrPush is touchOrPush for a new line: the policy must see a Fill
// (with the line's signature) rather than a Touch, in exactly the program
// order the ring preserves. Caller holds sh.mu.
func (c *Cache[K, V]) fillOrPush(sh *shard[K, V], set, way, tenant int, sig uint8) {
	if sh.touchRing != nil && atomic.LoadUint64(&sh.touchHead) != sh.touchDrained {
		h := sh.touchHead
		sh.touchHead = h + 1
		sh.touchRing[h&sh.touchMask] = packFill(set, way, tenant, sig)
		return
	}
	sh.polFill(set, way, tenant, sig)
}

// drainTouches applies every pending ring record to the shard's policy in
// arrival order. Caller holds sh.mu. The empty-ring check — two loads
// and a compare — is what every write pays, so it stays inlineable and
// the walk lives in drainSlow. Records published by producers that raced
// past the observed head are left for the next drain.
func (c *Cache[K, V]) drainTouches(sh *shard[K, V]) {
	if sh.touchRing == nil {
		return // immediate-recency configuration: nothing ever queues
	}
	if h := atomic.LoadUint64(&sh.touchHead); h != sh.touchDrained {
		c.drainSlow(sh, h)
	}
}

func (c *Cache[K, V]) drainSlow(sh *shard[K, V], h uint64) {
	n := h - sh.touchDrained
	if size := uint64(len(sh.touchRing)); n > size {
		// Overflow: records older than one ring's worth were overwritten
		// by producers — the sampled-drop regime.
		n = size
	}
	maxSet, maxWay, maxTenant := int32(c.sets), int32(c.ways), int32(c.tenants)
	recs := sh.touchScratch[:0]
	for p := h - n; p != h; p++ {
		slot := &sh.touchRing[p&sh.touchMask]
		r := *slot
		if r == 0 {
			continue // never written, or a producer is mid-publish
		}
		*slot = 0
		set, way, tenant := unpackTouch(r)
		rec := plru.TouchRec{Set: int32(set), Way: int32(way), Core: int32(tenant)}
		if r&touchFill != 0 {
			rec.Sig = plru.FillRec | int32(uint8(r>>54))
		}
		// Bounds check: a record that raced an overwrite can in
		// principle mix two producers' words (see the file comment);
		// anything in range is at worst recency noise, anything out of
		// range is dropped.
		if rec.Set < maxSet && rec.Way < maxWay && rec.Core < maxTenant {
			recs = append(recs, rec)
		}
	}
	sh.touchDrained = h
	sh.polTouchBatch(recs)
}
