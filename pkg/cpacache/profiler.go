package cpacache

// profiler collects per-tenant stack-distance histograms over a sampled
// subset of one shard's sets, in the style of the paper's auxiliary tag
// directory / UMON monitors (§IV): every sampled set keeps, per tenant, a
// private true-LRU stack of the keys that tenant accessed, and each access
// records the key's 1-based stack position (or a miss when the key is
// deeper than the associativity). The histogram integrates into the
// tenant's miss-versus-ways curve, which is exactly what the cpapart
// allocators consume.
//
// Sampling membership is precomputed into a bitmap at init: the hot path
// asks isSampled (one load + mask, inlined into GetTenant) and calls
// record only for sampled sets, so accesses to the other (sampleEvery-1)/
// sampleEvery of the cache never pay a profiler call at all. slot holds
// each sampled set's stack-block index so record does no division.
//
// The profiler lives under the shard mutex, so it needs no locking of its
// own. Its stacks are key slices, not cache slots: a tenant's profile sees
// its own accesses only, undisturbed by other tenants' evictions — the
// "isolated miss curve" the partitioning model assumes.
type profiler[K comparable] struct {
	depth        int // stack depth == ways
	tenants      int
	sampledCount int // number of sampled sets (shadowDir sizes itself on it)
	// sampleBits[set/64] bit set%64 marks sets where set % every == 0.
	sampleBits []uint64
	// slot[set] is the sampled-set ordinal (stack-block index), -1 when
	// the set is not sampled.
	slot []int32
	// stacks[slot*tenants+t] holds up to depth keys, MRU first.
	stacks [][]K
	// hist[t][d-1] counts hits at stack distance d in 1..depth;
	// hist[t][depth] counts profiled misses.
	hist [][]uint64
}

func (p *profiler[K]) init(sets, ways, tenants, every int) {
	if every > sets {
		every = sets
	}
	p.depth = ways
	p.tenants = tenants
	p.sampleBits = make([]uint64, (sets+63)/64)
	p.slot = make([]int32, sets)
	sampled := 0
	for set := 0; set < sets; set++ {
		if set%every == 0 {
			p.sampleBits[set>>6] |= 1 << (uint(set) & 63)
			p.slot[set] = int32(sampled)
			sampled++
		} else {
			p.slot[set] = -1
		}
	}
	p.sampledCount = sampled
	p.stacks = make([][]K, sampled*tenants)
	for i := range p.stacks {
		// Full capacity up front: record() must never allocate, even
		// during warmup, to keep the hot path allocation-free.
		p.stacks[i] = make([]K, 0, ways)
	}
	p.hist = make([][]uint64, tenants)
	for t := range p.hist {
		p.hist[t] = make([]uint64, ways+1)
	}
}

// isSampled reports whether the set belongs to the profiled sample. It is
// small enough to inline into the lookup hot path.
func (p *profiler[K]) isSampled(set int) bool {
	return p.sampleBits[uint(set)>>6]&(1<<(uint(set)&63)) != 0
}

// record notes an access by tenant to key in a sampled set: the key is
// looked up in the tenant's private LRU stack, its distance recorded, and
// the stack updated move-to-front (inserting at MRU on a profiled miss,
// dropping the LRU entry when the stack is at depth). The caller must have
// checked isSampled(set).
func (p *profiler[K]) record(set, tenant int, key K) {
	idx := int(p.slot[set])*p.tenants + tenant
	st := p.stacks[idx]
	pos := -1
	for i, k := range st {
		if k == key {
			pos = i
			break
		}
	}
	if pos >= 0 {
		p.hist[tenant][pos]++
		// Move to front without allocating.
		copy(st[1:pos+1], st[:pos])
		st[0] = key
		return
	}
	p.hist[tenant][p.depth]++
	if len(st) < p.depth {
		st = append(st, key)
	}
	copy(st[1:], st)
	st[0] = key
	p.stacks[idx] = st
}

// addCurves accumulates this shard's miss curves into curves[t][w] for
// w in 0..depth: the number of profiled accesses that would miss if the
// tenant owned w ways (its hits at distances > w plus its cold misses).
func (p *profiler[K]) addCurves(curves [][]uint64) {
	for t, h := range p.hist {
		var total uint64
		for _, n := range h {
			total += n
		}
		cum := uint64(0)
		curves[t][0] += total
		for w := 1; w <= p.depth; w++ {
			cum += h[w-1]
			curves[t][w] += total - cum
		}
	}
}

// reset clears the histograms and stacks for the next profiling interval.
func (p *profiler[K]) reset() {
	for t := range p.hist {
		for i := range p.hist[t] {
			p.hist[t][i] = 0
		}
	}
	for i := range p.stacks {
		p.stacks[i] = p.stacks[i][:0]
	}
}
