package cpacache_test

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/pkg/cpacache"
	"repro/pkg/plru"
)

// Two tenants share one cache: tenant 0 cycles a large working set,
// tenant 1 a single hot key. Rebalance observes their hit curves and
// moves ways toward the tenant that benefits, exactly like the paper's
// repartitioning step.
func Example() {
	c, err := cpacache.New[string, int](
		cpacache.WithShards(1),
		cpacache.WithSets(1),
		cpacache.WithWays(8),
		cpacache.WithPolicy(plru.LRU),
		cpacache.WithPartitions(2),
		cpacache.WithProfileSampling(1),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("initial quotas:", c.Quotas())

	for round := 0; round < 100; round++ {
		for i := 0; i < 7; i++ {
			key := fmt.Sprintf("big-%d", i)
			if _, ok := c.GetTenant(0, key); !ok {
				c.SetTenant(0, key, i)
			}
		}
		if _, ok := c.GetTenant(1, "hot"); !ok {
			c.SetTenant(1, "hot", 0)
		}
	}

	quotas, err := c.Rebalance()
	if err != nil {
		panic(err)
	}
	fmt.Println("rebalanced quotas:", quotas)
	// Output:
	// initial quotas: [4 4]
	// rebalanced quotas: [7 1]
}

// Entries can carry a time-to-live: a default for every insert
// (WithDefaultTTL), or per entry via SetTenantTTL/SetTTL. Expired entries
// are never returned; they are reclaimed lazily on access and by an
// incremental background sweeper. This example drives a deterministic
// manual clock through WithNow — production caches simply omit it and get
// a coarse internal clock.
func Example_ttl() {
	var clock atomic.Int64
	clock.Store(1) // any nonzero origin
	c, err := cpacache.New[string, string](
		cpacache.WithDefaultTTL(time.Second),
		cpacache.WithNow(clock.Load),
		cpacache.WithOnExpire(func(k, v string) { fmt.Println("expired:", k) }),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	c.Set("session", "alice")            // default TTL: 1s
	c.SetTenantTTL(0, "config", "on", 0) // TTL 0 pins the entry
	c.SetTTL("session", 2*time.Second)   // re-arm an existing entry

	clock.Add(int64(3 * time.Second))

	_, ok := c.Get("session")
	fmt.Println("session alive:", ok)
	_, ok = c.Get("config")
	fmt.Println("config alive:", ok)
	// Output:
	// expired: session
	// session alive: false
	// config alive: true
}

// With a cost function the cache keeps per-tenant resident byte gauges,
// and SetBudgets turns byte budgets into way caps at Rebalance time: the
// budgeted tenant cannot be handed more ways than its bytes allow, no
// matter how hungry its miss curve looks.
func Example_budgets() {
	c, err := cpacache.New[string, []byte](
		cpacache.WithSets(1), cpacache.WithWays(8),
		cpacache.WithPolicy(plru.LRU),
		cpacache.WithPartitions(2),
		cpacache.WithProfileSampling(1),
		cpacache.WithCost(func(k string, v []byte) uint64 { return uint64(len(v)) }),
	)
	if err != nil {
		panic(err)
	}
	defer c.Close()
	// Tenant 0 may hold ~200 bytes; tenant 1 is unlimited.
	if err := c.SetBudgets([]uint64{200, 0}); err != nil {
		panic(err)
	}

	// Both tenants loop hungrily over 6 keys of 100-byte values.
	for round := 0; round < 100; round++ {
		for tenant := 0; tenant < 2; tenant++ {
			for i := 0; i < 6; i++ {
				key := fmt.Sprintf("t%d-%d", tenant, i)
				if _, ok := c.GetTenant(tenant, key); !ok {
					c.SetTenant(tenant, key, make([]byte, 100))
				}
			}
		}
	}
	quotas, err := c.Rebalance()
	if err != nil {
		panic(err)
	}
	fmt.Println("quotas under a 200-byte budget:", quotas)
	// Output:
	// quotas under a 200-byte budget: [2 6]
}
