package cpacache_test

import (
	"fmt"

	"repro/pkg/cpacache"
	"repro/pkg/plru"
)

// Two tenants share one cache: tenant 0 cycles a large working set,
// tenant 1 a single hot key. Rebalance observes their hit curves and
// moves ways toward the tenant that benefits, exactly like the paper's
// repartitioning step.
func Example() {
	c, err := cpacache.New[string, int](
		cpacache.WithShards(1),
		cpacache.WithSets(1),
		cpacache.WithWays(8),
		cpacache.WithPolicy(plru.LRU),
		cpacache.WithPartitions(2),
		cpacache.WithProfileSampling(1),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("initial quotas:", c.Quotas())

	for round := 0; round < 100; round++ {
		for i := 0; i < 7; i++ {
			key := fmt.Sprintf("big-%d", i)
			if _, ok := c.GetTenant(0, key); !ok {
				c.SetTenant(0, key, i)
			}
		}
		if _, ok := c.GetTenant(1, "hot"); !ok {
			c.SetTenant(1, "hot", 0)
		}
	}

	quotas, err := c.Rebalance()
	if err != nil {
		panic(err)
	}
	fmt.Println("rebalanced quotas:", quotas)
	// Output:
	// initial quotas: [4 4]
	// rebalanced quotas: [7 1]
}
