package cpacache

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/plru"
)

// fakeClock is a manually advanced TTL clock for deterministic expiry
// tests (wired in through WithNow, so no background clock goroutine runs).
type fakeClock struct{ atomic.Int64 }

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.Store(1_000_000_000) // nonzero origin: deadline 0 means "no TTL"
	return c
}

func (f *fakeClock) advance(d time.Duration) { f.Add(int64(d)) }

// ttlCache builds a single-shard cache on a fake clock with background
// sweeping disabled, so every expiry in the test is reclaimed exactly
// where the test triggers it.
func ttlCache(t *testing.T, clk *fakeClock, opts ...Option) *Cache[string, int] {
	t.Helper()
	c, err := New[string, int](append([]Option{
		WithShards(1), WithSets(4), WithWays(4), WithPolicy(plru.LRU),
		WithNow(clk.Load), WithTTLSweep(0),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDefaultTTLExpiresLazily(t *testing.T) {
	clk := newFakeClock()
	var expired []string
	c := ttlCache(t, clk,
		WithDefaultTTL(time.Second),
		WithOnExpire(func(k string, v int) { expired = append(expired, k) }),
	)
	c.Set("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("fresh entry: Get = (%d,%v), want (1,true)", v, ok)
	}
	clk.advance(999 * time.Millisecond)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry expired before its deadline")
	}
	clk.advance(2 * time.Millisecond)
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry readable after its deadline")
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("expired entry not reclaimed: Len = %d", got)
	}
	st := c.Stats()
	if st[0].Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", st[0].Expirations)
	}
	if st[0].Evictions != 0 {
		t.Fatalf("expiry counted as eviction: %+v", st[0])
	}
	if len(expired) != 1 || expired[0] != "a" {
		t.Fatalf("OnExpire saw %v, want [a]", expired)
	}
	// The reclaimed slot is immediately reusable.
	c.Set("b", 2)
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("slot reuse after expiry failed: (%d,%v)", v, ok)
	}
}

func TestZeroTTLPinsEntryUnderDefault(t *testing.T) {
	clk := newFakeClock()
	c := ttlCache(t, clk, WithDefaultTTL(time.Second))
	c.SetTenantTTL(0, "pinned", 7, 0) // 0 overrides the default: no expiry
	c.Set("fleeting", 8)
	clk.advance(time.Hour)
	if v, ok := c.Get("pinned"); !ok || v != 7 {
		t.Fatalf("pinned entry expired: (%d,%v)", v, ok)
	}
	if _, ok := c.Get("fleeting"); ok {
		t.Fatal("default-TTL entry survived an hour")
	}
}

func TestNegativeTTLIsBornExpired(t *testing.T) {
	clk := newFakeClock()
	c := ttlCache(t, clk)
	c.SetTenantTTL(0, "dead", 1, -time.Nanosecond)
	if _, ok := c.Get("dead"); ok {
		t.Fatal("negative-TTL entry was readable")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after reclaiming born-expired entry", c.Len())
	}
	if st := c.Stats(); st[0].Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", st[0].Expirations)
	}
}

func TestSetTTLRearmsRemovesAndReports(t *testing.T) {
	clk := newFakeClock()
	c := ttlCache(t, clk, WithDefaultTTL(time.Second))
	c.Set("k", 1)

	if c.SetTTL("missing", time.Second) {
		t.Fatal("SetTTL on a missing key returned true")
	}
	// Re-arm to a longer TTL: survives the default deadline.
	if !c.SetTTL("k", time.Minute) {
		t.Fatal("SetTTL on a live key returned false")
	}
	clk.advance(2 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("re-armed entry expired at its old deadline")
	}
	// Remove the deadline entirely.
	if !c.SetTTL("k", 0) {
		t.Fatal("SetTTL(0) on a live key returned false")
	}
	clk.advance(24 * time.Hour)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry with removed deadline expired")
	}
	// Negative TTL expires it on its next touch.
	if !c.SetTTL("k", -time.Second) {
		t.Fatal("SetTTL(-1s) on a live key returned false")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("negatively re-armed entry still readable")
	}
	// SetTTL on an entry whose TTL already lapsed reclaims and reports false.
	c.Set("gone", 2)
	clk.advance(2 * time.Second)
	if c.SetTTL("gone", time.Minute) {
		t.Fatal("SetTTL resurrected an expired entry")
	}
	if st := c.Stats(); st[0].Expirations != 2 {
		t.Fatalf("Expirations = %d, want 2", st[0].Expirations)
	}
}

func TestGetBatchNeverSurfacesExpired(t *testing.T) {
	clk := newFakeClock()
	var expired atomic.Int64
	// 48 keys into one 64-way set: no insert can ever evict, so the
	// exact-count assertions below hold for any random hash seed.
	c, err := New[uint64, uint64](
		WithShards(1), WithSets(1), WithWays(64),
		WithNow(clk.Load), WithTTLSweep(0),
		WithOnExpire(func(k, v uint64) { expired.Add(1) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 48
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	oks := make([]bool, n)
	for i := range keys {
		keys[i] = uint64(i)
		if i%2 == 0 {
			c.SetTenantTTL(0, keys[i], keys[i], time.Second)
		} else {
			c.SetTenantTTL(0, keys[i], keys[i], time.Hour)
		}
	}
	before := c.Len()
	clk.advance(2 * time.Second) // even keys lapse
	hits := c.GetBatch(0, keys, vals, oks)
	for i := range keys {
		if i%2 == 0 && oks[i] {
			t.Fatalf("expired key %d surfaced through GetBatch", keys[i])
		}
		if i%2 == 1 && (!oks[i] || vals[i] != keys[i]) {
			t.Fatalf("live key %d: (%d,%v)", keys[i], vals[i], oks[i])
		}
	}
	if hits != n/2 {
		t.Fatalf("hits = %d, want %d", hits, n/2)
	}
	if got := c.Len(); got != before-n/2 {
		t.Fatalf("Len = %d, want %d (expired reclaimed)", got, before-n/2)
	}
	if expired.Load() != n/2 {
		t.Fatalf("OnExpire ran %d times, want %d", expired.Load(), n/2)
	}
}

// TestExpiredVictimCountsAsExpiration pins the eviction-path
// classification: displacing a line whose TTL already lapsed is an
// expiration (OnExpire), not an eviction (OnEvict).
func TestExpiredVictimCountsAsExpiration(t *testing.T) {
	clk := newFakeClock()
	var evicted, expired atomic.Int64
	c, err := New[string, int](
		WithShards(1), WithSets(1), WithWays(2), WithPolicy(plru.LRU),
		WithNow(clk.Load), WithTTLSweep(0),
		WithOnEvict(func(string, int) { evicted.Add(1) }),
		WithOnExpire(func(string, int) { expired.Add(1) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTenantTTL(0, "x", 1, time.Second)
	c.SetTenantTTL(0, "y", 2, time.Second)
	clk.advance(2 * time.Second)
	c.Set("a", 3) // full set: victim selection displaces an expired line
	c.Set("b", 4)
	st := c.Stats()
	if st[0].Expirations != 2 || st[0].Evictions != 0 {
		t.Fatalf("stats %+v, want 2 expirations and 0 evictions", st[0])
	}
	if evicted.Load() != 0 || expired.Load() != 2 {
		t.Fatalf("callbacks: OnEvict %d OnExpire %d, want 0 and 2", evicted.Load(), expired.Load())
	}
	// Displacing a *live* line still routes to OnEvict.
	c.Set("c", 5)
	if evicted.Load() != 1 {
		t.Fatalf("live displacement did not reach OnEvict (%d)", evicted.Load())
	}
}

// TestUpdateOfExpiredEntrySurfacesExpiry pins the in-place-update path:
// overwriting a key whose old value already expired counts the old value
// out as an expiration instead of silently replacing it.
func TestUpdateOfExpiredEntrySurfacesExpiry(t *testing.T) {
	clk := newFakeClock()
	var expiredVals []int
	c := ttlCache(t, clk, WithOnExpire(func(k string, v int) { expiredVals = append(expiredVals, v) }))
	c.SetTenantTTL(0, "k", 1, time.Second)
	clk.advance(2 * time.Second)
	c.Set("k", 2)
	if v, ok := c.Get("k"); !ok || v != 2 {
		t.Fatalf("updated entry: (%d,%v), want (2,true)", v, ok)
	}
	if st := c.Stats(); st[0].Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", st[0].Expirations)
	}
	if len(expiredVals) != 1 || expiredVals[0] != 1 {
		t.Fatalf("OnExpire saw %v, want [1]", expiredVals)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestDeleteExpiredReportsFalse(t *testing.T) {
	clk := newFakeClock()
	c := ttlCache(t, clk)
	c.SetTenantTTL(0, "k", 1, time.Second)
	clk.advance(2 * time.Second)
	if c.Delete("k") {
		t.Fatal("Delete returned true for an expired entry")
	}
	if st := c.Stats(); st[0].Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", st[0].Expirations)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

// TestSweeperReclaimsIdleEntries checks the background sweeper reclaims
// expired entries that nothing ever touches again (the case lazy expiry
// cannot cover), under the real coarse clock.
func TestSweeperReclaimsIdleEntries(t *testing.T) {
	var expired atomic.Int64
	c, err := New[uint64, uint64](
		WithShards(2), WithSets(32), WithWays(4),
		WithDefaultTTL(5*time.Millisecond),
		WithTTLSweep(time.Millisecond),
		WithOnExpire(func(k, v uint64) { expired.Add(1) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 100
	for k := uint64(0); k < n; k++ {
		c.Set(k, k)
	}
	inserted := c.Len()
	deadline := time.Now().Add(5 * time.Second)
	for c.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("sweeper left %d of %d entries after 5s", got, inserted)
	}
	if expired.Load() == 0 {
		t.Fatal("OnExpire never ran from the sweeper")
	}
	snap := c.Snapshot()
	if snap.SweepExpired == 0 {
		t.Fatal("Snapshot.SweepExpired = 0 after a sweep reclaimed entries")
	}
}

// TestLazyArmRefreshesClock pins a regression: the internal coarse clock
// is stored once at New and only starts advancing when TTLs are first
// used, so the first SetTenantTTL on an aged cache must refresh it before
// computing a deadline — otherwise any TTL shorter than the cache's age
// is born already expired (found driving the tenant-cache HTTP demo).
func TestLazyArmRefreshesClock(t *testing.T) {
	c, err := New[string, int](WithShards(1), WithSets(4), WithWays(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	time.Sleep(50 * time.Millisecond) // the New-time clock value goes stale
	before := time.Now().UnixNano()
	c.SetTenantTTL(0, "k", 1, time.Hour) // first TTL use arms the clock
	sh, set, tag := c.locate("k")
	sh.mu.Lock()
	w := c.findLocked(sh, set*c.ways, c.tagBase(set), tag, "k")
	if w < 0 {
		sh.mu.Unlock()
		t.Fatal("entry not resident")
	}
	dl := sh.deadline[set*c.ways+w]
	sh.mu.Unlock()
	if dl < before+int64(time.Hour) {
		t.Fatalf("deadline %d computed from a stale clock (want >= %d): first TTL arm did not refresh the coarse clock",
			dl, before+int64(time.Hour))
	}
}

// TestPinDoesNotArmTTLMachinery checks that defensive ttl==0 pins on a
// TTL-free cache never start the clock/sweeper goroutines or allocate
// the per-slot deadline arrays — a pin stores no deadline, so there is
// nothing for that machinery to do.
func TestPinDoesNotArmTTLMachinery(t *testing.T) {
	c, err := New[string, int](WithShards(2), WithSets(4), WithWays(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Set("k", 1)
	c.SetTenantTTL(0, "pinned", 2, 0)
	if !c.SetTTL("k", 0) {
		t.Fatal("SetTTL(0) on a live key returned false")
	}
	for i := range c.shards {
		if c.shards[i].deadline != nil {
			t.Fatal("ttl==0 pin allocated the deadline array")
		}
	}
	// A real TTL still arms on demand.
	if !c.SetTTL("k", time.Hour) {
		t.Fatal("SetTTL(1h) on a live key returned false")
	}
	for i := range c.shards {
		if c.shards[i].deadline == nil {
			t.Fatal("nonzero TTL did not arm the deadline arrays")
		}
	}
}

// TestCloseRacesLazyArm pins the Close-vs-first-TTL-use ordering: a
// SetTenantTTL arming the clock/sweeper goroutines concurrently with
// Close must neither panic the WaitGroup (Add during Wait) nor leak a
// goroutine past Close. Run under -race.
func TestCloseRacesLazyArm(t *testing.T) {
	for i := 0; i < 200; i++ {
		c, err := New[int, int](WithAutoRebalance(time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			c.SetTenantTTL(0, 1, 1, time.Minute) // first TTL use: lazy arm
		}()
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		<-done
		// Close has returned: any goroutine the arm did spawn must have
		// seen the closed stop channel and exited; a second Close must
		// not find stragglers.
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	c, err := New[int, int](
		WithDefaultTTL(time.Minute),
		WithAutoRebalance(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	c.Set(1, 1)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Data-plane operations still work after Close.
	if v, ok := c.Get(1); !ok || v != 1 {
		t.Fatalf("post-Close Get = (%d,%v)", v, ok)
	}
}

// TestAutoRebalanceShiftsQuotas is the ticker-driven version of the
// package Example: a hungry tenant and a one-key tenant start from an
// even split, and the background ticker — never a manual Rebalance call —
// moves ways to the tenant whose miss curve can use them.
func TestAutoRebalanceShiftsQuotas(t *testing.T) {
	c, err := New[string, int](
		WithShards(1), WithSets(1), WithWays(8), WithPolicy(plru.LRU),
		WithPartitions(2), WithProfileSampling(1),
		WithAutoRebalance(5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 7; i++ {
			key := fmt.Sprintf("big-%d", i)
			if _, ok := c.GetTenant(0, key); !ok {
				c.SetTenant(0, key, i)
			}
		}
		if _, ok := c.GetTenant(1, "hot"); !ok {
			c.SetTenant(1, "hot", 0)
		}
		if q := c.Quotas(); q[0] > q[1] {
			if snap := c.Snapshot(); snap.Rebalances == 0 {
				t.Fatal("quotas changed but no rebalance was counted")
			}
			return
		}
	}
	t.Fatalf("auto-rebalance never shifted quotas from %v", c.Quotas())
}

// TestAutoRebalanceHysteresis drives the auto path directly (white box):
// a window below minSamples must not install quotas, and the skip must be
// visible in the counters and the sink.
func TestAutoRebalanceHysteresis(t *testing.T) {
	var events []RebalanceEvent
	c, err := New[string, int](
		WithShards(1), WithSets(1), WithWays(8), WithPolicy(plru.LRU),
		WithPartitions(2), WithProfileSampling(1),
		WithRebalanceHysteresis(0.05, 1_000_000), // unreachable sample floor
		WithMetricsSink(MetricsSink{Rebalance: func(e RebalanceEvent) { events = append(events, e) }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			k := fmt.Sprintf("big-%d", i)
			if _, ok := c.GetTenant(0, k); !ok {
				c.SetTenant(0, k, i)
			}
		}
		c.GetTenant(1, "hot")
		c.SetTenant(1, "hot", 0)
	}
	if _, applied, err := c.rebalance(true); err != nil {
		t.Fatal(err)
	} else if applied {
		t.Fatal("auto rebalance applied below the sample floor")
	}
	if q := c.Quotas(); q[0] != 4 || q[1] != 4 {
		t.Fatalf("quotas moved despite hysteresis: %v", q)
	}
	snap := c.Snapshot()
	if snap.RebalancesSkipped != 1 || snap.Rebalances != 0 {
		t.Fatalf("counters: %d applied / %d skipped, want 0/1", snap.Rebalances, snap.RebalancesSkipped)
	}
	if len(events) != 1 || events[0].Applied || !events[0].Auto {
		t.Fatalf("sink events = %+v, want one skipped auto event", events)
	}
	// A manual Rebalance ignores hysteresis entirely.
	if _, err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if q := c.Quotas(); q[0] <= q[1] {
		t.Fatalf("manual rebalance did not move ways: %v", q)
	}
	if len(events) != 2 || !events[1].Applied || events[1].Auto {
		t.Fatalf("sink events = %+v, want a second applied manual event", events)
	}
	if events[1].Old == nil || events[1].New == nil {
		t.Fatal("manual event missing Old/New quota copies")
	}
}

// TestAutoRebalanceSkipsZeroGainWindow pins the hysteresis guard on the
// all-hits case: a warm cache whose tenants fit their quotas profiles a
// window predicting zero misses either way, and an auto tick must not
// reinstall (and churn) the masks for a zero-gain proposal.
func TestAutoRebalanceSkipsZeroGainWindow(t *testing.T) {
	c, err := New[string, int](
		WithShards(1), WithSets(1), WithWays(8), WithPolicy(plru.LRU),
		WithPartitions(2), WithProfileSampling(1),
		WithRebalanceHysteresis(0.05, 64),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Warm both tenants' two-key working sets (well inside the even 4-way
	// quotas). Inserts don't feed the profile — only lookups do — so the
	// window below contains only hits (plus two profile-cold accesses per
	// tenant that no allocation can remove): zero achievable gain.
	for tn := 0; tn < 2; tn++ {
		for i := 0; i < 2; i++ {
			c.SetTenant(tn, fmt.Sprintf("t%d-%d", tn, i), i)
		}
	}
	quotas := c.Quotas()
	for round := 0; round < 100; round++ {
		for tn := 0; tn < 2; tn++ {
			for i := 0; i < 2; i++ {
				if _, ok := c.GetTenant(tn, fmt.Sprintf("t%d-%d", tn, i)); !ok {
					t.Fatal("warm key missed")
				}
			}
		}
	}
	if _, applied, err := c.rebalance(true); err != nil {
		t.Fatal(err)
	} else if applied {
		t.Fatal("auto tick applied a zero-gain proposal over an all-hits window")
	}
	if got := c.Quotas(); fmt.Sprint(got) != fmt.Sprint(quotas) {
		t.Fatalf("quotas churned from %v to %v on a zero-gain window", quotas, got)
	}
}

// TestExpiredLinePreferredOverLiveVictim pins the fill path's victim
// preference: with the set full and an expired line present, a fill
// reclaims the dead line instead of evicting a live one.
func TestExpiredLinePreferredOverLiveVictim(t *testing.T) {
	clk := newFakeClock()
	var evicted, expired atomic.Int64
	c, err := New[string, int](
		WithShards(1), WithSets(1), WithWays(2), WithPolicy(plru.LRU),
		WithNow(clk.Load), WithTTLSweep(0),
		WithOnEvict(func(string, int) { evicted.Add(1) }),
		WithOnExpire(func(string, int) { expired.Add(1) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Set("hot", 1)                          // live, no TTL
	c.SetTenantTTL(0, "tmp", 2, time.Second) // expires first
	clk.advance(2 * time.Second)             // tmp is now dead but MRU
	c.Set("new", 3)                          // full set: must reclaim tmp
	if _, ok := c.Get("hot"); !ok {
		t.Fatal("live line evicted while an expired line sat in the set")
	}
	if evicted.Load() != 0 || expired.Load() != 1 {
		t.Fatalf("OnEvict %d OnExpire %d, want 0 and 1", evicted.Load(), expired.Load())
	}
}

// TestBudgetsCapRebalance checks the bytes→ways translation: a tenant
// whose byte budget supports only 2 of 8 ways cannot be handed more at
// Rebalance, no matter how hungry its miss curve is.
func TestBudgetsCapRebalance(t *testing.T) {
	for _, pol := range []plru.Kind{plru.LRU, plru.BT} {
		t.Run(pol.String(), func(t *testing.T) {
			c, err := New[string, int](
				WithShards(1), WithSets(1), WithWays(8), WithPolicy(pol),
				WithPartitions(2), WithProfileSampling(1),
				WithCost(func(k string, v int) uint64 { return 100 }),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.SetBudgets([]uint64{200, 0}); err != nil {
				t.Fatal(err)
			}
			// Both tenants are hungry loops; uncapped MinMisses would
			// give tenant 0 several ways.
			for round := 0; round < 100; round++ {
				for t := 0; t < 2; t++ {
					for i := 0; i < 6; i++ {
						k := fmt.Sprintf("t%d-%d", t, i)
						if _, ok := c.GetTenant(t, k); !ok {
							c.SetTenant(t, k, i)
						}
					}
				}
			}
			quotas, err := c.Rebalance()
			if err != nil {
				t.Fatal(err)
			}
			// Tenant 0's resident bytes-per-way ≈ 100; a 200-byte budget
			// supports at most 2 ways. Under BT the buddy constraint
			// relaxes the cap to the nearest feasible power of two (caps
			// {2,8} cannot tile 8 ways), so 4 is the tightest it can hold.
			maxWays := 2
			if pol == plru.BT {
				maxWays = 4
			}
			if quotas[0] > maxWays {
				t.Fatalf("budgeted tenant got %d ways, budget supports %d (quotas %v)", quotas[0], maxWays, quotas)
			}
			if quotas[0]+quotas[1] != 8 {
				t.Fatalf("quotas %v do not cover 8 ways", quotas)
			}
			st := c.Stats()
			if st[0].Bytes == 0 || st[1].Bytes == 0 {
				t.Fatalf("cost accounting missing: %+v", st)
			}
			snap := c.Snapshot()
			if len(snap.Budgets) != 2 || snap.Budgets[0] != 200 {
				t.Fatalf("Snapshot budgets = %v", snap.Budgets)
			}
		})
	}
}

func TestSetBudgetsValidation(t *testing.T) {
	plain, err := New[string, int](WithPartitions(2), WithWays(8))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.SetBudgets([]uint64{1, 2}); err == nil {
		t.Fatal("SetBudgets without WithCost did not error")
	}
	costed, err := New[string, int](
		WithPartitions(2), WithWays(8),
		WithCost(func(string, int) uint64 { return 1 }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer costed.Close()
	if err := costed.SetBudgets([]uint64{1}); err == nil {
		t.Fatal("SetBudgets with wrong length did not error")
	}
	if err := costed.SetBudgets([]uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := costed.Budgets(); len(got) != 2 || got[1] != 2 {
		t.Fatalf("Budgets = %v", got)
	}
	if err := costed.SetBudgets(nil); err != nil {
		t.Fatal(err)
	}
	if got := costed.Budgets(); got != nil {
		t.Fatalf("cleared budgets still present: %v", got)
	}
}

// TestCostAccountingFollowsLines checks the per-tenant Bytes gauge across
// fills, updates, ownership changes, deletes and expiry.
func TestCostAccountingFollowsLines(t *testing.T) {
	clk := newFakeClock()
	c, err := New[string, int](
		WithShards(1), WithSets(1), WithWays(4), WithPolicy(plru.LRU),
		WithPartitions(2), WithProfileSampling(1),
		WithNow(clk.Load), WithTTLSweep(0),
		WithCost(func(k string, v int) uint64 { return uint64(v) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTenant(0, "a", 10)
	c.SetTenant(0, "b", 20)
	c.SetTenant(1, "c", 5)
	st := c.Stats()
	if st[0].Bytes != 30 || st[1].Bytes != 5 {
		t.Fatalf("after fills: %+v", st)
	}
	c.SetTenant(0, "a", 15) // update re-measures
	if st = c.Stats(); st[0].Bytes != 35 {
		t.Fatalf("after update: %+v", st[0])
	}
	c.SetTenant(1, "a", 1) // ownership moves to tenant 1
	if st = c.Stats(); st[0].Bytes != 20 || st[1].Bytes != 6 {
		t.Fatalf("after ownership change: %+v", st)
	}
	c.Delete("b")
	if st = c.Stats(); st[0].Bytes != 0 {
		t.Fatalf("after delete: %+v", st[0])
	}
	c.SetTenantTTL(1, "d", 9, time.Second)
	clk.advance(2 * time.Second)
	c.Get("d") // lazy expiry refunds the cost
	if st = c.Stats(); st[1].Bytes != 6 {
		t.Fatalf("after expiry: %+v", st[1])
	}
}

func TestTTLQuery(t *testing.T) {
	clk := newFakeClock()
	var expired []string
	c := ttlCache(t, clk,
		WithOnExpire(func(k string, v int) { expired = append(expired, k) }),
	)

	if _, _, present := c.TTL("missing"); present {
		t.Fatal("TTL of an absent key reports present")
	}

	c.Set("pinned", 1)
	if rem, hasTTL, present := c.TTL("pinned"); !present || hasTTL || rem != 0 {
		t.Fatalf("pinned entry: TTL = (%v,%v,%v), want (0,false,true)", rem, hasTTL, present)
	}

	c.SetTenantTTL(0, "timed", 2, 5*time.Second)
	if rem, hasTTL, present := c.TTL("timed"); !present || !hasTTL || rem != 5*time.Second {
		t.Fatalf("fresh deadline: TTL = (%v,%v,%v), want (5s,true,true)", rem, hasTTL, present)
	}
	clk.advance(2 * time.Second)
	if rem, _, _ := c.TTL("timed"); rem != 3*time.Second {
		t.Fatalf("after 2s: remaining = %v, want 3s", rem)
	}

	// A TTL probe must not refresh recency or count as an access.
	before := c.Stats()[0]
	c.TTL("timed")
	after := c.Stats()[0]
	if before.Hits != after.Hits || before.Misses != after.Misses {
		t.Fatalf("TTL query moved hit/miss counters: %+v -> %+v", before, after)
	}

	// Re-arming through SetTTL is visible to the query.
	if !c.SetTTL("timed", 10*time.Second) {
		t.Fatal("SetTTL on a live key returned false")
	}
	if rem, _, _ := c.TTL("timed"); rem != 10*time.Second {
		t.Fatalf("after re-arm: remaining = %v, want 10s", rem)
	}
	if !c.SetTTL("timed", 0) {
		t.Fatal("SetTTL removing a deadline returned false")
	}
	if rem, hasTTL, present := c.TTL("timed"); !present || hasTTL || rem != 0 {
		t.Fatalf("after unpin: TTL = (%v,%v,%v), want (0,false,true)", rem, hasTTL, present)
	}

	// A lapsed entry is reclaimed by the query itself, exactly like a
	// lookup: OnExpire fires, Len drops, present is false.
	c.SetTenantTTL(0, "lapses", 3, time.Second)
	clk.advance(2 * time.Second)
	if _, _, present := c.TTL("lapses"); present {
		t.Fatal("lapsed entry still present through TTL")
	}
	if len(expired) != 1 || expired[0] != "lapses" {
		t.Fatalf("TTL reclaim did not route to OnExpire: %v", expired)
	}
	if _, ok := c.Get("lapses"); ok {
		t.Fatal("lapsed entry readable after TTL reclaimed it")
	}
}
