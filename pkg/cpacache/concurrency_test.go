package cpacache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/plru"
)

// TestSeqlockTornReadStress hammers the optimistic read path: readers
// spin on a small, hot key space while writers continuously rewrite,
// delete and reinsert exactly those keys, maximizing the chance of a
// probe overlapping a slot rewrite. Every value is derived from its key,
// so a single torn key/value pairing is detectable. In regular builds
// this exercises the seqlock retry/validation logic; under -race the
// lookups take the locked fallback and the test doubles as a race check
// on the writer protocol.
func TestSeqlockTornReadStress(t *testing.T) {
	const (
		readers  = 4
		writers  = 2
		keySpace = 64 // tiny: every set stays contended
		seconds  = 300 * time.Millisecond
	)
	c, err := New[uint64, uint64](
		WithShards(1), WithSets(4), WithWays(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	value := func(k uint64) uint64 { return k*0x9E3779B97F4A7C15 + 0xA5A5 }
	for k := uint64(0); k < keySpace; k++ {
		c.Set(k, value(k))
	}
	var stop atomic.Bool
	var torn atomic.Uint64
	var hits atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := uint64(g)*0x9E3779B97F4A7C15 + 7
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := rng % keySpace
				if v, ok := c.Get(k); ok {
					hits.Add(1)
					if v != value(k) {
						torn.Add(1)
					}
				}
			}
		}(g)
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := uint64(g)*0x6C62272E07BB0142 + 3
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := rng % keySpace
				switch rng % 4 {
				case 0:
					c.Delete(k)
				default:
					c.Set(k, value(k))
				}
			}
		}(g)
	}
	time.Sleep(seconds)
	stop.Store(true)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d lookups returned a value not derived from its key (torn seqlock read)", n)
	}
	if hits.Load() == 0 {
		t.Fatal("stress run never hit; the seqlock path was not exercised")
	}
}

// TestSeqlockFallbacks pins the conditions that must route a lookup to
// the locked path: pointerful key or value types never set lockFree, and
// WithImmediateRecency disables the whole deferred plane.
func TestSeqlockFallbacks(t *testing.T) {
	ptr, err := New[string, int]()
	if err != nil {
		t.Fatal(err)
	}
	if ptr.lockFree {
		t.Fatal("string-keyed cache enabled the lock-free read path")
	}
	if !ptr.deferred {
		t.Fatal("pointerful cache should still defer recency by default")
	}
	type flat struct{ A, B uint64 }
	flatC, err := New[flat, [3]int32]()
	if err != nil {
		t.Fatal(err)
	}
	if flatC.lockFree != !raceEnabled {
		t.Fatalf("pointer-free struct cache lockFree = %v, want %v", flatC.lockFree, !raceEnabled)
	}
	imm, err := New[uint64, uint64](WithImmediateRecency())
	if err != nil {
		t.Fatal(err)
	}
	if imm.lockFree || imm.deferred {
		t.Fatal("WithImmediateRecency left the optimistic plane enabled")
	}
	if imm.shards[0].touchRing != nil {
		t.Fatal("immediate-recency cache allocated a touch ring")
	}
}

// TestTouchBufferValidation pins the WithTouchBuffer contract.
func TestTouchBufferValidation(t *testing.T) {
	for _, bad := range []int{-1, 0, 3, 48} {
		if _, err := New[int, int](WithTouchBuffer(bad)); err == nil {
			t.Errorf("WithTouchBuffer(%d) accepted", bad)
		}
	}
	c, err := New[int, int](WithTouchBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.shards[0].touchRing); got != 8 {
		t.Fatalf("ring size %d, want 8", got)
	}
}

// TestDeferredMatchesImmediateExactly pins the drain-order property the
// deferred plane is built on: in a single-threaded execution whose touch
// ring never overflows, the deferred configuration produces bit-for-bit
// the same eviction stream, stats and contents as WithImmediateRecency.
func TestDeferredMatchesImmediateExactly(t *testing.T) {
	run := func(opts ...Option) (*Cache[uint64, uint64], *[]uint64) {
		var evicted []uint64
		c, err := New[uint64, uint64](append([]Option{
			WithShards(2), WithSets(8), WithWays(8),
			WithPolicy(plru.LRU), WithPartitions(2), WithSeed(42),
			WithOnEvict(func(k, v uint64) { evicted = append(evicted, k) }),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return c, &evicted
	}
	def, defEv := run()
	imm, immEv := run(WithImmediateRecency())
	imm.seed = def.seed // identical placement (white box)

	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 50_000; i++ {
		op, tenant, key := next()%10, int(next()%2), next()%256
		switch {
		case op < 6:
			v1, ok1 := def.GetTenant(tenant, key)
			v2, ok2 := imm.GetTenant(tenant, key)
			if ok1 != ok2 || v1 != v2 {
				t.Fatalf("step %d: deferred Get=(%d,%v) immediate Get=(%d,%v)", i, v1, ok1, v2, ok2)
			}
		case op < 9:
			def.SetTenant(tenant, key, key*7)
			imm.SetTenant(tenant, key, key*7)
		default:
			if d, m := def.Delete(key), imm.Delete(key); d != m {
				t.Fatalf("step %d: deferred Delete=%v immediate Delete=%v", i, d, m)
			}
		}
	}
	if len(*defEv) != len(*immEv) {
		t.Fatalf("eviction streams differ in length: deferred %d vs immediate %d", len(*defEv), len(*immEv))
	}
	for i := range *defEv {
		if (*defEv)[i] != (*immEv)[i] {
			t.Fatalf("eviction %d: deferred key %d vs immediate key %d", i, (*defEv)[i], (*immEv)[i])
		}
	}
	s1, s2 := def.Stats(), imm.Stats()
	for tn := range s1 {
		if s1[tn] != s2[tn] {
			t.Fatalf("tenant %d stats: deferred %+v vs immediate %+v", tn, s1[tn], s2[tn])
		}
	}
}

// TestDeferredDivergenceBounded is the lossy regime: a deliberately tiny
// touch ring (8 records) under a read-heavy loop drops most recency
// updates, which is exactly what the deferred design claims pseudo-LRU
// tolerates. The hit counts of the deferred and immediate configurations
// over the same single-threaded workload must stay within a few percent
// of each other — recency loss may shuffle evictions, not correctness.
func TestDeferredDivergenceBounded(t *testing.T) {
	for _, pol := range []plru.Kind{plru.BT, plru.LRU, plru.NRU} {
		t.Run(pol.String(), func(t *testing.T) {
			run := func(opts ...Option) uint64 {
				c, err := New[uint64, uint64](append([]Option{
					WithShards(1), WithSets(16), WithWays(8),
					WithPolicy(pol), WithSeed(9),
				}, opts...)...)
				if err != nil {
					t.Fatal(err)
				}
				rng := uint64(777)
				next := func() uint64 {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					return rng
				}
				// Working set ~1.5x capacity with a hot head: misses are
				// common enough that eviction quality shows up in the
				// hit rate.
				const keySpace = 192
				for i := 0; i < 200_000; i++ {
					k := next() % keySpace
					if next()%4 == 0 {
						k %= 32 // hot head
					}
					if _, ok := c.Get(k); !ok {
						c.Set(k, k)
					}
				}
				st := c.Stats()
				return st[0].Hits
			}
			lossy := run(WithTouchBuffer(8))
			exact := run(WithImmediateRecency())
			lo, hi := lossy, exact
			if lo > hi {
				lo, hi = hi, lo
			}
			if float64(hi-lo) > 0.10*float64(hi) {
				t.Fatalf("hit counts diverged beyond 10%%: lossy-deferred %d vs immediate %d", lossy, exact)
			}
		})
	}
}

// FuzzTouchRing drives arbitrary interleavings of pushes (with arbitrary
// set/way/tenant payloads), overflow bursts and drains against one
// shard's ring, checking the drain never panics, never applies an
// out-of-range record to the policy, and never leaves the ring
// unbounded. The ring is tiny so overflow sampling is constantly active.
func FuzzTouchRing(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0xFF, 0x00, 0x7F})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := New[uint64, uint64](
			WithShards(1), WithSets(8), WithWays(4), WithPolicy(plru.LRU),
			WithTouchBuffer(8),
		)
		if err != nil {
			t.Fatal(err)
		}
		sh := &c.shards[0]
		pushed, drained := 0, 0
		for i := 0; i < len(data); i++ {
			b := data[i]
			switch b % 4 {
			case 0: // drain under the lock
				sh.mu.Lock()
				c.drainTouches(sh)
				sh.mu.Unlock()
				drained++
			case 1: // overflow burst: more pushes than the ring holds
				for j := 0; j < 3*len(sh.touchRing); j++ {
					sh.pushTouch(j%c.sets, j%c.ways, 0)
					pushed++
				}
			case 2: // raw ring word: simulate a torn/garbage record
				sh.touchRing[int(b>>2)&int(sh.touchMask)] = uint64(b) * 0x0101010101010101
			default: // ordinary push with fuzz-chosen coordinates
				set := int(b>>2) % c.sets
				way := int(b>>5) % c.ways
				sh.pushTouch(set, way, 0)
				pushed++
			}
		}
		sh.mu.Lock()
		c.drainTouches(sh)
		if h := sh.touchHead; h != sh.touchDrained {
			t.Fatalf("drain left the ring cursor behind: head %d drained %d", h, sh.touchDrained)
		}
		sh.mu.Unlock()
		// The policy must still be functional: victims stay in range for
		// every set after all the recency noise.
		for set := 0; set < c.sets; set++ {
			if v := sh.pol.victim(set, 0, plru.Full(c.ways)); v < 0 || v >= c.ways {
				t.Fatalf("victim %d out of range after fuzzed touches", v)
			}
		}
		_ = pushed
		_ = drained
	})
}

// TestSweeperBackpressureSkips pins the TryLock rule: a sweep tick that
// finds a shard's mutex held skips it, surfaces the skip in the sweep
// event and the snapshot counter, and reclaims on a later tick instead.
func TestSweeperBackpressureSkips(t *testing.T) {
	clk := newFakeClock()
	var events []SweepEvent
	var expired atomic.Int64
	c, err := New[string, int](
		WithShards(1), WithSets(4), WithWays(4),
		WithNow(clk.Load), WithTTLSweep(0), // sweeps driven by hand
		WithOnExpire(func(string, int) { expired.Add(1) }),
		WithMetricsSink(MetricsSink{Sweep: func(e SweepEvent) { events = append(events, e) }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTenantTTL(0, "a", 1, time.Second)
	clk.advance(2 * time.Second)

	c.shards[0].mu.Lock()
	exK, exV := c.sweepOnce(nil, nil)
	c.shards[0].mu.Unlock()
	if expired.Load() != 0 {
		t.Fatal("sweep reclaimed while the shard lock was held")
	}
	if len(events) != 1 || events[0].Skipped != 1 || events[0].Expired != 0 {
		t.Fatalf("sweep events = %+v, want one skip", events)
	}
	if snap := c.Snapshot(); snap.SweepSkipped != 1 {
		t.Fatalf("Snapshot.SweepSkipped = %d, want 1", snap.SweepSkipped)
	}

	// Uncontended tick reclaims what the skipped one left linked.
	_, _ = c.sweepOnce(exK, exV)
	if expired.Load() != 1 {
		t.Fatalf("follow-up sweep reclaimed %d entries, want 1", expired.Load())
	}
	if len(events) != 2 || events[1].Expired != 1 || events[1].Skipped != 0 {
		t.Fatalf("sweep events = %+v, want a clean reclaim second", events)
	}
	if snap := c.Snapshot(); snap.SweepExpired != 1 {
		t.Fatalf("Snapshot.SweepExpired = %d, want 1", snap.SweepExpired)
	}
}

// TestAutoRebalanceBackpressure pins the contended-tick rule: an auto
// rebalance tick that cannot TryLock a shard skips the whole cycle,
// leaves the profile window accumulating, and surfaces a Contended event.
func TestAutoRebalanceBackpressure(t *testing.T) {
	var events []RebalanceEvent
	c, err := New[string, int](
		WithShards(1), WithSets(1), WithWays(8), WithPolicy(plru.LRU),
		WithPartitions(2), WithProfileSampling(1),
		WithRebalanceHysteresis(0.01, 1),
		WithMetricsSink(MetricsSink{Rebalance: func(e RebalanceEvent) { events = append(events, e) }}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			k := fmt.Sprintf("big-%d", i)
			if _, ok := c.GetTenant(0, k); !ok {
				c.SetTenant(0, k, i)
			}
		}
		c.GetTenant(1, "hot")
		c.SetTenant(1, "hot", 0)
	}
	c.shards[0].mu.Lock()
	_, applied, err := c.rebalance(true)
	c.shards[0].mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("contended auto tick applied quotas")
	}
	if len(events) != 1 || !events[0].Contended || events[0].Applied || events[0].New != nil {
		t.Fatalf("events = %+v, want one contended skip", events)
	}
	if snap := c.Snapshot(); snap.RebalancesSkipped != 1 {
		t.Fatalf("RebalancesSkipped = %d, want 1", snap.RebalancesSkipped)
	}
	// The window kept accumulating: the next uncontended tick installs.
	if _, applied, err := c.rebalance(true); err != nil {
		t.Fatal(err)
	} else if !applied {
		t.Fatal("uncontended tick after a contended skip did not install")
	}
	if q := c.Quotas(); q[0] <= q[1] {
		t.Fatalf("quotas %v did not move to the hungry tenant", q)
	}
}

// TestSetTenantDefaultTTL pins the per-tenant default TTL override:
// plain Sets by the overridden tenant expire on the tenant's clock,
// other tenants keep the cache-wide default (or none), 0 clears the
// override, and negatives are rejected.
func TestSetTenantDefaultTTL(t *testing.T) {
	clk := newFakeClock()
	c, err := New[string, int](
		WithShards(1), WithSets(4), WithWays(8), WithPolicy(plru.LRU),
		WithPartitions(2),
		WithNow(clk.Load), WithTTLSweep(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetTenantDefaultTTL(0, -time.Second); err == nil {
		t.Fatal("negative tenant default TTL accepted")
	}
	if err := c.SetTenantDefaultTTL(0, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.TenantDefaultTTL(0); got != time.Second {
		t.Fatalf("TenantDefaultTTL = %v, want 1s", got)
	}
	c.SetTenant(0, "short", 1) // tenant 0: 1s TTL applies
	c.SetTenant(1, "forever", 2)
	clk.advance(2 * time.Second)
	if _, ok := c.GetTenant(0, "short"); ok {
		t.Fatal("tenant-default TTL did not expire the entry")
	}
	if _, ok := c.GetTenant(1, "forever"); !ok {
		t.Fatal("tenant 1 inherited tenant 0's TTL override")
	}
	// Explicit TTLs still beat the tenant default.
	c.SetTenantTTL(0, "pinned", 3, 0)
	clk.advance(time.Hour)
	if _, ok := c.GetTenant(0, "pinned"); !ok {
		t.Fatal("explicit pin lost to the tenant default TTL")
	}
	// Clearing the override falls back to the cache default (none here).
	if err := c.SetTenantDefaultTTL(0, 0); err != nil {
		t.Fatal(err)
	}
	c.SetTenant(0, "eternal", 4)
	clk.advance(24 * time.Hour)
	if _, ok := c.GetTenant(0, "eternal"); !ok {
		t.Fatal("cleared override still applied a TTL")
	}
	// Expirations were counted against the inserting tenant.
	if st := c.Stats(); st[0].Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", st[0].Expirations)
	}
}

// TestTenantDefaultTTLOverCacheDefault checks precedence when both a
// cache-wide and a tenant default exist: the tenant override wins.
func TestTenantDefaultTTLOverCacheDefault(t *testing.T) {
	clk := newFakeClock()
	c, err := New[string, int](
		WithShards(1), WithSets(4), WithWays(8), WithPolicy(plru.LRU),
		WithPartitions(2), WithDefaultTTL(time.Minute),
		WithNow(clk.Load), WithTTLSweep(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetTenantDefaultTTL(1, time.Hour); err != nil {
		t.Fatal(err)
	}
	c.SetTenant(0, "cacheDefault", 1)
	c.SetTenant(1, "tenantDefault", 2)
	clk.advance(10 * time.Minute) // past the cache default, inside tenant 1's
	if _, ok := c.GetTenant(0, "cacheDefault"); ok {
		t.Fatal("cache-default entry outlived its TTL")
	}
	if _, ok := c.GetTenant(1, "tenantDefault"); !ok {
		t.Fatal("tenant override did not extend past the cache default")
	}
	clk.advance(2 * time.Hour)
	if _, ok := c.GetTenant(1, "tenantDefault"); ok {
		t.Fatal("tenant-default entry never expired")
	}
}
