package cpacache

import (
	"math/bits"
	"reflect"
	"sync/atomic"
)

// The optimistic (seqlock-validated) read path.
//
// Every set carries a sequence word in the slot just before its packed
// tag words (see tags.go). Writers — Set, Delete, SetTTL, expiry, the
// sweeper — hold the shard mutex and bracket each set mutation with two
// atomic increments: odd while the set is being rewritten, back to even
// when it is consistent. A reader loads the sequence, probes the tag
// words, reads the candidate slot's key, TTL state and value with plain
// loads, then re-loads the sequence; if it moved (or was odd to begin
// with), everything read in between is discarded and the probe retries,
// falling back to the locked path after a few attempts. A reader can
// therefore never *return* a torn key/value pairing — at worst it reads
// garbage it throws away.
//
// What makes this sound in Go rather than merely lucky:
//
//   - The sequence and tag words are loaded atomically; the acquire
//     semantics order them against the writer's release increments.
//   - Keys and values are read with plain loads that can observe torn
//     data mid-write. That is harmless only because the cache refuses to
//     run this path unless K and V are pointer-free types (see
//     pointerFree): a torn uint64 is garbage to be discarded, but a torn
//     string header or interface would hand the garbage to the key
//     comparison — or worse, to the garbage collector — before the
//     sequence check could reject it. Pointerful K or V silently keep
//     the locked read path (still with deferred recency).
//   - TTL deadlines live in a lazily allocated array, but its ttl-bit
//     word is only ever observed nonzero through an atomic load that
//     synchronizes with the (lock-ordered) allocation, so the reader
//     never dereferences the array before it exists.
//   - Race-detector builds disable the path entirely (raceEnabled): the
//     discard-on-retry loads are real data races under the strict memory
//     model, and the detector would rightly report them.
//
// Hits on this path do not touch the policy or the profiler: recency is
// deferred through the shard's touch ring (ring.go) and profiled sets
// (prof.isSampled) are routed to the locked path by the caller, so the
// miss curves driving Rebalance see exactly the traffic they always did.

// lockFreeRetries is how many times a reader retries a moved sequence
// before giving up and taking the shard lock. Two suffices for nearly
// all interleavings; the fallback keeps worst-case latency bounded under
// a write-heavy storm.
const lockFreeRetries = 3

// pointerFree reports whether a type contains no pointers anywhere in
// its representation, making torn reads of it GC-safe and crash-safe.
func pointerFree(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return pointerFree(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !pointerFree(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		// Pointers, strings, slices, maps, chans, funcs, interfaces,
		// unsafe.Pointer — anything the GC scans.
		return false
	}
}

// getNoLock is the seqlock-validated lookup. It returns done=false when
// the caller must fall back to the locked path: the sequence kept moving,
// a writer was mid-flight, or the probed line's TTL lapsed (reclamation
// needs the lock). On done=true the (value, ok) result is final and the
// hit/miss counter and deferred touch have been recorded.
func (c *Cache[K, V]) getNoLock(sh *shard[K, V], set, tenant int, tag uint8, key K) (v V, ok, done bool) {
	base := set * c.ways
	sbase := set * c.setStride
	var zero V
	for attempt := 0; attempt < lockFreeRetries; attempt++ {
		s1 := atomic.LoadUint64(&sh.tags[sbase])
		if s1&1 != 0 {
			continue // writer mid-flight in this set
		}
		ttlWord := atomic.LoadUint64(&sh.ttl[set])
		way := -1
		for j := 0; j < c.tagWords && way < 0; j++ {
			for m := matchTag(atomic.LoadUint64(&sh.tags[sbase+1+j]), tag); m != 0; m &= m - 1 {
				w := j*8 + markWay(bits.TrailingZeros64(m))
				if sh.keys[base+w] == key {
					way = w
					break
				}
			}
		}
		if way < 0 {
			if atomic.LoadUint64(&sh.tags[sbase]) != s1 {
				continue // set moved under us: the probe proves nothing
			}
			sh.hm[tenant].misses++
			return zero, false, true
		}
		if ttlWord&(1<<uint(way)) != 0 &&
			atomic.LoadInt64(&sh.deadline[base+way]) <= c.now() {
			// Expired: reclamation mutates the set, which needs the lock.
			return zero, false, false
		}
		v = sh.vals[base+way]
		if atomic.LoadUint64(&sh.tags[sbase]) != s1 {
			v = zero
			continue // possibly torn read: discard and retry
		}
		sh.hm[tenant].hits++
		sh.pushTouch(set, way, tenant)
		return v, true, true
	}
	return zero, false, false
}
