//go:build race

package cpacache

// raceEnabled — see race_off.go. Under the race detector every lookup
// takes the locked slow path (identical observable semantics). The
// deferred touch ring still runs, and is race-clean here not because
// its accesses are atomic — the slot words and head counter are plain —
// but because with the lock-free path off, every producer and the
// drainer alike touch it only while holding the shard mutex.
const raceEnabled = true
