package cpacache

import (
	"hash/maphash"
	"testing"

	"repro/pkg/plru"
)

// naiveZeroBytes is the obvious byte loop the SWAR scan must agree with.
func naiveZeroBytes(w uint64) uint64 {
	var out uint64
	for i := 0; i < 8; i++ {
		if uint8(w>>(8*i)) == 0 {
			out |= 0x80 << (8 * i)
		}
	}
	return out
}

func naiveMatch(w uint64, tag uint8) uint64 {
	var out uint64
	for i := 0; i < 8; i++ {
		if uint8(w>>(8*i)) == tag {
			out |= 0x80 << (8 * i)
		}
	}
	return out
}

// TestSWARAgainstNaive drives the SWAR primitives across adversarial byte
// patterns (the classic (w-lo)&^w&hi trick has false positives exactly
// here: 0x00 followed by 0x01, bytes equal to 0x80) plus pseudo-random
// words, comparing against naive byte loops.
func TestSWARAgainstNaive(t *testing.T) {
	words := []uint64{
		0, ^uint64(0),
		0x0100000000000000, 0x0001000000000000, 0x0000000000000100,
		0x0101010101010101, 0x8080808080808080, 0x0080008000800080,
		0x0001020304050680, 0x00FF00FF00FF00FF, 0x8000000000000001,
		0x0100010001000100, 0x8181818181818181 & ^uint64(0),
	}
	rng := uint64(0x243F6A8885A308D3)
	for i := 0; i < 4096; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		words = append(words, rng)
		// Bias toward low bytes so zeros and 0x01/0x80 neighborships occur.
		words = append(words, rng&0x0101808001010880)
	}
	for _, w := range words {
		if got, want := zeroBytes(w), naiveZeroBytes(w); got != want {
			t.Fatalf("zeroBytes(%#x) = %#x, want %#x", w, got, want)
		}
		for _, tag := range []uint8{0x00, 0x01, 0x80, 0x81, 0xFF, uint8(w)} {
			if got, want := matchTag(w, tag), naiveMatch(w, tag); got != want {
				t.Fatalf("matchTag(%#x, %#x) = %#x, want %#x", w, tag, got, want)
			}
		}
		// Compression round-trip: every mark lands on its way bit.
		marks := zeroBytes(w)
		bitsOut := byteMarksToBits(marks)
		for i := 0; i < 8; i++ {
			want := uint64(0)
			if marks&(0x80<<(8*i)) != 0 {
				want = 1
			}
			if (bitsOut>>i)&1 != want {
				t.Fatalf("byteMarksToBits(%#x) bit %d = %d, want %d", marks, i, (bitsOut>>i)&1, want)
			}
		}
	}
}

// TestTagOfAlwaysOccupied pins the valid-bit folding: an occupied tag can
// never be the empty byte, whatever the hash.
func TestTagOfAlwaysOccupied(t *testing.T) {
	for _, h := range []uint64{0, ^uint64(0), 0x00FF000000000000, 1 << 24} {
		if tagOf(h) == tagEmpty {
			t.Fatalf("tagOf(%#x) produced the empty tag", h)
		}
		if tagOf(h)&0x80 == 0 {
			t.Fatalf("tagOf(%#x) missing the valid bit", h)
		}
	}
}

// findCollider searches for a key that lands in the same shard and set as
// ref with the same tag byte — i.e. a genuine 7-bit tag collision the
// probe must resolve through full key comparison. Returns ok=false if the
// bounded search fails (practically impossible at 4 sets × 1 shard).
func findCollider[V any](c *Cache[uint64, V], ref uint64, start uint64) (uint64, bool) {
	href := maphash.Comparable(c.seed, ref)
	for k, n := start, 0; n < 1<<18; n++ {
		if k != ref {
			h := maphash.Comparable(c.seed, k)
			if h&c.shardMask == href&c.shardMask && c.setOf(h) == c.setOf(href) && tagOf(h) == tagOf(href) {
				return k, true
			}
		}
		k++
	}
	return 0, false
}

// FuzzTagCollisionFallback proves the fallback key comparison keeps two
// colliding keys (same shard, same set, same 8-bit tag byte, different
// key) fully independent: both resolve, deletes hit the right slot, and
// updates never cross.
func FuzzTagCollisionFallback(f *testing.F) {
	f.Add(uint64(1), uint64(1000))
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(42), uint64(7))
	f.Fuzz(func(t *testing.T, a, start uint64) {
		c, err := New[uint64, uint64](
			WithShards(1), WithSets(4), WithWays(4), WithPolicy(plru.LRU),
		)
		if err != nil {
			t.Fatal(err)
		}
		b, ok := findCollider(c, a, start)
		if !ok {
			t.Skip("no collider found in bounded search")
		}
		c.Set(a, a+1)
		c.Set(b, b+2)
		if v, ok := c.Get(a); !ok || v != a+1 {
			t.Fatalf("Get(a=%d) = %d,%v after colliding insert of b=%d", a, v, ok, b)
		}
		if v, ok := c.Get(b); !ok || v != b+2 {
			t.Fatalf("Get(b=%d) = %d,%v", b, v, ok)
		}
		// Update through the collision, both directions.
		c.Set(a, a+10)
		if v, _ := c.Get(a); v != a+10 {
			t.Fatalf("update of a crossed into b's slot")
		}
		if v, _ := c.Get(b); v != b+2 {
			t.Fatalf("b corrupted by a's update")
		}
		// Delete one collider; the other must survive untouched.
		if !c.Delete(a) {
			t.Fatal("Delete(a) missed")
		}
		if _, ok := c.Get(a); ok {
			t.Fatal("a still resident after Delete")
		}
		if v, ok := c.Get(b); !ok || v != b+2 {
			t.Fatalf("Delete(a) disturbed b: %d,%v", v, ok)
		}
		// Reinsert a into the freed slot and re-check independence.
		c.Set(a, a+20)
		if v, ok := c.Get(a); !ok || v != a+20 {
			t.Fatalf("reinsert of a failed: %d,%v", v, ok)
		}
		if v, ok := c.Get(b); !ok || v != b+2 {
			t.Fatalf("reinsert of a disturbed b: %d,%v", v, ok)
		}
	})
}
