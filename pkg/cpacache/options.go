package cpacache

import (
	"fmt"

	"repro/pkg/plru"
)

// settings collects everything the options configure. The OnEvict
// callback is held as `any` so that plain options stay non-generic; New
// type-asserts it against the cache's own type parameters.
type settings struct {
	shards      int
	sets        int
	ways        int
	policy      plru.Kind
	tenants     int
	sampleEvery int
	seed        uint64
	onEvict     any
}

// Option configures a Cache under construction. Options are shared across
// all Cache instantiations; only WithOnEvict is generic.
type Option interface {
	apply(*settings) error
}

type optionFunc func(*settings) error

func (f optionFunc) apply(s *settings) error { return f(s) }

func newSettings(opts []Option) (settings, error) {
	s := settings{
		shards:      1,
		sets:        64,
		ways:        8,
		policy:      plru.BT,
		tenants:     1,
		sampleEvery: 8,
		seed:        1,
	}
	for _, o := range opts {
		if err := o.apply(&s); err != nil {
			return settings{}, err
		}
	}
	if s.shards <= 0 || s.shards&(s.shards-1) != 0 {
		return settings{}, fmt.Errorf("cpacache: shards must be a positive power of two, got %d", s.shards)
	}
	if s.sets <= 0 {
		return settings{}, fmt.Errorf("cpacache: sets must be positive, got %d", s.sets)
	}
	if s.ways <= 0 || s.ways > plru.MaxWays {
		return settings{}, fmt.Errorf("cpacache: ways must be in [1,%d], got %d", plru.MaxWays, s.ways)
	}
	if s.policy == plru.BT && s.ways&(s.ways-1) != 0 {
		return settings{}, fmt.Errorf("cpacache: the BT policy needs power-of-two ways, got %d", s.ways)
	}
	if s.tenants < 1 || s.tenants > s.ways {
		return settings{}, fmt.Errorf("cpacache: tenants must be in [1,ways]=[1,%d], got %d", s.ways, s.tenants)
	}
	if s.sampleEvery <= 0 {
		return settings{}, fmt.Errorf("cpacache: profile sampling rate must be positive, got %d", s.sampleEvery)
	}
	return s, nil
}

// WithShards sets the number of independently locked shards (a power of
// two; default 1). More shards means less lock contention for concurrent
// workloads; total capacity scales with the shard count.
func WithShards(n int) Option {
	return optionFunc(func(s *settings) error { s.shards = n; return nil })
}

// WithSets sets the number of sets per shard (default 64). Total capacity
// is shards × sets × ways.
func WithSets(n int) Option {
	return optionFunc(func(s *settings) error { s.sets = n; return nil })
}

// WithWays sets the per-set associativity (default 8, at most
// plru.MaxWays). Way quotas are carved out of this associativity, so the
// number of tenants may not exceed it.
func WithWays(n int) Option {
	return optionFunc(func(s *settings) error { s.ways = n; return nil })
}

// WithPolicy selects the replacement policy family (default plru.BT —
// the cheapest state per set; plru.LRU gives exact recency, plru.NRU the
// UltraSPARC T2 scheme, plru.Random a baseline).
func WithPolicy(k plru.Kind) Option {
	return optionFunc(func(s *settings) error { s.policy = k; return nil })
}

// WithPartitions sets the number of tenants sharing the cache (default 1).
// Each tenant starts with an even share of the ways; change shares with
// SetQuotas or Rebalance. Tenant ids passed to GetTenant/SetTenant must be
// in [0, tenants).
func WithPartitions(tenants int) Option {
	return optionFunc(func(s *settings) error { s.tenants = tenants; return nil })
}

// WithProfileSampling profiles one in every n sets per shard for the
// Rebalance miss curves (default 8). Larger n is cheaper and noisier;
// n = 1 profiles every set. Membership is precomputed into a per-shard
// bitmap, so accesses to the other n-1 of every n sets skip the profiler
// with a single inlined bit test.
func WithProfileSampling(n int) Option {
	return optionFunc(func(s *settings) error { s.sampleEvery = n; return nil })
}

// WithSeed fixes the hash-independent randomness (the Random policy's RNG
// stream; default 1). The key-to-set hash is always freshly seeded per
// Cache and is not affected.
func WithSeed(seed uint64) Option {
	return optionFunc(func(s *settings) error { s.seed = seed; return nil })
}

// WithOnEvict installs a callback invoked — outside the shard lock —
// whenever a live entry is displaced by a capacity eviction (never by
// Delete). K and V must match the type parameters the Cache is built
// with; New reports an error otherwise.
func WithOnEvict[K comparable, V any](fn func(key K, value V)) Option {
	return optionFunc(func(s *settings) error { s.onEvict = fn; return nil })
}
