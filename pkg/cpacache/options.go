package cpacache

import (
	"fmt"
	"time"

	"repro/pkg/plru"
)

// settings collects everything the options configure. The generic
// callbacks (OnEvict, OnExpire, Cost) are held as `any` so that plain
// options stay non-generic; New type-asserts them against the cache's own
// type parameters.
type settings struct {
	shards      int
	sets        int
	ways        int
	policy      plru.Kind
	tenants     int
	sampleEvery int
	seed        uint64
	onEvict     any
	onExpire    any
	costFn      any

	defaultTTL    time.Duration
	sweepInterval time.Duration
	nowFn         func() int64

	autoRebalance time.Duration
	hysteresis    float64
	minSamples    uint64

	immediate   bool
	touchBuffer int

	autoselect bool
	candidates []plru.Kind

	maxBytes    uint64
	hardBudgets bool
	highMark    float64
	lowMark     float64

	sink MetricsSink
}

// Option configures a Cache under construction. Options are shared across
// all Cache instantiations; only WithOnEvict, WithOnExpire and WithCost
// are generic.
type Option interface {
	apply(*settings) error
}

type optionFunc func(*settings) error

func (f optionFunc) apply(s *settings) error { return f(s) }

func newSettings(opts []Option) (settings, error) {
	s := settings{
		shards:        1,
		sets:          64,
		ways:          8,
		policy:        plru.BT,
		tenants:       1,
		sampleEvery:   16,
		seed:          1,
		sweepInterval: 100 * time.Millisecond,
		hysteresis:    0.05,
		minSamples:    128,
		touchBuffer:   touchRingDefault,
	}
	for _, o := range opts {
		if err := o.apply(&s); err != nil {
			return settings{}, err
		}
	}
	if s.shards <= 0 || s.shards&(s.shards-1) != 0 {
		return settings{}, fmt.Errorf("cpacache: shards must be a positive power of two, got %d", s.shards)
	}
	if s.sets <= 0 {
		return settings{}, fmt.Errorf("cpacache: sets must be positive, got %d", s.sets)
	}
	if s.sets > maxRingSets {
		// The deferred-recency ring packs the set index into 22 bits
		// (ring.go); no realistic geometry comes close.
		return settings{}, fmt.Errorf("cpacache: sets must be at most %d, got %d", maxRingSets, s.sets)
	}
	if s.ways <= 0 || s.ways > plru.MaxWays {
		return settings{}, fmt.Errorf("cpacache: ways must be in [1,%d], got %d", plru.MaxWays, s.ways)
	}
	if s.policy == plru.BT && s.ways&(s.ways-1) != 0 {
		return settings{}, fmt.Errorf("cpacache: the BT policy needs power-of-two ways, got %d", s.ways)
	}
	if s.tenants < 1 || s.tenants > s.ways {
		return settings{}, fmt.Errorf("cpacache: tenants must be in [1,ways]=[1,%d], got %d", s.ways, s.tenants)
	}
	if s.sampleEvery <= 0 {
		return settings{}, fmt.Errorf("cpacache: profile sampling rate must be positive, got %d", s.sampleEvery)
	}
	if s.defaultTTL < 0 {
		return settings{}, fmt.Errorf("cpacache: default TTL must be >= 0, got %v", s.defaultTTL)
	}
	if s.sweepInterval < 0 {
		return settings{}, fmt.Errorf("cpacache: sweep interval must be >= 0, got %v", s.sweepInterval)
	}
	if s.autoRebalance < 0 {
		return settings{}, fmt.Errorf("cpacache: auto-rebalance interval must be >= 0, got %v", s.autoRebalance)
	}
	if s.hysteresis < 0 || s.hysteresis != s.hysteresis {
		return settings{}, fmt.Errorf("cpacache: rebalance hysteresis must be a fraction >= 0, got %v", s.hysteresis)
	}
	if s.touchBuffer <= 0 || s.touchBuffer&(s.touchBuffer-1) != 0 {
		return settings{}, fmt.Errorf("cpacache: touch buffer must be a positive power of two, got %d", s.touchBuffer)
	}
	if s.autoselect {
		kinds, err := resolveCandidates(s.policy, s.ways, s.candidates)
		if err != nil {
			return settings{}, err
		}
		s.candidates = kinds
	}
	if s.maxBytes > 0 && s.costFn == nil {
		return settings{}, fmt.Errorf("cpacache: WithMaxBytes requires WithCost to measure entries")
	}
	if s.hardBudgets && s.costFn == nil {
		return settings{}, fmt.Errorf("cpacache: WithHardBudgets requires WithCost to measure entries")
	}
	if s.highMark != 0 || s.lowMark != 0 {
		if s.maxBytes == 0 {
			return settings{}, fmt.Errorf("cpacache: WithPressureWatermarks requires WithMaxBytes")
		}
		if !(s.lowMark > 0 && s.lowMark < s.highMark && s.highMark <= 1) {
			return settings{}, fmt.Errorf("cpacache: pressure watermarks must satisfy 0 < low < high <= 1, got high=%v low=%v", s.highMark, s.lowMark)
		}
	}
	return s, nil
}

// WithShards sets the number of independently locked shards (a power of
// two; default 1). More shards means less lock contention for concurrent
// workloads; total capacity scales with the shard count.
func WithShards(n int) Option {
	return optionFunc(func(s *settings) error { s.shards = n; return nil })
}

// WithSets sets the number of sets per shard (default 64). Total capacity
// is shards × sets × ways.
func WithSets(n int) Option {
	return optionFunc(func(s *settings) error { s.sets = n; return nil })
}

// WithWays sets the per-set associativity (default 8, at most
// plru.MaxWays). Way quotas are carved out of this associativity, so the
// number of tenants may not exceed it.
func WithWays(n int) Option {
	return optionFunc(func(s *settings) error { s.ways = n; return nil })
}

// WithPolicy selects the replacement policy family (default plru.BT —
// the cheapest state per set; plru.LRU gives exact recency, plru.NRU the
// UltraSPARC T2 scheme, plru.Random a baseline).
func WithPolicy(k plru.Kind) Option {
	return optionFunc(func(s *settings) error { s.policy = k; return nil })
}

// WithPartitions sets the number of tenants sharing the cache (default 1).
// Each tenant starts with an even share of the ways; change shares with
// SetQuotas or Rebalance. Tenant ids passed to GetTenant/SetTenant must be
// in [0, tenants).
func WithPartitions(tenants int) Option {
	return optionFunc(func(s *settings) error { s.tenants = tenants; return nil })
}

// WithProfileSampling profiles one in every n sets per shard for the
// Rebalance miss curves (default 16). Larger n is cheaper and noisier;
// n = 1 profiles every set. Membership is precomputed into a per-shard
// bitmap, so accesses to the other n-1 of every n sets skip the profiler
// with a single inlined bit test. Profiled sets always take the locked
// lookup path (the UMON stacks need mutual exclusion), which is why the
// default halved when lookups went optimistic: 1-in-16 keeps the
// profiler's share of lookup cost where 1-in-8 sat on the locked plane.
func WithProfileSampling(n int) Option {
	return optionFunc(func(s *settings) error { s.sampleEvery = n; return nil })
}

// WithSeed fixes the hash-independent randomness (the Random policy's RNG
// stream; default 1). The key-to-set hash is always freshly seeded per
// Cache and is not affected.
func WithSeed(seed uint64) Option {
	return optionFunc(func(s *settings) error { s.seed = seed; return nil })
}

// WithOnEvict installs a callback invoked — outside the shard lock —
// whenever a live entry is displaced by a capacity eviction (never by
// Delete or TTL expiry; see WithOnExpire for the latter). K and V must
// match the type parameters the Cache is built with; New reports an error
// otherwise.
func WithOnEvict[K comparable, V any](fn func(key K, value V)) Option {
	return optionFunc(func(s *settings) error { s.onEvict = fn; return nil })
}

// WithOnExpire installs a callback invoked — outside the shard lock —
// whenever an entry is reclaimed because its TTL lapsed: lazily on the
// lookup path, by the background sweeper, or when a Set lands on an
// already-expired line. K and V must match the cache's type parameters;
// New reports an error otherwise.
func WithOnExpire[K comparable, V any](fn func(key K, value V)) Option {
	return optionFunc(func(s *settings) error { s.onExpire = fn; return nil })
}

// WithDefaultTTL gives every inserted entry a time-to-live of d (> 0):
// once d elapses the entry can no longer be read and is reclaimed lazily
// on access or by the background sweeper (WithTTLSweep). Individual
// entries can override the default with SetTTL or SetTenantTTL. Without
// this option entries live until displaced or deleted.
func WithDefaultTTL(d time.Duration) Option {
	return optionFunc(func(s *settings) error { s.defaultTTL = d; return nil })
}

// WithTTLSweep sets how often the background sweeper reclaims expired
// entries (default 100ms; 0 disables sweeping, leaving reclamation to the
// lazy lookup path). Each tick advances every shard's hierarchical
// timing wheel, visiting only the entries that are actually due rather
// than scanning sets; a shard whose lock is contended is skipped for
// that tick (see SweepEvent.Skipped). The sweeper starts when TTLs are
// first used and stops at Close.
func WithTTLSweep(interval time.Duration) Option {
	return optionFunc(func(s *settings) error { s.sweepInterval = interval; return nil })
}

// WithNow replaces the cache's TTL clock with fn, which must return
// nanoseconds on a monotonically non-decreasing scale. fn is called on
// TTL-relevant operations (including the lookup hot path when the probed
// entry carries a deadline), so it must be cheap and safe for concurrent
// use — typically a load of an atomic the caller updates coarsely, which
// is exactly what the built-in clock does. With WithNow the cache starts
// no internal clock goroutine, which also makes expiry deterministic in
// tests.
func WithNow(fn func() int64) Option {
	return optionFunc(func(s *settings) error {
		if fn == nil {
			return fmt.Errorf("cpacache: WithNow requires a non-nil clock")
		}
		s.nowFn = fn
		return nil
	})
}

// WithCost installs a cost function (typically bytes: key footprint +
// value footprint) evaluated once per insert/update. The cache keeps a
// per-tenant resident-cost gauge (TenantStats.Bytes) and uses it to
// translate SetBudgets byte budgets into way caps at Rebalance time; with
// WithHardBudgets or WithMaxBytes the gauge also drives evict-on-write
// enforcement. K and V must match the cache's type parameters; New
// reports an error otherwise. Mutations to a value after Set are not
// re-measured.
func WithCost[K comparable, V any](fn func(key K, value V) uint64) Option {
	return optionFunc(func(s *settings) error { s.costFn = fn; return nil })
}

// WithMaxBytes puts a hard cap on the cache's total resident cost as
// measured by WithCost (which it requires). A Set/SetBatch that would
// push the global gauge over n evicts victims on the write path —
// expired lines first, then the writing tenant's own lines, then any
// line — until the insert fits; a single entry costing more than n is
// rejected with ErrEntryTooLarge. The cap also arms the pressure ladder
// (see WithPressureWatermarks, Pressure): callers watch it to shed
// writes and run maintenance aggressively as the gauge approaches the
// cap.
func WithMaxBytes(n uint64) Option {
	return optionFunc(func(s *settings) error { s.maxBytes = n; return nil })
}

// WithHardBudgets upgrades SetBudgets from steering (byte budgets become
// way caps at the next rebalance) to hard enforcement: a Set/SetBatch
// that would push the writing tenant's Bytes gauge over its budget
// reclaims expired lines and then evicts victims from that tenant's own
// partition — chosen by the replacement policy under the current way
// masks — until the insert fits. Forced displacements are accounted as
// TenantStats.BudgetEvictions, distinct from capacity Evictions. A
// single entry costing more than the tenant's whole budget is rejected
// with ErrEntryTooLarge. Requires WithCost. Tenants without a budget
// (SetBudgets 0) are unconstrained.
func WithHardBudgets() Option {
	return optionFunc(func(s *settings) error { s.hardBudgets = true; return nil })
}

// WithPressureWatermarks tunes the memory-pressure ladder armed by
// WithMaxBytes (which it requires) as fractions of the cap: at
// low×max bytes resident the cache enters PressureAggressive (the
// background sweeper and auto-rebalance run on a shortened tick with
// relaxed hysteresis); at high×max it enters PressureOOM — the signal
// callers use to shed writes — which clears only once the gauge falls
// back below low×max (hysteresis, so the state does not flap at the
// boundary). Must satisfy 0 < low < high <= 1; the defaults are
// high=0.9, low=0.75.
func WithPressureWatermarks(high, low float64) Option {
	return optionFunc(func(s *settings) error {
		s.highMark = high
		s.lowMark = low
		return nil
	})
}

// WithAutoRebalance runs Rebalance automatically every interval (> 0) on
// a background goroutine, with hysteresis (WithRebalanceHysteresis) so
// noisy profile windows do not thrash the partition masks: a proposed
// allocation is installed only when the profiled window is large enough
// and predicts a miss reduction worth acting on, or when byte budgets
// force a change. Stop the goroutine with Close.
func WithAutoRebalance(interval time.Duration) Option {
	return optionFunc(func(s *settings) error { s.autoRebalance = interval; return nil })
}

// WithRebalanceHysteresis tunes when an auto-rebalance tick (see
// WithAutoRebalance) installs its proposed quotas: the profiled window
// must contain at least minSamples accesses and the proposal must predict
// at least a minGain fraction (default 0.05, i.e. 5%) fewer misses than
// the current quotas. Larger values mean fewer, more confident mask
// changes. Manual Rebalance calls ignore hysteresis.
func WithRebalanceHysteresis(minGain float64, minSamples uint64) Option {
	return optionFunc(func(s *settings) error {
		s.hysteresis = minGain
		s.minSamples = minSamples
		return nil
	})
}

// WithPolicyAutoSelect lets the cache pick each tenant's replacement
// policy online instead of pinning every tenant to WithPolicy. The
// candidates (default: every kind that fits the geometry, except
// Random) are scored per tenant on the profiled lookup stream through
// per-candidate shadow tag directories, and at each rebalance boundary
// — manual Rebalance calls or WithAutoRebalance ticks — a tenant whose
// best candidate beats its current policy by more than the
// WithRebalanceHysteresis fraction (with at least minSamples profiled
// accesses in the window) is switched to it. Every candidate instance
// is kept warm on the real access stream, so switches take effect
// immediately with no cold-start transient. Switches are reported via
// MetricsSink.PolicySwitch, counted in Snapshot.PolicySwitches and
// visible in Snapshot.Policies / TenantPolicies.
//
// The base WithPolicy kind is always a candidate; listing BT requires
// power-of-two ways. Auto-selection costs memory (one policy instance
// per candidate per shard plus the shadow directories) and fan-out
// writes on recency updates — the price of keeping every candidate
// switch-ready.
func WithPolicyAutoSelect(candidates ...plru.Kind) Option {
	return optionFunc(func(s *settings) error {
		s.autoselect = true
		s.candidates = candidates
		return nil
	})
}

// WithMetricsSink streams lifecycle events (rebalance decisions, sweeper
// reclamation) to the given sink; nil callbacks inside the sink are
// skipped. Sink callbacks run outside all cache locks but on cache
// goroutines, so they should return quickly. Point-in-time counters are
// available from Stats and Snapshot regardless of any sink.
func WithMetricsSink(sink MetricsSink) Option {
	return optionFunc(func(s *settings) error { s.sink = sink; return nil })
}

// WithImmediateRecency restores the fully locked data plane: every
// lookup takes its shard mutex and applies the replacement policy's
// Touch before returning, instead of the default optimistic path
// (lock-free reads for pointer-free types, recency deferred through the
// per-shard touch ring until the next writer drains it). Use it when
// exact, reproducible eviction order matters more than read scalability
// — differential tests, trace replay, simulation. Single-threaded
// workloads whose touch ring never overflows behave identically either
// way; concurrent ones may observe slightly different eviction choices
// under the default, never different key→value contents.
func WithImmediateRecency() Option {
	return optionFunc(func(s *settings) error { s.immediate = true; return nil })
}

// WithTouchBuffer sets the per-shard deferred-recency ring capacity in
// records (a positive power of two; default 256). More than n lookup
// hits between two writer drains overwrite the oldest records — pseudo-
// LRU replacement tolerates such sampled recency, but a larger buffer
// keeps more of it under read-mostly bursts. Ignored (no ring exists)
// under WithImmediateRecency.
func WithTouchBuffer(n int) Option {
	return optionFunc(func(s *settings) error { s.touchBuffer = n; return nil })
}
