package cpacache

import (
	"fmt"
	"strings"
	"testing"

	"repro/pkg/plru"
)

// single returns a one-shard, one-set cache so tests control exactly which
// lines compete for ways, regardless of the per-cache hash seed.
func single(t *testing.T, ways, tenants int, policy plru.Kind, opts ...Option) *Cache[string, int] {
	t.Helper()
	c, err := New[string, int](append([]Option{
		WithShards(1), WithSets(1), WithWays(ways),
		WithPolicy(policy), WithPartitions(tenants), WithProfileSampling(1),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGetSetDeleteRoundTrip(t *testing.T) {
	c, err := New[string, int](WithShards(4), WithSets(32), WithWays(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Set("a", 1)
	c.Set("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	c.Set("a", 10) // update in place
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("update lost: %d", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if !c.Delete("a") || c.Delete("a") {
		t.Fatal("Delete semantics wrong")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	if c.Len() != 1 {
		t.Fatalf("Len after delete = %d, want 1", c.Len())
	}
}

func TestCapacityAndAccessors(t *testing.T) {
	c, err := New[int, int](WithShards(2), WithSets(8), WithWays(4), WithPolicy(plru.NRU), WithPartitions(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 2*8*4 || c.Shards() != 2 || c.Ways() != 4 || c.Tenants() != 2 || c.Policy() != plru.NRU {
		t.Fatalf("accessors wrong: cap=%d shards=%d ways=%d tenants=%d pol=%v",
			c.Capacity(), c.Shards(), c.Ways(), c.Tenants(), c.Policy())
	}
	if q := c.Quotas(); len(q) != 2 || q[0] != 2 || q[1] != 2 {
		t.Fatalf("initial quotas = %v, want even split", q)
	}
}

func TestEvictionAndOnEvict(t *testing.T) {
	var evicted []string
	c, err := New[string, int](
		WithShards(1), WithSets(1), WithWays(2), WithPolicy(plru.LRU),
		WithOnEvict(func(k string, v int) { evicted = append(evicted, k) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	c.Set("a", 1)
	c.Set("b", 2)
	c.Get("a") // make "b" the LRU line
	c.Set("c", 3)
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used line evicted")
	}
	c.Delete("a")
	if len(evicted) != 1 {
		t.Fatal("Delete must not fire OnEvict")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestOnEvictTypeMismatch(t *testing.T) {
	_, err := New[string, int](WithOnEvict(func(k string, v string) {}))
	if err == nil || !strings.Contains(err.Error(), "WithOnEvict") {
		t.Fatalf("err = %v, want type-mismatch error", err)
	}
}

func TestBadOptions(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"shards not pow2", []Option{WithShards(3)}},
		{"zero sets", []Option{WithSets(0)}},
		{"ways too big", []Option{WithWays(plru.MaxWays + 1)}},
		{"BT odd ways", []Option{WithWays(12), WithPolicy(plru.BT)}},
		{"tenants exceed ways", []Option{WithWays(4), WithPartitions(5)}},
		{"bad sampling", []Option{WithProfileSampling(0)}},
	}
	for _, tc := range cases {
		if _, err := New[int, int](tc.opts...); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestQuotaEnforcement pins the paper's core guarantee, transplanted to
// software: once partitions are installed, a tenant's fills only displace
// lines inside its own mask, so another tenant's resident lines are
// untouchable no matter how hard the first tenant churns.
func TestQuotaEnforcement(t *testing.T) {
	for _, pol := range []plru.Kind{plru.LRU, plru.NRU, plru.BT, plru.Random} {
		t.Run(pol.String(), func(t *testing.T) {
			c := single(t, 8, 2, pol)
			for i := 0; i < 4; i++ { // tenant 0 fills exactly its quota
				c.SetTenant(0, fmt.Sprintf("t0-%d", i), i)
			}
			for i := 0; i < 1000; i++ { // tenant 1 churns far past its quota
				c.SetTenant(1, fmt.Sprintf("t1-%d", i), i)
			}
			for i := 0; i < 4; i++ {
				if _, ok := c.GetTenant(0, fmt.Sprintf("t0-%d", i)); !ok {
					t.Fatalf("tenant 0 line %d displaced by tenant 1 churn", i)
				}
			}
			st := c.Stats()
			if st[0].Evictions != 0 {
				t.Fatalf("tenant 0 suffered %d evictions under partitioning", st[0].Evictions)
			}
		})
	}
}

func TestSetQuotasValidation(t *testing.T) {
	c := single(t, 8, 2, plru.LRU)
	for _, bad := range [][]int{{8, 0}, {4, 2}, {4, 4, 0}, {9, -1}} {
		if err := c.SetQuotas(bad); err == nil {
			t.Errorf("SetQuotas(%v) accepted", bad)
		}
	}
	if err := c.SetQuotas([]int{6, 2}); err != nil {
		t.Fatalf("valid quotas rejected: %v", err)
	}
	if q := c.Quotas(); q[0] != 6 || q[1] != 2 {
		t.Fatalf("Quotas = %v", q)
	}
}

func TestTenantOutOfRangePanics(t *testing.T) {
	c := single(t, 4, 2, plru.LRU)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range tenant")
		}
	}()
	c.GetTenant(2, "x")
}

// TestMissCurvesShape checks the profiled curves are non-increasing in
// ways and anchored at the access count, as the cpapart allocators require.
func TestMissCurvesShape(t *testing.T) {
	c := single(t, 8, 2, plru.LRU)
	for round := 0; round < 50; round++ {
		for i := 0; i < 6; i++ {
			c.GetTenant(0, fmt.Sprintf("k%d", i))
		}
		c.GetTenant(1, "solo")
	}
	curves := c.MissCurves()
	if curves[0][0] != 300 || curves[1][0] != 50 {
		t.Fatalf("curve[0] anchors = %d,%d; want access counts 300,50", curves[0][0], curves[1][0])
	}
	for tn, cu := range curves {
		for w := 1; w < len(cu); w++ {
			if cu[w] > cu[w-1] {
				t.Fatalf("tenant %d curve increases at %d: %v", tn, w, cu)
			}
		}
	}
	// Tenant 0 cycles 6 keys: with >= 6 ways its steady state has only the
	// 6 cold misses; tenant 1 needs one way for its single key.
	if curves[0][6] != 6 {
		t.Fatalf("tenant 0 misses at 6 ways = %d, want 6 cold", curves[0][6])
	}
	if curves[1][1] != 1 {
		t.Fatalf("tenant 1 misses at 1 way = %d, want 1 cold", curves[1][1])
	}
}

// TestRebalanceShiftsQuotas drives one cache-hungry and one tiny tenant
// and checks Rebalance moves ways toward the hungry one (MinMisses on the
// observed curves), then that the installed quotas change hit rates.
func TestRebalanceShiftsQuotas(t *testing.T) {
	c := single(t, 8, 2, plru.LRU)
	for round := 0; round < 100; round++ {
		for i := 0; i < 7; i++ {
			key := fmt.Sprintf("big%d", i)
			if _, ok := c.GetTenant(0, key); !ok {
				c.SetTenant(0, key, i)
			}
		}
		if _, ok := c.GetTenant(1, "small"); !ok {
			c.SetTenant(1, "small", 0)
		}
	}
	quotas, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if quotas[0] != 7 || quotas[1] != 1 {
		t.Fatalf("Rebalance quotas = %v, want [7 1]", quotas)
	}
	// After rebalance the hungry tenant's 7-key loop fits: steady-state
	// hit rate goes to 1 once warm.
	for i := 0; i < 7; i++ {
		c.SetTenant(0, fmt.Sprintf("big%d", i), i)
	}
	misses := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			if _, ok := c.GetTenant(0, fmt.Sprintf("big%d", i)); !ok {
				misses++
				c.SetTenant(0, fmt.Sprintf("big%d", i), i)
			}
		}
	}
	if misses != 0 {
		t.Fatalf("hungry tenant still misses %d times after rebalance to %v", misses, quotas)
	}
}

// TestRebalanceBTBuddy checks that under BT the rebalanced quotas stay
// powers of two on buddy-aligned masks.
func TestRebalanceBTBuddy(t *testing.T) {
	c, err := New[string, int](
		WithShards(1), WithSets(1), WithWays(16),
		WithPolicy(plru.BT), WithPartitions(3), WithProfileSampling(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 60; round++ {
		for i := 0; i < 10; i++ {
			c.GetTenant(0, fmt.Sprintf("a%d", i))
		}
		for i := 0; i < 3; i++ {
			c.GetTenant(1, fmt.Sprintf("b%d", i))
		}
		c.GetTenant(2, "c0")
	}
	quotas, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for tn, q := range quotas {
		if q < 1 || q&(q-1) != 0 {
			t.Fatalf("tenant %d quota %d not a power of two (quotas %v)", tn, q, quotas)
		}
		total += q
	}
	if total != 16 {
		t.Fatalf("quotas %v do not cover 16 ways", quotas)
	}
	if quotas[0] <= quotas[2] {
		t.Fatalf("hungry tenant did not gain ways: %v", quotas)
	}
}

func TestStatsCounts(t *testing.T) {
	c := single(t, 4, 1, plru.BT)
	c.Set("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	st := c.Stats()
	if st[0].Hits != 2 || st[0].Misses != 1 {
		t.Fatalf("stats = %+v", st[0])
	}
	if hr := st[0].HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("HitRate = %v", hr)
	}
}

func TestStructKeysAndValues(t *testing.T) {
	type key struct {
		Tenant string
		ID     uint64
	}
	c, err := New[key, []byte](WithShards(2), WithSets(16), WithWays(4))
	if err != nil {
		t.Fatal(err)
	}
	k := key{"acme", 7}
	c.Set(k, []byte("payload"))
	if v, ok := c.Get(k); !ok || string(v) != "payload" {
		t.Fatalf("struct key round trip failed: %q %v", v, ok)
	}
	if _, ok := c.Get(key{"acme", 8}); ok {
		t.Fatal("distinct struct key hit")
	}
}
