//go:build !race

// Allocation guards for the hot paths. They are excluded from -race runs
// (instrumentation skews the accounting); CI runs them in a dedicated
// non-race step so alloc regressions fail fast even on a 1-CPU runner
// where throughput regressions can hide.

package cpacache

import (
	"testing"
	"time"

	"repro/pkg/plru"
)

func newAllocCache(t *testing.T, tenants int) *Cache[uint64, uint64] {
	return newAllocCachePol(t, plru.BT, tenants)
}

func newAllocCachePol(t *testing.T, pol plru.Kind, tenants int) *Cache[uint64, uint64] {
	t.Helper()
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(256), WithWays(8),
		WithPolicy(pol), WithPartitions(tenants),
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestGetHitZeroAlloc pins the warm lookup path at zero allocations.
func TestGetHitZeroAlloc(t *testing.T) {
	c := newAllocCache(t, 1)
	const keys = 1024
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	i := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		c.Get(i % keys)
		i++
	}); n != 0 {
		t.Fatalf("GetHit allocates %v/op, want 0", n)
	}
}

// TestSetChurnZeroAlloc pins the continuously evicting insert path at zero
// allocations.
func TestSetChurnZeroAlloc(t *testing.T) {
	c := newAllocCache(t, 1)
	k := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		c.Set(k, k)
		k++
	}); n != 0 {
		t.Fatalf("SetChurn allocates %v/op, want 0", n)
	}
}

// TestAdaptivePoliciesZeroAlloc pins the warm lookup and evicting insert
// paths at zero allocations under the adaptive policies (AWRP and ARC,
// including ARC's ghost-ring probes on every fill) — the issue's
// acceptance bar for dropping them into the optimistic data plane.
func TestAdaptivePoliciesZeroAlloc(t *testing.T) {
	for _, pol := range []plru.Kind{plru.AWRP, plru.ARC} {
		t.Run(pol.String(), func(t *testing.T) {
			c := newAllocCachePol(t, pol, 1)
			const keys = 1024
			for k := uint64(0); k < keys; k++ {
				c.Set(k, k)
			}
			i := uint64(0)
			if n := testing.AllocsPerRun(1000, func() {
				c.Get(i % keys)
				i++
			}); n != 0 {
				t.Fatalf("%v GetHit allocates %v/op, want 0", pol, n)
			}
			k := uint64(1 << 40)
			if n := testing.AllocsPerRun(1000, func() {
				c.Set(k, k)
				k++
			}); n != 0 {
				t.Fatalf("%v SetChurn allocates %v/op, want 0", pol, n)
			}
		})
	}
}

// TestAutoSelectHotPathZeroAlloc pins the data plane at zero allocations
// with policy auto-selection on: the candidate fan-out, the shadow-
// directory probes on sampled sets, and the adaptive victim routing must
// all stay allocation-free.
func TestAutoSelectHotPathZeroAlloc(t *testing.T) {
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(256), WithWays(8),
		WithPolicy(plru.LRU), WithPartitions(2),
		WithPolicyAutoSelect(),
		WithProfileSampling(4), // plenty of shadow probes in the mix
	)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4096
	for k := uint64(0); k < keys; k++ {
		c.SetTenant(int(k)%2, k, k)
	}
	rng := uint64(9)
	if n := testing.AllocsPerRun(2000, func() {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		k := rng % (2 * keys)
		tenant := int(rng>>20) % 2
		if rng%8 == 0 {
			c.SetTenant(tenant, k, k)
		} else {
			c.GetTenant(tenant, k)
		}
	}); n != 0 {
		t.Fatalf("auto-select hot path allocates %v/op, want 0", n)
	}
}

// TestParallelMixZeroAlloc pins the multi-tenant get/set/delete mix (the
// per-goroutine body of BenchmarkParallelGetSet) at zero allocations.
func TestParallelMixZeroAlloc(t *testing.T) {
	c := newAllocCache(t, 4)
	rng := uint64(1)
	if n := testing.AllocsPerRun(1000, func() {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		k := rng % 32768
		tenant := int(rng>>20) % 4
		switch rng % 10 {
		case 0:
			c.SetTenant(tenant, k, k)
		case 1:
			c.Delete(k)
		default:
			c.GetTenant(tenant, k)
		}
	}); n != 0 {
		t.Fatalf("mixed hot path allocates %v/op, want 0", n)
	}
}

// TestBatchSteadyStateZeroAlloc pins GetBatch/SetBatch at zero
// allocations once the pooled scratch and eviction buffers have grown.
func TestBatchSteadyStateZeroAlloc(t *testing.T) {
	evictions := 0
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(256), WithWays(8),
		WithPolicy(plru.BT), WithPartitions(2),
		WithOnEvict(func(k, v uint64) { evictions++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 64
	keys := make([]uint64, batch)
	vals := make([]uint64, batch)
	oks := make([]bool, batch)
	k := uint64(0)
	fill := func() {
		for i := range keys {
			keys[i] = k % 40_000
			vals[i] = keys[i]
			k++
		}
	}
	// Warm up: grow the pooled scratch and per-shard eviction buffers.
	for i := 0; i < 2000; i++ {
		fill()
		c.SetBatch(i%2, keys, vals)
		c.GetBatch(i%2, keys, vals, oks)
	}
	if n := testing.AllocsPerRun(200, func() {
		fill()
		c.SetBatch(0, keys, vals)
		c.GetBatch(1, keys, vals, oks)
	}); n != 0 {
		t.Fatalf("steady-state batch ops allocate %v/call-pair, want 0", n)
	}
	if evictions == 0 {
		t.Fatal("workload never evicted; the guard did not cover the OnEvict buffer path")
	}
}

// TestGetHitTTLZeroAlloc pins the warm lookup path at zero allocations
// with TTL enabled — every probed entry carries a deadline, so the path
// includes the per-set TTL word test and the coarse clock load.
func TestGetHitTTLZeroAlloc(t *testing.T) {
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(256), WithWays(8),
		WithPolicy(plru.BT), WithDefaultTTL(time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const keys = 1024
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	i := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Get(i % keys); !ok {
			t.Fatal("warm TTL entry missed")
		}
		i++
	}); n != 0 {
		t.Fatalf("GetHit with TTL allocates %v/op, want 0", n)
	}
}

// TestSetChurnTTLCostZeroAlloc pins the evicting insert path at zero
// allocations with the full lifecycle data plane on: default TTL
// (deadline store per fill) and cost accounting (cost fn + gauge update).
func TestSetChurnTTLCostZeroAlloc(t *testing.T) {
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(256), WithWays(8),
		WithPolicy(plru.BT), WithDefaultTTL(time.Hour),
		WithCost(func(k, v uint64) uint64 { return 8 }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		c.Set(k, k)
		k++
	}); n != 0 {
		t.Fatalf("SetChurn with TTL+cost allocates %v/op, want 0", n)
	}
}

// TestTouchRingDrainZeroAlloc pins the deferred-recency round trip at
// zero allocations: a burst of lock-free hits fills the touch ring, and
// the Set that follows drains and applies every record through the
// batched policy path — none of push, drain window walk, TouchRec
// conversion or TouchBatch may allocate, even when the burst overflows
// the ring (sampled-drop regime).
func TestTouchRingDrainZeroAlloc(t *testing.T) {
	c, err := New[uint64, uint64](
		WithShards(1), WithSets(64), WithWays(8),
		WithPolicy(plru.BT), WithTouchBuffer(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 256
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	i := uint64(0)
	if n := testing.AllocsPerRun(500, func() {
		for j := 0; j < 100; j++ { // > ring capacity: overflow path included
			c.Get(i % keys)
			i++
		}
		c.Set(i%keys, i) // drains the ring before any policy read
	}); n != 0 {
		t.Fatalf("touch-ring fill+drain allocates %v/op, want 0", n)
	}
}

// TestWheelSweepZeroAlloc pins the timing-wheel paths at zero
// allocations: inserts with TTLs link slots into buckets (intrusive
// lists, preallocated at arm time), clock advances cascade entries down
// the levels, and sweep ticks reclaim due entries into reused buffers.
func TestWheelSweepZeroAlloc(t *testing.T) {
	clk := newFakeClock()
	c, err := New[uint64, uint64](
		WithShards(2), WithSets(32), WithWays(8),
		WithPolicy(plru.BT),
		WithNow(clk.Load), WithTTLSweep(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Warm the sweep buffers through one full insert+expire cycle.
	var exK []uint64
	var exV []uint64
	for k := uint64(0); k < 512; k++ {
		c.SetTenantTTL(0, k, k, 10*time.Millisecond)
	}
	clk.advance(time.Second)
	exK, exV = c.sweepOnce(exK, exV)
	k := uint64(0)
	if n := testing.AllocsPerRun(500, func() {
		for j := 0; j < 8; j++ {
			c.SetTenantTTL(0, k%512, k, time.Duration(1+k%20)*time.Millisecond)
			k++
		}
		clk.advance(5 * time.Millisecond)
		exK, exV = c.sweepOnce(exK, exV)
	}); n != 0 {
		t.Fatalf("wheel link/advance/sweep allocates %v/op, want 0", n)
	}
}

// TestRebalanceSteadyStateAllocs asserts steady-state Rebalance stays at
// a small constant: the returned quota copy is its only allocation, the
// DP tables / curves / masks all live in control-plane scratch on the
// Cache.
func TestRebalanceSteadyStateAllocs(t *testing.T) {
	for _, pol := range []plru.Kind{plru.BT, plru.LRU} {
		c, err := New[uint64, uint64](
			WithShards(4), WithSets(64), WithWays(16),
			WithPolicy(pol), WithPartitions(4),
		)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 8192; k++ {
			c.GetTenant(int(k)%4, k)
		}
		if _, err := c.Rebalance(); err != nil { // warm the scratch
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(100, func() {
			if _, err := c.Rebalance(); err != nil {
				t.Fatal(err)
			}
		}); n > 1 {
			t.Fatalf("%v: steady-state Rebalance allocates %v/op, want <= 1 (the returned quota copy)", pol, n)
		}
	}
}

// TestHardBudgetSetAllocs pins the budget-hit insert path at zero
// allocations: every Set pushes the tenant over its hard budget, so the
// whole governor machinery runs each call — gauge checks, the pooled
// enforcement scratch, the expired→owned reclaim ladder, the buffered
// OnEvict flush — and none of it may allocate at steady state.
func TestHardBudgetSetAllocs(t *testing.T) {
	evictions := 0
	c, err := New[uint64, uint64](
		WithShards(2), WithSets(32), WithWays(8),
		WithPolicy(plru.BT), WithPartitions(2),
		WithCost(func(k, v uint64) uint64 { return 8 }),
		WithHardBudgets(), WithMaxBytes(1<<20),
		WithOnEvict(func(k, v uint64) { evictions++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetBudgets([]uint64{256, 0}); err != nil { // 32 entries of 8
		t.Fatal(err)
	}
	k := uint64(0)
	// Warm up: fill to the budget and grow the pooled scratch buffers.
	for ; k < 1024; k++ {
		if err := c.SetTenant(0, k, k); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(1000, func() {
		if err := c.SetTenant(0, k, k); err != nil {
			t.Fatal(err)
		}
		k++
	}); n != 0 {
		t.Fatalf("budget-hit Set allocates %v/op, want 0", n)
	}
	if evictions == 0 {
		t.Fatal("workload never hit the budget; the guard covered nothing")
	}
}
