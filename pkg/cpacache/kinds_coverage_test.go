package cpacache

import (
	"testing"

	"repro/pkg/plru"
)

// The differential suites iterate these package-level kind sets instead
// of inline literals so that TestKindCoverageMatrix can prove — not just
// hope — that every registered policy kind is exercised by every
// feature. A new kind added to pkg/plru shows up in plru.Kinds() and
// the matrix fails until each suite (and each pinned data table, like
// the OPT envelopes) covers it.
var (
	// diffKinds drives TestDifferentialAgainstLinearModel (base Get/
	// Set/Delete/quota semantics) and TestDifferentialTTLAndCost (TTL
	// expiry, cost-weighted admission, per-tenant byte budgets).
	diffKinds = plru.Kinds()

	// diffBatchKinds drives TestDifferentialBatchOps (GetBatch/SetBatch
	// vs per-key equivalence).
	diffBatchKinds = plru.Kinds()

	// autoselectBaseKinds drives TestAutoSelectEveryBaseKind: every
	// kind must be usable as the base policy under autoselect.
	autoselectBaseKinds = plru.Kinds()
)

// TestKindCoverageMatrix enumerates policy-kind coverage across the
// feature suites: TTL+cost+budgets (differential), batch ops,
// autoselect bases, the collision-storm differential, and the pinned
// OPT competitive envelopes. It fails when any plru.Kinds() entry is
// missing from any of them, so registering a seventh policy kind
// cannot silently ship without full test coverage.
func TestKindCoverageMatrix(t *testing.T) {
	all := plru.Kinds()
	if len(all) < 6 {
		t.Fatalf("plru.Kinds() = %v — the registry shrank below the six known kinds", all)
	}

	features := []struct {
		name  string
		kinds []plru.Kind
	}{
		{"differential (base+TTL+cost+budgets)", diffKinds},
		{"batch", diffBatchKinds},
		{"autoselect-base", autoselectBaseKinds},
	}
	for _, f := range features {
		have := make(map[plru.Kind]bool, len(f.kinds))
		for _, k := range f.kinds {
			have[k] = true
		}
		for _, k := range all {
			if !have[k] {
				t.Errorf("feature %q does not cover policy kind %v", f.name, k)
			}
		}
	}

	// The OPT envelope table is literal data, not a Kinds() loop: a new
	// kind needs a measured band pinned for every workload.
	for _, wl := range optEnvWorkloads {
		bands, ok := optEnvelopes[wl]
		if !ok {
			t.Errorf("optEnvelopes has no entry for workload %q", wl)
			continue
		}
		for _, k := range all {
			if _, ok := bands[k]; !ok {
				t.Errorf("optEnvelopes[%q] pins no band for policy kind %v", wl, k)
			}
		}
	}
}

// TestAutoSelectEveryBaseKind builds an autoselecting cache with every
// registered kind as the base policy — including Random, which the
// default candidate set excludes but which is perfectly legal as a
// base — and drives a mixed workload through two tenants. The test
// asserts construction succeeds, the serving policies stay within the
// candidate set, and every hit returns the stored value.
func TestAutoSelectEveryBaseKind(t *testing.T) {
	for _, base := range autoselectBaseKinds {
		t.Run(base.String(), func(t *testing.T) {
			c, err := New[uint64, uint64](
				WithShards(1), WithSets(8), WithWays(8),
				WithPolicy(base), WithPartitions(2), WithSeed(77),
				WithPolicyAutoSelect(),
			)
			if err != nil {
				t.Fatalf("base %v: %v", base, err)
			}
			candidates := make(map[plru.Kind]bool, len(c.activeKinds))
			for _, k := range c.activeKinds {
				candidates[k] = true
			}
			if !candidates[base] {
				t.Fatalf("base %v missing from candidate set %v", base, c.activeKinds)
			}

			rng := uint64(base)<<8 | 5
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < 12_000; i++ {
				key := next() % 192 // ~3x capacity: real eviction pressure
				tenant := int(next() % 2)
				if next()%4 == 0 {
					c.SetTenant(tenant, key, key*3)
				} else if v, ok := c.GetTenant(tenant, key); ok && v != key*3 {
					t.Fatalf("step %d: Get(%d,%d) = %d, want %d", i, tenant, key, v, key*3)
				}
			}
			for _, p := range c.TenantPolicies() {
				if !candidates[p] {
					t.Fatalf("tenant policy %v escaped the candidate set %v", p, c.activeKinds)
				}
			}
		})
	}
}
