package cpacache

// Hardware-style tag match for the set probe. Each set keeps one byte of
// tag per way, packed eight ways to a uint64, so a lookup resolves against
// all ways of a word with a handful of branch-free SWAR operations — the
// software analogue of a hardware cache's parallel tag comparators. Only
// ways whose tag byte matches are then confirmed with a full key
// comparison, so a probe of an 8-way set typically costs one XOR-and-mask
// plus a single key compare instead of eight key compares.
//
// Tag encoding: byte 0x00 means the way is empty; an occupied way stores
// 0x80 | (7 hash bits). Folding the valid bit into the tag byte removes
// the separate owner>=0 check from the probe, and makes "find an empty
// way" a zero-byte scan over the same word. The 7 tag bits come from hash
// bits 24..30 (bit 31 is overwritten by the valid bit), which neither
// shard selection (low bits) nor set selection (bits 32 and up) consumes,
// so tag collisions are independent of set placement.
//
// Layout: each set owns a stride of tagWordsFor(ways)+1 consecutive
// words in the shard's tags array. Word 0 of the stride is the set's
// *sequence word* — the seqlock counter the optimistic read path
// validates against (even = consistent, odd = writer mid-rewrite; see
// lockfree.go) — and words 1..tagWords hold the packed per-way tag
// bytes. Interleaving the sequence with the tags it guards means the
// lock-free probe's sequence load and first tag load share a cache
// line. Writers bump the sequence with beginSetWrite/endSetWrite around
// every slot mutation, under the shard mutex.

const (
	tagEmpty   = 0x00
	tagLoBytes = 0x0101010101010101
	tagHiBytes = 0x8080808080808080
)

// tagOf derives the occupied-tag byte from a key's hash.
func tagOf(h uint64) uint8 { return uint8(h>>24) | 0x80 }

// tagWordsFor returns the number of packed tag words each set needs.
func tagWordsFor(ways int) int { return (ways + 7) / 8 }

// setStrideFor returns the per-set stride in the tags array: the
// sequence word plus the packed tag words.
func setStrideFor(ways int) int { return tagWordsFor(ways) + 1 }

// zeroBytes returns a word with the high bit of byte i set iff byte i of w
// is zero. The 7-bit add cannot carry between bytes, so — unlike the
// classic (w-lo)&^w&hi trick — the result is exact: no false positives
// above a zero byte.
func zeroBytes(w uint64) uint64 {
	t := (w & ^uint64(tagHiBytes)) + ^uint64(tagHiBytes)
	return ^(t | w) & tagHiBytes
}

// matchTag returns a word with the high bit of byte i set iff byte i of
// tags equals tag. Exact; empty bytes (0x00) never match an occupied tag
// because occupied tags always carry the 0x80 valid bit.
func matchTag(tags uint64, tag uint8) uint64 {
	return zeroBytes(tags ^ (uint64(tag) * tagLoBytes))
}

// byteMarksToBits compresses high-bit byte marks (as produced by zeroBytes
// or matchTag) into the low 8 bits: bit i set iff byte i was marked. The
// multiply gathers bit 8i into bit 56+i with no cross-term collisions.
func byteMarksToBits(marks uint64) uint64 {
	return ((marks >> 7) * 0x0102040810204080) >> 56
}

// markWay converts a single high-bit byte mark position (from
// bits.TrailingZeros64 on a marks word) into its way index within the word.
func markWay(tz int) int { return tz >> 3 }
