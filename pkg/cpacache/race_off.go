//go:build !race

package cpacache

// raceEnabled reports whether this build carries the race detector. The
// seqlock read path performs plain loads of slots that writers mutate
// under the shard lock — loads whose results are discarded whenever the
// per-set sequence word moved, which is exactly the pattern the race
// detector (correctly, per the strict memory model) flags. Race builds
// therefore route every lookup through the locked slow path; the
// dedicated torn-read stress tests cover the lock-free path in regular
// builds and the fallback in instrumented ones.
const raceEnabled = false
