package cpacache

import "repro/pkg/plru"

// policyRef devirtualizes the per-access replacement-policy calls. The
// shard's policy used to be a plru.Policy interface value, which put an
// itab-indirect call on every Touch and Victim — the two calls on the
// data-plane hot loop. policyRef instead holds the concrete policy
// pointer for its kind and dispatches through a switch, so each call site
// compiles to a direct (and for the small BT/NRU/LRU bodies, inlinable)
// call. The kind is fixed at construction, so the switch predicts
// perfectly.
type policyRef struct {
	kind plru.Kind
	lru  *plru.LRUPolicy
	nru  *plru.NRUPolicy
	bt   *plru.BTPolicy
	rnd  *plru.RandomPolicy
	awrp *plru.AWRPPolicy
	arc  *plru.ARCPolicy
}

// newPolicyRef builds the concrete policy for kind, mirroring plru.New.
func newPolicyRef(kind plru.Kind, sets, ways, cores int, seed uint64) policyRef {
	p := policyRef{kind: kind}
	switch kind {
	case plru.LRU:
		p.lru = plru.NewLRUPolicy(sets, ways)
	case plru.NRU:
		p.nru = plru.NewNRUPolicy(sets, ways, cores)
	case plru.BT:
		p.bt = plru.NewBTPolicy(sets, ways)
	case plru.AWRP:
		p.awrp = plru.NewAWRPPolicy(sets, ways)
	case plru.ARC:
		p.arc = plru.NewARCPolicy(sets, ways)
	default:
		p.rnd = plru.NewRandomPolicy(sets, ways, seed)
	}
	return p
}

// iface returns the policy as the plru.Policy interface, for the rare
// paths (tests, introspection) where the indirect call does not matter.
func (p *policyRef) iface() plru.Policy {
	switch p.kind {
	case plru.LRU:
		return p.lru
	case plru.NRU:
		return p.nru
	case plru.BT:
		return p.bt
	case plru.AWRP:
		return p.awrp
	case plru.ARC:
		return p.arc
	default:
		return p.rnd
	}
}

func (p *policyRef) touch(set, way, core int) {
	switch p.kind {
	case plru.LRU:
		p.lru.Touch(set, way, core)
	case plru.NRU:
		p.nru.Touch(set, way, core)
	case plru.BT:
		p.bt.Touch(set, way, core)
	case plru.AWRP:
		p.awrp.Touch(set, way, core)
	case plru.ARC:
		p.arc.Touch(set, way, core)
	default:
		p.rnd.Touch(set, way, core)
	}
}

func (p *policyRef) fill(set, way, core int, sig uint8) {
	switch p.kind {
	case plru.LRU:
		p.lru.Fill(set, way, core, sig)
	case plru.NRU:
		p.nru.Fill(set, way, core, sig)
	case plru.BT:
		p.bt.Fill(set, way, core, sig)
	case plru.AWRP:
		p.awrp.Fill(set, way, core, sig)
	case plru.ARC:
		p.arc.Fill(set, way, core, sig)
	default:
		p.rnd.Fill(set, way, core, sig)
	}
}

func (p *policyRef) touchBatch(recs []plru.TouchRec) {
	switch p.kind {
	case plru.LRU:
		p.lru.TouchBatch(recs)
	case plru.NRU:
		p.nru.TouchBatch(recs)
	case plru.BT:
		p.bt.TouchBatch(recs)
	case plru.AWRP:
		p.awrp.TouchBatch(recs)
	case plru.ARC:
		p.arc.TouchBatch(recs)
	default:
		p.rnd.TouchBatch(recs)
	}
}

func (p *policyRef) victim(set, core int, allowed plru.WayMask) int {
	switch p.kind {
	case plru.LRU:
		return p.lru.Victim(set, core, allowed)
	case plru.NRU:
		return p.nru.Victim(set, core, allowed)
	case plru.BT:
		return p.bt.Victim(set, core, allowed)
	case plru.AWRP:
		return p.awrp.Victim(set, core, allowed)
	case plru.ARC:
		return p.arc.Victim(set, core, allowed)
	default:
		return p.rnd.Victim(set, core, allowed)
	}
}

func (p *policyRef) invalidate(set, way int) {
	switch p.kind {
	case plru.LRU:
		p.lru.Invalidate(set, way)
	case plru.NRU:
		p.nru.Invalidate(set, way)
	case plru.BT:
		p.bt.Invalidate(set, way)
	case plru.AWRP:
		p.awrp.Invalidate(set, way)
	case plru.ARC:
		p.arc.Invalidate(set, way)
	default:
		p.rnd.Invalidate(set, way)
	}
}

func (p *policyRef) setPartition(masks []plru.WayMask) {
	switch p.kind {
	case plru.LRU:
		p.lru.SetPartition(masks)
	case plru.NRU:
		p.nru.SetPartition(masks)
	case plru.BT:
		p.bt.SetPartition(masks)
	case plru.AWRP:
		p.awrp.SetPartition(masks)
	case plru.ARC:
		p.arc.SetPartition(masks)
	default:
		p.rnd.SetPartition(masks)
	}
}
