package cpacache

import (
	"fmt"
	"testing"

	"repro/pkg/plru"
)

// waysOf returns the way a resident key occupies, or -1 (white box).
func waysOf[K comparable, V any](c *Cache[K, V], key K) (*shard[K, V], int, int) {
	sh, set, tag := c.locate(key)
	return sh, set, c.findLocked(sh, set*c.ways, c.tagBase(set), tag, key)
}

// TestFillUnownedWayOutsidePartition pins the single-pass empty-way scan's
// preserved semantics: when a tenant's own partition is full but the set
// still has unowned empty ways, a fill takes one of those (lowest first)
// instead of evicting — no quota is violated because nobody is displaced.
func TestFillUnownedWayOutsidePartition(t *testing.T) {
	for _, pol := range []plru.Kind{plru.LRU, plru.NRU, plru.BT, plru.Random} {
		t.Run(pol.String(), func(t *testing.T) {
			c := single(t, 4, 2, pol) // quotas [2 2]: tenant 0 owns ways {0,1}
			c.SetTenant(0, "a", 1)
			c.SetTenant(0, "b", 2)
			c.SetTenant(0, "c", 3) // partition full -> must land on an unowned way
			if c.Len() != 3 {
				t.Fatalf("Len = %d, want 3 (no eviction)", c.Len())
			}
			_, _, w := waysOf(c, "c")
			if w != 2 {
				t.Fatalf("overflow fill went to way %d, want lowest unowned empty way 2", w)
			}
			st := c.Stats()
			if st[0].Evictions != 0 || st[1].Evictions != 0 {
				t.Fatalf("fill into empty unowned way evicted: %+v", st)
			}
			// Tenant 1 now churns: it may displace "c" (which squats in
			// tenant 1's partition) but never "a"/"b".
			for i := 0; i < 100; i++ {
				c.SetTenant(1, fmt.Sprintf("t1-%d", i), i)
			}
			for _, k := range []string{"a", "b"} {
				if _, ok := c.GetTenant(0, k); !ok {
					t.Fatalf("tenant 0's in-partition line %q displaced by tenant 1", k)
				}
			}
		})
	}
}

// TestDeleteClearsTagAndRecency checks Delete leaves the slot fully
// reclaimed: tag byte empty (so probes skip it), owner -1, and the
// policy's recency state invalidated so the freed way reads as
// least-recent (white box per policy).
func TestDeleteClearsTagAndRecency(t *testing.T) {
	for _, pol := range []plru.Kind{plru.LRU, plru.NRU, plru.BT} {
		t.Run(pol.String(), func(t *testing.T) {
			c := single(t, 4, 1, pol)
			for i := 0; i < 4; i++ {
				c.Set(fmt.Sprintf("k%d", i), i)
			}
			sh, set, w := waysOf(c, "k1")
			if w < 0 {
				t.Fatal("setup: k1 not resident")
			}
			if !c.Delete("k1") {
				t.Fatal("Delete missed")
			}
			if tag := uint8(sh.tags[c.tagBase(set)+w>>3] >> (uint(w&7) * 8)); tag != tagEmpty {
				t.Fatalf("freed way still carries tag %#x", tag)
			}
			if sh.owner[set*c.ways+w] != -1 {
				t.Fatal("freed way still owned")
			}
			switch p := sh.pol.iface().(type) {
			case *plru.LRUPolicy:
				if d := p.Dist(set, w); d != 4 {
					t.Fatalf("freed way at LRU distance %d, want 4 (least recent)", d)
				}
			case *plru.NRUPolicy:
				if p.Used(set, w) {
					t.Fatal("freed way's used bit survived Delete")
				}
			case *plru.BTPolicy:
				if v := p.Victim(set, 0, plru.Full(4)); v != w {
					t.Fatalf("BT victim after Delete = %d, want freed way %d", v, w)
				}
			}
			// The freed way is reused by the next fill, without eviction.
			c.Set("k9", 9)
			if _, _, got := waysOf(c, "k9"); got != w {
				t.Fatalf("next fill took way %d, want freed way %d", got, w)
			}
			if ev := c.Stats()[0].Evictions; ev != 0 {
				t.Fatalf("refilling a freed way evicted %d lines", ev)
			}
		})
	}
}

// TestLenLockFree checks Len over many shards agrees with a ground-truth
// count (it reads per-shard atomics, never locks or scans slots).
func TestLenLockFree(t *testing.T) {
	c, err := New[uint64, uint64](WithShards(8), WithSets(16), WithWays(4))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for k := uint64(0); k < 300; k++ {
		c.Set(k, k)
		if _, ok := c.Get(k); ok {
			// still resident (inserts may displace earlier keys)
		}
	}
	for k := uint64(0); k < 300; k++ {
		if _, ok := c.Get(k); ok {
			want++
		}
	}
	if got := c.Len(); got != want {
		t.Fatalf("Len = %d, ground-truth resident count %d", got, want)
	}
	for k := uint64(0); k < 300; k += 3 {
		if c.Delete(k) {
			want--
		}
	}
	if got := c.Len(); got != want {
		t.Fatalf("Len after deletes = %d, want %d", got, want)
	}
}

// TestBatchArgumentChecks pins the batch API's contract violations.
func TestBatchArgumentChecks(t *testing.T) {
	c, err := New[int, int](WithShards(2), WithSets(8), WithWays(4))
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("short vals", func() { c.GetBatch(0, []int{1, 2}, make([]int, 1), make([]bool, 2)) })
	mustPanic("short oks", func() { c.GetBatch(0, []int{1, 2}, make([]int, 2), make([]bool, 1)) })
	mustPanic("len mismatch", func() { c.SetBatch(0, []int{1, 2}, []int{1}) })
	mustPanic("bad tenant", func() { c.GetBatch(7, []int{1}, make([]int, 1), make([]bool, 1)) })
	// Empty batches are no-ops.
	if n := c.GetBatch(0, nil, nil, nil); n != 0 {
		t.Fatalf("empty GetBatch = %d", n)
	}
	c.SetBatch(0, nil, nil)

	// Duplicate keys in one batch behave like sequential calls: last value
	// wins, occupying one slot.
	c.SetBatch(0, []int{5, 5, 5}, []int{1, 2, 3})
	if v, ok := c.Get(5); !ok || v != 3 {
		t.Fatalf("dup-key batch: Get(5) = %d,%v, want 3,true", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("dup-key batch occupied %d slots", c.Len())
	}
}

// TestBatchOnEvictAfterUnlock checks the displaced-entry callbacks run
// outside the shard lock (re-entering the cache from OnEvict must not
// deadlock) and carry coherent pairs.
func TestBatchOnEvictAfterUnlock(t *testing.T) {
	var c *Cache[uint64, uint64]
	evicted := 0
	var err error
	c, err = New[uint64, uint64](
		WithShards(2), WithSets(2), WithWays(2),
		WithOnEvict(func(k, v uint64) {
			evicted++
			if k*10 != v {
				t.Errorf("incoherent eviction pair (%d,%d)", k, v)
			}
			c.Get(k) // re-entry: deadlocks if called under the shard lock
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, 64)
	vals := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = uint64(i) * 10
	}
	c.SetBatch(0, keys, vals) // 64 inserts into 8 slots: heavy eviction
	if evicted < 50 {
		t.Fatalf("expected heavy eviction, got %d", evicted)
	}
}
