package cpacache

// Metrics export: the cache exposes its lifecycle two ways. Pull — Stats
// (per-tenant counters) and Snapshot (one coherent frame of counters,
// quotas and budgets) — for scrape-style collectors; push — a MetricsSink
// of optional callbacks — for decisions that are events rather than
// gauges, like "this auto-rebalance tick moved ways" or "the sweeper
// reclaimed 40 expired lines". Sink callbacks run outside every cache
// lock, on the goroutine that made the decision.

import "repro/pkg/plru"

// MetricsSink receives lifecycle events. Any callback may be nil; nil
// callbacks are simply skipped. Callbacks must be safe for concurrent use
// (the sweeper and the auto-rebalance ticker are separate goroutines) and
// should return quickly — they run on the cache's background goroutines,
// outside all locks.
type MetricsSink struct {
	// Rebalance is called once per rebalance decision — manual Rebalance
	// calls, auto-rebalance ticks that installed new quotas, and ticks
	// that were held back by hysteresis.
	Rebalance func(RebalanceEvent)
	// Sweep is called after a background sweep tick that reclaimed at
	// least one expired entry or skipped at least one contended shard.
	Sweep func(SweepEvent)
	// PolicySwitch is called once per tenant whose replacement policy
	// the auto-selector (WithPolicyAutoSelect) switched at a rebalance
	// boundary. Never called without auto-selection.
	PolicySwitch func(PolicySwitchEvent)
	// Pressure is called on every memory-pressure transition of the
	// WithMaxBytes ladder (ok ⇄ aggressive ⇄ oom). Never called without
	// WithMaxBytes. Transitions are serialized: callbacks observe a
	// consistent From → To chain, from whichever goroutine's operation
	// crossed the watermark.
	Pressure func(PressureEvent)
}

// PressureEvent describes one memory-pressure transition.
type PressureEvent struct {
	// From and To are the outgoing and incoming ladder states.
	From, To PressureState
	// UsedBytes is the global resident-cost gauge at the transition;
	// MaxBytes is the WithMaxBytes cap.
	UsedBytes, MaxBytes uint64
}

// RebalanceEvent describes one rebalance decision.
type RebalanceEvent struct {
	// Auto is true for ticker-driven rebalances, false for Rebalance calls.
	Auto bool
	// Applied reports whether the proposed quotas were installed. Manual
	// rebalances always apply; auto ticks may be held back by hysteresis
	// (too few samples, or too little predicted gain).
	Applied bool
	// Contended is true for auto ticks that were skipped before any
	// proposal was computed because a shard's lock was busy (the
	// backpressure rule: the background control plane never queues
	// behind a data-plane burst). New is nil on contended events.
	Contended bool
	// Old and New are the quotas before the decision and the proposal
	// (installed only when Applied). Both are copies owned by the sink.
	Old, New []int
	// SampledAccesses is the number of profiled accesses in the window
	// the decision was computed from.
	SampledAccesses uint64
	// PredictedMissesOld and PredictedMissesNew evaluate the profiled
	// miss curves at the old and proposed quotas — the quantities the
	// hysteresis rule compares.
	PredictedMissesOld, PredictedMissesNew uint64
}

// PolicySwitchEvent describes one tenant's replacement-policy switch,
// decided by the auto-selector at a rebalance boundary.
type PolicySwitchEvent struct {
	// Tenant is the switched tenant.
	Tenant int
	// From and To are the outgoing and incoming policy kinds.
	From, To plru.Kind
	// WindowAccesses is the number of profiled accesses the tenant
	// contributed to the decision window.
	WindowAccesses uint64
	// Candidates lists the candidate kinds and ShadowHits their shadow
	// hit counts for this tenant over the window, index-aligned. Both
	// are copies owned by the sink.
	Candidates []plru.Kind
	ShadowHits []uint64
}

// SweepEvent describes one background sweep tick that reclaimed expired
// entries or backed off from contention.
type SweepEvent struct {
	// Visited is the number of timing-wheel entries the tick examined
	// across all shards — due entries plus any that were parked just
	// short of their deadline. The wheel visits only deadline-carrying
	// slots, never whole sets.
	Visited int
	// Expired is the number of entries reclaimed this tick.
	Expired int
	// Skipped is the number of shards whose sweep was skipped this tick
	// because their lock was contended; their due entries remain linked
	// and the next tick retries.
	Skipped int
}

// Snapshot is a point-in-time view of the cache's lifecycle state, taken
// with per-shard consistency (shard locks are taken one at a time, so
// cross-shard totals can skew by in-flight operations, exactly like
// Stats).
type Snapshot struct {
	// Tenants holds the per-tenant counters, as Stats returns them.
	Tenants []TenantStats
	// Quotas is the installed per-tenant way allocation.
	Quotas []int
	// Policies is the replacement policy currently serving each tenant:
	// the base policy everywhere unless WithPolicyAutoSelect switched a
	// tenant to a better-scoring candidate.
	Policies []plru.Kind
	// Budgets is the per-tenant byte budgets installed with SetBudgets
	// (nil when none are set).
	Budgets []uint64
	// Len and Capacity are the live-entry count and the slot count.
	Len, Capacity int
	// Rebalances counts rebalance decisions that installed quotas;
	// RebalancesSkipped counts auto ticks held back by hysteresis.
	Rebalances, RebalancesSkipped uint64
	// SweepExpired counts entries reclaimed by the background sweeper
	// over the cache's lifetime (lazily reclaimed entries are counted
	// per tenant in Tenants[t].Expirations alongside these).
	SweepExpired uint64
	// SweepSkipped counts shard sweeps skipped because the shard lock
	// was contended when the sweeper's tick tried to take it.
	SweepSkipped uint64
	// PolicySwitches counts tenant policy switches the auto-selector
	// has applied over the cache's lifetime (0 without auto-selection).
	PolicySwitches uint64
	// UsedBytes is the global resident-cost gauge (0 without WithCost)
	// and MaxBytes the WithMaxBytes cap (0 when uncapped).
	UsedBytes, MaxBytes uint64
	// Pressure is the ladder state at the frame (always PressureOK
	// without WithMaxBytes).
	Pressure PressureState
	// BudgetEvictedBytes totals the cost of lines displaced by the
	// governor (WithHardBudgets / WithMaxBytes enforcement) over the
	// cache's lifetime; the per-tenant line counts are in
	// Tenants[t].BudgetEvictions.
	BudgetEvictedBytes uint64
}

// Snapshot returns a point-in-time metrics frame: per-tenant counters,
// quotas, budgets and lifecycle totals in one call.
func (c *Cache[K, V]) Snapshot() Snapshot {
	s := Snapshot{
		Tenants:            c.Stats(),
		Len:                c.Len(),
		Capacity:           c.Capacity(),
		SweepExpired:       c.nSweepExpired.Load(),
		SweepSkipped:       c.nSweepSkipped.Load(),
		UsedBytes:          c.UsedBytes(),
		MaxBytes:           c.maxBytes,
		Pressure:           c.Pressure(),
		BudgetEvictedBytes: c.nBudgetEvictBytes.Load(),
	}
	// Quotas and the rebalance counters read under quotaMu (which
	// rebalance holds across install + counter bump), so a frame never
	// pairs freshly installed quotas with a not-yet-bumped count.
	c.quotaMu.Lock()
	s.Quotas = append([]int(nil), c.quotas...)
	s.Policies = make([]plru.Kind, c.tenants)
	for t := range s.Policies {
		if c.activeKinds != nil {
			s.Policies[t] = c.activeKinds[c.polByTenant[t]]
		} else {
			s.Policies[t] = c.policy
		}
	}
	if c.budgets != nil {
		s.Budgets = append([]uint64(nil), c.budgets...)
	}
	s.Rebalances = c.nRebalanced.Load()
	s.RebalancesSkipped = c.nRebalanceSkip.Load()
	s.PolicySwitches = c.nPolSwitch.Load()
	c.quotaMu.Unlock()
	return s
}
