package cpacache

import (
	"hash/maphash"
	"testing"
	"time"

	"repro/internal/optref"
	"repro/pkg/plru"
)

// These tests grade every policy kind against the offline-optimal
// (Belady) replacement on the cache's own recorded access streams: each
// workload drives the real cache cache-aside (Get; on miss, Set) while
// recording the key stream as a demand trace with the cache's exact
// shard/set placement (white box: same hash seed), then replays it
// through internal/optref and asserts hitRate(policy)/hitRate(OPT)
// stays inside a pinned per-policy envelope.
//
// The trace uses demand (fill-on-miss) semantics, not Lookup/Store
// pairs: in a cache-aside loop every miss is immediately followed by a
// Set, so the reachable optimum is "OPT filling on its own misses over
// the same key stream". Recording the policy's actual Store points
// instead would tie OPT's fill opportunities to that policy's miss
// pattern and break the upper-bound property (a policy could then
// "beat" OPT).
//
// The bands are regression detectors, not exact values: the maphash
// seed is random per cache, so hit rates wobble run to run, and the
// bands carry that slack. OPT ignores TTL (it is an upper bound); the
// ttl workload's bands sit lower for it.

// optEnvWorkloads names the recorded workloads; optEnvelopes pins
// [lo,hi] ratio bands per workload × policy.
var optEnvWorkloads = []string{"random", "ttl", "cost", "partitioned"}

var optEnvelopes = map[string]map[plru.Kind][2]float64{
	// Pinned from repeated local runs (see EXPERIMENTS.md): centers vary
	// by well under ±0.01 across maphash seeds; lower bounds leave ≥0.04
	// slack. The 1.005 ceilings are the OPT-supremacy check — a policy
	// "beating" OPT means the trace capture or replay broke. The cost
	// workload is skewed (hot/cold), where AWRP's frequency weighting and
	// ARC's two-tier structure measurably beat the recency-only policies;
	// their higher floors pin that advantage.
	"random": {
		plru.LRU:    {0.55, 1.005},
		plru.NRU:    {0.55, 1.005},
		plru.BT:     {0.55, 1.005},
		plru.Random: {0.55, 1.005},
		plru.AWRP:   {0.55, 1.005},
		plru.ARC:    {0.55, 1.005},
	},
	"ttl": {
		plru.LRU:    {0.54, 1.005},
		plru.NRU:    {0.54, 1.005},
		plru.BT:     {0.54, 1.005},
		plru.Random: {0.54, 1.005},
		plru.AWRP:   {0.54, 1.005},
		plru.ARC:    {0.54, 1.005},
	},
	"cost": {
		plru.LRU:    {0.60, 1.005},
		plru.NRU:    {0.58, 1.005},
		plru.BT:     {0.59, 1.005},
		plru.Random: {0.55, 1.005},
		plru.AWRP:   {0.78, 1.005},
		plru.ARC:    {0.68, 1.005},
	},
	"partitioned": {
		plru.LRU:    {0.59, 1.005},
		plru.NRU:    {0.59, 1.005},
		plru.BT:     {0.59, 1.005},
		plru.Random: {0.59, 1.005},
		plru.AWRP:   {0.59, 1.005},
		plru.ARC:    {0.59, 1.005},
	},
}

// runOptEnvWorkload drives one (workload, policy) cell and returns the
// cache's lookup hit rate and OPT's on the identical recorded trace.
func runOptEnvWorkload(t *testing.T, kind plru.Kind, wl string) (cacheHitRate, optHitRate float64) {
	t.Helper()
	const shards, sets, ways = 2, 16, 8
	tenants := 1
	opts := []Option{
		WithShards(shards), WithSets(sets), WithWays(ways),
		WithPolicy(kind), WithSeed(4242),
	}
	var clk *fakeClock
	switch wl {
	case "ttl":
		clk = newFakeClock()
		opts = append(opts, WithNow(clk.Load), WithTTLSweep(0),
			WithDefaultTTL(4000*time.Nanosecond))
	case "cost":
		opts = append(opts, WithCost(func(k, v uint64) uint64 { return k%5 + 1 }))
	case "partitioned":
		tenants = 2
		opts = append(opts, WithPartitions(2))
	}
	c, err := New[uint64, uint64](opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var masks []plru.WayMask
	if wl == "partitioned" {
		if err := c.SetQuotas([]int{5, 3}); err != nil {
			t.Fatal(err)
		}
		masks = append(masks, c.shards[0].masks...)
	}

	tr := &optref.Trace{}
	optSetOf := func(key uint64) int {
		h := maphash.Comparable(c.seed, key)
		return int(h&c.shardMask)*sets + c.setOf(h)
	}

	rng := uint64(0x0b7_e27) ^ uint64(kind)<<32 | 1
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	capacity := uint64(shards * sets * ways)
	keyOf := func() uint64 {
		if wl == "cost" {
			// Skewed: half the lookups hammer a hot set smaller than the
			// cache, the rest roam a cold space 4x capacity.
			if next()%2 == 0 {
				return next() % (capacity / 2)
			}
			return capacity/2 + next()%(capacity*4)
		}
		// Uniform over 2.5x capacity: real reuse under real pressure.
		return next() % (capacity * 5 / 2)
	}

	const steps = 60_000
	var lookups, hits uint64
	for i := 0; i < steps; i++ {
		if clk != nil && i%16 == 0 {
			clk.advance(time.Duration(next() % 40))
		}
		tenant := 0
		if tenants > 1 {
			tenant = int(next() % uint64(tenants))
		}
		key := keyOf()
		tr.Access(tenant, optSetOf(key), key)
		_, ok := c.GetTenant(tenant, key)
		lookups++
		if ok {
			hits++
		} else {
			c.SetTenant(tenant, key, key*3)
		}
	}

	opt, err := optref.Replay(optref.Config{
		Sets: shards * sets, Ways: ways, Cores: tenants, Masks: masks,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	return float64(hits) / float64(lookups), opt.HitRate()
}

// TestOptCompetitiveEnvelopes replays every policy × workload cell
// against OPT and pins the hit-rate ratio inside its envelope. A policy
// regression (or an accidental improvement worth re-pinning) trips the
// band; beating OPT on a TTL-free trace trips the upper bound and means
// the trace capture or the replay itself broke.
func TestOptCompetitiveEnvelopes(t *testing.T) {
	if testing.Short() {
		t.Skip("60k-step replays per cell")
	}
	for _, wl := range optEnvWorkloads {
		for _, kind := range plru.Kinds() {
			t.Run(wl+"/"+kind.String(), func(t *testing.T) {
				env, ok := optEnvelopes[wl][kind]
				if !ok {
					t.Fatalf("no envelope pinned for %s/%v — add one (kind-coverage contract)", wl, kind)
				}
				cacheHR, optHR := runOptEnvWorkload(t, kind, wl)
				if optHR <= 0 {
					t.Fatalf("OPT hit rate %.4f — vacuous workload", optHR)
				}
				ratio := cacheHR / optHR
				t.Logf("%s/%v: cache %.4f OPT %.4f ratio %.4f (band [%.2f,%.3f])",
					wl, kind, cacheHR, optHR, ratio, env[0], env[1])
				if ratio < env[0] || ratio > env[1] {
					t.Errorf("ratio %.4f outside envelope [%.2f,%.3f] (cache %.4f, OPT %.4f)",
						ratio, env[0], env[1], cacheHR, optHR)
				}
			})
		}
	}
}
