// Package cpacache is a generic, sharded, goroutine-safe in-process cache
// whose eviction engine is the pseudo-LRU policy machinery of
// repro/pkg/plru and whose multi-tenant quota enforcement is the
// way-partitioning scheme of Kedzierski et al., "Adapting cache
// partitioning algorithms to pseudo-LRU replacement policies" (IPDPS
// 2010): each tenant owns a quota of ways per set, enforced through
// replacement masks at victim-selection time, while hits remain global —
// exactly the paper's "global replacement masks" design, in software.
//
// A Cache is built with functional options:
//
//	c, err := cpacache.New[string, []byte](
//	        cpacache.WithShards(8),
//	        cpacache.WithSets(1024),
//	        cpacache.WithWays(16),
//	        cpacache.WithPolicy(plru.BT),
//	        cpacache.WithPartitions(3),
//	        cpacache.WithOnEvict(func(k string, v []byte) { pool.Put(v) }),
//	)
//
// Tenant quotas start as an even split and can be changed at any time with
// SetQuotas, or rebalanced online from the observed per-tenant hit curves
// with Rebalance, which runs the paper's partitioning algorithms (exact
// MinMisses, or the binary-buddy variant under BT) from repro/pkg/cpapart
// over stack-distance profiles sampled UMON-style on a subset of sets.
//
// All methods are safe for concurrent use. The per-operation hot path
// takes exactly one shard mutex and performs no heap allocation.
package cpacache

import (
	"fmt"
	"hash/maphash"
	"sync"

	"repro/pkg/cpapart"
	"repro/pkg/plru"
)

// Cache is a sharded, set-associative, partition-aware in-process cache.
// The zero value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	shards  []shard[K, V]
	seed    maphash.Seed
	sets    int // per shard
	ways    int
	tenants int
	policy  plru.Kind
	onEvict func(K, V)

	// quotaMu serializes quota changes (SetQuotas / Rebalance); shard
	// locks alone protect the per-shard mask copies.
	quotaMu sync.Mutex
	quotas  []int
}

// shard is one independently locked slice of the cache: sets×ways slots
// plus its own policy instance and UMON-style profiler.
type shard[K comparable, V any] struct {
	mu    sync.Mutex
	pol   plru.Policy
	keys  []K
	vals  []V
	owner []int16 // tenant that filled the slot, -1 when empty
	masks []plru.WayMask
	live  int
	stats []TenantStats
	prof  profiler[K]
	_     [8]uint64 // keep adjacent shards off one another's cache lines
}

// TenantStats counts one tenant's cache traffic.
type TenantStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // lines this tenant had inserted that were displaced
}

// add accumulates o into s.
func (s *TenantStats) add(o TenantStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
}

// HitRate returns Hits/(Hits+Misses), or 0 before any access.
func (s TenantStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// New builds a Cache from the options. The defaults are 1 shard, 64 sets,
// 8 ways, plru.BT replacement and a single tenant owning every way.
func New[K comparable, V any](opts ...Option) (*Cache[K, V], error) {
	s, err := newSettings(opts)
	if err != nil {
		return nil, err
	}
	var onEvict func(K, V)
	if s.onEvict != nil {
		fn, ok := s.onEvict.(func(K, V))
		if !ok {
			return nil, fmt.Errorf("cpacache: WithOnEvict callback is %T, want func(K, V) matching the cache's type parameters", s.onEvict)
		}
		onEvict = fn
	}
	c := &Cache[K, V]{
		shards:  make([]shard[K, V], s.shards),
		seed:    maphash.MakeSeed(),
		sets:    s.sets,
		ways:    s.ways,
		tenants: s.tenants,
		policy:  s.policy,
		onEvict: onEvict,
		quotas:  evenQuotas(s.tenants, s.ways),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.pol = plru.New(s.policy, s.sets, s.ways, s.tenants, s.seed+uint64(i))
		sh.keys = make([]K, s.sets*s.ways)
		sh.vals = make([]V, s.sets*s.ways)
		sh.owner = make([]int16, s.sets*s.ways)
		for j := range sh.owner {
			sh.owner[j] = -1
		}
		sh.masks = make([]plru.WayMask, s.tenants)
		sh.stats = make([]TenantStats, s.tenants)
		sh.prof.init(s.sets, s.ways, s.tenants, s.sampleEvery)
	}
	if err := c.SetQuotas(c.quotas); err != nil {
		return nil, err
	}
	return c, nil
}

// evenQuotas splits ways evenly, remainder to lower tenant ids (the Fair
// allocator's layout).
func evenQuotas(tenants, ways int) []int {
	q := make([]int, tenants)
	for i := range q {
		q[i] = ways / tenants
	}
	for i := 0; i < ways%tenants; i++ {
		q[i]++
	}
	return q
}

// locate splits a key's hash into a shard index and a set index.
func (c *Cache[K, V]) locate(key K) (*shard[K, V], int) {
	h := maphash.Comparable(c.seed, key)
	sh := &c.shards[h&uint64(len(c.shards)-1)]
	set := int((h >> 32) % uint64(c.sets))
	return sh, set
}

func (c *Cache[K, V]) checkTenant(tenant int) {
	if tenant < 0 || tenant >= c.tenants {
		panic(fmt.Sprintf("cpacache: tenant %d out of range [0,%d)", tenant, c.tenants))
	}
}

// Get looks up key on behalf of tenant 0.
func (c *Cache[K, V]) Get(key K) (V, bool) { return c.GetTenant(0, key) }

// Set inserts or updates key on behalf of tenant 0.
func (c *Cache[K, V]) Set(key K, value V) { c.SetTenant(0, key, value) }

// GetTenant looks up key on behalf of the given tenant. A hit refreshes
// the line's recency regardless of which tenant inserted it (hits are
// global, as in the paper); a miss only records stats and the profile —
// the caller decides whether to SetTenant the value afterwards.
func (c *Cache[K, V]) GetTenant(tenant int, key K) (V, bool) {
	c.checkTenant(tenant)
	sh, set := c.locate(key)
	base := set * c.ways

	sh.mu.Lock()
	sh.prof.record(set, tenant, key)
	for w := 0; w < c.ways; w++ {
		if sh.owner[base+w] >= 0 && sh.keys[base+w] == key {
			sh.stats[tenant].Hits++
			sh.pol.Touch(set, w, tenant)
			v := sh.vals[base+w]
			sh.mu.Unlock()
			return v, true
		}
	}
	sh.stats[tenant].Misses++
	sh.mu.Unlock()
	var zero V
	return zero, false
}

// SetTenant inserts or updates key on behalf of the given tenant. On
// insertion into a full set the victim is chosen by the replacement policy
// restricted to the tenant's way quota mask, so one tenant's fills can
// never displace more lines than its quota allows. The OnEvict callback,
// if configured, runs after the shard lock is released.
func (c *Cache[K, V]) SetTenant(tenant int, key K, value V) {
	c.checkTenant(tenant)
	sh, set := c.locate(key)
	base := set * c.ways

	var (
		evKey K
		evVal V
		ev    bool
	)
	sh.mu.Lock()
	// Update in place on a hit, wherever the line lives.
	way := -1
	for w := 0; w < c.ways; w++ {
		if sh.owner[base+w] >= 0 && sh.keys[base+w] == key {
			way = w
			break
		}
	}
	if way < 0 {
		mask := sh.masks[tenant]
		// Prefer an empty slot inside the tenant's own partition…
		for v := mask; v != 0; {
			w := v.Nth(0)
			v = v.Without(w)
			if sh.owner[base+w] < 0 {
				way = w
				break
			}
		}
		if way < 0 {
			// …then anywhere in the set: filling unowned empty ways does
			// not displace anyone, so quotas are not violated.
			for w := 0; w < c.ways; w++ {
				if sh.owner[base+w] < 0 {
					way = w
					break
				}
			}
		}
		if way < 0 {
			way = sh.pol.Victim(set, tenant, mask)
			evKey, evVal, ev = sh.keys[base+way], sh.vals[base+way], true
			sh.stats[sh.owner[base+way]].Evictions++
			sh.live--
		}
		sh.live++
	}
	sh.keys[base+way] = key
	sh.vals[base+way] = value
	sh.owner[base+way] = int16(tenant)
	sh.pol.Touch(set, way, tenant)
	sh.mu.Unlock()

	if ev && c.onEvict != nil {
		c.onEvict(evKey, evVal)
	}
}

// Delete removes key from the cache and reports whether it was present.
// Delete never triggers OnEvict (that callback is reserved for capacity
// evictions).
func (c *Cache[K, V]) Delete(key K) bool {
	sh, set := c.locate(key)
	base := set * c.ways
	var zeroK K
	var zeroV V

	sh.mu.Lock()
	defer sh.mu.Unlock()
	for w := 0; w < c.ways; w++ {
		if sh.owner[base+w] >= 0 && sh.keys[base+w] == key {
			sh.keys[base+w] = zeroK
			sh.vals[base+w] = zeroV
			sh.owner[base+w] = -1
			sh.live--
			return true
		}
	}
	return false
}

// Len returns the number of live entries across all shards.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.live
		sh.mu.Unlock()
	}
	return n
}

// Capacity returns the maximum number of entries (shards × sets × ways).
func (c *Cache[K, V]) Capacity() int { return len(c.shards) * c.sets * c.ways }

// Ways returns the per-set associativity.
func (c *Cache[K, V]) Ways() int { return c.ways }

// Sets returns the number of sets per shard.
func (c *Cache[K, V]) Sets() int { return c.sets }

// Shards returns the number of independently locked shards.
func (c *Cache[K, V]) Shards() int { return len(c.shards) }

// Tenants returns the number of partitions the cache was built with.
func (c *Cache[K, V]) Tenants() int { return c.tenants }

// Policy returns the replacement policy family in use.
func (c *Cache[K, V]) Policy() plru.Kind { return c.policy }

// Quotas returns a copy of the current per-tenant way quotas.
func (c *Cache[K, V]) Quotas() []int {
	c.quotaMu.Lock()
	defer c.quotaMu.Unlock()
	return append([]int(nil), c.quotas...)
}

// Stats returns per-tenant counters aggregated over all shards.
func (c *Cache[K, V]) Stats() []TenantStats {
	out := make([]TenantStats, c.tenants)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for t := range out {
			out[t].add(sh.stats[t])
		}
		sh.mu.Unlock()
	}
	return out
}

// SetQuotas installs per-tenant way quotas: quotas[t] ways for tenant t,
// each at least 1, summing to Ways(). Under the BT policy quotas that are
// all powers of two are laid out on aligned buddy blocks (realizable by
// the paper's up/down force vectors); any other layout falls back to
// contiguous masks, which every policy enforces through the Victim mask
// walk. Lines already resident outside their tenant's new partition stay
// readable (hits are global) and age out through replacement.
func (c *Cache[K, V]) SetQuotas(quotas []int) error {
	c.quotaMu.Lock()
	defer c.quotaMu.Unlock()
	return c.setQuotasLocked(quotas)
}

// setQuotasLocked installs quotas and their masks on every shard. The
// caller must hold quotaMu: holding it across the whole install keeps
// every shard on the same partition layout when quota changes race.
func (c *Cache[K, V]) setQuotasLocked(quotas []int) error {
	masks, err := c.masksFor(quotas)
	if err != nil {
		return err
	}
	c.quotas = append(c.quotas[:0], quotas...)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		copy(sh.masks, masks)
		sh.pol.SetPartition(masks)
		sh.mu.Unlock()
	}
	return nil
}

// masksFor validates quotas and converts them to per-tenant way masks.
func (c *Cache[K, V]) masksFor(quotas []int) ([]plru.WayMask, error) {
	if len(quotas) != c.tenants {
		return nil, fmt.Errorf("cpacache: got %d quotas for %d tenants", len(quotas), c.tenants)
	}
	alloc := cpapart.Allocation(quotas)
	if !alloc.Valid(c.ways) {
		return nil, fmt.Errorf("cpacache: quotas %v must each be >= 1 and sum to %d ways", quotas, c.ways)
	}
	if c.policy == plru.BT && allPowersOfTwo(quotas) {
		blocks, err := cpapart.BuddyLayout(quotas, c.ways)
		if err != nil {
			return nil, fmt.Errorf("cpacache: buddy layout: %w", err)
		}
		masks := make([]plru.WayMask, len(blocks))
		for i, b := range blocks {
			masks[i] = b.Mask()
		}
		return masks, nil
	}
	return cpapart.Masks(alloc, c.ways), nil
}

func allPowersOfTwo(qs []int) bool {
	for _, q := range qs {
		if q <= 0 || q&(q-1) != 0 {
			return false
		}
	}
	return true
}

// MissCurves returns, for every tenant, the predicted number of profiled
// misses as a function of assigned ways (index 0..Ways()), aggregated over
// every shard's sampled sets since the last Rebalance (or construction).
// The profile is fed by lookup traffic (GetTenant/Get); the usual
// Get-miss-then-Set flow is therefore counted exactly once per access.
// The curves are in sampled units — comparable across tenants, which is
// all the cpapart allocators need.
func (c *Cache[K, V]) MissCurves() [][]uint64 {
	curves := make([][]uint64, c.tenants)
	for t := range curves {
		curves[t] = make([]uint64, c.ways+1)
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.prof.addCurves(curves)
		sh.mu.Unlock()
	}
	return curves
}

// Rebalance recomputes the per-tenant quotas from the miss curves observed
// since the previous Rebalance, installs them, resets the profile for the
// next interval and returns the new quotas. It runs cpapart.MinMisses
// (exact DP), or cpapart.BuddyMinMisses under BT so the result stays
// realizable by force vectors — the paper's repartitioning step, with the
// profile interval chosen by the caller's Rebalance cadence. With a single
// tenant Rebalance is a no-op that still resets the profile.
func (c *Cache[K, V]) Rebalance() ([]int, error) {
	// quotaMu spans the whole profile-read + allocate + install cycle so
	// concurrent Rebalance/SetQuotas calls serialize as units (shard locks
	// are only ever taken inside quotaMu, never the other way around).
	c.quotaMu.Lock()
	defer c.quotaMu.Unlock()
	curves := c.MissCurves()
	var alloc cpapart.Allocation
	if c.tenants == 1 {
		alloc = cpapart.Allocation{c.ways}
	} else if c.policy == plru.BT {
		alloc = cpapart.BuddyMinMisses(curves, c.ways)
	} else {
		alloc = cpapart.MinMisses{}.Allocate(curves, c.ways)
	}
	if err := c.setQuotasLocked(alloc); err != nil {
		return nil, err
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.prof.reset()
		sh.mu.Unlock()
	}
	return alloc, nil
}
