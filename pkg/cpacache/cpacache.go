// Package cpacache is a generic, sharded, goroutine-safe in-process cache
// whose eviction engine is the pseudo-LRU policy machinery of
// repro/pkg/plru and whose multi-tenant quota enforcement is the
// way-partitioning scheme of Kedzierski et al., "Adapting cache
// partitioning algorithms to pseudo-LRU replacement policies" (IPDPS
// 2010): each tenant owns a quota of ways per set, enforced through
// replacement masks at victim-selection time, while hits remain global —
// exactly the paper's "global replacement masks" design, in software.
//
// A Cache is built with functional options:
//
//	c, err := cpacache.New[string, []byte](
//	        cpacache.WithShards(8),
//	        cpacache.WithSets(1024),
//	        cpacache.WithWays(16),
//	        cpacache.WithPolicy(plru.BT),
//	        cpacache.WithPartitions(3),
//	        cpacache.WithOnEvict(func(k string, v []byte) { pool.Put(v) }),
//	)
//
// Tenant quotas start as an even split and can be changed at any time with
// SetQuotas, or rebalanced online from the observed per-tenant hit curves
// with Rebalance, which runs the paper's partitioning algorithms (exact
// MinMisses, or the binary-buddy variant under BT) from repro/pkg/cpapart
// over stack-distance profiles sampled UMON-style on a subset of sets.
//
// All methods are safe for concurrent use and the per-operation hot
// paths perform no heap allocation. Set probes resolve through a packed
// per-set tag word (one hash byte per way, matched with branch-free SWAR
// scans — see tags.go) the way a hardware cache resolves a parallel tag
// match, falling back to full key comparison only on tag hits. Lookups
// of pointer-free key/value types take no lock at all: a per-set
// sequence word (a seqlock) validates the optimistic probe, recency is
// deferred through a lossy per-shard touch ring that writers drain —
// pseudo-LRU state tolerates late and dropped touches, which is the
// paper's premise — and hit/miss counters are striped per shard
// (lockfree.go, ring.go). Writers take exactly one shard mutex. GetBatch
// and SetBatch amortize per-key overheads, TTL expiry is driven by a
// hierarchical timing wheel that visits only due entries (lifecycle.go),
// and Rebalance reuses control-plane scratch so steady-state
// repartitioning stays allocation-free. WithImmediateRecency restores
// the fully locked, touch-on-hit data plane when exact eviction-order
// reproducibility matters more than read scalability.
package cpacache

import (
	"fmt"
	"hash/maphash"
	"math/bits"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/cpapart"
	"repro/pkg/plru"
)

// Cache is a sharded, set-associative, partition-aware in-process cache.
// The zero value is not usable; construct with New.
type Cache[K comparable, V any] struct {
	shards  []shard[K, V]
	seed    maphash.Seed
	sets    int // per shard
	ways    int
	tenants int
	policy  plru.Kind
	onEvict func(K, V)

	shardMask uint64 // len(shards)-1
	setMask   uint64 // sets-1 when sets is a power of two, else 0
	waysMask  uint64 // low `ways` bits set
	tagWords  int    // packed tag words per set
	setStride int    // words per set in shard.tags: 1 sequence word + tagWords

	// deferred is false only under WithImmediateRecency: hits then call
	// Touch under the shard lock instead of queueing on the touch ring.
	// lockFree additionally requires pointer-free K and V and a non-race
	// build; it routes unprofiled lookups through the seqlock path.
	deferred bool
	lockFree bool

	// batchPool recycles the per-call scratch of GetBatch/SetBatch so
	// steady-state batches do not allocate.
	batchPool sync.Pool

	// TTL state (lifecycle.go). The TTL clock is either the user's WithNow
	// function (nowFn non-nil) or a load of the coarse atomic the internal
	// clock goroutine advances — see now(), which inlines the common
	// atomic-load case. The clock is only consulted for slots whose
	// per-set ttl bit is set, so caches without TTLs never read it on the
	// hot path. ttlDefault is WithDefaultTTL in nanoseconds (0 = none);
	// tenantTTL[t] is the SetTenantDefaultTTL override (0 = use the
	// cache-wide default), read atomically on the Set path.
	ttlDefault int64
	tenantTTL  []atomic.Int64
	nowFn      func() int64
	coarse     atomic.Int64
	ttlArm     sync.Once

	// callbacks and cost accounting (type-asserted in New).
	onExpire func(K, V)
	costFn   func(K, V) uint64

	// background goroutine lifecycle (clock, sweeper, auto-rebalance).
	// bgMu orders goroutine spawns against Close: spawns check closed
	// under it, and Close flips closed under it before bg.Wait, so a
	// lazy TTL arm racing Close can neither trip the WaitGroup's
	// Add-during-Wait panic nor leak a goroutine past Close.
	stop          chan struct{}
	bg            sync.WaitGroup
	bgMu          sync.Mutex
	closed        bool
	sweepInterval time.Duration
	autoInterval  time.Duration

	// auto-rebalance hysteresis and lifecycle counters.
	hysteresis     float64
	minSamples     uint64
	sink           MetricsSink
	nRebalanced    atomic.Uint64
	nRebalanceSkip atomic.Uint64
	nSweepExpired  atomic.Uint64
	nSweepSkipped  atomic.Uint64

	// quotaMu serializes quota changes (SetQuotas / Rebalance / budget
	// updates); shard locks alone protect the per-shard mask copies. The
	// ctl* fields are control-plane scratch guarded by quotaMu: Rebalance
	// and SetQuotas reuse them so steady-state repartitioning does not
	// allocate. budgets holds the SetBudgets byte budgets (nil = none).
	quotaMu   sync.Mutex
	quotas    []int
	budgets   []uint64
	ctlCurves [][]uint64
	ctlAlloc  cpapart.Allocation
	ctlMasks  []plru.WayMask
	ctlBlocks []cpapart.Block
	ctlDP     cpapart.Scratch
	ctlCaps   []int
	ctlBytes  []uint64
	ctlBPW    []uint64

	// Policy auto-selection (autoselect.go). activeKinds is nil unless
	// WithPolicyAutoSelect was given; polByTenant[t] indexes activeKinds
	// and is guarded by quotaMu (the per-shard routing copies live in
	// shard.multi.byTenant). The ctlShadow* slices are decision scratch.
	activeKinds   []plru.Kind
	polByTenant   []int
	ctlShadowHits [][]uint64
	ctlShadowAcc  []uint64
	nPolSwitch    atomic.Uint64

	// Memory governor (governor.go). gaugeTenant/gaugeTotal are atomic
	// mirrors of the per-shard TenantStats.Bytes parts, updated under the
	// shard locks at the same points, so admission and the watermark
	// ladder read cross-shard totals without sweeping every shard.
	// budgetAtomic mirrors the SetBudgets values so the write hot path
	// never takes quotaMu. maxBytes/hardBudgets are immutable after New;
	// highBytes/lowBytes are the watermark thresholds in bytes (0 =
	// ladder off); pressure holds the current PressureState, transitions
	// serialized by pressureMu.
	maxBytes          uint64
	hardBudgets       bool
	highBytes         uint64
	lowBytes          uint64
	gaugeTenant       []atomic.Int64
	gaugeTotal        atomic.Int64
	budgetAtomic      []atomic.Uint64
	pressure          atomic.Int32
	pressureMu        sync.Mutex
	nBudgetEvict      atomic.Uint64
	nBudgetEvictBytes atomic.Uint64
}

// shard is one independently locked slice of the cache: sets×ways slots
// plus its own policy instance, touch ring, TTL wheel and UMON-style
// profiler. The slices read by the lock-free lookup (tags, keys, vals,
// ttl, deadline) are allocated before the cache is visible and never
// reallocated, so a reader can never observe a torn slice header.
type shard[K comparable, V any] struct {
	mu sync.Mutex
	// pol is the shard's policy instance; under WithPolicyAutoSelect it
	// aliases the base-kind instance in multi and the data plane routes
	// through the pol* methods (autoselect.go) instead. shadow is the
	// candidate-scoring directory, nil unless auto-selection is on.
	pol    policyRef
	multi  *multiPol
	shadow *shadowDir
	tags   []uint64 // setStride words per set: sequence word + packed tag bytes (tags.go)
	keys   []K
	vals   []V
	owner  []int16 // tenant that filled the slot, -1 when empty
	masks  []plru.WayMask
	live   atomic.Int64 // written under mu, read lock-free by Len
	stats  []TenantStats
	prof   profiler[K]

	// hm is the striped hit/miss plane: one cache-line-padded cell per
	// tenant, bumped with plain increments by every lookup path and
	// merged into TenantStats by Stats/Snapshot. Plain, not atomic, by
	// design: an uncontended LOCK-prefixed add costs more than the whole
	// SWAR probe, and a lost increment under simultaneous same-cell
	// updates only nudges a monotonic gauge. Locked lookups are mutex-
	// ordered (so race builds, where the lock-free path is off, see no
	// race), and single-threaded executions count exactly.
	hm []hmCell

	// Deferred recency (ring.go): touchRing/touchHead are the lock-free
	// producer side (slot words are plain — see ring.go for why that is
	// safe); touchDrained and touchScratch belong to the drainer, under
	// mu. touchRing is nil under WithImmediateRecency.
	touchRing    []uint64
	touchMask    uint64
	touchHead    uint64
	touchDrained uint64
	touchScratch []plru.TouchRec

	// TTL state: ttl[set] has bit w set iff the slot at (set, way w)
	// carries a deadline, so the hot path pays one word test before ever
	// loading a deadline; deadline[slot] is the expiry instant in the
	// cache clock's nanoseconds (meaningful only when the bit is set).
	// Writers store ttl words with atomic.StoreUint64 so the lock-free
	// reader's acquire load synchronizes with the (lock-ordered)
	// deadline-array allocation before it ever dereferences the array.
	ttl      []uint64
	deadline []int64
	// cost[slot] is the WithCost measurement taken at fill time (nil
	// when cost accounting is off). wheel is the hierarchical TTL
	// timing wheel (lifecycle.go), allocated on first TTL use; all its
	// state is guarded by mu.
	cost  []uint64
	wheel *ttlWheel

	_ [8]uint64 // keep adjacent shards off one another's cache lines
}

// hmCell is one tenant's hit/miss counters, padded to a cache line so
// tenants hammering different counters from different cores do not
// false-share (the per-shard striping keeps cores mostly on their own
// shard's cells already). See the shard.hm comment for why the fields
// are plain words; readers aggregate them with atomic loads.
type hmCell struct {
	hits   uint64
	misses uint64
	_      [6]uint64
}

// seqBase returns the index of the set's sequence word in sh.tags.
func (c *Cache[K, V]) seqBase(set int) int { return set * c.setStride }

// tagBase returns the index of the set's first packed tag word in
// sh.tags (one past the sequence word).
func (c *Cache[K, V]) tagBase(set int) int { return set*c.setStride + 1 }

// beginSetWrite/endSetWrite bracket a mutation of the set's slots with
// seqlock increments: odd while inconsistent, even when done. Caller
// holds sh.mu; sbase is seqBase(set).
func (sh *shard[K, V]) beginSetWrite(sbase int) { atomic.AddUint64(&sh.tags[sbase], 1) }
func (sh *shard[K, V]) endSetWrite(sbase int)   { atomic.AddUint64(&sh.tags[sbase], 1) }

// setTag stores the tag byte of `way` into the set's packed tag words
// rooted at tbase (= tagBase(set)).
func (sh *shard[K, V]) setTag(tbase, way int, tag uint8) {
	shift := uint(way&7) * 8
	w := &sh.tags[tbase+way>>3]
	*w = *w&^(0xFF<<shift) | uint64(tag)<<shift
}

// setTTLBits stores the set's ttl word with release semantics — see the
// shard.ttl field comment for why plain stores are not enough.
func (sh *shard[K, V]) setTTLBits(set int, w uint64) {
	atomic.StoreUint64(&sh.ttl[set], w)
}

// TenantStats counts one tenant's cache traffic. Hits, Misses, Evictions
// and Expirations are monotonic counters; Bytes is a gauge of the
// tenant's currently resident cost (only maintained under WithCost).
type TenantStats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64 // lines this tenant had inserted that were displaced live
	Expirations uint64 // lines this tenant had inserted that were reclaimed after their TTL
	// BudgetEvictions counts lines this tenant had inserted that the
	// memory governor evicted to satisfy a hard byte budget (governor.go)
	// — displacement the byte envelope forced, distinct from the
	// capacity Evictions a full set forces.
	BudgetEvictions uint64
	Bytes           uint64 // resident WithCost total for lines this tenant inserted
}

// add accumulates o into s (per-shard Bytes parts sum to the gauge).
func (s *TenantStats) add(o TenantStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Expirations += o.Expirations
	s.BudgetEvictions += o.BudgetEvictions
	s.Bytes += o.Bytes
}

// HitRate returns Hits/(Hits+Misses), or 0 before any access.
func (s TenantStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// New builds a Cache from the options. The defaults are 1 shard, 64 sets,
// 8 ways, plru.BT replacement and a single tenant owning every way.
//
// Caches built with background features — a default TTL or SetTTL use
// (clock + sweeper goroutines) or WithAutoRebalance (ticker goroutine) —
// should be released with Close when no longer needed.
func New[K comparable, V any](opts ...Option) (*Cache[K, V], error) {
	s, err := newSettings(opts)
	if err != nil {
		return nil, err
	}
	var onEvict, onExpire func(K, V)
	var costFn func(K, V) uint64
	if s.onEvict != nil {
		fn, ok := s.onEvict.(func(K, V))
		if !ok {
			return nil, fmt.Errorf("cpacache: WithOnEvict callback is %T, want func(K, V) matching the cache's type parameters", s.onEvict)
		}
		onEvict = fn
	}
	if s.onExpire != nil {
		fn, ok := s.onExpire.(func(K, V))
		if !ok {
			return nil, fmt.Errorf("cpacache: WithOnExpire callback is %T, want func(K, V) matching the cache's type parameters", s.onExpire)
		}
		onExpire = fn
	}
	if s.costFn != nil {
		fn, ok := s.costFn.(func(K, V) uint64)
		if !ok {
			return nil, fmt.Errorf("cpacache: WithCost function is %T, want func(K, V) uint64 matching the cache's type parameters", s.costFn)
		}
		costFn = fn
	}
	c := &Cache[K, V]{
		shards:        make([]shard[K, V], s.shards),
		seed:          maphash.MakeSeed(),
		sets:          s.sets,
		ways:          s.ways,
		tenants:       s.tenants,
		policy:        s.policy,
		onEvict:       onEvict,
		onExpire:      onExpire,
		costFn:        costFn,
		shardMask:     uint64(s.shards - 1),
		waysMask:      uint64(plru.Full(s.ways)),
		tagWords:      tagWordsFor(s.ways),
		setStride:     setStrideFor(s.ways),
		deferred:      !s.immediate,
		quotas:        evenQuotas(s.tenants, s.ways),
		ttlDefault:    int64(s.defaultTTL),
		stop:          make(chan struct{}),
		sweepInterval: s.sweepInterval,
		autoInterval:  s.autoRebalance,
		hysteresis:    s.hysteresis,
		minSamples:    s.minSamples,
		sink:          s.sink,
		maxBytes:      s.maxBytes,
		hardBudgets:   s.hardBudgets,
	}
	if costFn != nil {
		c.gaugeTenant = make([]atomic.Int64, s.tenants)
		c.budgetAtomic = make([]atomic.Uint64, s.tenants)
	}
	if s.maxBytes > 0 {
		hi, lo := s.highMark, s.lowMark
		if hi == 0 && lo == 0 {
			hi, lo = defaultHighWatermark, defaultLowWatermark
		}
		c.highBytes = uint64(float64(s.maxBytes) * hi)
		c.lowBytes = uint64(float64(s.maxBytes) * lo)
		// Degenerate tiny caps still get a working ladder: high >= 1 so
		// OOM is reachable, low < high so OOM is escapable.
		if c.highBytes == 0 {
			c.highBytes = 1
		}
		if c.lowBytes >= c.highBytes {
			c.lowBytes = c.highBytes - 1
		}
	}
	// The optimistic read path hands plain loads of keys and values to
	// the sequence check for validation; that is only crash- and GC-safe
	// when neither type contains pointers (see lockfree.go). Race builds
	// keep the locked path so the detector never sees the benign races.
	c.lockFree = c.deferred && !raceEnabled &&
		pointerFree(reflect.TypeFor[K]()) && pointerFree(reflect.TypeFor[V]())
	if s.nowFn != nil {
		c.nowFn = s.nowFn
	} else {
		c.coarse.Store(time.Now().UnixNano())
	}
	if s.sets&(s.sets-1) == 0 {
		c.setMask = uint64(s.sets - 1)
	}
	c.tenantTTL = make([]atomic.Int64, s.tenants)
	c.ctlCurves = make([][]uint64, s.tenants)
	curveBuf := make([]uint64, s.tenants*(s.ways+1))
	for t := range c.ctlCurves {
		c.ctlCurves[t] = curveBuf[t*(s.ways+1) : (t+1)*(s.ways+1)]
	}
	c.ctlMasks = make([]plru.WayMask, s.tenants)
	if s.autoselect {
		c.activeKinds = s.candidates
		c.polByTenant = make([]int, s.tenants)
		baseIdx := 0
		for i, k := range c.activeKinds {
			if k == s.policy {
				baseIdx = i
			}
		}
		for t := range c.polByTenant {
			c.polByTenant[t] = baseIdx
		}
		c.ctlShadowHits = make([][]uint64, len(c.activeKinds))
		for k := range c.ctlShadowHits {
			c.ctlShadowHits[k] = make([]uint64, s.tenants)
		}
		c.ctlShadowAcc = make([]uint64, s.tenants)
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.pol = newPolicyRef(s.policy, s.sets, s.ways, s.tenants, s.seed+uint64(i))
		sh.tags = make([]uint64, s.sets*c.setStride)
		sh.keys = make([]K, s.sets*s.ways)
		sh.vals = make([]V, s.sets*s.ways)
		sh.owner = make([]int16, s.sets*s.ways)
		for j := range sh.owner {
			sh.owner[j] = -1
		}
		sh.masks = make([]plru.WayMask, s.tenants)
		sh.stats = make([]TenantStats, s.tenants)
		sh.hm = make([]hmCell, s.tenants)
		if c.deferred {
			sh.touchRing = make([]uint64, s.touchBuffer)
			sh.touchMask = uint64(s.touchBuffer - 1)
			sh.touchScratch = make([]plru.TouchRec, 0, s.touchBuffer)
		}
		// One TTL word per set is always present (the hot path tests it
		// unconditionally); the sets×ways deadline array and the timing
		// wheel are allocated lazily by armTTL, so TTL-free caches never
		// carry them.
		sh.ttl = make([]uint64, s.sets)
		if costFn != nil {
			sh.cost = make([]uint64, s.sets*s.ways)
		}
		sh.prof.init(s.sets, s.ways, s.tenants, s.sampleEvery)
		if s.autoselect {
			baseIdx := c.polByTenant[0]
			sh.multi = newMultiPol(c.activeKinds, baseIdx, s.sets, s.ways, s.tenants, s.seed+uint64(i))
			sh.pol = sh.multi.pols[baseIdx]
			sh.shadow = newShadowDir(c.activeKinds, sh.prof.sampledCount, s.tenants, s.ways, s.seed+uint64(i))
		}
	}
	if err := c.SetQuotas(c.quotas); err != nil {
		return nil, err
	}
	if c.ttlDefault > 0 {
		c.armTTL()
	}
	if c.autoInterval > 0 {
		c.goBG(c.autoRebalanceLoop)
	}
	return c, nil
}

// evenQuotas splits ways evenly, remainder to lower tenant ids (the Fair
// allocator's layout).
func evenQuotas(tenants, ways int) []int {
	q := make([]int, tenants)
	for i := range q {
		q[i] = ways / tenants
	}
	for i := 0; i < ways%tenants; i++ {
		q[i]++
	}
	return q
}

// setOf maps a key hash to a set index, with a mask instead of a modulo
// when the set count is a power of two (the common geometry).
func (c *Cache[K, V]) setOf(h uint64) int {
	if c.setMask != 0 {
		return int((h >> 32) & c.setMask)
	}
	return int((h >> 32) % uint64(c.sets))
}

// locate splits a key's hash into its shard, set index and tag byte.
func (c *Cache[K, V]) locate(key K) (*shard[K, V], int, uint8) {
	h := maphash.Comparable(c.seed, key)
	return &c.shards[h&c.shardMask], c.setOf(h), tagOf(h)
}

func (c *Cache[K, V]) checkTenant(tenant int) {
	if tenant < 0 || tenant >= c.tenants {
		panic(fmt.Sprintf("cpacache: tenant %d out of range [0,%d)", tenant, c.tenants))
	}
}

// findLocked resolves key within one set using the packed tag words: only
// ways whose tag byte matches are confirmed with a full key comparison.
// Returns the way index or -1. Caller holds sh.mu.
func (c *Cache[K, V]) findLocked(sh *shard[K, V], base, tbase int, tag uint8, key K) int {
	for j := 0; j < c.tagWords; j++ {
		for m := matchTag(sh.tags[tbase+j], tag); m != 0; m &= m - 1 {
			w := j*8 + markWay(bits.TrailingZeros64(m))
			if sh.keys[base+w] == key {
				return w
			}
		}
	}
	return -1
}

// emptyWaysLocked returns the mask of empty ways of the set rooted at
// tbase, from a zero-byte scan of the packed tag words. Caller holds sh.mu.
func (c *Cache[K, V]) emptyWaysLocked(sh *shard[K, V], tbase int) uint64 {
	e := uint64(0)
	for j := 0; j < c.tagWords; j++ {
		e |= byteMarksToBits(zeroBytes(sh.tags[tbase+j])) << (8 * j)
	}
	return e & c.waysMask
}

// Get looks up key on behalf of tenant 0.
func (c *Cache[K, V]) Get(key K) (V, bool) { return c.GetTenant(0, key) }

// Set inserts or updates key on behalf of tenant 0. The error is always
// nil unless a hard byte limit is configured — see SetTenant.
func (c *Cache[K, V]) Set(key K, value V) error { return c.SetTenant(0, key, value) }

// GetTenant looks up key on behalf of the given tenant. A hit refreshes
// the line's recency regardless of which tenant inserted it (hits are
// global, as in the paper); a miss only records stats and the profile —
// the caller decides whether to SetTenant the value afterwards.
//
// For pointer-free K and V the common case takes no lock: the probe is
// validated by the set's sequence word and the recency update is
// deferred through the shard's touch ring (drained by the next writer).
// Lookups that land on a profiled set, race a writer past the retry
// budget, or find a lapsed TTL fall back to the shard mutex; under
// WithImmediateRecency every lookup takes it.
func (c *Cache[K, V]) GetTenant(tenant int, key K) (V, bool) {
	c.checkTenant(tenant)
	h := maphash.Comparable(c.seed, key)
	sh := &c.shards[h&c.shardMask]
	set := c.setOf(h)
	tag := tagOf(h)
	if c.lockFree && !sh.prof.isSampled(set) {
		if v, ok, done := c.getNoLock(sh, set, tenant, tag, key); done {
			return v, ok
		}
	}
	return c.getLocked(sh, set, tenant, tag, key)
}

// getLocked is the mutex-guarded lookup: the original data plane, and
// the fallback for everything the optimistic path cannot do — profile
// recording, expired-line reclamation, contended retries, pointerful
// types and race builds.
func (c *Cache[K, V]) getLocked(sh *shard[K, V], set, tenant int, tag uint8, key K) (V, bool) {
	base := set * c.ways
	tbase := c.tagBase(set)

	sh.mu.Lock()
	if sh.prof.isSampled(set) {
		sh.prof.record(set, tenant, key)
		if sh.shadow != nil {
			sh.shadow.access(int(sh.prof.slot[set]), tenant, tag)
		}
	}
	// Probe is inlined here (not findLocked) to keep the path free of
	// call overhead: one SWAR match per tag word, then key-confirm. The
	// TTL test costs one word load when the slot carries no deadline; the
	// clock is only consulted when it does.
	for j := 0; j < c.tagWords; j++ {
		for m := matchTag(sh.tags[tbase+j], tag); m != 0; m &= m - 1 {
			w := j*8 + markWay(bits.TrailingZeros64(m))
			if sh.keys[base+w] == key {
				if sh.ttl[set]&(1<<uint(w)) != 0 && sh.deadline[base+w] <= c.now() {
					// Reclamation mutates policy state: pending ring
					// records precede this access in program order, so
					// they apply before the Invalidate.
					c.drainTouches(sh)
					exK, exV := c.expireLocked(sh, set, w)
					sh.hm[tenant].misses++
					sh.mu.Unlock()
					if c.onExpire != nil {
						c.onExpire(exK, exV)
					}
					c.checkPressure()
					var zero V
					return zero, false
				}
				sh.hm[tenant].hits++
				c.touchOrPush(sh, set, w, tenant)
				v := sh.vals[base+w]
				sh.mu.Unlock()
				return v, true
			}
		}
	}
	sh.hm[tenant].misses++
	sh.mu.Unlock()
	var zero V
	return zero, false
}

// displaced-entry kinds returned by setLocked.
const (
	evNone    = iota // nothing displaced
	evictLive        // a live line was displaced (route to OnEvict)
	evictTTL         // the displaced line's TTL had lapsed (route to OnExpire)
)

// setLocked inserts or updates key in its set with the given expiry
// deadline (0 = none) and precomputed WithCost measurement (ignored
// unless cost accounting is on), returning the displaced entry and its
// kind if the fill displaced one, plus the way the line landed in (so
// budget enforcement can protect it from its own write). Caller holds
// sh.mu and must run the matching callback (OnEvict for evictLive,
// OnExpire for evictTTL) after releasing it. An update whose old line
// already expired surfaces the old value as an expiration rather than
// silently overwriting it, so expired values never vanish uncounted.
func (c *Cache[K, V]) setLocked(sh *shard[K, V], set, tenant int, tag uint8, key K, value V, deadline int64, cost uint64) (evKey K, evVal V, kind int, way int) {
	base := set * c.ways
	tbase := c.tagBase(set)
	way = c.findLocked(sh, base, tbase, tag, key)
	update := way >= 0
	if update {
		// In-place update of the resident line.
		if sh.ttl[set]&(1<<uint(way)) != 0 && sh.deadline[base+way] <= c.now() {
			evKey, evVal, kind = sh.keys[base+way], sh.vals[base+way], evictTTL
			sh.stats[sh.owner[base+way]].Expirations++
		}
		if sh.cost != nil {
			sh.stats[sh.owner[base+way]].Bytes -= sh.cost[base+way]
			c.gaugeSub(sh.owner[base+way], sh.cost[base+way])
		}
	} else {
		// One zero-byte pass over the tag words finds every empty way:
		// prefer one inside the tenant's own partition, then anywhere in
		// the set — filling unowned empty ways does not displace anyone,
		// so quotas are not violated.
		empty := c.emptyWaysLocked(sh, tbase)
		pick := empty & uint64(sh.masks[tenant])
		if pick == 0 {
			pick = empty
		}
		if pick != 0 {
			way = bits.TrailingZeros64(pick)
			sh.live.Add(1)
		} else {
			// Like empty ways, already-expired lines displace nobody:
			// prefer one inside the tenant's partition, then anywhere in
			// the set, before asking the policy to evict a live line.
			// The scan costs nothing when no way carries a deadline.
			if marked := sh.ttl[set] & c.waysMask; marked != 0 {
				now := c.now()
				var lapsed uint64
				for e := marked; e != 0; e &= e - 1 {
					w := bits.TrailingZeros64(e)
					if sh.deadline[base+w] <= now {
						lapsed |= 1 << uint(w)
					}
				}
				if pick := lapsed & uint64(sh.masks[tenant]); pick != 0 {
					way = bits.TrailingZeros64(pick)
				} else if lapsed != 0 {
					way = bits.TrailingZeros64(lapsed)
				}
			}
			if way >= 0 {
				evKey, evVal, kind = sh.keys[base+way], sh.vals[base+way], evictTTL
				sh.stats[sh.owner[base+way]].Expirations++
			} else {
				// Eviction replaces a live line with a live line: the
				// counter is unchanged, so no atomic touches the churn
				// path. A victim whose TTL lapsed between the scan above
				// and here cannot exist (we hold the lock), but a line
				// with a future deadline is still live — Evictions.
				// Victim selection is the one write step that reads
				// recency, so pending deferred touches apply here —
				// updates and empty-way fills never pay a drain.
				c.drainTouches(sh)
				way = sh.polVictim(set, tenant, sh.masks[tenant])
				evKey, evVal, kind = sh.keys[base+way], sh.vals[base+way], evictLive
				sh.stats[sh.owner[base+way]].Evictions++
			}
			if sh.cost != nil {
				sh.stats[sh.owner[base+way]].Bytes -= sh.cost[base+way]
				c.gaugeSub(sh.owner[base+way], sh.cost[base+way])
			}
		}
	}
	sbase := c.seqBase(set)
	sh.beginSetWrite(sbase)
	sh.keys[base+way] = key
	sh.vals[base+way] = value
	sh.owner[base+way] = int16(tenant)
	sh.setTag(tbase, way, tag)
	if deadline != 0 {
		sh.setTTLBits(set, sh.ttl[set]|1<<uint(way))
		atomic.StoreInt64(&sh.deadline[base+way], deadline)
		sh.wheel.schedule(int32(base+way), deadline)
	} else {
		if sh.ttl[set]&(1<<uint(way)) != 0 {
			sh.setTTLBits(set, sh.ttl[set]&^(1<<uint(way)))
			sh.wheel.unlink(int32(base + way))
		}
	}
	sh.endSetWrite(sbase)
	// The access's own recency record joins the deferred queue when
	// records are pending, so every update — hit, update-in-place or new
	// fill — reaches the policy in program order. Updates of a resident
	// line are recency hits (Touch); everything else installed a new
	// line, which the policy must see as a Fill carrying the line's tag
	// byte as its signature (AWRP resets its frequency on it, ARC probes
	// its ghost rings with it).
	if update {
		c.touchOrPush(sh, set, way, tenant)
	} else {
		c.fillOrPush(sh, set, way, tenant, tag)
	}
	if sh.cost != nil {
		sh.cost[base+way] = cost
		sh.stats[tenant].Bytes += cost
		c.gaugeAdd(int16(tenant), cost)
	}
	return evKey, evVal, kind, way
}

// SetTenant inserts or updates key on behalf of the given tenant. On
// insertion into a full set the victim is chosen by the replacement policy
// restricted to the tenant's way quota mask, so one tenant's fills can
// never displace more lines than its quota allows. The entry receives the
// cache's default TTL, if one is configured (override per entry with
// SetTenantTTL or SetTTL). The OnEvict/OnExpire callbacks, if configured,
// run after the shard lock is released.
//
// Under a hard byte limit (WithMaxBytes, or WithHardBudgets + SetBudgets)
// the write additionally evicts until the budgets fit — see governor.go —
// and an entry whose cost alone exceeds its budget is rejected with
// ErrEntryTooLarge. Without hard limits the error is always nil.
func (c *Cache[K, V]) SetTenant(tenant int, key K, value V) error {
	c.checkTenant(tenant)
	return c.setWithDeadline(tenant, key, value, c.defaultDeadline(tenant))
}

// displaced routes one setLocked result to the matching callback. Called
// after the shard lock is released.
func (c *Cache[K, V]) displaced(evKey K, evVal V, kind int) {
	switch kind {
	case evictLive:
		if c.onEvict != nil {
			c.onEvict(evKey, evVal)
		}
	case evictTTL:
		if c.onExpire != nil {
			c.onExpire(evKey, evVal)
		}
	}
}

// Delete removes key from the cache and reports whether it was present
// and live. The freed way's tag byte is cleared and the replacement
// policy's recency state for it invalidated, so the slot is both reusable
// by the next fill and first in line for victim selection. Delete never
// triggers OnEvict (that callback is reserved for capacity evictions);
// deleting a key whose TTL already lapsed reclaims it as an expiration
// and returns false, exactly as if the sweeper had gotten there first.
func (c *Cache[K, V]) Delete(key K) bool {
	sh, set, tag := c.locate(key)
	base := set * c.ways
	tbase := c.tagBase(set)

	sh.mu.Lock()
	c.drainTouches(sh) // Invalidate consults recency; apply pending first
	w := c.findLocked(sh, base, tbase, tag, key)
	if w < 0 {
		sh.mu.Unlock()
		return false
	}
	if sh.ttl[set]&(1<<uint(w)) != 0 && sh.deadline[base+w] <= c.now() {
		exK, exV := c.expireLocked(sh, set, w)
		sh.mu.Unlock()
		if c.onExpire != nil {
			c.onExpire(exK, exV)
		}
		c.checkPressure()
		return false
	}
	c.clearSlotLocked(sh, set, w)
	sh.mu.Unlock()
	c.checkPressure()
	return true
}

// clearSlotLocked empties the slot at (set, way): key/value zeroed, owner
// released, tag byte cleared, TTL bit dropped, cost refunded and the
// policy's recency invalidated. Caller holds sh.mu.
func (c *Cache[K, V]) clearSlotLocked(sh *shard[K, V], set, way int) {
	base := set * c.ways
	var zeroK K
	var zeroV V
	if sh.cost != nil {
		// The gauge decrement happens here, under the shard lock and
		// before any OnEvict/OnExpire callback for this line can run, so
		// a Snapshot racing the reclaim counts the departing bytes
		// exactly once (in the gauge until this instant, never after).
		sh.stats[sh.owner[base+way]].Bytes -= sh.cost[base+way]
		c.gaugeSub(sh.owner[base+way], sh.cost[base+way])
		sh.cost[base+way] = 0
	}
	sbase := c.seqBase(set)
	sh.beginSetWrite(sbase)
	sh.keys[base+way] = zeroK
	sh.vals[base+way] = zeroV
	sh.owner[base+way] = -1
	sh.setTag(c.tagBase(set), way, tagEmpty)
	if sh.ttl[set]&(1<<uint(way)) != 0 {
		sh.setTTLBits(set, sh.ttl[set]&^(1<<uint(way)))
		sh.wheel.unlink(int32(base + way))
	}
	sh.endSetWrite(sbase)
	sh.polInvalidate(set, way)
	sh.live.Add(-1)
}

// expireLocked reclaims the expired slot at (set, way), counting the
// expiration against the tenant that inserted it, and returns the expired
// pair for the caller to hand to OnExpire outside the lock. Caller holds
// sh.mu and must have checked the deadline.
func (c *Cache[K, V]) expireLocked(sh *shard[K, V], set, way int) (K, V) {
	base := set * c.ways
	k, v := sh.keys[base+way], sh.vals[base+way]
	sh.stats[sh.owner[base+way]].Expirations++
	c.clearSlotLocked(sh, set, way)
	return k, v
}

// Len returns the number of live entries across all shards. It reads each
// shard's counter atomically without taking its lock, so the result is a
// consistent per-shard (not cross-shard) snapshot — O(shards), no probe.
func (c *Cache[K, V]) Len() int {
	var n int64
	for i := range c.shards {
		n += c.shards[i].live.Load()
	}
	return int(n)
}

// Capacity returns the maximum number of entries (shards × sets × ways).
func (c *Cache[K, V]) Capacity() int { return len(c.shards) * c.sets * c.ways }

// Ways returns the per-set associativity.
func (c *Cache[K, V]) Ways() int { return c.ways }

// Sets returns the number of sets per shard.
func (c *Cache[K, V]) Sets() int { return c.sets }

// Shards returns the number of independently locked shards.
func (c *Cache[K, V]) Shards() int { return len(c.shards) }

// Tenants returns the number of partitions the cache was built with.
func (c *Cache[K, V]) Tenants() int { return c.tenants }

// Policy returns the replacement policy family the cache was built
// with. Under WithPolicyAutoSelect individual tenants may have been
// switched away from it — see TenantPolicies.
func (c *Cache[K, V]) Policy() plru.Kind { return c.policy }

// TenantPolicies returns the replacement policy currently serving each
// tenant. Without WithPolicyAutoSelect every tenant uses the base
// policy; with it, the auto-selector may have switched tenants to the
// candidate their profiled traffic scores best.
func (c *Cache[K, V]) TenantPolicies() []plru.Kind {
	out := make([]plru.Kind, c.tenants)
	c.quotaMu.Lock()
	for t := range out {
		if c.activeKinds != nil {
			out[t] = c.activeKinds[c.polByTenant[t]]
		} else {
			out[t] = c.policy
		}
	}
	c.quotaMu.Unlock()
	return out
}

// Quotas returns a copy of the current per-tenant way quotas.
func (c *Cache[K, V]) Quotas() []int {
	c.quotaMu.Lock()
	defer c.quotaMu.Unlock()
	return append([]int(nil), c.quotas...)
}

// Stats returns per-tenant counters aggregated over all shards. Hits and
// misses live on the striped atomic plane (updated without the shard
// lock); evictions, expirations and bytes are read under each shard's
// lock, so the result is per-shard (not cross-shard) consistent.
func (c *Cache[K, V]) Stats() []TenantStats {
	out := make([]TenantStats, c.tenants)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for t := range out {
			out[t].add(sh.stats[t])
			out[t].Hits += atomic.LoadUint64(&sh.hm[t].hits)
			out[t].Misses += atomic.LoadUint64(&sh.hm[t].misses)
		}
		sh.mu.Unlock()
	}
	return out
}

// SetQuotas installs per-tenant way quotas: quotas[t] ways for tenant t,
// each at least 1, summing to Ways(). Under the BT policy quotas that are
// all powers of two are laid out on aligned buddy blocks (realizable by
// the paper's up/down force vectors); any other layout falls back to
// contiguous masks, which every policy enforces through the Victim mask
// walk. Lines already resident outside their tenant's new partition stay
// readable (hits are global) and age out through replacement.
func (c *Cache[K, V]) SetQuotas(quotas []int) error {
	c.quotaMu.Lock()
	defer c.quotaMu.Unlock()
	return c.setQuotasLocked(quotas)
}

// setQuotasLocked installs quotas and their masks on every shard. The
// caller must hold quotaMu: holding it across the whole install keeps
// every shard on the same partition layout when quota changes race, and
// guards the ctl* scratch the mask computation reuses.
func (c *Cache[K, V]) setQuotasLocked(quotas []int) error {
	masks, err := c.masksForLocked(quotas)
	if err != nil {
		return err
	}
	c.quotas = append(c.quotas[:0], quotas...)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		// Pending touches apply under the outgoing masks (NRU scopes its
		// used-bit reset by them), exactly as immediate touches would.
		c.drainTouches(sh)
		copy(sh.masks, masks)
		sh.polSetPartition(masks)
		sh.mu.Unlock()
	}
	return nil
}

// masksForLocked validates quotas and converts them to per-tenant way
// masks held in the ctlMasks scratch. The caller must hold quotaMu.
func (c *Cache[K, V]) masksForLocked(quotas []int) ([]plru.WayMask, error) {
	if len(quotas) != c.tenants {
		return nil, fmt.Errorf("cpacache: got %d quotas for %d tenants", len(quotas), c.tenants)
	}
	alloc := cpapart.Allocation(quotas)
	if !alloc.Valid(c.ways) {
		return nil, fmt.Errorf("cpacache: quotas %v must each be >= 1 and sum to %d ways", quotas, c.ways)
	}
	if c.policy == plru.BT && allPowersOfTwo(quotas) {
		blocks, err := cpapart.BuddyLayoutInto(c.ctlBlocks, &c.ctlDP, quotas, c.ways)
		if err != nil {
			return nil, fmt.Errorf("cpacache: buddy layout: %w", err)
		}
		c.ctlBlocks = blocks
		for i, b := range blocks {
			c.ctlMasks[i] = b.Mask()
		}
		return c.ctlMasks, nil
	}
	c.ctlMasks = cpapart.MasksInto(c.ctlMasks, alloc, c.ways)
	return c.ctlMasks, nil
}

func allPowersOfTwo(qs []int) bool {
	for _, q := range qs {
		if q <= 0 || q&(q-1) != 0 {
			return false
		}
	}
	return true
}

// MissCurves returns, for every tenant, the predicted number of profiled
// misses as a function of assigned ways (index 0..Ways()), aggregated over
// every shard's sampled sets since the last Rebalance (or construction).
// The profile is fed by lookup traffic (GetTenant/Get); the usual
// Get-miss-then-Set flow is therefore counted exactly once per access.
// The curves are in sampled units — comparable across tenants, which is
// all the cpapart allocators need.
func (c *Cache[K, V]) MissCurves() [][]uint64 {
	curves := make([][]uint64, c.tenants)
	for t := range curves {
		curves[t] = make([]uint64, c.ways+1)
	}
	c.missCurvesInto(curves, false)
	return curves
}

// missCurvesInto aggregates every shard's profile into curves, which must
// be tenants rows of ways+1 and is zeroed first. With try set the shard
// locks are only TryLock'd — the auto-rebalance backpressure mode — and
// the aggregation aborts (returning false) on the first contended shard,
// leaving the profile window intact for the next tick.
func (c *Cache[K, V]) missCurvesInto(curves [][]uint64, try bool) bool {
	for t := range curves {
		clear(curves[t])
	}
	for i := range c.shards {
		sh := &c.shards[i]
		if try {
			if !sh.mu.TryLock() {
				return false
			}
		} else {
			sh.mu.Lock()
		}
		c.drainTouches(sh)
		sh.prof.addCurves(curves)
		sh.mu.Unlock()
	}
	return true
}

// Rebalance recomputes the per-tenant quotas from the miss curves observed
// since the previous Rebalance, installs them, resets the profile for the
// next interval and returns the new quotas. It runs cpapart.MinMisses
// (exact DP), or cpapart.BuddyMinMisses under BT so the result stays
// realizable by force vectors — the paper's repartitioning step, with the
// profile interval chosen by the caller's Rebalance cadence (or the
// WithAutoRebalance ticker's). When byte budgets are installed
// (SetBudgets), they are first translated into per-tenant way caps
// (cpapart.WayCaps, from each tenant's observed resident bytes per way)
// and the capped allocators keep every tenant inside its budget. With a
// single tenant Rebalance is a no-op that still resets the profile.
// Steady-state Rebalance reuses control-plane scratch held on the Cache;
// the only per-call allocation is the returned quota slice.
func (c *Cache[K, V]) Rebalance() ([]int, error) {
	quotas, _, err := c.rebalance(false)
	return quotas, err
}

// rebalance is the shared manual/auto repartitioning cycle. Manual calls
// always install; auto calls apply the hysteresis rule — install only
// when the window holds at least minSamples profiled accesses and the
// proposal predicts at least a `hysteresis` fraction fewer misses than
// the current quotas, or when the current quotas violate the budget caps.
// The profile resets whenever a decision was made on a full window, so a
// skipped tick starts a fresh window instead of letting stale samples
// accumulate. Auto ticks additionally back off from contention: they
// TryLock the shards while gathering the profile and skip the whole tick
// (leaving the window to keep accumulating) if any shard is busy, so the
// background control plane never queues behind a data-plane burst.
func (c *Cache[K, V]) rebalance(auto bool) ([]int, bool, error) {
	// quotaMu spans the whole profile-read + allocate + install cycle so
	// concurrent Rebalance/SetQuotas calls serialize as units (shard locks
	// are only ever taken inside quotaMu, never the other way around).
	c.quotaMu.Lock()
	if !c.missCurvesInto(c.ctlCurves, auto) {
		c.nRebalanceSkip.Add(1)
		quotas := append([]int(nil), c.quotas...)
		emit := c.sink.Rebalance != nil
		c.quotaMu.Unlock()
		if emit {
			// No proposal was computed, so New is nil.
			c.sink.Rebalance(RebalanceEvent{Auto: true, Contended: true, Old: append([]int(nil), quotas...)})
		}
		return quotas, false, nil
	}
	var samples uint64
	for t := range c.ctlCurves {
		samples += c.ctlCurves[t][0] // curve at 0 ways = every profiled access
	}
	caps := c.wayCapsLocked()
	switch {
	case c.tenants == 1:
		c.ctlAlloc = append(c.ctlAlloc[:0], c.ways)
	case c.policy == plru.BT:
		if caps != nil {
			caps = cpapart.RelaxBuddyCaps(caps, c.budgets, c.ways)
		}
		c.ctlAlloc = cpapart.BuddyMinMissesCappedInto(c.ctlAlloc, &c.ctlDP, c.ctlCurves, c.ways, caps)
	default:
		c.ctlAlloc = cpapart.MinMisses{}.AllocateCappedInto(c.ctlAlloc, &c.ctlDP, c.ctlCurves, c.ways, caps)
	}

	predOld := cpapart.TotalMisses(c.ctlCurves, cpapart.Allocation(c.quotas))
	predNew := cpapart.TotalMisses(c.ctlCurves, c.ctlAlloc)
	apply, evaluated := true, true
	if auto {
		overBudget := cpapart.Allocation(c.quotas).Exceeds(caps)
		evaluated = samples >= c.minSamples
		// Strict improvement required: a zero-gain proposal (including
		// the predOld == 0 all-hits window) must not churn the masks no
		// matter the hysteresis fraction.
		gainOK := evaluated && predNew < predOld &&
			float64(predOld-predNew) >= c.hysteresis*float64(predOld)
		// Under memory pressure the ladder overrides hysteresis: any
		// strictly better proposal (or a budget violation) installs now
		// rather than waiting out the confidence thresholds.
		apply = gainOK || overBudget || (c.underPressure() && predNew < predOld)
	}

	emit := c.sink.Rebalance != nil
	var old []int
	if emit {
		old = append([]int(nil), c.quotas...)
	}
	if apply {
		if err := c.setQuotasLocked(c.ctlAlloc); err != nil {
			c.quotaMu.Unlock()
			return nil, false, err
		}
	}
	// Policy auto-selection rides the same window boundary: score the
	// candidates on the shadow hits the closing window accumulated, then
	// reset the window alongside the profile. The gather must precede
	// the reset, so it cannot share the loop below.
	var switches []PolicySwitchEvent
	if c.activeKinds != nil && (apply || evaluated) {
		switches = c.selectPoliciesLocked()
		c.nPolSwitch.Add(uint64(len(switches)))
	}
	if apply || evaluated {
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			sh.prof.reset()
			if sh.shadow != nil {
				sh.shadow.resetWindow()
			}
			sh.mu.Unlock()
		}
	}
	quotas := append([]int(nil), c.quotas...)
	var ev RebalanceEvent
	if emit {
		ev = RebalanceEvent{
			Auto:               auto,
			Applied:            apply,
			Old:                old,
			New:                append([]int(nil), c.ctlAlloc...),
			SampledAccesses:    samples,
			PredictedMissesOld: predOld,
			PredictedMissesNew: predNew,
		}
	}
	// Counters bump before quotaMu releases so a Snapshot can never see
	// the new quotas installed while Rebalances still reads the old count.
	if apply {
		c.nRebalanced.Add(1)
	} else {
		c.nRebalanceSkip.Add(1)
	}
	c.quotaMu.Unlock()

	if emit {
		c.sink.Rebalance(ev)
	}
	if c.sink.PolicySwitch != nil {
		for _, sev := range switches {
			c.sink.PolicySwitch(sev)
		}
	}
	return quotas, apply, nil
}

// wayCapsLocked translates the installed byte budgets into per-tenant way
// caps from each tenant's observed resident bytes, or returns nil when no
// budgets are set. The bytes-per-way estimate for a tenant is its
// resident bytes divided by its current quota; tenants with no resident
// bytes fall back to the cache-wide average (no data, no cap). Caller
// holds quotaMu.
func (c *Cache[K, V]) wayCapsLocked() []int {
	if c.budgets == nil {
		return nil
	}
	if cap(c.ctlBytes) < c.tenants {
		c.ctlBytes = make([]uint64, c.tenants)
		c.ctlBPW = make([]uint64, c.tenants)
	}
	bytes := c.ctlBytes[:c.tenants]
	bpw := c.ctlBPW[:c.tenants]
	clear(bytes)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for t := range bytes {
			bytes[t] += sh.stats[t].Bytes
		}
		sh.mu.Unlock()
	}
	var total uint64
	for _, b := range bytes {
		total += b
	}
	avg := total / uint64(c.ways)
	for t := range bpw {
		if bytes[t] > 0 {
			bpw[t] = bytes[t] / uint64(c.quotas[t])
		} else {
			bpw[t] = avg
		}
	}
	c.ctlCaps = cpapart.WayCaps(c.ctlCaps, c.budgets, bpw, c.ways)
	return c.ctlCaps
}
