package cpacache

// The memory governor: hard byte budgets and the memory-pressure ladder.
//
// Without this file, byte budgets only steer the partitioner — SetBudgets
// values become way caps at the next Rebalance, so a burst of heavy
// WithCost writes overshoots every budget until the ticker fires. The
// governor makes the byte envelope as hard as the way masks already are:
//
//   - WithMaxBytes installs a global resident-cost cap that Set/SetBatch
//     enforce evict-on-write; WithHardBudgets upgrades the per-tenant
//     SetBudgets values to the same discipline.
//   - Enforcement is insert-then-reclaim: the write lands first (so the
//     just-acknowledged line is never its own victim), then expired lines
//     are reclaimed, then live victims are evicted — chosen by the
//     replacement policy, constrained to the over-budget tenant's own
//     lines (mask-preferred) — until the gauges fit. Reclaim starts in
//     the insert shard under the lock already held and walks the
//     remaining shards one lock at a time, so enforcement never nests
//     shard locks. Budget evictions are counted separately from capacity
//     evictions (TenantStats.BudgetEvictions).
//   - Entries that could never fit are rejected with ErrEntryTooLarge
//     instead of wedging the write in a reclaim spiral.
//   - The pressure ladder watches the global gauge against high/low
//     watermarks: at the high mark the cache reports PressureOOM (the
//     server layers a redis-style -OOM write gate on it), between the
//     marks the background sweeper and auto-rebalance run on a shortened
//     tick with the rebalance hysteresis overridden, and recovery below
//     the low mark clears the state. Transitions are emitted through
//     MetricsSink.Pressure.
//
// Gauges: gaugeTenant[t]/gaugeTotal are atomic mirrors of the per-shard
// TenantStats.Bytes parts, updated at the exact same shard-locked points
// (fill, update refund, clearSlotLocked). The atomics exist so admission
// and the watermark ladder can read cross-shard totals without touching
// every shard lock; the per-shard parts remain the source of truth Stats
// aggregates. Because the decrement happens under the shard lock before
// the slot's OnEvict callback runs, a Snapshot taken during an in-flight
// budget eviction counts the departing line's bytes exactly once.
//
// The reclaim scan order is deterministic (sets ascending, expired
// before live, owner-scoped before global) so the differential model
// can mirror enforcement bit-exactly across every policy kind.

import (
	"errors"
	"hash/maphash"
	"math/bits"
	"time"

	"repro/pkg/plru"
)

// ErrEntryTooLarge is returned by Set/SetTenant/SetTenantTTL (and wrapped
// by SetBatch) when a single entry's WithCost measurement exceeds a hard
// budget it would be enforced under — the writing tenant's WithHardBudgets
// byte budget or the WithMaxBytes global cap. Such an entry can never fit,
// so it is rejected up front rather than evicting the whole partition and
// failing anyway.
var ErrEntryTooLarge = errors.New("cpacache: entry cost exceeds the hard byte budget")

// PressureState is the memory-pressure ladder position derived from the
// global byte gauge and the WithPressureWatermarks marks.
type PressureState int32

const (
	// PressureOK: the gauge is below the low watermark.
	PressureOK PressureState = iota
	// PressureAggressive: the gauge crossed the low watermark. Background
	// maintenance (TTL sweeper, auto-rebalance) runs on a shortened tick
	// and the rebalance hysteresis yields to any predicted improvement.
	PressureAggressive
	// PressureOOM: the gauge crossed the high watermark. Servers should
	// reject writes (reads, deletes and expiry remain safe); the state
	// holds until the gauge drains below the LOW watermark, so the
	// cache does not flap at the high mark.
	PressureOOM
)

func (p PressureState) String() string {
	switch p {
	case PressureOK:
		return "ok"
	case PressureAggressive:
		return "aggressive"
	case PressureOOM:
		return "oom"
	default:
		return "invalid"
	}
}

// Default watermark fractions of WithMaxBytes, used when WithMaxBytes is
// set without WithPressureWatermarks.
const (
	defaultHighWatermark = 0.9
	defaultLowWatermark  = 0.75
)

// Reclaim scopes: a tenant pass frees only the over-budget tenant's own
// lines against its SetBudgets value; a global pass frees anyone's lines
// against WithMaxBytes.
const (
	scopeTenant = iota
	scopeGlobal
)

// enforcing reports whether any hard byte limit is configured; false is
// the common case and keeps the write hot path to one predictable branch.
func (c *Cache[K, V]) enforcing() bool { return c.hardBudgets || c.maxBytes > 0 }

// gaugeAdd/gaugeSub maintain the atomic byte gauges alongside the
// per-shard TenantStats.Bytes parts. Callers hold the owning shard's lock
// and only call when cost accounting is on (sh.cost != nil).
func (c *Cache[K, V]) gaugeAdd(tenant int16, n uint64) {
	c.gaugeTenant[tenant].Add(int64(n))
	c.gaugeTotal.Add(int64(n))
}

func (c *Cache[K, V]) gaugeSub(tenant int16, n uint64) {
	c.gaugeTenant[tenant].Add(-int64(n))
	c.gaugeTotal.Add(-int64(n))
}

// admitCost rejects an entry that could never fit under the hard limits
// it would be enforced against. Called before the shard lock is taken.
func (c *Cache[K, V]) admitCost(tenant int, cost uint64) error {
	if c.hardBudgets {
		if b := c.budgetAtomic[tenant].Load(); b > 0 && cost > b {
			return ErrEntryTooLarge
		}
	}
	if c.maxBytes > 0 && cost > c.maxBytes {
		return ErrEntryTooLarge
	}
	return nil
}

// stillOver reports whether the scope's budget is still violated. Reads
// only atomics, so it is safe to re-check after every single reclaim.
func (c *Cache[K, V]) stillOver(tenant, scope int) bool {
	if scope == scopeTenant {
		b := c.budgetAtomic[tenant].Load()
		return b > 0 && uint64(c.gaugeTenant[tenant].Load()) > b
	}
	return c.maxBytes > 0 && uint64(c.gaugeTotal.Load()) > c.maxBytes
}

// overBudget reports whether the writing tenant's hard budget or the
// global cap is violated — the condition that arms enforcement.
func (c *Cache[K, V]) overBudget(tenant int) bool {
	if c.hardBudgets && c.stillOver(tenant, scopeTenant) {
		return true
	}
	return c.stillOver(tenant, scopeGlobal)
}

// enforceShardLocked brings the writing tenant's gauge and the global
// gauge back under their budgets by reclaiming lines from sh. The slot at
// (protSet, protWay) — the line the triggering write just installed — is
// never reclaimed by its own write (pass -1, -1 to protect nothing).
// Caller holds sh.mu; reclaimed pairs are buffered in s for the caller to
// flush after unlock.
func (c *Cache[K, V]) enforceShardLocked(sh *shard[K, V], tenant, protSet, protWay int, s *batchScratch[K, V]) {
	// Victim selection and Invalidate consult recency state; pending
	// deferred touches apply first, exactly as on the setLocked path.
	c.drainTouches(sh)
	if c.hardBudgets {
		c.reclaimShardLocked(sh, tenant, scopeTenant, protSet, protWay, s)
	}
	if c.maxBytes > 0 {
		c.reclaimShardLocked(sh, tenant, scopeGlobal, protSet, protWay, s)
	}
}

// reclaimShardLocked runs the deterministic reclaim ladder for one scope
// over one shard: (1) expired lines — the tenant's own under scopeTenant,
// anyone's under scopeGlobal; (2) the writing tenant's live lines, policy
// chosen and mask-preferred; (3) under scopeGlobal only, anyone's live
// lines. Every pass re-checks the gauge after each reclaim and stops the
// moment the budget fits. Caller holds sh.mu.
func (c *Cache[K, V]) reclaimShardLocked(sh *shard[K, V], tenant, scope, protSet, protWay int, s *batchScratch[K, V]) {
	if !c.stillOver(tenant, scope) {
		return
	}
	now := c.now()
	for set := 0; set < c.sets; set++ {
		if !c.stillOver(tenant, scope) {
			return
		}
		marked := sh.ttl[set] & c.waysMask
		if marked == 0 {
			continue
		}
		base := set * c.ways
		for e := marked; e != 0; e &= e - 1 {
			w := bits.TrailingZeros64(e)
			if set == protSet && w == protWay {
				continue
			}
			if scope == scopeTenant && int(sh.owner[base+w]) != tenant {
				continue
			}
			if sh.deadline[base+w] > now {
				continue
			}
			exK, exV := c.expireLocked(sh, set, w)
			if c.onExpire != nil {
				s.exK = append(s.exK, exK)
				s.exV = append(s.exV, exV)
			}
			if !c.stillOver(tenant, scope) {
				return
			}
		}
	}
	c.evictOwnedLocked(sh, tenant, scope, protSet, protWay, s)
	if scope == scopeGlobal {
		c.evictAnyLocked(sh, tenant, protSet, protWay, s)
	}
}

// evictOwnedLocked evicts live lines the writing tenant owns until the
// scope's budget fits or none remain. Within a set the victim is chosen
// by the tenant's replacement policy over its own lines, preferring the
// ones inside its partition mask — the same mask discipline capacity
// eviction uses. Caller holds sh.mu.
func (c *Cache[K, V]) evictOwnedLocked(sh *shard[K, V], tenant, scope, protSet, protWay int, s *batchScratch[K, V]) {
	for set := 0; set < c.sets; set++ {
		if !c.stillOver(tenant, scope) {
			return
		}
		base := set * c.ways
		for c.stillOver(tenant, scope) {
			var owned uint64
			for w := 0; w < c.ways; w++ {
				if int(sh.owner[base+w]) == tenant && !(set == protSet && w == protWay) {
					owned |= 1 << uint(w)
				}
			}
			if owned == 0 {
				break
			}
			pick := owned & uint64(sh.masks[tenant])
			if pick == 0 {
				pick = owned
			}
			way := sh.polVictim(set, tenant, plru.WayMask(pick))
			c.budgetEvictLocked(sh, set, way, s)
		}
	}
}

// evictAnyLocked is the global scope's last resort: evict anyone's live
// line (policy-chosen over every occupied way) until the WithMaxBytes cap
// fits. Only reached when expired reclamation and the writer's own lines
// were not enough. Caller holds sh.mu.
func (c *Cache[K, V]) evictAnyLocked(sh *shard[K, V], tenant, protSet, protWay int, s *batchScratch[K, V]) {
	for set := 0; set < c.sets; set++ {
		if !c.stillOver(tenant, scopeGlobal) {
			return
		}
		base := set * c.ways
		for c.stillOver(tenant, scopeGlobal) {
			var occ uint64
			for w := 0; w < c.ways; w++ {
				if sh.owner[base+w] >= 0 && !(set == protSet && w == protWay) {
					occ |= 1 << uint(w)
				}
			}
			if occ == 0 {
				break
			}
			way := sh.polVictim(set, tenant, plru.WayMask(occ))
			c.budgetEvictLocked(sh, set, way, s)
		}
	}
}

// budgetEvictLocked reclaims one live line as a budget eviction: counted
// against the owner's BudgetEvictions (distinct from capacity Evictions),
// added to the cache-wide evicted-bytes total, and buffered for OnEvict.
// Caller holds sh.mu.
func (c *Cache[K, V]) budgetEvictLocked(sh *shard[K, V], set, way int, s *batchScratch[K, V]) {
	base := set * c.ways
	sh.stats[sh.owner[base+way]].BudgetEvictions++
	c.nBudgetEvict.Add(1)
	if sh.cost != nil {
		c.nBudgetEvictBytes.Add(sh.cost[base+way])
	}
	k, v := sh.keys[base+way], sh.vals[base+way]
	c.clearSlotLocked(sh, set, way)
	if c.onEvict != nil {
		s.evK = append(s.evK, k)
		s.evV = append(s.evV, v)
	}
}

// enforceAcross continues enforcement over the remaining shards when the
// insert shard alone could not satisfy the budgets (a tenant's bytes live
// wherever its keys hashed). Shards are visited in ring order starting
// after the insert shard, one lock at a time — enforcement never holds
// two shard locks, so concurrent writers cannot deadlock — with buffered
// callbacks flushed between shards. Caller holds no shard lock.
func (c *Cache[K, V]) enforceAcross(tenant, protIdx int, s *batchScratch[K, V]) {
	for off := 1; off < len(c.shards); off++ {
		if !c.overBudget(tenant) {
			return
		}
		sh := &c.shards[(protIdx+off)&int(c.shardMask)]
		sh.mu.Lock()
		c.enforceShardLocked(sh, tenant, -1, -1, s)
		sh.mu.Unlock()
		c.flushCallbacks(s)
	}
}

// setWithDeadline is the shared SetTenant/SetTenantTTL write path:
// admission check, locked insert, hard-budget enforcement, pressure
// re-check. Without hard limits it is the pre-governor write path plus
// two predictable branches.
func (c *Cache[K, V]) setWithDeadline(tenant int, key K, value V, dl int64) error {
	h := maphash.Comparable(c.seed, key)
	si := int(h & c.shardMask)
	sh := &c.shards[si]
	set := c.setOf(h)
	tag := tagOf(h)
	var cost uint64
	if c.costFn != nil {
		cost = c.costFn(key, value)
		if c.enforcing() {
			if err := c.admitCost(tenant, cost); err != nil {
				return err
			}
		}
	}
	sh.mu.Lock()
	evKey, evVal, kind, way := c.setLocked(sh, set, tenant, tag, key, value, dl, cost)
	if c.enforcing() && c.overBudget(tenant) {
		s := c.getScratch(0)
		c.enforceShardLocked(sh, tenant, set, way, s)
		sh.mu.Unlock()
		c.displaced(evKey, evVal, kind)
		c.flushCallbacks(s)
		if c.overBudget(tenant) {
			c.enforceAcross(tenant, si, s)
		}
		c.putScratch(s)
		c.checkPressure()
		return nil
	}
	sh.mu.Unlock()
	c.displaced(evKey, evVal, kind)
	c.checkPressure()
	return nil
}

// checkPressure re-evaluates the pressure ladder from the global gauge
// and emits a PressureEvent on a transition. Called outside all shard
// locks after operations that move the gauge; costs one field test when
// no watermarks are configured. Transitions serialize on pressureMu so
// sink events arrive in order; the Pressure callback must not call back
// into the cache's write methods.
func (c *Cache[K, V]) checkPressure() {
	if c.highBytes == 0 {
		return
	}
	cur := PressureState(c.pressure.Load())
	if c.pressureFor(uint64(c.gaugeTotal.Load()), cur) == cur {
		return
	}
	c.pressureMu.Lock()
	cur = PressureState(c.pressure.Load())
	used := uint64(c.gaugeTotal.Load())
	next := c.pressureFor(used, cur)
	if next != cur {
		c.pressure.Store(int32(next))
		if c.sink.Pressure != nil {
			c.sink.Pressure(PressureEvent{From: cur, To: next, UsedBytes: used, MaxBytes: c.maxBytes})
		}
	}
	c.pressureMu.Unlock()
}

// pressureFor maps a gauge reading to the ladder state. Hysteresis: OOM
// is entered at the high watermark and holds anywhere above the low one,
// so a server does not flap between accepting and rejecting writes while
// the gauge hovers at the high mark.
func (c *Cache[K, V]) pressureFor(used uint64, cur PressureState) PressureState {
	switch {
	case used >= c.highBytes:
		return PressureOOM
	case used >= c.lowBytes:
		if cur == PressureOOM {
			return PressureOOM
		}
		return PressureAggressive
	default:
		return PressureOK
	}
}

// underPressure reports whether background maintenance should run in
// aggressive mode (the ladder is at Aggressive or OOM).
func (c *Cache[K, V]) underPressure() bool {
	return c.highBytes != 0 && PressureState(c.pressure.Load()) >= PressureAggressive
}

// pressureInterval shortens a background interval to a quarter (floored
// at the clock resolution) while the ladder is at Aggressive or above, so
// the sweeper reclaims expired bytes and auto-rebalance reacts to budget
// violations sooner exactly when memory is tight.
func (c *Cache[K, V]) pressureInterval(base time.Duration) time.Duration {
	if c.underPressure() {
		if q := base / 4; q > clockResolution {
			return q
		}
		return clockResolution
	}
	return base
}

// Pressure returns the cache's position on the memory-pressure ladder.
// Always PressureOK unless WithMaxBytes is configured.
func (c *Cache[K, V]) Pressure() PressureState {
	return PressureState(c.pressure.Load())
}

// UsedBytes returns the resident WithCost total across all tenants and
// shards — the gauge the hard limits and watermarks are enforced against.
// Always 0 without WithCost.
func (c *Cache[K, V]) UsedBytes() uint64 {
	if c.costFn == nil {
		return 0
	}
	return uint64(c.gaugeTotal.Load())
}

// MaxBytes returns the WithMaxBytes global cap (0 = uncapped).
func (c *Cache[K, V]) MaxBytes() uint64 { return c.maxBytes }
