package cpacache

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/plru"
)

// newBenchCache builds the geometry used by every cpacache benchmark (and
// by the BENCH_cpacache.json baseline): 8 shards × 256 sets × 8 ways.
func newBenchCache(b *testing.B, policy plru.Kind, tenants int) *Cache[uint64, uint64] {
	b.Helper()
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(256), WithWays(8),
		WithPolicy(policy), WithPartitions(tenants),
	)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkGetHit measures the single-threaded lookup hot path on a warm
// cache. It must stay allocation-free.
func BenchmarkGetHit(b *testing.B) {
	c := newBenchCache(b, plru.BT, 1)
	const keys = 1024
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(uint64(i) % keys)
	}
}

// BenchmarkSetChurn measures inserts that continuously evict (key space
// far beyond capacity), exercising victim selection every time.
func BenchmarkSetChurn(b *testing.B) {
	for _, pol := range []plru.Kind{plru.BT, plru.NRU, plru.LRU, plru.AWRP, plru.ARC} {
		b.Run(pol.String(), func(b *testing.B) {
			c := newBenchCache(b, pol, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := uint64(i)
				c.Set(k, k)
			}
		})
	}
}

// BenchmarkParallelGetSet is the sharded concurrent hot path: every
// goroutine mixes 90% lookups with 10% inserts over a working set about
// 2× capacity, across 4 tenants. This is the number BENCH_cpacache.json
// tracks for the per-op perf trajectory.
func BenchmarkParallelGetSet(b *testing.B) {
	c := newBenchCache(b, plru.BT, 4)
	const keySpace = 32_768
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tenant := int(ctr.Add(1)) % 4
		rng := ctr.Load()*0x9E3779B97F4A7C15 + 1
		for pb.Next() {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			k := rng % keySpace
			if rng%10 == 0 {
				c.SetTenant(tenant, k, k)
			} else if v, ok := c.GetTenant(tenant, k); ok && v != k {
				b.Error("corrupted value")
			}
		}
	})
}

// BenchmarkParallelGetHit is the pure read-scaling number: every
// goroutine does warm lookups only, so on a multi-core host the
// optimistic (seqlock) read path must scale with readers — there is no
// shard lock left to serialize on. On a 1-CPU host it degenerates to
// BenchmarkGetHit plus RunParallel overhead.
func BenchmarkParallelGetHit(b *testing.B) {
	c := newBenchCache(b, plru.BT, 1)
	const keys = 1024
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := ctr.Add(1)*0x9E3779B97F4A7C15 + 1
		for pb.Next() {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			if v, ok := c.Get(rng % keys); ok && v != rng%keys {
				b.Error("corrupted value")
			}
		}
	})
}

// BenchmarkGetHitAdaptive is BenchmarkGetHit with policy auto-selection
// on: the warm lookup pays the shadow-directory probe only on sampled
// sets (1 in 16 by default); the rest of the overhead is the deferred
// fan-out when writers drain the touch ring.
func BenchmarkGetHitAdaptive(b *testing.B) {
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(256), WithWays(8),
		WithPolicy(plru.LRU), WithPolicyAutoSelect(),
	)
	if err != nil {
		b.Fatal(err)
	}
	const keys = 1024
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(uint64(i) % keys)
	}
}

// BenchmarkSetChurnAdaptive is BenchmarkSetChurn with auto-selection on:
// every insert's victim selection routes through the tenant's selected
// instance and its recency fan-out reaches every warm candidate.
func BenchmarkSetChurnAdaptive(b *testing.B) {
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(256), WithWays(8),
		WithPolicy(plru.LRU), WithPolicyAutoSelect(),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		c.Set(k, k)
	}
}

// BenchmarkGetHitTTL is BenchmarkGetHit with every entry carrying a
// deadline (WithDefaultTTL): the acceptance bar for the TTL data plane is
// that this stays 0 allocs/op and within 10% of the TTL-less GetHit
// baseline in BENCH_cpacache.json.
func BenchmarkGetHitTTL(b *testing.B) {
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(256), WithWays(8),
		WithPolicy(plru.BT), WithDefaultTTL(time.Hour),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const keys = 1024
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(uint64(i) % keys)
	}
}

// BenchmarkSetChurnTTLCost is BenchmarkSetChurn/BT with the full
// lifecycle data plane on: default TTL and cost accounting.
func BenchmarkSetChurnTTLCost(b *testing.B) {
	c, err := New[uint64, uint64](
		WithShards(8), WithSets(256), WithWays(8),
		WithPolicy(plru.BT), WithDefaultTTL(time.Hour),
		WithCost(func(k, v uint64) uint64 { return 8 }),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		c.Set(k, k)
	}
}

// batchSize is the per-call batch width of the batch benchmarks; ns/op
// numbers are per key (the loops step b.N by batchSize), so they compare
// directly against BenchmarkGetHit / BenchmarkSetChurn.
const batchSize = 64

// BenchmarkGetBatch measures the per-key cost of warm batched lookups:
// one shard lock per shard per 64-key batch instead of one per key.
func BenchmarkGetBatch(b *testing.B) {
	c := newBenchCache(b, plru.BT, 1)
	const keys = 1024
	for k := uint64(0); k < keys; k++ {
		c.Set(k, k)
	}
	kb := make([]uint64, batchSize)
	vb := make([]uint64, batchSize)
	ob := make([]bool, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range kb {
			kb[j] = uint64(i+j) % keys
		}
		c.GetBatch(0, kb, vb, ob)
	}
}

// BenchmarkSetBatch measures the per-key cost of batched inserts that
// continuously evict — the batched twin of BenchmarkSetChurn/BT.
func BenchmarkSetBatch(b *testing.B) {
	c := newBenchCache(b, plru.BT, 1)
	kb := make([]uint64, batchSize)
	vb := make([]uint64, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range kb {
			kb[j] = uint64(i + j)
			vb[j] = kb[j]
		}
		c.SetBatch(0, kb, vb)
	}
}

// BenchmarkRebalance measures a full profile-aggregate + MinMisses +
// mask-install cycle, the control-plane cost paid per repartition interval.
func BenchmarkRebalance(b *testing.B) {
	c := newBenchCache(b, plru.BT, 4)
	for k := uint64(0); k < 16_384; k++ {
		c.GetTenant(int(k)%4, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Rebalance(); err != nil {
			b.Fatal(err)
		}
	}
}
