package cpacache

// Online replacement-policy auto-selection (WithPolicyAutoSelect).
//
// The paper's UMON monitors answer "how many ways does this tenant
// need"; this file extends the same machinery to answer "which
// replacement policy serves this tenant best". Two structures do the
// work, both per shard:
//
//   - multiPol keeps one warm instance of every candidate policy over
//     the shard's real geometry. Every recency event — touch, fill,
//     invalidate, partition install — fans out to all instances, so each
//     candidate's state tracks the shard's actual residency at all
//     times. Victim selection routes through the tenant's currently
//     selected instance, so a policy switch is just an index store: no
//     state rebuild, no cold start.
//
//   - shadowDir is a miniature auxiliary tag directory that scores the
//     candidates. On every profiled lookup (the same sampled sets the
//     UMON profiler uses), each candidate policy runs a private
//     simulation at full associativity per tenant: an 8-bit signature
//     probe against the candidate's own shadow residency, a Touch on a
//     shadow hit, a Victim+Fill on a shadow miss. The per-candidate hit
//     counters are the scores. Signature collisions (1/256 per way)
//     inflate every candidate's counter identically — the probes see the
//     same stream — so the ranking is unbiased.
//
// Decisions happen at rebalance boundaries, under quotaMu, with the
// same hysteresis knobs quota changes use (WithRebalanceHysteresis): a
// tenant switches only when its window holds at least minSamples
// profiled accesses and the best candidate's shadow hits beat the
// current policy's by more than the hysteresis fraction. Switches are
// reported through MetricsSink.PolicySwitch and visible in
// Snapshot.Policies.

import (
	"fmt"
	"math/bits"

	"repro/pkg/plru"
)

// multiPol is the per-shard candidate-policy bank. byTenant is written
// under quotaMu while holding the shard lock and read under the shard
// lock, like the shard's partition masks.
type multiPol struct {
	pols     []policyRef // parallel to Cache.activeKinds
	byTenant []int32     // tenant -> index into pols
}

func newMultiPol(kinds []plru.Kind, base, sets, ways, tenants int, seed uint64) *multiPol {
	m := &multiPol{
		pols:     make([]policyRef, len(kinds)),
		byTenant: make([]int32, tenants),
	}
	for i, k := range kinds {
		m.pols[i] = newPolicyRef(k, sets, ways, tenants, seed+uint64(i)<<32)
	}
	for t := range m.byTenant {
		m.byTenant[t] = int32(base)
	}
	return m
}

// The pol* methods are the shard's single policy entry points: every
// data-plane call site goes through them. Without auto-selection
// (multi == nil, the common case) they are one predictable branch ahead
// of the devirtualized policyRef call; with it, recency fans out to
// every candidate and victim selection routes through the tenant's
// selected instance. Callers hold sh.mu.

func (sh *shard[K, V]) polTouch(set, way, tenant int) {
	if m := sh.multi; m != nil {
		for i := range m.pols {
			m.pols[i].touch(set, way, tenant)
		}
		return
	}
	sh.pol.touch(set, way, tenant)
}

func (sh *shard[K, V]) polFill(set, way, tenant int, sig uint8) {
	if m := sh.multi; m != nil {
		for i := range m.pols {
			m.pols[i].fill(set, way, tenant, sig)
		}
		return
	}
	sh.pol.fill(set, way, tenant, sig)
}

func (sh *shard[K, V]) polTouchBatch(recs []plru.TouchRec) {
	if m := sh.multi; m != nil {
		for i := range m.pols {
			m.pols[i].touchBatch(recs)
		}
		return
	}
	sh.pol.touchBatch(recs)
}

func (sh *shard[K, V]) polVictim(set, tenant int, allowed plru.WayMask) int {
	if m := sh.multi; m != nil {
		return m.pols[m.byTenant[tenant]].victim(set, tenant, allowed)
	}
	return sh.pol.victim(set, tenant, allowed)
}

func (sh *shard[K, V]) polInvalidate(set, way int) {
	if m := sh.multi; m != nil {
		for i := range m.pols {
			m.pols[i].invalidate(set, way)
		}
		return
	}
	sh.pol.invalidate(set, way)
}

func (sh *shard[K, V]) polSetPartition(masks []plru.WayMask) {
	if m := sh.multi; m != nil {
		for i := range m.pols {
			m.pols[i].setPartition(masks)
		}
		return
	}
	sh.pol.setPartition(masks)
}

// shadowDir scores the candidate policies on one shard's profiled
// lookup stream. Each candidate k owns a private tag directory of
// sampledSets × tenants shadow sets, ways entries each: shadow set
// (slot, tenant) simulates tenant's workload at full associativity
// under policy k, independent of every other tenant and of the real
// cache contents. All state lives under the shard mutex; access() is
// allocation-free.
type shadowDir struct {
	ways    int
	tenants int
	pols    []policyRef // parallel to Cache.activeKinds
	tags    [][]uint8   // per candidate: sampledSets*tenants*ways signature bytes
	valid   [][]uint64  // per candidate: residency mask per shadow set
	hits    [][]uint64  // per candidate: per-tenant shadow hits this window
	acc     []uint64    // per-tenant profiled accesses this window
}

func newShadowDir(kinds []plru.Kind, sampledSets, tenants, ways int, seed uint64) *shadowDir {
	sd := &shadowDir{
		ways:    ways,
		tenants: tenants,
		pols:    make([]policyRef, len(kinds)),
		tags:    make([][]uint8, len(kinds)),
		valid:   make([][]uint64, len(kinds)),
		hits:    make([][]uint64, len(kinds)),
		acc:     make([]uint64, tenants),
	}
	shadowSets := sampledSets * tenants
	for i, k := range kinds {
		sd.pols[i] = newPolicyRef(k, shadowSets, ways, tenants, seed+uint64(i)<<24)
		sd.tags[i] = make([]uint8, shadowSets*ways)
		sd.valid[i] = make([]uint64, shadowSets)
		sd.hits[i] = make([]uint64, tenants)
	}
	return sd
}

// access runs one profiled lookup through every candidate's shadow
// directory: probe by signature, Touch on a hit, Victim+Fill on a miss
// (free ways first). slot is the sampled-set ordinal from the profiler.
// Caller holds the shard mutex.
func (sd *shadowDir) access(slot, tenant int, sig uint8) {
	ss := slot*sd.tenants + tenant
	base := ss * sd.ways
	full := plru.Full(sd.ways)
	sd.acc[tenant]++
	for k := range sd.pols {
		tags := sd.tags[k]
		vm := sd.valid[k][ss]
		way := -1
		for m := vm; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			if tags[base+w] == sig {
				way = w
				break
			}
		}
		if way >= 0 {
			sd.hits[k][tenant]++
			sd.pols[k].touch(ss, way, tenant)
			continue
		}
		if free := uint64(full) &^ vm; free != 0 {
			way = bits.TrailingZeros64(free)
		} else {
			way = sd.pols[k].victim(ss, tenant, full)
		}
		tags[base+way] = sig
		sd.valid[k][ss] = vm | 1<<uint(way)
		sd.pols[k].fill(ss, way, tenant, sig)
	}
}

// resetWindow clears the window counters. Shadow residency is kept —
// the simulations stay warm across windows, like the real cache.
func (sd *shadowDir) resetWindow() {
	for k := range sd.hits {
		clear(sd.hits[k])
	}
	clear(sd.acc)
}

// selectPoliciesLocked is the rebalance-boundary policy decision:
// aggregate every shard's shadow scores, pick each tenant's best
// candidate under the hysteresis rule, and install the new routing on
// every shard. Returns one event per switch (usually none). Caller
// holds quotaMu; shard locks are taken one at a time, in the same
// order setQuotasLocked takes them.
func (c *Cache[K, V]) selectPoliciesLocked() []PolicySwitchEvent {
	hits := c.ctlShadowHits
	acc := c.ctlShadowAcc
	for k := range hits {
		clear(hits[k])
	}
	clear(acc)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k := range hits {
			for t, h := range sh.shadow.hits[k] {
				hits[k][t] += h
			}
		}
		for t, a := range sh.shadow.acc {
			acc[t] += a
		}
		sh.mu.Unlock()
	}
	var events []PolicySwitchEvent
	changed := false
	for t := 0; t < c.tenants; t++ {
		if acc[t] < c.minSamples {
			continue
		}
		cur := c.polByTenant[t]
		best := cur
		for k := range hits {
			if hits[k][t] > hits[best][t] {
				best = k
			}
		}
		if best == cur {
			continue
		}
		// Same shape as the quota hysteresis: a strict improvement worth
		// more than the hysteresis fraction of the incumbent's score.
		if float64(hits[best][t]-hits[cur][t]) <= c.hysteresis*float64(hits[cur][t]) {
			continue
		}
		c.polByTenant[t] = best
		changed = true
		ev := PolicySwitchEvent{
			Tenant:         t,
			From:           c.activeKinds[cur],
			To:             c.activeKinds[best],
			WindowAccesses: acc[t],
			Candidates:     append([]plru.Kind(nil), c.activeKinds...),
			ShadowHits:     make([]uint64, len(hits)),
		}
		for k := range hits {
			ev.ShadowHits[k] = hits[k][t]
		}
		events = append(events, ev)
	}
	if changed {
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			for t, k := range c.polByTenant {
				sh.multi.byTenant[t] = int32(k)
			}
			sh.mu.Unlock()
		}
	}
	return events
}

// resolveCandidates expands and validates a WithPolicyAutoSelect
// candidate list: the base policy is always included, duplicates are
// dropped, and kinds that cannot run on the geometry (BT without
// power-of-two ways) are rejected when explicit and skipped when
// defaulted. An empty request selects every kind that fits except
// Random (which has no recency signal to win on).
func resolveCandidates(base plru.Kind, ways int, req []plru.Kind) ([]plru.Kind, error) {
	btOK := ways&(ways-1) == 0
	if len(req) == 0 {
		for _, k := range plru.Kinds() {
			if k == plru.Random && base != plru.Random {
				continue
			}
			if k == plru.BT && !btOK {
				continue
			}
			req = append(req, k)
		}
	} else {
		req = append([]plru.Kind{base}, req...)
	}
	var out []plru.Kind
	seen := make(map[plru.Kind]bool)
	for _, k := range req {
		switch k {
		case plru.LRU, plru.NRU, plru.BT, plru.Random, plru.AWRP, plru.ARC:
		default:
			return nil, fmt.Errorf("cpacache: unknown auto-select candidate policy %d", int(k))
		}
		if k == plru.BT && !btOK {
			return nil, fmt.Errorf("cpacache: auto-select candidate BT needs power-of-two ways, got %d", ways)
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("cpacache: auto-select needs at least two distinct candidate policies, got %v", out)
	}
	return out, nil
}
