package cpacache

import (
	"fmt"
	"testing"
	"time"

	"repro/pkg/plru"
)

// TestWheelExpiresExactlyTheLapsed is the timing-wheel exactness suite:
// a reference map of key → deadline is maintained alongside the cache,
// the fake clock advances in patterns that exercise every wheel path —
// sub-tick due parking, the tick-by-tick level-0 walk, level-1/2
// cascades, the overflow list, and the far-jump rescan — and after every
// sweep tick the cache must have reclaimed exactly the entries whose
// deadlines lapsed: no survivor past its deadline, no early reclaim, no
// OnEvict misclassification, every OnExpire exactly once.
func TestWheelExpiresExactlyTheLapsed(t *testing.T) {
	clk := newFakeClock()
	expired := map[string]int{}
	var evicted int
	// One 64-way set: at most 48 distinct keys are ever resident, so no
	// insert can evict and every reclaim must be an expiration — that
	// keeps the "no early reclaim" assertion sound for any hash seed.
	c, err := New[string, int](
		WithShards(1), WithSets(1), WithWays(64), WithPolicy(plru.LRU),
		WithNow(clk.Load), WithTTLSweep(0), // ticks driven by hand
		WithOnExpire(func(k string, v int) { expired[k]++ }),
		WithOnEvict(func(string, int) { evicted++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadlines := map[string]int64{} // 0 = pinned
	rng := uint64(31337)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	// TTL menu spanning every wheel level: sub-tick, level 0 (< 64ms),
	// level 1 (< 4.096s), level 2 (< 262s), overflow (beyond).
	ttls := []time.Duration{
		500 * time.Nanosecond,
		3 * time.Millisecond,
		40 * time.Millisecond,
		800 * time.Millisecond,
		3 * time.Second,
		90 * time.Second,
		10 * time.Minute,
		0, // pinned
	}
	// Clock moves: sub-tick nudges, single ticks, a few dozen ticks
	// (cascade boundaries), and far jumps (> 4096 ticks → rescan).
	jumps := []time.Duration{
		200 * time.Nanosecond,
		time.Millisecond,
		70 * time.Millisecond,
		time.Second,
		8 * time.Second,
		2 * time.Minute,
	}
	var exK []string
	var exV []int
	check := func(step int) {
		t.Helper()
		now := clk.Load()
		for k, d := range deadlines {
			_, ok := c.Get(k)
			switch {
			case d != 0 && d <= now:
				if ok {
					t.Fatalf("step %d: %q readable %dns past its deadline", step, k, now-d)
				}
				delete(deadlines, k)
			default:
				if !ok {
					t.Fatalf("step %d: %q (deadline %d, now %d) reclaimed early", step, k, d, now)
				}
			}
		}
	}
	const keys = 48 // well under the 64-way set: no evictions ever
	for step := 0; step < 4_000; step++ {
		switch next() % 4 {
		case 0, 1: // (re)insert with a TTL from the menu
			k := fmt.Sprintf("k%d", next()%keys)
			ttl := ttls[next()%uint64(len(ttls))]
			c.SetTenantTTL(0, k, 1, ttl)
			if ttl == 0 {
				deadlines[k] = 0
			} else {
				deadlines[k] = clk.Load() + int64(ttl)
			}
		case 2: // time passes
			clk.advance(jumps[next()%uint64(len(jumps))])
		default: // sweeper tick
			exK, exV = c.sweepOnce(exK, exV)
			check(step)
		}
	}
	// Drain everything: jump past the farthest deadline and sweep.
	clk.advance(time.Hour)
	exK, exV = c.sweepOnce(exK, exV)
	check(-1)
	_ = exV
	if evicted != 0 {
		t.Fatalf("%d reclaims were misclassified as evictions", evicted)
	}
	for k, n := range expired {
		if n < 1 {
			t.Fatalf("%q expired %d times", k, n)
		}
	}
	// Only pinned entries remain; everything else went through OnExpire.
	left := c.Len()
	pinned := 0
	for _, d := range deadlines {
		if d == 0 {
			pinned++
		}
	}
	if left != pinned {
		t.Fatalf("Len = %d after the final sweep, want %d pinned survivors", left, pinned)
	}
}

// TestWheelSweeperNeedsNoTraffic pins the background-reclaim guarantee
// the wheel inherits from the old cursor sweeper: entries nobody ever
// touches again are still reclaimed, and SweepExpired counts them.
// (TestSweeperReclaimsIdleEntries covers the real-clock goroutine; this
// is the deterministic fake-clock twin, including a TTL beyond the
// wheel's level-2 horizon so the overflow path is proven too.)
func TestWheelSweeperNeedsNoTraffic(t *testing.T) {
	clk := newFakeClock()
	var expired []string
	c, err := New[string, int](
		WithShards(1), WithSets(4), WithWays(4),
		WithNow(clk.Load), WithTTLSweep(0),
		WithOnExpire(func(k string, v int) { expired = append(expired, k) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTenantTTL(0, "soon", 1, 5*time.Millisecond)
	c.SetTenantTTL(0, "later", 2, 30*time.Second)
	c.SetTenantTTL(0, "beyondHorizon", 3, 10*time.Minute) // overflow list
	c.SetTenantTTL(0, "never", 4, 0)

	advance := func(d time.Duration, wantLen int) {
		t.Helper()
		clk.advance(d)
		_, _ = c.sweepOnce(nil, nil)
		if got := c.Len(); got != wantLen {
			t.Fatalf("after +%v: Len = %d, want %d (expired %v)", d, got, wantLen, expired)
		}
	}
	advance(2*time.Millisecond, 4)  // nothing due yet
	advance(10*time.Millisecond, 3) // "soon" lapses (level-0 ticks)
	advance(time.Minute, 2)         // "later" lapses (far jump → rescan)
	advance(20*time.Minute, 1)      // "beyondHorizon" lapses from overflow
	if want := []string{"soon", "later", "beyondHorizon"}; fmt.Sprint(expired) != fmt.Sprint(want) {
		t.Fatalf("expired order %v, want %v", expired, want)
	}
	if snap := c.Snapshot(); snap.SweepExpired != 3 {
		t.Fatalf("SweepExpired = %d, want 3", snap.SweepExpired)
	}
}

// TestWheelRearmMovesBuckets pins the intrusive-list bookkeeping: SetTTL
// re-arms move a slot between wheel buckets (never duplicating it),
// deletes unlink it, and a re-armed entry expires at its newest deadline
// only.
func TestWheelRearmMovesBuckets(t *testing.T) {
	clk := newFakeClock()
	var expired []string
	c, err := New[string, int](
		WithShards(1), WithSets(2), WithWays(4),
		WithNow(clk.Load), WithTTLSweep(0),
		WithOnExpire(func(k string, v int) { expired = append(expired, k) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.SetTenantTTL(0, "moved", 1, 10*time.Millisecond)
	if !c.SetTTL("moved", time.Minute) { // re-arm far later: moves buckets
		t.Fatal("SetTTL on live entry failed")
	}
	clk.advance(time.Second) // past the ORIGINAL deadline
	_, _ = c.sweepOnce(nil, nil)
	if len(expired) != 0 {
		t.Fatalf("re-armed entry expired at its old deadline: %v", expired)
	}
	if _, ok := c.Get("moved"); !ok {
		t.Fatal("re-armed entry unreadable before its new deadline")
	}
	clk.advance(2 * time.Minute)
	_, _ = c.sweepOnce(nil, nil)
	if fmt.Sprint(expired) != "[moved]" {
		t.Fatalf("expired %v, want [moved]", expired)
	}

	// Deleting a deadline-carrying entry unlinks it: a sweep after the
	// deadline must not double-reclaim or panic on a stale link.
	expired = expired[:0]
	c.SetTenantTTL(0, "gone", 2, 5*time.Millisecond)
	if !c.Delete("gone") {
		t.Fatal("Delete failed")
	}
	clk.advance(time.Second)
	_, _ = c.sweepOnce(nil, nil)
	if len(expired) != 0 {
		t.Fatalf("deleted entry reappeared through the wheel: %v", expired)
	}

	// Removing a TTL (SetTTL 0) unlinks too.
	c.SetTenantTTL(0, "pinnedLater", 3, 5*time.Millisecond)
	if !c.SetTTL("pinnedLater", 0) {
		t.Fatal("SetTTL(0) failed")
	}
	clk.advance(time.Hour)
	_, _ = c.sweepOnce(nil, nil)
	if _, ok := c.Get("pinnedLater"); !ok {
		t.Fatal("unpinned... pinned entry was reclaimed after its TTL was removed")
	}
}
