package cpacache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/pkg/plru"
)

// Unit and stress coverage for the memory governor: the pressure ladder's
// transitions and hysteresis, oversized-entry rejection, byte-gauge
// conservation under concurrent churn across every policy kind, and the
// Snapshot-vs-reclaim accounting race.

// residentBytes walks every shard under its lock and sums the live
// slots' recorded costs per tenant — ground truth for the gauges.
func residentBytes[K comparable, V any](c *Cache[K, V]) (perTenant []uint64, total uint64) {
	perTenant = make([]uint64, c.tenants)
	for si := range c.shards {
		sh := &c.shards[si]
		sh.mu.Lock()
		for slot, owner := range sh.owner {
			if owner >= 0 {
				perTenant[owner] += sh.cost[slot]
				total += sh.cost[slot]
			}
		}
		sh.mu.Unlock()
	}
	return perTenant, total
}

// TestPressureLadder walks the cache up and down the watermark ladder —
// ok → aggressive → oom — and back, checking Pressure(), the emitted
// PressureEvent chain, and the hysteresis hold: once in oom, dropping
// between the watermarks must NOT clear the state; only falling below
// the low watermark does.
func TestPressureLadder(t *testing.T) {
	var mu sync.Mutex
	var events []PressureEvent
	c, err := New[uint64, uint64](
		WithShards(1), WithSets(16), WithWays(8), WithSeed(7),
		WithCost(func(k, v uint64) uint64 { return v }),
		WithMaxBytes(1000),
		WithPressureWatermarks(0.9, 0.75), // oom ≥ 900, aggressive ≥ 750
		WithMetricsSink(MetricsSink{Pressure: func(ev PressureEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 14 × 50 = 700 < 750: still ok.
	for k := uint64(0); k < 14; k++ {
		if err := c.Set(k, 50); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Pressure(); got != PressureOK {
		t.Fatalf("at 700/1000: pressure %v, want ok", got)
	}
	// 800 ≥ 750: aggressive.
	if err := c.Set(100, 100); err != nil {
		t.Fatal(err)
	}
	if got := c.Pressure(); got != PressureAggressive {
		t.Fatalf("at 800/1000: pressure %v, want aggressive", got)
	}
	// 950 ≥ 900: oom.
	if err := c.Set(101, 150); err != nil {
		t.Fatal(err)
	}
	if got := c.Pressure(); got != PressureOOM {
		t.Fatalf("at 950/1000: pressure %v, want oom", got)
	}
	// Down to 800 — between the watermarks. Hysteresis holds oom.
	if !c.Delete(101) {
		t.Fatal("Delete(101) missed")
	}
	if got := c.Pressure(); got != PressureOOM {
		t.Fatalf("at 800/1000 after oom: pressure %v, want oom held by hysteresis", got)
	}
	// Down to 700 < 750: recovery.
	if !c.Delete(100) {
		t.Fatal("Delete(100) missed")
	}
	if got := c.Pressure(); got != PressureOK {
		t.Fatalf("at 700/1000: pressure %v, want ok after recovery", got)
	}
	if got, want := c.UsedBytes(), uint64(700); got != want {
		t.Fatalf("UsedBytes = %d, want %d", got, want)
	}
	if got, want := c.MaxBytes(), uint64(1000); got != want {
		t.Fatalf("MaxBytes = %d, want %d", got, want)
	}

	mu.Lock()
	defer mu.Unlock()
	wantChain := []struct{ from, to PressureState }{
		{PressureOK, PressureAggressive},
		{PressureAggressive, PressureOOM},
		{PressureOOM, PressureOK},
	}
	if len(events) != len(wantChain) {
		t.Fatalf("got %d pressure events %+v, want %d", len(events), events, len(wantChain))
	}
	for i, ev := range events {
		if ev.From != wantChain[i].from || ev.To != wantChain[i].to {
			t.Fatalf("event %d: %v→%v, want %v→%v", i, ev.From, ev.To, wantChain[i].from, wantChain[i].to)
		}
		if ev.MaxBytes != 1000 || ev.UsedBytes == 0 {
			t.Fatalf("event %d: UsedBytes=%d MaxBytes=%d", i, ev.UsedBytes, ev.MaxBytes)
		}
	}
	for _, s := range []PressureState{PressureOK, PressureAggressive, PressureOOM} {
		if s.String() == "" || s.String() == "PressureState(?)" {
			t.Fatalf("PressureState(%d).String() = %q", s, s.String())
		}
	}
}

// TestEntryTooLarge checks oversized-entry rejection on both limits: a
// cost above the writing tenant's hard budget and a cost above the
// global cap are refused with ErrEntryTooLarge, leave no trace in the
// cache, and — in a batch — do not poison the admissible entries around
// them.
func TestEntryTooLarge(t *testing.T) {
	c, err := New[uint64, uint64](
		WithShards(1), WithSets(8), WithWays(4), WithPartitions(2),
		WithCost(func(k, v uint64) uint64 { return v }),
		WithHardBudgets(),
		WithMaxBytes(500),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetBudgets([]uint64{100, 0}); err != nil {
		t.Fatal(err)
	}

	if err := c.SetTenant(0, 1, 101); !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("cost 101 > budget 100: err %v, want ErrEntryTooLarge", err)
	}
	if _, ok := c.GetTenant(0, 1); ok {
		t.Fatal("rejected entry is resident")
	}
	// Tenant 1 has no budget: only the global cap limits it.
	if err := c.SetTenant(1, 2, 400); err != nil {
		t.Fatalf("cost 400 ≤ maxBytes for unbudgeted tenant: %v", err)
	}
	if err := c.SetTenant(1, 3, 501); !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("cost 501 > maxBytes 500: err %v, want ErrEntryTooLarge", err)
	}
	if got := c.UsedBytes(); got != 400 {
		t.Fatalf("UsedBytes = %d, want 400", got)
	}

	err = c.SetBatch(0, []uint64{10, 11, 12}, []uint64{5, 200, 7})
	if !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("batch with one oversized entry: err %v, want ErrEntryTooLarge", err)
	}
	for _, k := range []uint64{10, 12} {
		if v, ok := c.GetTenant(0, k); !ok || v != k-5 {
			t.Fatalf("admissible batch key %d lost around the oversized one: (%d,%v)", k, v, ok)
		}
	}
	if _, ok := c.GetTenant(0, 11); ok {
		t.Fatal("oversized batch entry is resident")
	}
}

// TestBytesConservationChurn hammers a hard-budget cache with concurrent
// inserts, updates and deletes under every policy kind, then checks the
// gauges against ground truth: after quiesce, each tenant's atomic gauge,
// its Stats().Bytes, and a locked walk of the slot arrays must all agree,
// every budgeted tenant must sit at or under its budget, and the global
// gauge must equal the per-tenant sum. A sampler goroutine also checks,
// mid-churn, that no gauge ever goes negative or exceeds the budget by
// more than the writers' in-flight entries.
func TestBytesConservationChurn(t *testing.T) {
	const (
		workers = 4
		rounds  = 3000
		maxCost = 8
	)
	budgets := []uint64{1 << 10, 1 << 9, 0}
	for _, kind := range plru.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			c, err := New[uint64, uint64](
				WithShards(2), WithSets(32), WithWays(8), WithPartitions(3),
				WithPolicy(kind), WithSeed(11),
				WithCost(func(k, v uint64) uint64 { return k%maxCost + 1 }),
				WithHardBudgets(),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.SetBudgets(budgets); err != nil {
				t.Fatal(err)
			}

			var stop atomic.Bool
			var sampleErr atomic.Value
			var sampler sync.WaitGroup
			sampler.Add(1)
			go func() {
				defer sampler.Done()
				for !stop.Load() {
					for tn, b := range budgets {
						g := c.gaugeTenant[tn].Load()
						if g < 0 {
							sampleErr.Store(fmt.Sprintf("tenant %d gauge went negative: %d", tn, g))
							return
						}
						if b > 0 && uint64(g) > b+workers*maxCost {
							sampleErr.Store(fmt.Sprintf("tenant %d gauge %d exceeds budget %d by more than %d in-flight entries", tn, g, b, workers))
							return
						}
					}
					if c.gaugeTotal.Load() < 0 {
						sampleErr.Store("global gauge went negative")
						return
					}
				}
			}()

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := seed*2654435761 + 1
					next := func() uint64 {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						return rng
					}
					for i := 0; i < rounds; i++ {
						key := next() % 2048
						tenant := int(next() % 3)
						switch next() % 10 {
						case 0, 1:
							c.Delete(key)
						default:
							if err := c.SetTenant(tenant, key, key); err != nil {
								panic(err)
							}
						}
					}
				}(uint64(w + 1))
			}
			wg.Wait()
			stop.Store(true)
			sampler.Wait()
			if msg := sampleErr.Load(); msg != nil {
				t.Fatal(msg)
			}

			perTenant, total := residentBytes(c)
			var statSum uint64
			for tn, ts := range c.Stats() {
				if ts.Bytes != perTenant[tn] {
					t.Fatalf("tenant %d: Stats().Bytes %d, slot walk %d", tn, ts.Bytes, perTenant[tn])
				}
				if g := uint64(c.gaugeTenant[tn].Load()); g != perTenant[tn] {
					t.Fatalf("tenant %d: gauge %d, slot walk %d", tn, g, perTenant[tn])
				}
				if b := budgets[tn]; b > 0 && ts.Bytes > b {
					t.Fatalf("tenant %d: resident %d exceeds budget %d after quiesce", tn, ts.Bytes, b)
				}
				statSum += ts.Bytes
			}
			if total != statSum {
				t.Fatalf("global slot walk %d != tenant sum %d", total, statSum)
			}
			if g := uint64(c.gaugeTotal.Load()); g != total {
				t.Fatalf("global gauge %d, slot walk %d", g, total)
			}
			if u := c.UsedBytes(); u != total {
				t.Fatalf("UsedBytes %d, slot walk %d", u, total)
			}
		})
	}
}

// TestSnapshotDuringBudgetEviction pins the ordering fixed in
// clearSlotLocked: the gauge decrement happens under the shard lock,
// before the evicted entry's OnEvict callback runs, so an observer
// inside the callback — the worst-case racing Snapshot — sees the
// departing bytes counted exactly once, never both in the gauge and in
// flight. If the decrement moved after the callback, UsedBytes inside
// OnEvict would exceed the cap every time enforcement fires.
func TestSnapshotDuringBudgetEviction(t *testing.T) {
	var c *Cache[uint64, uint64]
	var inEvict, violations atomic.Uint64
	c, err := New[uint64, uint64](
		WithShards(1), WithSets(4), WithWays(4), WithSeed(3),
		WithCost(func(k, v uint64) uint64 { return 64 }),
		WithMaxBytes(256), // 4 entries of 64: the 5th always reclaims
		WithOnEvict(func(k, v uint64) {
			inEvict.Add(1)
			if snap := c.Snapshot(); snap.UsedBytes > snap.MaxBytes {
				violations.Add(1)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := uint64(0); k < 64; k++ {
		if err := c.Set(k, k); err != nil {
			t.Fatal(err)
		}
		if got := c.UsedBytes(); got > 256 {
			t.Fatalf("after Set(%d): UsedBytes %d exceeds cap 256", k, got)
		}
	}
	if inEvict.Load() == 0 {
		t.Fatal("workload never triggered an eviction; the race window was never exercised")
	}
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d Snapshot frames inside OnEvict double-counted departing bytes", n)
	}
	if snap := c.Snapshot(); snap.BudgetEvictedBytes == 0 {
		t.Fatal("BudgetEvictedBytes stayed 0 despite cap-driven reclaim")
	}
}

// TestHardBudgetStressBound is the acceptance-bar stress: concurrent
// writers against tight per-tenant budgets and a global cap; sampled
// mid-churn, no tenant's gauge may exceed its budget by more than the
// writers' in-flight entries, and after quiesce every gauge must be at
// or under its limit. Run with -race in CI.
func TestHardBudgetStressBound(t *testing.T) {
	const (
		workers = 4
		rounds  = 4000
		maxCost = 16
	)
	budgets := []uint64{512, 256}
	const maxBytes = 1024
	c, err := New[uint64, uint64](
		WithShards(4), WithSets(16), WithWays(8), WithPartitions(2),
		WithSeed(13),
		WithCost(func(k, v uint64) uint64 { return k%maxCost + 1 }),
		WithHardBudgets(),
		WithMaxBytes(maxBytes),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetBudgets(budgets); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var sampleErr atomic.Value
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for !stop.Load() {
			for tn, b := range budgets {
				if g := uint64(c.gaugeTenant[tn].Load()); g > b+workers*maxCost {
					sampleErr.Store(fmt.Sprintf("tenant %d gauge %d > budget %d + %d in-flight", tn, g, b, workers*maxCost))
					return
				}
			}
			if g := uint64(c.gaugeTotal.Load()); g > maxBytes+workers*maxCost {
				sampleErr.Store(fmt.Sprintf("global gauge %d > cap %d + %d in-flight", g, maxBytes, workers*maxCost))
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := seed*0x9e3779b97f4a7c15 | 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			batchK := make([]uint64, 8)
			batchV := make([]uint64, 8)
			for i := 0; i < rounds; i++ {
				tenant := int(next() % 2)
				if next()%16 == 0 {
					for j := range batchK {
						batchK[j] = next() % 4096
						batchV[j] = batchK[j]
					}
					if err := c.SetBatch(tenant, batchK, batchV); err != nil {
						panic(err)
					}
				} else {
					key := next() % 4096
					if err := c.SetTenant(tenant, key, key); err != nil {
						panic(err)
					}
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	stop.Store(true)
	sampler.Wait()
	if msg := sampleErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	for tn, b := range budgets {
		if g := uint64(c.gaugeTenant[tn].Load()); g > b {
			t.Fatalf("tenant %d settles at %d, over budget %d", tn, g, b)
		}
	}
	if g := uint64(c.gaugeTotal.Load()); g > maxBytes {
		t.Fatalf("global gauge settles at %d, over cap %d", g, maxBytes)
	}
	perTenant, total := residentBytes(c)
	for tn := range budgets {
		if g := uint64(c.gaugeTenant[tn].Load()); g != perTenant[tn] {
			t.Fatalf("tenant %d: gauge %d, slot walk %d", tn, g, perTenant[tn])
		}
	}
	if g := uint64(c.gaugeTotal.Load()); g != total {
		t.Fatalf("global gauge %d, slot walk %d", g, total)
	}
	var budgetEv uint64
	for _, ts := range c.Stats() {
		budgetEv += ts.BudgetEvictions
	}
	if budgetEv == 0 {
		t.Fatal("stress never forced a budget eviction; the bound was never tested")
	}
}
