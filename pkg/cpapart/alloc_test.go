//go:build !race

// Allocation guard for the scratch-reusing allocator variants. Excluded
// from -race runs (instrumentation skews AllocsPerRun accounting); CI
// runs it in the dedicated non-race "alloc guards" step.

package cpapart

import "testing"

// TestScratchSteadyStateZeroAllocs checks the Into variants stop
// allocating once the scratch has grown to the working geometry.
func TestScratchSteadyStateZeroAllocs(t *testing.T) {
	var s Scratch
	curves := randomCurves(4, 16, 7)
	dst := make(Allocation, 4)
	blocks := make([]Block, 4)
	masks := MasksInto(nil, Fair{}.Allocate(curves, 16), 16)
	// Warm up so every scratch slice reaches capacity.
	dst = MinMisses{}.AllocateInto(dst, &s, curves, 16)
	dst = BuddyMinMissesInto(dst, &s, curves, 16)
	if n := testing.AllocsPerRun(50, func() {
		dst = MinMisses{}.AllocateInto(dst, &s, curves, 16)
		dst = BuddyMinMissesInto(dst, &s, curves, 16)
		var err error
		blocks, err = BuddyLayoutInto(blocks, &s, dst, 16)
		if err != nil {
			t.Fatal(err)
		}
		masks = MasksInto(masks, dst, 16)
	}); n != 0 {
		t.Fatalf("steady-state Into allocators allocate %v times per run, want 0", n)
	}
}
