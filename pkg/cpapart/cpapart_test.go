package cpapart

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
	"repro/pkg/plru"
)

// syntheticCurve builds a non-increasing miss curve for `ways`+1 entries
// from a total and a decay knob.
func syntheticCurve(rng *xrand.RNG, ways int) []uint64 {
	c := make([]uint64, ways+1)
	cur := uint64(1000 + rng.Intn(100000))
	for w := 0; w <= ways; w++ {
		c[w] = cur
		drop := uint64(float64(cur) * (0.05 + rng.Float64()*0.4))
		if drop > cur {
			drop = cur
		}
		cur -= drop
	}
	return c
}

// bruteForceBest enumerates all allocations and returns the minimum total
// misses (reference for the DP).
func bruteForceBest(curves [][]uint64, ways int) uint64 {
	n := len(curves)
	best := ^uint64(0)
	var rec func(t, left int, acc uint64)
	rec = func(t, left int, acc uint64) {
		if t == n-1 {
			if left >= 1 {
				if v := acc + curves[t][left]; v < best {
					best = v
				}
			}
			return
		}
		for a := 1; a <= left-(n-1-t); a++ {
			rec(t+1, left-a, acc+curves[t][a])
		}
	}
	rec(0, ways, 0)
	return best
}

func TestMinMissesMatchesBruteForce(t *testing.T) {
	rng := xrand.New(41)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(3) // 2..4 threads
		ways := 8
		curves := make([][]uint64, n)
		for i := range curves {
			curves[i] = syntheticCurve(rng, ways)
		}
		alloc := MinMisses{}.Allocate(curves, ways)
		if !alloc.Valid(ways) {
			t.Fatalf("trial %d: invalid allocation %v", trial, alloc)
		}
		got := TotalMisses(curves, alloc)
		want := bruteForceBest(curves, ways)
		if got != want {
			t.Fatalf("trial %d: DP total %d != brute force %d (alloc %v)",
				trial, got, want, alloc)
		}
	}
}

func TestMinMissesPrefersCacheHungryThread(t *testing.T) {
	// Thread 0 gains nothing from extra ways; thread 1 gains a lot.
	ways := 8
	flat := make([]uint64, ways+1)
	steep := make([]uint64, ways+1)
	for w := 0; w <= ways; w++ {
		flat[w] = 1000
		steep[w] = uint64(10000 / (w + 1))
	}
	alloc := MinMisses{}.Allocate([][]uint64{flat, steep}, ways)
	if alloc[0] != 1 || alloc[1] != 7 {
		t.Fatalf("alloc = %v, want [1 7]", alloc)
	}
}

func TestMinMissesDeterministicOnTies(t *testing.T) {
	ways := 8
	same := make([]uint64, ways+1)
	for w := range same {
		same[w] = 100 // completely flat: every allocation ties
	}
	a1 := MinMisses{}.Allocate([][]uint64{same, same}, ways)
	a2 := MinMisses{}.Allocate([][]uint64{same, same}, ways)
	if a1[0] != a2[0] || a1[1] != a2[1] {
		t.Fatalf("tie-breaking not deterministic: %v vs %v", a1, a2)
	}
}

func TestLookaheadValidAndNeverBeatsDP(t *testing.T) {
	rng := xrand.New(43)
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(7) // 2..8 threads
		ways := 16
		curves := make([][]uint64, n)
		for i := range curves {
			curves[i] = syntheticCurve(rng, ways)
		}
		greedy := Lookahead{}.Allocate(curves, ways)
		if !greedy.Valid(ways) {
			t.Fatalf("trial %d: invalid greedy allocation %v", trial, greedy)
		}
		opt := MinMisses{}.Allocate(curves, ways)
		if TotalMisses(curves, greedy) < TotalMisses(curves, opt) {
			t.Fatalf("trial %d: greedy beat the optimal DP", trial)
		}
	}
}

func TestFair(t *testing.T) {
	curves := make([][]uint64, 3)
	for i := range curves {
		curves[i] = make([]uint64, 17)
	}
	alloc := Fair{}.Allocate(curves, 16)
	if alloc[0] != 6 || alloc[1] != 5 || alloc[2] != 5 {
		t.Fatalf("Fair alloc = %v, want [6 5 5]", alloc)
	}
	if !alloc.Valid(16) {
		t.Fatal("Fair allocation invalid")
	}
}

func TestStatic(t *testing.T) {
	curves := make([][]uint64, 2)
	for i := range curves {
		curves[i] = make([]uint64, 9)
	}
	s := Static{Fixed: Allocation{3, 5}}
	alloc := s.Allocate(curves, 8)
	if alloc[0] != 3 || alloc[1] != 5 {
		t.Fatalf("Static alloc = %v", alloc)
	}
	// Returned allocation must be a copy.
	alloc[0] = 99
	if s.Fixed[0] != 3 {
		t.Fatal("Static returned its internal slice")
	}
}

func TestMasksContiguousDisjointComplete(t *testing.T) {
	a := Allocation{3, 1, 4}
	masks := Masks(a, 8)
	var union plru.WayMask
	for i, m := range masks {
		if m.Count() != a[i] {
			t.Fatalf("mask %d has %d ways, want %d", i, m.Count(), a[i])
		}
		if union&m != 0 {
			t.Fatalf("mask %d overlaps earlier masks", i)
		}
		union |= m
	}
	if union != plru.Full(8) {
		t.Fatalf("masks do not cover the cache: %v", union)
	}
	// Contiguity: thread 0 gets ways 0-2.
	if !masks[0].Has(0) || !masks[0].Has(2) || masks[0].Has(3) {
		t.Fatalf("mask 0 = %v, want {0,1,2}", masks[0])
	}
}

func TestAllocationValid(t *testing.T) {
	if !(Allocation{1, 3}).Valid(4) {
		t.Error("valid allocation rejected")
	}
	if (Allocation{0, 4}).Valid(4) {
		t.Error("zero-way allocation accepted")
	}
	if (Allocation{2, 3}).Valid(4) {
		t.Error("wrong-total allocation accepted")
	}
}

func TestBuddyMinMissesPowerOfTwoShares(t *testing.T) {
	rng := xrand.New(59)
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(7)
		ways := 16
		curves := make([][]uint64, n)
		for i := range curves {
			curves[i] = syntheticCurve(rng, ways)
		}
		alloc := BuddyMinMisses(curves, ways)
		if !alloc.Valid(ways) {
			t.Fatalf("invalid buddy allocation %v", alloc)
		}
		for _, s := range alloc {
			if s&(s-1) != 0 {
				t.Fatalf("share %d not a power of two in %v", s, alloc)
			}
		}
		// The buddy optimum can never beat the unconstrained optimum.
		unconstrained := MinMisses{}.Allocate(curves, ways)
		if TotalMisses(curves, alloc) < TotalMisses(curves, unconstrained) {
			t.Fatal("buddy allocation beat the unconstrained DP")
		}
	}
}

func TestBuddyMinMissesOptimalAmongBuddy(t *testing.T) {
	// Brute-force all power-of-two compositions for small cases.
	rng := xrand.New(61)
	var enumerate func(n, left int, cur []int, out *[][]int)
	enumerate = func(n, left int, cur []int, out *[][]int) {
		if n == 0 {
			if left == 0 {
				*out = append(*out, append([]int(nil), cur...))
			}
			return
		}
		for s := 1; s <= left; s *= 2 {
			enumerate(n-1, left-s, append(cur, s), out)
		}
	}
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(2)
		ways := 8
		curves := make([][]uint64, n)
		for i := range curves {
			curves[i] = syntheticCurve(rng, ways)
		}
		var all [][]int
		enumerate(n, ways, nil, &all)
		best := ^uint64(0)
		for _, comp := range all {
			if v := TotalMisses(curves, comp); v < best {
				best = v
			}
		}
		got := TotalMisses(curves, BuddyMinMisses(curves, ways))
		if got != best {
			t.Fatalf("buddy DP %d != exhaustive best %d", got, best)
		}
	}
}

func TestBuddyLayoutDisjointAlignedComplete(t *testing.T) {
	cases := [][]int{
		{8, 4, 2, 1, 1},
		{4, 4, 4, 4},
		{16},
		{1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 4},
		{2, 1, 1, 4, 8},
	}
	for _, sizes := range cases {
		blocks, err := BuddyLayout(sizes, 16)
		if err != nil {
			t.Fatalf("layout %v: %v", sizes, err)
		}
		var union plru.WayMask
		for i, b := range blocks {
			if b.Size != sizes[i] {
				t.Fatalf("block %d has size %d, want %d", i, b.Size, sizes[i])
			}
			if b.Lo%b.Size != 0 {
				t.Fatalf("block %v misaligned", b)
			}
			if union&b.Mask() != 0 {
				t.Fatalf("block %v overlaps", b)
			}
			union |= b.Mask()
		}
		if union != plru.Full(16) {
			t.Fatalf("layout %v does not cover all ways", sizes)
		}
	}
}

func TestBuddyLayoutRejectsBadInputs(t *testing.T) {
	if _, err := BuddyLayout([]int{3, 13}, 16); err == nil {
		t.Error("non-power-of-two shares accepted")
	}
	if _, err := BuddyLayout([]int{8, 4}, 16); err == nil {
		t.Error("short total accepted")
	}
	if _, err := BuddyLayout([]int{8, 8}, 12); err == nil {
		t.Error("non-power-of-two ways accepted")
	}
}

func TestBuddyLayoutPropertyAllCompositions(t *testing.T) {
	// Every multiset of powers of two summing to 16 must pack.
	var rec func(left int, min int, cur []int) bool
	var check func(sizes []int) bool
	check = func(sizes []int) bool {
		blocks, err := BuddyLayout(sizes, 16)
		if err != nil {
			return false
		}
		var union plru.WayMask
		for _, b := range blocks {
			if b.Lo%b.Size != 0 || union&b.Mask() != 0 {
				return false
			}
			union |= b.Mask()
		}
		return union == plru.Full(16)
	}
	ok := true
	rec = func(left, min int, cur []int) bool {
		if left == 0 {
			if !check(cur) {
				return false
			}
			return true
		}
		for s := min; s <= left; s *= 2 {
			if !rec(left-s, s, append(cur, s)) {
				return false
			}
		}
		return true
	}
	if !rec(16, 1, nil) {
		ok = false
	}
	if !ok {
		t.Fatal("some power-of-two composition failed to pack")
	}
}

func TestForceVectorsMatchBlockMask(t *testing.T) {
	// For every aligned block in a 16-way cache, the force vectors must
	// steer VictimForced into exactly the block, agreeing with the mask
	// walk, regardless of tree state.
	p := plru.NewBTPolicy(1, 16)
	rng := xrand.New(71)
	for trial := 0; trial < 200; trial++ {
		p.Touch(0, rng.Intn(16), 0)
		for size := 1; size <= 16; size *= 2 {
			for lo := 0; lo < 16; lo += size {
				b := Block{Lo: lo, Size: size}
				up, down := ForceVectors(b, 16)
				v := p.VictimForced(0, up, down)
				if !b.Mask().Has(v) {
					t.Fatalf("block %v: forced victim %d escaped", b, v)
				}
				if vm := p.Victim(0, 0, b.Mask()); vm != v {
					t.Fatalf("block %v: forced %d != masked %d", b, v, vm)
				}
			}
		}
	}
}

func TestAllocationSumsProperty(t *testing.T) {
	f := func(seed uint64, rawN, rawW uint8) bool {
		n := int(rawN)%6 + 2
		ways := 16
		rng := xrand.New(seed)
		curves := make([][]uint64, n)
		for i := range curves {
			curves[i] = syntheticCurve(rng, ways)
		}
		for _, alg := range []Algorithm{MinMisses{}, Lookahead{}, Fair{}} {
			if !alg.Allocate(curves, ways).Valid(ways) {
				return false
			}
		}
		return BuddyMinMisses(curves, ways).Valid(ways)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
