package cpapart

// Byte-budget support: a software cache partitions *ways*, but operators
// reason in *bytes*. The translation layer here turns per-thread byte
// budgets into per-thread way caps (WayCaps) and lets the MinMisses
// dynamic programs respect those caps (AllocateCappedInto,
// BuddyMinMissesCappedInto), so a partitioning decision driven by miss
// curves can be constrained by memory budgets without giving up the
// paper's way-granular enforcement. This is the cost/weight-aware
// direction of AWRP-style replacement work, applied at the allocator
// rather than per line: the replacement policy stays untouched (and
// cheap), and the budget pressure is expressed where the paper's
// machinery already makes global decisions — the way allocation.

// WayCaps converts per-thread byte budgets into per-thread way caps for a
// `ways`-way cache, writing into dst (reused when large enough).
//
// budgets[t] is thread t's byte budget (0 = unlimited); bytesPerWay[t] is
// the caller's estimate of how many bytes one way holds for that thread
// (typically resident bytes divided by currently assigned ways; 0 when
// there is no estimate, which also means unlimited). The raw cap is
// budgets[t]/bytesPerWay[t], clamped to [1, ways].
//
// Because a way-partitioned cache must hand out every way (an unowned way
// would be unevictable), WayCaps guarantees feasibility: while the caps
// sum below `ways`, the cap of the thread with the most unlimited budget
// — unlimited first, then largest budget, ties to the lowest thread id —
// is raised. The result therefore always satisfies cap[t] >= 1 and
// sum(cap) >= ways, which is exactly what the capped allocators require.
func WayCaps(dst []int, budgets []uint64, bytesPerWay []uint64, ways int) []int {
	n := len(budgets)
	if n == 0 {
		panic("cpapart: no threads")
	}
	if len(bytesPerWay) != n {
		panic("cpapart: budgets and bytesPerWay lengths differ")
	}
	if ways < n {
		panic("cpapart: fewer ways than threads")
	}
	if cap(dst) < n {
		dst = make([]int, n)
	}
	caps := dst[:n]
	for t := range caps {
		if budgets[t] == 0 || bytesPerWay[t] == 0 {
			caps[t] = ways
			continue
		}
		w := int(budgets[t] / bytesPerWay[t])
		if w < 1 {
			w = 1
		}
		if w > ways {
			w = ways
		}
		caps[t] = w
	}
	// Raise caps until an exact-cover allocation exists. Surplus ways go
	// to the thread that can best absorb them: unlimited budgets first,
	// then the largest budget, ties broken toward lower ids.
	for {
		total := 0
		for _, w := range caps {
			total += w
		}
		if total >= ways {
			return caps
		}
		best := -1
		for t := range caps {
			if caps[t] >= ways {
				continue
			}
			if best < 0 {
				best = t
				continue
			}
			bu, cu := budgets[best] == 0 || bytesPerWay[best] == 0, budgets[t] == 0 || bytesPerWay[t] == 0
			switch {
			case cu && !bu:
				best = t
			case cu == bu && budgets[t] > budgets[best]:
				best = t
			}
		}
		caps[best]++
	}
}

// AllocateCappedInto is AllocateInto with per-thread way caps: thread t
// receives between 1 and caps[t] ways. A nil caps behaves exactly like
// AllocateInto. The caps must admit an exact cover of `ways` (each >= 1,
// sum >= ways — what WayCaps guarantees); AllocateCappedInto panics
// otherwise, because an infeasible cap set is always a caller bug.
func (MinMisses) AllocateCappedInto(dst Allocation, s *Scratch, curves [][]uint64, ways int, caps []int) Allocation {
	checkInputs(curves, ways)
	n := len(curves)
	checkCaps(caps, n, ways)
	const inf = ^uint64(0)

	// f[t][w] = min total misses over threads [0,t) using exactly w ways,
	// with thread i limited to caps[i] ways.
	f, choice := s.tables(n+1, ways+1)
	for t := range f {
		for w := range f[t] {
			f[t][w] = inf
			choice[t][w] = 0
		}
	}
	f[0][0] = 0
	for t := 1; t <= n; t++ {
		hi := ways
		if caps != nil && caps[t-1] < hi {
			hi = caps[t-1]
		}
		for w := t; w <= ways; w++ {
			max := w - (t - 1)
			if max > hi {
				max = hi
			}
			for a := 1; a <= max; a++ {
				prev := f[t-1][w-a]
				if prev == inf {
					continue
				}
				cand := prev + curves[t-1][a]
				if cand < f[t][w] {
					f[t][w] = cand
					choice[t][w] = a
				}
			}
		}
	}
	if f[n][ways] == inf {
		panic("cpapart: way caps admit no exact-cover allocation")
	}
	alloc := growAlloc(dst, n)
	w := ways
	for t := n; t >= 1; t-- {
		a := choice[t][w]
		alloc[t-1] = a
		w -= a
	}
	return alloc
}

// BuddyMinMissesCappedInto is BuddyMinMissesInto with per-thread way caps:
// thread t's power-of-two share may not exceed caps[t]. A nil caps behaves
// exactly like BuddyMinMissesInto. Because shares are powers of two, a cap
// of e.g. 5 limits the thread to 4 ways. The caps must admit a feasible
// buddy cover; BuddyMinMissesCappedInto panics otherwise (WayCaps output
// can be infeasible here when the power-of-two floors of the caps sum
// below `ways` — callers relax caps with RelaxBuddyCaps first).
func BuddyMinMissesCappedInto(dst Allocation, s *Scratch, curves [][]uint64, ways int, caps []int) Allocation {
	checkInputs(curves, ways)
	if ways&(ways-1) != 0 {
		panic("cpapart: buddy allocation requires power-of-two ways")
	}
	n := len(curves)
	checkCaps(caps, n, ways)
	const inf = ^uint64(0)
	f, choice := s.tables(n+1, ways+1)
	for t := range f {
		for w := range f[t] {
			f[t][w] = inf
			choice[t][w] = 0
		}
	}
	f[0][0] = 0
	for t := 1; t <= n; t++ {
		hi := ways
		if caps != nil && caps[t-1] < hi {
			hi = caps[t-1]
		}
		for w := 0; w <= ways; w++ {
			for sz := 1; sz <= w && sz <= hi; sz *= 2 {
				prev := f[t-1][w-sz]
				if prev == inf {
					continue
				}
				cand := prev + curves[t-1][sz]
				if cand < f[t][w] {
					f[t][w] = cand
					choice[t][w] = sz
				}
			}
		}
	}
	if f[n][ways] == inf {
		if caps == nil {
			panic("cpapart: no buddy allocation exists (too many threads for ways?)")
		}
		panic("cpapart: way caps admit no buddy allocation")
	}
	alloc := growAlloc(dst, n)
	w := ways
	for t := n; t >= 1; t-- {
		sz := choice[t][w]
		alloc[t-1] = sz
		w -= sz
	}
	return alloc
}

// RelaxBuddyCaps widens caps (in place) until a buddy cover of `ways`
// exists: while no multiset of power-of-two shares sz[t] in [1, caps[t]]
// sums exactly to `ways` (sum >= ways is not enough — caps {2, 8} cannot
// tile 8), the cap of the thread with the most headroom to its budget —
// largest budget first, ties to the lowest id — is doubled. budgets may
// be nil (then ties alone order the relaxation). Returns caps for
// convenience.
func RelaxBuddyCaps(caps []int, budgets []uint64, ways int) []int {
	pow2Floor := func(v int) int {
		p := 1
		for p*2 <= v {
			p *= 2
		}
		return p
	}
	for !buddyCapsFeasible(caps, ways) {
		best := -1
		for t := range caps {
			if pow2Floor(caps[t]) >= ways {
				continue
			}
			if best < 0 || (budgets != nil && budgets[t] > budgets[best]) {
				best = t
			}
		}
		if best < 0 {
			return caps // every thread already at ways: nothing to widen
		}
		caps[best] = pow2Floor(caps[best]) * 2
	}
	return caps
}

// buddyCapsFeasible reports whether power-of-two shares sz[t] in
// [1, caps[t]] can sum exactly to ways. Subset-sum over a 65-bit
// reachability set (sums 0..64), no allocation.
func buddyCapsFeasible(caps []int, ways int) bool {
	lo, hi := uint64(1), uint64(0) // bit s set iff sum s reachable
	for _, c := range caps {
		var nlo, nhi uint64
		for sz := 1; sz <= c && sz <= ways; sz *= 2 {
			nlo |= lo << uint(sz)
			nhi |= hi<<uint(sz) | lo>>uint(64-sz)
		}
		lo, hi = nlo, nhi
	}
	if ways < 64 {
		return lo&(1<<uint(ways)) != 0
	}
	return hi&1 != 0
}

// checkCaps validates a cap vector against the allocator preconditions.
func checkCaps(caps []int, n, ways int) {
	if caps == nil {
		return
	}
	if len(caps) != n {
		panic("cpapart: caps length does not match thread count")
	}
	for _, w := range caps {
		if w < 1 || w > ways {
			panic("cpapart: each way cap must be in [1, ways]")
		}
	}
}
