package cpapart

import (
	"fmt"

	"repro/pkg/plru"
)

// Scratch holds the working storage the *Into allocator variants reuse
// between calls: the DP tables of MinMisses/BuddyMinMisses and the free
// list + ordering of BuddyLayoutInto. A zero Scratch is ready to use; it
// grows on first use and every later call with the same (threads, ways)
// geometry runs without heap allocation. A Scratch is not safe for
// concurrent use — callers that repartition online (repro/pkg/cpacache's
// Rebalance) keep one per cache behind their control-plane lock.
type Scratch struct {
	f      [][]uint64
	choice [][]int
	free   []Block
	order  []int
}

// tables returns f and choice sized rows×cols, reusing prior backing
// arrays whenever they are large enough. Contents are undefined; callers
// must initialize every cell they read.
func (s *Scratch) tables(rows, cols int) ([][]uint64, [][]int) {
	if cap(s.f) < rows {
		s.f = make([][]uint64, rows)
		s.choice = make([][]int, rows)
	}
	s.f = s.f[:rows]
	s.choice = s.choice[:rows]
	for i := 0; i < rows; i++ {
		if cap(s.f[i]) < cols {
			s.f[i] = make([]uint64, cols)
			s.choice[i] = make([]int, cols)
		}
		s.f[i] = s.f[i][:cols]
		s.choice[i] = s.choice[i][:cols]
	}
	return s.f, s.choice
}

// growAlloc returns dst resized to n entries, reusing its backing array
// when possible.
func growAlloc(dst Allocation, n int) Allocation {
	if cap(dst) < n {
		return make(Allocation, n)
	}
	return dst[:n]
}

// AllocateInto is Allocate with caller-owned result and scratch storage:
// the returned Allocation reuses dst's backing array when it is large
// enough, and the DP tables live in s. Steady-state calls (same geometry)
// perform no heap allocation. It is the uncapped case of
// AllocateCappedInto (budget.go), which holds the one DP implementation.
func (m MinMisses) AllocateInto(dst Allocation, s *Scratch, curves [][]uint64, ways int) Allocation {
	return m.AllocateCappedInto(dst, s, curves, ways, nil)
}

// BuddyMinMissesInto is BuddyMinMisses with caller-owned result and
// scratch storage, mirroring AllocateInto. It is the uncapped case of
// BuddyMinMissesCappedInto (budget.go).
func BuddyMinMissesInto(dst Allocation, s *Scratch, curves [][]uint64, ways int) Allocation {
	return BuddyMinMissesCappedInto(dst, s, curves, ways, nil)
}

// BuddyLayoutInto is BuddyLayout with caller-owned result and scratch
// storage: dst's backing array is reused when large enough, and the buddy
// free list plus size ordering live in s. The placement is identical to
// BuddyLayout's (largest-first, stable on thread index, lowest fitting
// address).
func BuddyLayoutInto(dst []Block, s *Scratch, sizes []int, ways int) ([]Block, error) {
	if ways <= 0 || ways&(ways-1) != 0 {
		return nil, fmt.Errorf("cpapart: ways %d not a power of two", ways)
	}
	total := 0
	for _, sz := range sizes {
		if sz <= 0 || sz&(sz-1) != 0 {
			return nil, fmt.Errorf("cpapart: share %d not a power of two", sz)
		}
		total += sz
	}
	if total != ways {
		return nil, fmt.Errorf("cpapart: shares sum to %d, want %d", total, ways)
	}

	// Order indices by size descending; insertion sort keeps it stable on
	// index (determinism) without sort.SliceStable's closure allocation.
	order := s.order[:0]
	for i := range sizes {
		order = append(order, i)
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && sizes[order[j-1]] < sizes[order[j]]; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	s.order = order

	free := append(s.free[:0], Block{Lo: 0, Size: ways}) // kept sorted by Lo
	if cap(dst) < len(sizes) {
		dst = make([]Block, len(sizes))
	}
	blocks := dst[:len(sizes)]
	for _, i := range order {
		want := sizes[i]
		// Find the smallest free block that fits, lowest address first.
		best := -1
		for j, b := range free {
			if b.Size >= want && (best < 0 || b.Size < free[best].Size ||
				(b.Size == free[best].Size && b.Lo < free[best].Lo)) {
				best = j
			}
		}
		if best < 0 {
			s.free = free
			return nil, fmt.Errorf("cpapart: internal packing failure for sizes %v", sizes)
		}
		b := free[best]
		free = append(free[:best], free[best+1:]...)
		// Split down to the wanted size, returning the upper halves.
		for b.Size > want {
			half := b.Size / 2
			free = append(free, Block{Lo: b.Lo + half, Size: half})
			b.Size = half
		}
		blocks[i] = b
		// Re-sort the free list by Lo (insertion sort: it is nearly sorted).
		for x := 1; x < len(free); x++ {
			for y := x; y > 0 && free[y-1].Lo > free[y].Lo; y-- {
				free[y-1], free[y] = free[y], free[y-1]
			}
		}
	}
	s.free = free
	return blocks, nil
}

// MasksInto is Masks with a caller-owned destination slice, reused when
// large enough.
func MasksInto(dst []plru.WayMask, a Allocation, ways int) []plru.WayMask {
	if !a.Valid(ways) {
		panic(fmt.Sprintf("cpapart: allocation %v invalid for %d ways", a, ways))
	}
	if cap(dst) < len(a) {
		dst = make([]plru.WayMask, len(a))
	}
	masks := dst[:len(a)]
	lo := 0
	for i, w := range a {
		masks[i] = 0
		for k := 0; k < w; k++ {
			masks[i] = masks[i].With(lo + k)
		}
		lo += w
	}
	return masks
}
