// Package cpapart implements the partition-selection side of a dynamic
// cache partitioning algorithm: given per-thread (per-tenant) miss curves
// derived from (e)SDHs or any other profile, choose how many ways each
// thread receives. It is the public home of the algorithms the paper
// reproduction uses internally, and the quota engine behind
// repro/pkg/cpacache's online rebalancing.
//
// The paper uses MinMisses [Qureshi & Patt, MICRO'06 / Moreto et al.]:
// assign ways so the predicted total miss count is minimal, with at least
// one way per thread. We implement it as an exact dynamic program (cheap
// at N ≤ 8 threads, A = 16 ways) plus the classic Lookahead greedy for
// comparison, a Fair (equal) splitter and a Static allocator.
//
// For the BT enforcement, allocations must be realizable by per-level
// up/down force vectors, which constrains each thread's share to a power
// of two laid out on an aligned "buddy" block; BuddyMinMisses performs the
// optimal rounding and BuddyLayout computes a concrete block placement.
package cpapart

import (
	"fmt"

	"repro/pkg/plru"
)

// Allocation holds the number of ways assigned to each thread.
type Allocation []int

// Total returns the number of ways allocated in total.
func (a Allocation) Total() int {
	t := 0
	for _, w := range a {
		t += w
	}
	return t
}

// Valid reports whether the allocation gives every thread at least one
// way and exactly `ways` in total.
func (a Allocation) Valid(ways int) bool {
	if a.Total() != ways {
		return false
	}
	for _, w := range a {
		if w < 1 {
			return false
		}
	}
	return true
}

// String renders e.g. "[10 4 1 1]".
func (a Allocation) String() string { return fmt.Sprint([]int(a)) }

// Exceeds reports whether any thread's share exceeds its cap. A nil caps
// slice means unconstrained; caps must otherwise be at least as long as
// the allocation. Callers enforcing byte budgets translate them into way
// caps and use this to detect an installed allocation that violates them.
func (a Allocation) Exceeds(caps []int) bool {
	if caps == nil {
		return false
	}
	for t, w := range a {
		if w > caps[t] {
			return true
		}
	}
	return false
}

// Algorithm selects an allocation from per-thread miss curves.
// curves[i][w] is the predicted miss count of thread i when assigned w
// ways (w in 0..ways); curves must be non-increasing in w.
type Algorithm interface {
	Name() string
	Allocate(curves [][]uint64, ways int) Allocation
}

// checkInputs validates the common Allocate preconditions.
func checkInputs(curves [][]uint64, ways int) {
	n := len(curves)
	if n == 0 {
		panic("cpapart: no threads")
	}
	if ways < n {
		panic(fmt.Sprintf("cpapart: %d ways cannot give %d threads one each", ways, n))
	}
	for i, c := range curves {
		if len(c) != ways+1 {
			panic(fmt.Sprintf("cpapart: curve %d has %d entries, want %d", i, len(c), ways+1))
		}
	}
}

// TotalMisses evaluates an allocation against the curves.
func TotalMisses(curves [][]uint64, a Allocation) uint64 {
	var t uint64
	for i, w := range a {
		t += curves[i][w]
	}
	return t
}

// MinMisses is the exact dynamic-programming MinMisses policy.
type MinMisses struct{}

// Name returns "MinMisses".
func (MinMisses) Name() string { return "MinMisses" }

// Allocate returns an allocation minimizing the predicted total misses
// with >= 1 way per thread. Ties are broken toward giving earlier threads
// fewer ways, deterministically. Use AllocateInto with a Scratch to run
// the same dynamic program without per-call allocation.
func (m MinMisses) Allocate(curves [][]uint64, ways int) Allocation {
	var s Scratch
	return m.AllocateInto(nil, &s, curves, ways)
}

// Lookahead is the greedy marginal-utility allocator from Qureshi & Patt's
// UCP: repeatedly grant the block of ways with the highest miss reduction
// per way.
type Lookahead struct{}

// Name returns "Lookahead".
func (Lookahead) Name() string { return "Lookahead" }

// Allocate implements the lookahead greedy loop.
func (Lookahead) Allocate(curves [][]uint64, ways int) Allocation {
	checkInputs(curves, ways)
	n := len(curves)
	alloc := make(Allocation, n)
	for i := range alloc {
		alloc[i] = 1
	}
	balance := ways - n
	for balance > 0 {
		bestApp, bestK := 0, 1
		bestRatio := -1.0
		for i := 0; i < n; i++ {
			for k := 1; k <= balance; k++ {
				gain := float64(curves[i][alloc[i]]) - float64(curves[i][alloc[i]+k])
				ratio := gain / float64(k)
				if ratio > bestRatio {
					bestRatio, bestApp, bestK = ratio, i, k
				}
			}
		}
		alloc[bestApp] += bestK
		balance -= bestK
	}
	return alloc
}

// Fair splits ways as evenly as possible (remainder to lower thread ids).
type Fair struct{}

// Name returns "Fair".
func (Fair) Name() string { return "Fair" }

// Allocate ignores the curves and splits evenly.
func (Fair) Allocate(curves [][]uint64, ways int) Allocation {
	checkInputs(curves, ways)
	n := len(curves)
	alloc := make(Allocation, n)
	for i := range alloc {
		alloc[i] = ways / n
	}
	for i := 0; i < ways%n; i++ {
		alloc[i]++
	}
	return alloc
}

// Static always returns a fixed allocation.
type Static struct{ Fixed Allocation }

// Name returns "Static".
func (Static) Name() string { return "Static" }

// Allocate returns a copy of the fixed allocation.
func (s Static) Allocate(curves [][]uint64, ways int) Allocation {
	checkInputs(curves, ways)
	if !s.Fixed.Valid(ways) {
		panic("cpapart: static allocation invalid for geometry")
	}
	return append(Allocation(nil), s.Fixed...)
}

// Masks converts an allocation into contiguous global replacement masks:
// thread i receives alloc[i] consecutive ways starting where thread i-1's
// share ended. Contiguity is not required by the masks hardware but keeps
// layouts deterministic and comparable with the BT buddy layout.
func Masks(a Allocation, ways int) []plru.WayMask {
	return MasksInto(nil, a, ways)
}

// ----- Binary-buddy support for BT enforcement -----

// Block is an aligned region of ways [Lo, Lo+Size) with Size a power of
// two and Lo a multiple of Size.
type Block struct{ Lo, Size int }

// Mask returns the block as a way mask.
func (b Block) Mask() plru.WayMask {
	return plru.Full(b.Lo+b.Size) &^ plru.Full(b.Lo)
}

// BuddyMinMisses returns the allocation minimizing predicted misses under
// the BT constraint that every share is a power of two (and the shares sum
// to `ways`, which must itself be a power of two). Use BuddyMinMissesInto
// with a Scratch to run the same dynamic program without per-call
// allocation.
func BuddyMinMisses(curves [][]uint64, ways int) Allocation {
	var s Scratch
	return BuddyMinMissesInto(nil, &s, curves, ways)
}

// BuddyLayout places power-of-two shares onto disjoint aligned blocks of a
// `ways`-way set. A multiset of powers of two summing to `ways` always
// packs (largest-first into a buddy free list); BuddyLayout returns an
// error only on invalid inputs. Use BuddyLayoutInto with a Scratch to
// compute the same placement without per-call allocation.
func BuddyLayout(sizes []int, ways int) ([]Block, error) {
	var s Scratch
	return BuddyLayoutInto(nil, &s, sizes, ways)
}

// ForceVectors converts an aligned block into the paper's per-level
// up/down force vectors for a BT of the given associativity: levels above
// the block's subtree are forced toward it and levels inside are free.
func ForceVectors(b Block, ways int) (up, down []bool) {
	levels := 0
	for 1<<uint(levels) < ways {
		levels++
	}
	up = make([]bool, levels)
	down = make([]bool, levels)
	span := ways
	base := 0
	for d := 0; d < levels && span > b.Size; d++ {
		mid := base + span/2
		if b.Lo < mid {
			up[d] = true
		} else {
			down[d] = true
			base = mid
		}
		span /= 2
	}
	return up, down
}
