package cpapart_test

import (
	"fmt"

	"repro/pkg/cpapart"
)

// MinMisses picks the way split that minimizes the predicted total miss
// count. curves[t][w] is thread t's predicted misses when owning w ways:
// thread 0 stops missing once it has 3 ways, thread 1 never benefits (a
// streaming workload), so the allocator gives thread 0 everything beyond
// the churner's mandatory single way.
func ExampleMinMisses() {
	curves := [][]uint64{
		{900, 700, 400, 100, 100, 100, 100, 100, 100}, // wants 3 ways
		{500, 500, 500, 500, 500, 500, 500, 500, 500}, // cache-insensitive
	}
	alloc := cpapart.MinMisses{}.Allocate(curves, 8)
	fmt.Println("allocation:", alloc)
	fmt.Println("predicted misses:", cpapart.TotalMisses(curves, alloc))
	// Output:
	// allocation: [7 1]
	// predicted misses: 600
}

// Under BT pseudo-LRU, enforcement uses per-level force vectors, so every
// share must be a power of two on an aligned buddy block. BuddyMinMisses
// does the optimal rounding; BuddyLayout places the blocks; ForceVectors
// renders a block as the paper's up/down bits.
func ExampleBuddyMinMisses() {
	curves := [][]uint64{
		{900, 700, 400, 100, 100, 100, 100, 100, 100},
		{500, 500, 500, 500, 500, 500, 500, 500, 500},
	}
	alloc := cpapart.BuddyMinMisses(curves, 8)
	blocks, err := cpapart.BuddyLayout(alloc, 8)
	if err != nil {
		panic(err)
	}
	fmt.Println("power-of-two allocation:", alloc)
	for t, b := range blocks {
		fmt.Printf("thread %d owns ways %v\n", t, b.Mask())
	}
	// Output:
	// power-of-two allocation: [4 4]
	// thread 0 owns ways {0,1,2,3}
	// thread 1 owns ways {4,5,6,7}
}

// WayCaps translates byte budgets into way caps: thread 0's 3 KiB budget
// at ~1 KiB resident per way supports 3 ways; thread 1 is unlimited. The
// capped allocator then respects the cap no matter how hungry thread 0's
// miss curve is.
func ExampleWayCaps() {
	budgets := []uint64{3 << 10, 0}       // 3 KiB, unlimited
	bytesPerWay := []uint64{1 << 10, 512} // observed resident density
	caps := cpapart.WayCaps(nil, budgets, bytesPerWay, 8)
	fmt.Println("way caps:", caps)

	curves := [][]uint64{
		{900, 800, 700, 600, 500, 400, 300, 200, 100}, // wants everything
		{400, 350, 300, 300, 300, 300, 300, 300, 300},
	}
	var s cpapart.Scratch
	alloc := cpapart.MinMisses{}.AllocateCappedInto(nil, &s, curves, 8, caps)
	fmt.Println("capped allocation:", alloc)
	// Output:
	// way caps: [3 8]
	// capped allocation: [3 5]
}
