package cpapart

import (
	"testing"

	"repro/internal/xrand"
)

func benchCurves(n, ways int) [][]uint64 {
	rng := xrand.New(11)
	curves := make([][]uint64, n)
	for i := range curves {
		curves[i] = syntheticCurve(rng, ways)
	}
	return curves
}

func BenchmarkMinMisses2Threads(b *testing.B) {
	curves := benchCurves(2, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MinMisses{}.Allocate(curves, 16)
	}
}

func BenchmarkMinMisses8Threads(b *testing.B) {
	curves := benchCurves(8, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MinMisses{}.Allocate(curves, 16)
	}
}

func BenchmarkLookahead8Threads(b *testing.B) {
	curves := benchCurves(8, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Lookahead{}.Allocate(curves, 16)
	}
}

func BenchmarkBuddyMinMisses8Threads(b *testing.B) {
	curves := benchCurves(8, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuddyMinMisses(curves, 16)
	}
}

func BenchmarkBuddyLayout(b *testing.B) {
	sizes := []int{4, 4, 2, 2, 1, 1, 1, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuddyLayout(sizes, 16); err != nil {
			b.Fatal(err)
		}
	}
}
