package cpapart

import (
	"reflect"
	"testing"
)

// randomCurves builds n non-increasing pseudo-random miss curves for the
// given associativity from a tiny deterministic generator.
func randomCurves(n, ways int, seed uint64) [][]uint64 {
	rng := seed*0x9E3779B97F4A7C15 + 1
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	curves := make([][]uint64, n)
	for i := range curves {
		c := make([]uint64, ways+1)
		c[0] = 10_000 + next()%10_000
		for w := 1; w <= ways; w++ {
			drop := next() % (c[w-1]/uint64(ways) + 1)
			c[w] = c[w-1] - drop
		}
		curves[i] = c
	}
	return curves
}

// TestIntoVariantsMatchAllocating checks the scratch-reusing variants
// produce byte-identical results to the allocating APIs across many random
// curve sets — including when the scratch is reused across geometries.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	var s Scratch
	var dst Allocation
	var blocks []Block
	for seed := uint64(1); seed <= 40; seed++ {
		for _, geo := range []struct{ n, ways int }{{2, 8}, {4, 16}, {3, 16}, {8, 32}, {1, 4}} {
			curves := randomCurves(geo.n, geo.ways, seed)
			want := MinMisses{}.Allocate(curves, geo.ways)
			dst = MinMisses{}.AllocateInto(dst, &s, curves, geo.ways)
			if !reflect.DeepEqual(want, dst) {
				t.Fatalf("seed %d geo %+v: AllocateInto = %v, want %v", seed, geo, dst, want)
			}

			wantB := BuddyMinMisses(curves, geo.ways)
			dst = BuddyMinMissesInto(dst, &s, curves, geo.ways)
			if !reflect.DeepEqual(wantB, dst) {
				t.Fatalf("seed %d geo %+v: BuddyMinMissesInto = %v, want %v", seed, geo, dst, wantB)
			}

			wantBlocks, err := BuddyLayout(wantB, geo.ways)
			if err != nil {
				t.Fatal(err)
			}
			blocks, err = BuddyLayoutInto(blocks, &s, wantB, geo.ways)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantBlocks, blocks) {
				t.Fatalf("seed %d geo %+v: BuddyLayoutInto = %v, want %v", seed, geo, blocks, wantBlocks)
			}

			wantMasks := Masks(want, geo.ways)
			gotMasks := MasksInto(nil, want, geo.ways)
			if !reflect.DeepEqual(wantMasks, gotMasks) {
				t.Fatalf("seed %d geo %+v: MasksInto = %v, want %v", seed, geo, gotMasks, wantMasks)
			}
		}
	}
}

// TestBuddyLayoutIntoErrors pins the validation paths.
func TestBuddyLayoutIntoErrors(t *testing.T) {
	var s Scratch
	if _, err := BuddyLayoutInto(nil, &s, []int{4, 4}, 12); err == nil {
		t.Fatal("non-power-of-two ways accepted")
	}
	if _, err := BuddyLayoutInto(nil, &s, []int{3, 5}, 8); err == nil {
		t.Fatal("non-power-of-two share accepted")
	}
	if _, err := BuddyLayoutInto(nil, &s, []int{4, 2}, 8); err == nil {
		t.Fatal("short total accepted")
	}
}
