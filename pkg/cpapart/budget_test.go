package cpapart

import (
	"reflect"
	"testing"
)

// flatCurve returns a curve that never benefits from ways (a churner).
func flatCurve(ways int, misses uint64) []uint64 {
	c := make([]uint64, ways+1)
	for i := range c {
		c[i] = misses
	}
	return c
}

// stepCurve returns a curve whose misses drop to `floor` once the thread
// owns at least `need` ways (a looping working set of that size).
func stepCurve(ways, need int, top, floor uint64) []uint64 {
	c := make([]uint64, ways+1)
	for i := range c {
		if i >= need {
			c[i] = floor
		} else {
			c[i] = top
		}
	}
	return c
}

func TestWayCaps(t *testing.T) {
	tests := []struct {
		name        string
		budgets     []uint64
		bytesPerWay []uint64
		ways        int
		want        []int
	}{
		{
			name:        "plain division",
			budgets:     []uint64{4096, 1024},
			bytesPerWay: []uint64{512, 512},
			ways:        8,
			want:        []int{8, 2},
		},
		{
			name:        "zero budget means unlimited",
			budgets:     []uint64{0, 2048},
			bytesPerWay: []uint64{512, 512},
			ways:        8,
			want:        []int{8, 4},
		},
		{
			name:        "zero estimate means unlimited",
			budgets:     []uint64{100, 2048},
			bytesPerWay: []uint64{0, 512},
			ways:        8,
			want:        []int{8, 4},
		},
		{
			name:        "tiny budget still gets one way",
			budgets:     []uint64{1, 0},
			bytesPerWay: []uint64{512, 512},
			ways:        8,
			want:        []int{1, 8},
		},
		{
			// Every thread capped below ways/n: caps must be raised until
			// an exact cover exists, toward the larger budget (thread 1).
			name:        "infeasible caps raised toward larger budget",
			budgets:     []uint64{512, 1024},
			bytesPerWay: []uint64{512, 512},
			ways:        8,
			want:        []int{1, 7},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := WayCaps(nil, tc.budgets, tc.bytesPerWay, tc.ways)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("WayCaps(%v,%v,%d) = %v, want %v",
					tc.budgets, tc.bytesPerWay, tc.ways, got, tc.want)
			}
			// Feasibility invariants the capped allocators rely on.
			total := 0
			for _, w := range got {
				if w < 1 || w > tc.ways {
					t.Fatalf("cap %d out of [1,%d]", w, tc.ways)
				}
				total += w
			}
			if total < tc.ways {
				t.Fatalf("caps %v sum to %d < %d ways", got, total, tc.ways)
			}
		})
	}
}

func TestWayCapsReusesDst(t *testing.T) {
	dst := make([]int, 4)
	got := WayCaps(dst, []uint64{0, 0}, []uint64{0, 0}, 8)
	if &got[0] != &dst[0] {
		t.Fatal("WayCaps allocated a fresh slice despite a large enough dst")
	}
}

// TestAllocateCappedHonorsCaps checks the capped DP never hands a thread
// more than its cap, and that it matches the uncapped DP when caps do not
// bind.
func TestAllocateCappedHonorsCaps(t *testing.T) {
	ways := 16
	curves := [][]uint64{
		stepCurve(ways, 12, 1000, 10), // wants 12 ways
		stepCurve(ways, 4, 500, 5),    // wants 4
		flatCurve(ways, 300),          // wants none
	}
	var s Scratch

	uncapped := MinMisses{}.AllocateCappedInto(nil, &s, curves, ways, nil)
	if want := (MinMisses{}).Allocate(curves, ways); !reflect.DeepEqual(uncapped, want) {
		t.Fatalf("nil caps diverges from Allocate: %v vs %v", uncapped, want)
	}
	if uncapped[0] < 12 {
		t.Fatalf("uncapped: thread 0 got %d ways, want >= 12", uncapped[0])
	}

	// Cap thread 0 at 6: the DP must respect it and give the freed ways
	// to whoever still benefits.
	capped := MinMisses{}.AllocateCappedInto(nil, &s, curves, ways, []int{6, 16, 16})
	if capped[0] > 6 {
		t.Fatalf("capped: thread 0 got %d ways over its cap of 6", capped[0])
	}
	if !Allocation(capped).Valid(ways) {
		t.Fatalf("capped allocation %v invalid", capped)
	}
	// Loose caps must not change the answer.
	loose := MinMisses{}.AllocateCappedInto(nil, &s, curves, ways, []int{16, 16, 16})
	if !reflect.DeepEqual(loose, uncapped) {
		t.Fatalf("loose caps changed the allocation: %v vs %v", loose, uncapped)
	}
}

// TestAllocateCappedOptimalUnderCaps checks the capped DP is still optimal
// among allocations that respect the caps (exhaustive check, small case).
func TestAllocateCappedOptimalUnderCaps(t *testing.T) {
	ways := 8
	curves := [][]uint64{
		stepCurve(ways, 5, 100, 2),
		stepCurve(ways, 4, 90, 1),
	}
	caps := []int{3, 8}
	var s Scratch
	got := MinMisses{}.AllocateCappedInto(nil, &s, curves, ways, caps)
	best := ^uint64(0)
	var bestAlloc Allocation
	for a := 1; a <= caps[0] && a < ways; a++ {
		b := ways - a
		if b < 1 || b > caps[1] {
			continue
		}
		if m := curves[0][a] + curves[1][b]; m < best {
			best = m
			bestAlloc = Allocation{a, b}
		}
	}
	if TotalMisses(curves, got) != best {
		t.Fatalf("capped DP chose %v (%d misses), optimum %v (%d)",
			got, TotalMisses(curves, got), bestAlloc, best)
	}
}

func TestBuddyCappedHonorsCaps(t *testing.T) {
	ways := 16
	curves := [][]uint64{
		stepCurve(ways, 12, 1000, 10),
		stepCurve(ways, 4, 500, 5),
		flatCurve(ways, 300),
	}
	var s Scratch
	uncapped := BuddyMinMissesCappedInto(nil, &s, curves, ways, nil)
	if want := BuddyMinMisses(curves, ways); !reflect.DeepEqual(uncapped, want) {
		t.Fatalf("nil caps diverges from BuddyMinMisses: %v vs %v", uncapped, want)
	}
	capped := BuddyMinMissesCappedInto(nil, &s, curves, ways, []int{7, 16, 16})
	if capped[0] > 4 { // power-of-two floor of cap 7
		t.Fatalf("buddy capped: thread 0 got %d ways, want <= 4", capped[0])
	}
	for _, sz := range capped {
		if sz&(sz-1) != 0 {
			t.Fatalf("buddy share %d not a power of two in %v", sz, capped)
		}
	}
	if !Allocation(capped).Valid(ways) {
		t.Fatalf("buddy capped allocation %v invalid", capped)
	}
}

func TestRelaxBuddyCaps(t *testing.T) {
	// pow2 floors are 2+2+2 = 6 < 8: relaxation must widen toward the
	// largest budget until a buddy cover exists.
	caps := []int{3, 3, 2}
	budgets := []uint64{10, 100, 50}
	got := RelaxBuddyCaps(caps, budgets, 8)
	total := 0
	for _, w := range got {
		p := 1
		for p*2 <= w {
			p *= 2
		}
		total += p
	}
	if total < 8 {
		t.Fatalf("RelaxBuddyCaps left infeasible caps %v", got)
	}
	if got[1] < got[0] || got[1] < got[2] {
		t.Fatalf("relaxation should favor the largest budget: %v", got)
	}
	// And the buddy DP must now succeed under them.
	ways := 8
	curves := [][]uint64{flatCurve(ways, 1), flatCurve(ways, 1), flatCurve(ways, 1)}
	var s Scratch
	alloc := BuddyMinMissesCappedInto(nil, &s, curves, ways, got)
	if !Allocation(alloc).Valid(ways) {
		t.Fatalf("post-relaxation buddy allocation %v invalid", alloc)
	}
}

func TestCappedPanicsOnBadCaps(t *testing.T) {
	ways := 8
	curves := [][]uint64{flatCurve(ways, 1), flatCurve(ways, 1)}
	var s Scratch
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("wrong length", func() {
		MinMisses{}.AllocateCappedInto(nil, &s, curves, ways, []int{8})
	})
	mustPanic("zero cap", func() {
		MinMisses{}.AllocateCappedInto(nil, &s, curves, ways, []int{0, 8})
	})
	mustPanic("infeasible sum", func() {
		MinMisses{}.AllocateCappedInto(nil, &s, curves, ways, []int{3, 3})
	})
}

func TestAllocationExceeds(t *testing.T) {
	tests := []struct {
		name string
		a    Allocation
		caps []int
		want bool
	}{
		{name: "nil caps is unconstrained", a: Allocation{8, 8}, caps: nil, want: false},
		{name: "within caps", a: Allocation{4, 2}, caps: []int{4, 2}, want: false},
		{name: "one tenant over", a: Allocation{5, 2}, caps: []int{4, 4}, want: true},
		{name: "last tenant over", a: Allocation{1, 1, 3}, caps: []int{2, 2, 2}, want: true},
		{name: "zero allocation never exceeds", a: Allocation{0, 0}, caps: []int{0, 0}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Exceeds(tt.caps); got != tt.want {
				t.Fatalf("Allocation(%v).Exceeds(%v) = %v, want %v", tt.a, tt.caps, got, tt.want)
			}
		})
	}
}
