// Command doccheck keeps the repo's Markdown surface from rotting. It
// walks every *.md file under the given roots (default ".") and checks:
//
//   - Relative links: every [text](target) whose target is not an
//     absolute URL or a pure #anchor must resolve to an existing file or
//     directory, relative to the Markdown file. Targets that escape the
//     scanned root (e.g. GitHub-site-relative badge paths like
//     ../../actions/...) are skipped — they are not local files.
//   - Go code blocks: every ```go fence must parse. Full-file blocks
//     (starting with a package clause) must additionally be gofmt-clean.
//     Fragments are accepted if they parse as top-level declarations or
//     as statements (optionally below a leading import block), which is
//     how README-style snippets are written.
//
// Exit status is nonzero when any check fails, so `make docs-check` and
// the CI docs job gate on it.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/format"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doccheck [root ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	problems := 0
	for _, root := range roots {
		absRoot, err := filepath.Abs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == ".git" || name == "vendor" || name == "node_modules" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.EqualFold(filepath.Ext(path), ".md") {
				return nil
			}
			for _, p := range checkFile(path, absRoot) {
				fmt.Println(p)
				problems++
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", problems)
		os.Exit(1)
	}
}

// checkFile returns the problems found in one Markdown file.
func checkFile(path, absRoot string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var problems []string
	problems = append(problems, checkLinks(path, absRoot, data)...)
	problems = append(problems, checkGoBlocks(path, data)...)
	return problems
}

// checkLinks validates relative link targets against the filesystem.
// Fenced code blocks are skipped: `fns[op](x)` in a snippet is an index
// expression, not a Markdown link.
func checkLinks(path, absRoot string, data []byte) []string {
	var problems []string
	dir := filepath.Dir(path)
	inFence := false
	for lineNo, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if target == "" ||
				strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(dir, target)
			abs, err := filepath.Abs(resolved)
			if err != nil || !strings.HasPrefix(abs, absRoot+string(filepath.Separator)) && abs != absRoot {
				continue // escapes the scanned tree (site-relative URL): not a local file
			}
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", path, lineNo+1, m[1]))
			}
		}
	}
	return problems
}

// checkGoBlocks extracts ```go fences and checks they parse (and, for
// full-file blocks, that they are gofmt-clean).
func checkGoBlocks(path string, data []byte) []string {
	var problems []string
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		j := start
		for j < len(lines) && strings.TrimSpace(lines[j]) != "```" {
			j++
		}
		if j == len(lines) {
			problems = append(problems, fmt.Sprintf("%s:%d: unterminated ```go fence", path, i+1))
			break
		}
		block := strings.Join(lines[start:j], "\n")
		problems = append(problems, checkGoBlock(path, start+1, block)...)
		i = j
	}
	return problems
}

// checkGoBlock validates one fenced Go block.
func checkGoBlock(path string, line int, block string) []string {
	trimmed := strings.TrimSpace(block)
	if trimmed == "" {
		return nil
	}
	if strings.HasPrefix(trimmed, "package ") {
		// A complete file: must parse and be gofmt-clean.
		if err := parses(block); err != nil {
			return []string{fmt.Sprintf("%s:%d: go block does not parse: %v", path, line, err)}
		}
		formatted, err := format.Source([]byte(block))
		if err != nil {
			return []string{fmt.Sprintf("%s:%d: gofmt: %v", path, line, err)}
		}
		if !bytes.Equal(bytes.TrimSpace(formatted), []byte(trimmed)) {
			return []string{fmt.Sprintf("%s:%d: go block is not gofmt-formatted", path, line)}
		}
		return nil
	}
	// A fragment: accept top-level declarations, bare statements, or a
	// leading import block followed by statements.
	header, rest := splitImports(block)
	candidates := []string{
		"package p\n" + block,
		"package p\nfunc _() {\n" + block + "\n}",
		"package p\n" + header + "\nfunc _() {\n" + rest + "\n}",
	}
	var firstErr error
	for _, src := range candidates {
		if err := parses(src); err == nil {
			return nil
		} else if firstErr == nil {
			firstErr = err
		}
	}
	return []string{fmt.Sprintf("%s:%d: go fragment does not parse: %v", path, line, firstErr)}
}

// splitImports separates a leading import declaration (single-line or
// grouped) from the rest of a fragment.
func splitImports(block string) (header, rest string) {
	lines := strings.Split(block, "\n")
	i := 0
	for i < len(lines) && strings.TrimSpace(lines[i]) == "" {
		i++
	}
	if i >= len(lines) || !strings.HasPrefix(strings.TrimSpace(lines[i]), "import") {
		return "", block
	}
	if strings.Contains(lines[i], "(") {
		j := i
		for j < len(lines) && !strings.HasPrefix(strings.TrimSpace(lines[j]), ")") {
			j++
		}
		if j == len(lines) {
			return "", block
		}
		return strings.Join(lines[i:j+1], "\n"), strings.Join(lines[j+1:], "\n")
	}
	return lines[i], strings.Join(lines[i+1:], "\n")
}

// parses reports whether src parses as a Go file.
func parses(src string) error {
	fset := token.NewFileSet()
	_, err := parser.ParseFile(fset, "block.go", src, 0)
	return err
}
