package main

import (
	"bufio"
	"context"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/resp"
)

var listenRe = regexp.MustCompile(`cpacached listening on (\S+)`)

// startDaemon builds the cpacached binary, boots it on a random port,
// and returns the address it listens on plus a handle for signaling.
// The returned log func reports everything the daemon wrote.
func startDaemon(t *testing.T, args ...string) (addr string, proc *exec.Cmd, logDone <-chan struct{}, logged func() string) {
	t.Helper()
	// Race-instrument the daemon: the exec-based tests then assert
	// race-freedom of the real serving path, not just the test harness.
	bin := filepath.Join(t.TempDir(), "cpacached")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cpacached: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	var mu sync.Mutex
	var lines []string
	addrCh := make(chan string, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			mu.Lock()
			lines = append(lines, sc.Text())
			mu.Unlock()
			if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("cpacached never logged its listen address")
	}
	return addr, cmd, done, func() string {
		mu.Lock()
		defer mu.Unlock()
		return strings.Join(lines, "\n")
	}
}

// TestDaemonEndToEnd is the server integration smoke: boot the real
// binary, hit it with raw pipelined RESP and a loadgen run, then
// SIGTERM and require a clean drain (exit 0, drain logged, in-flight
// replies delivered).
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon")
	}
	addr, cmd, logDone, logged := startDaemon(t,
		"-shards", "4", "-sets", "256", "-ways", "8", "-policy", "bt",
		"-tenant", "smoke:hunter2:8",
	)

	// Raw pipelined fixture: AUTH + a burst in one write, replies in order.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fixture := "*2\r\n$4\r\nAUTH\r\n$7\r\nhunter2\r\n" +
		"*3\r\n$3\r\nSET\r\n$3\r\nfoo\r\n$3\r\nbar\r\n" +
		"*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n" +
		"*5\r\n$4\r\nMSET\r\n$1\r\na\r\n$1\r\n1\r\n$1\r\nb\r\n$2\r\n22\r\n" +
		"*4\r\n$4\r\nMGET\r\n$1\r\na\r\n$1\r\nb\r\n$4\r\nnope\r\n" +
		"PING\r\n"
	if _, err := conn.Write([]byte(fixture)); err != nil {
		t.Fatal(err)
	}
	r := resp.NewReader(conn)
	wantKinds := []struct {
		desc string
		chk  func(resp.Reply) bool
	}{
		{"AUTH ok", func(p resp.Reply) bool { return string(p.Str) == "OK" }},
		{"SET ok", func(p resp.Reply) bool { return string(p.Str) == "OK" }},
		{"GET bar", func(p resp.Reply) bool { return string(p.Str) == "bar" }},
		{"MSET ok", func(p resp.Reply) bool { return string(p.Str) == "OK" }},
		{"MGET triple", func(p resp.Reply) bool {
			return p.Kind == resp.KindArray && len(p.Array) == 3 &&
				string(p.Array[0].Str) == "1" && string(p.Array[1].Str) == "22" && p.Array[2].Null
		}},
		{"PING", func(p resp.Reply) bool { return string(p.Str) == "PONG" }},
	}
	for _, want := range wantKinds {
		rep, err := r.ReadReply()
		if err != nil {
			t.Fatalf("%s: %v", want.desc, err)
		}
		if !want.chk(rep) {
			t.Fatalf("%s: unexpected reply %+v", want.desc, rep)
		}
	}

	// Drive it with the load engine (the cpaload code path).
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:     addr,
		Conns:    2,
		Pipeline: 8,
		Requests: 4_000,
		KeySpace: 500,
		SetRatio: 0.3,
		Auth:     "hunter2",
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.Requests < 4_000 || res.ErrReplys > 0 {
		t.Fatalf("loadgen run incomplete: %+v", res)
	}
	if res.Hits == 0 {
		t.Fatalf("no cache hits over a 500-key space: %+v", res)
	}

	// Park one more pipelined burst, then SIGTERM mid-session: the
	// daemon must answer what it received and exit 0.
	burst := strings.Repeat("PING\r\n", 32)
	if _, err := conn.Write([]byte(burst)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if rep, err := r.ReadReply(); err != nil || string(rep.Str) != "PONG" {
			t.Fatalf("pre-drain reply %d: %+v %v", i, rep, err)
		}
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain the stderr scanner to EOF before Wait: Wait closes the pipe,
	// which can drop the final drain log lines mid-read.
	select {
	case <-logDone:
	case <-time.After(10 * time.Second):
		t.Fatalf("cpacached stderr never closed after SIGTERM:\n%s", logged())
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("cpacached exited dirty after SIGTERM: %v\n%s", err, logged())
	}
	if !strings.Contains(logged(), "cpacached drained") {
		t.Fatalf("drain never logged:\n%s", logged())
	}
	// The woken connection must now read EOF, not hang.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.ReadReply(); err == nil {
		t.Fatal("connection still open after daemon drained")
	}
}

// TestDaemonFlagValidation checks bad configs exit non-zero with a
// diagnostic rather than serving.
func TestDaemonFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon")
	}
	bin := filepath.Join(t.TempDir(), "cpacached")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cpacached: %v\n%s", err, out)
	}
	for _, args := range [][]string{
		{"-policy", "fifo"},
		{"-tenant", "nocolon"},
		{"-tenant", "a:x", "-tenant", "b:"},
		{"-tenant", "a:x:4", "-tenant", "b:y"},
	} {
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("args %v accepted; output:\n%s", args, out)
		}
		var exit *exec.ExitError
		if !errors.As(err, &exit) {
			t.Fatalf("args %v: unexpected error type %v", args, err)
		}
	}
	_ = os.Remove(bin)
}
