// Command cpacached is a multi-tenant RESP (redis-compatible) cache
// server over pkg/cpacache: way-partitioned tenants with pLRU
// replacement per the paper's partitioning design, byte budgets, TTLs,
// and pipelined GET/SET/MGET/MSET/DEL/EXISTS/TTL/AUTH/INFO.
//
// Usage:
//
//	cpacached -addr :6379 -ways 16 -policy bt \
//	    -tenant gold:secret1:12:1073741824 -tenant lead:secret2:4
//
// Each -tenant flag is name:password[:ways[:budget-bytes]]; repeat it
// per tenant. With no -tenant the server is a single open tenant (no
// AUTH). SIGTERM/SIGINT drain gracefully: in-flight pipelines finish,
// then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

// tenantFlags collects repeated -tenant specs.
type tenantFlags []server.TenantConfig

func (t *tenantFlags) String() string { return fmt.Sprintf("%d tenants", len(*t)) }

func (t *tenantFlags) Set(spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 4 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("want name:password[:ways[:budget]], got %q", spec)
	}
	tc := server.TenantConfig{Name: parts[0], Password: parts[1]}
	if len(parts) >= 3 {
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 0 {
			return fmt.Errorf("bad ways in %q", spec)
		}
		tc.Ways = n
	}
	if len(parts) == 4 {
		n, err := strconv.ParseUint(parts[3], 10, 64)
		if err != nil {
			return fmt.Errorf("bad budget in %q", spec)
		}
		tc.Budget = n
	}
	*t = append(*t, tc)
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", ":6379", "listen address (host:port; port 0 picks a free port)")
		shards       = flag.Int("shards", 8, "cache shards")
		sets         = flag.Int("sets", 1024, "sets per shard")
		ways         = flag.Int("ways", 16, "ways per set (associativity)")
		policy       = flag.String("policy", "bt", "replacement policy: lru, nru, bt, random, awrp, arc")
		autoSelect   = flag.Bool("policy-autoselect", false, "score candidate policies online and switch per tenant at rebalance boundaries (pair with -auto-rebalance)")
		defaultTTL   = flag.Duration("default-ttl", 0, "TTL applied to SETs without EX/PX (0 = none)")
		maxBytes     = flag.Uint64("max-bytes", 0, "cap on resident bytes (key+value); inserts over the cap evict-on-write and writes past the high watermark get -OOM (0 = uncapped)")
		hardBudgets  = flag.Bool("hard-budgets", false, "enforce per-tenant byte budgets evict-on-write instead of only steering rebalances")
		highMark     = flag.Float64("high-watermark", 0, "fraction of -max-bytes at which writes get -OOM (0 = default 0.9)")
		lowMark      = flag.Float64("low-watermark", 0, "fraction of -max-bytes below which OOM/aggressive pressure clears (0 = default 0.75)")
		rebalance    = flag.Duration("auto-rebalance", 0, "background repartition interval (0 = off)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight pipelines on shutdown")
		maxConns     = flag.Int("max-conns", 0, "max concurrent client connections; over-cap connects get -ERR and close (0 = unlimited)")
		maxPerTenant = flag.Int("max-conns-per-tenant", 0, "max concurrent connections per tenant (0 = unlimited)")
		rateOps      = flag.Float64("rate-limit-ops", 0, "per-tenant command rate limit in ops/s; throttled commands get -BUSY (0 = unlimited)")
		rateBytes    = flag.Float64("rate-limit-bytes", 0, "per-tenant request-payload rate limit in bytes/s (0 = unlimited)")
		readTimeout  = flag.Duration("read-timeout", 0, "per-connection read/idle deadline; slow or idle clients are evicted (0 = none)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-connection reply-flush deadline (0 = none)")
		faultSpec    = flag.String("fault-spec", "", "TESTS ONLY: inject faults into the listener, e.g. seed=7,accept-err=0.05,latency=0.02:2ms,partial-write=0.02,reset=0.02")
		tenants      tenantFlags
	)
	flag.Var(&tenants, "tenant", "tenant spec name:password[:ways[:budget-bytes]] (repeatable)")
	flag.Parse()

	kind, err := server.ParsePolicy(*policy)
	if err != nil {
		log.Fatalf("cpacached: %v", err)
	}
	fault, err := faultinject.Parse(*faultSpec)
	if err != nil {
		log.Fatalf("cpacached: %v", err)
	}
	srv, err := server.New(server.Config{
		Shards:            *shards,
		Sets:              *sets,
		Ways:              *ways,
		Policy:            kind,
		PolicyAutoSelect:  *autoSelect,
		Tenants:           tenants,
		DefaultTTL:        *defaultTTL,
		MaxBytes:          *maxBytes,
		HardBudgets:       *hardBudgets,
		HighWatermark:     *highMark,
		LowWatermark:      *lowMark,
		AutoRebalance:     *rebalance,
		MaxConns:          *maxConns,
		MaxConnsPerTenant: *maxPerTenant,
		RateLimitOps:      *rateOps,
		RateLimitBytes:    *rateBytes,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		Logf:              log.Printf,
	})
	if err != nil {
		log.Fatalf("cpacached: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("cpacached: %v", err)
	}
	if fault.Enabled() {
		log.Printf("cpacached FAULT INJECTION ACTIVE (tests only): %s", *faultSpec)
		ln = faultinject.WrapListener(ln, fault)
	}

	// Shutdown runs off the signal goroutine; Serve returns as soon as
	// the listener closes, so main must wait for the drain to finish
	// before exiting or the final connections (and log lines) are cut off.
	shutdownDone := make(chan error, 1)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		log.Printf("cpacached received %s, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(ln); err != nil {
		log.Fatalf("cpacached: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		log.Printf("cpacached drain incomplete: %v", err)
		os.Exit(1)
	}
}
