package main

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/loadgen"
)

// memInfo is one INFO # Memory frame scraped off the daemon.
type memInfo struct {
	used     uint64
	pressure string
}

func scrapeMemInfo(c *chaosClient, deadline time.Time) (memInfo, error) {
	rep, err := c.do(deadline, "INFO")
	if err != nil {
		return memInfo{}, err
	}
	var mi memInfo
	for _, line := range strings.Split(string(rep.Str), "\r\n") {
		if v, ok := strings.CutPrefix(line, "used_memory:"); ok {
			mi.used, _ = strconv.ParseUint(v, 10, 64)
		}
		if v, ok := strings.CutPrefix(line, "pressure_state:"); ok {
			mi.pressure = v
		}
	}
	if mi.pressure == "" {
		return memInfo{}, fmt.Errorf("INFO frame has no pressure_state:\n%s", rep.Str)
	}
	return mi, nil
}

// TestDaemonMemStorm is the memory-pressure chaos lane: the race-
// instrumented daemon boots with a 256 KB byte cap and is stormed with
// 1 KB short-TTL values — each write a meaningful fraction of the whole
// budget — while a monitor scrapes INFO throughout. The governor must
// hold the line three ways at once:
//
//   - containment: used_memory never exceeds the cap by more than the
//     writers' in-flight entries, no matter how hard the storm pushes;
//   - no lost acks: the load engine requeues -OOM refusals instead of
//     acknowledging them, so its completed budget proves every
//     acknowledged write actually reached the cache;
//   - recovery: once the storm stops, expiry drains the pressure back
//     to ok and ordinary writes flow again, read-your-write intact,
//     and SIGTERM still drains cleanly.
func TestDaemonMemStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon")
	}
	const (
		maxBytes  = 256 << 10
		valueSize = 1024
		conns     = 4
	)
	addr, cmd, logDone, logged := startDaemon(t,
		"-shards", "2", "-sets", "256", "-ways", "8", "-policy", "lru",
		"-max-bytes", strconv.Itoa(maxBytes),
	)

	// Monitor: scrape INFO continuously during the storm, tracking the
	// high-water mark of used_memory and the ladder states visited.
	monStop := make(chan struct{})
	var monWG sync.WaitGroup
	var monMu sync.Mutex
	var maxUsed uint64
	states := map[string]bool{}
	var monErr error
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		mc := &chaosClient{t: t, addr: addr}
		defer mc.close()
		for {
			select {
			case <-monStop:
				return
			default:
			}
			mi, err := scrapeMemInfo(mc, time.Now().Add(2*time.Second))
			monMu.Lock()
			if err != nil {
				monErr = err
				monMu.Unlock()
				return
			}
			if mi.used > maxUsed {
				maxUsed = mi.used
			}
			states[mi.pressure] = true
			monMu.Unlock()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// The storm: write-heavy 1 KB values over a key space 8× the cap,
	// every entry on a short TTL so expiry — not only eviction — drains
	// pressure. The engine acknowledges a request only when the server
	// executed it; -OOM refusals are requeued and retried after the
	// ladder clears, so a completed run means zero acked writes lost.
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:      addr,
		Conns:     conns,
		Pipeline:  8,
		Requests:  6_000,
		KeySpace:  2_000,
		ValueSize: valueSize,
		SetRatio:  0.8,
		TTL:       400 * time.Millisecond,

		Reconnect:      true,
		RequestTimeout: 2 * time.Second,
	})
	close(monStop)
	monWG.Wait()
	if err != nil {
		t.Fatalf("storm loadgen: %v", err)
	}
	monMu.Lock()
	peak, visited, scrapeErr := maxUsed, states, monErr
	monMu.Unlock()
	if scrapeErr != nil {
		t.Fatalf("INFO monitor: %v", scrapeErr)
	}
	if res.Requests < 6_000 {
		t.Fatalf("storm run incomplete — acknowledged writes were lost: %+v", res)
	}
	if res.OOMRejected == 0 {
		t.Fatalf("storm never drew an -OOM refusal; the cap was not exercised: %+v", res)
	}
	if res.ErrReplys > 0 {
		t.Fatalf("unexpected non-OOM error replies during the storm: %+v", res)
	}
	// Containment: the gauge may transiently exceed the cap only by the
	// writers' in-flight entries (key + value + pipeline slack each).
	slack := uint64(conns * (valueSize + 1024))
	if peak > maxBytes+slack {
		t.Fatalf("used_memory peaked at %d, above cap %d + in-flight slack %d", peak, maxBytes, slack)
	}
	if peak == 0 {
		t.Fatal("monitor never saw a byte resident; the storm was vacuous")
	}
	if !visited["oom"] && !visited["aggressive"] {
		t.Fatalf("INFO never reported pressure (states seen: %v) despite %d OOM refusals", visited, res.OOMRejected)
	}

	// Recovery: the 400 ms TTLs lapse, the sweeper (running aggressive
	// while pressure lasts) reclaims them, and the ladder steps back to
	// ok without any client intervention.
	rc := &chaosClient{t: t, addr: addr}
	defer rc.close()
	recovered := false
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		mi, err := scrapeMemInfo(rc, time.Now().Add(2*time.Second))
		if err != nil {
			t.Fatalf("post-storm INFO: %v", err)
		}
		if mi.pressure == "ok" {
			recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("pressure never cleared after the storm drained:\n%s", logged())
	}

	// Ordinary service is back: 50 small writes all land and read back.
	for i := 0; i < 50; i++ {
		key, val := fmt.Sprintf("post:%d", i), fmt.Sprintf("v%d", i)
		rep, err := rc.do(time.Now().Add(5*time.Second), "SET", key, val)
		if err != nil || rep.IsErr() {
			t.Fatalf("post-storm SET %d: %+v %v", i, rep, err)
		}
		rep, err = rc.do(time.Now().Add(5*time.Second), "GET", key)
		if err != nil || string(rep.Str) != val {
			t.Fatalf("post-storm GET %d = %+v %v, want %q", i, rep, err, val)
		}
	}

	// And the process still drains cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-logDone:
	case <-time.After(10 * time.Second):
		t.Fatalf("cpacached stderr never closed after SIGTERM:\n%s", logged())
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("cpacached exited dirty after SIGTERM: %v\n%s", err, logged())
	}
	if !strings.Contains(logged(), "cpacached drained") {
		t.Fatalf("drain never logged:\n%s", logged())
	}
}
