package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/resp"
)

// chaosClient is a minimal fault-tolerant RESP client for driving the
// daemon through injected faults: one command per call, reconnecting
// and retrying until the server acknowledges or the deadline expires.
type chaosClient struct {
	t    *testing.T
	addr string
	auth string
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

func (c *chaosClient) close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

func (c *chaosClient) dial() error {
	c.close()
	conn, err := net.DialTimeout("tcp", c.addr, 2*time.Second)
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	r, w := resp.NewReader(conn), resp.NewWriter(conn)
	if c.auth != "" {
		w.WriteCommandString("AUTH", c.auth)
		if err := w.Flush(); err != nil {
			conn.Close()
			return err
		}
		rep, err := r.ReadReply()
		if err != nil {
			conn.Close()
			return err
		}
		if rep.IsErr() {
			conn.Close()
			return fmt.Errorf("AUTH: %s", rep.Str)
		}
	}
	c.conn, c.r, c.w = conn, r, w
	return nil
}

// do sends one command and returns its reply, retrying through
// connection faults until deadline. Error *replies* are returned to the
// caller (they are acknowledgments); only transport errors retry.
func (c *chaosClient) do(deadline time.Time, args ...string) (resp.Reply, error) {
	var lastErr error
	for time.Now().Before(deadline) {
		if c.conn == nil {
			if lastErr = c.dial(); lastErr != nil {
				time.Sleep(10 * time.Millisecond)
				continue
			}
		}
		c.conn.SetDeadline(time.Now().Add(2 * time.Second))
		c.w.WriteCommandString(args...)
		if lastErr = c.w.Flush(); lastErr != nil {
			c.close()
			continue
		}
		rep, err := c.r.ReadReply()
		if err != nil {
			lastErr = err
			c.close()
			continue
		}
		return rep, nil
	}
	return resp.Reply{}, fmt.Errorf("chaos client gave up: %v", lastErr)
}

// TestDaemonChaosSmoke is the chaos lane: boot the race-instrumented
// daemon with fault injection (transient accept errors, latency stalls,
// partial writes, resets) plus tight overload limits, then require full
// recovery — the retrying load engine completes its budget, every
// acknowledged write is readable afterwards, over-cap connects are
// refused without harming admitted ones, a client-triggered panic is
// contained, and the process still drains cleanly on SIGTERM.
func TestDaemonChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon")
	}
	addr, cmd, logDone, logged := startDaemon(t,
		"-shards", "4", "-sets", "256", "-ways", "8", "-policy", "bt",
		"-tenant", "smoke:hunter2:8",
		"-max-conns", "24",
		"-read-timeout", "2s", "-write-timeout", "2s",
		"-fault-spec", "seed=7,accept-err=0.2,latency=0.05:2ms,partial-write=0.03,reset=0.03",
	)
	if !strings.Contains(logged(), "FAULT INJECTION ACTIVE") {
		t.Fatalf("fault spec not armed:\n%s", logged())
	}

	// Phase 1: the retrying load engine must complete its full budget
	// through the fault storm. Run completing means every one of the
	// 6000 requests was individually acknowledged (claimed-but-unacked
	// requests go back into the budget and are retried).
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:     addr,
		Conns:    4,
		Pipeline: 8,
		Requests: 6_000,
		KeySpace: 500,
		SetRatio: 0.3,
		Auth:     "hunter2",

		Reconnect:      true,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("chaos loadgen: %v", err)
	}
	if res.Requests < 6_000 {
		t.Fatalf("chaos run incomplete: %+v", res)
	}
	if res.Reconnects == 0 {
		t.Fatalf("no reconnects over 6000 requests — faults not firing? %+v", res)
	}
	t.Logf("chaos loadgen: %d reqs, %d retried, %d reconnects, %d rate-limited, %d rejected",
		res.Requests, res.RetriedOps, res.Reconnects, res.RateLimited, res.RejectedConns)

	// Phase 2: acked-writes ledger. SET unique keys until each is
	// individually acknowledged, then require every one readable with
	// the exact value. The cache holds 4×256×8 = 8192 lines against
	// ~700 keys total, so nothing is evicted: a lost acknowledged write
	// here is a durability bug, not capacity pressure.
	ledger := &chaosClient{t: t, addr: addr, auth: "hunter2"}
	defer ledger.close()
	const nKeys = 200
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; i < nKeys; i++ {
		key, val := fmt.Sprintf("ack:%04d", i), fmt.Sprintf("val:%04d", i)
		for {
			rep, err := ledger.do(deadline, "SET", key, val)
			if err != nil {
				t.Fatalf("ledger SET %s: %v", key, err)
			}
			if !rep.IsErr() {
				break // acknowledged
			}
		}
	}
	for i := 0; i < nKeys; i++ {
		key, want := fmt.Sprintf("ack:%04d", i), fmt.Sprintf("val:%04d", i)
		for {
			rep, err := ledger.do(deadline, "GET", key)
			if err != nil {
				t.Fatalf("ledger GET %s: %v", key, err)
			}
			if rep.IsErr() {
				continue // throttled or transient error reply: retry
			}
			if rep.Null || !bytes.Equal(rep.Str, []byte(want)) {
				t.Fatalf("lost acknowledged write %s: got %+v, want %q", key, rep, want)
			}
			break
		}
	}

	// Phase 3: connection-cap rejection. Open connections and hold them
	// until one is refused with the max-clients error; admitted ones
	// stay usable. Injected resets can free slots, so loop until the
	// refusal is actually observed.
	var held []net.Conn
	defer func() {
		for _, c := range held {
			c.Close()
		}
	}()
	sawRejection := false
	for attempt := 0; attempt < 100 && !sawRejection; attempt++ {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			continue
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		r, w := resp.NewReader(conn), resp.NewWriter(conn)
		w.WriteCommandString("PING")
		if err := w.Flush(); err != nil {
			conn.Close()
			continue
		}
		rep, err := r.ReadReply()
		if err != nil {
			conn.Close() // injected fault, not a verdict
			continue
		}
		if rep.IsErr() && strings.HasPrefix(string(rep.Str), "ERR max number of clients") {
			sawRejection = true
			conn.Close()
		} else {
			held = append(held, conn)
		}
	}
	if !sawRejection {
		t.Fatal("never saw -ERR max number of clients while holding connections past -max-conns 24")
	}
	for _, c := range held {
		c.Close()
	}
	held = nil

	// Phase 4: panic containment. DEBUG PANIC must kill only its own
	// connection; the daemon keeps serving and INFO reports the
	// recovery plus the phase-3 rejections. An injected fault can
	// swallow the command before dispatch, so re-send until the INFO
	// counter actually moves.
	pc := &chaosClient{t: t, addr: addr, auth: "hunter2"}
	info := &chaosClient{t: t, addr: addr, auth: "hunter2"}
	defer info.close()
	pdeadline := time.Now().Add(60 * time.Second)
	var infoText string
	for time.Now().Before(pdeadline) {
		if err := pc.dial(); err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		pc.w.WriteCommandString("DEBUG", "PANIC")
		if err := pc.w.Flush(); err != nil {
			pc.close()
			continue
		}
		// Best-effort reply then close; the INFO counter is the proof.
		pc.r.ReadReply()
		pc.close()
		rep, err := info.do(pdeadline, "INFO")
		if err != nil {
			t.Fatalf("INFO after panic: %v", err)
		}
		if !rep.IsErr() {
			infoText = string(rep.Str)
			if !strings.Contains(infoText, "panics_recovered:0") {
				break
			}
		}
	}
	for _, want := range []string{"panics_recovered:", "rejected_connections:", "uptime_seconds:", "connected_clients:"} {
		if !strings.Contains(infoText, want) {
			t.Fatalf("INFO missing %q:\n%s", want, infoText)
		}
	}
	if strings.Contains(infoText, "panics_recovered:0") {
		t.Fatalf("panic not counted:\n%s", infoText)
	}
	if strings.Contains(infoText, "rejected_connections:0") {
		t.Fatalf("rejections not counted:\n%s", infoText)
	}

	// Phase 5: after all that abuse, the process is still healthy and
	// drains cleanly.
	info.close()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-logDone:
	case <-time.After(15 * time.Second):
		t.Fatalf("cpacached stderr never closed after SIGTERM:\n%s", logged())
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("cpacached exited dirty after the chaos run: %v\n%s", err, logged())
	}
	if !strings.Contains(logged(), "cpacached drained") {
		t.Fatalf("drain never logged:\n%s", logged())
	}
}
