// Command cpasim runs one CMP simulation and reports per-thread and
// cache-level results, including the partition decisions the CPA made.
//
// Examples:
//
//	cpasim -workload 2T_04 -config M-0.75N
//	cpasim -benchmarks mcf,crafty -config C-L -size 1024
//	cpasim -workload 8T_01 -policy BT            (non-partitioned BT)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cache"
	"repro/internal/cmp"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/optref"
	"repro/internal/workload"
	"repro/pkg/cpapart"
	"repro/pkg/plru"
)

func main() {
	var (
		wlName     = flag.String("workload", "", "Table II workload name (e.g. 2T_04)")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark list (alternative to -workload)")
		config     = flag.String("config", "", "CPA acronym (C-L, M-L, M-1.0N, M-0.75N, M-0.5N, M-BT); empty = non-partitioned")
		policy     = flag.String("policy", "LRU", "L2 replacement policy for non-partitioned runs: LRU, NRU, BT, Random, AWRP, ARC")
		sizeKB     = flag.Int("size", 2048, "L2 size in KB")
		insts      = flag.Uint64("insts", 1_000_000, "instructions per thread")
		interval   = flag.Uint64("interval", 250_000, "repartition interval in cycles")
		sample     = flag.Int("sample", 32, "ATD set-sampling rate")
		showParts  = flag.Bool("partitions", false, "log every repartition decision")
		optFlag    = flag.Bool("opt", false, "record the demand-access trace and report the Belady/OPT hit rate alongside")
		goal       = flag.String("goal", "minmisses", "partitioning goal: minmisses, throughput, fair, qos")
		qosTarget  = flag.Float64("qos", 1.1, "max slowdown for thread 0 under -goal qos")
		inCache    = flag.Bool("incache", false, "use Suh-style in-cache way counters instead of ATDs (LRU only)")
	)
	flag.Parse()

	w, err := resolveWorkload(*wlName, *benchmarks)
	if err != nil {
		fatal(err)
	}

	kind, err := plru.ParseKind(*policy)
	if err != nil {
		fatal(err)
	}
	var cpaCfg *core.Config
	if *config != "" {
		cfg, err := core.ParseAcronym(*config)
		if err != nil {
			fatal(err)
		}
		cfg.Interval = *interval
		cfg.SampleRate = *sample
		cfg.InCacheProfiling = *inCache
		switch strings.ToLower(*goal) {
		case "minmisses":
			cfg.Goal = core.GoalMinMisses
		case "throughput":
			cfg.Goal = core.GoalThroughput
		case "fair":
			cfg.Goal = core.GoalFair
		case "qos":
			cfg.Goal = core.GoalQoS
			cfg.QoSTarget = *qosTarget
		default:
			fatal(fmt.Errorf("unknown goal %q", *goal))
		}
		cpaCfg = &cfg
		kind = cfg.Policy
	}

	simCfg := cmp.Config{
		Workload: w,
		L2: cache.Config{
			Name: "L2", SizeBytes: *sizeKB * 1024, LineBytes: 128, Ways: 16,
			Policy: kind, Cores: w.Threads(), Seed: 7777,
		},
		CPA:      cpaCfg,
		Params:   cpu.DefaultParams(),
		L1:       cpu.DefaultL1Config(128),
		MaxInsts: *insts,
	}
	sys, err := cmp.New(simCfg)
	if err != nil {
		fatal(err)
	}
	if *showParts && sys.CPA() != nil {
		sys.CPA().OnRepartition = func(cycle uint64, alloc cpapart.Allocation) {
			fmt.Printf("repartition @%d cycles: %v\n", cycle, alloc)
		}
	}

	// -opt: record the demand stream (and, when partitioned, every mask
	// change at its position in it) for the Belady replay after the run.
	var trace *optref.Trace
	if *optFlag {
		trace = &optref.Trace{}
		sets := simCfg.L2.SizeBytes / simCfg.L2.LineBytes / simCfg.L2.Ways
		sys.SetTracer(func(core int, addr uint64) {
			line := addr >> 7 // 128 B lines
			trace.Access(core, int(line%uint64(sets)), line)
		})
		if sys.CPA() != nil {
			prev := sys.CPA().OnRepartition
			sys.CPA().OnRepartition = func(cycle uint64, alloc cpapart.Allocation) {
				if prev != nil {
					prev(cycle, alloc)
				}
				trace.SetMasks(cpapart.Masks(alloc, simCfg.L2.Ways))
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := sys.RunContext(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpasim: canceled")
		os.Exit(130)
	}

	fmt.Printf("workload %s, config %s, L2 %dKB %s\n",
		res.Workload, res.ConfigName, *sizeKB, kind)
	fmt.Printf("%-10s %10s %12s %8s %12s %12s\n",
		"benchmark", "IPC", "cycles", "L1miss%", "L2accesses", "L2miss%")
	for _, c := range res.PerCore {
		l1p := pct(c.Stats.L1Misses, c.Stats.L1Accesses)
		l2p := pct(c.Stats.L2Misses, c.Stats.L2Accesses)
		fmt.Printf("%-10s %10.3f %12.0f %7.1f%% %12d %11.1f%%\n",
			c.Benchmark, c.IPC, c.Cycles, l1p, c.Stats.L2Accesses, l2p)
	}
	fmt.Printf("\nthroughput (sum IPC): %.3f\n", res.Throughput())
	fmt.Printf("finish cycles: %.0f\n", res.FinishCycles)
	fmt.Printf("L2 totals: %d accesses, %d misses\n", res.L2Accesses, res.L2Misses)
	if sys.CPA() != nil {
		fmt.Printf("repartitions: %d, final allocation: %v\n",
			res.Repartitions, sys.CPA().Allocation())
	}
	if trace != nil {
		sets := simCfg.L2.SizeBytes / simCfg.L2.LineBytes / simCfg.L2.Ways
		opt, err := optref.Replay(optref.Config{Sets: sets, Ways: simCfg.L2.Ways, Cores: w.Threads()}, trace)
		if err != nil {
			fatal(err)
		}
		hitRate := res.DemandHitRate()
		fmt.Printf("\nBelady/OPT on the recorded trace (%d demand refs):\n", trace.Len())
		fmt.Printf("  demand hit rate: %.4f   OPT hit rate: %.4f\n", hitRate, opt.HitRate())
		if ohr := opt.HitRate(); ohr > 0 {
			fmt.Printf("  hit-rate-vs-OPT: %.4f", hitRate/ohr)
			if om := 1 - ohr; om > 0 {
				fmt.Printf("   competitive ratio (miss-based): %.4f", (1-hitRate)/om)
			}
			fmt.Println()
		}
	}
}

func resolveWorkload(name, benches string) (workload.Workload, error) {
	switch {
	case name != "" && benches != "":
		return workload.Workload{}, fmt.Errorf("use -workload or -benchmarks, not both")
	case name != "":
		return workload.Lookup(name)
	case benches != "":
		list := strings.Split(benches, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
			if _, err := workload.Get(list[i]); err != nil {
				return workload.Workload{}, err
			}
		}
		return workload.Workload{Name: "custom", Benchmarks: list}, nil
	default:
		return workload.Workload{}, fmt.Errorf("specify -workload or -benchmarks")
	}
}

func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den) * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpasim:", err)
	os.Exit(1)
}
