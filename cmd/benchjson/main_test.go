package main

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cpu1Bench = `goos: linux
BenchmarkParallelGetHit-1   	1000000	      100.0 ns/op	       0 allocs/op
BenchmarkParallelGetHit-1   	1000000	      110.0 ns/op	       0 allocs/op
BenchmarkParallelGetSet-1   	1000000	      200.0 ns/op	       1 allocs/op
BenchmarkFig7Parallel-1     	    100	   400000 ns/op
`

const cpuNBench = `goos: linux
BenchmarkParallelGetHit-8   	4000000	       25.0 ns/op	       0 allocs/op
BenchmarkParallelGetSet-8   	2000000	      150.0 ns/op	       1 allocs/op
BenchmarkFig7Parallel-8     	    400	   100000 ns/op
`

func TestScalingGatePasses(t *testing.T) {
	cpu1 := writeFile(t, "cpu1.txt", cpu1Bench)
	cpuN := writeFile(t, "cpuN.txt", cpuNBench)
	// ParallelGetHit: 100/25 = 4.0x, well over 1.3.
	if code := runScaling(cpu1, cpuN, 1.3, []string{"BenchmarkParallelGetHit"}); code != 0 {
		t.Fatalf("exit %d for a 4x speedup", code)
	}
}

func TestScalingGateFails(t *testing.T) {
	cpu1 := writeFile(t, "cpu1.txt", cpu1Bench)
	cpuN := writeFile(t, "cpuN.txt", cpuNBench)
	// ParallelGetSet: 200/150 = 1.33x; demand 2x and it must fail.
	if code := runScaling(cpu1, cpuN, 2.0, []string{"BenchmarkParallelGetSet"}); code != 1 {
		t.Fatalf("exit %d for a 1.33x speedup against a 2x floor", code)
	}
}

func TestScalingGateMissingBench(t *testing.T) {
	cpu1 := writeFile(t, "cpu1.txt", cpu1Bench)
	cpuN := writeFile(t, "cpuN.txt", cpuNBench)
	if code := runScaling(cpu1, cpuN, 1.3, []string{"BenchmarkNoSuch"}); code != 1 {
		t.Fatalf("exit %d for a gated benchmark absent from both files", code)
	}
}

func serverJSON(rps float64) string {
	return `{"results": {"req_per_sec": ` + strconv.FormatFloat(rps, 'f', -1, 64) + `, "hit_rate": 0.8}}`
}

func TestServerGate(t *testing.T) {
	base := writeFile(t, "base.json", serverJSON(100000))
	for _, tc := range []struct {
		name  string
		fresh float64
		tol   float64
		want  int
	}{
		{"equal throughput passes", 100000, 0.25, 0},
		{"small dip within tolerance passes", 80000, 0.25, 0},
		{"speedup passes", 150000, 0.25, 0},
		{"big drop fails", 60000, 0.25, 1},
	} {
		fresh := writeFile(t, "fresh.json", serverJSON(tc.fresh))
		if code := runServerGate(base, fresh, tc.tol); code != tc.want {
			t.Errorf("%s: exit %d, want %d", tc.name, code, tc.want)
		}
	}
}

func TestServerGateRejectsMalformed(t *testing.T) {
	base := writeFile(t, "base.json", serverJSON(100000))
	empty := writeFile(t, "empty.json", `{"results": {}}`)
	if code := runServerGate(base, empty, 0.25); code != 1 {
		t.Fatal("missing req_per_sec accepted")
	}
	if code := runServerGate(empty, base, 0.25); code != 1 {
		t.Fatal("baseline without req_per_sec accepted")
	}
	garbage := writeFile(t, "garbage.json", `not json`)
	if code := runServerGate(base, garbage, 0.25); code != 1 {
		t.Fatal("malformed fresh report accepted")
	}
}

func TestParseBenchBestOfRun(t *testing.T) {
	path := writeFile(t, "bench.txt", cpu1Bench)
	best, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := best["BenchmarkParallelGetHit"]
	if !ok || got.ns != 100.0 {
		t.Fatalf("best ns for ParallelGetHit = %+v (want min of 100 and 110)", got)
	}
}
