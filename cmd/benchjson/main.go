// Benchjson converts the repo's checked-in BENCH_*.json baselines into Go
// benchmark output lines that benchstat understands, so `make
// bench-compare` can diff a fresh run against the recorded baseline:
//
//	go run ./cmd/benchjson BENCH_cpacache.json > old.txt
//	go test -run=NONE -bench=. -count=5 ./pkg/cpacache/ > new.txt
//	benchstat old.txt new.txt
//
// The JSON carries a single observation per benchmark, so benchstat
// reports the baseline without a variance estimate; the comparison column
// against the multi-count fresh run is still exact.
//
// With -gate it becomes the CI bench-regression gate instead:
//
//	go test -run=NONE -bench='^BenchmarkGetHit$|^BenchmarkParallelGetSet$' \
//	        -count=3 ./pkg/cpacache/ > fresh.txt
//	go run ./cmd/benchjson -gate -tolerance 0.15 BENCH_cpacache.json fresh.txt
//
// which fails (exit 1) when any gated benchmark's best fresh ns/op is
// more than the tolerance above the recorded baseline, or its allocs/op
// grew at all. The best-of-count is compared, not the mean: scheduler
// noise only ever inflates a run, so the minimum is the honest estimate
// of the code's cost and gating on it keeps a noisy 1-CPU runner from
// flagging phantom regressions.
//
// With -scaling it gates multi-core speedup instead: two fresh bench
// output files, the first run at GOMAXPROCS=1 and the second at
// GOMAXPROCS=NumCPU, and the named benchmarks must show at least -min
// parallel speedup (best-of-run single-core ns/op over best-of-run
// multi-core ns/op):
//
//	go run ./cmd/benchjson -scaling -min 1.3 \
//	        -benches BenchmarkParallelGetHit cpu1.txt cpuN.txt
//
// Benchmarks present in both files but not named in -benches are
// reported informationally without gating.
//
// With -gate-server it gates cpacached throughput: a fresh cpaload
// -json report against the committed BENCH_cpacached.json, failing when
// fresh req/s drops more than -tolerance below the baseline (direction
// flipped from ns/op: requests per second is better when bigger):
//
//	go run ./cmd/benchjson -gate-server -tolerance 0.25 \
//	        BENCH_cpacached.json fresh_load.json
//
// With -record it rewrites a BENCH_*.json baseline in place from a fresh
// bench output file (best-of-run per benchmark, ns/op + allocs/op +
// derived ops/sec), refreshing the host stanza and preserving every
// other field the JSON carries. Recording REFUSES to run when the fresh
// output was taken at GOMAXPROCS<=1: the parallel benchmarks in a
// single-core run are meaningless as a scaling baseline, and committing
// one would poison bench-gate and bench-multicore for everyone:
//
//	go test -run=NONE -bench=... -count=3 ./pkg/cpacache/ > fresh.txt
//	go run ./cmd/benchjson -record BENCH_cpacache.json fresh.txt
//
// With -opt-gate it diffs a fresh Belady/OPT scoreboard CSV (from
// `repro -experiment opt` or internal/experiments.OptScoreboard) against
// the committed golden, row by row keyed on cores/workload/size/policy,
// failing when hit_rate_vs_opt or competitive_ratio drifts outside the
// tolerance band or when rows appear/disappear:
//
//	go run ./cmd/benchjson -opt-gate -tolerance 0.02 \
//	        OPT_SCOREBOARD.csv results/opt_scoreboard.csv
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type benchFile struct {
	Host struct {
		CPUs       int    `json:"cpus"`
		GoMaxProcs int    `json:"gomaxprocs"`
		Go         string `json:"go"`
	} `json:"host"`
	Results map[string]struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"results"`
}

func main() {
	gate := flag.Bool("gate", false, "compare a fresh `go test -bench` output file against the JSON baseline and fail on regression")
	scaling := flag.Bool("scaling", false, "compare GOMAXPROCS=1 vs GOMAXPROCS=N bench outputs and fail when named benchmarks miss the -min speedup")
	gateServer := flag.Bool("gate-server", false, "compare a fresh cpaload -json report against the baseline JSON and fail when req/s regresses")
	record := flag.Bool("record", false, "rewrite the baseline JSON from a fresh bench output file (refuses GOMAXPROCS<=1 runs)")
	optGate := flag.Bool("opt-gate", false, "diff a fresh OPT scoreboard CSV against the committed golden within -tolerance")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression in -gate / -gate-server mode")
	minSpeedup := flag.Float64("min", 1.3, "minimum parallel speedup the -scaling mode requires")
	benches := flag.String("benches", "BenchmarkGetHit,BenchmarkParallelGetSet", "comma-separated benchmarks the -gate / -scaling modes check (others are informational)")
	flag.Parse()
	if *gate {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -gate [-tolerance 0.15] BENCH_file.json fresh_bench_output.txt")
			os.Exit(2)
		}
		os.Exit(runGate(flag.Arg(0), flag.Arg(1), *tolerance, strings.Split(*benches, ",")))
	}
	if *scaling {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -scaling [-min 1.3] [-benches B1,B2] cpu1_bench.txt cpuN_bench.txt")
			os.Exit(2)
		}
		os.Exit(runScaling(flag.Arg(0), flag.Arg(1), *minSpeedup, strings.Split(*benches, ",")))
	}
	if *gateServer {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -gate-server [-tolerance 0.25] BENCH_cpacached.json fresh_load.json")
			os.Exit(2)
		}
		os.Exit(runServerGate(flag.Arg(0), flag.Arg(1), *tolerance))
	}
	if *record {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -record BENCH_file.json fresh_bench_output.txt")
			os.Exit(2)
		}
		os.Exit(runRecord(flag.Arg(0), flag.Arg(1)))
	}
	if *optGate {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -opt-gate [-tolerance 0.02] OPT_SCOREBOARD.csv fresh_scoreboard.csv")
			os.Exit(2)
		}
		os.Exit(runOptGate(flag.Arg(0), flag.Arg(1), *tolerance))
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson BENCH_file.json [more.json...]")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var f benchFile
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			os.Exit(1)
		}
		procs := f.Host.GoMaxProcs
		if procs <= 0 {
			procs = 1
		}
		names := make([]string, 0, len(f.Results))
		for name := range f.Results {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("goos: linux")
		fmt.Println("goarch: amd64")
		fmt.Println("pkg: repro/pkg/cpacache")
		for _, name := range names {
			r := f.Results[name]
			// Iteration count is irrelevant to benchstat's statistics;
			// 1000 keeps the line shaped like real `go test -bench` output.
			fmt.Printf("%s-%d\t1000\t%g ns/op\t%g allocs/op\n", name, procs, r.NsPerOp, r.AllocsPerOp)
		}
	}
}

// fresh is one benchmark's best observation from a `go test -bench` run.
type fresh struct {
	ns     float64
	allocs float64
	seen   bool
}

// runGate implements -gate: returns the process exit code.
func runGate(baselinePath, freshPath string, tolerance float64, gated []string) int {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", baselinePath, err)
		return 1
	}
	best, err := parseBench(freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	failed := false
	for _, name := range gated {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := base.Results[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s not in baseline %s\n", name, baselinePath)
			failed = true
			continue
		}
		f, ok := best[name]
		if !ok || !f.seen {
			fmt.Fprintf(os.Stderr, "benchjson: %s not in fresh output %s\n", name, freshPath)
			failed = true
			continue
		}
		limit := b.NsPerOp * (1 + tolerance)
		status := "ok"
		if f.ns > limit {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s baseline %8.2f ns/op  best-of-run %8.2f ns/op  limit %8.2f  %s\n",
			name, b.NsPerOp, f.ns, limit, status)
		if f.allocs > b.AllocsPerOp {
			fmt.Printf("%-28s allocs/op grew: baseline %g, fresh %g  REGRESSION\n", name, b.AllocsPerOp, f.allocs)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// runScaling implements -scaling: single-core vs multi-core bench
// outputs, gating the named benchmarks on base_ns/fast_ns >= minSpeedup.
// Returns the process exit code.
func runScaling(cpu1Path, cpuNPath string, minSpeedup float64, gated []string) int {
	serial, err := parseBench(cpu1Path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	parallel, err := parseBench(cpuNPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	required := map[string]bool{}
	for _, name := range gated {
		if name = strings.TrimSpace(name); name != "" {
			required[name] = true
		}
	}
	names := make([]string, 0, len(serial))
	for name := range serial {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		p, ok := parallel[name]
		if !ok {
			if required[name] {
				fmt.Fprintf(os.Stderr, "benchjson: %s missing from %s\n", name, cpuNPath)
				failed = true
			}
			continue
		}
		speedup := serial[name].ns / p.ns
		switch {
		case required[name] && speedup < minSpeedup:
			fmt.Printf("%-28s 1-core %10.2f ns/op  N-core %10.2f ns/op  speedup %5.2fx < %.2fx  FAIL\n",
				name, serial[name].ns, p.ns, speedup, minSpeedup)
			failed = true
		case required[name]:
			fmt.Printf("%-28s 1-core %10.2f ns/op  N-core %10.2f ns/op  speedup %5.2fx >= %.2fx  ok\n",
				name, serial[name].ns, p.ns, speedup, minSpeedup)
		default:
			fmt.Printf("%-28s 1-core %10.2f ns/op  N-core %10.2f ns/op  speedup %5.2fx  (info)\n",
				name, serial[name].ns, p.ns, speedup)
		}
		delete(required, name)
	}
	for name := range required {
		if _, ok := serial[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %s missing from %s\n", name, cpu1Path)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// loadReport is the cpaload -json document; only the gated number is
// decoded.
type loadReport struct {
	Results map[string]float64 `json:"results"`
}

// runServerGate implements -gate-server: fresh cpaload req/s must stay
// within tolerance of the baseline (higher is better, so only drops
// fail). Returns the process exit code.
func runServerGate(baselinePath, freshPath string, tolerance float64) int {
	read := func(path string) (loadReport, bool) {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return loadReport{}, false
		}
		var r loadReport
		if err := json.Unmarshal(data, &r); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			return loadReport{}, false
		}
		return r, true
	}
	base, ok := read(baselinePath)
	if !ok {
		return 1
	}
	freshRep, ok := read(freshPath)
	if !ok {
		return 1
	}
	baseRPS, ok := base.Results["req_per_sec"]
	if !ok || baseRPS <= 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no req_per_sec in baseline %s\n", baselinePath)
		return 1
	}
	freshRPS, ok := freshRep.Results["req_per_sec"]
	if !ok || freshRPS <= 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no req_per_sec in fresh report %s\n", freshPath)
		return 1
	}
	floor := baseRPS * (1 - tolerance)
	status := "ok"
	code := 0
	if freshRPS < floor {
		status = "REGRESSION"
		code = 1
	}
	fmt.Printf("cpacached req/s: baseline %.0f  fresh %.0f  floor %.0f  %s\n", baseRPS, freshRPS, floor, status)
	return code
}

// runRecord implements -record: rewrite baselinePath's host stanza and
// per-benchmark numbers from the fresh bench output, preserving every
// other JSON field. The baseline is decoded as a generic map so fields
// this tool does not know about (description, command, notes) survive
// the round trip. Returns the process exit code.
func runRecord(baselinePath, freshPath string) int {
	best, err := parseBench(freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(best) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines in %s\n", freshPath)
		return 1
	}
	procs, err := benchProcs(freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	if procs <= 1 {
		fmt.Fprintf(os.Stderr, "benchjson: refusing to record %s: fresh run used GOMAXPROCS=%d — "+
			"parallel baselines from a single-core run are meaningless (see EXPERIMENTS.md)\n",
			baselinePath, procs)
		return 1
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", baselinePath, err)
		return 1
	}
	host, _ := doc["host"].(map[string]any)
	if host == nil {
		host = map[string]any{}
	}
	host["cpus"] = runtime.NumCPU()
	host["gomaxprocs"] = procs
	host["go"] = runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH
	doc["host"] = host
	results, _ := doc["results"].(map[string]any)
	if results == nil {
		results = map[string]any{}
	}
	for name, f := range best {
		entry, _ := results[name].(map[string]any)
		if entry == nil {
			entry = map[string]any{}
		}
		entry["ns_per_op"] = round2(f.ns)
		entry["allocs_per_op"] = f.allocs
		if f.ns > 0 {
			entry["ops_per_sec"] = math.Round(1e9 / f.ns)
		}
		results[name] = entry
	}
	doc["results"] = results
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	if err := os.WriteFile(baselinePath, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Printf("recorded %d benchmarks into %s (GOMAXPROCS=%d)\n", len(best), baselinePath, procs)
	return 0
}

// round2 keeps recorded ns/op readable without losing gate-relevant
// precision.
func round2(v float64) float64 { return math.Round(v*100) / 100 }

// benchProcs returns the largest GOMAXPROCS suffix (Benchmark...-N)
// seen in a `go test -bench` output file; lines without a numeric
// suffix count as 1.
func benchProcs(path string) (int, error) {
	fh, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer fh.Close()
	max := 0
	sc := bufio.NewScanner(fh)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		procs := 1
		if i := strings.LastIndex(fields[0], "-"); i > 0 {
			if n, err := strconv.Atoi(fields[0][i+1:]); err == nil {
				procs = n
			}
		}
		if procs > max {
			max = procs
		}
	}
	if max == 0 {
		return 0, fmt.Errorf("no benchmark lines in %s", path)
	}
	return max, sc.Err()
}

// optRow is one scoreboard line keyed by cores/workload/size/policy.
type optRow struct {
	vsOpt, ratio float64
}

// runOptGate implements -opt-gate: every row of the golden scoreboard
// must appear in the fresh one with hit_rate_vs_opt and
// competitive_ratio within ±tolerance (absolute — the metrics live
// near 1.0, so absolute and relative bands coincide), and the fresh
// file must not grow rows the golden lacks. Returns the exit code.
func runOptGate(goldenPath, freshPath string, tolerance float64) int {
	golden, err := parseScoreboard(goldenPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	freshRows, err := parseScoreboard(freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	keys := make([]string, 0, len(golden))
	for k := range golden {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := false
	for _, k := range keys {
		g := golden[k]
		f, ok := freshRows[k]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: row %s missing from %s\n", k, freshPath)
			failed = true
			continue
		}
		status := "ok"
		if math.Abs(f.vsOpt-g.vsOpt) > tolerance || math.Abs(f.ratio-g.ratio) > tolerance {
			status = "DRIFT"
			failed = true
		}
		fmt.Printf("%-40s vs-OPT %.4f (golden %.4f)  competitive %.4f (golden %.4f)  %s\n",
			k, f.vsOpt, g.vsOpt, f.ratio, g.ratio, status)
	}
	for k := range freshRows {
		if _, ok := golden[k]; !ok {
			fmt.Fprintf(os.Stderr, "benchjson: unexpected row %s in %s (golden lacks it)\n", k, freshPath)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// parseScoreboard reads an OPT scoreboard CSV (the experiments.CSV
// contract: cores,workload,size_kb,policy,hit_rate,opt_hit_rate,
// hit_rate_vs_opt,competitive_ratio) into rows keyed
// cores/workload/size_kb/policy.
func parseScoreboard(path string) (map[string]optRow, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	out := map[string]optRow{}
	sc := bufio.NewScanner(fh)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "cores,") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 8 {
			return nil, fmt.Errorf("%s:%d: want 8 CSV fields, got %d", path, line, len(fields))
		}
		vsOpt, err1 := strconv.ParseFloat(fields[6], 64)
		ratio, err2 := strconv.ParseFloat(fields[7], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s:%d: bad metric fields %q / %q", path, line, fields[6], fields[7])
		}
		key := strings.Join(fields[:4], "/")
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate row %s", path, line, key)
		}
		out[key] = optRow{vsOpt: vsOpt, ratio: ratio}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scoreboard rows in %s", path)
	}
	return out, nil
}

// parseBench extracts, per benchmark name (GOMAXPROCS suffix stripped),
// the minimum ns/op and its allocs/op across every line of a `go test
// -bench` output file.
func parseBench(path string) (map[string]fresh, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	out := map[string]fresh{}
	sc := bufio.NewScanner(fh)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var ns, allocs float64
		ok := false
		for i := 2; i+1 < len(fields); i++ {
			switch fields[i+1] {
			case "ns/op":
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					ns, ok = v, true
				}
			case "allocs/op":
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					allocs = v
				}
			}
		}
		if !ok {
			continue
		}
		cur, seen := out[name]
		if !seen || ns < cur.ns {
			out[name] = fresh{ns: ns, allocs: allocs, seen: true}
		}
	}
	return out, sc.Err()
}
