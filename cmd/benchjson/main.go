// Benchjson converts the repo's checked-in BENCH_*.json baselines into Go
// benchmark output lines that benchstat understands, so `make
// bench-compare` can diff a fresh run against the recorded baseline:
//
//	go run ./cmd/benchjson BENCH_cpacache.json > old.txt
//	go test -run=NONE -bench=. -count=5 ./pkg/cpacache/ > new.txt
//	benchstat old.txt new.txt
//
// The JSON carries a single observation per benchmark, so benchstat
// reports the baseline without a variance estimate; the comparison column
// against the multi-count fresh run is still exact.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type benchFile struct {
	Host struct {
		CPUs       int    `json:"cpus"`
		GoMaxProcs int    `json:"gomaxprocs"`
		Go         string `json:"go"`
	} `json:"host"`
	Results map[string]struct {
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"results"`
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson BENCH_file.json [more.json...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var f benchFile
		if err := json.Unmarshal(data, &f); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			os.Exit(1)
		}
		procs := f.Host.GoMaxProcs
		if procs <= 0 {
			procs = 1
		}
		names := make([]string, 0, len(f.Results))
		for name := range f.Results {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("goos: linux")
		fmt.Println("goarch: amd64")
		fmt.Println("pkg: repro/pkg/cpacache")
		for _, name := range names {
			r := f.Results[name]
			// Iteration count is irrelevant to benchstat's statistics;
			// 1000 keeps the line shaped like real `go test -bench` output.
			fmt.Printf("%s-%d\t1000\t%g ns/op\t%g allocs/op\n", name, procs, r.NsPerOp, r.AllocsPerOp)
		}
	}
}
