// Command cpaload is a memtier-style load driver for cpacached: N
// connections, pipelined GET/SET batches, configurable key space and
// zipf skew, reporting req/s and latency percentiles. With -json it
// emits the BENCH_cpacached.json baseline shape that `benchjson
// -gate-server` checks in CI.
//
// Usage:
//
//	cpaload -addr 127.0.0.1:6379 -conns 8 -pipeline 32 -requests 500000 \
//	    -keyspace 50000 -value-size 256 -set-ratio 0.2 -zipf 1.2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

// report is the -json output document. results.req_per_sec is the
// number the CI gate compares against the committed baseline.
type report struct {
	Description string             `json:"description"`
	Command     string             `json:"command"`
	Host        map[string]any     `json:"host"`
	Workload    map[string]any     `json:"workload"`
	Results     map[string]float64 `json:"results"`
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:6379", "cpacached address")
		conns     = flag.Int("conns", 4, "concurrent connections")
		pipeline  = flag.Int("pipeline", 16, "pipelined commands per batch")
		requests  = flag.Int("requests", 100_000, "total requests")
		duration  = flag.Duration("duration", 0, "wall-clock cap (0 = run to -requests)")
		keyspace  = flag.Int("keyspace", 10_000, "distinct keys")
		valueSize = flag.Int("value-size", 128, "value bytes")
		setRatio  = flag.Float64("set-ratio", 0.1, "fraction of SETs (0..1)")
		zipf      = flag.Float64("zipf", 0, "zipf skew s (>1 skews; <=1 uniform)")
		ttl       = flag.Duration("ttl", 0, "SET TTL via PX (0 = none)")
		auth      = flag.String("auth", "", "AUTH password")
		seed      = flag.Int64("seed", 1, "RNG seed")
		reconnect = flag.Bool("reconnect", false, "survive connection faults: reconnect with backoff and retry unacknowledged requests")
		reqTO     = flag.Duration("request-timeout", 0, "per-batch I/O deadline; with -reconnect a timed-out batch is retried (0 = none)")
		jsonOut   = flag.String("json", "", "write a benchmark-baseline JSON report to this file ('-' = stdout)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	res, err := loadgen.Run(ctx, loadgen.Config{
		Addr:      *addr,
		Conns:     *conns,
		Pipeline:  *pipeline,
		Requests:  *requests,
		Duration:  *duration,
		KeySpace:  *keyspace,
		ValueSize: *valueSize,
		SetRatio:  *setRatio,
		ZipfS:     *zipf,
		TTL:       *ttl,
		Auth:      *auth,
		Seed:      *seed,

		Reconnect:      *reconnect,
		RequestTimeout: *reqTO,
	})
	if err != nil {
		log.Fatalf("cpaload: %v", err)
	}

	fmt.Printf("%d requests in %v: %.0f req/s (%d conns × %d pipeline)\n",
		res.Requests, res.Elapsed.Round(time.Millisecond), res.ReqPerSec, *conns, *pipeline)
	fmt.Printf("  gets=%d sets=%d hit_rate=%.2f%% error_replies=%d\n",
		res.Gets, res.Sets, 100*res.HitRate, res.ErrReplys)
	fmt.Printf("  latency p50=%v p90=%v p99=%v p99.9=%v max=%v\n",
		res.P50, res.P90, res.P99, res.P999, res.Max)
	if *reconnect || res.RateLimited > 0 || res.RejectedConns > 0 || res.OOMRejected > 0 || res.RetriedOps > 0 || res.Reconnects > 0 {
		fmt.Printf("  rate_limited=%d rejected_conns=%d oom_rejected=%d retried_ops=%d reconnects=%d\n",
			res.RateLimited, res.RejectedConns, res.OOMRejected, res.RetriedOps, res.Reconnects)
	}

	if *jsonOut == "" {
		return
	}
	rep := report{
		Description: "cpacached req/s baseline driven by cpaload",
		Command:     strings.Join(os.Args, " "),
		Host: map[string]any{
			"cpus":       runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
		},
		Workload: map[string]any{
			"conns":      *conns,
			"pipeline":   *pipeline,
			"requests":   *requests,
			"keyspace":   *keyspace,
			"value_size": *valueSize,
			"set_ratio":  *setRatio,
			"zipf":       *zipf,
		},
		Results: map[string]float64{
			"req_per_sec":    res.ReqPerSec,
			"hit_rate":       res.HitRate,
			"p50_us":         float64(res.P50.Microseconds()),
			"p99_us":         float64(res.P99.Microseconds()),
			"p999_us":        float64(res.P999.Microseconds()),
			"rate_limited":   float64(res.RateLimited),
			"rejected_conns": float64(res.RejectedConns),
			"oom_rejected":   float64(res.OOMRejected),
			"retried_ops":    float64(res.RetriedOps),
			"reconnects":     float64(res.Reconnects),
		},
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("cpaload: %v", err)
	}
	out = append(out, '\n')
	if *jsonOut == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		log.Fatalf("cpaload: %v", err)
	}
}
