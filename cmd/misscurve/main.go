// Command misscurve characterizes benchmarks: it runs each requested
// benchmark's trace through a private L1 into an LRU profiling monitor
// (exactly the pipeline the CPA sees) and prints the L2 miss-ratio curve
// versus assigned ways, plus summary rates. This is the quickest way to
// understand why MinMisses allocates the way it does.
//
//	misscurve [-insts N] [-size KB] [-parallel N] [benchmark ...]
//
// With no arguments it characterizes the whole catalog; benchmarks are
// characterized -parallel at a time (default GOMAXPROCS) and printed in
// the requested order.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cache"
	"repro/internal/experiments/sched"
	"repro/internal/profiling"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/pkg/plru"
)

func main() {
	var (
		insts    = flag.Uint64("insts", 500_000, "instructions to trace per benchmark")
		sizeKB   = flag.Int("size", 2048, "L2 size in KB (16-way, 128B lines)")
		parallel = flag.Int("parallel", 0, "max concurrent characterizations (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	names := flag.Args()
	if len(names) == 0 {
		names = workload.Names()
	}

	sets := *sizeKB * 1024 / (128 * 16)
	headers := []string{"benchmark", "L1miss%", "L2apki"}
	for w := 1; w <= 16; w++ {
		headers = append(headers, fmt.Sprint(w))
	}

	// Each benchmark is independent: run them through a bounded pool and
	// assemble the rows in input order.
	profs := make([]trace.Profile, len(names))
	for i, name := range names {
		prof, err := workload.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "misscurve:", err)
			os.Exit(1)
		}
		profs[i] = prof
	}
	pool := sched.NewPool(*parallel)
	rows := make([][]string, len(names))
	err := sched.ForEach(ctx, pool, len(names), func(i int) error {
		row, err := characterize(ctx, profs[i], names[i], *insts, sets)
		rows[i] = row
		return err
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "misscurve: canceled")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "misscurve:", err)
		os.Exit(1)
	}
	fmt.Printf("L2 miss ratio by assigned ways (%dKB 16-way L2, %d insts/benchmark)\n\n",
		*sizeKB, *insts)
	fmt.Print(textplot.Table(headers, rows))
	fmt.Println("\nL2apki = L2 accesses per kilo-instruction (the demand the thread")
	fmt.Println("puts on the shared cache); columns 1..16 are miss ratios at that")
	fmt.Println("many ways — the curve MinMisses optimizes over.")
}

func characterize(ctx context.Context, prof trace.Profile, name string, insts uint64, sets int) ([]string, error) {
	g := trace.NewGenerator(prof, 0, workload.Seed(name), 128)
	l1 := cache.New(cache.Config{Name: "L1", SizeBytes: 32 * 1024,
		LineBytes: 128, Ways: 2, Policy: plru.LRU, Cores: 1})
	mon := profiling.NewMonitor(profiling.Config{
		L2Sets: sets, Ways: 16, LineBytes: 128, SampleRate: 1,
		Kind: plru.LRU,
	})
	var mem uint64
	sinceCheck := 0
	for g.Insts() < insts {
		if sinceCheck++; sinceCheck >= 8192 {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := g.Next()
		if e.Kind != trace.Mem {
			continue
		}
		mem++
		if !l1.Access(0, e.Addr).Hit {
			mon.Observe(e.Addr)
		}
	}
	l1s := l1.Stats()
	l1MissPct := float64(l1s.TotalMisses()) / float64(l1s.TotalAccesses()) * 100
	apki := float64(mon.Observed()) / float64(g.Insts()) * 1000

	row := []string{name, fmt.Sprintf("%.1f", l1MissPct), fmt.Sprintf("%.1f", apki)}
	total := float64(mon.SDH().Total())
	for w := 1; w <= 16; w++ {
		if total == 0 {
			row = append(row, "-")
			continue
		}
		ratio := float64(mon.SDH().Misses(w)) / total
		cell := fmt.Sprintf("%.2f", ratio)
		// Trim the leading zero so the wide table stays readable.
		cell = strings.TrimPrefix(cell, "0")
		row = append(row, cell)
	}
	return row, nil
}
