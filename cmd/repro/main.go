// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro [-experiment all|table1|table2|fig6|fig7|fig8|fig9|opt]
//	      [-insts N] [-interval N] [-sample N] [-limit N]
//	      [-parallel N] [-csvdir DIR] [-v]
//	      [-opt] [-opt-cores LIST] [-opt-sizes LIST]
//
// The default instruction budget (1M per thread) is a scaled-down stand-in
// for the paper's 100M SimPoint slices; raise -insts for tighter numbers.
// Simulations run -parallel at a time (default: GOMAXPROCS); the output
// is bit-identical at any setting. Ctrl-C cancels the sweep. With
// -csvdir, each figure also writes a machine-readable CSV.
//
// -opt (or -experiment opt) emits the Belady/OPT competitive-analysis
// scoreboard: every policy's demand hit rate vs the offline-optimal on
// the fig6-9 workloads, across -opt-cores core counts and -opt-sizes L2
// sizes (opt_scoreboard.csv with -csvdir).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
	"repro/pkg/plru"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: all, table1, table2, fig6, fig7, fig8, fig9")
		insts      = flag.Uint64("insts", 1_000_000, "instructions per thread")
		interval   = flag.Uint64("interval", 250_000, "repartition interval in cycles")
		sample     = flag.Int("sample", 32, "ATD set-sampling rate (1 in N sets)")
		limit      = flag.Int("limit", 0, "max workloads per thread count (0 = all)")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		csvdir     = flag.String("csvdir", "", "directory for CSV output (optional)")
		verbose    = flag.Bool("v", false, "print per-run progress")
		optFlag    = flag.Bool("opt", false, "also run the Belady/OPT competitive-analysis scoreboard")
		optCores   = flag.String("opt-cores", "1,2,4,8", "comma-separated core counts for the OPT scoreboard")
		optSizes   = flag.String("opt-sizes", "2048", "comma-separated L2 sizes (KB) for the OPT scoreboard")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := workload.Validate(); err != nil {
		fatal(err)
	}
	// counting tracks whether the live job counter has written a partial
	// line that needs terminating before other stderr output.
	counting := false
	endCounter := func() {
		if counting {
			fmt.Fprintln(os.Stderr)
			counting = false
		}
	}
	opt := experiments.Options{
		Insts:         *insts,
		Interval:      *interval,
		SampleRate:    *sample,
		L2SizeKB:      2048,
		WorkloadLimit: *limit,
		Parallelism:   *parallel,
	}
	if *verbose {
		opt.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	} else {
		// Live completed/total aggregation on one self-overwriting line.
		opt.OnJob = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rjobs %d/%d", done, total)
			counting = true
		}
	}
	h := experiments.New(opt)

	writeCSV := func(name, content string) {
		if *csvdir == "" {
			return
		}
		if err := os.MkdirAll(*csvdir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*csvdir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	run := func(name string) {
		start := time.Now()
		simsBefore := h.Simulated()
		switch name {
		case "table1":
			fmt.Print(experiments.Table1())
		case "table2":
			fmt.Print(experiments.Table2())
		case "fig6":
			d, err := h.Fig6(ctx, []plru.Kind{
				plru.LRU, plru.NRU, plru.BT, plru.Random,
				plru.AWRP, plru.ARC})
			endCounter()
			if err != nil {
				fatal(err)
			}
			fmt.Print(d.Render())
			writeCSV("fig6.csv", d.CSV())
		case "fig7":
			d, err := h.Fig7(ctx)
			endCounter()
			if err != nil {
				fatal(err)
			}
			fmt.Print(d.Render())
			writeCSV("fig7.csv", d.CSV())
		case "fig8":
			d, err := h.Fig8(ctx)
			endCounter()
			if err != nil {
				fatal(err)
			}
			fmt.Print(d.Render())
			writeCSV("fig8.csv", d.CSV())
		case "fig9":
			d, err := h.Fig9(ctx)
			endCounter()
			if err != nil {
				fatal(err)
			}
			fmt.Print(d.Render())
			writeCSV("fig9.csv", d.CSV())
		case "opt":
			cores, err := parseIntList(*optCores)
			if err != nil {
				fatal(fmt.Errorf("-opt-cores: %w", err))
			}
			sizes, err := parseIntList(*optSizes)
			if err != nil {
				fatal(fmt.Errorf("-opt-sizes: %w", err))
			}
			d, err := h.OptScoreboard(ctx, cores, sizes, nil)
			endCounter()
			if err != nil {
				fatal(err)
			}
			fmt.Print(d.Render())
			writeCSV("opt_scoreboard.csv", d.CSV())
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v, %d simulations run, %d workers]\n",
			name, time.Since(start).Round(time.Millisecond), h.Simulated()-simsBefore, h.Parallelism())
	}

	if *experiment == "all" {
		for _, name := range []string{"table1", "table2", "fig6", "fig7", "fig9", "fig8"} {
			run(name)
		}
		if *optFlag {
			run("opt")
		}
		return
	}
	run(*experiment)
	if *optFlag && *experiment != "opt" {
		run("opt")
	}
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, errors.New("empty list")
	}
	return out, nil
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "repro: canceled")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
