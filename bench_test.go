// Package repro's top-level benchmarks regenerate every table and figure
// of the paper at a reduced scale, plus the ablation studies listed in
// DESIGN.md §7. Run a single pass of each with:
//
//	go test -bench=. -benchmem -benchtime=1x .
//
// Full-scale reproductions use cmd/repro (see EXPERIMENTS.md).
package repro

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/cmp"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/replacement"
	"repro/internal/workload"
)

// benchOptions keeps each figure bench to a few seconds.
func benchOptions() experiments.Options {
	return experiments.Options{
		Insts:         120_000,
		Interval:      40_000,
		SampleRate:    16,
		L2SizeKB:      1024,
		WorkloadLimit: 3,
	}
}

// BenchmarkTable1 regenerates the complexity table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Table1(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2 regenerates the setup/workload table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Table2(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (non-partitioned LRU/NRU/BT).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(benchOptions())
		if _, err := h.Fig6(context.Background(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates Figure 7 (the six CPA configurations).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(benchOptions())
		if _, err := h.Fig7(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Serial and BenchmarkFig7Parallel compare the experiment
// engine at Parallelism 1 versus GOMAXPROCS on the same Fig7 sweep — the
// pair behind BENCH_parallel.json. Output is bit-identical either way;
// only wall-clock differs.
func BenchmarkFig7Serial(b *testing.B) {
	opt := benchOptions()
	opt.Parallelism = 1
	for i := 0; i < b.N; i++ {
		h := experiments.New(opt)
		if _, err := h.Fig7(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Parallel(b *testing.B) {
	opt := benchOptions()
	opt.Parallelism = 0 // GOMAXPROCS
	for i := 0; i < b.N; i++ {
		h := experiments.New(opt)
		if _, err := h.Fig7(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 (cache-size sweep).
func BenchmarkFig8(b *testing.B) {
	opt := benchOptions()
	opt.WorkloadLimit = 2
	for i := 0; i < b.N; i++ {
		h := experiments.New(opt)
		if _, err := h.Fig8(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates Figure 9 (power and energy).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(benchOptions())
		if _, err := h.Fig9(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// runOnce simulates one workload/config pair at bench scale and reports
// instructions per second via b.ReportMetric.
func runOnce(b *testing.B, benchmarks []string, kind replacement.Kind, acr string, mutate func(*core.Config)) cmp.Results {
	b.Helper()
	w := workload.Workload{Name: "bench", Benchmarks: benchmarks}
	cfg := cmp.Config{
		Workload: w,
		L2: cache.Config{
			Name: "L2", SizeBytes: 1 << 20, LineBytes: 128, Ways: 16,
			Policy: kind, Cores: len(benchmarks), Seed: 1,
		},
		Params:   cpu.DefaultParams(),
		L1:       cpu.DefaultL1Config(128),
		MaxInsts: 150_000,
	}
	if acr != "" {
		cpaCfg, err := core.ParseAcronym(acr)
		if err != nil {
			b.Fatal(err)
		}
		cpaCfg.Interval = 50_000
		cpaCfg.SampleRate = 16
		if mutate != nil {
			mutate(&cpaCfg)
		}
		cfg.CPA = &cpaCfg
	}
	sys, err := cmp.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys.Run()
}

// BenchmarkSimulator measures raw simulation speed per policy.
func BenchmarkSimulator(b *testing.B) {
	for _, kind := range []replacement.Kind{replacement.LRU, replacement.NRU, replacement.BT, replacement.Random} {
		b.Run(kind.String(), func(b *testing.B) {
			var insts uint64
			for i := 0; i < b.N; i++ {
				res := runOnce(b, []string{"twolf", "gap"}, kind, "", nil)
				for _, c := range res.PerCore {
					insts += c.Insts
				}
			}
			b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minsts/s")
		})
	}
}

// BenchmarkAblationScalingFactor sweeps the NRU eSDH scaling factor
// beyond the paper's three values (DESIGN.md §7).
func BenchmarkAblationScalingFactor(b *testing.B) {
	for _, acr := range []string{"M-1.0N", "M-0.9N", "M-0.75N", "M-0.6N", "M-0.5N"} {
		b.Run(acr, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				res := runOnce(b, []string{"twolf", "swim"}, replacement.NRU, acr, nil)
				tp = res.Throughput()
			}
			b.ReportMetric(tp, "throughput")
		})
	}
}

// BenchmarkAblationSampling sweeps the ATD set-sampling rate (the paper
// fixes 1/32).
func BenchmarkAblationSampling(b *testing.B) {
	for _, rate := range []int{1, 8, 32, 128} {
		b.Run(rateName(rate), func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				res := runOnce(b, []string{"twolf", "swim"}, replacement.LRU, "M-L",
					func(c *core.Config) { c.SampleRate = rate })
				tp = res.Throughput()
			}
			b.ReportMetric(tp, "throughput")
		})
	}
}

func rateName(r int) string {
	switch r {
	case 1:
		return "full"
	case 8:
		return "1of8"
	case 32:
		return "1of32"
	default:
		return "1of128"
	}
}

// BenchmarkAblationLookahead compares the greedy Lookahead allocator with
// the optimal MinMisses DP.
func BenchmarkAblationLookahead(b *testing.B) {
	for _, greedy := range []bool{false, true} {
		name := "MinMissesDP"
		if greedy {
			name = "LookaheadGreedy"
		}
		b.Run(name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				res := runOnce(b, []string{"vpr", "art"}, replacement.LRU, "M-L",
					func(c *core.Config) { c.UseLookahead = greedy })
				tp = res.Throughput()
			}
			b.ReportMetric(tp, "throughput")
		})
	}
}

// BenchmarkAblationColdHits quantifies the paper's "no SDH update on
// used==0 hits" simplification (DESIGN.md §4.1).
func BenchmarkAblationColdHits(b *testing.B) {
	for _, count := range []bool{false, true} {
		name := "paperDropsColdHits"
		if count {
			name = "countColdHits"
		}
		b.Run(name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				res := runOnce(b, []string{"twolf", "swim"}, replacement.NRU, "M-0.75N",
					func(c *core.Config) { c.CountColdHits = count })
				tp = res.Throughput()
			}
			b.ReportMetric(tp, "throughput")
		})
	}
}

// BenchmarkAblationInterval sweeps the repartition interval.
func BenchmarkAblationInterval(b *testing.B) {
	for _, iv := range []uint64{10_000, 50_000, 250_000} {
		b.Run(intervalName(iv), func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				res := runOnce(b, []string{"twolf", "swim"}, replacement.LRU, "M-L",
					func(c *core.Config) { c.Interval = iv })
				tp = res.Throughput()
			}
			b.ReportMetric(tp, "throughput")
		})
	}
}

func intervalName(iv uint64) string {
	switch iv {
	case 10_000:
		return "10k"
	case 50_000:
		return "50k"
	default:
		return "250k"
	}
}

// BenchmarkAblationGoals compares the partitioning objectives (the
// FlexDCP-style extensions of DESIGN.md §7) on a contended pair.
func BenchmarkAblationGoals(b *testing.B) {
	goals := []struct {
		name string
		goal core.Goal
		qos  float64
	}{
		{"MinMisses", core.GoalMinMisses, 0},
		{"MaxThroughput", core.GoalThroughput, 0},
		{"FairSlowdown", core.GoalFair, 0},
		{"QoS1.1x", core.GoalQoS, 1.1},
	}
	for _, g := range goals {
		b.Run(g.name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				res := runOnce(b, []string{"art", "twolf"}, replacement.LRU, "M-L",
					func(c *core.Config) { c.Goal = g.goal; c.QoSTarget = g.qos })
				tp = res.Throughput()
			}
			b.ReportMetric(tp, "throughput")
		})
	}
}

// BenchmarkAblationProfiling compares ATD-based profiling (the paper's
// scheme) with Suh-style in-cache way counters (§VI related work).
func BenchmarkAblationProfiling(b *testing.B) {
	for _, inCache := range []bool{false, true} {
		name := "ATD"
		if inCache {
			name = "InCacheWayCounters"
		}
		b.Run(name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				res := runOnce(b, []string{"twolf", "swim"}, replacement.LRU, "M-L",
					func(c *core.Config) { c.InCacheProfiling = inCache })
				tp = res.Throughput()
			}
			b.ReportMetric(tp, "throughput")
		})
	}
}

// BenchmarkAblationMemoryModel compares the paper's constant 250-cycle
// memory penalty with the banked open-row DRAM substrate.
func BenchmarkAblationMemoryModel(b *testing.B) {
	for _, useDRAM := range []bool{false, true} {
		name := "constant250"
		if useDRAM {
			name = "bankedDRAM"
		}
		b.Run(name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				w := workload.Workload{Name: "bench", Benchmarks: []string{"mcf", "swim"}}
				cfg := cmp.Config{
					Workload: w,
					L2: cache.Config{
						Name: "L2", SizeBytes: 1 << 20, LineBytes: 128, Ways: 16,
						Policy: replacement.LRU, Cores: 2, Seed: 1,
					},
					Params:   cpu.DefaultParams(),
					L1:       cpu.DefaultL1Config(128),
					MaxInsts: 150_000,
				}
				if useDRAM {
					dcfg := dram.DefaultConfig()
					cfg.DRAM = &dcfg
				}
				sys, err := cmp.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tp = sys.Run().Throughput()
			}
			b.ReportMetric(tp, "throughput")
		})
	}
}

// BenchmarkAblationEnforcement compares the three enforcement mechanisms
// on the same workload and policy-appropriate configurations.
func BenchmarkAblationEnforcement(b *testing.B) {
	cases := []struct {
		name string
		kind replacement.Kind
		acr  string
	}{
		{"counters", replacement.LRU, "C-L"},
		{"masks", replacement.LRU, "M-L"},
		{"updown", replacement.BT, "M-BT"},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				res := runOnce(b, []string{"vpr", "art"}, tc.kind, tc.acr, nil)
				tp = res.Throughput()
			}
			b.ReportMetric(tp, "throughput")
		})
	}
}
