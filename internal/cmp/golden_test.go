package cmp

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/replacement"
	"repro/internal/workload"
)

// TestGoldenDeterminism pins exact end-to-end results for three
// representative configurations. These values lock down cross-platform,
// cross-run determinism of the entire stack — trace generation, branch
// prediction, both cache levels, profiling, partitioning and timing. If
// a change to any component is *intended* to alter simulation behavior,
// regenerate the constants and say so in the commit; an unintended
// change here is a regression.
func TestGoldenDeterminism(t *testing.T) {
	cases := []struct {
		kind       replacement.Kind
		acr        string
		throughput float64
		misses     uint64
		finish     float64
	}{
		{replacement.LRU, "", 0.5701045653, 10517, 744235.4000},
		{replacement.NRU, "M-0.75N", 0.5737934445, 10338, 734087.7500},
		{replacement.BT, "M-BT", 0.5777975147, 10177, 724835.4000},
	}
	for _, tc := range cases {
		cfg := Config{
			Workload: workload.Workload{Name: "golden", Benchmarks: []string{"twolf", "swim"}},
			L2: cache.Config{Name: "L2", SizeBytes: 512 << 10, LineBytes: 128,
				Ways: 16, Policy: tc.kind, Cores: 2, Seed: 42},
			Params:   cpu.DefaultParams(),
			L1:       cpu.DefaultL1Config(128),
			MaxInsts: 200_000,
		}
		if tc.acr != "" {
			c, err := core.ParseAcronym(tc.acr)
			if err != nil {
				t.Fatal(err)
			}
			c.Interval = 50_000
			c.SampleRate = 8
			cfg.CPA = &c
		}
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run()
		name := tc.kind.String() + "/" + tc.acr
		if math.Abs(res.Throughput()-tc.throughput) > 1e-9 {
			t.Errorf("%s: throughput %.10f, golden %.10f", name, res.Throughput(), tc.throughput)
		}
		if res.L2Misses != tc.misses {
			t.Errorf("%s: misses %d, golden %d", name, res.L2Misses, tc.misses)
		}
		if math.Abs(res.FinishCycles-tc.finish) > 1e-4 {
			t.Errorf("%s: finish %.4f, golden %.4f", name, res.FinishCycles, tc.finish)
		}
	}
}
