// Package cmp assembles and runs the full CMP simulation: N cores with
// private L1 data caches sharing one L2, optionally governed by a dynamic
// cache partitioning system (internal/core).
//
// Scheduling: the run loop always steps the core with the smallest local
// clock, so shared-L2 accesses interleave in global time order and the CPA
// repartitions at deterministic global-cycle boundaries. Cores that reach
// the per-thread instruction target keep running (to preserve contention,
// as in the paper's methodology) until every core has reached it; each
// core's IPC is measured at its own crossing point.
package cmp

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/replacement"
	"repro/internal/workload"
)

// Config describes one simulation.
type Config struct {
	Workload workload.Workload // one benchmark per core
	L2       cache.Config      // shared L2 (Cores must equal workload threads)
	CPA      *core.Config      // nil = unpartitioned
	Params   cpu.Params        // core latencies
	L1       cache.Config      // per-core private L1 template
	MaxInsts uint64            // per-thread instruction target
	// DRAM, when non-nil, replaces the constant memory penalty with the
	// banked open-row memory model (internal/dram). nil keeps the
	// paper's flat Params.MemPenalty.
	DRAM *dram.Config
}

// DefaultL2Config returns the paper's shared L2 (2 MB, 16-way, 128 B
// lines) for the given policy and core count.
func DefaultL2Config(kind replacement.Kind, cores int) cache.Config {
	return cache.Config{
		Name:      "L2",
		SizeBytes: 2 << 20,
		LineBytes: 128,
		Ways:      16,
		Policy:    kind,
		Cores:     cores,
		Seed:      12345,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Workload.Threads() == 0 {
		return fmt.Errorf("cmp: workload is empty")
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.L2.Cores != c.Workload.Threads() {
		return fmt.Errorf("cmp: L2 has %d cores, workload has %d threads",
			c.L2.Cores, c.Workload.Threads())
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if c.L1.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("cmp: L1 line %dB != L2 line %dB", c.L1.LineBytes, c.L2.LineBytes)
	}
	if c.MaxInsts == 0 {
		return fmt.Errorf("cmp: MaxInsts must be positive")
	}
	if c.CPA != nil {
		if err := c.CPA.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CoreResult holds one core's measurements at its crossing point.
type CoreResult struct {
	Benchmark string
	Insts     uint64
	Cycles    float64
	IPC       float64
	Stats     cpu.Stats
}

// Results of one simulation.
type Results struct {
	Workload     string
	ConfigName   string // CPA acronym or policy name
	PerCore      []CoreResult
	FinishCycles float64 // global cycle when the last core crossed
	// Whole-run event totals (for the power model): these cover the full
	// run including post-crossing interference execution.
	L2Accesses   uint64
	L2Misses     uint64
	MemWrites    uint64 // dirty-line traffic to memory (L2 writebacks + L2-missing L1 writebacks)
	ATDObserves  uint64
	Repartitions uint64
	// Demand-only L2 totals: program accesses through Access, excluding
	// the L1 writeback updates folded into L2Accesses. This is the
	// population a recorded optref trace replays, so OPT comparisons use
	// these, not L2Accesses.
	DemandAccesses uint64
	DemandHits     uint64
}

// DemandHitRate returns DemandHits/DemandAccesses (0 for an idle run).
func (r Results) DemandHitRate() float64 {
	if r.DemandAccesses > 0 {
		return float64(r.DemandHits) / float64(r.DemandAccesses)
	}
	return 0
}

// Throughput returns the summed per-core IPC.
func (r Results) Throughput() float64 {
	var t float64
	for _, c := range r.PerCore {
		t += c.IPC
	}
	return t
}

// System is a runnable CMP simulation.
type System struct {
	cfg   Config
	l2    *cache.Cache
	cpa   *core.System
	cores []*cpu.Core

	clock float64 // global time = min over cores (the stepping core's clock)

	// Per-core snapshots backing the core.PerfSource implementation.
	lastInsts  []uint64
	lastCycles []float64

	memWrites uint64       // L1 writebacks that missed the L2 (straight to DRAM)
	mem       *dram.Memory // nil = constant memory latency

	demandAccesses uint64 // program accesses through Access (no writebacks)
	demandHits     uint64
	tracer         func(core int, addr uint64) // demand-access capture hook
}

// SetTracer registers a hook invoked for every demand L2 access (in
// global interleaved order, before the access executes), the capture
// point internal/optref records Belady replay traces from. Writebacks
// are not traced — they are not program accesses. A nil fn disables
// tracing.
func (s *System) SetTracer(fn func(core int, addr uint64)) { s.tracer = fn }

// New builds the system. The L2's replacement policy comes from cfg.L2;
// when a CPA config is present its policy must match (checked by
// core.NewSystem).
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, l2: cache.New(cfg.L2)}
	if cfg.DRAM != nil {
		if err := cfg.DRAM.Validate(); err != nil {
			return nil, err
		}
		s.mem = dram.New(*cfg.DRAM)
	}
	if cfg.CPA != nil {
		sys, err := core.NewSystem(*cfg.CPA, s.l2)
		if err != nil {
			return nil, err
		}
		s.cpa = sys
	}
	for i, b := range cfg.Workload.Benchmarks {
		prof, err := workload.Get(b)
		if err != nil {
			return nil, err
		}
		l1 := cfg.L1
		l1.Name = fmt.Sprintf("L1D%d", i)
		s.cores = append(s.cores, cpu.New(i, prof, workload.Seed(b), l1, cfg.Params, s))
	}
	s.lastInsts = make([]uint64, len(s.cores))
	s.lastCycles = make([]float64, len(s.cores))
	if s.cpa != nil {
		s.cpa.SetPerfSource(s)
	}
	return s, nil
}

// PerfSince implements core.PerfSource: the instructions and cycles the
// core consumed since the previous repartition's query.
func (s *System) PerfSince(coreID int) (uint64, float64) {
	c := s.cores[coreID]
	insts, cycles := c.Insts(), c.Cycles()
	di := insts - s.lastInsts[coreID]
	dc := cycles - s.lastCycles[coreID]
	s.lastInsts[coreID], s.lastCycles[coreID] = insts, cycles
	return di, dc
}

// L2Cache exposes the shared cache (tests, examples).
func (s *System) L2Cache() *cache.Cache { return s.l2 }

// CPA exposes the partitioning system (nil when unpartitioned).
func (s *System) CPA() *core.System { return s.cpa }

// Access implements cpu.SharedL2: it feeds the profiling monitor,
// performs the L2 access and, on a miss, prices the memory access.
func (s *System) Access(coreID int, addr uint64, write bool, now float64) (bool, uint64) {
	if s.cpa != nil {
		s.cpa.OnAccess(coreID, addr)
	}
	if s.tracer != nil {
		s.tracer(coreID, addr)
	}
	s.demandAccesses++
	if s.l2.AccessRW(coreID, addr, write).Hit {
		s.demandHits++
		return true, 0
	}
	if s.mem != nil {
		return false, s.mem.Access(addr, now)
	}
	return false, s.cfg.Params.MemPenalty
}

// Memory exposes the DRAM model (nil when the constant penalty is used).
func (s *System) Memory() *dram.Memory { return s.mem }

// Writeback implements cpu.SharedL2: a dirty L1 victim updates the L2
// without being profiled (it is not a program access). A writeback that
// misses the L2 goes straight to memory; it does not allocate.
func (s *System) Writeback(coreID int, addr uint64) {
	if s.l2.Contains(addr) {
		s.l2.AccessRW(coreID, addr, true)
		return
	}
	s.memWrites++
}

// Run executes the simulation until every core has committed
// cfg.MaxInsts instructions and returns the measurements.
func (s *System) Run() Results {
	res, _ := s.RunContext(context.Background())
	return res
}

// cancelCheckEvery is how many step-loop iterations pass between context
// polls in RunContext — coarse enough to stay off the hot path, fine
// enough that cancellation lands within a fraction of a millisecond.
const cancelCheckEvery = 4096

// RunContext is Run with cooperative cancellation: the step loop polls
// ctx every few thousand steps and returns ctx.Err() (with zero Results)
// once it is done. A background context adds no measurable overhead.
func (s *System) RunContext(ctx context.Context) (Results, error) {
	n := len(s.cores)
	crossed := make([]bool, n)
	results := make([]CoreResult, n)
	remaining := n

	done := ctx.Done()
	sinceCheck := 0
	for remaining > 0 {
		if done != nil {
			if sinceCheck++; sinceCheck >= cancelCheckEvery {
				sinceCheck = 0
				select {
				case <-done:
					return Results{}, ctx.Err()
				default:
				}
			}
		}
		// Pick the core with the smallest local clock (ties: lowest id).
		min := 0
		for i := 1; i < n; i++ {
			if s.cores[i].Cycles() < s.cores[min].Cycles() {
				min = i
			}
		}
		c := s.cores[min]
		s.clock = c.Cycles()
		if s.cpa != nil {
			s.cpa.Tick(uint64(s.clock))
		}
		c.Step()

		if !crossed[min] && c.Insts() >= s.cfg.MaxInsts {
			crossed[min] = true
			remaining--
			results[min] = CoreResult{
				Benchmark: s.cfg.Workload.Benchmarks[min],
				Insts:     c.Insts(),
				Cycles:    c.Cycles(),
				IPC:       float64(c.Insts()) / c.Cycles(),
				Stats:     c.Stats(),
			}
		}
	}

	res := Results{
		Workload:   s.cfg.Workload.Name,
		ConfigName: s.configName(),
		PerCore:    results,
		L2Accesses: s.l2.Stats().TotalAccesses(),
		L2Misses:   s.l2.Stats().TotalMisses(),
		MemWrites:  s.l2.Stats().TotalWritebacks() + s.memWrites,

		DemandAccesses: s.demandAccesses,
		DemandHits:     s.demandHits,
	}
	for _, c := range s.cores {
		if c.Cycles() > res.FinishCycles {
			res.FinishCycles = c.Cycles()
		}
	}
	if s.cpa != nil {
		res.Repartitions = s.cpa.Repartitions()
		for _, m := range s.cpa.Monitors() {
			res.ATDObserves += m.Observed()
		}
	}
	return res, nil
}

func (s *System) configName() string {
	if s.cpa != nil && s.cpa.Config().Acronym != "" {
		return s.cpa.Config().Acronym
	}
	return "none-" + s.cfg.L2.Policy.String()
}
