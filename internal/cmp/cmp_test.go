package cmp

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/replacement"
	"repro/internal/workload"
)

// testConfig builds a scaled-down simulation config (small cache, short
// run) to keep tests fast while exercising every subsystem. The cache
// size matters: pick one that lets the chosen benchmarks' working sets
// partially fit, or every policy degenerates to all-miss and comparisons
// become vacuous.
func testConfig(t *testing.T, benchmarks []string, kind replacement.Kind, cpaAcr string, sizeKB int) Config {
	t.Helper()
	w := workload.Workload{Name: "test", Benchmarks: benchmarks}
	cfg := Config{
		Workload: w,
		L2: cache.Config{
			Name: "L2", SizeBytes: sizeKB * 1024, LineBytes: 128, Ways: 16,
			Policy: kind, Cores: len(benchmarks), Seed: 3,
		},
		Params:   cpu.DefaultParams(),
		L1:       cpu.DefaultL1Config(128),
		MaxInsts: 150_000,
	}
	if cpaAcr != "" {
		c, err := core.ParseAcronym(cpaAcr)
		if err != nil {
			t.Fatal(err)
		}
		c.SampleRate = 8
		c.Interval = 50_000
		cfg.CPA = &c
	}
	return cfg
}

func runConfig(t *testing.T, cfg Config) Results {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run()
}

func TestRunCompletesAllCores(t *testing.T) {
	cfg := testConfig(t, []string{"crafty", "mcf"}, replacement.LRU, "", 1024)
	res := runConfig(t, cfg)
	if len(res.PerCore) != 2 {
		t.Fatalf("results for %d cores", len(res.PerCore))
	}
	for i, c := range res.PerCore {
		if c.Insts < cfg.MaxInsts {
			t.Errorf("core %d committed %d < %d", i, c.Insts, cfg.MaxInsts)
		}
		if c.IPC <= 0 {
			t.Errorf("core %d IPC = %v", i, c.IPC)
		}
	}
	if res.FinishCycles <= 0 {
		t.Error("no finish time")
	}
	if res.ConfigName != "none-LRU" {
		t.Errorf("config name %q", res.ConfigName)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig(t, []string{"twolf", "gap"}, replacement.NRU, "M-0.75N", 1024)
	a := runConfig(t, cfg)
	b := runConfig(t, cfg)
	if a.FinishCycles != b.FinishCycles || a.L2Misses != b.L2Misses {
		t.Fatal("identical simulations diverged")
	}
	for i := range a.PerCore {
		if a.PerCore[i].IPC != b.PerCore[i].IPC {
			t.Fatalf("core %d IPC differs across runs", i)
		}
	}
}

func TestComputeBoundFasterThanMemoryBound(t *testing.T) {
	res := runConfig(t, testConfig(t, []string{"eon", "mcf"}, replacement.LRU, "", 1024))
	if res.PerCore[0].IPC <= res.PerCore[1].IPC {
		t.Fatalf("eon IPC %.3f should exceed mcf IPC %.3f",
			res.PerCore[0].IPC, res.PerCore[1].IPC)
	}
}

func TestCPARepartitionsDuringRun(t *testing.T) {
	res := runConfig(t, testConfig(t, []string{"twolf", "swim"}, replacement.LRU, "M-L", 1024))
	if res.Repartitions == 0 {
		t.Fatal("CPA never repartitioned")
	}
	if res.ATDObserves == 0 {
		t.Fatal("profiling monitors observed nothing")
	}
	if res.ConfigName != "M-L" {
		t.Errorf("config name %q", res.ConfigName)
	}
}

func TestPartitioningProtectsVictimThread(t *testing.T) {
	// twolf (reuse-heavy) paired with swim (streaming) in a small cache:
	// MinMisses partitioning must not hurt, and should typically improve,
	// the reuse thread's IPC versus the unpartitioned shared cache.
	base := runConfig(t, testConfig(t, []string{"twolf", "swim"}, replacement.LRU, "", 1024))
	part := runConfig(t, testConfig(t, []string{"twolf", "swim"}, replacement.LRU, "M-L", 1024))
	baseIPC := base.PerCore[0].IPC
	partIPC := part.PerCore[0].IPC
	if partIPC < baseIPC*0.98 {
		t.Fatalf("partitioning hurt the reuse thread: %.4f -> %.4f", baseIPC, partIPC)
	}
	// And total misses should not explode.
	if part.L2Misses > base.L2Misses*12/10 {
		t.Fatalf("partitioned misses %d far above unpartitioned %d",
			part.L2Misses, base.L2Misses)
	}
}

func TestAllPoliciesAndCPAConfigsRun(t *testing.T) {
	cases := []struct {
		kind replacement.Kind
		acr  string
	}{
		{replacement.LRU, ""},
		{replacement.NRU, ""},
		{replacement.BT, ""},
		{replacement.Random, ""},
		{replacement.LRU, "C-L"},
		{replacement.LRU, "M-L"},
		{replacement.NRU, "M-1.0N"},
		{replacement.NRU, "M-0.75N"},
		{replacement.NRU, "M-0.5N"},
		{replacement.BT, "M-BT"},
	}
	for _, tc := range cases {
		cfg := testConfig(t, []string{"parser", "gzip"}, tc.kind, tc.acr, 512)
		cfg.MaxInsts = 60_000
		res := runConfig(t, cfg)
		name := tc.acr
		if name == "" {
			name = "none-" + tc.kind.String()
		}
		if res.Throughput() <= 0 {
			t.Errorf("%s: throughput %.3f", name, res.Throughput())
		}
	}
}

func TestEightCoreRun(t *testing.T) {
	ws, err := workload.ByThreads(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, ws[0].Benchmarks, replacement.LRU, "M-L", 1024)
	cfg.MaxInsts = 40_000
	res := runConfig(t, cfg)
	if len(res.PerCore) != 8 {
		t.Fatalf("%d per-core results", len(res.PerCore))
	}
	if res.Repartitions == 0 {
		t.Error("no repartitions in 8-core run")
	}
}

func TestValidateCatchesMismatches(t *testing.T) {
	cfg := testConfig(t, []string{"gzip", "gcc"}, replacement.LRU, "", 512)
	cfg.L2.Cores = 3
	if _, err := New(cfg); err == nil {
		t.Error("core-count mismatch accepted")
	}
	cfg = testConfig(t, []string{"gzip", "gcc"}, replacement.LRU, "", 512)
	cfg.L1.LineBytes = 64
	if _, err := New(cfg); err == nil {
		t.Error("line-size mismatch accepted")
	}
	cfg = testConfig(t, []string{"gzip", "gcc"}, replacement.LRU, "", 512)
	cfg.MaxInsts = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero MaxInsts accepted")
	}
	cfg = testConfig(t, []string{"nosuch"}, replacement.LRU, "", 512)
	if _, err := New(cfg); err == nil {
		t.Error("unknown benchmark accepted")
	}
	// CPA policy mismatch with L2 policy.
	cfg = testConfig(t, []string{"gzip", "gcc"}, replacement.LRU, "M-BT", 512)
	if _, err := New(cfg); err == nil {
		t.Error("CPA/L2 policy mismatch accepted")
	}
}

// streamFitConfig builds the policy-discriminating scenario: wupwise's
// 512KB circular stream plus gzip fills a 1MB L2 almost exactly, so true
// LRU retains the stream while Random keeps evicting it. Short runs never
// fill the cache and make every policy look identical, hence 1.5M insts.
func streamFitConfig(t *testing.T, kind replacement.Kind) Config {
	cfg := testConfig(t, []string{"wupwise", "gzip"}, kind, "", 1024)
	cfg.MaxInsts = 1_500_000
	return cfg
}

func TestLRUOutperformsRandomOnReuseWorkload(t *testing.T) {
	lru := runConfig(t, streamFitConfig(t, replacement.LRU))
	rnd := runConfig(t, streamFitConfig(t, replacement.Random))
	if lru.Throughput() <= rnd.Throughput() {
		t.Fatalf("LRU throughput %.3f <= Random %.3f",
			lru.Throughput(), rnd.Throughput())
	}
	if lru.L2Misses >= rnd.L2Misses {
		t.Fatalf("LRU misses %d >= Random misses %d", lru.L2Misses, rnd.L2Misses)
	}
}

func TestPseudoLRUWithinFewPercentOfLRU(t *testing.T) {
	// The paper's headline sanity: NRU and BT land close to LRU on a
	// non-partitioned cache (Fig. 6 shows <= ~5%).
	lru := runConfig(t, streamFitConfig(t, replacement.LRU))
	nru := runConfig(t, streamFitConfig(t, replacement.NRU))
	bt := runConfig(t, streamFitConfig(t, replacement.BT))
	for name, r := range map[string]Results{"NRU": nru, "BT": bt} {
		rel := r.Throughput() / lru.Throughput()
		if math.Abs(rel-1) > 0.05 {
			t.Errorf("%s relative throughput %.3f, want within 5%% of LRU", name, rel)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := testConfig(t, []string{"mcf", "swim"}, replacement.LRU, "", 256)
	cfg.MaxInsts = 50_000_000 // far more than the canceled run will get through
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := sys.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.PerCore) != 0 {
		t.Fatalf("canceled run returned results: %+v", res)
	}
	// The poll interval is thousands of steps, not millions: a canceled
	// run must bail out long before the instruction target.
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}
