package cmp

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/replacement"
)

func TestDRAMModeRuns(t *testing.T) {
	cfg := testConfig(t, []string{"twolf", "swim"}, replacement.LRU, "M-L", 512)
	dcfg := dram.DefaultConfig()
	cfg.DRAM = &dcfg
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if res.Throughput() <= 0 {
		t.Fatal("no throughput under DRAM model")
	}
	mem := sys.Memory()
	if mem == nil || mem.Stats().Accesses == 0 {
		t.Fatal("DRAM model saw no accesses")
	}
	// swim streams: its misses should find open rows often enough that
	// the overall row-hit rate is meaningful.
	if r := mem.RowHitRate(); r <= 0 || r >= 1 {
		t.Fatalf("row-hit rate %.3f out of (0,1)", r)
	}
}

func TestDRAMRejectsBadConfig(t *testing.T) {
	cfg := testConfig(t, []string{"gzip", "gcc"}, replacement.LRU, "", 512)
	cfg.DRAM = &dram.Config{Banks: 3, RowBytes: 8192}
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid DRAM config accepted")
	}
}

func TestDRAMStreamingCheaperThanPointerChasing(t *testing.T) {
	// Streaming misses (swim) ride open rows; random-row misses (mcf)
	// pay the precharge+activate path. With everything else equal, the
	// DRAM model must price swim's average miss below mcf's.
	avgLat := func(bench string) float64 {
		cfg := testConfig(t, []string{bench}, replacement.LRU, "", 512)
		cfg.MaxInsts = 300_000
		dcfg := dram.DefaultConfig()
		cfg.DRAM = &dcfg
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run()
		st := sys.Memory().Stats()
		if st.Accesses == 0 {
			t.Fatalf("%s: no memory accesses", bench)
		}
		hits := float64(st.RowHits) / float64(st.Accesses)
		return hits
	}
	if swim, mcf := avgLat("swim"), avgLat("mcf"); swim <= mcf {
		t.Fatalf("swim row-hit rate %.3f should exceed mcf's %.3f", swim, mcf)
	}
}

func TestConstantModeUnchangedByDRAMPackage(t *testing.T) {
	// Without cfg.DRAM the simulation must behave exactly as before the
	// memory model existed; covered in spirit by TestGoldenDeterminism,
	// asserted here for the Memory() accessor.
	cfg := testConfig(t, []string{"gzip", "gcc"}, replacement.LRU, "", 512)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Memory() != nil {
		t.Fatal("constant-latency system should have no DRAM model")
	}
}
