// Package xrand provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: every
// benchmark trace, workload and simulation must produce identical results
// across runs and platforms. The standard library's math/rand/v2 would work,
// but pinning our own SplitMix64 keeps the sequence stable regardless of Go
// version and lets traces be regenerated from a single uint64 seed.
package xrand

import "math"

// RNG is a SplitMix64 pseudo-random number generator. The zero value is a
// valid generator seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator to the given seed.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 pseudo-random bits (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free approximation is fine here:
	// the bias for n << 2^64 is far below anything observable.
	hi, _ := mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	hi, _ := mul64(r.Uint64(), uint64(n))
	return int64(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a geometrically distributed integer >= 0 with success
// probability p per trial (mean (1-p)/p). p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric probability out of range")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	// Avoid log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Log(u) / math.Log(1-p))
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new generator whose stream is independent of r's
// continued use; convenient for handing sub-seeds to components.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	w0 := t & mask
	k := t >> 32
	t = aHi*bLo + k
	w1 := t & mask
	w2 := t >> 32
	t = aLo*bHi + w1
	k = t >> 32
	hi = aHi*bHi + w2 + k
	lo = (t << 32) | w0
	return hi, lo
}

// WeightedChoice selects an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum; otherwise WeightedChoice panics.
func (r *RNG) WeightedChoice(weights []float64) int {
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("xrand: weights sum to zero")
	}
	x := r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// CumTable is a precomputed cumulative-probability table for repeated
// weighted sampling from the same distribution.
type CumTable struct {
	cum []float64
}

// NewCumTable builds a sampling table from non-negative weights.
func NewCumTable(weights []float64) *CumTable {
	cum := make([]float64, len(weights))
	var sum float64
	for i, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		sum += w
		cum[i] = sum
	}
	if sum <= 0 {
		panic("xrand: weights sum to zero")
	}
	for i := range cum {
		cum[i] /= sum
	}
	return &CumTable{cum: cum}
}

// Len returns the number of outcomes in the table.
func (t *CumTable) Len() int { return len(t.cum) }

// Sample draws an index from the table using r.
func (t *CumTable) Sample(r *RNG) int {
	x := r.Float64()
	// Binary search for the first cumulative value > x.
	lo, hi := 0, len(t.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
