package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestKnownSplitMixValues(t *testing.T) {
	// Reference values for SplitMix64 seeded with 1234567
	// (from the public-domain reference implementation by Vigna).
	r := New(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Errorf("step %d: got %d, want %d", i, got, w)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const buckets = 8
	const n = 80000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("bucket %d: count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(21)
	p := 0.25
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.3 {
		t.Fatalf("Exp(10) mean = %v, want ~10", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := New(13)
	weights := []float64{1, 2, 3, 4}
	const n = 100000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > want*0.05 {
			t.Errorf("outcome %d: count %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestCumTableMatchesWeightedChoice(t *testing.T) {
	weights := []float64{5, 0, 1, 10, 0.5}
	tbl := NewCumTable(weights)
	r := New(29)
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[tbl.Sample(r)]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		want := w / sum * n
		tol := want*0.05 + 50
		if math.Abs(float64(counts[i])-want) > tol {
			t.Errorf("outcome %d: count %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestCumTableZeroWeightNeverSampled(t *testing.T) {
	tbl := NewCumTable([]float64{1, 0, 1})
	r := New(31)
	for i := 0; i < 10000; i++ {
		if tbl.Sample(r) == 1 {
			t.Fatal("zero-weight outcome was sampled")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(55)
	child := r.Split()
	// The parent continues; both streams should differ from each other.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream collided with parent %d times", same)
	}
}

func TestMul64Property(t *testing.T) {
	// Verify our 128-bit multiply against big-integer-free identities:
	// (a*b) mod 2^64 must equal Go's native wraparound product.
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	r := New(77)
	f := func(raw uint32) bool {
		n := int(raw%10000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
