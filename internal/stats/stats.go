// Package stats provides the small statistical containers used by the
// simulator: event counters, integer histograms and running summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing event count.
type Counter struct {
	Name  string
	Value uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Value++ }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.Value += n }

// Histogram is a dense histogram over the integer domain [0, len(bins)).
type Histogram struct {
	bins []uint64
}

// NewHistogram returns a histogram with n bins.
func NewHistogram(n int) *Histogram {
	return &Histogram{bins: make([]uint64, n)}
}

// Len returns the number of bins.
func (h *Histogram) Len() int { return len(h.bins) }

// Observe increments bin i. Out-of-range observations clamp to the edges.
func (h *Histogram) Observe(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
}

// Add increments bin i by n, clamping like Observe.
func (h *Histogram) Add(i int, n uint64) {
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i] += n
}

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) uint64 { return h.bins[i] }

// Total returns the sum of all bins.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, b := range h.bins {
		t += b
	}
	return t
}

// TailSum returns the sum of bins[from:] — the canonical "misses with
// fewer than from ways" query on a stack-distance histogram.
func (h *Histogram) TailSum(from int) uint64 {
	if from < 0 {
		from = 0
	}
	var t uint64
	for i := from; i < len(h.bins); i++ {
		t += h.bins[i]
	}
	return t
}

// Halve divides every bin by two (right shift). The profiling logic uses
// this at interval boundaries to age the SDH registers, exactly as the
// paper prescribes ("we divide all register contents by 2").
func (h *Histogram) Halve() {
	for i := range h.bins {
		h.bins[i] >>= 1
	}
}

// Reset zeroes all bins.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{bins: make([]uint64, len(h.bins))}
	copy(c.bins, h.bins)
	return c
}

// Mean returns the mean bin index weighted by counts, or 0 for an empty
// histogram.
func (h *Histogram) Mean() float64 {
	var sum, n float64
	for i, b := range h.bins {
		sum += float64(i) * float64(b)
		n += float64(b)
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// String renders the histogram compactly for debugging.
func (h *Histogram) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, b := range h.bins {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", b)
	}
	sb.WriteByte(']')
	return sb.String()
}

// Summary accumulates a running mean / min / max / stddev without storing
// samples.
type Summary struct {
	n           uint64
	mean, m2    float64
	minV, maxV  float64
	hasExtremes bool
}

// Observe adds a sample.
func (s *Summary) Observe(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasExtremes || x < s.minV {
		s.minV = x
	}
	if !s.hasExtremes || x > s.maxV {
		s.maxV = x
	}
	s.hasExtremes = true
}

// N returns the number of samples.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 if empty).
func (s *Summary) Min() float64 { return s.minV }

// Max returns the largest sample (0 if empty).
func (s *Summary) Max() float64 { return s.maxV }

// StdDev returns the sample standard deviation (0 if fewer than 2 samples).
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs. Non-positive entries make
// the result 0 (the metric is undefined there; callers treat it as a
// degenerate workload).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// Median returns the median of xs (0 if empty). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
