package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCounter(t *testing.T) {
	c := Counter{Name: "hits"}
	c.Inc()
	c.Inc()
	c.Add(3)
	if c.Value != 5 {
		t.Fatalf("counter = %d, want 5", c.Value)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(0)
	h.Observe(1)
	h.Observe(1)
	h.Observe(3)
	if h.Len() != 4 {
		t.Fatalf("Len = %d", h.Len())
	}
	want := []uint64{1, 2, 0, 1}
	for i, w := range want {
		if h.Bin(i) != w {
			t.Errorf("bin %d = %d, want %d", i, h.Bin(i), w)
		}
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(3)
	h.Observe(-5)
	h.Observe(99)
	if h.Bin(0) != 1 || h.Bin(2) != 1 {
		t.Fatalf("clamping failed: %v", h)
	}
}

func TestHistogramTailSum(t *testing.T) {
	h := NewHistogram(5)
	for i := 0; i < 5; i++ {
		h.Add(i, uint64(i+1)) // bins: 1 2 3 4 5
	}
	if got := h.TailSum(0); got != 15 {
		t.Errorf("TailSum(0) = %d, want 15", got)
	}
	if got := h.TailSum(3); got != 9 {
		t.Errorf("TailSum(3) = %d, want 9", got)
	}
	if got := h.TailSum(5); got != 0 {
		t.Errorf("TailSum(5) = %d, want 0", got)
	}
	if got := h.TailSum(-1); got != 15 {
		t.Errorf("TailSum(-1) = %d, want 15", got)
	}
}

func TestHistogramHalve(t *testing.T) {
	h := NewHistogram(3)
	h.Add(0, 7)
	h.Add(1, 1)
	h.Add(2, 0)
	h.Halve()
	if h.Bin(0) != 3 || h.Bin(1) != 0 || h.Bin(2) != 0 {
		t.Fatalf("after halve: %v", h)
	}
}

func TestHistogramCloneIsDeep(t *testing.T) {
	h := NewHistogram(2)
	h.Observe(0)
	c := h.Clone()
	c.Observe(1)
	if h.Bin(1) != 0 {
		t.Fatal("clone mutation leaked into original")
	}
	if c.Bin(0) != 1 || c.Bin(1) != 1 {
		t.Fatalf("clone content wrong: %v", c)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(4)
	h.Add(1, 2)
	h.Add(3, 2)
	if got := h.Mean(); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("Mean = %v, want 2", got)
	}
	empty := NewHistogram(4)
	if empty.Mean() != 0 {
		t.Fatal("empty histogram mean should be 0")
	}
}

func TestHistogramTailSumInvariant(t *testing.T) {
	// Property: TailSum(k) + sum(bins[:k]) == Total for any k.
	f := func(raw []uint8, k uint8) bool {
		h := NewHistogram(16)
		for _, v := range raw {
			h.Observe(int(v) % 16)
		}
		kk := int(k) % 17
		var head uint64
		for i := 0; i < kk && i < 16; i++ {
			head += h.Bin(i)
		}
		return head+h.TailSum(kk) == h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Sample stddev of that classic dataset is sqrt(32/7).
	if !almostEqual(s.StdDev(), math.Sqrt(32.0/7.0), 1e-9) {
		t.Errorf("StdDev = %v", s.StdDev())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Fatal("zero-value summary should report zeros")
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Observe(-3)
	s.Observe(-7)
	if s.Min() != -7 || s.Max() != -3 {
		t.Fatalf("min/max = %v/%v, want -7/-3", s.Min(), s.Max())
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEqual(got, 10, 1e-9) {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	// Non-positive values are skipped.
	if got := GeoMean([]float64{0, 4, 9, -1}); !almostEqual(got, 6, 1e-9) {
		t.Errorf("GeoMean with zeros = %v, want 6", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("HarmonicMean = %v", got)
	}
	// HM of {2, 6} = 3.
	if got := HarmonicMean([]float64{2, 6}); !almostEqual(got, 3, 1e-12) {
		t.Errorf("HarmonicMean = %v, want 3", got)
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("HarmonicMean with zero should be 0")
	}
	if HarmonicMean(nil) != 0 {
		t.Error("HarmonicMean(nil) != 0")
	}
}

func TestHarmonicLessThanArithmetic(t *testing.T) {
	// Property: HM <= AM for positive inputs.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)/16 + 0.5
		}
		return HarmonicMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	// Median must not mutate its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated input")
	}
}
