package faultinject

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	sp, err := Parse("seed=7,accept-err=0.25,latency=0.1:2ms,partial-write=0.05,reset=0.02")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Seed: 7, AcceptErr: 0.25, Latency: 0.1, LatencyDur: 2 * time.Millisecond, PartialWrite: 0.05, Reset: 0.02}
	if sp != want {
		t.Fatalf("Parse = %+v, want %+v", sp, want)
	}
	if !sp.Enabled() {
		t.Fatal("spec with faults reports Enabled() == false")
	}

	sp, err = Parse("")
	if err != nil || sp != (Spec{}) || sp.Enabled() {
		t.Fatalf("empty spec: %+v, %v", sp, err)
	}

	for _, bad := range []string{
		"wat", "seed", "seed=x", "accept-err=2", "accept-err=-0.1",
		"latency=0.5", "latency=0.5:xyz", "latency=0.5:-1s", "bogus=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// pipeListener turns a pre-dialed pair into a one-shot listener so conn
// faults can be tested without real TCP.
func tcpPair(t *testing.T, sp Spec) (server net.Conn, client net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fl := WrapListener(ln, sp)
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = fl.Accept()
	}()
	client, derr := net.Dial("tcp", ln.Addr().String())
	if derr != nil {
		t.Fatal(derr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close(); client.Close() })
	return server, client
}

func TestInjectedAcceptError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fl := WrapListener(ln, Spec{Seed: 1, AcceptErr: 1})
	for i := 0; i < 3; i++ {
		if _, err := fl.Accept(); !errors.Is(err, ErrInjectedAccept) {
			t.Fatalf("Accept %d: err = %v, want ErrInjectedAccept", i, err)
		}
	}
}

// TestAcceptPatternDeterministic pins that the sequence of injected
// accept failures depends only on the seed and the call count.
func TestAcceptPatternDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		fl := WrapListener(ln, Spec{Seed: seed, AcceptErr: 0.5}).(*listener)
		out := make([]bool, 32)
		for i := range out {
			// Probe the roll exactly as Accept does, without needing a
			// dialer to feed real connections.
			fl.mu.Lock()
			out[i] = fl.rng.Float64() < fl.spec.AcceptErr
			fl.mu.Unlock()
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at roll %d: %v vs %v", i, a, b)
		}
	}
}

func TestInjectedReset(t *testing.T) {
	server, client := tcpPair(t, Spec{Seed: 3, Reset: 1})
	buf := make([]byte, 16)
	if _, err := server.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("Read err = %v, want ErrInjected", err)
	}
	// The underlying socket really closed: the peer sees EOF.
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(buf); err != io.EOF {
		t.Fatalf("peer read after reset: %v, want EOF", err)
	}
}

func TestInjectedPartialWrite(t *testing.T) {
	server, client := tcpPair(t, Spec{Seed: 5, PartialWrite: 1})
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	n, err := server.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Write err = %v, want ErrInjected", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("partial write delivered %d of %d bytes, want a strict prefix", n, len(payload))
	}
	// The peer receives exactly the prefix, then EOF.
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, rerr := io.ReadAll(client)
	if rerr != nil {
		t.Fatalf("peer read: %v", rerr)
	}
	if len(got) != n {
		t.Fatalf("peer got %d bytes, want the %d-byte prefix", len(got), n)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d corrupted: %x != %x", i, got[i], payload[i])
		}
	}
}

func TestInjectedLatency(t *testing.T) {
	server, client := tcpPair(t, Spec{Seed: 9, Latency: 1, LatencyDur: 50 * time.Millisecond})
	go func() {
		client.Write([]byte("x"))
	}()
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("read returned in %v, want >= 50ms injected stall", d)
	}
}

// TestNoFaultsPassthrough checks the zero spec is a transparent proxy.
func TestNoFaultsPassthrough(t *testing.T) {
	server, client := tcpPair(t, Spec{})
	go client.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(server, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("passthrough read: %q, %v", buf, err)
	}
	go server.Write([]byte("world"))
	if _, err := io.ReadFull(client, buf); err != nil || string(buf) != "world" {
		t.Fatalf("passthrough write: %q, %v", buf, err)
	}
}
