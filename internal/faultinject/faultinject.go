// Package faultinject wraps net.Listener and net.Conn with
// deterministic, seeded fault injection for robustness testing:
// transient accept errors, read/write latency stalls, partial writes,
// and connection resets. cpacached wires it behind the -fault-spec
// flag (tests only — the flag is loudly logged), and the chaos smoke
// lane drives the retrying cpaload engine through an injected server
// and asserts full recovery.
//
// Determinism: the listener's accept rolls come from one RNG seeded
// with Spec.Seed, and each accepted connection gets its own RNG seeded
// from Spec.Seed and its accept ordinal — so for a fixed sequence of
// operations on a given connection, the fault pattern is reproducible
// regardless of goroutine scheduling across connections.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Spec describes the fault mix. The zero value injects nothing.
type Spec struct {
	// Seed feeds every RNG; runs with the same seed and the same
	// per-connection operation sequences inject the same faults.
	Seed int64
	// AcceptErr is the probability one Accept call returns a transient
	// error instead of accepting. The pending connection is not lost —
	// it stays in the kernel backlog for a later Accept.
	AcceptErr float64
	// Latency is the probability one Read or Write stalls for
	// LatencyDur before touching the socket.
	Latency    float64
	LatencyDur time.Duration
	// PartialWrite is the probability one Write delivers only a strict
	// prefix, then closes the connection and reports an error.
	PartialWrite float64
	// Reset is the probability one Read or Write closes the connection
	// and reports an error without touching the socket.
	Reset float64
}

// Enabled reports whether the spec injects any fault at all.
func (sp Spec) Enabled() bool {
	return sp.AcceptErr > 0 || sp.Latency > 0 || sp.PartialWrite > 0 || sp.Reset > 0
}

// Parse reads a spec string of comma-separated key=value fields:
//
//	seed=7,accept-err=0.05,latency=0.02:2ms,partial-write=0.02,reset=0.02
//
// latency takes probability:duration; the other fault keys take a
// probability in [0,1]. An empty string parses to the zero Spec.
func Parse(s string) (Spec, error) {
	var sp Spec
	if s == "" {
		return sp, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Spec{}, fmt.Errorf("faultinject: field %q is not key=value", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinject: bad seed %q", val)
			}
			sp.Seed = n
		case "accept-err":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinject: %s: %w", key, err)
			}
			sp.AcceptErr = p
		case "latency":
			probStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return Spec{}, fmt.Errorf("faultinject: latency wants probability:duration, got %q", val)
			}
			p, err := parseProb(probStr)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinject: latency: %w", err)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d < 0 {
				return Spec{}, fmt.Errorf("faultinject: bad latency duration %q", durStr)
			}
			sp.Latency, sp.LatencyDur = p, d
		case "partial-write":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinject: %s: %w", key, err)
			}
			sp.PartialWrite = p
		case "reset":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, fmt.Errorf("faultinject: %s: %w", key, err)
			}
			sp.Reset = p
		default:
			return Spec{}, fmt.Errorf("faultinject: unknown field %q", key)
		}
	}
	return sp, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("bad probability %q (want 0..1)", s)
	}
	return p, nil
}

// ErrInjected is the cause wrapped by every fault this package injects
// into an established connection.
var ErrInjected = errors.New("faultinject: injected connection fault")

// ErrInjectedAccept is the transient error injected into Accept; a
// robust accept loop backs off and retries it.
var ErrInjectedAccept = errors.New("faultinject: injected accept error")

// WrapListener returns ln with sp's faults injected into Accept and
// into every connection it hands out.
func WrapListener(ln net.Listener, sp Spec) net.Listener {
	return &listener{Listener: ln, spec: sp, rng: rand.New(rand.NewSource(sp.Seed))}
}

type listener struct {
	net.Listener
	spec  Spec
	mu    sync.Mutex
	rng   *rand.Rand
	conns int64
}

func (l *listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	fail := l.rng.Float64() < l.spec.AcceptErr
	var seed int64
	if !fail {
		l.conns++
		// A distinct, order-derived seed per connection keeps each
		// conn's fault stream independent and reproducible.
		seed = l.spec.Seed + 1000003*l.conns
	}
	l.mu.Unlock()
	if fail {
		return nil, ErrInjectedAccept
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &conn{Conn: c, spec: l.spec, rng: rand.New(rand.NewSource(seed))}, nil
}

type conn struct {
	net.Conn
	spec Spec
	mu   sync.Mutex
	rng  *rand.Rand
}

func (c *conn) roll(prob float64) bool {
	if prob <= 0 {
		return false
	}
	c.mu.Lock()
	v := c.rng.Float64()
	c.mu.Unlock()
	return v < prob
}

func (c *conn) Read(p []byte) (int, error) {
	if c.roll(c.spec.Latency) {
		time.Sleep(c.spec.LatencyDur)
	}
	if c.roll(c.spec.Reset) {
		c.Conn.Close()
		return 0, fmt.Errorf("read: injected reset: %w", ErrInjected)
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	if c.roll(c.spec.Latency) {
		time.Sleep(c.spec.LatencyDur)
	}
	if c.roll(c.spec.Reset) {
		c.Conn.Close()
		return 0, fmt.Errorf("write: injected reset: %w", ErrInjected)
	}
	if len(p) > 1 && c.roll(c.spec.PartialWrite) {
		c.mu.Lock()
		n := 1 + c.rng.Intn(len(p)-1)
		c.mu.Unlock()
		nw, err := c.Conn.Write(p[:n])
		if err != nil {
			return nw, err
		}
		// Close so the peer sees the truncation promptly instead of
		// blocking for bytes that will never come.
		c.Conn.Close()
		return nw, fmt.Errorf("write: injected partial write (%d of %d bytes): %w", nw, len(p), ErrInjected)
	}
	return c.Conn.Write(p)
}
