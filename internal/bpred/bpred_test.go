package bpred

import (
	"testing"

	"repro/internal/xrand"
)

func TestAlwaysTakenBranchLearned(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x4000)
	miss := 0
	for i := 0; i < 100; i++ {
		if out := p.Lookup(pc, true); !out.DirectionCorrect {
			miss++
		}
	}
	if miss > 2 {
		t.Fatalf("always-taken branch mispredicted %d/100 times", miss)
	}
	if p.Branches() != 100 {
		t.Fatalf("Branches() = %d", p.Branches())
	}
}

func TestAlwaysNotTakenBranchLearned(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x8000)
	for i := 0; i < 10; i++ {
		p.Lookup(pc, false)
	}
	if out := p.Lookup(pc, false); !out.DirectionCorrect {
		t.Fatal("not-taken branch still mispredicted after training")
	}
}

func TestAlternatingPatternLearnedByGshare(t *testing.T) {
	// A strict T/NT alternation defeats bimodal but gshare (with history)
	// learns it; the tournament must converge to high accuracy.
	p := New(DefaultConfig())
	pc := uint64(0xc000)
	// Train.
	for i := 0; i < 2000; i++ {
		p.Lookup(pc, i%2 == 0)
	}
	correct := 0
	for i := 2000; i < 3000; i++ {
		if out := p.Lookup(pc, i%2 == 0); out.DirectionCorrect {
			correct++
		}
	}
	if correct < 950 {
		t.Fatalf("alternating pattern: %d/1000 correct after training", correct)
	}
}

func TestRandomBranchesNearChance(t *testing.T) {
	p := New(DefaultConfig())
	rng := xrand.New(77)
	for i := 0; i < 20000; i++ {
		pc := uint64(rng.Intn(64)) * 4
		p.Lookup(pc, rng.Bool(0.5))
	}
	acc := p.Accuracy()
	if acc < 0.4 || acc > 0.6 {
		t.Fatalf("accuracy on random outcomes = %.3f, want ~0.5", acc)
	}
}

func TestBiasedBranchesHighAccuracy(t *testing.T) {
	p := New(DefaultConfig())
	rng := xrand.New(78)
	bias := make([]float64, 64)
	for i := range bias {
		if rng.Bool(0.5) {
			bias[i] = 0.95
		} else {
			bias[i] = 0.05
		}
	}
	for i := 0; i < 50000; i++ {
		b := rng.Intn(64)
		p.Lookup(uint64(b)*4, rng.Bool(bias[b]))
	}
	if acc := p.Accuracy(); acc < 0.9 {
		t.Fatalf("accuracy on 95%%-biased branches = %.3f, want >= 0.9", acc)
	}
}

func TestBTBMissOnFirstTaken(t *testing.T) {
	p := New(DefaultConfig())
	out := p.Lookup(0x1234, true)
	if out.BTBHit {
		t.Fatal("first taken branch hit in an empty BTB")
	}
	out = p.Lookup(0x1234, true)
	if !out.BTBHit {
		t.Fatal("second taken branch missed in BTB")
	}
	if p.BTBMisses() != 1 {
		t.Fatalf("BTBMisses = %d, want 1", p.BTBMisses())
	}
}

func TestNotTakenNeverChargesBTB(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		if out := p.Lookup(uint64(i)*4096, false); !out.BTBHit {
			t.Fatal("not-taken branch reported a BTB miss")
		}
	}
	if p.BTBMisses() != 0 {
		t.Fatalf("BTBMisses = %d, want 0", p.BTBMisses())
	}
}

func TestBTBCapacityEviction(t *testing.T) {
	// 1KB / 4B entries = 256 entries. Cycling through 512 distinct taken
	// branches must keep missing.
	p := New(DefaultConfig())
	for round := 0; round < 3; round++ {
		for i := 0; i < 512; i++ {
			p.Lookup(uint64(i)*4, true)
		}
	}
	// With 512 branches and 256 entries of LRU, every access misses.
	if p.BTBMisses() < 1200 {
		t.Fatalf("BTBMisses = %d, want heavy thrashing", p.BTBMisses())
	}
}

func TestAccuracyEmptyIsOne(t *testing.T) {
	if acc := New(DefaultConfig()).Accuracy(); acc != 1 {
		t.Fatalf("empty accuracy = %v", acc)
	}
}

func TestSaturatingCounters(t *testing.T) {
	if satInc(3) != 3 {
		t.Error("satInc(3) overflowed")
	}
	if satDec(0) != 0 {
		t.Error("satDec(0) underflowed")
	}
	if satInc(1) != 2 || satDec(2) != 1 {
		t.Error("mid-range counter updates wrong")
	}
}
