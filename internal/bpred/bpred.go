// Package bpred implements the paper's branch predictor setup (Table II):
// a tournament predictor that selects the best of a bimodal and a gshare
// component via a chooser table, plus a small branch target buffer. The
// core timing model charges a misprediction penalty when the tournament
// predicts the wrong direction and a smaller penalty on taken branches
// that miss in the BTB (the paper's "min penalty - 3 cycles").
package bpred

import (
	"repro/internal/cache"
	"repro/internal/replacement"
)

// Config sizes the predictor tables.
type Config struct {
	BimodalBits int // log2 entries of the bimodal table
	GshareBits  int // log2 entries of the gshare table (and history length)
	ChooserBits int // log2 entries of the chooser table
	BTBBytes    int // BTB capacity (paper: 1KB, 4-way)
	BTBWays     int
}

// DefaultConfig mirrors the paper's modest front end.
func DefaultConfig() Config {
	return Config{
		BimodalBits: 12,
		GshareBits:  12,
		ChooserBits: 12,
		BTBBytes:    1024,
		BTBWays:     4,
	}
}

// Predictor is a bimodal+gshare tournament predictor with a BTB.
type Predictor struct {
	cfg     Config
	bimodal []uint8 // 2-bit saturating counters
	gshare  []uint8
	chooser []uint8 // 2-bit: >=2 selects gshare
	history uint64
	btb     *cache.Cache

	// statistics
	branches    uint64
	mispredicts uint64
	btbMisses   uint64
}

// New builds a predictor; counters start weakly taken / no preference.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, 1<<uint(cfg.BimodalBits)),
		gshare:  make([]uint8, 1<<uint(cfg.GshareBits)),
		chooser: make([]uint8, 1<<uint(cfg.ChooserBits)),
		btb: cache.New(cache.Config{
			Name:      "BTB",
			SizeBytes: cfg.BTBBytes,
			LineBytes: 4, // one target entry per 4-byte slot
			Ways:      cfg.BTBWays,
			Policy:    replacement.LRU,
			Cores:     1,
		}),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 1
	}
	return p
}

// Outcome describes one predicted branch.
type Outcome struct {
	DirectionCorrect bool // tournament direction prediction was right
	BTBHit           bool // target was present in the BTB
}

// Lookup predicts the branch at pc, updates all tables with the actual
// outcome `taken`, and reports what happened — the single-call interface
// the core model uses.
func (p *Predictor) Lookup(pc uint64, taken bool) Outcome {
	p.branches++
	bi := (pc >> 2) & uint64(len(p.bimodal)-1)
	gi := ((pc >> 2) ^ p.history) & uint64(len(p.gshare)-1)
	ci := (pc >> 2) & uint64(len(p.chooser)-1)

	bPred := p.bimodal[bi] >= 2
	gPred := p.gshare[gi] >= 2
	var pred bool
	if p.chooser[ci] >= 2 {
		pred = gPred
	} else {
		pred = bPred
	}

	// Update chooser toward whichever component was right (only when they
	// disagree).
	if bPred != gPred {
		if gPred == taken {
			p.chooser[ci] = satInc(p.chooser[ci])
		} else {
			p.chooser[ci] = satDec(p.chooser[ci])
		}
	}
	if taken {
		p.bimodal[bi] = satInc(p.bimodal[bi])
		p.gshare[gi] = satInc(p.gshare[gi])
	} else {
		p.bimodal[bi] = satDec(p.bimodal[bi])
		p.gshare[gi] = satDec(p.gshare[gi])
	}
	p.history = p.history<<1 | b2u(taken)

	out := Outcome{DirectionCorrect: pred == taken}
	if !out.DirectionCorrect {
		p.mispredicts++
	}
	// BTB: taken branches need a target; model presence via a small
	// tag array keyed by pc.
	if taken {
		hit := p.btb.Access(0, pc).Hit
		out.BTBHit = hit
		if !hit {
			p.btbMisses++
		}
	} else {
		out.BTBHit = true
	}
	return out
}

// Branches returns the number of branches predicted.
func (p *Predictor) Branches() uint64 { return p.branches }

// Mispredicts returns the number of direction mispredictions.
func (p *Predictor) Mispredicts() uint64 { return p.mispredicts }

// BTBMisses returns the number of taken branches missing in the BTB.
func (p *Predictor) BTBMisses() uint64 { return p.btbMisses }

// Accuracy returns the direction prediction accuracy (1.0 when no
// branches were seen).
func (p *Predictor) Accuracy() float64 {
	if p.branches == 0 {
		return 1
	}
	return 1 - float64(p.mispredicts)/float64(p.branches)
}

func satInc(v uint8) uint8 {
	if v < 3 {
		return v + 1
	}
	return v
}

func satDec(v uint8) uint8 {
	if v > 0 {
		return v - 1
	}
	return v
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
