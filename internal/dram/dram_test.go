package dram

import (
	"testing"

	"repro/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Banks = 3
	if bad.Validate() == nil {
		t.Error("non-power-of-two banks accepted")
	}
	bad = DefaultConfig()
	bad.RowBytes = 1000
	if bad.Validate() == nil {
		t.Error("non-power-of-two row accepted")
	}
}

func TestSequentialStreamHitsRows(t *testing.T) {
	m := New(DefaultConfig())
	// A 128B-line stream walks each 8KB row 64 times before moving on.
	var addr uint64
	now := 0.0
	for i := 0; i < 6400; i++ {
		lat := m.Access(addr, now)
		now += float64(lat) + 1000 // spaced out: no queueing
		addr += 128
	}
	if r := m.RowHitRate(); r < 0.95 {
		t.Fatalf("streaming row-hit rate %.3f, want > 0.95", r)
	}
}

func TestRandomAccessesMissRows(t *testing.T) {
	m := New(DefaultConfig())
	rng := xrand.New(5)
	now := 0.0
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(1<<20)) * 8192 // a new random row each time
		lat := m.Access(addr, now)
		now += float64(lat) + 1000
	}
	if r := m.RowHitRate(); r > 0.05 {
		t.Fatalf("random row-hit rate %.3f, want near 0", r)
	}
}

func TestRowHitCheaperThanMiss(t *testing.T) {
	m := New(DefaultConfig())
	first := m.Access(0, 0)         // row miss (cold)
	second := m.Access(128, 100000) // same row, long after: hit, no queue
	if second >= first {
		t.Fatalf("row hit latency %d not below miss latency %d", second, first)
	}
}

func TestBankQueueing(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	// Two back-to-back requests to the same bank at the same instant: the
	// second must queue behind the first's service time.
	a := m.Access(0, 0)
	b := m.Access(128, 0) // same row, same bank, same time
	if b < a-cfg.RowMissCycles+cfg.RowHitCycles+cfg.ServiceCycles {
		t.Fatalf("second request (%d cycles) did not queue behind the first (%d)", b, a)
	}
	if m.Stats().QueuedCycles == 0 {
		t.Fatal("no queueing recorded")
	}
}

func TestDistinctBanksNoQueueing(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	m.Access(0, 0)
	// Next row lands in the next bank: no queueing at the same instant.
	lat := m.Access(uint64(cfg.RowBytes), 0)
	if lat != cfg.BaseCycles+cfg.RowMissCycles {
		t.Fatalf("cross-bank access latency %d, want %d",
			lat, cfg.BaseCycles+cfg.RowMissCycles)
	}
	if m.Stats().QueuedCycles != 0 {
		t.Fatal("spurious queueing across banks")
	}
}

func TestAverageNearPaperConstant(t *testing.T) {
	// The default config should average in the neighborhood of the
	// paper's flat 250 cycles on a mixed stream.
	m := New(DefaultConfig())
	rng := xrand.New(9)
	now := 0.0
	var total uint64
	const n = 20000
	for i := 0; i < n; i++ {
		var addr uint64
		if rng.Bool(0.4) { // some spatial locality
			addr = uint64(rng.Intn(64)) * 128
		} else {
			addr = uint64(rng.Intn(1<<18)) * 8192
		}
		lat := m.Access(addr, now)
		total += lat
		now += 300 // a miss every ~300 cycles
	}
	avg := float64(total) / n
	if avg < 180 || avg > 330 {
		t.Fatalf("average latency %.1f cycles, want in [180, 330] (paper constant: 250)", avg)
	}
}

func TestStatsAccounting(t *testing.T) {
	m := New(DefaultConfig())
	m.Access(0, 0)
	m.Access(128, 100000)
	s := m.Stats()
	if s.Accesses != 2 || s.RowHits != 1 || s.RowMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
