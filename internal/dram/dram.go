// Package dram models main memory as a set of banks with open-row
// (row-buffer) policy and per-bank service queueing. The paper charges a
// flat 250-cycle penalty for every L2 miss (Table II); this substrate is
// the optional refinement behind that constant: accesses that hit an open
// row are cheaper, bank conflicts queue, and streaming misses therefore
// see lower average latency than pointer-chasing misses — the texture a
// constant hides. Enable it per simulation with cmp.Config.DRAM; the
// default remains the paper's constant.
package dram

import "fmt"

// Config sizes the memory system. All latencies are in core cycles.
type Config struct {
	Banks         int    // number of independent banks (power of two)
	RowBytes      int    // row-buffer size per bank
	BaseCycles    uint64 // controller + bus overhead per access
	RowHitCycles  uint64 // CAS-only access (open row)
	RowMissCycles uint64 // PRE + ACT + CAS (row conflict or closed)
	ServiceCycles uint64 // bank occupancy per request (queueing grain)
}

// DefaultConfig approximates the paper's 250-cycle average with a
// DDR2-era geometry: misses that stream within a row cost ~190 cycles
// while row conflicts cost ~290.
func DefaultConfig() Config {
	return Config{
		Banks:         16,
		RowBytes:      8192,
		BaseCycles:    60,
		RowHitCycles:  130,
		RowMissCycles: 230,
		ServiceCycles: 40,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("dram: banks %d not a positive power of two", c.Banks)
	}
	if c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram: row size %d not a positive power of two", c.RowBytes)
	}
	return nil
}

// Stats counts memory activity.
type Stats struct {
	Accesses  uint64
	RowHits   uint64
	RowMisses uint64
	// QueuedCycles accumulates time requests spent waiting for a busy
	// bank.
	QueuedCycles uint64
}

// Memory is one memory controller instance.
type Memory struct {
	cfg       Config
	openRow   []int64   // per bank; -1 = closed
	busyUntil []float64 // per bank, in cycles
	stats     Stats
}

// New builds a memory from the configuration (panics on invalid configs,
// which are static experiment inputs).
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Memory{
		cfg:       cfg,
		openRow:   make([]int64, cfg.Banks),
		busyUntil: make([]float64, cfg.Banks),
	}
	for i := range m.openRow {
		m.openRow[i] = -1
	}
	return m
}

// Config returns the configuration.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns a copy of the counters.
func (m *Memory) Stats() Stats { return m.stats }

// Access services a memory request for byte address `addr` issued at
// core-cycle `now` and returns its total latency in cycles, including
// any time queued behind the bank.
func (m *Memory) Access(addr uint64, now float64) uint64 {
	m.stats.Accesses++
	rowID := int64(addr / uint64(m.cfg.RowBytes))
	bank := int(uint64(rowID) % uint64(m.cfg.Banks))
	row := rowID / int64(m.cfg.Banks)

	lat := m.cfg.BaseCycles
	if m.openRow[bank] == row {
		m.stats.RowHits++
		lat += m.cfg.RowHitCycles
	} else {
		m.stats.RowMisses++
		lat += m.cfg.RowMissCycles
		m.openRow[bank] = row
	}

	start := now
	if m.busyUntil[bank] > start {
		queued := m.busyUntil[bank] - start
		m.stats.QueuedCycles += uint64(queued)
		lat += uint64(queued)
		start = m.busyUntil[bank]
	}
	m.busyUntil[bank] = start + float64(m.cfg.ServiceCycles)
	return lat
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (m *Memory) RowHitRate() float64 {
	if m.stats.Accesses == 0 {
		return 0
	}
	return float64(m.stats.RowHits) / float64(m.stats.Accesses)
}
