package profiling

import (
	"testing"

	"repro/internal/replacement"
	"repro/internal/xrand"
)

func benchObserve(b *testing.B, kind replacement.Kind, sample int) {
	b.Helper()
	cfg := Config{
		L2Sets: 1024, Ways: 16, LineBytes: 128, SampleRate: sample,
		Kind: kind, NRUScale: 0.75,
	}
	m := NewMonitor(cfg)
	rng := xrand.New(3)
	addrs := make([]uint64, 1<<14)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(60000)) * 128
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(addrs[i&(1<<14-1)])
	}
}

func BenchmarkObserveLRUFull(b *testing.B)    { benchObserve(b, replacement.LRU, 1) }
func BenchmarkObserveLRUSampled(b *testing.B) { benchObserve(b, replacement.LRU, 32) }
func BenchmarkObserveNRUSampled(b *testing.B) { benchObserve(b, replacement.NRU, 32) }
func BenchmarkObserveBTSampled(b *testing.B)  { benchObserve(b, replacement.BT, 32) }

func BenchmarkSDHMissCurve(b *testing.B) {
	s := NewSDH(16)
	for d := 1; d <= 16; d++ {
		for i := 0; i < d*3; i++ {
			s.RecordHit(d)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := s.MissCurve(); len(c) != 17 {
			b.Fatal("bad curve")
		}
	}
}
