package profiling

import (
	"testing"
	"testing/quick"
)

func TestSDHPaperFigure2(t *testing.T) {
	// Figure 2(b)/(c): a 4-way SDH with r1=1 after the second access to D.
	// With 2 ways owned the thread suffers r3+r4+r5 misses.
	s := NewSDH(4)
	s.RecordHit(1) // the D re-access at distance 1
	s.RecordHit(3)
	s.RecordHit(4)
	s.RecordMiss()
	if s.Register(1) != 1 {
		t.Fatalf("r1 = %d, want 1", s.Register(1))
	}
	// misses(2) = r3 + r4 + r5 = 1 + 1 + 1.
	if got := s.Misses(2); got != 3 {
		t.Fatalf("Misses(2) = %d, want 3", got)
	}
	// misses(4) = r5 only.
	if got := s.Misses(4); got != 1 {
		t.Fatalf("Misses(4) = %d, want 1", got)
	}
	// misses(0) = everything.
	if got := s.Misses(0); got != 4 {
		t.Fatalf("Misses(0) = %d, want 4", got)
	}
}

func TestSDHClamping(t *testing.T) {
	s := NewSDH(4)
	s.RecordHit(0)  // clamps to 1
	s.RecordHit(-3) // clamps to 1
	s.RecordHit(9)  // clamps to 4
	if s.Register(1) != 2 || s.Register(4) != 1 {
		t.Fatalf("registers: r1=%d r4=%d", s.Register(1), s.Register(4))
	}
}

func TestSDHMissCurveMonotone(t *testing.T) {
	// Property: the miss curve is non-increasing in assigned ways, for
	// any recorded mixture.
	f := func(hits []uint8, misses uint8) bool {
		s := NewSDH(8)
		for _, h := range hits {
			s.RecordHit(int(h)%8 + 1)
		}
		for i := 0; i < int(misses); i++ {
			s.RecordMiss()
		}
		curve := s.MissCurve()
		for w := 1; w < len(curve); w++ {
			if curve[w] > curve[w-1] {
				return false
			}
		}
		return curve[0] == uint64(len(hits))+uint64(misses)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSDHHalve(t *testing.T) {
	s := NewSDH(2)
	for i := 0; i < 5; i++ {
		s.RecordHit(1)
	}
	s.RecordMiss()
	s.Halve()
	if s.Register(1) != 2 || s.Register(3) != 0 {
		t.Fatalf("after halve: r1=%d r3=%d", s.Register(1), s.Register(3))
	}
}

func TestSDHCloneIndependent(t *testing.T) {
	s := NewSDH(2)
	s.RecordHit(1)
	c := s.Clone()
	c.RecordMiss()
	if s.Misses(2) != 0 {
		t.Fatal("clone mutation leaked")
	}
	if c.Misses(2) != 1 {
		t.Fatal("clone content wrong")
	}
}

func TestSDHResetAndTotal(t *testing.T) {
	s := NewSDH(4)
	s.RecordHit(2)
	s.RecordMiss()
	if s.Total() != 2 {
		t.Fatalf("Total = %d", s.Total())
	}
	s.Reset()
	if s.Total() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSDHMissesClampsArgs(t *testing.T) {
	s := NewSDH(4)
	s.RecordMiss()
	if s.Misses(-1) != 1 || s.Misses(100) != 1 {
		t.Fatal("Misses should clamp its argument")
	}
}
