package profiling

import (
	"fmt"
	"math"

	"repro/internal/replacement"
)

// Config describes one per-thread profiling monitor. The geometry mirrors
// the L2 it profiles; SampleRate applies the paper's set sampling (an L2
// set s is profiled iff s % SampleRate == 0).
type Config struct {
	L2Sets     int              // number of sets in the profiled L2
	Ways       int              // L2/ATD associativity
	LineBytes  int              // line size (for address decomposition)
	SampleRate int              // 1-in-N set sampling; 1 = full ATD; paper uses 32
	Kind       replacement.Kind // LRU, NRU or BT profiling logic
	NRUScale   float64          // S for the NRU estimator (paper: 1.0/0.75/0.5)
	// CountColdHits is an ablation beyond the paper: record NRU hits on
	// used==0 lines at the maximum distance A instead of dropping them.
	CountColdHits bool
	Seed          uint64
}

// Validate checks the monitor configuration.
func (c Config) Validate() error {
	if c.L2Sets <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("profiling: geometry must be positive")
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("profiling: line size %d not a power of two", c.LineBytes)
	}
	if c.SampleRate <= 0 {
		return fmt.Errorf("profiling: sample rate must be positive")
	}
	if c.Kind == replacement.Random {
		return fmt.Errorf("profiling: no profiling logic exists for Random replacement")
	}
	if c.Kind == replacement.NRU && (c.NRUScale <= 0 || c.NRUScale > 1) {
		return fmt.Errorf("profiling: NRU scale %v out of (0,1]", c.NRUScale)
	}
	return nil
}

// sampledSets returns how many L2 sets the ATD actually models.
func (c Config) sampledSets() int {
	return (c.L2Sets + c.SampleRate - 1) / c.SampleRate
}

// StorageBits returns the ATD storage in bits for a given tag width:
// per line a tag, a valid bit and the policy's per-line replacement bits
// (log2(A) for LRU, 1 used bit for NRU), plus per-set bits (A−1 tree bits
// for BT). For the paper's setup — 2 MB 16-way L2, 128 B lines, 47 tag
// bits, 1/32 sampling, LRU ATD — this reproduces the quoted 3.25 KB per
// core.
func (c Config) StorageBits(tagBits int) int {
	perLine := tagBits + 1 // tag + valid
	perSet := 0
	switch c.Kind {
	case replacement.LRU:
		perLine += log2(c.Ways)
	case replacement.NRU:
		perLine++ // used bit
	case replacement.BT:
		perSet = c.Ways - 1
	}
	return c.sampledSets() * (c.Ways*perLine + perSet)
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Monitor is one thread's profiling unit: a sampled ATD plus its SDH. It
// observes the thread's L2 access stream (addresses only — the ATD is a
// tag directory) and maintains the (e)SDH the partitioner reads.
type Monitor struct {
	cfg  Config
	sdh  *SDH
	tags []uint64
	val  []bool

	// Exactly one of the following is non-nil, matching cfg.Kind.
	lru *replacement.LRUPolicy
	nru *replacement.NRUPolicy
	bt  *replacement.BTPolicy

	observed uint64 // sampled accesses seen since construction
}

// NewMonitor builds a monitor. It panics on invalid configuration
// (monitors are constructed from validated experiment configs).
func NewMonitor(cfg Config) *Monitor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.sampledSets() * cfg.Ways
	m := &Monitor{
		cfg:  cfg,
		sdh:  NewSDH(cfg.Ways),
		tags: make([]uint64, n),
		val:  make([]bool, n),
	}
	switch cfg.Kind {
	case replacement.LRU:
		m.lru = replacement.NewLRUPolicy(cfg.sampledSets(), cfg.Ways)
	case replacement.NRU:
		m.nru = replacement.NewNRUPolicy(cfg.sampledSets(), cfg.Ways, 1)
	case replacement.BT:
		m.bt = replacement.NewBTPolicy(cfg.sampledSets(), cfg.Ways)
	}
	return m
}

// SDH returns the live (e)SDH.
func (m *Monitor) SDH() *SDH { return m.sdh }

// Observed returns the number of sampled accesses processed.
func (m *Monitor) Observed() uint64 { return m.observed }

// Halve ages the SDH registers (called at interval boundaries).
func (m *Monitor) Halve() { m.sdh.Halve() }

// Observe processes one L2 access (byte address) by the owning thread.
// Non-sampled sets are ignored, mirroring the hardware where only sampled
// sets exist in the ATD.
func (m *Monitor) Observe(addr uint64) {
	line := addr / uint64(m.cfg.LineBytes)
	l2set := int(line % uint64(m.cfg.L2Sets))
	if l2set%m.cfg.SampleRate != 0 {
		return
	}
	set := l2set / m.cfg.SampleRate
	tag := line / uint64(m.cfg.L2Sets)
	m.observed++

	base := set * m.cfg.Ways
	way := -1
	for w := 0; w < m.cfg.Ways; w++ {
		if m.val[base+w] && m.tags[base+w] == tag {
			way = w
			break
		}
	}

	if way >= 0 {
		m.recordHit(set, way)
		m.touch(set, way)
		return
	}

	// ATD miss: the thread would miss even with the full cache.
	m.sdh.RecordMiss()
	for w := 0; w < m.cfg.Ways; w++ {
		if !m.val[base+w] {
			way = w
			break
		}
	}
	if way < 0 {
		way = m.victim(set)
	}
	m.tags[base+way] = tag
	m.val[base+way] = true
	m.touch(set, way)
}

// recordHit applies the policy-specific distance estimation for a hit on
// (set, way), before the recency state is updated.
func (m *Monitor) recordHit(set, way int) {
	switch {
	case m.lru != nil:
		m.sdh.RecordHit(m.lru.Dist(set, way))
	case m.nru != nil:
		u := m.nru.UsedCount(set)
		if m.nru.Used(set, way) {
			// Distance in [1, U]; assume ceil(S × U).
			est := int(math.Ceil(m.cfg.NRUScale * float64(u)))
			if est < 1 {
				est = 1
			}
			m.sdh.RecordHit(est)
		} else if m.cfg.CountColdHits {
			// Distance in [U+1, A]; the paper assumes A and skips the
			// update. This ablation records it.
			m.sdh.RecordHit(m.cfg.Ways)
		}
	case m.bt != nil:
		m.sdh.RecordHit(m.bt.EstStackPos(set, way))
	}
}

func (m *Monitor) touch(set, way int) {
	switch {
	case m.lru != nil:
		m.lru.Touch(set, way, 0)
	case m.nru != nil:
		m.nru.Touch(set, way, 0)
	case m.bt != nil:
		m.bt.Touch(set, way, 0)
	}
}

func (m *Monitor) victim(set int) int {
	full := replacement.Full(m.cfg.Ways)
	switch {
	case m.lru != nil:
		return m.lru.Victim(set, 0, full)
	case m.nru != nil:
		return m.nru.Victim(set, 0, full)
	default:
		return m.bt.Victim(set, 0, full)
	}
}
