package profiling

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/replacement"
	"repro/internal/xrand"
)

func monCfg(kind replacement.Kind, sets, ways, sample int) Config {
	return Config{
		L2Sets:     sets,
		Ways:       ways,
		LineBytes:  64,
		SampleRate: sample,
		Kind:       kind,
		NRUScale:   1.0,
	}
}

func TestConfigValidate(t *testing.T) {
	good := monCfg(replacement.LRU, 64, 8, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := good
	bad.Kind = replacement.Random
	if bad.Validate() == nil {
		t.Error("Random profiling accepted")
	}
	bad = good
	bad.Kind = replacement.NRU
	bad.NRUScale = 0
	if bad.Validate() == nil {
		t.Error("zero NRU scale accepted")
	}
	bad = good
	bad.SampleRate = 0
	if bad.Validate() == nil {
		t.Error("zero sample rate accepted")
	}
	bad = good
	bad.LineBytes = 100
	if bad.Validate() == nil {
		t.Error("non-power-of-two line accepted")
	}
}

func TestStorageBitsPaperValue(t *testing.T) {
	// Paper §III: 2MB 16-way L2 with 128B lines has 1024 sets; sampling
	// 1/32 leaves 32 ATD sets; with 47 tag bits (+valid +4 LRU bits) the
	// ATD is 3.25 KB per core.
	cfg := Config{L2Sets: 1024, Ways: 16, LineBytes: 128, SampleRate: 32,
		Kind: replacement.LRU}
	bits := cfg.StorageBits(47)
	if kb := float64(bits) / 8 / 1024; kb != 3.25 {
		t.Fatalf("LRU ATD storage = %v KB, want 3.25", kb)
	}
}

// addrForSet builds an address landing in the given L2 set with the given
// per-set sequence number (distinct tags).
func addrForSet(set, seq, sets, line int) uint64 {
	return uint64(seq)*uint64(sets)*uint64(line) + uint64(set)*uint64(line)
}

func TestLRUMonitorExactDistances(t *testing.T) {
	// Single-set ATD: fill A,B,C,D then re-access in reverse fill order.
	m := NewMonitor(monCfg(replacement.LRU, 1, 4, 1))
	addrs := make([]uint64, 5)
	for i := range addrs {
		addrs[i] = addrForSet(0, i, 1, 64)
	}
	for i := 0; i < 4; i++ {
		m.Observe(addrs[i]) // 4 misses
	}
	if m.SDH().Register(5) != 4 {
		t.Fatalf("miss register = %d, want 4", m.SDH().Register(5))
	}
	// D is MRU: re-access hits at distance 1.
	m.Observe(addrs[3])
	if m.SDH().Register(1) != 1 {
		t.Fatalf("r1 = %d, want 1", m.SDH().Register(1))
	}
	// A is now the LRU line: distance 4.
	m.Observe(addrs[0])
	if m.SDH().Register(4) != 1 {
		t.Fatalf("r4 = %d, want 1", m.SDH().Register(4))
	}
}

func TestLRUMonitorPredictsRealMissCounts(t *testing.T) {
	// The stack property in action: the SDH's Misses(w) must match the
	// misses measured by an actual w-way LRU cache with the same set
	// count, for every w. This is the foundation the whole CPA rests on.
	const sets = 16
	const ways = 8
	m := NewMonitor(monCfg(replacement.LRU, sets, ways, 1))
	rng := xrand.New(31)
	addrs := make([]uint64, 6000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(sets*ways*3)) * 64
	}
	for _, a := range addrs {
		m.Observe(a)
	}
	for w := 1; w <= ways; w++ {
		c := cache.New(cache.Config{
			Name: "ref", SizeBytes: sets * w * 64, LineBytes: 64, Ways: w,
			Policy: replacement.LRU, Cores: 1,
		})
		for _, a := range addrs {
			c.Access(0, a)
		}
		got := m.SDH().Misses(w)
		want := c.Stats().TotalMisses()
		if got != want {
			t.Errorf("w=%d: SDH predicts %d misses, real cache had %d", w, got, want)
		}
	}
}

func TestNRUMonitorFigure3Scenario(t *testing.T) {
	// Build the Figure 3 state: fill A,B,C,D (D's fill triggers the
	// used-bit reset, leaving only D set). Then access C (used==0: no
	// SDH update) and D (used==1, U=2: record distance ceil(1.0*2)=2).
	m := NewMonitor(monCfg(replacement.NRU, 1, 4, 1))
	addrs := make([]uint64, 4)
	for i := range addrs {
		addrs[i] = addrForSet(0, i, 1, 64)
	}
	for _, a := range addrs {
		m.Observe(a)
	}
	if m.SDH().Register(5) != 4 {
		t.Fatalf("miss register = %d, want 4", m.SDH().Register(5))
	}
	m.Observe(addrs[2]) // C: used bit 0 -> no update
	total := m.SDH().Total()
	if total != 4 {
		t.Fatalf("used==0 hit updated the SDH (total %d, want 4)", total)
	}
	m.Observe(addrs[3]) // D: used bit 1, U=2 -> r2++
	if m.SDH().Register(2) != 1 {
		t.Fatalf("r2 = %d, want 1", m.SDH().Register(2))
	}
}

func TestNRUMonitorScalingFactor(t *testing.T) {
	// Same scenario as above but S=0.5: distance ceil(0.5*2)=1 -> r1.
	cfg := monCfg(replacement.NRU, 1, 4, 1)
	cfg.NRUScale = 0.5
	m := NewMonitor(cfg)
	addrs := make([]uint64, 4)
	for i := range addrs {
		addrs[i] = addrForSet(0, i, 1, 64)
	}
	for _, a := range addrs {
		m.Observe(a)
	}
	m.Observe(addrs[2]) // no update (used==0)
	m.Observe(addrs[3]) // U=2, ceil(0.5*2)=1
	if m.SDH().Register(1) != 1 {
		t.Fatalf("r1 = %d, want 1 with S=0.5", m.SDH().Register(1))
	}
}

func TestNRUMonitorCeilRounding(t *testing.T) {
	// Paper: S=0.5, U=7 -> ceil(3.5) = 4. Construct U=7 in an 8-way set.
	cfg := monCfg(replacement.NRU, 1, 8, 1)
	cfg.NRUScale = 0.5
	m := NewMonitor(cfg)
	addrs := make([]uint64, 8)
	for i := range addrs {
		addrs[i] = addrForSet(0, i, 1, 64)
	}
	// Fill all 8: the last fill resets, leaving only line 7 used.
	for _, a := range addrs {
		m.Observe(a)
	}
	// Touch lines 0..5 (used==0 hits, no update), raising U to 7.
	for i := 0; i <= 5; i++ {
		m.Observe(addrs[i])
	}
	base := m.SDH().Register(4)
	// Now access line 7 (used==1). U=7 -> ceil(0.5*7)=4.
	m.Observe(addrs[7])
	if m.SDH().Register(4) != base+1 {
		t.Fatalf("r4 = %d, want %d (ceil rounding)", m.SDH().Register(4), base+1)
	}
}

func TestNRUCountColdHitsAblation(t *testing.T) {
	cfg := monCfg(replacement.NRU, 1, 4, 1)
	cfg.CountColdHits = true
	m := NewMonitor(cfg)
	addrs := make([]uint64, 4)
	for i := range addrs {
		addrs[i] = addrForSet(0, i, 1, 64)
	}
	for _, a := range addrs {
		m.Observe(a)
	}
	m.Observe(addrs[2]) // used==0 hit -> recorded at distance A=4
	if m.SDH().Register(4) != 1 {
		t.Fatalf("cold hit not recorded at r4: %d", m.SDH().Register(4))
	}
}

func TestBTMonitorEstimates(t *testing.T) {
	m := NewMonitor(monCfg(replacement.BT, 1, 4, 1))
	addrs := make([]uint64, 4)
	for i := range addrs {
		addrs[i] = addrForSet(0, i, 1, 64)
	}
	for _, a := range addrs {
		m.Observe(a)
	}
	// Re-access the most recent fill: estimate must be 1 (MRU).
	m.Observe(addrs[3])
	if m.SDH().Register(1) != 1 {
		t.Fatalf("r1 = %d, want 1", m.SDH().Register(1))
	}
}

func TestBTMonitorEstimateBounds(t *testing.T) {
	m := NewMonitor(monCfg(replacement.BT, 8, 16, 1))
	rng := xrand.New(3)
	for i := 0; i < 20000; i++ {
		m.Observe(uint64(rng.Intn(8*40)) * 64)
	}
	var hitTotal uint64
	for d := 1; d <= 16; d++ {
		hitTotal += m.SDH().Register(d)
	}
	if hitTotal == 0 {
		t.Fatal("no hits recorded")
	}
	if m.SDH().Total() != m.Observed() {
		t.Fatalf("BT SDH total %d != observed %d (BT records every access)",
			m.SDH().Total(), m.Observed())
	}
}

func TestSetSampling(t *testing.T) {
	// With 1/4 sampling only sets 0, 4, 8, ... are observed.
	const sets = 16
	m := NewMonitor(monCfg(replacement.LRU, sets, 4, 4))
	for s := 0; s < sets; s++ {
		m.Observe(addrForSet(s, 0, sets, 64))
	}
	if m.Observed() != 4 {
		t.Fatalf("Observed = %d, want 4 (sets 0,4,8,12)", m.Observed())
	}
}

func TestSampledSDHApproximatesFullSDH(t *testing.T) {
	// The 1/4-sampled monitor's per-access miss-rate curve should be
	// close to the full monitor's (the paper's justification for set
	// sampling). We allow generous tolerance: sampling error on a random
	// stream.
	const sets = 64
	const ways = 8
	full := NewMonitor(monCfg(replacement.LRU, sets, ways, 1))
	sampled := NewMonitor(monCfg(replacement.LRU, sets, ways, 4))
	rng := xrand.New(13)
	for i := 0; i < 120000; i++ {
		a := uint64(rng.Intn(sets*ways*2)) * 64
		full.Observe(a)
		sampled.Observe(a)
	}
	for w := 1; w <= ways; w++ {
		fr := float64(full.SDH().Misses(w)) / float64(full.Observed())
		sr := float64(sampled.SDH().Misses(w)) / float64(sampled.Observed())
		if diff := fr - sr; diff > 0.05 || diff < -0.05 {
			t.Errorf("w=%d: full miss ratio %.3f vs sampled %.3f", w, fr, sr)
		}
	}
}

func TestMonitorHalve(t *testing.T) {
	m := NewMonitor(monCfg(replacement.LRU, 1, 4, 1))
	for i := 0; i < 4; i++ {
		m.Observe(addrForSet(0, i, 1, 64))
	}
	m.Halve()
	if m.SDH().Register(5) != 2 {
		t.Fatalf("miss register after halve = %d, want 2", m.SDH().Register(5))
	}
}

func TestNRUOverestimatesVsScaledDown(t *testing.T) {
	// Structural property from §V-B: S=1.0 estimates distances >= S=0.5
	// estimates for the same stream, so its predicted miss counts at any
	// allocation are >= (more pessimistic).
	run := func(scale float64) *SDH {
		cfg := monCfg(replacement.NRU, 16, 8, 1)
		cfg.NRUScale = scale
		m := NewMonitor(cfg)
		rng := xrand.New(47)
		for i := 0; i < 50000; i++ {
			m.Observe(uint64(rng.Intn(16*16)) * 64)
		}
		return m.SDH()
	}
	hi := run(1.0)
	lo := run(0.5)
	for w := 1; w <= 8; w++ {
		if hi.Misses(w) < lo.Misses(w) {
			t.Errorf("w=%d: S=1.0 predicts fewer misses (%d) than S=0.5 (%d)",
				w, hi.Misses(w), lo.Misses(w))
		}
	}
}
