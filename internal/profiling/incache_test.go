package profiling

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/replacement"
	"repro/internal/xrand"
)

func TestInCacheProfilerRecordsHitsAndMisses(t *testing.T) {
	p := NewInCacheProfiler(2, 4)
	p.OnCacheAccess(0, 0, true, 1)
	p.OnCacheAccess(0, 0, true, 4)
	p.OnCacheAccess(1, 0, false, 5)
	if p.SDH(0).Register(1) != 1 || p.SDH(0).Register(4) != 1 {
		t.Fatalf("hit registers wrong: %v %v", p.SDH(0).Register(1), p.SDH(0).Register(4))
	}
	if p.SDH(1).Register(5) != 1 {
		t.Fatal("miss register not incremented")
	}
	if p.Observed() != 3 {
		t.Fatalf("Observed = %d", p.Observed())
	}
}

func TestInCacheProfilerIgnoresBadInputs(t *testing.T) {
	p := NewInCacheProfiler(1, 4)
	p.OnCacheAccess(-1, 0, true, 1) // out-of-range core
	p.OnCacheAccess(5, 0, true, 1)
	p.OnCacheAccess(0, 0, true, 0) // non-LRU dist sentinel
	if p.Observed() != 0 {
		t.Fatalf("bad inputs were recorded: %d", p.Observed())
	}
}

func TestInCacheProfilerHalve(t *testing.T) {
	p := NewInCacheProfiler(1, 2)
	for i := 0; i < 4; i++ {
		p.OnCacheAccess(0, 0, false, 3)
	}
	p.Halve()
	if p.SDH(0).Register(3) != 2 {
		t.Fatalf("halve failed: %d", p.SDH(0).Register(3))
	}
}

// TestInCacheVsATDOnSingleThread verifies the key accuracy property: for
// a SINGLE thread (no pollution) the in-cache profile and the full ATD
// profile measure the same stream the same way.
func TestInCacheVsATDOnSingleThread(t *testing.T) {
	const sets, ways = 32, 8
	l2 := cache.New(cache.Config{Name: "L2", SizeBytes: sets * ways * 64,
		LineBytes: 64, Ways: ways, Policy: replacement.LRU, Cores: 1})
	inCache := NewInCacheProfiler(1, ways)
	l2.SetObserver(inCache)
	atd := NewMonitor(Config{L2Sets: sets, Ways: ways, LineBytes: 64,
		SampleRate: 1, Kind: replacement.LRU})

	rng := xrand.New(5)
	for i := 0; i < 60000; i++ {
		addr := uint64(rng.Intn(sets*ways*2)) * 64
		atd.Observe(addr)
		l2.Access(0, addr)
	}
	for w := 1; w <= ways; w++ {
		a := atd.SDH().Misses(w)
		c := inCache.SDH(0).Misses(w)
		if a != c {
			t.Errorf("w=%d: ATD predicts %d misses, in-cache %d (must match when unshared)",
				w, a, c)
		}
	}
}

// TestInCachePollutedBySharer demonstrates the known weakness: with a
// co-runner thrashing the shared cache, the in-cache profile of the
// victim thread inflates its predicted misses relative to an ATD, which
// isolates it.
func TestInCachePollutedBySharer(t *testing.T) {
	const sets, ways = 32, 8
	l2 := cache.New(cache.Config{Name: "L2", SizeBytes: sets * ways * 64,
		LineBytes: 64, Ways: ways, Policy: replacement.LRU, Cores: 2})
	inCache := NewInCacheProfiler(2, ways)
	l2.SetObserver(inCache)
	atd := NewMonitor(Config{L2Sets: sets, Ways: ways, LineBytes: 64,
		SampleRate: 1, Kind: replacement.LRU})

	rng := xrand.New(7)
	stream := uint64(1 << 40)
	for i := 0; i < 60000; i++ {
		// Thread 0: modest working set (2 lines/set) it keeps re-using.
		addr := uint64(rng.Intn(sets*2)) * 64
		atd.Observe(addr)
		l2.Access(0, addr)
		// Thread 1: streaming polluter.
		l2.Access(1, stream)
		stream += 64
	}
	// At the working set's natural size the ATD sees almost no misses...
	atdRatio := float64(atd.SDH().Misses(4)) / float64(atd.Observed())
	// ...while the in-cache profile, squeezed by the streamer, reports
	// losses.
	icTotal := inCache.SDH(0).Total()
	icRatio := float64(inCache.SDH(0).Misses(4)) / float64(icTotal)
	if atdRatio > 0.05 {
		t.Fatalf("ATD should isolate the thread: miss ratio %.3f", atdRatio)
	}
	if icRatio <= atdRatio {
		t.Fatalf("in-cache profile (%.3f) should be polluted above the ATD's (%.3f)",
			icRatio, atdRatio)
	}
}

func TestRequiresLRU(t *testing.T) {
	if RequiresLRU(replacement.LRU) {
		t.Error("LRU flagged as unsupported")
	}
	if !RequiresLRU(replacement.NRU) || !RequiresLRU(replacement.BT) {
		t.Error("non-LRU not flagged")
	}
}
