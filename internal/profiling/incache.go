package profiling

import "repro/internal/replacement"

// InCacheProfiler implements the ATD-free profiling alternative the paper
// cites in §VI (Suh et al.'s marginal-gain way counters): instead of a
// private auxiliary tag directory per thread, the shared cache's own LRU
// stack positions are sampled on every hit and charged to the accessing
// thread's SDH.
//
// The hardware cost is a set of counters (no tags at all), but the
// profile is polluted: the observed stack distances reflect the thread's
// standing in the *shared* cache — squeezed by its co-runners — not its
// isolated behavior. The CPA still works when miss curves are clearly
// separated, which is why the technique predates ATDs; the ablation
// benchmark quantifies the gap.
//
// InCacheProfiler implements cache.Observer (structurally — the cache
// package is not imported to avoid a dependency cycle).
type InCacheProfiler struct {
	sdhs []*SDH
	ways int
}

// NewInCacheProfiler builds per-thread SDHs fed from shared-cache hits.
// The cache must run true LRU (stack positions are undefined otherwise);
// callers enforce that.
func NewInCacheProfiler(cores, ways int) *InCacheProfiler {
	p := &InCacheProfiler{ways: ways}
	for i := 0; i < cores; i++ {
		p.sdhs = append(p.sdhs, NewSDH(ways))
	}
	return p
}

// OnCacheAccess records one shared-cache access outcome (cache.Observer).
func (p *InCacheProfiler) OnCacheAccess(core, set int, hit bool, lruDist int) {
	if core < 0 || core >= len(p.sdhs) {
		return
	}
	if !hit {
		p.sdhs[core].RecordMiss()
		return
	}
	if lruDist >= 1 {
		p.sdhs[core].RecordHit(lruDist)
	}
}

// SDH returns thread `core`'s histogram.
func (p *InCacheProfiler) SDH(core int) *SDH { return p.sdhs[core] }

// Cores returns the number of threads profiled.
func (p *InCacheProfiler) Cores() int { return len(p.sdhs) }

// Halve ages every thread's registers (interval boundary).
func (p *InCacheProfiler) Halve() {
	for _, s := range p.sdhs {
		s.Halve()
	}
}

// Observed returns the total accesses recorded across threads.
func (p *InCacheProfiler) Observed() uint64 {
	var t uint64
	for _, s := range p.sdhs {
		t += s.Total()
	}
	return t
}

// RequiresLRU reports the policy constraint for in-cache profiling.
func RequiresLRU(kind replacement.Kind) bool { return kind != replacement.LRU }
