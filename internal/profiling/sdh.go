// Package profiling implements the paper's profiling logic: per-thread
// Auxiliary Tag Directories (ATDs) feeding Stack Distance Histograms
// (SDHs). For true LRU the ATD reports exact stack distances; for the
// pseudo-LRU policies it builds the paper's *estimated* SDH (eSDH):
//
//   - NRU (§III-A): on a hit to a line whose used bit is 1, the distance
//     is estimated as ceil(S × U) where U is the number of used bits in
//     the set (including the accessed line) and S is a scaling factor
//     (1.0, 0.75 or 0.5 in the paper). Hits on lines with used bit 0
//     (distance somewhere in [U+1, A]) perform no SDH update, per the
//     paper; the CountColdHits ablation records them at distance A.
//   - BT (§III-B): the estimate is A − (IDbits XOR pathBits) computed by
//     the replacement package's BTPolicy.EstStackPos.
//
// The ATDs apply set sampling (paper: 1 of every 32 sets) and the SDH
// registers are halved at every repartition interval to age the profile.
package profiling

import "repro/internal/stats"

// SDH is a stack distance histogram with A+1 registers: registers 1..A
// count hits at each LRU stack distance and register A+1 counts ATD
// misses (paper Figure 2(b)).
type SDH struct {
	ways int
	h    *stats.Histogram // bin i (0-based) = distance i+1; bin ways = miss register
}

// NewSDH returns an SDH for an A-way ATD.
func NewSDH(ways int) *SDH {
	if ways <= 0 {
		panic("profiling: SDH needs positive ways")
	}
	return &SDH{ways: ways, h: stats.NewHistogram(ways + 1)}
}

// Ways returns the associativity the SDH was built for.
func (s *SDH) Ways() int { return s.ways }

// RecordHit registers a hit at stack distance dist (1-based, clamped to
// [1, ways]).
func (s *SDH) RecordHit(dist int) {
	if dist < 1 {
		dist = 1
	}
	if dist > s.ways {
		dist = s.ways
	}
	s.h.Observe(dist - 1)
}

// RecordMiss increments the miss register (distance A+1).
func (s *SDH) RecordMiss() { s.h.Observe(s.ways) }

// Register returns r_d for d in [1, ways+1] (paper numbering).
func (s *SDH) Register(d int) uint64 { return s.h.Bin(d - 1) }

// Total returns the number of recorded accesses.
func (s *SDH) Total() uint64 { return s.h.Total() }

// Misses predicts the number of misses the thread would suffer if
// assigned w ways: Σ_{d=w+1}^{A+1} r_d (paper Figure 2(c)). w is clamped
// to [0, ways]; Misses(0) is the total access count.
func (s *SDH) Misses(w int) uint64 {
	if w < 0 {
		w = 0
	}
	if w > s.ways {
		w = s.ways
	}
	return s.h.TailSum(w)
}

// MissCurve returns the predicted miss counts for every allocation
// 0..ways (index = number of assigned ways).
func (s *SDH) MissCurve() []uint64 {
	out := make([]uint64, s.ways+1)
	for w := 0; w <= s.ways; w++ {
		out[w] = s.Misses(w)
	}
	return out
}

// Halve divides every register by two — the paper's saturation guard
// applied at each interval boundary.
func (s *SDH) Halve() { s.h.Halve() }

// Reset zeroes every register.
func (s *SDH) Reset() { s.h.Reset() }

// Clone returns a deep copy (used by the partitioner to snapshot a
// consistent view).
func (s *SDH) Clone() *SDH {
	return &SDH{ways: s.ways, h: s.h.Clone()}
}
