package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"a", "1"},
		{"longer-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line %q", lines[0])
	}
	// The value column must start at the same offset in every row.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") {
		t.Errorf("misaligned row: %q", lines[2])
	}
	if !strings.HasPrefix(lines[3][idx:], "22") {
		t.Errorf("misaligned row: %q", lines[3])
	}
}

func TestTableSeparator(t *testing.T) {
	out := Table([]string{"h"}, [][]string{{"x"}})
	if !strings.Contains(out, "-") {
		t.Error("no separator line")
	}
}

func TestBarsScaling(t *testing.T) {
	out := Bars([]string{"lo", "mid", "hi"}, []float64{0, 0.5, 1}, 0, 1, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	count := func(s string) int { return strings.Count(s, "█") }
	if count(lines[0]) != 0 || count(lines[1]) != 5 || count(lines[2]) != 10 {
		t.Fatalf("bar lengths: %d %d %d", count(lines[0]), count(lines[1]), count(lines[2]))
	}
}

func TestBarsClamping(t *testing.T) {
	out := Bars([]string{"under", "over"}, []float64{-5, 99}, 0, 1, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[0], "█") != 0 {
		t.Error("below-range bar not clamped to zero")
	}
	if strings.Count(lines[1], "█") != 8 {
		t.Error("above-range bar not clamped to full")
	}
}

func TestBarsValuesPrinted(t *testing.T) {
	out := Bars([]string{"x"}, []float64{0.9573}, 0.9, 1.02, 10)
	if !strings.Contains(out, "0.9573") {
		t.Error("numeric value missing from bar line")
	}
}

func TestBarsDegenerateRange(t *testing.T) {
	// lo >= hi must not panic or divide by zero.
	out := Bars([]string{"x"}, []float64{0.5}, 1, 1, 10)
	if out == "" {
		t.Error("no output for degenerate range")
	}
}

func TestHeading(t *testing.T) {
	h := Heading("Title")
	if !strings.Contains(h, "Title") || !strings.Contains(h, "=====") {
		t.Errorf("heading = %q", h)
	}
}
