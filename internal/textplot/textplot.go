// Package textplot renders the small ASCII tables and bar charts the
// experiment harness prints for each reproduced figure.
package textplot

import (
	"fmt"
	"strings"
)

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

// Bars renders a horizontal bar chart. Values map onto [lo, hi]; bars are
// `width` characters at hi. A lo > 0 (e.g. 0.9 for the paper's relative
// plots) zooms into the interesting range, like the figures' y-axes.
func Bars(labels []string, values []float64, lo, hi float64, width int) string {
	if hi <= lo {
		hi = lo + 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	for i, v := range values {
		frac := (v - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		n := int(frac*float64(width) + 0.5)
		fmt.Fprintf(&sb, "%-*s |%s%s %.4f\n", labelW, labels[i],
			strings.Repeat("█", n), strings.Repeat(" ", width-n), v)
	}
	return sb.String()
}

// Heading renders a section banner.
func Heading(title string) string {
	return "\n" + title + "\n" + strings.Repeat("=", len(title)) + "\n"
}
