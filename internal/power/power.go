// Package power implements the evaluation's power and energy model
// (paper §IV, §V-C): per-component static and dynamic power for the cores,
// the shared L2, main memory and the CPA's profiling logic, with a memory
// access costing 150× an L2 access (the paper's constant from Borkar).
// The paper reports relative power and relative energy (CPI × Power); this
// package produces absolute watts/joules from an event-energy model, and
// the experiment harness reports them relative to the C-L baseline —
// the structural conclusions (power tracks off-chip accesses; profiling is
// negligible) depend only on the ratios.
package power

import "repro/internal/stats"

// Params holds the model constants.
type Params struct {
	ClockGHz        float64 // core/L2 clock
	CoreStaticW     float64 // leakage per core
	CoreDynPerIPCW  float64 // dynamic watts per core per unit IPC
	L2StaticWPerMB  float64 // L2 leakage per MB
	L2AccessNJ      float64 // energy per L2 access
	MemAccessFactor float64 // memory access energy = factor × L2AccessNJ (paper: 150)
	ATDAccessNJ     float64 // energy per sampled ATD access
	LeakWPerKB      float64 // leakage per KB of extra replacement/profiling state
}

// DefaultParams returns the model constants used in EXPERIMENTS.md.
func DefaultParams() Params {
	return Params{
		ClockGHz:        2.0,
		CoreStaticW:     2.0,
		CoreDynPerIPCW:  4.0,
		L2StaticWPerMB:  0.5,
		L2AccessNJ:      1.0,
		MemAccessFactor: 150,
		ATDAccessNJ:     0.05,
		LeakWPerKB:      0.002,
	}
}

// Inputs summarizes one simulation run for the power model.
type Inputs struct {
	Cores       int
	SumIPC      float64 // throughput (drives core dynamic power)
	Cycles      float64 // run length in cycles
	Insts       uint64  // total committed instructions (for energy/inst)
	L2SizeMB    float64
	L2Accesses  uint64
	L2Misses    uint64 // demand fetches from memory
	MemWrites   uint64 // dirty-line writebacks reaching memory
	ATDObserves uint64
	// Extra storage (KB) powered on beyond a plain cache: replacement
	// metadata growth and profiling structures (from internal/complexity
	// and the ATD sizing).
	ExtraStateKB float64
}

// Breakdown is per-component average power in watts over the run.
type Breakdown struct {
	CoresW     float64
	L2W        float64
	MemoryW    float64
	ProfilingW float64
}

// Total returns the summed power.
func (b Breakdown) Total() float64 {
	return b.CoresW + b.L2W + b.MemoryW + b.ProfilingW
}

// Fractions returns each component as a fraction of the total.
func (b Breakdown) Fractions() (cores, l2, mem, prof float64) {
	t := b.Total()
	if t == 0 {
		return 0, 0, 0, 0
	}
	return b.CoresW / t, b.L2W / t, b.MemoryW / t, b.ProfilingW / t
}

// Compute evaluates the model.
func Compute(p Params, in Inputs) Breakdown {
	seconds := in.Cycles / (p.ClockGHz * 1e9)
	if seconds <= 0 {
		return Breakdown{}
	}
	nj := 1e-9
	var b Breakdown
	b.CoresW = float64(in.Cores)*p.CoreStaticW + p.CoreDynPerIPCW*in.SumIPC
	b.L2W = p.L2StaticWPerMB*in.L2SizeMB +
		float64(in.L2Accesses)*p.L2AccessNJ*nj/seconds
	b.MemoryW = float64(in.L2Misses+in.MemWrites) * p.L2AccessNJ * p.MemAccessFactor * nj / seconds
	b.ProfilingW = float64(in.ATDObserves)*p.ATDAccessNJ*nj/seconds +
		p.LeakWPerKB*in.ExtraStateKB
	return b
}

// Energy returns the run's energy in joules (power × time). For a fixed
// instruction count this is proportional to the paper's CPI × Power
// metric.
func Energy(p Params, in Inputs) float64 {
	seconds := in.Cycles / (p.ClockGHz * 1e9)
	return Compute(p, in).Total() * seconds
}

// EnergyPerInst returns nanojoules per committed instruction.
func EnergyPerInst(p Params, in Inputs) float64 {
	if in.Insts == 0 {
		return 0
	}
	return Energy(p, in) / float64(in.Insts) * 1e9
}

// RelativeSeries converts absolute totals to ratios against the first
// entry, the form the paper plots in Figure 9(a).
func RelativeSeries(vals []float64) []float64 {
	out := make([]float64, len(vals))
	if len(vals) == 0 || vals[0] == 0 {
		return out
	}
	for i, v := range vals {
		out[i] = v / vals[0]
	}
	return out
}

// MeanBreakdown averages component breakdowns (used to aggregate over
// workloads for Figure 9(b)).
func MeanBreakdown(bs []Breakdown) Breakdown {
	if len(bs) == 0 {
		return Breakdown{}
	}
	cores := make([]float64, len(bs))
	l2 := make([]float64, len(bs))
	mem := make([]float64, len(bs))
	prof := make([]float64, len(bs))
	for i, b := range bs {
		cores[i], l2[i], mem[i], prof[i] = b.CoresW, b.L2W, b.MemoryW, b.ProfilingW
	}
	return Breakdown{
		CoresW:     stats.Mean(cores),
		L2W:        stats.Mean(l2),
		MemoryW:    stats.Mean(mem),
		ProfilingW: stats.Mean(prof),
	}
}
