package power

import (
	"math"
	"testing"
)

func baseInputs() Inputs {
	return Inputs{
		Cores:        2,
		SumIPC:       2.0,
		Cycles:       1e9, // 0.5 s at 2 GHz
		Insts:        2e9,
		L2SizeMB:     2,
		L2Accesses:   50_000_000,
		L2Misses:     2_000_000,
		ATDObserves:  50_000_000 / 32,
		ExtraStateKB: 8.5,
	}
}

func TestComputeComponents(t *testing.T) {
	p := DefaultParams()
	in := baseInputs()
	b := Compute(p, in)
	seconds := 0.5
	// Cores: 2*2W static + 4W/IPC * 2 IPC = 12W.
	if math.Abs(b.CoresW-12) > 1e-9 {
		t.Errorf("cores = %v W, want 12", b.CoresW)
	}
	// L2: 1W static + 50e6 * 1nJ / 0.5s = 1 + 0.1 W.
	if math.Abs(b.L2W-1.1) > 1e-9 {
		t.Errorf("L2 = %v W, want 1.1", b.L2W)
	}
	// Memory: 2e6 * 150 nJ / 0.5 s = 0.6 W.
	wantMem := float64(in.L2Misses) * 150e-9 / seconds
	if math.Abs(b.MemoryW-wantMem) > 1e-9 {
		t.Errorf("memory = %v W, want %v", b.MemoryW, wantMem)
	}
	if b.Total() <= 0 {
		t.Error("total power non-positive")
	}
}

func TestMemoryAccessIs150xL2(t *testing.T) {
	p := DefaultParams()
	in := baseInputs()
	in.L2Accesses = 1_000_000
	in.L2Misses = 1_000_000
	b := Compute(p, in)
	l2Dyn := b.L2W - p.L2StaticWPerMB*in.L2SizeMB
	if math.Abs(b.MemoryW/l2Dyn-150) > 1e-6 {
		t.Fatalf("memory/L2 energy ratio = %v, want 150", b.MemoryW/l2Dyn)
	}
}

func TestProfilingPowerNegligible(t *testing.T) {
	// The paper's §V-C claim: profiling stays below 0.3% of total power.
	// With 1/32 sampling and the default constants this must hold for any
	// plausible access volume.
	p := DefaultParams()
	in := baseInputs()
	b := Compute(p, in)
	if frac := b.ProfilingW / b.Total(); frac > 0.003 {
		t.Fatalf("profiling fraction = %.5f, want < 0.003", frac)
	}
}

func TestMoreMissesMorePower(t *testing.T) {
	p := DefaultParams()
	lo := baseInputs()
	hi := baseInputs()
	hi.L2Misses *= 10
	if Compute(p, hi).Total() <= Compute(p, lo).Total() {
		t.Fatal("10x misses did not increase power")
	}
}

func TestEnergyTracksCyclesAndPower(t *testing.T) {
	p := DefaultParams()
	in := baseInputs()
	e1 := Energy(p, in)
	// Same events in twice the time: static power dominates longer run.
	slow := in
	slow.Cycles *= 2
	e2 := Energy(p, slow)
	if e2 <= e1 {
		t.Fatalf("slower run should consume more energy: %v vs %v", e1, e2)
	}
}

func TestEnergyPerInst(t *testing.T) {
	p := DefaultParams()
	in := baseInputs()
	epi := EnergyPerInst(p, in)
	if epi <= 0 {
		t.Fatal("energy per instruction non-positive")
	}
	none := in
	none.Insts = 0
	if EnergyPerInst(p, none) != 0 {
		t.Fatal("zero-inst energy per inst should be 0")
	}
}

func TestZeroCyclesSafe(t *testing.T) {
	in := baseInputs()
	in.Cycles = 0
	if b := Compute(DefaultParams(), in); b.Total() != 0 {
		t.Fatal("zero-cycle run should produce zero power")
	}
}

func TestFractionsSumToOne(t *testing.T) {
	b := Compute(DefaultParams(), baseInputs())
	c, l, m, pr := b.Fractions()
	if math.Abs(c+l+m+pr-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", c+l+m+pr)
	}
}

func TestRelativeSeries(t *testing.T) {
	rel := RelativeSeries([]float64{2, 3, 1})
	if rel[0] != 1 || rel[1] != 1.5 || rel[2] != 0.5 {
		t.Fatalf("relative = %v", rel)
	}
	if out := RelativeSeries(nil); len(out) != 0 {
		t.Fatal("nil input should give empty output")
	}
	zero := RelativeSeries([]float64{0, 5})
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("zero baseline should zero the series")
	}
}

func TestMeanBreakdown(t *testing.T) {
	m := MeanBreakdown([]Breakdown{
		{CoresW: 2, L2W: 1, MemoryW: 4, ProfilingW: 0.1},
		{CoresW: 4, L2W: 3, MemoryW: 0, ProfilingW: 0.3},
	})
	if m.CoresW != 3 || m.L2W != 2 || m.MemoryW != 2 || math.Abs(m.ProfilingW-0.2) > 1e-12 {
		t.Fatalf("mean breakdown = %+v", m)
	}
	if MeanBreakdown(nil).Total() != 0 {
		t.Fatal("empty mean should be zero")
	}
}
