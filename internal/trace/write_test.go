package trace

import (
	"math"
	"testing"
)

func TestWriteRatioObserved(t *testing.T) {
	p := simpleProfile()
	p.WriteRatio = 0.3
	g := NewGenerator(p, 0, 3, 64)
	var writes, mem int
	for i := 0; i < 100000; i++ {
		e := g.Next()
		if e.Kind != Mem {
			if e.Write {
				t.Fatal("branch event marked as write")
			}
			continue
		}
		mem++
		if e.Write {
			writes++
		}
	}
	got := float64(writes) / float64(mem)
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("write ratio %.3f, want ~0.30", got)
	}
}

func TestZeroWriteRatioMeansNoWrites(t *testing.T) {
	g := NewGenerator(simpleProfile(), 0, 5, 64)
	for i := 0; i < 20000; i++ {
		if e := g.Next(); e.Write {
			t.Fatal("write emitted with WriteRatio 0")
		}
	}
}

func TestWriteRatioValidation(t *testing.T) {
	p := simpleProfile()
	p.WriteRatio = 1.0
	if p.Validate() == nil {
		t.Fatal("WriteRatio 1.0 accepted")
	}
	p.WriteRatio = -0.1
	if p.Validate() == nil {
		t.Fatal("negative WriteRatio accepted")
	}
}

func TestCyclicHotSweepIsSequential(t *testing.T) {
	p := Profile{
		Name: "cyc", BaseIPC: 1, MemRatio: 0.5, BranchRatio: 0,
		BranchBias: 0.5, MLPOverlap: 0,
		Phases: []Phase{{Insts: 1 << 40, HotLines: 64, HotWeight: 1, HotCyclic: 1}},
	}
	g := NewGenerator(p, 0, 7, 64)
	var prev uint64
	first := true
	for i := 0; i < 300; i++ {
		e := g.Next()
		if e.Kind != Mem {
			continue
		}
		if !first {
			wantNext := prev + 64
			if prev == 63*64 { // wrap at HotLines
				wantNext = 0
			}
			if e.Addr != wantNext {
				t.Fatalf("cyclic sweep broke: %#x after %#x", e.Addr, prev)
			}
		}
		prev = e.Addr
		first = false
	}
}

func TestHotCyclicValidation(t *testing.T) {
	p := simpleProfile()
	p.Phases[0].HotCyclic = 1.5
	if p.Validate() == nil {
		t.Fatal("HotCyclic > 1 accepted")
	}
}
