package trace

import (
	"math"
	"testing"

	"repro/internal/profiling"
	"repro/internal/replacement"
)

func simpleProfile() Profile {
	return Profile{
		Name:        "toy",
		BaseIPC:     2.0,
		MemRatio:    0.3,
		BranchRatio: 0.1,
		BranchBias:  0.9,
		MLPOverlap:  0.4,
		Phases: []Phase{{
			Insts:        100000,
			HotLines:     64,
			HotWeight:    0.7,
			StreamLines:  1024,
			StreamWeight: 0.2,
			ColdWeight:   0.1,
		}},
	}
}

func TestProfileValidate(t *testing.T) {
	good := simpleProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("good profile rejected: %v", err)
	}
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.BaseIPC = 0 },
		func(p *Profile) { p.MemRatio = 0 },
		func(p *Profile) { p.MemRatio = 0.9; p.BranchRatio = 0.2 },
		func(p *Profile) { p.BranchBias = 0.3 },
		func(p *Profile) { p.MLPOverlap = 1.0 },
		func(p *Profile) { p.Phases = nil },
		func(p *Profile) { p.Phases[0].Insts = 0 },
		func(p *Profile) { p.Phases[0].HotWeight = 0; p.Phases[0].StreamWeight = 0; p.Phases[0].ColdWeight = 0 },
		func(p *Profile) { p.Phases[0].HotLines = 0 },
	}
	for i, mutate := range cases {
		p := simpleProfile()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(simpleProfile(), 0, 42, 64)
	b := NewGenerator(simpleProfile(), 0, 42, 64)
	for i := 0; i < 5000; i++ {
		ea, eb := a.Next(), b.Next()
		if ea != eb {
			t.Fatalf("streams diverged at event %d: %+v vs %+v", i, ea, eb)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := NewGenerator(simpleProfile(), 0, 1, 64)
	b := NewGenerator(simpleProfile(), 0, 2, 64)
	same := 0
	for i := 0; i < 200; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestEventRates(t *testing.T) {
	g := NewGenerator(simpleProfile(), 0, 7, 64)
	var mem, br, insts uint64
	for i := 0; i < 200000; i++ {
		e := g.Next()
		insts += uint64(e.Insts)
		if e.Kind == Mem {
			mem++
		} else {
			br++
		}
	}
	memRate := float64(mem) / float64(insts)
	brRate := float64(br) / float64(insts)
	if math.Abs(memRate-0.3) > 0.01 {
		t.Errorf("memory rate %.3f, want ~0.30", memRate)
	}
	if math.Abs(brRate-0.1) > 0.01 {
		t.Errorf("branch rate %.3f, want ~0.10", brRate)
	}
	if insts != g.Insts() {
		t.Errorf("Insts() = %d, events summed to %d", g.Insts(), insts)
	}
}

func TestThreadAddressSpacesDisjoint(t *testing.T) {
	g0 := NewGenerator(simpleProfile(), 0, 5, 64)
	g1 := NewGenerator(simpleProfile(), 1, 5, 64)
	seen0 := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		if e := g0.Next(); e.Kind == Mem {
			seen0[e.Addr] = true
		}
	}
	for i := 0; i < 5000; i++ {
		if e := g1.Next(); e.Kind == Mem && seen0[e.Addr] {
			t.Fatal("threads shared a data address")
		}
	}
}

func TestBranchStreamBias(t *testing.T) {
	// With bias 0.95, per-PC outcomes should be strongly skewed: overall
	// takenness can hover near 0.5 (half the PCs biased each way) but a
	// per-PC majority vote should be right ~95% of the time.
	p := simpleProfile()
	p.BranchBias = 0.95
	g := NewGenerator(p, 0, 11, 64)
	taken := map[uint64]int{}
	total := map[uint64]int{}
	for i := 0; i < 300000; i++ {
		e := g.Next()
		if e.Kind != Branch {
			continue
		}
		total[e.Addr]++
		if e.Taken {
			taken[e.Addr]++
		}
	}
	agree, n := 0, 0
	for pc, tot := range total {
		if tot < 50 {
			continue
		}
		k := taken[pc]
		maj := k
		if tot-k > k {
			maj = tot - k
		}
		agree += maj
		n += tot
	}
	if n == 0 {
		t.Fatal("no branch statistics gathered")
	}
	if rate := float64(agree) / float64(n); rate < 0.92 {
		t.Fatalf("per-PC majority agreement %.3f, want >= 0.92", rate)
	}
}

func TestColdAccessesNeverRepeat(t *testing.T) {
	p := Profile{
		Name: "cold", BaseIPC: 1, MemRatio: 0.5, BranchRatio: 0,
		BranchBias: 0.5, MLPOverlap: 0,
		Phases: []Phase{{Insts: 1000, ColdWeight: 1}},
	}
	g := NewGenerator(p, 0, 3, 64)
	seen := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		e := g.Next()
		if e.Kind != Mem {
			continue
		}
		if seen[e.Addr] {
			t.Fatalf("cold address %#x repeated", e.Addr)
		}
		seen[e.Addr] = true
	}
}

func TestStreamingIsSequential(t *testing.T) {
	p := Profile{
		Name: "stream", BaseIPC: 1, MemRatio: 0.5, BranchRatio: 0,
		BranchBias: 0.5, MLPOverlap: 0,
		Phases: []Phase{{Insts: 1000, StreamLines: 1 << 20, StreamWeight: 1}},
	}
	g := NewGenerator(p, 0, 3, 64)
	var prev uint64
	first := true
	for i := 0; i < 1000; i++ {
		e := g.Next()
		if e.Kind != Mem {
			continue
		}
		if !first && e.Addr != prev+64 {
			t.Fatalf("stream not sequential: %#x after %#x", e.Addr, prev)
		}
		prev = e.Addr
		first = false
	}
}

func TestPhaseSwitchChangesBehavior(t *testing.T) {
	// Two phases: tiny hot set, then pure cold. The miss rate measured in
	// an LRU monitor must jump between phases.
	p := Profile{
		Name: "phased", BaseIPC: 1, MemRatio: 0.5, BranchRatio: 0,
		BranchBias: 0.5, MLPOverlap: 0,
		Phases: []Phase{
			{Insts: 40000, HotLines: 16, HotWeight: 1},
			{Insts: 40000, ColdWeight: 1},
		},
	}
	g := NewGenerator(p, 0, 9, 64)
	missRateOver := func(events int) float64 {
		m := profiling.NewMonitor(profiling.Config{
			L2Sets: 16, Ways: 8, LineBytes: 64, SampleRate: 1,
			Kind: replacement.LRU,
		})
		for i := 0; i < events; i++ {
			e := g.Next()
			if e.Kind == Mem {
				m.Observe(e.Addr)
			}
		}
		return float64(m.SDH().Misses(8)) / float64(m.Observed())
	}
	// Phase 1 lasts 40k instructions; with MemRatio 0.5 and no branches,
	// events average 2 instructions, so phase 1 spans ~20k events.
	hotRate := missRateOver(15000) // safely inside phase 1
	missRateOver(7000)             // skip across the phase boundary
	coldRate := missRateOver(15000)
	if hotRate > 0.05 {
		t.Errorf("hot phase miss rate %.3f, want small", hotRate)
	}
	if coldRate < 0.9 {
		t.Errorf("cold phase miss rate %.3f, want ~1", coldRate)
	}
}

// TestGeneratedSDHMatchesMixture is the load-bearing test for the whole
// substitution argument: the generator's stack-distance profile, measured
// through the real profiling monitor, must reflect the configured working
// sets — the hot set must fit in few ways and adding the mid set must
// shift the knee outward.
func TestGeneratedSDHMatchesMixture(t *testing.T) {
	const sets = 64
	mk := func(hot, mid int, hw, mw float64) *profiling.Monitor {
		p := Profile{
			Name: "m", BaseIPC: 1, MemRatio: 0.5, BranchRatio: 0,
			BranchBias: 0.5, MLPOverlap: 0,
			Phases: []Phase{{Insts: 1 << 40, HotLines: hot, HotWeight: hw,
				MidLines: mid, MidWeight: mw}},
		}
		g := NewGenerator(p, 0, 21, 64)
		m := profiling.NewMonitor(profiling.Config{
			L2Sets: sets, Ways: 16, LineBytes: 64, SampleRate: 1,
			Kind: replacement.LRU,
		})
		for n := 0; n < 400000; {
			e := g.Next()
			if e.Kind == Mem {
				m.Observe(e.Addr)
				n++
			}
		}
		return m
	}
	// Hot set of 2 lines/set: knee at ~2-3 ways.
	m1 := mk(sets*2, 0, 1, 0)
	curve := m1.SDH().MissCurve()
	tot := float64(m1.Observed())
	if r := float64(curve[4]) / tot; r > 0.05 {
		t.Errorf("2-line/set hot set: miss ratio at 4 ways %.3f, want < 0.05", r)
	}
	if r := float64(curve[1]) / tot; r < 0.3 {
		t.Errorf("2-line/set hot set: miss ratio at 1 way %.3f, want substantial", r)
	}
	// Adding a mid set of 8 lines/set moves the knee outward.
	m2 := mk(sets*2, sets*8, 0.6, 0.4)
	curve2 := m2.SDH().MissCurve()
	tot2 := float64(m2.Observed())
	at4 := float64(curve2[4]) / tot2
	at12 := float64(curve2[12]) / tot2
	if at4 < 0.1 {
		t.Errorf("mid set should still miss at 4 ways, got %.3f", at4)
	}
	if at12 > 0.05 {
		t.Errorf("full mixture should fit in 12 ways, got %.3f", at12)
	}
}
