// Package trace generates the synthetic per-benchmark instruction and
// memory-access streams that stand in for the paper's SPEC CPU 2000
// SimPoint traces (see DESIGN.md §5 for the substitution rationale).
//
// Each benchmark is described by a Profile: a base IPC (standing in for
// width/window effects), a memory-access ratio, a branch ratio with a
// takenness-bias parameter, a memory-level-parallelism overlap factor, and
// a sequence of Phases. A phase draws memory accesses from a four-way
// mixture — a hot working set, a second-level working set, a sequential
// streaming buffer, and cold (never-reused) lines — whose weights and
// sizes shape the benchmark's miss-rate-versus-ways curve, which is the
// property cache partitioning actually responds to.
//
// Generators are infinite and fully deterministic from (profile, seed).
package trace

import (
	"fmt"

	"repro/internal/xrand"
)

// EventKind distinguishes generator events.
type EventKind uint8

// Event kinds.
const (
	// Mem is a data memory access.
	Mem EventKind = iota
	// Branch is a conditional branch with an outcome.
	Branch
)

// Event is one unit of a core's dynamic instruction stream: `Insts`
// instructions are consumed, the last of which is the memory access or
// branch the event describes.
type Event struct {
	Insts uint32    // instructions consumed, >= 1
	Kind  EventKind // Mem or Branch
	Addr  uint64    // byte address (Mem) or branch PC (Branch)
	Taken bool      // branch outcome (Branch only)
	Write bool      // the access is a store (Mem only)
}

// Phase describes one memory-behavior phase of a benchmark.
type Phase struct {
	Insts uint64 // phase length in instructions

	HotLines  int     // primary working-set size in cache lines
	HotWeight float64 // fraction of accesses to the hot set
	// HotCyclic in [0,1]: fraction of hot-set draws that follow a cyclic
	// sweep over the hot set instead of a uniform draw. Loop-style reuse
	// is where true LRU genuinely beats pseudo-LRU (a loop that fits is
	// all-hits under LRU; random-ish victim selection keeps breaking it),
	// and where partitioning shows cliff behavior.
	HotCyclic float64

	MidLines  int     // secondary working-set size in lines
	MidWeight float64 // fraction of accesses to the secondary set

	StreamLines  int     // streaming buffer length in lines
	StreamWeight float64 // fraction of sequential streaming accesses

	ColdWeight float64 // fraction of never-reused (compulsory-miss) accesses
}

func (p Phase) weightSum() float64 {
	return p.HotWeight + p.MidWeight + p.StreamWeight + p.ColdWeight
}

// Profile describes a synthetic benchmark.
type Profile struct {
	Name        string
	BaseIPC     float64 // IPC of the non-memory, non-branch instruction mix
	MemRatio    float64 // fraction of instructions that access memory
	BranchRatio float64 // fraction of instructions that are branches
	// BranchBias in [0.5, 1]: each synthetic static branch gets a
	// takenness probability of BranchBias or 1-BranchBias, so higher
	// values are easier for the predictor.
	BranchBias float64
	// MLPOverlap in [0, 1): fraction of L2/memory latency hidden by
	// out-of-order overlap and memory-level parallelism.
	MLPOverlap float64
	// WriteRatio in [0, 1): fraction of memory accesses that are stores.
	// Stores dirty cache lines; dirty evictions cost writeback traffic
	// (and memory energy) but no core stall (a store buffer is assumed).
	WriteRatio float64
	// L1Locality in [0, 1): probability that a memory access re-uses one
	// of the ~256 most recently touched lines instead of drawing from the
	// phase mixture. This models the short-term temporal locality that
	// makes real programs hit in their private L1s; the L1-miss residue —
	// the stream the shared L2 and the ATDs actually see — is shaped by
	// the phase mixture.
	L1Locality float64
	Phases     []Phase
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile needs a name")
	}
	if p.BaseIPC <= 0 {
		return fmt.Errorf("trace: %s: BaseIPC must be positive", p.Name)
	}
	if p.MemRatio <= 0 || p.MemRatio >= 1 {
		return fmt.Errorf("trace: %s: MemRatio out of (0,1)", p.Name)
	}
	if p.BranchRatio < 0 || p.MemRatio+p.BranchRatio >= 1 {
		return fmt.Errorf("trace: %s: MemRatio+BranchRatio out of range", p.Name)
	}
	if p.BranchBias < 0.5 || p.BranchBias > 1 {
		return fmt.Errorf("trace: %s: BranchBias out of [0.5,1]", p.Name)
	}
	if p.MLPOverlap < 0 || p.MLPOverlap >= 1 {
		return fmt.Errorf("trace: %s: MLPOverlap out of [0,1)", p.Name)
	}
	if p.L1Locality < 0 || p.L1Locality >= 1 {
		return fmt.Errorf("trace: %s: L1Locality out of [0,1)", p.Name)
	}
	if p.WriteRatio < 0 || p.WriteRatio >= 1 {
		return fmt.Errorf("trace: %s: WriteRatio out of [0,1)", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("trace: %s: needs at least one phase", p.Name)
	}
	for i, ph := range p.Phases {
		if ph.Insts == 0 {
			return fmt.Errorf("trace: %s: phase %d has zero length", p.Name, i)
		}
		if ph.weightSum() <= 0 {
			return fmt.Errorf("trace: %s: phase %d has zero weights", p.Name, i)
		}
		if ph.HotWeight > 0 && ph.HotLines <= 0 {
			return fmt.Errorf("trace: %s: phase %d hot set empty", p.Name, i)
		}
		if ph.HotCyclic < 0 || ph.HotCyclic > 1 {
			return fmt.Errorf("trace: %s: phase %d HotCyclic out of [0,1]", p.Name, i)
		}
		if ph.MidWeight > 0 && ph.MidLines <= 0 {
			return fmt.Errorf("trace: %s: phase %d mid set empty", p.Name, i)
		}
		if ph.StreamWeight > 0 && ph.StreamLines <= 0 {
			return fmt.Errorf("trace: %s: phase %d stream empty", p.Name, i)
		}
	}
	return nil
}

// Region bases, in lines, within a thread's private address space. The
// spacing (2^24 lines) is far larger than any working set we generate.
const (
	hotBase    = 0
	midBase    = 1 << 24
	streamBase = 2 << 24
	coldBase   = 3 << 24
	// threadSpacing separates thread address spaces (in bytes) so threads
	// share cache sets but never share tags.
	threadSpacing = 1 << 42
)

// numBranchPCs is the number of synthetic static branches per benchmark.
const numBranchPCs = 128

// recentLines sizes the short-term locality buffer (96 lines = 12 KB of
// 128 B lines, comfortably inside a 32 KB 2-way L1).
const recentLines = 96

// recentBias is the per-step probability parameter of the geometric
// recency-rank distribution used for locality draws: most re-uses target
// the last few dozen lines, as in real program locality, which keeps them
// L1-resident.
const recentBias = 1.0 / 24

// Generator produces the infinite event stream of one thread.
type Generator struct {
	prof      Profile
	lineBytes uint64
	base      uint64 // thread address base (bytes)
	rng       *xrand.RNG

	phaseIdx  int
	phaseLeft int64
	tables    []*xrand.CumTable // per phase: hot/mid/stream/cold weights

	hotPos    uint64
	streamPos uint64
	coldPos   uint64

	recent     [recentLines]uint64 // ring of recently touched lines
	recentLen  int
	recentNext int

	branchPCs  []uint64
	branchBias []float64

	insts uint64 // instructions generated so far
}

// NewGenerator builds a generator for the profile. threadID selects the
// private address space; lineBytes must match the simulated caches so
// streaming advances one line per access.
func NewGenerator(p Profile, threadID int, seed uint64, lineBytes int) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic("trace: lineBytes must be a positive power of two")
	}
	g := &Generator{
		prof:      p,
		lineBytes: uint64(lineBytes),
		base:      uint64(threadID) * threadSpacing,
		rng:       xrand.New(seed),
		phaseLeft: int64(p.Phases[0].Insts),
	}
	for _, ph := range p.Phases {
		g.tables = append(g.tables, xrand.NewCumTable([]float64{
			ph.HotWeight, ph.MidWeight, ph.StreamWeight, ph.ColdWeight,
		}))
	}
	// Synthetic static branches with per-branch bias.
	brng := xrand.New(seed ^ 0xb4a2c3d4e5f60718)
	g.branchPCs = make([]uint64, numBranchPCs)
	g.branchBias = make([]float64, numBranchPCs)
	for i := range g.branchPCs {
		g.branchPCs[i] = g.base + uint64(i)*4 + 0x100000
		if brng.Bool(0.5) {
			g.branchBias[i] = p.BranchBias
		} else {
			g.branchBias[i] = 1 - p.BranchBias
		}
	}
	return g
}

// Profile returns the generating profile.
func (g *Generator) Profile() Profile { return g.prof }

// Insts returns the number of instructions generated so far.
func (g *Generator) Insts() uint64 { return g.insts }

// Next returns the next event. The stream is infinite.
func (g *Generator) Next() Event {
	// Gap to the next event instruction: geometric with success
	// probability MemRatio+BranchRatio per instruction.
	pEvent := g.prof.MemRatio + g.prof.BranchRatio
	gap := g.rng.Geometric(pEvent)
	insts := uint32(gap) + 1

	g.insts += uint64(insts)
	g.phaseLeft -= int64(insts)
	if g.phaseLeft <= 0 {
		g.phaseIdx = (g.phaseIdx + 1) % len(g.prof.Phases)
		g.phaseLeft = int64(g.prof.Phases[g.phaseIdx].Insts)
	}

	if g.rng.Float64()*pEvent < g.prof.MemRatio {
		return Event{
			Insts: insts,
			Kind:  Mem,
			Addr:  g.nextAddr(),
			Write: g.rng.Bool(g.prof.WriteRatio),
		}
	}
	i := g.rng.Intn(numBranchPCs)
	return Event{
		Insts: insts,
		Kind:  Branch,
		Addr:  g.branchPCs[i],
		Taken: g.rng.Bool(g.branchBias[i]),
	}
}

// nextAddr draws a memory address: with probability L1Locality a recently
// touched line (short-term reuse that the private L1 will absorb),
// otherwise a fresh draw from the current phase's mixture.
func (g *Generator) nextAddr() uint64 {
	if g.recentLen > 0 && g.rng.Bool(g.prof.L1Locality) {
		// Rank 0 is the most recently inserted line.
		rank := g.rng.Geometric(recentBias) % g.recentLen
		idx := (g.recentNext - 1 - rank + 2*recentLines) % recentLines
		if idx >= g.recentLen {
			idx = g.recentLen - 1
		}
		return g.base + g.recent[idx]*g.lineBytes
	}
	ph := &g.prof.Phases[g.phaseIdx]
	var line uint64
	switch g.tables[g.phaseIdx].Sample(g.rng) {
	case 0: // hot working set: cyclic sweep or uniform draw
		if ph.HotCyclic > 0 && g.rng.Bool(ph.HotCyclic) {
			line = hotBase + g.hotPos%uint64(ph.HotLines)
			g.hotPos++
		} else {
			line = hotBase + uint64(g.rng.Intn(ph.HotLines))
		}
	case 1: // secondary working set
		line = midBase + uint64(g.rng.Intn(ph.MidLines))
	case 2: // sequential streaming
		line = streamBase + g.streamPos%uint64(ph.StreamLines)
		g.streamPos++
	default: // cold: fresh line every time
		line = coldBase + g.coldPos
		g.coldPos++
	}
	g.recent[g.recentNext] = line
	g.recentNext = (g.recentNext + 1) % recentLines
	if g.recentLen < recentLines {
		g.recentLen++
	}
	return g.base + line*g.lineBytes
}
