package replacement

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current implementation")

// goldenTrace drives a policy through a fixed pseudo-random schedule of
// Touch, Victim (with varying masks), SetPartition and introspection calls
// and records every observable output. The schedule depends only on the
// deterministic splitmix64 stream, so the trace pins the exact step-for-step
// behavior of the implementation.
//
// The checked-in testdata/golden.json was generated against the original
// internal/replacement implementation (before the engine moved to pkg/plru),
// so this test proves the delegating implementation is equivalent to the
// pre-refactor one on every policy.
func goldenTrace(kind Kind) []int {
	const (
		sets  = 4
		ways  = 8
		cores = 2
		steps = 600
	)
	p := New(kind, sets, ways, cores, 99)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}

	var trace []int
	for i := 0; i < steps; i++ {
		r := next()
		set := int(r % sets)
		core := int((r >> 8) % cores)
		way := int((r >> 16) % ways)
		switch r % 5 {
		case 0, 1: // plain access
			p.Touch(set, way, core)
		case 2, 3: // miss: pick a victim under a random non-empty mask, fill it
			mask := WayMask(next()) & Full(ways)
			if mask == 0 {
				mask = Full(ways)
			}
			v := p.Victim(set, core, mask)
			trace = append(trace, v)
			p.Touch(set, v, core)
		default: // introspection probes
			switch q := p.(type) {
			case *LRUPolicy:
				trace = append(trace, q.Dist(set, way))
			case *NRUPolicy:
				trace = append(trace, q.UsedCount(set), q.Pointer())
			case *BTPolicy:
				trace = append(trace, q.PathBits(set, way), q.EstStackPos(set, way))
			}
		}
		// Halfway through, install a two-tenant partition (and keep issuing
		// the same schedule) to pin the partitioned code paths too.
		if i == steps/2 {
			p.SetPartition([]WayMask{Full(ways / 2), Full(ways) &^ Full(ways/2)})
		}
	}

	// BT only: pin VictimForced under every aligned force-vector pair.
	if bt, ok := p.(*BTPolicy); ok {
		lv := bt.Levels()
		for d := 0; d < lv; d++ {
			up := make([]bool, lv)
			down := make([]bool, lv)
			up[d] = true
			trace = append(trace, bt.VictimForced(0, up, make([]bool, lv)))
			down[d] = true
			trace = append(trace, bt.VictimForced(0, make([]bool, lv), down))
		}
	}
	return trace
}

func TestGoldenSequences(t *testing.T) {
	got := map[string][]int{}
	for _, k := range []Kind{LRU, NRU, BT, Random} {
		got[k.String()] = goldenTrace(k)
	}

	path := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	var want map[string][]int
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}
	for kind, w := range want {
		g := got[kind]
		if !reflect.DeepEqual(g, w) {
			i := 0
			for i < len(g) && i < len(w) && g[i] == w[i] {
				i++
			}
			t.Errorf("%s: trace diverges from pre-refactor golden at step %d (got len %d, want len %d)",
				kind, i, len(g), len(w))
		}
	}
}
