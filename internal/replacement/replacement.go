// Package replacement is a thin compatibility layer over the public policy
// engine in repro/pkg/plru. The LRU/NRU/BT/Random implementations,
// originally developed here for the paper reproduction, now live in
// pkg/plru so external users can import them; every identifier in this
// package is an alias or a one-line delegation, so there is exactly one
// policy implementation in the module.
//
// Simulator-internal code keeps importing this package; new code (and
// anything outside the module) should import repro/pkg/plru directly.
// The golden-sequence test in this package pins the delegating engine to
// the pre-refactor behavior step for step.
package replacement

import "repro/pkg/plru"

// Kind identifies a replacement policy family. See plru.Kind.
type Kind = plru.Kind

// The replacement policy families used in the paper's evaluation, plus
// the adaptive policies added on top of them.
const (
	LRU    = plru.LRU    // true Least Recently Used
	NRU    = plru.NRU    // Not Recently Used (used bit + global replacement pointer)
	BT     = plru.BT     // Binary Tree pseudo-LRU
	Random = plru.Random // uniform random victim (reference)
	AWRP   = plru.AWRP   // Adaptive Weight Ranking (recency stamp + frequency weight)
	ARC    = plru.ARC    // ARC-style two-tier recency/frequency with ghost history
)

// ParseKind converts a policy name ("LRU", "NRU", "BT", "Random",
// "AWRP", "ARC", case-sensitive) into a Kind.
func ParseKind(s string) (Kind, error) { return plru.ParseKind(s) }

// Kinds returns every registered policy kind. See plru.Kinds.
func Kinds() []Kind { return plru.Kinds() }

// WayMask is a bitmask over cache ways. See plru.WayMask.
type WayMask = plru.WayMask

// MaxWays is the largest associativity a WayMask can describe.
const MaxWays = plru.MaxWays

// Full returns a mask with the low `ways` bits set.
func Full(ways int) WayMask { return plru.Full(ways) }

// Policy is the common behavior of a replacement policy instance covering
// every set of one cache. See plru.Policy.
type Policy = plru.Policy

// LRUPolicy is the exact Least Recently Used policy. See plru.LRUPolicy.
type LRUPolicy = plru.LRUPolicy

// NRUPolicy is the UltraSPARC T2 Not Recently Used policy. See
// plru.NRUPolicy.
type NRUPolicy = plru.NRUPolicy

// BTPolicy is the Binary Tree pseudo-LRU policy. See plru.BTPolicy.
type BTPolicy = plru.BTPolicy

// RandomPolicy is the uniform-random reference policy. See
// plru.RandomPolicy.
type RandomPolicy = plru.RandomPolicy

// NewLRUPolicy returns an LRU policy for the given geometry.
func NewLRUPolicy(sets, ways int) *LRUPolicy { return plru.NewLRUPolicy(sets, ways) }

// NewNRUPolicy returns an NRU policy for the given geometry.
func NewNRUPolicy(sets, ways, cores int) *NRUPolicy { return plru.NewNRUPolicy(sets, ways, cores) }

// NewBTPolicy returns a BT policy; ways must be a power of two.
func NewBTPolicy(sets, ways int) *BTPolicy { return plru.NewBTPolicy(sets, ways) }

// NewRandomPolicy returns a Random policy seeded deterministically.
func NewRandomPolicy(sets, ways int, seed uint64) *RandomPolicy {
	return plru.NewRandomPolicy(sets, ways, seed)
}

// AWRPPolicy is the Adaptive Weight Ranking policy. See plru.AWRPPolicy.
type AWRPPolicy = plru.AWRPPolicy

// ARCPolicy is the ARC-inspired adaptive policy with ghost history. See
// plru.ARCPolicy.
type ARCPolicy = plru.ARCPolicy

// NewAWRPPolicy returns an AWRP policy for the given geometry.
func NewAWRPPolicy(sets, ways int) *AWRPPolicy { return plru.NewAWRPPolicy(sets, ways) }

// NewARCPolicy returns an ARC policy for the given geometry.
func NewARCPolicy(sets, ways int) *ARCPolicy { return plru.NewARCPolicy(sets, ways) }

// New constructs a policy of the given kind for a cache with `sets` sets,
// `ways` ways and `cores` sharer cores. The seed is used only by Random.
func New(kind Kind, sets, ways, cores int, seed uint64) Policy {
	return plru.New(kind, sets, ways, cores, seed)
}
