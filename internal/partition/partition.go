// Package partition is a thin compatibility layer over the public
// partition-selection algorithms in repro/pkg/cpapart. The curve-based
// allocators (MinMisses, Lookahead, Fair, Static), the binary-buddy
// machinery for BT enforcement and the mask conversion all live in
// pkg/cpapart now; every identifier here is an alias or a one-line
// delegation, so there is exactly one algorithm implementation in the
// module.
//
// The goal-directed IPC policies (MaxThroughput, FairSlowdown, QoS, in
// ipc.go) remain simulator-internal: they consume the CMP model's
// interval observations and are not part of the public API.
package partition

import (
	"repro/pkg/cpapart"
	"repro/pkg/plru"
)

// Allocation holds the number of ways assigned to each thread. See
// cpapart.Allocation.
type Allocation = cpapart.Allocation

// Algorithm selects an allocation from per-thread miss curves. See
// cpapart.Algorithm.
type Algorithm = cpapart.Algorithm

// MinMisses is the exact dynamic-programming MinMisses policy. See
// cpapart.MinMisses.
type MinMisses = cpapart.MinMisses

// Lookahead is the greedy marginal-utility allocator from Qureshi &
// Patt's UCP. See cpapart.Lookahead.
type Lookahead = cpapart.Lookahead

// Fair splits ways as evenly as possible. See cpapart.Fair.
type Fair = cpapart.Fair

// Static always returns a fixed allocation. See cpapart.Static.
type Static = cpapart.Static

// Block is an aligned power-of-two region of ways. See cpapart.Block.
type Block = cpapart.Block

// TotalMisses evaluates an allocation against the curves.
func TotalMisses(curves [][]uint64, a Allocation) uint64 {
	return cpapart.TotalMisses(curves, a)
}

// Masks converts an allocation into contiguous global replacement masks.
func Masks(a Allocation, ways int) []plru.WayMask { return cpapart.Masks(a, ways) }

// BuddyMinMisses returns the miss-minimizing allocation under the BT
// power-of-two buddy constraint.
func BuddyMinMisses(curves [][]uint64, ways int) Allocation {
	return cpapart.BuddyMinMisses(curves, ways)
}

// BuddyLayout places power-of-two shares onto disjoint aligned blocks.
func BuddyLayout(sizes []int, ways int) ([]Block, error) {
	return cpapart.BuddyLayout(sizes, ways)
}

// ForceVectors converts an aligned block into the paper's per-level
// up/down force vectors for a BT of the given associativity.
func ForceVectors(b Block, ways int) (up, down []bool) {
	return cpapart.ForceVectors(b, ways)
}
