package partition

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// monotoneIPCCurves builds n non-decreasing IPC curves.
func monotoneIPCCurves(rng *xrand.RNG, n, ways int) [][]float64 {
	curves := make([][]float64, n)
	for i := range curves {
		c := make([]float64, ways+1)
		v := 0.1 + rng.Float64()
		for w := 0; w <= ways; w++ {
			c[w] = v
			v += rng.Float64() * 0.2
		}
		curves[i] = c
	}
	return curves
}

func TestIPCEstimateCurveShape(t *testing.T) {
	ways := 8
	misses := make([]uint64, ways+1)
	for w := 0; w <= ways; w++ {
		misses[w] = uint64((ways - w) * 100)
	}
	e := IPCEstimate{
		Insts: 100000, Cycles: 200000, CurrentWays: 4,
		MissPenaltyCyc: 200, SampleScale: 32,
	}
	curve := e.Curve(misses, ways)
	// IPC must be non-decreasing in ways (misses non-increasing).
	for w := 2; w <= ways; w++ {
		if curve[w] < curve[w-1]-1e-12 {
			t.Fatalf("IPC curve decreasing at %d: %v", w, curve)
		}
	}
	// At the observed allocation the prediction equals the observation.
	obs := float64(e.Insts) / e.Cycles
	if math.Abs(curve[4]-obs) > 1e-12 {
		t.Fatalf("curve at current ways %v != observed %v", curve[4], obs)
	}
}

func TestIPCEstimateNoObservation(t *testing.T) {
	e := IPCEstimate{}
	curve := e.Curve(make([]uint64, 9), 8)
	for _, v := range curve {
		if v != 1 {
			t.Fatalf("fallback curve not flat: %v", curve)
		}
	}
}

func TestIPCEstimateClampsCycles(t *testing.T) {
	// A wildly optimistic miss delta cannot drive cycles below insts/8.
	ways := 4
	misses := []uint64{1000, 1000, 1000, 1000, 0}
	e := IPCEstimate{
		Insts: 1000, Cycles: 2000, CurrentWays: 1,
		MissPenaltyCyc: 1e9, SampleScale: 1,
	}
	curve := e.Curve(misses, ways)
	if curve[ways] > 8 {
		t.Fatalf("IPC %v exceeds the 8-wide bound", curve[ways])
	}
}

func TestMaxThroughputOptimal(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(3)
		ways := 8
		curves := monotoneIPCCurves(rng, n, ways)
		alloc := MaxThroughput{}.AllocateIPC(curves, ways)
		if !alloc.Valid(ways) {
			t.Fatalf("invalid allocation %v", alloc)
		}
		got := 0.0
		for i, w := range alloc {
			got += curves[i][w]
		}
		// Brute force.
		best := -1.0
		var rec func(t, left int, acc float64)
		rec = func(ti, left int, acc float64) {
			if ti == n-1 {
				if left >= 1 {
					if v := acc + curves[ti][left]; v > best {
						best = v
					}
				}
				return
			}
			for a := 1; a <= left-(n-1-ti); a++ {
				rec(ti+1, left-a, acc+curves[ti][a])
			}
		}
		rec(0, ways, 0)
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("DP %v != brute force %v (alloc %v)", got, best, alloc)
		}
	}
}

func TestFairSlowdownMinimaxImprovesOnThroughput(t *testing.T) {
	// One thread saturates immediately; the other needs many ways. Max
	// throughput may starve neither here, so craft asymmetry: thread 0
	// gains hugely from extra ways, thread 1 moderately. Fairness should
	// never yield a worse max-slowdown than the throughput allocation.
	rng := xrand.New(9)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(3)
		ways := 16
		curves := monotoneIPCCurves(rng, n, ways)
		maxSlow := func(a Allocation) float64 {
			worst := 0.0
			for i, w := range a {
				s := curves[i][ways] / curves[i][w]
				if s > worst {
					worst = s
				}
			}
			return worst
		}
		fair := FairSlowdown{}.AllocateIPC(curves, ways)
		if !fair.Valid(ways) {
			t.Fatalf("invalid fair allocation %v", fair)
		}
		tp := MaxThroughput{}.AllocateIPC(curves, ways)
		if maxSlow(fair) > maxSlow(tp)+1e-9 {
			t.Fatalf("fair allocation %v has worse max slowdown (%v) than throughput %v (%v)",
				fair, maxSlow(fair), tp, maxSlow(tp))
		}
	}
}

func TestFairSlowdownEqualThreadsEqualShares(t *testing.T) {
	ways := 8
	c := make([]float64, ways+1)
	for w := 0; w <= ways; w++ {
		c[w] = float64(w)
	}
	curves := [][]float64{c, c}
	alloc := FairSlowdown{}.AllocateIPC(curves, ways)
	if alloc[0] != alloc[1] {
		t.Fatalf("identical threads got unequal shares: %v", alloc)
	}
}

func TestQoSGuaranteesThreadZero(t *testing.T) {
	ways := 16
	// Thread 0: IPC rises linearly; full-cache IPC = 16.
	c0 := make([]float64, ways+1)
	for w := 0; w <= ways; w++ {
		c0[w] = float64(w)
	}
	// Thread 1: flat (doesn't need cache).
	c1 := make([]float64, ways+1)
	for w := range c1 {
		c1[w] = 5
	}
	q := QoS{MaxSlowdown: 1.25} // thread 0 needs IPC >= 12.8 -> 13 ways
	alloc := q.AllocateIPC([][]float64{c0, c1}, ways)
	if !alloc.Valid(ways) {
		t.Fatalf("invalid allocation %v", alloc)
	}
	if c0[alloc[0]] < c0[ways]/1.25-1e-9 {
		t.Fatalf("QoS violated: thread 0 IPC %v with %d ways, needs %v",
			c0[alloc[0]], alloc[0], c0[ways]/1.25)
	}
}

func TestQoSLeavesWaysForOthers(t *testing.T) {
	ways := 8
	steep := make([]float64, ways+1)
	for w := 0; w <= ways; w++ {
		steep[w] = float64(w * w)
	}
	flat := make([]float64, ways+1)
	for w := range flat {
		flat[w] = 1
	}
	// Even an impossible target must leave one way per other thread.
	q := QoS{MaxSlowdown: 1.0}
	alloc := q.AllocateIPC([][]float64{steep, flat, flat}, ways)
	if !alloc.Valid(ways) {
		t.Fatalf("invalid allocation %v", alloc)
	}
	if alloc[1] < 1 || alloc[2] < 1 {
		t.Fatalf("QoS starved other threads: %v", alloc)
	}
}

func TestQoSBadTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for MaxSlowdown < 1")
		}
	}()
	QoS{MaxSlowdown: 0.5}.AllocateIPC(monotoneIPCCurves(xrand.New(1), 2, 8), 8)
}

func TestSingleThreadQoS(t *testing.T) {
	c := monotoneIPCCurves(xrand.New(2), 1, 8)
	alloc := QoS{MaxSlowdown: 1.1}.AllocateIPC(c, 8)
	if alloc[0] != 8 {
		t.Fatalf("single thread should own the cache: %v", alloc)
	}
}
