package partition

import (
	"fmt"
	"math"
)

// This file implements the goal-directed partitioning policies the paper
// points to in §II-B ("Further goals can be reached, when the policy is
// modified to favor fairness or QoS [14]" — FlexDCP, Moreto et al.). The
// hardware estimates each thread's IPC as a function of assigned ways
// from its (e)SDH miss curve plus the performance observed during the
// last interval, and the partitioner optimizes a metric over those
// curves.

// IPCEstimate converts a thread's observed interval performance and its
// miss curve into a predicted IPC for every allocation.
//
// Model: cycles(w) = observedCycles + (misses(w) − misses(current)) × penalty.
// misses are in profiled (sampled) units; SampleScale converts them to
// cache-wide counts (the ATD samples 1/SampleScale of the sets).
type IPCEstimate struct {
	Insts          uint64  // instructions committed in the interval
	Cycles         float64 // cycles consumed in the interval
	CurrentWays    int     // allocation the observation was made under
	MissPenaltyCyc float64 // effective penalty per additional miss
	SampleScale    float64 // cache sets per profiled set (>= 1)
}

// Curve returns predicted IPC for allocations 0..ways given the thread's
// miss curve (profiled units). Allocation 0 is a placeholder (same as 1).
func (e IPCEstimate) Curve(misses []uint64, ways int) []float64 {
	if len(misses) != ways+1 {
		panic(fmt.Sprintf("partition: miss curve has %d entries, want %d", len(misses), ways+1))
	}
	if e.Cycles <= 0 || e.Insts == 0 {
		// No observation yet: fall back to a flat positive curve so the
		// optimizer still produces a valid allocation.
		out := make([]float64, ways+1)
		for i := range out {
			out[i] = 1
		}
		return out
	}
	cur := e.CurrentWays
	if cur < 1 {
		cur = 1
	}
	if cur > ways {
		cur = ways
	}
	out := make([]float64, ways+1)
	for w := 0; w <= ways; w++ {
		ref := w
		if ref < 1 {
			ref = 1
		}
		delta := (float64(misses[ref]) - float64(misses[cur])) * e.SampleScale
		cycles := e.Cycles + delta*e.MissPenaltyCyc
		// Even a pathological estimate cannot predict fewer cycles than
		// the instructions themselves need on an ideal machine.
		if min := float64(e.Insts) / 8; cycles < min {
			cycles = min
		}
		out[w] = float64(e.Insts) / cycles
	}
	return out
}

// MaxThroughput picks the allocation maximizing Σ predicted IPC, with at
// least one way per thread (exact DP, mirroring MinMisses).
type MaxThroughput struct{}

// Name returns "MaxThroughput".
func (MaxThroughput) Name() string { return "MaxThroughput" }

// AllocateIPC maximizes the sum of the per-thread IPC curves.
func (MaxThroughput) AllocateIPC(curves [][]float64, ways int) Allocation {
	checkIPCInputs(curves, ways)
	n := len(curves)
	negInf := math.Inf(-1)
	f := make([][]float64, n+1)
	choice := make([][]int, n+1)
	for t := range f {
		f[t] = make([]float64, ways+1)
		choice[t] = make([]int, ways+1)
		for w := range f[t] {
			f[t][w] = negInf
		}
	}
	f[0][0] = 0
	for t := 1; t <= n; t++ {
		for w := t; w <= ways; w++ {
			for a := 1; a <= w-(t-1); a++ {
				if prev := f[t-1][w-a]; prev != negInf {
					if cand := prev + curves[t-1][a]; cand > f[t][w] {
						f[t][w] = cand
						choice[t][w] = a
					}
				}
			}
		}
	}
	alloc := make(Allocation, n)
	w := ways
	for t := n; t >= 1; t-- {
		a := choice[t][w]
		alloc[t-1] = a
		w -= a
	}
	return alloc
}

// FairSlowdown minimizes the maximum per-thread slowdown relative to each
// thread's predicted full-cache IPC (minimax fairness). Ties are resolved
// by maximizing total IPC among minimax-optimal allocations.
type FairSlowdown struct{}

// Name returns "FairSlowdown".
func (FairSlowdown) Name() string { return "FairSlowdown" }

// AllocateIPC performs the minimax optimization: binary search over the
// achievable slowdown values, where feasibility at slowdown s means every
// thread can reach IPC(full)/s with shares summing to at most `ways`.
func (FairSlowdown) AllocateIPC(curves [][]float64, ways int) Allocation {
	checkIPCInputs(curves, ways)
	n := len(curves)
	// minWays(i, s): smallest share giving thread i slowdown <= s.
	minWays := func(i int, s float64) int {
		target := curves[i][ways] / s
		for w := 1; w <= ways; w++ {
			if curves[i][w] >= target-1e-12 {
				return w
			}
		}
		return ways + 1 // unreachable at this slowdown
	}
	// Candidate slowdowns: every distinct full/curve ratio.
	var cands []float64
	for i := 0; i < n; i++ {
		for w := 1; w <= ways; w++ {
			if curves[i][w] > 0 {
				cands = append(cands, curves[i][ways]/curves[i][w])
			}
		}
	}
	cands = append(cands, 1)
	best := math.Inf(1)
	for _, s := range cands {
		if s < 1 {
			continue
		}
		total := 0
		for i := 0; i < n; i++ {
			total += minWays(i, s)
		}
		if total <= ways && s < best {
			best = s
		}
	}
	if math.IsInf(best, 1) {
		// No slowdown target is jointly reachable (degenerate curves):
		// fall back to an even split.
		return Fair{}.Allocate(uintCurves(n, ways), ways)
	}
	alloc := make(Allocation, n)
	used := 0
	for i := 0; i < n; i++ {
		alloc[i] = minWays(i, best)
		used += alloc[i]
	}
	// Distribute leftovers by marginal IPC gain.
	for used < ways {
		bi, bg := 0, -1.0
		for i := 0; i < n; i++ {
			if alloc[i] >= ways {
				continue
			}
			if g := curves[i][alloc[i]+1] - curves[i][alloc[i]]; g > bg {
				bg, bi = g, i
			}
		}
		alloc[bi]++
		used++
	}
	return alloc
}

// QoS guarantees thread 0 a maximum slowdown versus its predicted
// full-cache IPC and spends the remaining ways maximizing the other
// threads' total IPC — the paper's QoS framing (§I, [10], [14], [17]).
type QoS struct {
	// MaxSlowdown for thread 0 (e.g. 1.1 = at most 10% below full-cache
	// IPC). Must be >= 1.
	MaxSlowdown float64
}

// Name returns "QoS".
func (q QoS) Name() string { return "QoS" }

// AllocateIPC reserves ways for thread 0 first.
func (q QoS) AllocateIPC(curves [][]float64, ways int) Allocation {
	checkIPCInputs(curves, ways)
	if q.MaxSlowdown < 1 {
		panic("partition: QoS MaxSlowdown must be >= 1")
	}
	n := len(curves)
	if n == 1 {
		return Allocation{ways}
	}
	target := curves[0][ways] / q.MaxSlowdown
	reserve := ways - (n - 1) // leave one way for everyone else
	got := reserve
	for w := 1; w <= reserve; w++ {
		if curves[0][w] >= target-1e-12 {
			got = w
			break
		}
	}
	left := ways - got
	trimmed := make([][]float64, n-1)
	for i, c := range curves[1:] {
		trimmed[i] = c[:left+1]
	}
	rest := MaxThroughput{}.AllocateIPC(trimmed, left)
	alloc := make(Allocation, n)
	alloc[0] = got
	copy(alloc[1:], rest)
	return alloc
}

func checkIPCInputs(curves [][]float64, ways int) {
	n := len(curves)
	if n == 0 {
		panic("partition: no threads")
	}
	if ways < n {
		panic(fmt.Sprintf("partition: %d ways cannot give %d threads one each", ways, n))
	}
	for i, c := range curves {
		if len(c) != ways+1 {
			panic(fmt.Sprintf("partition: IPC curve %d has %d entries, want %d", i, len(c), ways+1))
		}
	}
}

func uintCurves(n, ways int) [][]uint64 {
	out := make([][]uint64, n)
	for i := range out {
		out[i] = make([]uint64, ways+1)
	}
	return out
}
