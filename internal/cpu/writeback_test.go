package cpu

import (
	"testing"

	"repro/internal/trace"
)

func writeProfile() trace.Profile {
	return trace.Profile{
		Name: "writer", BaseIPC: 2, MemRatio: 0.4, BranchRatio: 0,
		BranchBias: 0.5, MLPOverlap: 0, WriteRatio: 0.5,
		Phases: []trace.Phase{{Insts: 1 << 40, ColdWeight: 1}},
	}
}

func TestDirtyL1VictimsReachL2(t *testing.T) {
	// Cold stores dirty L1 lines; as the L1 churns, dirty victims must be
	// written back to the L2.
	l2 := &perfectL2{}
	c := runCore(t, writeProfile(), l2, 100000)
	if c.Stats().L1Writebacks == 0 {
		t.Fatal("no L1 writebacks despite 50% store mix over cold lines")
	}
	if l2.writebacks != c.Stats().L1Writebacks {
		t.Fatalf("L2 received %d writebacks, core issued %d",
			l2.writebacks, c.Stats().L1Writebacks)
	}
}

func TestReadOnlyStreamNoWritebacks(t *testing.T) {
	c := runCore(t, memProfile(0), missL2{}, 50000)
	if c.Stats().L1Writebacks != 0 {
		t.Fatalf("read-only stream produced %d writebacks", c.Stats().L1Writebacks)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	// With an always-missing L2, a store-heavy stream must be much
	// faster than a load-heavy one: stores drain through the write
	// buffer.
	loads := memProfile(0) // all loads
	stores := writeProfile()
	stores.WriteRatio = 0.9
	cl := runCore(t, loads, missL2{}, 60000)
	cs := runCore(t, stores, missL2{}, 60000)
	if cs.IPC() < cl.IPC()*2 {
		t.Fatalf("store-heavy IPC %.3f not much better than load-heavy %.3f",
			cs.IPC(), cl.IPC())
	}
}
