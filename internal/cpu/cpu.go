// Package cpu models one core of the paper's CMP: an event-driven timing
// model that consumes a synthetic trace, runs a private L1 data cache and
// a branch predictor, and charges latency for L2 and memory accesses.
//
// This is the simulator-substrate substitution for the paper's Turandot
// out-of-order core (DESIGN.md §5): the 8-wide window is summarized by the
// benchmark's BaseIPC, the front end by the simulated tournament predictor
// and BTB penalties, and memory-level parallelism by the profile's
// MLPOverlap factor that hides part of every L2/memory penalty.
package cpu

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/replacement"
	"repro/internal/trace"
)

// Params are the latency parameters of Table II, shared by all cores.
type Params struct {
	L2HitPenalty      uint64 // L1-miss/L2-hit penalty in cycles (paper: 11)
	MemPenalty        uint64 // additional L2-miss penalty (paper: 250)
	MispredictPenalty uint64 // branch direction misprediction
	BTBMissPenalty    uint64 // taken branch missing in the BTB (paper: min 3)
}

// DefaultParams returns the paper's processor setup.
func DefaultParams() Params {
	return Params{
		L2HitPenalty:      11,
		MemPenalty:        250,
		MispredictPenalty: 12,
		BTBMissPenalty:    3,
	}
}

// DefaultL1Config returns the paper's private L1 data cache (32 KB 2-way
// with the experiment's line size).
func DefaultL1Config(lineBytes int) cache.Config {
	return cache.Config{
		Name:      "L1D",
		SizeBytes: 32 * 1024,
		LineBytes: lineBytes,
		Ways:      2,
		Policy:    replacement.LRU,
		Cores:     1,
	}
}

// SharedL2 is the core's view of the shared cache, implemented by the cmp
// system so the CPA can observe every access.
type SharedL2 interface {
	// Access performs a demand L2 access by `core` at core-cycle `now`
	// and reports whether it hit plus, on a miss, the memory latency in
	// cycles (the paper's constant 250 or the DRAM model's per-access
	// value). Demand accesses are observed by the profiling logic.
	Access(core int, addr uint64, write bool, now float64) (hit bool, memCycles uint64)
	// Writeback delivers a dirty L1 victim line to the L2. Writebacks
	// bypass the profiling logic (they are not program accesses).
	Writeback(core int, addr uint64)
}

// Stats are the core's accumulated event counts.
type Stats struct {
	Insts        uint64
	L1Accesses   uint64
	L1Misses     uint64
	L1Writebacks uint64
	L2Accesses   uint64
	L2Misses     uint64
	Branches     uint64
	Mispredicts  uint64
	BTBMisses    uint64
}

// Core is one simulated core.
type Core struct {
	id     int
	gen    *trace.Generator
	prof   trace.Profile
	params Params
	l1     *cache.Cache
	bp     *bpred.Predictor
	l2     SharedL2

	cycles float64
	stats  Stats
}

// New builds a core running the given profile.
func New(id int, prof trace.Profile, seed uint64, l1cfg cache.Config, params Params, l2 SharedL2) *Core {
	return &Core{
		id:     id,
		gen:    trace.NewGenerator(prof, id, seed, l1cfg.LineBytes),
		prof:   prof,
		params: params,
		l1:     cache.New(l1cfg),
		bp:     bpred.New(bpred.DefaultConfig()),
		l2:     l2,
	}
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Profile returns the benchmark profile the core runs.
func (c *Core) Profile() trace.Profile { return c.prof }

// Cycles returns the core's local clock.
func (c *Core) Cycles() float64 { return c.cycles }

// Insts returns committed instructions.
func (c *Core) Insts() uint64 { return c.stats.Insts }

// Stats returns a copy of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// IPC returns instructions per cycle so far (0 before any work).
func (c *Core) IPC() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.stats.Insts) / c.cycles
}

// Step consumes one trace event, advancing the core's clock.
func (c *Core) Step() {
	e := c.gen.Next()
	c.stats.Insts += uint64(e.Insts)
	c.cycles += float64(e.Insts) / c.prof.BaseIPC

	switch e.Kind {
	case trace.Branch:
		c.stats.Branches++
		out := c.bp.Lookup(e.Addr, e.Taken)
		if !out.DirectionCorrect {
			c.stats.Mispredicts++
			c.cycles += float64(c.params.MispredictPenalty)
		} else if !out.BTBHit {
			c.stats.BTBMisses++
			c.cycles += float64(c.params.BTBMissPenalty)
		}
	case trace.Mem:
		c.stats.L1Accesses++
		r := c.l1.AccessRW(0, e.Addr, e.Write)
		if r.Writeback {
			// Dirty L1 victim: deliver it to the L2 (no stall; the
			// write buffer hides it, but the traffic is real).
			c.stats.L1Writebacks++
			c.l2.Writeback(c.id, r.EvictedAddr)
		}
		if r.Hit {
			return // L1 hits are pipelined away
		}
		c.stats.L1Misses++
		c.stats.L2Accesses++
		hit, memCycles := c.l2.Access(c.id, e.Addr, e.Write, c.cycles)
		penalty := c.params.L2HitPenalty
		if !hit {
			c.stats.L2Misses++
			penalty += memCycles
		}
		if e.Write {
			// Stores retire through the store buffer: no pipeline stall,
			// only the traffic and energy are accounted.
			return
		}
		c.cycles += float64(penalty) * (1 - c.prof.MLPOverlap)
	}
}
