package cpu

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// perfectL2 always hits.
type perfectL2 struct{ accesses, writebacks uint64 }

func (p *perfectL2) Access(core int, addr uint64, write bool, now float64) (bool, uint64) {
	p.accesses++
	return true, 0
}
func (p *perfectL2) Writeback(core int, addr uint64) { p.writebacks++ }

// missL2 always misses.
type missL2 struct{}

func (missL2) Access(core int, addr uint64, write bool, now float64) (bool, uint64) {
	return false, 250
}
func (missL2) Writeback(core int, addr uint64) {}

func computeProfile(baseIPC float64) trace.Profile {
	return trace.Profile{
		Name: "compute", BaseIPC: baseIPC, MemRatio: 0.05, BranchRatio: 0.01,
		BranchBias: 1.0, MLPOverlap: 0,
		Phases: []trace.Phase{{Insts: 1 << 40, HotLines: 8, HotWeight: 1}},
	}
}

func memProfile(overlap float64) trace.Profile {
	return trace.Profile{
		Name: "memory", BaseIPC: 2, MemRatio: 0.4, BranchRatio: 0,
		BranchBias: 0.5, MLPOverlap: overlap,
		Phases: []trace.Phase{{Insts: 1 << 40, ColdWeight: 1}},
	}
}

func runCore(t *testing.T, prof trace.Profile, l2 SharedL2, insts uint64) *Core {
	t.Helper()
	c := New(0, prof, 11, DefaultL1Config(128), DefaultParams(), l2)
	for c.Insts() < insts {
		c.Step()
	}
	return c
}

func TestComputeBoundIPCNearBase(t *testing.T) {
	// A tiny working set with perfectly biased branches should run near
	// its base IPC.
	c := runCore(t, computeProfile(2.0), &perfectL2{}, 200000)
	if ipc := c.IPC(); math.Abs(ipc-2.0) > 0.15 {
		t.Fatalf("compute-bound IPC = %.3f, want ~2.0", ipc)
	}
}

func TestMemoryBoundIPCDegrades(t *testing.T) {
	// Cold accesses with an always-missing L2 pay (11+250)*(1-overlap)
	// per miss; IPC must be far below base.
	c := runCore(t, memProfile(0), missL2{}, 100000)
	if ipc := c.IPC(); ipc > 0.05 {
		t.Fatalf("all-miss IPC = %.3f, want tiny", ipc)
	}
}

func TestMLPOverlapHidesLatency(t *testing.T) {
	slow := runCore(t, memProfile(0), missL2{}, 100000)
	fast := runCore(t, memProfile(0.8), missL2{}, 100000)
	if fast.IPC() <= slow.IPC()*2 {
		t.Fatalf("80%% overlap IPC %.4f not much better than 0%% overlap %.4f",
			fast.IPC(), slow.IPC())
	}
}

func TestL1FiltersL2Traffic(t *testing.T) {
	// A working set that fits in L1 should reach the L2 only for cold
	// fills.
	l2 := &perfectL2{}
	c := runCore(t, computeProfile(2.0), l2, 200000)
	if c.Stats().L1Accesses == 0 {
		t.Fatal("no L1 accesses recorded")
	}
	missRate := float64(c.Stats().L1Misses) / float64(c.Stats().L1Accesses)
	if missRate > 0.01 {
		t.Fatalf("L1 miss rate %.4f for an L1-resident working set", missRate)
	}
	if l2.accesses != c.Stats().L2Accesses {
		t.Fatalf("L2 access accounting mismatch: %d vs %d", l2.accesses, c.Stats().L2Accesses)
	}
}

func TestExactCycleAccounting(t *testing.T) {
	// With deterministic parameters, total cycles must equal
	// insts/BaseIPC + misses*(11+250)*(1-overlap) exactly.
	prof := memProfile(0.5)
	c := runCore(t, prof, missL2{}, 50000)
	st := c.Stats()
	want := float64(st.Insts)/prof.BaseIPC +
		float64(st.L2Accesses)*(11+250)*0.5
	if math.Abs(c.Cycles()-want) > 1e-6*want {
		t.Fatalf("cycles = %.2f, want %.2f", c.Cycles(), want)
	}
}

func TestBranchPenaltiesCharged(t *testing.T) {
	// Random branches (bias 0.5) mispredict ~half the time; cycles must
	// include the misprediction penalty.
	prof := trace.Profile{
		Name: "branchy", BaseIPC: 2, MemRatio: 0.01, BranchRatio: 0.3,
		BranchBias: 0.5, MLPOverlap: 0,
		Phases: []trace.Phase{{Insts: 1 << 40, HotLines: 8, HotWeight: 1}},
	}
	c := runCore(t, prof, &perfectL2{}, 100000)
	st := c.Stats()
	if st.Branches == 0 {
		t.Fatal("no branches")
	}
	mispredictRate := float64(st.Mispredicts) / float64(st.Branches)
	if mispredictRate < 0.3 {
		t.Fatalf("random branches mispredicted only %.3f", mispredictRate)
	}
	// IPC should be visibly below base due to branch penalties.
	if c.IPC() > 1.5 {
		t.Fatalf("IPC %.3f despite heavy mispredicts", c.IPC())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := runCore(t, memProfile(0.3), missL2{}, 30000)
	b := runCore(t, memProfile(0.3), missL2{}, 30000)
	if a.Cycles() != b.Cycles() || a.Stats() != b.Stats() {
		t.Fatal("identical configurations diverged")
	}
}
