package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/replacement"
	"repro/internal/xrand"
)

// smallCfg is a 4-set, 4-way toy cache used by most tests.
func smallCfg(kind replacement.Kind, cores int) Config {
	return Config{
		Name:      "test",
		SizeBytes: 4 * 4 * 64,
		LineBytes: 64,
		Ways:      4,
		Policy:    kind,
		Cores:     cores,
		Seed:      1,
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallCfg(replacement.LRU, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.LineBytes = 48 // not a power of two
	if bad.Validate() == nil {
		t.Error("non-power-of-two line accepted")
	}
	bad = good
	bad.SizeBytes = 1000 // not divisible
	if bad.Validate() == nil {
		t.Error("indivisible size accepted")
	}
	bad = good
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores accepted")
	}
}

func TestConfigSets(t *testing.T) {
	cfg := Config{SizeBytes: 2 << 20, LineBytes: 128, Ways: 16, Policy: replacement.LRU, Cores: 2}
	if got := cfg.Sets(); got != 1024 {
		t.Fatalf("2MB/16-way/128B = %d sets, want 1024", got)
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 1))
	r := c.Access(0, 0x1000)
	if r.Hit {
		t.Fatal("first access hit")
	}
	r = c.Access(0, 0x1000)
	if !r.Hit {
		t.Fatal("second access missed")
	}
	if c.Stats().TotalHits() != 1 || c.Stats().TotalMisses() != 1 {
		t.Fatalf("stats: %+v", c.Stats())
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 1))
	c.Access(0, 0x1000)
	if r := c.Access(0, 0x103F); !r.Hit {
		t.Fatal("access within same 64B line missed")
	}
	if r := c.Access(0, 0x1040); r.Hit {
		t.Fatal("access to next line hit")
	}
}

func TestEvictionAfterAssociativityExceeded(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 1))
	// 4 sets, 64B lines: addresses with the same (addr/64)%4 collide.
	// Set 0: lines 0, 4, 8, ... -> addresses 0, 256, 512, ...
	for i := 0; i < 4; i++ {
		r := c.Access(0, uint64(i)*256)
		if r.Evicted {
			t.Fatalf("fill %d evicted despite invalid ways", i)
		}
	}
	r := c.Access(0, 4*256)
	if r.Hit || !r.Evicted {
		t.Fatalf("5th distinct line in set: %+v", r)
	}
	// LRU: the first line inserted is the victim.
	if c.Contains(0) {
		t.Error("LRU victim should be the oldest line")
	}
	if !c.Contains(4 * 256) {
		t.Error("newly inserted line missing")
	}
}

func TestOwnerTracking(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 2))
	c.Access(0, 0)   // core 0 fills set 0
	c.Access(1, 256) // core 1 fills set 0
	set, _ := c.Index(0)
	if got := c.OwnedCount(set, 0); got != 1 {
		t.Fatalf("core 0 owns %d lines, want 1", got)
	}
	if got := c.OwnedCount(set, 1); got != 1 {
		t.Fatalf("core 1 owns %d lines, want 1", got)
	}
	// A hit by the other core does not change ownership.
	c.Access(1, 0)
	if got := c.OwnedCount(set, 0); got != 1 {
		t.Fatalf("after foreign hit, core 0 owns %d lines, want 1", got)
	}
}

func TestOwnedMaskAndValidMask(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 2))
	c.Access(0, 0)
	c.Access(1, 256)
	set, _ := c.Index(0)
	vm := c.ValidMask(set)
	if vm.Count() != 2 {
		t.Fatalf("ValidMask count = %d", vm.Count())
	}
	om0 := c.OwnedMask(set, 0)
	om1 := c.OwnedMask(set, 1)
	if om0&om1 != 0 {
		t.Fatal("owner masks overlap")
	}
	if om0|om1 != vm {
		t.Fatal("owner masks do not cover valid lines")
	}
}

func TestOwnerReturnsMinusOneForInvalid(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 1))
	if got := c.Owner(0, 0); got != -1 {
		t.Fatalf("Owner of invalid line = %d, want -1", got)
	}
}

type fixedSelector struct{ way int }

func (s fixedSelector) SelectVictim(c *Cache, set, core int) int { return s.way }

func TestVictimSelectorPluggable(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 1))
	c.SetVictimSelector(fixedSelector{way: 2})
	addrs := []uint64{0, 256, 512, 768} // fill set 0
	for _, a := range addrs {
		c.Access(0, a)
	}
	c.Access(0, 1024) // miss -> victim must be way 2 (holding 512)
	if c.Contains(512) {
		t.Error("fixed selector ignored: 512 still present")
	}
	for _, a := range []uint64{0, 256, 768, 1024} {
		if !c.Contains(a) {
			t.Errorf("line %#x unexpectedly evicted", a)
		}
	}
	c.SetVictimSelector(nil) // restore default; must not panic
	c.Access(0, 2048)
}

func TestEvictedOwnerReported(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 2))
	for i := 0; i < 4; i++ {
		c.Access(0, uint64(i)*256) // core 0 fills set 0
	}
	r := c.Access(1, 4*256)
	if !r.Evicted || r.EvictedOwner != 0 {
		t.Fatalf("eviction result: %+v, want evicted owner 0", r)
	}
	if c.Stats().EvictedLines[0] != 1 {
		t.Fatalf("EvictedLines[0] = %d", c.Stats().EvictedLines[0])
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 1))
	c.Access(0, 0x40)
	c.ResetStats()
	if c.Stats().TotalAccesses() != 0 {
		t.Fatal("stats not reset")
	}
	if r := c.Access(0, 0x40); !r.Hit {
		t.Fatal("contents lost on stats reset")
	}
}

func TestIndexBijective(t *testing.T) {
	// Property: distinct line addresses map to distinct (set, tag) pairs.
	cfg := smallCfg(replacement.LRU, 1)
	c := New(cfg)
	f := func(a, b uint32) bool {
		la := uint64(a) << 6 // distinct lines
		lb := uint64(b) << 6
		if la == lb {
			return true
		}
		sa, ta := c.Index(la)
		sb, tb := c.Index(lb)
		return sa != sb || ta != tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllPoliciesRunWithoutViolations(t *testing.T) {
	// Smoke property for every policy: accesses never corrupt the cache
	// (total valid lines <= capacity, hits are truthful).
	for _, kind := range []replacement.Kind{replacement.LRU, replacement.NRU, replacement.BT, replacement.Random} {
		c := New(smallCfg(kind, 2))
		rng := xrand.New(uint64(kind) + 100)
		present := map[uint64]bool{} // our own model of "was inserted at some point"
		for i := 0; i < 5000; i++ {
			core := rng.Intn(2)
			addr := uint64(rng.Intn(64)) * 64
			r := c.Access(core, addr)
			if r.Hit && !present[addr>>6] {
				t.Fatalf("%v: hit on never-inserted line %#x", kind, addr)
			}
			present[addr>>6] = true
		}
		// Capacity check.
		totalValid := 0
		for s := 0; s < c.NumSets(); s++ {
			totalValid += c.ValidMask(s).Count()
		}
		if totalValid > c.NumSets()*c.Config().Ways {
			t.Fatalf("%v: %d valid lines exceed capacity", kind, totalValid)
		}
	}
}

func TestHitRateImprovesWithSize(t *testing.T) {
	// Sanity: for a working set between the two sizes, the bigger cache
	// hits more. Exercises the full access path end to end.
	run := func(size int) float64 {
		c := New(Config{Name: "t", SizeBytes: size, LineBytes: 64, Ways: 4,
			Policy: replacement.LRU, Cores: 1, Seed: 1})
		rng := xrand.New(7)
		const lines = 96 // 96*64 = 6KB working set
		for i := 0; i < 30000; i++ {
			c.Access(0, uint64(rng.Intn(lines))*64)
		}
		s := c.Stats()
		return float64(s.TotalHits()) / float64(s.TotalAccesses())
	}
	small := run(4 * 1024)
	big := run(16 * 1024)
	if big <= small {
		t.Fatalf("hit rate did not improve with size: %v -> %v", small, big)
	}
}

func TestAccessPanicsOnBadCore(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range core")
		}
	}()
	c.Access(2, 0)
}
