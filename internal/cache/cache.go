// Package cache models a set-associative cache with pluggable replacement
// and victim selection. One Cache type serves as both the private L1 data
// caches and the shared L2 of the paper's CMP: the L2 additionally tracks
// the owner core of every line (the paper's "owner core bits"), which the
// per-set-counters enforcement scheme consults.
//
// Victim selection on a miss is delegated to a VictimSelector so the
// partitioning enforcement logics (global replacement masks, per-set owner
// counters, BT up/down vectors — implemented in internal/core) can plug in
// without the cache knowing about partitions.
package cache

import (
	"fmt"

	"repro/internal/replacement"
)

// Config describes a cache geometry and its replacement policy.
type Config struct {
	Name      string           // label used in stats output
	SizeBytes int              // total capacity
	LineBytes int              // line (block) size
	Ways      int              // associativity
	Policy    replacement.Kind // replacement policy family
	Cores     int              // number of sharer cores (1 for private)
	Seed      uint64           // seed for randomized policies
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %q: size, line and ways must be positive", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by line*ways", c.Name, c.SizeBytes)
	}
	if c.Cores <= 0 {
		return fmt.Errorf("cache %q: cores must be positive", c.Name)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Result reports the outcome of a single cache access.
type Result struct {
	Hit          bool
	Way          int    // way that now holds the line
	Evicted      bool   // a valid line was displaced
	EvictedOwner int    // owner core of the displaced line (when Evicted)
	Writeback    bool   // the displaced line was dirty
	EvictedAddr  uint64 // line-aligned address of the displaced line (when Evicted)
}

// VictimSelector chooses which way a missing core may replace in a set.
// Implementations receive the cache so they can inspect owner state.
type VictimSelector interface {
	SelectVictim(c *Cache, set, core int) int
}

// Observer receives every access outcome before the replacement state is
// updated. On a hit under LRU replacement, lruDist is the line's 1-based
// stack position (what Suh-style in-cache way counters sample); on a
// miss, lruDist is Ways()+1. Under non-LRU policies lruDist is 0.
type Observer interface {
	OnCacheAccess(core, set int, hit bool, lruDist int)
}

// defaultSelector implements unpartitioned replacement: any way is fair
// game and the policy picks.
type defaultSelector struct{}

func (defaultSelector) SelectVictim(c *Cache, set, core int) int {
	return c.Policy().Victim(set, core, replacement.Full(c.cfg.Ways))
}

// Stats aggregates per-core access counts.
type Stats struct {
	Accesses []uint64 // per core
	Hits     []uint64
	Misses   []uint64
	// EvictedLines[i] counts valid lines owned by core i that were
	// displaced (by any core); the difference between this and Misses
	// exposes inter-thread interference.
	EvictedLines []uint64
	// Writebacks[i] counts dirty lines owned by core i that were
	// displaced and had to be written downstream.
	Writebacks []uint64
}

func newStats(cores int) Stats {
	return Stats{
		Accesses:     make([]uint64, cores),
		Hits:         make([]uint64, cores),
		Misses:       make([]uint64, cores),
		EvictedLines: make([]uint64, cores),
		Writebacks:   make([]uint64, cores),
	}
}

// TotalAccesses sums accesses over cores.
func (s *Stats) TotalAccesses() uint64 { return sum(s.Accesses) }

// TotalHits sums hits over cores.
func (s *Stats) TotalHits() uint64 { return sum(s.Hits) }

// TotalMisses sums misses over cores.
func (s *Stats) TotalMisses() uint64 { return sum(s.Misses) }

// TotalWritebacks sums writebacks over cores.
func (s *Stats) TotalWritebacks() uint64 { return sum(s.Writebacks) }

func sum(xs []uint64) uint64 {
	var t uint64
	for _, x := range xs {
		t += x
	}
	return t
}

// Cache is a set-associative cache instance.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint

	tags  []uint64 // sets*ways
	valid []bool
	dirty []bool
	owner []int16 // core that filled the line

	pol      replacement.Policy
	selector VictimSelector
	observer Observer

	stats Stats
}

// New constructs a cache from the configuration. It panics on an invalid
// configuration: cache geometries are static experiment inputs, so a bad
// one is always a programming error.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: log2(cfg.LineBytes),
		tags:      make([]uint64, sets*cfg.Ways),
		valid:     make([]bool, sets*cfg.Ways),
		dirty:     make([]bool, sets*cfg.Ways),
		owner:     make([]int16, sets*cfg.Ways),
		pol:       replacement.New(cfg.Policy, sets, cfg.Ways, cfg.Cores, cfg.Seed),
		selector:  defaultSelector{},
		stats:     newStats(cfg.Cores),
	}
	return c
}

func log2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.sets }

// Policy exposes the replacement policy (the CPA wiring needs the concrete
// policy for profiling and enforcement).
func (c *Cache) Policy() replacement.Policy { return c.pol }

// SetVictimSelector installs the victim selection strategy; nil restores
// the unpartitioned default.
func (c *Cache) SetVictimSelector(s VictimSelector) {
	if s == nil {
		c.selector = defaultSelector{}
		return
	}
	c.selector = s
}

// SetObserver installs an access observer (nil removes it).
func (c *Cache) SetObserver(o Observer) { c.observer = o }

// Stats returns a pointer to the live statistics.
func (c *Cache) Stats() *Stats { return &c.stats }

// ResetStats zeroes the statistics without disturbing cache contents.
func (c *Cache) ResetStats() { c.stats = newStats(c.cfg.Cores) }

// Index splits a byte address into (set, tag).
func (c *Cache) Index(addr uint64) (set int, tag uint64) {
	line := addr >> c.lineShift
	return int(line % uint64(c.sets)), line / uint64(c.sets)
}

// Access performs a read access by `core` to byte address `addr`.
func (c *Cache) Access(core int, addr uint64) Result {
	return c.AccessRW(core, addr, false)
}

// AccessRW performs a cache access, marking the line dirty when `write`
// is set, and reports any dirty eviction (writeback) it caused.
func (c *Cache) AccessRW(core int, addr uint64, write bool) Result {
	if core < 0 || core >= c.cfg.Cores {
		panic(fmt.Sprintf("cache %q: core %d out of range", c.cfg.Name, core))
	}
	set, tag := c.Index(addr)
	base := set * c.cfg.Ways
	c.stats.Accesses[core]++

	// Hit path: a thread may hit in any way regardless of partitions.
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.stats.Hits[core]++
			if c.observer != nil {
				dist := 0
				if lru, ok := c.pol.(*replacement.LRUPolicy); ok {
					dist = lru.Dist(set, w)
				}
				c.observer.OnCacheAccess(core, set, true, dist)
			}
			c.pol.Touch(set, w, core)
			if write {
				c.dirty[base+w] = true
			}
			return Result{Hit: true, Way: w}
		}
	}

	// Miss path.
	c.stats.Misses[core]++
	if c.observer != nil {
		c.observer.OnCacheAccess(core, set, false, c.cfg.Ways+1)
	}
	res := Result{Hit: false}

	// Fill an invalid way first if one exists.
	way := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[base+w] {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.selector.SelectVictim(c, set, core)
		if way < 0 || way >= c.cfg.Ways {
			panic(fmt.Sprintf("cache %q: selector returned invalid way %d", c.cfg.Name, way))
		}
		res.Evicted = true
		res.EvictedOwner = int(c.owner[base+way])
		c.stats.EvictedLines[res.EvictedOwner]++
		res.EvictedAddr = (c.tags[base+way]*uint64(c.sets) + uint64(set)) << c.lineShift
		if c.dirty[base+way] {
			res.Writeback = true
			c.stats.Writebacks[res.EvictedOwner]++
		}
	}

	c.tags[base+way] = tag
	c.valid[base+way] = true
	c.dirty[base+way] = write
	c.owner[base+way] = int16(core)
	// A miss-fill is a Fill, not a Touch: the adaptive policies (AWRP,
	// ARC) distinguish insertion from reuse, and ARC's ghost history
	// recognizes returning lines by signature. The tag is the line's
	// identity within the set, so folding it to a byte gives a stable
	// signature; for the static policies Fill is defined as Touch and
	// nothing changes.
	c.pol.Fill(set, way, core, uint8(tag^tag>>8^tag>>16^tag>>24))
	res.Way = way
	return res
}

// Contains reports whether addr is present (for tests and examples).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.Index(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Owner returns the owner core of (set, way), or -1 if the line is
// invalid.
func (c *Cache) Owner(set, way int) int {
	if !c.valid[set*c.cfg.Ways+way] {
		return -1
	}
	return int(c.owner[set*c.cfg.Ways+way])
}

// OwnedMask returns the mask of valid ways in `set` owned by `core`.
func (c *Cache) OwnedMask(set, core int) replacement.WayMask {
	base := set * c.cfg.Ways
	var m replacement.WayMask
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && int(c.owner[base+w]) == core {
			m = m.With(w)
		}
	}
	return m
}

// OwnedCount returns the number of valid lines in `set` owned by `core` —
// the paper's per-set counter value (N counters of log2(A) bits per set).
func (c *Cache) OwnedCount(set, core int) int {
	return c.OwnedMask(set, core).Count()
}

// ValidMask returns the mask of valid ways in `set`.
func (c *Cache) ValidMask(set int) replacement.WayMask {
	base := set * c.cfg.Ways
	var m replacement.WayMask
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] {
			m = m.With(w)
		}
	}
	return m
}
