package cache

import (
	"testing"

	"repro/internal/replacement"
)

func TestWriteMarksDirty(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 1))
	c.AccessRW(0, 0, true) // write-allocate, dirty
	// Fill the set; evicting the dirty line must report a writeback.
	for i := 1; i < 4; i++ {
		c.Access(0, uint64(i)*256)
	}
	r := c.Access(0, 4*256) // evicts LRU = the dirty line
	if !r.Evicted || !r.Writeback {
		t.Fatalf("dirty eviction not reported: %+v", r)
	}
	if c.Stats().TotalWritebacks() != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().TotalWritebacks())
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 1))
	for i := 0; i < 5; i++ {
		c.Access(0, uint64(i)*256) // reads only
	}
	if c.Stats().TotalWritebacks() != 0 {
		t.Fatal("clean evictions produced writebacks")
	}
}

func TestWriteHitDirtiesExistingLine(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 1))
	c.Access(0, 0)         // clean fill
	c.AccessRW(0, 0, true) // write hit -> dirty
	for i := 1; i < 5; i++ {
		c.Access(0, uint64(i)*256)
	}
	if c.Stats().TotalWritebacks() != 1 {
		t.Fatalf("write-hit line eviction: writebacks = %d, want 1", c.Stats().TotalWritebacks())
	}
}

func TestEvictedAddrRoundTrips(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 1))
	const victim = uint64(0x1500) // line 0x54, set (0x54 % 4) = 0
	c.AccessRW(0, victim, true)
	set, _ := c.Index(victim)
	// Fill the same set until the victim is evicted.
	var r Result
	for i := 0; i < 8; i++ {
		addr := uint64(i*4+set) * 64
		if addr>>6 == victim>>6 {
			continue
		}
		r = c.Access(0, addr)
		if r.Evicted && r.Writeback {
			break
		}
	}
	if !r.Writeback {
		t.Fatal("victim never evicted")
	}
	if r.EvictedAddr>>6 != victim>>6 {
		t.Fatalf("EvictedAddr %#x does not match victim line %#x", r.EvictedAddr, victim)
	}
}

func TestWritebackAttributedToOwner(t *testing.T) {
	c := New(smallCfg(replacement.LRU, 2))
	c.AccessRW(0, 0, true) // core 0's dirty line
	for i := 1; i < 5; i++ {
		c.Access(1, uint64(i)*256) // core 1 evicts it
	}
	if c.Stats().Writebacks[0] != 1 || c.Stats().Writebacks[1] != 0 {
		t.Fatalf("writeback attribution: %v", c.Stats().Writebacks)
	}
}
