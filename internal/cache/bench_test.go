package cache

import (
	"testing"

	"repro/internal/replacement"
	"repro/internal/xrand"
)

func benchAccess(b *testing.B, kind replacement.Kind) {
	b.Helper()
	c := New(Config{
		Name: "L2", SizeBytes: 2 << 20, LineBytes: 128, Ways: 16,
		Policy: kind, Cores: 2, Seed: 1,
	})
	rng := xrand.New(7)
	addrs := make([]uint64, 1<<14)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(40000)) * 128
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(i&1, addrs[i&(1<<14-1)])
	}
}

func BenchmarkAccessLRU(b *testing.B)    { benchAccess(b, replacement.LRU) }
func BenchmarkAccessNRU(b *testing.B)    { benchAccess(b, replacement.NRU) }
func BenchmarkAccessBT(b *testing.B)     { benchAccess(b, replacement.BT) }
func BenchmarkAccessRandom(b *testing.B) { benchAccess(b, replacement.Random) }
