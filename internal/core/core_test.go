package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/partition"
	"repro/internal/replacement"
	"repro/internal/xrand"
)

func l2Config(kind replacement.Kind, cores, sets, ways int) cache.Config {
	return cache.Config{
		Name:      "L2",
		SizeBytes: sets * ways * 64,
		LineBytes: 64,
		Ways:      ways,
		Policy:    kind,
		Cores:     cores,
		Seed:      9,
	}
}

func mustSystem(t *testing.T, acr string, l2 *cache.Cache, interval uint64) *System {
	t.Helper()
	cfg, err := ParseAcronym(acr)
	if err != nil {
		t.Fatalf("ParseAcronym(%q): %v", acr, err)
	}
	cfg.SampleRate = 1
	cfg.Interval = interval
	sys, err := NewSystem(cfg, l2)
	if err != nil {
		t.Fatalf("NewSystem(%q): %v", acr, err)
	}
	return sys
}

func TestParseAcronyms(t *testing.T) {
	cases := []struct {
		in     string
		enf    Enforcement
		policy replacement.Kind
		scale  float64
	}{
		{"C-L", EnforceCounters, replacement.LRU, 0},
		{"M-L", EnforceMasks, replacement.LRU, 0},
		{"M-1.0N", EnforceMasks, replacement.NRU, 1.0},
		{"M-0.75N", EnforceMasks, replacement.NRU, 0.75},
		{"M-0.5N", EnforceMasks, replacement.NRU, 0.5},
		{"M-BT", EnforceUpDown, replacement.BT, 0},
	}
	for _, c := range cases {
		cfg, err := ParseAcronym(c.in)
		if err != nil {
			t.Fatalf("ParseAcronym(%q): %v", c.in, err)
		}
		if cfg.Enforcement != c.enf || cfg.Policy != c.policy {
			t.Errorf("%q: got %v/%v", c.in, cfg.Enforcement, cfg.Policy)
		}
		if c.policy == replacement.NRU && cfg.NRUScale != c.scale {
			t.Errorf("%q: scale %v, want %v", c.in, cfg.NRUScale, c.scale)
		}
		if cfg.Interval != 1_000_000 || cfg.SampleRate != 32 {
			t.Errorf("%q: paper defaults not applied", c.in)
		}
	}
	for _, bad := range []string{"", "X-L", "M-", "M-2Q", "CL"} {
		if _, err := ParseAcronym(bad); err == nil {
			t.Errorf("ParseAcronym(%q) accepted", bad)
		}
	}
}

func TestStandardConfigsOrder(t *testing.T) {
	cfgs := StandardConfigs()
	want := []string{"C-L", "M-L", "M-1.0N", "M-0.75N", "M-0.5N", "M-BT"}
	if len(cfgs) != len(want) {
		t.Fatalf("got %d configs", len(cfgs))
	}
	for i, w := range want {
		if cfgs[i].Acronym != w {
			t.Errorf("config %d = %q, want %q", i, cfgs[i].Acronym, w)
		}
	}
}

func TestValidateRejectsMismatches(t *testing.T) {
	if (Config{Enforcement: EnforceUpDown, Policy: replacement.LRU}).Validate() == nil {
		t.Error("up/down with LRU accepted")
	}
	bad := Config{Enforcement: EnforceMasks, Policy: replacement.NRU, NRUScale: 2,
		SampleRate: 1, Interval: 10}
	if bad.Validate() == nil {
		t.Error("NRU scale 2 accepted")
	}
	l2 := cache.New(l2Config(replacement.LRU, 2, 4, 8))
	cfg, _ := ParseAcronym("M-BT")
	if _, err := NewSystem(cfg, l2); err == nil {
		t.Error("policy mismatch between config and L2 accepted")
	}
}

func TestInitialPartitionIsFair(t *testing.T) {
	l2 := cache.New(l2Config(replacement.LRU, 2, 4, 8))
	sys := mustSystem(t, "M-L", l2, 1000)
	alloc := sys.Allocation()
	if alloc[0] != 4 || alloc[1] != 4 {
		t.Fatalf("initial allocation %v, want [4 4]", alloc)
	}
}

func TestTickRepartitionsAtBoundary(t *testing.T) {
	l2 := cache.New(l2Config(replacement.LRU, 2, 4, 8))
	sys := mustSystem(t, "M-L", l2, 1000)
	sys.Tick(999)
	if sys.Repartitions() != 0 {
		t.Fatal("repartitioned before boundary")
	}
	sys.Tick(1000)
	if sys.Repartitions() != 1 {
		t.Fatal("did not repartition at boundary")
	}
	sys.Tick(1500)
	if sys.Repartitions() != 1 {
		t.Fatal("spurious repartition inside interval")
	}
	sys.Tick(5000) // skipped several boundaries -> single catch-up repartition
	if sys.Repartitions() != 2 {
		t.Fatalf("repartitions = %d, want 2", sys.Repartitions())
	}
	sys.Tick(6000)
	if sys.Repartitions() != 3 {
		t.Fatalf("repartitions = %d, want 3", sys.Repartitions())
	}
}

// driveWorkload runs a simple two-thread scenario: core 0 re-uses a small
// hot set, core 1 streams. Returns the system after `n` accesses per core.
func driveWorkload(t *testing.T, acr string, kind replacement.Kind, n int) (*cache.Cache, *System) {
	t.Helper()
	const sets, ways = 8, 8
	l2 := cache.New(l2Config(kind, 2, sets, ways))
	sys := mustSystem(t, acr, l2, 200)
	rng := xrand.New(1)
	var cycle uint64
	stream := uint64(1 << 30)
	for i := 0; i < n; i++ {
		// Core 0: hot working set of 2 lines per set.
		hot := uint64(rng.Intn(sets*2)) * 64
		sys.OnAccess(0, hot)
		l2.Access(0, hot)
		// Core 1: pure streaming, never reuses.
		sys.OnAccess(1, stream)
		l2.Access(1, stream)
		stream += 64
		cycle += 10
		sys.Tick(cycle)
	}
	return l2, sys
}

func TestMinMissesStarvesStreamingThread(t *testing.T) {
	// The streaming thread's miss curve is flat, so MinMisses should give
	// it the minimum single way and the reuse thread the rest.
	for _, tc := range []struct {
		acr  string
		kind replacement.Kind
	}{
		{"M-L", replacement.LRU},
		{"C-L", replacement.LRU},
		{"M-0.75N", replacement.NRU},
	} {
		_, sys := driveWorkload(t, tc.acr, tc.kind, 3000)
		alloc := sys.Allocation()
		if alloc[1] > 2 {
			t.Errorf("%s: streaming thread got %d ways (%v), want <= 2", tc.acr, alloc[1], alloc)
		}
		if alloc[0] < alloc[1] {
			t.Errorf("%s: reuse thread got fewer ways than streamer: %v", tc.acr, alloc)
		}
	}
	// M-BT cannot express an asymmetric 2-thread split of 8 ways: the
	// only buddy composition is [4 4] (the coarseness documented in
	// DESIGN.md §4.3). Verify exactly that.
	_, sys := driveWorkload(t, "M-BT", replacement.BT, 3000)
	alloc := sys.Allocation()
	if alloc[0] != 4 || alloc[1] != 4 {
		t.Errorf("M-BT: allocation %v, want the forced [4 4]", alloc)
	}
}

func TestMaskEnforcementConfinesEvictions(t *testing.T) {
	const sets, ways = 4, 8
	l2 := cache.New(l2Config(replacement.LRU, 2, sets, ways))
	sys := mustSystem(t, "M-L", l2, 100)
	// Fill the cache completely with core 0's lines.
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			l2.Access(0, uint64(w*sets+s)*64)
		}
	}
	sys.Repartition(0)
	masks := sys.Masks()
	// Now every miss by core 1 must evict within masks[1].
	next := uint64(1 << 20)
	for i := 0; i < 200; i++ {
		r := l2.Access(1, next)
		if !r.Hit && !masks[1].Has(r.Way) {
			t.Fatalf("core 1 filled way %d outside its mask %v", r.Way, masks[1])
		}
		next += 64
	}
}

func TestUpDownEnforcementConfinesEvictions(t *testing.T) {
	const sets, ways = 4, 8
	l2 := cache.New(l2Config(replacement.BT, 2, sets, ways))
	sys := mustSystem(t, "M-BT", l2, 100)
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			l2.Access(0, uint64(w*sets+s)*64)
		}
	}
	sys.Repartition(0)
	masks := sys.Masks()
	next := uint64(1 << 20)
	for i := 0; i < 200; i++ {
		r := l2.Access(1, next)
		if !r.Hit && !masks[1].Has(r.Way) {
			t.Fatalf("core 1 filled way %d outside its block %v", r.Way, masks[1])
		}
		next += 64
	}
}

func TestUpDownAllocationsArePowersOfTwo(t *testing.T) {
	_, sys := driveWorkload(t, "M-BT", replacement.BT, 2000)
	for _, w := range sys.Allocation() {
		if w&(w-1) != 0 {
			t.Fatalf("BT allocation %v contains non-power-of-two share", sys.Allocation())
		}
	}
}

func TestCounterEnforcementQuotaBehavior(t *testing.T) {
	const sets, ways = 1, 4
	l2 := cache.New(l2Config(replacement.LRU, 2, sets, ways))
	cfg, _ := ParseAcronym("C-L")
	cfg.SampleRate = 1
	cfg.Interval = 1 << 62 // never repartition: keep the fair 2/2 split
	sys, err := NewSystem(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	_ = sys
	// Core 0 fills the whole set (4 lines; quota is 2).
	for i := 0; i < 4; i++ {
		l2.Access(0, uint64(i*sets)*64)
	}
	// Core 1 misses: it is under quota, so it must steal from core 0.
	r := l2.Access(1, uint64(100*sets)*64)
	if r.Hit || !r.Evicted || r.EvictedOwner != 0 {
		t.Fatalf("under-quota miss should evict core 0's line: %+v", r)
	}
	// Another core 1 miss: still under/at quota boundary -> steal again.
	r = l2.Access(1, uint64(101*sets)*64)
	if r.EvictedOwner != 0 {
		t.Fatalf("second miss should still evict core 0 (owner %d)", r.EvictedOwner)
	}
	// Core 1 now owns 2 lines (its quota). Further misses replace its own.
	r = l2.Access(1, uint64(102*sets)*64)
	if r.EvictedOwner != 1 {
		t.Fatalf("at-quota miss must self-replace, evicted owner %d", r.EvictedOwner)
	}
}

func TestNonPartitionedSystemIsTransparent(t *testing.T) {
	l2 := cache.New(l2Config(replacement.LRU, 2, 4, 8))
	sys, err := NewSystem(Config{Acronym: "none", Enforcement: EnforceNone,
		Policy: replacement.LRU}, l2)
	if err != nil {
		t.Fatal(err)
	}
	sys.OnAccess(0, 0) // must not panic with no monitors
	sys.Tick(1 << 40)  // must not repartition
	if sys.Repartitions() != 0 {
		t.Fatal("non-partitioned system repartitioned")
	}
	if sys.Allocation() != nil {
		t.Fatal("non-partitioned system has an allocation")
	}
}

func TestRepartitionCallback(t *testing.T) {
	l2 := cache.New(l2Config(replacement.LRU, 2, 4, 8))
	sys := mustSystem(t, "M-L", l2, 100)
	var calls int
	var lastAlloc partition.Allocation
	sys.OnRepartition = func(cycle uint64, alloc partition.Allocation) {
		calls++
		lastAlloc = alloc
	}
	sys.Tick(100)
	sys.Tick(200)
	if calls != 2 {
		t.Fatalf("callback called %d times, want 2", calls)
	}
	if !lastAlloc.Valid(8) {
		t.Fatalf("callback allocation invalid: %v", lastAlloc)
	}
}

func TestSDHHalvedAtBoundary(t *testing.T) {
	l2 := cache.New(l2Config(replacement.LRU, 2, 4, 8))
	sys := mustSystem(t, "M-L", l2, 100)
	for i := 0; i < 64; i++ {
		sys.OnAccess(0, uint64(i)*64*4) // all map to sampled sets (rate 1)
	}
	before := sys.Monitors()[0].SDH().Total()
	if before == 0 {
		t.Fatal("no profile recorded")
	}
	sys.Tick(100)
	after := sys.Monitors()[0].SDH().Total()
	if after >= before {
		t.Fatalf("SDH not aged: %d -> %d", before, after)
	}
}

func TestLookaheadConfig(t *testing.T) {
	l2 := cache.New(l2Config(replacement.LRU, 2, 4, 8))
	cfg, _ := ParseAcronym("M-L")
	cfg.SampleRate = 1
	cfg.Interval = 100
	cfg.UseLookahead = true
	sys, err := NewSystem(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	sys.Tick(100)
	if !sys.Allocation().Valid(8) {
		t.Fatalf("lookahead allocation invalid: %v", sys.Allocation())
	}
}
