package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/replacement"
	"repro/internal/xrand"
)

func TestInCacheProfilingConfig(t *testing.T) {
	cfg, _ := ParseAcronym("M-L")
	cfg.InCacheProfiling = true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("in-cache LRU config rejected: %v", err)
	}
	bad, _ := ParseAcronym("M-0.75N")
	bad.InCacheProfiling = true
	if bad.Validate() == nil {
		t.Fatal("in-cache profiling with NRU accepted")
	}
}

func TestInCacheProfilingDrivesPartitioning(t *testing.T) {
	const sets, ways = 8, 8
	l2 := cache.New(l2Config(replacement.LRU, 2, sets, ways))
	cfg, _ := ParseAcronym("M-L")
	cfg.SampleRate = 1
	cfg.Interval = 300
	cfg.InCacheProfiling = true
	sys, err := NewSystem(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Monitors() != nil {
		t.Fatal("ATD monitors built despite in-cache profiling")
	}
	rng := xrand.New(4)
	stream := uint64(1 << 30)
	var cycle uint64
	for i := 0; i < 6000; i++ {
		hot := uint64(rng.Intn(sets*2)) * 64
		l2.Access(0, hot) // observer feeds the profiler inside the cache
		l2.Access(1, stream)
		stream += 64
		cycle += 10
		sys.Tick(cycle)
	}
	alloc := sys.Allocation()
	if !alloc.Valid(ways) {
		t.Fatalf("invalid allocation %v", alloc)
	}
	if alloc[0] <= alloc[1] {
		t.Fatalf("in-cache profiling failed to favor the reuse thread: %v", alloc)
	}
}
