package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/replacement"
	"repro/internal/xrand"
)

func TestGoalString(t *testing.T) {
	for g, want := range map[Goal]string{
		GoalMinMisses: "MinMisses", GoalThroughput: "Throughput",
		GoalFair: "Fair", GoalQoS: "QoS",
	} {
		if g.String() != want {
			t.Errorf("Goal %d -> %q", int(g), g.String())
		}
	}
}

func TestQoSConfigValidation(t *testing.T) {
	cfg, _ := ParseAcronym("M-L")
	cfg.Goal = GoalQoS
	cfg.QoSTarget = 0.5
	if cfg.Validate() == nil {
		t.Fatal("QoSTarget < 1 accepted")
	}
	cfg.QoSTarget = 1.2
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid QoS config rejected: %v", err)
	}
}

// fakePerf supplies fixed per-core interval stats.
type fakePerf struct {
	insts  []uint64
	cycles []float64
}

func (f *fakePerf) PerfSince(core int) (uint64, float64) {
	return f.insts[core], f.cycles[core]
}

// driveGoal runs a two-thread scenario (core 0 reuses, core 1 streams)
// under a given goal and returns the final allocation.
func driveGoal(t *testing.T, goal Goal, qos float64) []int {
	t.Helper()
	const sets, ways = 8, 8
	l2 := cache.New(l2Config(replacement.LRU, 2, sets, ways))
	cfg, _ := ParseAcronym("M-L")
	cfg.SampleRate = 1
	cfg.Interval = 300
	cfg.Goal = goal
	cfg.QoSTarget = qos
	sys, err := NewSystem(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	// Perf feedback: core 0 is slow (memory bound), core 1 fast.
	sys.SetPerfSource(&fakePerf{
		insts:  []uint64{10000, 10000},
		cycles: []float64{40000, 10000},
	})
	rng := xrand.New(2)
	stream := uint64(1 << 30)
	var cycle uint64
	for i := 0; i < 4000; i++ {
		hot := uint64(rng.Intn(sets*4)) * 64
		sys.OnAccess(0, hot)
		l2.Access(0, hot)
		sys.OnAccess(1, stream)
		l2.Access(1, stream)
		stream += 64
		cycle += 10
		sys.Tick(cycle)
	}
	return sys.Allocation()
}

func TestGoalThroughputFavorsReuseThread(t *testing.T) {
	alloc := driveGoal(t, GoalThroughput, 0)
	if alloc[0] <= alloc[1] {
		t.Fatalf("throughput goal gave the streamer more ways: %v", alloc)
	}
}

func TestGoalFairProducesValidAllocation(t *testing.T) {
	alloc := driveGoal(t, GoalFair, 0)
	if alloc[0]+alloc[1] != 8 || alloc[0] < 1 || alloc[1] < 1 {
		t.Fatalf("fair goal allocation invalid: %v", alloc)
	}
}

func TestGoalQoSProducesValidAllocation(t *testing.T) {
	alloc := driveGoal(t, GoalQoS, 1.05)
	if alloc[0]+alloc[1] != 8 || alloc[0] < 1 || alloc[1] < 1 {
		t.Fatalf("QoS goal allocation invalid: %v", alloc)
	}
}

func TestGoalWithoutPerfSourceFallsBack(t *testing.T) {
	// No PerfSource: IPC goals silently use MinMisses (documented).
	const sets, ways = 4, 8
	l2 := cache.New(l2Config(replacement.LRU, 2, sets, ways))
	cfg, _ := ParseAcronym("M-L")
	cfg.SampleRate = 1
	cfg.Interval = 100
	cfg.Goal = GoalThroughput
	sys, err := NewSystem(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	sys.Tick(100)
	if !sys.Allocation().Valid(ways) {
		t.Fatalf("fallback allocation invalid: %v", sys.Allocation())
	}
}

func TestRoundToBuddy(t *testing.T) {
	cases := []struct {
		ideal []int
		ways  int
	}{
		{[]int{10, 6}, 16},
		{[]int{13, 1, 1, 1}, 16},
		{[]int{5, 5, 6}, 16},
		{[]int{1, 1}, 2},
		{[]int{3, 3, 1, 1}, 8},
	}
	for _, c := range cases {
		got := roundToBuddy(c.ideal, c.ways)
		if !got.Valid(c.ways) {
			t.Errorf("roundToBuddy(%v, %d) = %v invalid", c.ideal, c.ways, got)
			continue
		}
		for _, s := range got {
			if s&(s-1) != 0 {
				t.Errorf("roundToBuddy(%v, %d) = %v has non-power-of-two share",
					c.ideal, c.ways, got)
			}
		}
	}
}

func TestGoalBTUpdownUsesBuddyShares(t *testing.T) {
	const sets, ways = 8, 8
	l2 := cache.New(l2Config(replacement.BT, 2, sets, ways))
	cfg, _ := ParseAcronym("M-BT")
	cfg.SampleRate = 1
	cfg.Interval = 300
	cfg.Goal = GoalThroughput
	sys, err := NewSystem(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetPerfSource(&fakePerf{
		insts:  []uint64{10000, 10000},
		cycles: []float64{40000, 10000},
	})
	sys.Tick(300)
	for _, s := range sys.Allocation() {
		if s&(s-1) != 0 {
			t.Fatalf("BT goal allocation %v not buddy-constrained", sys.Allocation())
		}
	}
}
