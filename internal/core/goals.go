package core

import (
	"fmt"

	"repro/internal/partition"
)

// Goal selects what the partitioner optimizes. The paper's evaluation
// uses MinMisses; §I and §II-B note that the same infrastructure serves
// throughput, fairness and QoS targets (FlexDCP [14]) — these goals are
// implemented as extensions and exercised by the ablation benchmarks.
type Goal int

// Partitioning goals.
const (
	// GoalMinMisses minimizes total predicted misses (the paper's
	// evaluation setting).
	GoalMinMisses Goal = iota
	// GoalThroughput maximizes Σ predicted IPC.
	GoalThroughput
	// GoalFair minimizes the maximum predicted slowdown.
	GoalFair
	// GoalQoS guarantees thread 0 a slowdown bound, then maximizes the
	// rest (QoSTarget in Config).
	GoalQoS
)

// String names the goal.
func (g Goal) String() string {
	switch g {
	case GoalMinMisses:
		return "MinMisses"
	case GoalThroughput:
		return "Throughput"
	case GoalFair:
		return "Fair"
	case GoalQoS:
		return "QoS"
	default:
		return fmt.Sprintf("Goal(%d)", int(g))
	}
}

// PerfSource supplies the per-core performance observed since the
// previous repartition — the architectural counters the IPC-estimating
// goals need. The CMP simulator implements it.
type PerfSource interface {
	// PerfSince returns the instructions and cycles core `core` consumed
	// since the last call for that core.
	PerfSince(core int) (insts uint64, cycles float64)
}

// SetPerfSource installs the performance feedback used by the IPC-based
// goals. Without one, those goals fall back to MinMisses.
func (s *System) SetPerfSource(p PerfSource) { s.perf = p }

// goalAllocate computes an allocation for the configured goal. Called by
// Repartition with the current miss curves.
func (s *System) goalAllocate(curves [][]uint64) partition.Allocation {
	if s.cfg.Goal == GoalMinMisses || s.perf == nil {
		if s.cfg.Enforcement == EnforceUpDown {
			return partition.BuddyMinMisses(curves, s.ways)
		}
		return s.algo.Allocate(curves, s.ways)
	}

	ipcCurves := make([][]float64, s.cores)
	for i := range ipcCurves {
		insts, cycles := s.perf.PerfSince(i)
		cur := 1
		if s.alloc != nil {
			cur = s.alloc[i]
		}
		est := partition.IPCEstimate{
			Insts:          insts,
			Cycles:         cycles,
			CurrentWays:    cur,
			MissPenaltyCyc: float64(s.cfg.MissPenalty),
			SampleScale:    float64(s.cfg.SampleRate),
		}
		ipcCurves[i] = est.Curve(curves[i], s.ways)
	}
	var alloc partition.Allocation
	switch s.cfg.Goal {
	case GoalThroughput:
		alloc = partition.MaxThroughput{}.AllocateIPC(ipcCurves, s.ways)
	case GoalFair:
		alloc = partition.FairSlowdown{}.AllocateIPC(ipcCurves, s.ways)
	case GoalQoS:
		alloc = partition.QoS{MaxSlowdown: s.cfg.QoSTarget}.AllocateIPC(ipcCurves, s.ways)
	default:
		alloc = s.algo.Allocate(curves, s.ways)
	}
	if s.cfg.Enforcement == EnforceUpDown {
		// The BT hardware can only enforce buddy shares: round the goal
		// allocation to the nearest feasible buddy partition by treating
		// it as a miss-curve preference (shares closest to the ideal).
		alloc = roundToBuddy(alloc, s.ways)
	}
	return alloc
}

// roundToBuddy converts an arbitrary allocation into power-of-two shares
// summing to ways, staying as close as possible to the ideal (largest
// remainder on the log scale).
func roundToBuddy(ideal partition.Allocation, ways int) partition.Allocation {
	n := len(ideal)
	alloc := make(partition.Allocation, n)
	total := 0
	for i, w := range ideal {
		p := 1
		for p*2 <= w {
			p *= 2
		}
		alloc[i] = p
		total += p
	}
	// Grow the thread whose ideal is furthest above its share while the
	// doubling still fits; shrink the one furthest below if over budget.
	for total < ways {
		best, bestGap := -1, -1.0
		for i := range alloc {
			if total+alloc[i] > ways {
				continue
			}
			gap := float64(ideal[i]) / float64(alloc[i])
			if gap > bestGap {
				bestGap, best = gap, i
			}
		}
		if best < 0 {
			break
		}
		total += alloc[best]
		alloc[best] *= 2
	}
	for total > ways {
		best, bestGap := -1, -1.0
		for i := range alloc {
			if alloc[i] == 1 {
				continue
			}
			gap := float64(alloc[i]) / float64(ideal[i])
			if gap > bestGap {
				bestGap, best = gap, i
			}
		}
		if best < 0 {
			break
		}
		total -= alloc[best] / 2
		alloc[best] /= 2
	}
	if total != ways {
		// Extremely skewed inputs: fall back to an even buddy split.
		flat := make([][]uint64, n)
		for i := range flat {
			flat[i] = make([]uint64, ways+1)
		}
		return partition.BuddyMinMisses(flat, ways)
	}
	return alloc
}
