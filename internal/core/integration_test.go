package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/partition"
	"repro/internal/replacement"
	"repro/internal/xrand"
)

// TestOccupancyConvergesToAllocation drives a fully saturated cache with
// a frozen partition and verifies that, in steady state, each core's
// per-set occupancy converges to its allocated share — the point of the
// enforcement logic.
func TestOccupancyConvergesToAllocation(t *testing.T) {
	for _, tc := range []struct {
		acr  string
		kind replacement.Kind
	}{
		{"M-L", replacement.LRU},
		{"C-L", replacement.LRU},
		{"M-0.75N", replacement.NRU},
		{"M-BT", replacement.BT},
	} {
		const sets, ways = 8, 8
		l2 := cache.New(l2Config(tc.kind, 2, sets, ways))
		cfg, err := ParseAcronym(tc.acr)
		if err != nil {
			t.Fatal(err)
		}
		cfg.SampleRate = 1
		cfg.Interval = 1 << 62 // freeze the initial fair 4/4 split
		sys, err := NewSystem(cfg, l2)
		if err != nil {
			t.Fatal(err)
		}
		alloc := sys.Allocation()

		// Both cores stream misses forever (distinct address spaces).
		rng := xrand.New(5)
		next := [2]uint64{0, 1 << 40}
		for i := 0; i < 40000; i++ {
			c := rng.Intn(2)
			l2.Access(c, next[c])
			next[c] += 64
		}
		for s := 0; s < sets; s++ {
			for c := 0; c < 2; c++ {
				got := l2.OwnedCount(s, c)
				if got != alloc[c] {
					t.Errorf("%s: set %d core %d owns %d lines, allocation %d",
						tc.acr, s, c, got, alloc[c])
				}
			}
		}
	}
}

// TestHitsOutsidePartitionStillAllowed verifies the paper's rule that a
// thread may HIT in any way — only evictions are restricted.
func TestHitsOutsidePartitionStillAllowed(t *testing.T) {
	const sets, ways = 4, 8
	l2 := cache.New(l2Config(replacement.LRU, 2, sets, ways))
	cfg, _ := ParseAcronym("M-L")
	cfg.SampleRate = 1
	cfg.Interval = 1 << 62
	if _, err := NewSystem(cfg, l2); err != nil {
		t.Fatal(err)
	}
	// Core 0 fills a line; it lands inside core 0's mask {0..3}.
	addr := uint64(0)
	l2.Access(0, addr)
	// Core 1 must be able to hit that line even though it is outside
	// core 1's mask.
	if r := l2.Access(1, addr); !r.Hit {
		t.Fatal("cross-partition hit was denied")
	}
}

// TestRepartitionAdaptsToPhaseChange verifies the dynamic part of the
// CPA: when a thread's working set grows mid-run, the next repartitions
// shift ways toward it.
func TestRepartitionAdaptsToPhaseChange(t *testing.T) {
	const sets, ways = 16, 16
	l2 := cache.New(l2Config(replacement.LRU, 2, sets, ways))
	cfg, _ := ParseAcronym("M-L")
	cfg.SampleRate = 1
	cfg.Interval = 3000
	sys, err := NewSystem(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(9)
	var cycle uint64

	run := func(hotLines0, hotLines1, iters int) partition.Allocation {
		for i := 0; i < iters; i++ {
			a0 := uint64(rng.Intn(hotLines0)) * 64
			a1 := uint64(1<<40) + uint64(rng.Intn(hotLines1))*64
			sys.OnAccess(0, a0)
			l2.Access(0, a0)
			sys.OnAccess(1, a1)
			l2.Access(1, a1)
			cycle += 8
			sys.Tick(cycle)
		}
		return sys.Allocation()
	}

	// Phase 1: core 0 needs most of the cache (12 lines/set), core 1
	// almost nothing (1 line/set).
	a1 := run(sets*12, sets*1, 8000)
	if a1[0] <= a1[1] {
		t.Fatalf("phase 1 allocation %v should favor core 0", a1)
	}
	// Phase 2: demands flip.
	a2 := run(sets*1, sets*12, 16000)
	if a2[1] <= a2[0] {
		t.Fatalf("phase 2 allocation %v should favor core 1 (phase 1 gave %v)", a2, a1)
	}
}

// TestEnforcementIsolationUnderAdversary: a thrashing adversary must not
// reduce a protected thread's per-set occupancy below its allocation
// once steady state is reached (masks mode).
func TestEnforcementIsolationUnderAdversary(t *testing.T) {
	const sets, ways = 8, 8
	l2 := cache.New(l2Config(replacement.LRU, 2, sets, ways))
	cfg, _ := ParseAcronym("M-L")
	cfg.SampleRate = 1
	cfg.Interval = 1 << 62
	sys, err := NewSystem(cfg, l2)
	if err != nil {
		t.Fatal(err)
	}
	alloc := sys.Allocation() // fair 4/4

	// Core 0: small loop that fits its share (2 lines per set).
	// Core 1: adversarial streamer.
	stream := uint64(1 << 40)
	for i := 0; i < 30000; i++ {
		loopAddr := uint64(i%(sets*2)) * 64
		l2.Access(0, loopAddr)
		l2.Access(1, stream)
		stream += 64
	}
	// Core 0's lines must all still be present (its 2 lines/set fit the
	// 4-way share and core 1 cannot evict them).
	for i := 0; i < sets*2; i++ {
		if !l2.Contains(uint64(i) * 64) {
			t.Fatalf("adversary evicted protected line %d despite masks (alloc %v)", i, alloc)
		}
	}
}
