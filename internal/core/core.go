// Package core assembles the paper's complete dynamic cache partitioning
// system: per-thread profiling monitors (ATD + SDH/eSDH), a partition
// selection algorithm (MinMisses by default) invoked at fixed cycle
// intervals, and the enforcement logic that constrains victim selection in
// the shared L2.
//
// Configurations follow the paper's acronyms (§V-B):
//
//	C-L      per-set owner counters + LRU (the paper's baseline)
//	M-L      global replacement masks + LRU
//	M-1.0N   masks + NRU with eSDH scaling factor 1.0
//	M-0.75N  masks + NRU with scaling factor 0.75
//	M-0.5N   masks + NRU with scaling factor 0.5
//	M-BT     up/down force vectors + BT
//
// A System implements cache.VictimSelector, so attaching it to a shared L2
// is: sys := core.NewSystem(cfg, l2); l2.SetVictimSelector(sys).
package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/partition"
	"repro/internal/profiling"
	"repro/internal/replacement"
)

// Enforcement identifies how partitions are enforced at eviction time.
type Enforcement int

// Enforcement mechanisms from the paper.
const (
	// EnforceNone disables partitioning (profiling may still run).
	EnforceNone Enforcement = iota
	// EnforceMasks uses per-core global replacement masks (§II-B.2).
	EnforceMasks
	// EnforceCounters uses per-set owner counters (§II-B.1, LRU only in
	// the paper; we implement it generically).
	EnforceCounters
	// EnforceUpDown uses the BT per-level force vectors (§III-B, Fig. 5).
	EnforceUpDown
)

// String names the enforcement mechanism.
func (e Enforcement) String() string {
	switch e {
	case EnforceNone:
		return "none"
	case EnforceMasks:
		return "masks"
	case EnforceCounters:
		return "counters"
	case EnforceUpDown:
		return "updown"
	default:
		return fmt.Sprintf("Enforcement(%d)", int(e))
	}
}

// Config describes one CPA configuration.
type Config struct {
	Acronym     string           // display name, e.g. "M-0.75N"
	Enforcement Enforcement      // how partitions are enforced
	Policy      replacement.Kind // replacement in both L2 and ATDs
	NRUScale    float64          // eSDH scaling factor (NRU only)
	SampleRate  int              // ATD set sampling (paper: 32)
	Interval    uint64           // repartition interval in cycles (paper: 1M)
	// CountColdHits enables the NRU used==0 ablation (see profiling).
	CountColdHits bool
	// UseLookahead switches MinMisses to the greedy Lookahead algorithm
	// (ablation; the DP optimum is the default).
	UseLookahead bool
	// Goal selects the optimization target (GoalMinMisses by default;
	// the IPC-based goals need a PerfSource — see goals.go).
	Goal Goal
	// QoSTarget is GoalQoS's maximum slowdown for thread 0 (>= 1).
	QoSTarget float64
	// MissPenalty is the per-miss cycle estimate the IPC-based goals use
	// (defaults to 250 when zero).
	MissPenalty uint64
	// InCacheProfiling replaces the per-thread ATDs with Suh-style way
	// counters sampling the shared cache's own LRU stack positions
	// (paper §VI related work; LRU policy only). An ablation option.
	InCacheProfiling bool
}

// Partitioned reports whether the configuration partitions the cache.
func (c Config) Partitioned() bool { return c.Enforcement != EnforceNone }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Enforcement == EnforceUpDown && c.Policy != replacement.BT {
		return fmt.Errorf("core: up/down enforcement requires BT, got %v", c.Policy)
	}
	if c.Policy == replacement.NRU && c.Partitioned() && (c.NRUScale <= 0 || c.NRUScale > 1) {
		return fmt.Errorf("core: NRU scale %v out of (0,1]", c.NRUScale)
	}
	if c.Partitioned() {
		if c.SampleRate <= 0 {
			return fmt.Errorf("core: sample rate must be positive")
		}
		if c.Interval == 0 {
			return fmt.Errorf("core: repartition interval must be positive")
		}
	}
	if c.Goal == GoalQoS && c.QoSTarget < 1 {
		return fmt.Errorf("core: QoS goal needs QoSTarget >= 1, got %v", c.QoSTarget)
	}
	if c.InCacheProfiling && c.Policy != replacement.LRU {
		return fmt.Errorf("core: in-cache profiling requires LRU, got %v", c.Policy)
	}
	return nil
}

// ParseAcronym builds a Config from a paper acronym. Interval and
// SampleRate receive the paper defaults (1M cycles, 1/32) and can be
// adjusted afterwards.
func ParseAcronym(s string) (Config, error) {
	cfg := Config{
		Acronym:    s,
		SampleRate: 32,
		Interval:   1_000_000,
	}
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return Config{}, fmt.Errorf("core: acronym %q must look like C-L or M-0.75N", s)
	}
	switch parts[0] {
	case "C":
		cfg.Enforcement = EnforceCounters
	case "M":
		cfg.Enforcement = EnforceMasks
	default:
		return Config{}, fmt.Errorf("core: unknown enforcement prefix %q", parts[0])
	}
	rest := parts[1]
	switch {
	case rest == "L":
		cfg.Policy = replacement.LRU
	case rest == "BT":
		cfg.Policy = replacement.BT
		if cfg.Enforcement == EnforceMasks {
			// The paper's M-BT uses the up/down vectors as its masks
			// mechanism; keep the M- prefix but enforce via the tree.
			cfg.Enforcement = EnforceUpDown
		}
	case strings.HasSuffix(rest, "N"):
		cfg.Policy = replacement.NRU
		scale, err := strconv.ParseFloat(strings.TrimSuffix(rest, "N"), 64)
		if err != nil {
			return Config{}, fmt.Errorf("core: bad NRU scale in %q: %v", s, err)
		}
		cfg.NRUScale = scale
	default:
		return Config{}, fmt.Errorf("core: unknown policy suffix %q", rest)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// StandardConfigs returns the six configurations of Figure 7 in paper
// order.
func StandardConfigs() []Config {
	var out []Config
	for _, a := range []string{"C-L", "M-L", "M-1.0N", "M-0.75N", "M-0.5N", "M-BT"} {
		cfg, err := ParseAcronym(a)
		if err != nil {
			panic(err)
		}
		out = append(out, cfg)
	}
	return out
}

// System is a live CPA instance attached to a shared L2.
type System struct {
	cfg      Config
	l2       *cache.Cache
	cores    int
	ways     int
	monitors []*profiling.Monitor
	inCache  *profiling.InCacheProfiler
	algo     partition.Algorithm

	alloc  partition.Allocation
	masks  []replacement.WayMask
	blocks []partition.Block
	ups    [][]bool
	downs  [][]bool

	nextBoundary uint64
	repartitions uint64
	perf         PerfSource

	// OnRepartition, when non-nil, observes every repartition decision
	// (used by the partition-explorer example and tests).
	OnRepartition func(cycle uint64, alloc partition.Allocation)
}

// NewSystem builds the CPA for the given shared L2 and installs itself as
// the cache's victim selector. The L2's policy kind must match the
// configuration.
func NewSystem(cfg Config, l2 *cache.Cache) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lc := l2.Config()
	if cfg.Partitioned() && lc.Policy != cfg.Policy {
		return nil, fmt.Errorf("core: config policy %v != L2 policy %v", cfg.Policy, lc.Policy)
	}
	if cfg.MissPenalty == 0 {
		cfg.MissPenalty = 250
	}
	s := &System{
		cfg:   cfg,
		l2:    l2,
		cores: lc.Cores,
		ways:  lc.Ways,
	}
	if !cfg.Partitioned() {
		return s, nil
	}
	if lc.Cores > lc.Ways {
		return nil, fmt.Errorf("core: %d cores cannot each own a way of a %d-way cache", lc.Cores, lc.Ways)
	}
	if cfg.UseLookahead {
		s.algo = partition.Lookahead{}
	} else {
		s.algo = partition.MinMisses{}
	}
	if cfg.InCacheProfiling {
		s.inCache = profiling.NewInCacheProfiler(lc.Cores, lc.Ways)
		l2.SetObserver(s.inCache)
	} else {
		for i := 0; i < lc.Cores; i++ {
			s.monitors = append(s.monitors, profiling.NewMonitor(profiling.Config{
				L2Sets:        lc.Sets(),
				Ways:          lc.Ways,
				LineBytes:     lc.LineBytes,
				SampleRate:    cfg.SampleRate,
				Kind:          cfg.Policy,
				NRUScale:      cfg.NRUScale,
				CountColdHits: cfg.CountColdHits,
				Seed:          lc.Seed + uint64(i) + 1,
			}))
		}
	}
	// Start from an equal split until the first interval elapses.
	curves := s.missCurves()
	s.install(partition.Fair{}.Allocate(curves, s.ways))
	s.nextBoundary = cfg.Interval
	l2.SetVictimSelector(s)
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Allocation returns the current ways-per-core allocation (nil when not
// partitioned).
func (s *System) Allocation() partition.Allocation {
	return append(partition.Allocation(nil), s.alloc...)
}

// Masks returns the current per-core way masks (nil when not partitioned).
func (s *System) Masks() []replacement.WayMask {
	return append([]replacement.WayMask(nil), s.masks...)
}

// Repartitions returns how many interval boundaries have been processed.
func (s *System) Repartitions() uint64 { return s.repartitions }

// Monitors exposes the per-thread profiling monitors (for power
// accounting and the examples).
func (s *System) Monitors() []*profiling.Monitor { return s.monitors }

// OnAccess feeds one L2 access (by `core` to `addr`) into the core's
// profiling monitor. Call it for every L2 access, hit or miss, before or
// after the L2 lookup (the ATD is parallel hardware; ordering within the
// access is immaterial as long as it is consistent).
func (s *System) OnAccess(core int, addr uint64) {
	if s.monitors == nil {
		return
	}
	s.monitors[core].Observe(addr)
}

// Tick advances the CPA's notion of time. When `cycle` crosses the next
// interval boundary the system recomputes the partition from the current
// (e)SDHs, installs the new enforcement state and halves the SDH
// registers.
func (s *System) Tick(cycle uint64) {
	if !s.cfg.Partitioned() || cycle < s.nextBoundary {
		return
	}
	for cycle >= s.nextBoundary {
		s.nextBoundary += s.cfg.Interval
	}
	s.Repartition(cycle)
}

// Repartition forces an immediate repartition (also used at interval
// boundaries by Tick).
func (s *System) Repartition(cycle uint64) {
	if !s.cfg.Partitioned() {
		return
	}
	curves := s.missCurves()
	s.install(s.goalAllocate(curves))
	for _, m := range s.monitors {
		m.Halve()
	}
	if s.inCache != nil {
		s.inCache.Halve()
	}
	s.repartitions++
	if s.OnRepartition != nil {
		s.OnRepartition(cycle, s.Allocation())
	}
}

// missCurves snapshots each thread's predicted miss curve from whichever
// profiling source is active.
func (s *System) missCurves() [][]uint64 {
	curves := make([][]uint64, s.cores)
	for i := range curves {
		if s.inCache != nil {
			curves[i] = s.inCache.SDH(i).MissCurve()
		} else {
			curves[i] = s.monitors[i].SDH().MissCurve()
		}
	}
	return curves
}

// install applies an allocation to the enforcement state.
func (s *System) install(alloc partition.Allocation) {
	s.alloc = alloc
	switch s.cfg.Enforcement {
	case EnforceMasks:
		s.masks = partition.Masks(alloc, s.ways)
	case EnforceCounters:
		// Counters need only the allocation; masks are derived per set
		// from owner bits at eviction time.
		s.masks = nil
	case EnforceUpDown:
		blocks, err := partition.BuddyLayout(alloc, s.ways)
		if err != nil {
			panic(fmt.Sprintf("core: buddy layout failed for %v: %v", alloc, err))
		}
		s.blocks = blocks
		s.ups = make([][]bool, len(blocks))
		s.downs = make([][]bool, len(blocks))
		s.masks = make([]replacement.WayMask, len(blocks))
		for i, b := range blocks {
			s.ups[i], s.downs[i] = partition.ForceVectors(b, s.ways)
			s.masks[i] = b.Mask()
		}
	}
	// Scope NRU's used-bit reset rule to the new partition.
	if s.cfg.Policy == replacement.NRU && s.masks != nil {
		s.l2.Policy().SetPartition(s.masks)
	}
}

// SelectVictim implements cache.VictimSelector with the configured
// enforcement mechanism. It is called by the L2 only when the set is full.
func (s *System) SelectVictim(c *cache.Cache, set, core int) int {
	pol := c.Policy()
	full := replacement.Full(s.ways)
	switch s.cfg.Enforcement {
	case EnforceMasks:
		return pol.Victim(set, core, s.masks[core])
	case EnforceCounters:
		owned := c.OwnedMask(set, core)
		var allowed replacement.WayMask
		if owned.Count() < s.alloc[core] {
			// Under quota: take a line from another thread (the paper's
			// "LRU line among the lines that do not belong to the
			// thread").
			allowed = full &^ owned
		} else {
			// At or over quota: replace within the thread's own lines.
			allowed = owned
		}
		if allowed == 0 {
			allowed = full
		}
		return pol.Victim(set, core, allowed)
	case EnforceUpDown:
		bt := pol.(*replacement.BTPolicy)
		return bt.VictimForced(set, s.ups[core], s.downs[core])
	default:
		return pol.Victim(set, core, full)
	}
}
