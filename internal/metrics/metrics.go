// Package metrics computes the paper's three performance metrics
// (§IV): IPC throughput (Σ IPCi), weighted speedup (Σ IPCi/IPCisolation),
// and the harmonic mean of relative IPCs (N / Σ IPCisolation/IPCi).
package metrics

import (
	"fmt"

	"repro/internal/stats"
)

// Thread couples one thread's CMP IPC with its isolation IPC (measured
// alone on the full cache).
type Thread struct {
	Benchmark    string
	IPC          float64
	IsolationIPC float64
}

// Summary holds the three workload-level metrics.
type Summary struct {
	Throughput      float64 // Σ IPCi
	WeightedSpeedup float64 // Σ IPCi / IPCiso_i
	HarmonicMean    float64 // N / Σ (IPCiso_i / IPCi)
}

// Compute derives the summary from per-thread measurements. It returns an
// error if any IPC is non-positive — that always indicates a broken run.
func Compute(threads []Thread) (Summary, error) {
	if len(threads) == 0 {
		return Summary{}, fmt.Errorf("metrics: no threads")
	}
	var s Summary
	var invSum float64
	for _, t := range threads {
		if t.IPC <= 0 || t.IsolationIPC <= 0 {
			return Summary{}, fmt.Errorf("metrics: %s has non-positive IPC (%v cmp, %v isolation)",
				t.Benchmark, t.IPC, t.IsolationIPC)
		}
		s.Throughput += t.IPC
		s.WeightedSpeedup += t.IPC / t.IsolationIPC
		invSum += t.IsolationIPC / t.IPC
	}
	s.HarmonicMean = float64(len(threads)) / invSum
	return s, nil
}

// Relative expresses a summary as ratios to a baseline summary.
func (s Summary) Relative(base Summary) Summary {
	return Summary{
		Throughput:      ratio(s.Throughput, base.Throughput),
		WeightedSpeedup: ratio(s.WeightedSpeedup, base.WeightedSpeedup),
		HarmonicMean:    ratio(s.HarmonicMean, base.HarmonicMean),
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Aggregate averages per-workload relative summaries with the geometric
// mean (the conventional aggregator for ratio metrics).
func Aggregate(rel []Summary) Summary {
	tp := make([]float64, len(rel))
	ws := make([]float64, len(rel))
	hm := make([]float64, len(rel))
	for i, r := range rel {
		tp[i], ws[i], hm[i] = r.Throughput, r.WeightedSpeedup, r.HarmonicMean
	}
	return Summary{
		Throughput:      stats.GeoMean(tp),
		WeightedSpeedup: stats.GeoMean(ws),
		HarmonicMean:    stats.GeoMean(hm),
	}
}
