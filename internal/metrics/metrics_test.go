package metrics

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestComputeKnownValues(t *testing.T) {
	threads := []Thread{
		{Benchmark: "a", IPC: 1.0, IsolationIPC: 2.0}, // relative 0.5
		{Benchmark: "b", IPC: 1.5, IsolationIPC: 1.5}, // relative 1.0
	}
	s, err := Compute(threads)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Throughput, 2.5) {
		t.Errorf("throughput = %v, want 2.5", s.Throughput)
	}
	if !almost(s.WeightedSpeedup, 1.5) {
		t.Errorf("weighted speedup = %v, want 1.5", s.WeightedSpeedup)
	}
	// HM of relative IPCs {0.5, 1.0} = 2 / (2 + 1) = 0.666...
	if !almost(s.HarmonicMean, 2.0/3.0) {
		t.Errorf("harmonic mean = %v, want 2/3", s.HarmonicMean)
	}
}

func TestComputeRejectsBadInputs(t *testing.T) {
	if _, err := Compute(nil); err == nil {
		t.Error("empty thread list accepted")
	}
	if _, err := Compute([]Thread{{IPC: 0, IsolationIPC: 1}}); err == nil {
		t.Error("zero IPC accepted")
	}
	if _, err := Compute([]Thread{{IPC: 1, IsolationIPC: 0}}); err == nil {
		t.Error("zero isolation IPC accepted")
	}
}

func TestEqualIPCsGiveUnitMetrics(t *testing.T) {
	threads := []Thread{
		{Benchmark: "a", IPC: 1.2, IsolationIPC: 1.2},
		{Benchmark: "b", IPC: 0.7, IsolationIPC: 0.7},
		{Benchmark: "c", IPC: 2.0, IsolationIPC: 2.0},
	}
	s, err := Compute(threads)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.WeightedSpeedup, 3) {
		t.Errorf("weighted speedup = %v, want N=3", s.WeightedSpeedup)
	}
	if !almost(s.HarmonicMean, 1) {
		t.Errorf("harmonic mean = %v, want 1", s.HarmonicMean)
	}
}

func TestRelative(t *testing.T) {
	a := Summary{Throughput: 2, WeightedSpeedup: 1.5, HarmonicMean: 0.8}
	b := Summary{Throughput: 4, WeightedSpeedup: 3.0, HarmonicMean: 0.4}
	r := a.Relative(b)
	if !almost(r.Throughput, 0.5) || !almost(r.WeightedSpeedup, 0.5) || !almost(r.HarmonicMean, 2) {
		t.Errorf("relative = %+v", r)
	}
	z := a.Relative(Summary{})
	if z.Throughput != 0 {
		t.Error("division by zero not guarded")
	}
}

func TestAggregateGeometricMean(t *testing.T) {
	rel := []Summary{
		{Throughput: 1, WeightedSpeedup: 4, HarmonicMean: 1},
		{Throughput: 4, WeightedSpeedup: 1, HarmonicMean: 1},
	}
	agg := Aggregate(rel)
	if !almost(agg.Throughput, 2) || !almost(agg.WeightedSpeedup, 2) || !almost(agg.HarmonicMean, 1) {
		t.Errorf("aggregate = %+v", agg)
	}
}

func TestHarmonicMeanPenalizesImbalance(t *testing.T) {
	balanced := []Thread{
		{Benchmark: "a", IPC: 1, IsolationIPC: 2},
		{Benchmark: "b", IPC: 1, IsolationIPC: 2},
	}
	imbalanced := []Thread{
		{Benchmark: "a", IPC: 1.8, IsolationIPC: 2},
		{Benchmark: "b", IPC: 0.2, IsolationIPC: 2},
	}
	sb, _ := Compute(balanced)
	si, _ := Compute(imbalanced)
	if si.HarmonicMean >= sb.HarmonicMean {
		t.Fatalf("harmonic mean should punish imbalance: %v vs %v",
			si.HarmonicMean, sb.HarmonicMean)
	}
	// Throughput, by contrast, is the same.
	if !almost(si.Throughput, sb.Throughput) {
		t.Fatal("throughput should not distinguish the two")
	}
}
