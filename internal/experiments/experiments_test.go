package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/replacement"
	"repro/internal/workload"
)

// tinyOptions keeps harness tests fast: short runs, few workloads.
func tinyOptions() Options {
	return Options{
		Insts:         50_000,
		Interval:      20_000,
		SampleRate:    8,
		L2SizeKB:      1024,
		WorkloadLimit: 2,
	}
}

func TestRunCaching(t *testing.T) {
	ctx := context.Background()
	h := New(tinyOptions())
	w, err := workload.Lookup("2T_01")
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Run(ctx, w, replacement.LRU, "", 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(ctx, w, replacement.LRU, "", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput() != b.Throughput() {
		t.Fatal("cached run differs")
	}
	if h.CachedRuns() == 0 {
		t.Fatal("run not cached")
	}
	if h.Simulated() != 1 {
		t.Fatalf("simulated %d times, want 1", h.Simulated())
	}
}

func TestIsolationIPCCached(t *testing.T) {
	ctx := context.Background()
	h := New(tinyOptions())
	a, err := h.IsolationIPC(ctx, "gzip", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 {
		t.Fatalf("isolation IPC = %v", a)
	}
	b, _ := h.IsolationIPC(ctx, "gzip", 1024)
	if a != b {
		t.Fatal("isolation IPC changed between calls")
	}
}

func TestSummarizeProducesSaneMetrics(t *testing.T) {
	ctx := context.Background()
	h := New(tinyOptions())
	w, _ := workload.Lookup("2T_21") // crafty, eon: both compute bound
	res, err := h.Run(ctx, w, replacement.LRU, "", 1024)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := h.Summarize(ctx, w, res, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	// Compute-bound pair barely shares: weighted speedup near 2, harmonic
	// mean near 1.
	if sum.WeightedSpeedup < 1.5 || sum.WeightedSpeedup > 2.05 {
		t.Errorf("weighted speedup %.3f for compute pair", sum.WeightedSpeedup)
	}
	if sum.HarmonicMean < 0.75 || sum.HarmonicMean > 1.03 {
		t.Errorf("harmonic mean %.3f for compute pair", sum.HarmonicMean)
	}
}

func TestFig6Shape(t *testing.T) {
	ctx := context.Background()
	h := New(tinyOptions())
	d, err := h.Fig6(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cores) != 4 || len(d.Policies) != 3 {
		t.Fatalf("unexpected shape: %v cores %v policies", d.Cores, d.Policies)
	}
	for ci := range d.Cores {
		// LRU relative to itself must be exactly 1.
		if d.Rel[0][ci][0] != 1 {
			t.Errorf("cores %d: LRU rel throughput %v != 1", d.Cores[ci], d.Rel[0][ci][0])
		}
		for pi := range d.Policies {
			v := d.Rel[0][ci][pi]
			if v < 0.5 || v > 1.2 {
				t.Errorf("cores %d policy %v: rel throughput %v out of sane band",
					d.Cores[ci], d.Policies[pi], v)
			}
		}
	}
	out := d.Render()
	for _, want := range []string{"Figure 6", "Throughput", "Harmonic mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	csv := d.CSV()
	if !strings.Contains(csv, "metric,cores,policy") {
		t.Error("CSV header missing")
	}
}

// TestFig6AdaptivePolicies runs the Figure 6 sweep with an explicit
// policy list including the adaptive kinds; the nil default above must
// stay the paper's three policies, so AWRP/ARC ride only on explicit
// requests (as cmd/repro's fig6 case makes).
func TestFig6AdaptivePolicies(t *testing.T) {
	ctx := context.Background()
	h := New(tinyOptions())
	pols := []replacement.Kind{replacement.LRU, replacement.AWRP, replacement.ARC}
	d, err := h.Fig6(ctx, pols)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Policies) != len(pols) {
		t.Fatalf("policies = %v, want %v", d.Policies, pols)
	}
	for ci := range d.Cores {
		if d.Rel[0][ci][0] != 1 {
			t.Errorf("cores %d: LRU rel throughput %v != 1", d.Cores[ci], d.Rel[0][ci][0])
		}
		for pi := range d.Policies {
			v := d.Rel[0][ci][pi]
			if v < 0.5 || v > 1.2 {
				t.Errorf("cores %d policy %v: rel throughput %v out of sane band",
					d.Cores[ci], d.Policies[pi], v)
			}
		}
	}
	csv := d.CSV()
	for _, pol := range []string{"AWRP", "ARC"} {
		if !strings.Contains(csv, pol) {
			t.Errorf("CSV missing %s rows", pol)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	ctx := context.Background()
	h := New(tinyOptions())
	d, err := h.Fig7(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rel) != 3 || len(d.Rel[0]) != len(Fig7Configs) {
		t.Fatalf("unexpected shape")
	}
	for i := range d.Cores {
		if d.Rel[i][0].Throughput != 1 {
			t.Errorf("C-L not unity baseline: %v", d.Rel[i][0].Throughput)
		}
		for ci, acr := range d.Configs {
			v := d.Rel[i][ci].Throughput
			if v < 0.5 || v > 1.3 {
				t.Errorf("%d cores %s: rel throughput %v out of band", d.Cores[i], acr, v)
			}
		}
	}
	if !strings.Contains(d.Render(), "Figure 7") {
		t.Error("render missing banner")
	}
}

func TestFig8Shape(t *testing.T) {
	ctx := context.Background()
	h := New(tinyOptions())
	d, err := h.Fig8With(ctx, []int{512, 1024}, Fig8Pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rel) != 3 {
		t.Fatalf("pairs: %d", len(d.Rel))
	}
	if len(d.Workloads) == 0 {
		t.Fatal("no workloads")
	}
	for pi := range d.Pairs {
		for si := range d.Sizes {
			if d.Avg[pi][si] <= 0 {
				t.Errorf("pair %d size %d: AVG %v", pi, si, d.Avg[pi][si])
			}
		}
	}
	if !strings.Contains(d.Render(), "Figure 8") {
		t.Error("render missing banner")
	}
	if !strings.Contains(d.CSV(), "AVG") {
		t.Error("CSV missing AVG rows")
	}
}

func TestFig9Shape(t *testing.T) {
	ctx := context.Background()
	// The paper's <0.3% profiling-power claim is tied to its 1/32 set
	// sampling, so this test uses the paper's rate rather than the tiny
	// harness default.
	opt := tinyOptions()
	opt.SampleRate = 32
	h := New(opt)
	d, err := h.Fig9(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Cores {
		if d.RelPower[i][0] != 1 || d.RelEnergy[i][0] != 1 {
			t.Errorf("%d cores: baseline not unity", d.Cores[i])
		}
	}
	if len(d.Breakdown2) != len(Fig7Configs) {
		t.Fatalf("breakdowns: %d", len(d.Breakdown2))
	}
	// The paper's claim, at our scale: profiling power is negligible.
	if f := d.ProfilingFraction(); f <= 0 || f > 0.003 {
		t.Errorf("profiling fraction %.5f, want (0, 0.003]", f)
	}
	if !strings.Contains(d.Render(), "Figure 9") {
		t.Error("render missing banner")
	}
}

func TestFig9ReusesFig7Runs(t *testing.T) {
	ctx := context.Background()
	h := New(tinyOptions())
	if _, err := h.Fig7(ctx); err != nil {
		t.Fatal(err)
	}
	before := h.Simulated()
	if _, err := h.Fig9(ctx); err != nil {
		t.Fatal(err)
	}
	if h.Simulated() != before {
		t.Errorf("Fig9 ran %d extra simulations; should reuse Fig7's", h.Simulated()-before)
	}
}

func TestTables(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"Table I", "8.000", "1.875", "752"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	t2 := Table2()
	for _, want := range []string{"Table II", "2T_01", "8T_11", "apsi, bzip2"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestDefaultOptionsApplied(t *testing.T) {
	h := New(Options{})
	if h.Options().Insts != DefaultOptions().Insts {
		t.Fatal("zero options not defaulted")
	}
}
