package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/cmp"
	"repro/internal/cpu"
	"repro/internal/optref"
	"repro/internal/replacement"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// This file is the OPT column for the fig6-9 sweeps: for every policy ×
// workload × size cell it reports the policy's demand hit rate against
// the offline-optimal (Belady) hit rate on the same access stream, as
// a hit-rate-vs-OPT fraction and a miss-based competitive ratio.
//
// The trace OPT replays is captured from the non-partitioned LRU
// baseline simulation of the same cell via cmp.SetTracer. For one core
// the demand stream is policy-independent (the address sequence only
// depends on the workload), so the comparison is exact; for multicore
// cells the global interleaving shifts slightly with per-core timing,
// so OPT-on-the-LRU-trace is the fixed, deterministic yardstick every
// policy is graded against (documented in EXPERIMENTS.md). OPT replays
// are memoized per workload × size like any other run and execute
// through the same worker pool, so scoreboards stay bit-identical at
// any parallelism.

// OptPolicies is the default scoreboard policy set: every registered
// policy kind.
func OptPolicies() []replacement.Kind { return replacement.Kinds() }

// optKey is the memo key for an OPT replay (OPT is policy-independent:
// one replay per workload × size).
func optKey(w workload.Workload, sizeKB int) string {
	return fmt.Sprintf("OPT|%s|%d", w.Name, sizeKB)
}

// RunOPT returns the Belady-optimal demand-hit statistics for the
// workload on a sizeKB L2: it simulates the non-partitioned LRU
// baseline with a trace hook attached, then replays the recorded demand
// stream through the mask-constrained OPT engine. The result is
// memoized; concurrent callers share one simulation.
func (h *Harness) RunOPT(ctx context.Context, w workload.Workload, sizeKB int) (optref.Stats, error) {
	return h.optRuns.Do(ctx, optKey(w, sizeKB), func(ctx context.Context) (optref.Stats, error) {
		l2 := h.l2Config(replacement.LRU, w.Threads(), sizeKB)
		sets := l2.SizeBytes / l2.LineBytes / l2.Ways
		lineShift := 7 // 128 B lines

		cfg := cmp.Config{
			Workload: w,
			L2:       l2,
			Params:   cpu.DefaultParams(),
			L1:       cpu.DefaultL1Config(128),
			MaxInsts: h.opt.Insts,
		}
		sys, err := cmp.New(cfg)
		if err != nil {
			return optref.Stats{}, fmt.Errorf("experiments: %s: %w", optKey(w, sizeKB), err)
		}
		tr := &optref.Trace{}
		sys.SetTracer(func(core int, addr uint64) {
			line := addr >> lineShift
			tr.Access(core, int(line%uint64(sets)), line)
		})
		if _, err := sys.RunContext(ctx); err != nil {
			return optref.Stats{}, err
		}
		st, err := optref.Replay(optref.Config{Sets: sets, Ways: l2.Ways, Cores: w.Threads()}, tr)
		if err != nil {
			return optref.Stats{}, err
		}
		h.simulated.Add(1)
		h.progress("ran %-26s OPT hit rate=%.4f (%d refs)", optKey(w, sizeKB), st.HitRate(), tr.Len())
		return st, nil
	})
}

// OptCell is one scoreboard entry: a policy's demand hit rate vs OPT's
// on one workload × size cell.
type OptCell struct {
	Cores    int
	Workload string
	SizeKB   int
	Policy   replacement.Kind

	HitRate    float64 // policy demand hit rate
	OptHitRate float64 // Belady hit rate on the captured trace

	// HitRateVsOpt is HitRate/OptHitRate (1.0 = optimal; can exceed 1 on
	// multicore cells where interleavings differ slightly).
	HitRateVsOpt float64
	// CompetitiveRatio is (1-HitRate)/(1-OptHitRate): the policy's miss
	// rate as a multiple of optimal (1.0 = optimal, higher = worse).
	CompetitiveRatio float64
}

// OptScoreboardData is the hit-rate-vs-OPT scoreboard across policy ×
// workload × size.
type OptScoreboardData struct {
	Cores    []int
	Sizes    []int // KB
	Policies []replacement.Kind
	Cells    []OptCell // ordered: cores, then size, then workload, then policy
}

// OptScoreboard runs every (policy, workload, size) cell for the given
// core counts plus one OPT replay per (workload, size), and assembles
// the competitive-analysis scoreboard. Policy runs and OPT replays all
// execute through the harness pool; assembly is serial, so the result
// is bit-identical at any Parallelism.
func (h *Harness) OptScoreboard(ctx context.Context, coreCounts, sizesKB []int, policies []replacement.Kind) (*OptScoreboardData, error) {
	if len(coreCounts) == 0 {
		coreCounts = []int{1, 2, 4, 8}
	}
	if len(sizesKB) == 0 {
		sizesKB = []int{h.opt.L2SizeKB}
	}
	if len(policies) == 0 {
		policies = OptPolicies()
	}
	data := &OptScoreboardData{Cores: coreCounts, Sizes: sizesKB, Policies: policies}

	perCore := make([][]workload.Workload, len(coreCounts))
	var specs []RunSpec
	type optJob struct {
		w      workload.Workload
		sizeKB int
	}
	var optJobs []optJob
	for ci, cores := range coreCounts {
		var ws []workload.Workload
		if cores == 1 {
			ws = workload.SingleThread()
		} else {
			var err error
			ws, err = workload.ByThreads(cores)
			if err != nil {
				return nil, err
			}
		}
		ws = h.limitWorkloads(ws)
		perCore[ci] = ws
		for _, w := range ws {
			for _, sizeKB := range sizesKB {
				for _, pol := range policies {
					specs = append(specs, RunSpec{W: w, Kind: pol, SizeKB: sizeKB})
				}
				optJobs = append(optJobs, optJob{w: w, sizeKB: sizeKB})
			}
		}
	}

	// Prefetch policy runs and OPT replays concurrently. RunOPT acquires
	// its own pool slot per replay (it is a sched.Cache entry like any
	// run), so these goroutines never nest slot acquisitions.
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		prefErr error
	)
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if prefErr == nil && err != nil {
			prefErr = err
			cancel()
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		fail(h.Prefetch(pctx, specs))
	}()
	for _, j := range optJobs {
		wg.Add(1)
		go func(j optJob) {
			defer wg.Done()
			_, err := h.RunOPT(pctx, j.w, j.sizeKB)
			fail(err)
		}(j)
	}
	wg.Wait()
	if prefErr != nil {
		return nil, prefErr
	}

	for ci, cores := range coreCounts {
		for _, sizeKB := range sizesKB {
			for _, w := range perCore[ci] {
				opt, err := h.RunOPT(ctx, w, sizeKB)
				if err != nil {
					return nil, err
				}
				for _, pol := range policies {
					res, err := h.Run(ctx, w, pol, "", sizeKB)
					if err != nil {
						return nil, err
					}
					cell := OptCell{
						Cores:      cores,
						Workload:   w.Name,
						SizeKB:     sizeKB,
						Policy:     pol,
						HitRate:    res.DemandHitRate(),
						OptHitRate: opt.HitRate(),
					}
					if cell.OptHitRate > 0 {
						cell.HitRateVsOpt = cell.HitRate / cell.OptHitRate
					}
					if optMiss := 1 - cell.OptHitRate; optMiss > 0 {
						cell.CompetitiveRatio = (1 - cell.HitRate) / optMiss
					}
					data.Cells = append(data.Cells, cell)
				}
			}
		}
	}
	return data, nil
}

// GeomeanRatios returns the geometric-mean hit-rate-vs-OPT and
// competitive ratio per policy over every cell, in Policies order.
func (d *OptScoreboardData) GeomeanRatios() (hitVsOpt, competitive []float64) {
	hitVsOpt = make([]float64, len(d.Policies))
	competitive = make([]float64, len(d.Policies))
	for pi, pol := range d.Policies {
		var sumH, sumC float64
		n := 0
		for _, c := range d.Cells {
			if c.Policy != pol || c.HitRateVsOpt <= 0 || c.CompetitiveRatio <= 0 {
				continue
			}
			sumH += math.Log(c.HitRateVsOpt)
			sumC += math.Log(c.CompetitiveRatio)
			n++
		}
		if n > 0 {
			hitVsOpt[pi] = math.Exp(sumH / float64(n))
			competitive[pi] = math.Exp(sumC / float64(n))
		}
	}
	return hitVsOpt, competitive
}

// Render formats the scoreboard: one hit-rate-vs-OPT table per cores ×
// size group (rows workloads, columns policies, OPT hit rate alongside)
// and a per-policy geomean summary.
func (d *OptScoreboardData) Render() string {
	var sb strings.Builder
	sb.WriteString(textplot.Heading("OPT scoreboard: demand hit rate vs offline-optimal (Belady)"))

	type group struct{ cores, sizeKB int }
	cellsBy := make(map[group]map[string][]OptCell) // group -> workload -> cells
	var workloadsBy = make(map[group][]string)
	for _, c := range d.Cells {
		g := group{c.Cores, c.SizeKB}
		if cellsBy[g] == nil {
			cellsBy[g] = make(map[string][]OptCell)
		}
		if _, seen := cellsBy[g][c.Workload]; !seen {
			workloadsBy[g] = append(workloadsBy[g], c.Workload)
		}
		cellsBy[g][c.Workload] = append(cellsBy[g][c.Workload], c)
	}

	for _, cores := range d.Cores {
		for _, sizeKB := range d.Sizes {
			g := group{cores, sizeKB}
			ws := workloadsBy[g]
			if len(ws) == 0 {
				continue
			}
			headers := []string{"Workload", "OPT hit"}
			for _, p := range d.Policies {
				headers = append(headers, p.String())
			}
			var rows [][]string
			for _, w := range ws {
				cells := cellsBy[g][w]
				row := []string{w, fmt.Sprintf("%.4f", cells[0].OptHitRate)}
				for _, p := range d.Policies {
					val := "-"
					for _, c := range cells {
						if c.Policy == p {
							val = fmt.Sprintf("%.4f", c.HitRateVsOpt)
							break
						}
					}
					row = append(row, val)
				}
				rows = append(rows, row)
			}
			fmt.Fprintf(&sb, "\n%d core(s), %d KB L2 — hit-rate-vs-OPT (1.0 = optimal):\n", cores, sizeKB)
			sb.WriteString(textplot.Table(headers, rows))
		}
	}

	hitVsOpt, competitive := d.GeomeanRatios()
	order := make([]int, len(d.Policies))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return hitVsOpt[order[a]] > hitVsOpt[order[b]] })
	sb.WriteString("\nPer-policy geomean over all cells (sorted best-first):\n")
	var rows [][]string
	for _, pi := range order {
		rows = append(rows, []string{
			d.Policies[pi].String(),
			fmt.Sprintf("%.4f", hitVsOpt[pi]),
			fmt.Sprintf("%.4f", competitive[pi]),
		})
	}
	sb.WriteString(textplot.Table([]string{"Policy", "HitRate/OPT", "CompetitiveRatio"}, rows))
	return sb.String()
}

// CSV emits machine-readable scoreboard rows. The column set is the
// contract `benchjson -opt-gate` diffs goldens against.
func (d *OptScoreboardData) CSV() string {
	var sb strings.Builder
	sb.WriteString("cores,workload,size_kb,policy,hit_rate,opt_hit_rate,hit_rate_vs_opt,competitive_ratio\n")
	for _, c := range d.Cells {
		fmt.Fprintf(&sb, "%d,%s,%d,%s,%.6f,%.6f,%.6f,%.6f\n",
			c.Cores, c.Workload, c.SizeKB, c.Policy, c.HitRate, c.OptHitRate, c.HitRateVsOpt, c.CompetitiveRatio)
	}
	return sb.String()
}
