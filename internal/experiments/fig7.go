package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// Fig7Configs is the paper's configuration list in plot order.
var Fig7Configs = []string{"C-L", "M-L", "M-1.0N", "M-0.75N", "M-0.5N", "M-BT"}

// Fig7Data holds Figure 7: dynamic CPA configurations relative to the C-L
// baseline for 2-, 4- and 8-core CMPs.
type Fig7Data struct {
	Cores   []int
	Configs []string
	// Rel[coreIdx][configIdx] aggregated (geomean) relative summaries.
	Rel [][]metrics.Summary
}

// Fig7 runs the Figure 7 experiment with the paper's six configurations.
func (h *Harness) Fig7(ctx context.Context) (*Fig7Data, error) {
	return h.Fig7With(ctx, Fig7Configs)
}

// fig7Specs lists every simulation Figure 7 (and Figure 9, which shares
// them) needs: each workload under each configuration, plus — when iso is
// true — the isolation baselines Summarize divides by.
func (h *Harness) fig7Specs(coreCounts []int, configs []string, iso bool) (specs []RunSpec, perCore [][]workload.Workload, err error) {
	perCore = make([][]workload.Workload, len(coreCounts))
	for i, cores := range coreCounts {
		ws, err := workload.ByThreads(cores)
		if err != nil {
			return nil, nil, err
		}
		ws = h.limitWorkloads(ws)
		perCore[i] = ws
		for _, w := range ws {
			for _, acr := range configs {
				kind, err := policyOf(acr)
				if err != nil {
					return nil, nil, err
				}
				specs = append(specs, RunSpec{W: w, Kind: kind, Acronym: acr, SizeKB: h.opt.L2SizeKB})
			}
			if iso {
				for _, b := range w.Benchmarks {
					specs = append(specs, isoSpec(b, h.opt.L2SizeKB))
				}
			}
		}
	}
	return specs, perCore, nil
}

// Fig7With runs Figure 7 with a custom configuration list; the first
// entry is the baseline.
func (h *Harness) Fig7With(ctx context.Context, configs []string) (*Fig7Data, error) {
	if len(configs) < 2 {
		return nil, fmt.Errorf("experiments: fig7 needs a baseline plus configs")
	}
	data := &Fig7Data{Cores: []int{2, 4, 8}, Configs: configs}
	specs, perCore, err := h.fig7Specs(data.Cores, configs, true)
	if err != nil {
		return nil, err
	}
	if err := h.Prefetch(ctx, specs); err != nil {
		return nil, err
	}
	for i := range data.Cores {
		ws := perCore[i]

		perConfig := make([][]metrics.Summary, len(configs))
		for ci := range perConfig {
			perConfig[ci] = make([]metrics.Summary, len(ws))
		}
		for wi, w := range ws {
			var base metrics.Summary
			for ci, acr := range configs {
				kind, err := policyOf(acr)
				if err != nil {
					return nil, err
				}
				res, err := h.Run(ctx, w, kind, acr, h.opt.L2SizeKB)
				if err != nil {
					return nil, err
				}
				sum, err := h.Summarize(ctx, w, res, h.opt.L2SizeKB)
				if err != nil {
					return nil, err
				}
				if ci == 0 {
					base = sum
				}
				perConfig[ci][wi] = sum
			}
			for ci := range configs {
				perConfig[ci][wi] = perConfig[ci][wi].Relative(base)
			}
		}
		row := make([]metrics.Summary, len(configs))
		for ci := range configs {
			row[ci] = metrics.Aggregate(perConfig[ci])
		}
		data.Rel = append(data.Rel, row)
	}
	return data, nil
}

// Render formats Figure 7.
func (d *Fig7Data) Render() string {
	var sb strings.Builder
	sb.WriteString(textplot.Heading(
		"Figure 7: dynamic CPA configurations relative to C-L (geomean)"))
	headers := []string{"Cores", "Config", "Throughput", "HarmonicMean", "WeightedSpeedup"}
	var rows [][]string
	for i, cores := range d.Cores {
		for ci, acr := range d.Configs {
			r := d.Rel[i][ci]
			rows = append(rows, []string{
				fmt.Sprint(cores), acr,
				fmt.Sprintf("%.4f", r.Throughput),
				fmt.Sprintf("%.4f", r.HarmonicMean),
				fmt.Sprintf("%.4f", r.WeightedSpeedup),
			})
		}
	}
	sb.WriteString(textplot.Table(headers, rows))
	sb.WriteString("\nRelative throughput (zoomed 0.86..1.02, as in the paper):\n")
	for i, cores := range d.Cores {
		labels := make([]string, len(d.Configs))
		vals := make([]float64, len(d.Configs))
		for ci, acr := range d.Configs {
			labels[ci] = fmt.Sprintf("%d cores %-8s", cores, acr)
			vals[ci] = d.Rel[i][ci].Throughput
		}
		sb.WriteString(textplot.Bars(labels, vals, 0.86, 1.02, 40))
	}
	return sb.String()
}

// CSV emits rows: cores,config,throughput,hmean,wspeedup.
func (d *Fig7Data) CSV() string {
	var sb strings.Builder
	sb.WriteString("cores,config,rel_throughput,rel_hmean,rel_wspeedup\n")
	for i, cores := range d.Cores {
		for ci, acr := range d.Configs {
			r := d.Rel[i][ci]
			fmt.Fprintf(&sb, "%d,%s,%.6f,%.6f,%.6f\n",
				cores, acr, r.Throughput, r.HarmonicMean, r.WeightedSpeedup)
		}
	}
	return sb.String()
}
