package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/replacement"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// Fig6Data holds Figure 6: non-partitioned LRU, NRU and BT relative to
// LRU for 1-, 2-, 4- and 8-core CMPs, for the three metrics. Entries are
// geometric means over the Table II workloads of per-workload ratios.
type Fig6Data struct {
	Cores    []int
	Policies []replacement.Kind
	// Rel[metric][coreIdx][policyIdx]; metrics: 0 throughput, 1 harmonic
	// mean, 2 weighted speedup. Harmonic mean and weighted speedup are
	// only defined for >= 2 cores (as in the paper's Figure 6(b,c)).
	Rel [3][][]float64
}

// MetricNames labels Fig6Data.Rel's first index.
var MetricNames = [3]string{"Throughput", "Harmonic mean", "Weighted speedup"}

// Fig6 runs the Figure 6 experiment. Policies must include
// replacement.LRU, which is the baseline.
func (h *Harness) Fig6(ctx context.Context, policies []replacement.Kind) (*Fig6Data, error) {
	if len(policies) == 0 {
		policies = []replacement.Kind{replacement.LRU, replacement.NRU, replacement.BT}
	}
	data := &Fig6Data{Cores: []int{1, 2, 4, 8}, Policies: policies}
	for m := range data.Rel {
		data.Rel[m] = make([][]float64, len(data.Cores))
	}

	// Gather every simulation the figure needs — runs plus isolation
	// baselines — and push them through the worker pool before the
	// deterministic serial assembly below.
	perCore := make([][]workload.Workload, len(data.Cores))
	var specs []RunSpec
	for ci, cores := range data.Cores {
		var ws []workload.Workload
		if cores == 1 {
			ws = workload.SingleThread()
		} else {
			var err error
			ws, err = workload.ByThreads(cores)
			if err != nil {
				return nil, err
			}
		}
		ws = h.limitWorkloads(ws)
		perCore[ci] = ws
		for _, w := range ws {
			for _, pol := range policies {
				specs = append(specs, RunSpec{W: w, Kind: pol, SizeKB: h.opt.L2SizeKB})
			}
			for _, b := range w.Benchmarks {
				specs = append(specs, isoSpec(b, h.opt.L2SizeKB))
			}
		}
	}
	if err := h.Prefetch(ctx, specs); err != nil {
		return nil, err
	}

	for ci := range data.Cores {
		ws := perCore[ci]

		// rel[workload][policy] summaries.
		perPolicy := make([][]metrics.Summary, len(policies))
		for pi := range perPolicy {
			perPolicy[pi] = make([]metrics.Summary, len(ws))
		}
		for wi, w := range ws {
			var base metrics.Summary
			for pi, pol := range policies {
				res, err := h.Run(ctx, w, pol, "", h.opt.L2SizeKB)
				if err != nil {
					return nil, err
				}
				sum, err := h.Summarize(ctx, w, res, h.opt.L2SizeKB)
				if err != nil {
					return nil, err
				}
				if pol == replacement.LRU {
					base = sum
				}
				perPolicy[pi][wi] = sum
			}
			if base.Throughput == 0 {
				return nil, fmt.Errorf("experiments: fig6 needs LRU in the policy list")
			}
			for pi := range policies {
				perPolicy[pi][wi] = perPolicy[pi][wi].Relative(base)
			}
		}
		for m := 0; m < 3; m++ {
			data.Rel[m][ci] = make([]float64, len(policies))
		}
		for pi := range policies {
			agg := metrics.Aggregate(perPolicy[pi])
			data.Rel[0][ci][pi] = agg.Throughput
			data.Rel[1][ci][pi] = agg.HarmonicMean
			data.Rel[2][ci][pi] = agg.WeightedSpeedup
		}
	}
	return data, nil
}

// Render formats Figure 6 as tables and bar charts.
func (d *Fig6Data) Render() string {
	var sb strings.Builder
	sb.WriteString(textplot.Heading("Figure 6: non-partitioned pseudo-LRU vs LRU (relative, geomean)"))
	for m, name := range MetricNames {
		headers := []string{"Cores"}
		for _, p := range d.Policies {
			headers = append(headers, p.String())
		}
		var rows [][]string
		for ci, cores := range d.Cores {
			if m > 0 && cores == 1 {
				continue // HM / WS undefined for one thread
			}
			row := []string{fmt.Sprint(cores)}
			for pi := range d.Policies {
				row = append(row, fmt.Sprintf("%.4f", d.Rel[m][ci][pi]))
			}
			rows = append(rows, row)
		}
		sb.WriteString("\n" + name + ":\n")
		sb.WriteString(textplot.Table(headers, rows))
	}
	// Bar chart of relative throughput at each core count.
	sb.WriteString("\nRelative throughput (zoomed 0.90..1.02, as in the paper):\n")
	for ci, cores := range d.Cores {
		labels := make([]string, len(d.Policies))
		vals := make([]float64, len(d.Policies))
		for pi, p := range d.Policies {
			labels[pi] = fmt.Sprintf("%d cores %-6s", cores, p)
			vals[pi] = d.Rel[0][ci][pi]
		}
		sb.WriteString(textplot.Bars(labels, vals, 0.90, 1.02, 40))
	}
	return sb.String()
}

// CSV emits machine-readable rows: metric,cores,policy,value.
func (d *Fig6Data) CSV() string {
	var sb strings.Builder
	sb.WriteString("metric,cores,policy,relative_value\n")
	for m, name := range MetricNames {
		for ci, cores := range d.Cores {
			if m > 0 && cores == 1 {
				continue
			}
			for pi, p := range d.Policies {
				fmt.Fprintf(&sb, "%s,%d,%s,%.6f\n", name, cores, p, d.Rel[m][ci][pi])
			}
		}
	}
	return sb.String()
}
