package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/replacement"
	"repro/internal/workload"
)

// optOptions keeps OPT scoreboard tests cheap: one workload per core
// count, short runs.
func optOptions(parallelism int) Options {
	return Options{
		Insts:         30_000,
		Interval:      15_000,
		SampleRate:    8,
		L2SizeKB:      512,
		WorkloadLimit: 1,
		Parallelism:   parallelism,
	}
}

// TestOptScoreboardShape runs the scoreboard over 1- and 2-core cells
// with every policy kind and checks the cell grid, the hit-rate bounds,
// and that OPT upper-bounds the single-core cells (where the traced
// stream is exactly what every policy saw).
func TestOptScoreboardShape(t *testing.T) {
	ctx := context.Background()
	h := New(optOptions(4))
	d, err := h.OptScoreboard(ctx, []int{1, 2}, []int{512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	kinds := replacement.Kinds()
	wantCells := 2 * len(kinds) // 1 workload per core count × policies
	if len(d.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(d.Cells), wantCells)
	}
	for _, c := range d.Cells {
		if c.OptHitRate <= 0 || c.OptHitRate > 1 {
			t.Errorf("%+v: OPT hit rate out of range", c)
		}
		if c.HitRate < 0 || c.HitRate > 1 {
			t.Errorf("%+v: hit rate out of range", c)
		}
		if c.Cores == 1 {
			// Single-core demand streams are policy-independent, so OPT
			// must dominate exactly.
			if c.HitRate > c.OptHitRate+1e-12 {
				t.Errorf("%s on %s: hit rate %.6f exceeds OPT %.6f", c.Policy, c.Workload, c.HitRate, c.OptHitRate)
			}
			if c.CompetitiveRatio < 1-1e-9 {
				t.Errorf("%s on %s: competitive ratio %.6f < 1", c.Policy, c.Workload, c.CompetitiveRatio)
			}
		}
	}
	// Render and CSV must mention every policy.
	render, csv := d.Render(), d.CSV()
	for _, k := range kinds {
		if !strings.Contains(render, k.String()) {
			t.Errorf("Render missing policy %s", k)
		}
		if !strings.Contains(csv, ","+k.String()+",") {
			t.Errorf("CSV missing policy %s", k)
		}
	}
	if !strings.HasPrefix(csv, "cores,workload,size_kb,policy,hit_rate,opt_hit_rate,hit_rate_vs_opt,competitive_ratio\n") {
		t.Errorf("CSV header changed:\n%s", csv)
	}
}

// TestOptScoreboardParallelDeterminism asserts the scoreboard CSV is
// byte-identical at Parallelism 1 and 8 — the same guarantee the
// figures give.
func TestOptScoreboardParallelDeterminism(t *testing.T) {
	ctx := context.Background()
	render := func(parallelism int) string {
		h := New(optOptions(parallelism))
		d, err := h.OptScoreboard(ctx, []int{1, 2}, []int{512}, []replacement.Kind{replacement.LRU, replacement.BT})
		if err != nil {
			t.Fatal(err)
		}
		return d.CSV()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("scoreboard CSV differs between Parallelism 1 and 8:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestRunOPTMemoized checks one OPT replay is shared across a
// scoreboard's policies and repeated calls.
func TestRunOPTMemoized(t *testing.T) {
	ctx := context.Background()
	h := New(optOptions(2))
	w := workload.SingleThread()[0]
	a, err := h.RunOPT(ctx, w, 512)
	if err != nil {
		t.Fatal(err)
	}
	before := h.Simulated()
	b, err := h.RunOPT(ctx, w, 512)
	if err != nil {
		t.Fatal(err)
	}
	if h.Simulated() != before {
		t.Errorf("second RunOPT re-simulated (simulated %d -> %d)", before, h.Simulated())
	}
	if a.Hits() != b.Hits() || a.Accesses() != b.Accesses() {
		t.Errorf("memoized OPT stats differ: %+v vs %+v", a, b)
	}
}
