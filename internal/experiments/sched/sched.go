// Package sched is the concurrency substrate for the experiment harness:
// a bounded worker pool plus a deduplicating, memoizing job cache with
// singleflight semantics.
//
// The paper's evaluation is embarrassingly parallel — dozens of
// independent workload × policy × cache-size simulations — but several
// figures request overlapping configurations (Figures 7 and 9 share all
// their runs, Figure 8's baselines overlap Figure 6's). The Cache
// guarantees each unique key is computed exactly once no matter how many
// goroutines ask for it concurrently, while the Pool bounds how many
// computations are in flight at a time.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Pool bounds how many jobs execute simultaneously.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool running at most n jobs at once; n <= 0 uses
// GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Size reports the worker-slot count.
func (p *Pool) Size() int { return cap(p.sem) }

// acquire blocks until a worker slot is free or ctx is done. A canceled
// context wins even when a slot is also available (the post-win re-check
// covers select's random choice between two ready cases), so queued work
// drains promptly after cancellation.
func (p *Pool) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case p.sem <- struct{}{}:
		if err := ctx.Err(); err != nil {
			p.release()
			return err
		}
		return nil
	}
}

func (p *Pool) release() { <-p.sem }

// Do runs fn on a worker slot, blocking until one frees up or ctx is
// done. It returns ctx.Err() without running fn when canceled first.
func (p *Pool) Do(ctx context.Context, fn func() error) error {
	if err := p.acquire(ctx); err != nil {
		return err
	}
	defer p.release()
	return fn()
}

// ForEach runs fn(0..n-1) through the pool, one worker slot each, and
// waits for all of them; results are for fn to collect by index. The
// first error cancels jobs that have not yet started and is returned.
//
// fn holds its worker slot for its whole duration, so it must not
// acquire another (no nested ForEach, Pool.Do or Cache.Do on the same
// pool — that can deadlock). Work that funnels through a Cache should
// submit plain goroutines instead and let Cache.Do take the slot.
func ForEach(ctx context.Context, pool *Pool, n int, fn func(i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := pool.Do(ctx, func() error { return fn(i) }); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

// entry is one in-flight or finished computation. done is closed when
// val/err are final.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache memoizes keyed jobs with singleflight semantics: the first
// caller of a key becomes the leader and computes it on a pool slot;
// concurrent and later callers wait for (and share) that one result.
// Failed computations are not cached, so a key can be retried.
type Cache[V any] struct {
	pool    *Pool
	mu      sync.Mutex
	entries map[string]*entry[V]
}

// NewCache returns an empty cache drawing worker slots from pool.
func NewCache[V any](pool *Pool) *Cache[V] {
	return &Cache[V]{pool: pool, entries: make(map[string]*entry[V])}
}

// Len reports how many keys are cached or in flight.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Do returns the value for key, computing it via fn at most once per
// successful flight. A waiter whose own ctx is canceled gives up
// immediately. A flight that dies of its leader's cancellation says
// nothing about the key, so a waiter with a live ctx retries it (and
// becomes the new leader) rather than inheriting someone else's
// context.Canceled; real computation errors propagate to all waiters.
func (c *Cache[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (V, error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.mu.Unlock()
			select {
			case <-e.done:
				if e.err != nil && isCtxErr(e.err) && ctx.Err() == nil {
					continue // the leader was canceled, not us: retry
				}
				return e.val, e.err
			case <-ctx.Done():
				var zero V
				return zero, ctx.Err()
			}
		}
		e := &entry[V]{done: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()

		if err := c.pool.acquire(ctx); err != nil {
			c.fail(key, e, err)
			var zero V
			return zero, err
		}
		e.val, e.err = fn(ctx)
		c.pool.release()
		if e.err != nil {
			c.fail(key, e, e.err)
			var zero V
			return zero, e.err
		}
		close(e.done)
		return e.val, nil
	}
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// fail publishes err to e's waiters and removes the placeholder so a
// later caller can retry the key.
func (c *Cache[V]) fail(key string, e *entry[V], err error) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
	e.err = err
	close(e.done)
}
