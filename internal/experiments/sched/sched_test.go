package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	pool := NewPool(2)
	if pool.Size() != 2 {
		t.Fatalf("size = %d, want 2", pool.Size())
	}
	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = pool.Do(context.Background(), func() error {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds pool size 2", p)
	}
}

func TestPoolDefaultSize(t *testing.T) {
	if NewPool(0).Size() < 1 {
		t.Fatal("default pool has no workers")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache[int](NewPool(4))
	var computes atomic.Int32
	release := make(chan struct{})
	results := make(chan int, 8)
	for i := 0; i < 8; i++ {
		go func() {
			v, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
				computes.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results <- v
		}()
	}
	// Give every goroutine a chance to join the flight before releasing.
	time.Sleep(5 * time.Millisecond)
	close(release)
	for i := 0; i < 8; i++ {
		if v := <-results; v != 42 {
			t.Fatalf("result = %d, want 42", v)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	if c.Len() != 1 {
		t.Fatalf("cache len = %d, want 1", c.Len())
	}
}

func TestWaiterCancellation(t *testing.T) {
	c := NewCache[int](NewPool(1))
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "slow", func(context.Context) (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, "slow", func(context.Context) (int, error) { return 2, nil })
		errc <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter did not return promptly")
	}
	close(release)
}

func TestQueuedJobCancellation(t *testing.T) {
	// One slot, occupied by a blocked leader: a queued job for another
	// key must give up promptly when its context is canceled.
	pool := NewPool(1)
	c := NewCache[int](pool)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "hog", func(context.Context) (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, "queued", func(context.Context) (int, error) { return 2, nil })
		errc <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued error = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued job did not cancel promptly")
	}
	close(release)

	// The queued key must not be poisoned: it can be computed later.
	v, err := c.Do(context.Background(), "queued", func(context.Context) (int, error) { return 3, nil })
	if err != nil || v != 3 {
		t.Fatalf("retry after cancel = (%d, %v), want (3, nil)", v, err)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := NewCache[int](NewPool(1))
	boom := fmt.Errorf("boom")
	if _, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed entry cached; len = %d", c.Len())
	}
	v, err := c.Do(context.Background(), "k", func(context.Context) (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry = (%d, %v), want (7, nil)", v, err)
	}
}

func TestPoolDoCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := NewPool(1).Do(ctx, func() error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("Do on canceled ctx: err=%v ran=%v", err, ran)
	}
}

func TestForEachOrderedResults(t *testing.T) {
	pool := NewPool(3)
	out := make([]int, 16)
	err := ForEach(context.Background(), pool, len(out), func(i int) error {
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachFirstErrorCancels(t *testing.T) {
	pool := NewPool(1)
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForEach(context.Background(), pool, 8, func(i int) error {
		// Whichever job runs first fails (goroutine order is arbitrary).
		if ran.Add(1) == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// With one slot and the first job failing, later jobs should mostly
	// be canceled before they start.
	if ran.Load() == 8 {
		t.Fatal("error did not cancel remaining jobs")
	}
}

func TestWaiterSurvivesLeaderCancellation(t *testing.T) {
	// A waiter with a live context must not inherit the leader's
	// context.Canceled — it retries the key as the new leader.
	c := NewCache[int](NewPool(2))
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inFn := make(chan struct{})
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Do(leaderCtx, "k", func(ctx context.Context) (int, error) {
			close(inFn)
			<-ctx.Done()
			return 0, ctx.Err()
		})
		leaderErr <- err
	}()
	<-inFn

	waiterVal := make(chan int, 1)
	go func() {
		v, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
			return 7, nil
		})
		if err != nil {
			t.Error("waiter inherited leader's fate:", err)
		}
		waiterVal <- v
	}()
	time.Sleep(2 * time.Millisecond) // let the waiter join the flight
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want Canceled", err)
	}
	select {
	case v := <-waiterVal:
		if v != 7 {
			t.Fatalf("waiter got %d, want 7 (recomputed)", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never recovered from leader cancellation")
	}
}
