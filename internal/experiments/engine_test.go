package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/replacement"
	"repro/internal/workload"
)

// engineOptions is a bit smaller than tinyOptions: the determinism test
// runs Fig7 and Fig9 twice over.
func engineOptions(parallelism int) Options {
	return Options{
		Insts:         30_000,
		Interval:      15_000,
		SampleRate:    8,
		L2SizeKB:      1024,
		WorkloadLimit: 1,
		Parallelism:   parallelism,
	}
}

// TestParallelDeterminism asserts the engine's central guarantee: the
// figures' CSV output is byte-identical at Parallelism 1 and 8.
func TestParallelDeterminism(t *testing.T) {
	ctx := context.Background()
	type output struct{ fig7, fig9 string }
	render := func(parallelism int) output {
		h := New(engineOptions(parallelism))
		d7, err := h.Fig7(ctx)
		if err != nil {
			t.Fatal(err)
		}
		d9, err := h.Fig9(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return output{d7.CSV(), d9.CSV()}
	}
	serial := render(1)
	parallel := render(8)
	if serial.fig7 != parallel.fig7 {
		t.Errorf("Fig7 CSV differs between Parallelism 1 and 8:\nserial:\n%s\nparallel:\n%s",
			serial.fig7, parallel.fig7)
	}
	if serial.fig9 != parallel.fig9 {
		t.Errorf("Fig9 CSV differs between Parallelism 1 and 8:\nserial:\n%s\nparallel:\n%s",
			serial.fig9, parallel.fig9)
	}
}

// TestSingleflightSharedConfig asserts that concurrent requests for the
// same configuration simulate it exactly once.
func TestSingleflightSharedConfig(t *testing.T) {
	ctx := context.Background()
	h := New(engineOptions(8))
	w, err := workload.Lookup("2T_01")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	results := make([]float64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := h.Run(ctx, w, replacement.LRU, "", 1024)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.Throughput()
		}(i)
	}
	wg.Wait()
	if n := h.Simulated(); n != 1 {
		t.Fatalf("simulated %d times for one config, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw %v, caller 0 saw %v", i, results[i], results[0])
		}
	}
}

// TestPrefetchDedup asserts duplicated specs collapse to one simulation
// each, and that the OnJob counter reports the deduplicated total.
func TestPrefetchDedup(t *testing.T) {
	ctx := context.Background()
	opt := engineOptions(4)
	var lastDone, lastTotal int
	opt.OnJob = func(done, total int) { lastDone, lastTotal = done, total }
	h := New(opt)
	w, err := workload.Lookup("2T_01")
	if err != nil {
		t.Fatal(err)
	}
	sp := RunSpec{W: w, Kind: replacement.LRU, SizeKB: 1024}
	if err := h.Prefetch(ctx, []RunSpec{sp, sp, sp, isoSpec("gzip", 1024)}); err != nil {
		t.Fatal(err)
	}
	if n := h.Simulated(); n != 2 {
		t.Fatalf("simulated %d configs, want 2", n)
	}
	if lastDone != 2 || lastTotal != 2 {
		t.Fatalf("OnJob last report %d/%d, want 2/2", lastDone, lastTotal)
	}
}

// TestCanceledContext asserts a pre-canceled context stops the engine
// before any simulation starts.
func TestCanceledContext(t *testing.T) {
	h := New(engineOptions(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, err := workload.Lookup("2T_01")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(ctx, w, replacement.LRU, "", 1024); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on canceled ctx: %v, want context.Canceled", err)
	}
	if _, err := h.Fig7(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fig7 on canceled ctx: %v, want context.Canceled", err)
	}
	if n := h.Simulated(); n != 0 {
		t.Fatalf("simulated %d configs on a canceled context, want 0", n)
	}
}

// TestCancellationStopsPool cancels after the first completed job and
// asserts the pool winds down without draining the whole sweep.
func TestCancellationStopsPool(t *testing.T) {
	opt := engineOptions(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt.OnJob = func(done, total int) {
		if done == 1 {
			cancel()
		}
	}
	h := New(opt)
	ws, err := workload.ByThreads(2)
	if err != nil {
		t.Fatal(err)
	}
	var specs []RunSpec
	for _, w := range ws[:6] {
		specs = append(specs, RunSpec{W: w, Kind: replacement.LRU, SizeKB: 1024})
	}
	err = h.Prefetch(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Prefetch after cancel: %v, want context.Canceled", err)
	}
	// With one worker slot, at most the job that triggered the cancel
	// plus one already-started successor can complete.
	if n := h.Simulated(); n >= int64(len(specs)) {
		t.Fatalf("simulated %d of %d jobs despite cancellation", n, len(specs))
	}
}
