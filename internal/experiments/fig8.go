package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/replacement"
	"repro/internal/stats"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// Fig8Pair couples a partitioned configuration with its non-partitioned
// baseline of the same replacement policy, as in Figure 8's three panels.
type Fig8Pair struct {
	Acronym string           // partitioned config, e.g. "M-0.75N"
	Policy  replacement.Kind // L2 policy for both runs
	Label   string           // panel label
}

// Fig8Pairs are the paper's three panels.
var Fig8Pairs = []Fig8Pair{
	{Acronym: "M-L", Policy: replacement.LRU, Label: "(a) M-L vs non-partitioned LRU"},
	{Acronym: "M-0.75N", Policy: replacement.NRU, Label: "(b) M-0.75N vs non-partitioned NRU"},
	{Acronym: "M-BT", Policy: replacement.BT, Label: "(c) M-BT vs non-partitioned BT"},
}

// Fig8Data holds Figure 8: per-2T-workload throughput of the partitioned
// configuration relative to the non-partitioned cache of the same policy,
// for each L2 size.
type Fig8Data struct {
	Sizes     []int // KB
	Pairs     []Fig8Pair
	Workloads []string
	// Rel[pairIdx][workloadIdx][sizeIdx] = relative throughput.
	Rel [][][]float64
	// Avg[pairIdx][sizeIdx] = arithmetic mean over workloads (the paper's
	// AVG bar).
	Avg [][]float64
}

// Fig8 runs the Figure 8 experiment over the 24 two-thread workloads and
// the paper's three cache sizes.
func (h *Harness) Fig8(ctx context.Context) (*Fig8Data, error) {
	return h.Fig8With(ctx, []int{512, 1024, 2048}, Fig8Pairs)
}

// Fig8With runs Figure 8 with custom sizes and pairs.
func (h *Harness) Fig8With(ctx context.Context, sizesKB []int, pairs []Fig8Pair) (*Fig8Data, error) {
	ws, err := workload.ByThreads(2)
	if err != nil {
		return nil, err
	}
	ws = h.limitWorkloads(ws)
	data := &Fig8Data{Sizes: sizesKB, Pairs: pairs}
	for _, w := range ws {
		data.Workloads = append(data.Workloads, w.Name)
	}

	// Every (pair, workload, size) needs a partitioned run and its
	// non-partitioned baseline; prefetch them all through the pool.
	var specs []RunSpec
	for _, pair := range pairs {
		for _, w := range ws {
			for _, size := range sizesKB {
				specs = append(specs,
					RunSpec{W: w, Kind: pair.Policy, SizeKB: size},
					RunSpec{W: w, Kind: pair.Policy, Acronym: pair.Acronym, SizeKB: size})
			}
		}
	}
	if err := h.Prefetch(ctx, specs); err != nil {
		return nil, err
	}

	for pi, pair := range pairs {
		perW := make([][]float64, len(ws))
		avg := make([]float64, len(sizesKB))
		for wi, w := range ws {
			perW[wi] = make([]float64, len(sizesKB))
			for si, size := range sizesKB {
				baseRes, err := h.Run(ctx, w, pair.Policy, "", size)
				if err != nil {
					return nil, err
				}
				partRes, err := h.Run(ctx, w, pair.Policy, pair.Acronym, size)
				if err != nil {
					return nil, err
				}
				rel := partRes.Throughput() / baseRes.Throughput()
				perW[wi][si] = rel
			}
		}
		for si := range sizesKB {
			col := make([]float64, len(ws))
			for wi := range ws {
				col[wi] = perW[wi][si]
			}
			avg[si] = stats.Mean(col)
		}
		data.Rel = append(data.Rel, perW)
		data.Avg = append(data.Avg, avg)
		_ = pi
	}
	return data, nil
}

// Render formats Figure 8.
func (d *Fig8Data) Render() string {
	var sb strings.Builder
	sb.WriteString(textplot.Heading(
		"Figure 8: partitioned vs non-partitioned throughput, 2-core CMP"))
	for pi, pair := range d.Pairs {
		sb.WriteString("\n" + pair.Label + "\n")
		headers := []string{"Workload"}
		for _, s := range d.Sizes {
			headers = append(headers, fmt.Sprintf("%dKB", s))
		}
		var rows [][]string
		for wi, wn := range d.Workloads {
			row := []string{wn}
			for si := range d.Sizes {
				row = append(row, fmt.Sprintf("%.3f", d.Rel[pi][wi][si]))
			}
			rows = append(rows, row)
		}
		avgRow := []string{"AVG"}
		for si := range d.Sizes {
			avgRow = append(avgRow, fmt.Sprintf("%.3f", d.Avg[pi][si]))
		}
		rows = append(rows, avgRow)
		sb.WriteString(textplot.Table(headers, rows))
	}
	return sb.String()
}

// CSV emits rows: pair,workload,size_kb,rel_throughput (AVG rows use
// workload name "AVG").
func (d *Fig8Data) CSV() string {
	var sb strings.Builder
	sb.WriteString("pair,workload,size_kb,rel_throughput\n")
	for pi, pair := range d.Pairs {
		for wi, wn := range d.Workloads {
			for si, size := range d.Sizes {
				fmt.Fprintf(&sb, "%s,%s,%d,%.6f\n", pair.Acronym, wn, size, d.Rel[pi][wi][si])
			}
		}
		for si, size := range d.Sizes {
			fmt.Fprintf(&sb, "%s,AVG,%d,%.6f\n", pair.Acronym, size, d.Avg[pi][si])
		}
	}
	return sb.String()
}
