package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// Fig9Data holds Figure 9: relative power and energy of the six CPA
// configurations versus C-L (panel a) and the per-component power
// breakdown for the 2-core configurations (panel b).
type Fig9Data struct {
	Cores   []int
	Configs []string
	// RelPower[coreIdx][configIdx], RelEnergy likewise (geomean over
	// workloads of per-workload ratios to C-L).
	RelPower  [][]float64
	RelEnergy [][]float64
	// Breakdown2[configIdx] is the mean component breakdown over the
	// 2-core workloads (Figure 9(b)).
	Breakdown2 []power.Breakdown
}

// Fig9 runs the Figure 9 experiment, reusing any runs Figure 7 already
// cached in the harness (they share all their configurations).
func (h *Harness) Fig9(ctx context.Context) (*Fig9Data, error) {
	params := power.DefaultParams()
	data := &Fig9Data{Cores: []int{2, 4, 8}, Configs: Fig7Configs}
	specs, perCore, err := h.fig7Specs(data.Cores, data.Configs, false)
	if err != nil {
		return nil, err
	}
	if err := h.Prefetch(ctx, specs); err != nil {
		return nil, err
	}
	for coreIdx, cores := range data.Cores {
		ws := perCore[coreIdx]

		relP := make([][]float64, len(data.Configs)) // per config: per-workload ratios
		relE := make([][]float64, len(data.Configs))
		var breakdowns [][]power.Breakdown
		if cores == 2 {
			breakdowns = make([][]power.Breakdown, len(data.Configs))
		}
		for _, w := range ws {
			var baseP, baseE float64
			for ci, acr := range data.Configs {
				kind, err := policyOf(acr)
				if err != nil {
					return nil, err
				}
				res, err := h.Run(ctx, w, kind, acr, h.opt.L2SizeKB)
				if err != nil {
					return nil, err
				}
				in := h.PowerInputs(w, res, kind, true, h.opt.L2SizeKB)
				bd := power.Compute(params, in)
				p := bd.Total()
				e := power.EnergyPerInst(params, in)
				if ci == 0 {
					baseP, baseE = p, e
				}
				relP[ci] = append(relP[ci], p/baseP)
				relE[ci] = append(relE[ci], e/baseE)
				if cores == 2 {
					breakdowns[ci] = append(breakdowns[ci], bd)
				}
			}
		}
		rowP := make([]float64, len(data.Configs))
		rowE := make([]float64, len(data.Configs))
		for ci := range data.Configs {
			rowP[ci] = stats.GeoMean(relP[ci])
			rowE[ci] = stats.GeoMean(relE[ci])
		}
		data.RelPower = append(data.RelPower, rowP)
		data.RelEnergy = append(data.RelEnergy, rowE)
		if cores == 2 {
			data.Breakdown2 = make([]power.Breakdown, len(data.Configs))
			for ci := range data.Configs {
				data.Breakdown2[ci] = power.MeanBreakdown(breakdowns[ci])
			}
		}
	}
	return data, nil
}

// ProfilingFraction returns the largest profiling-power share across the
// 2-core configurations — the paper claims it stays below 0.3%.
func (d *Fig9Data) ProfilingFraction() float64 {
	worst := 0.0
	for _, b := range d.Breakdown2 {
		if t := b.Total(); t > 0 {
			if f := b.ProfilingW / t; f > worst {
				worst = f
			}
		}
	}
	return worst
}

// Render formats Figure 9.
func (d *Fig9Data) Render() string {
	var sb strings.Builder
	sb.WriteString(textplot.Heading(
		"Figure 9(a): relative power and energy vs C-L (geomean)"))
	headers := []string{"Cores", "Config", "RelPower", "RelEnergy"}
	var rows [][]string
	for i, cores := range d.Cores {
		for ci, acr := range d.Configs {
			rows = append(rows, []string{
				fmt.Sprint(cores), acr,
				fmt.Sprintf("%.4f", d.RelPower[i][ci]),
				fmt.Sprintf("%.4f", d.RelEnergy[i][ci]),
			})
		}
	}
	sb.WriteString(textplot.Table(headers, rows))

	sb.WriteString(textplot.Heading("Figure 9(b): 2-core component power breakdown"))
	headers = []string{"Config", "Cores(W)", "L2(W)", "Memory(W)", "Profiling(W)", "Profiling(%)"}
	rows = rows[:0]
	for ci, acr := range d.Configs {
		b := d.Breakdown2[ci]
		frac := 0.0
		if t := b.Total(); t > 0 {
			frac = b.ProfilingW / t * 100
		}
		rows = append(rows, []string{
			acr,
			fmt.Sprintf("%.2f", b.CoresW),
			fmt.Sprintf("%.2f", b.L2W),
			fmt.Sprintf("%.3f", b.MemoryW),
			fmt.Sprintf("%.4f", b.ProfilingW),
			fmt.Sprintf("%.3f%%", frac),
		})
	}
	sb.WriteString(textplot.Table(headers, rows))
	fmt.Fprintf(&sb, "\nWorst profiling-power share: %.4f%% (paper: < 0.3%%)\n",
		d.ProfilingFraction()*100)
	return sb.String()
}

// CSV emits rows for both panels.
func (d *Fig9Data) CSV() string {
	var sb strings.Builder
	sb.WriteString("panel,cores,config,metric,value\n")
	for i, cores := range d.Cores {
		for ci, acr := range d.Configs {
			fmt.Fprintf(&sb, "a,%d,%s,rel_power,%.6f\n", cores, acr, d.RelPower[i][ci])
			fmt.Fprintf(&sb, "a,%d,%s,rel_energy,%.6f\n", cores, acr, d.RelEnergy[i][ci])
		}
	}
	for ci, acr := range d.Configs {
		b := d.Breakdown2[ci]
		fmt.Fprintf(&sb, "b,2,%s,cores_w,%.6f\n", acr, b.CoresW)
		fmt.Fprintf(&sb, "b,2,%s,l2_w,%.6f\n", acr, b.L2W)
		fmt.Fprintf(&sb, "b,2,%s,memory_w,%.6f\n", acr, b.MemoryW)
		fmt.Fprintf(&sb, "b,2,%s,profiling_w,%.6f\n", acr, b.ProfilingW)
	}
	return sb.String()
}
