// Package experiments reproduces the paper's evaluation: Table I
// (complexity), Table II (setup), Figure 6 (pseudo-LRU vs LRU on
// non-partitioned caches), Figure 7 (the six CPA configurations), Figure 8
// (partitioned vs non-partitioned across cache sizes) and Figure 9 (power
// and energy).
//
// The harness runs scaled-down simulations by default (the paper commits
// 100 M instructions per thread on a cycle-accurate simulator; see
// EXPERIMENTS.md for the scaling discussion) and caches both isolation
// baselines and complete runs so figures that share configurations — 7 and
// 9 — reuse work.
package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cmp"
	"repro/internal/complexity"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/profiling"
	"repro/internal/replacement"
	"repro/internal/workload"
)

// Options scale the experiments.
type Options struct {
	Insts      uint64 // per-thread instruction target
	Interval   uint64 // repartition interval in cycles
	SampleRate int    // ATD set sampling (paper: 32)
	L2SizeKB   int    // default L2 capacity for Figures 6, 7, 9
	// WorkloadLimit caps the number of workloads per thread count
	// (0 = all); used to keep tests and smoke runs fast.
	WorkloadLimit int
	// Progress, when non-nil, receives one line per completed run.
	Progress func(format string, args ...any)
}

// DefaultOptions returns the scaled defaults recorded in EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Insts:      1_000_000,
		Interval:   250_000,
		SampleRate: 32,
		L2SizeKB:   2048,
	}
}

// Harness runs simulations with caching.
type Harness struct {
	opt      Options
	runCache map[string]cmp.Results
	isoCache map[string]float64
}

// New returns a harness for the options.
func New(opt Options) *Harness {
	if opt.Insts == 0 {
		opt = DefaultOptions()
	}
	return &Harness{
		opt:      opt,
		runCache: make(map[string]cmp.Results),
		isoCache: make(map[string]float64),
	}
}

// Options returns the harness options.
func (h *Harness) Options() Options { return h.opt }

func (h *Harness) progress(format string, args ...any) {
	if h.opt.Progress != nil {
		h.opt.Progress(format, args...)
	}
}

// limitWorkloads applies Options.WorkloadLimit.
func (h *Harness) limitWorkloads(ws []workload.Workload) []workload.Workload {
	if h.opt.WorkloadLimit > 0 && len(ws) > h.opt.WorkloadLimit {
		return ws[:h.opt.WorkloadLimit]
	}
	return ws
}

// l2Config builds the shared L2 for a run.
func (h *Harness) l2Config(kind replacement.Kind, cores, sizeKB int) cache.Config {
	return cache.Config{
		Name:      "L2",
		SizeBytes: sizeKB * 1024,
		LineBytes: 128,
		Ways:      16,
		Policy:    kind,
		Cores:     cores,
		Seed:      7777,
	}
}

// Run simulates `w` on a `sizeKB` L2 with the given replacement policy and
// optional CPA acronym (empty = non-partitioned), caching the result.
func (h *Harness) Run(w workload.Workload, kind replacement.Kind, acronym string, sizeKB int) (cmp.Results, error) {
	key := fmt.Sprintf("%s|%s|%s|%d", w.Name, kind, acronym, sizeKB)
	if res, ok := h.runCache[key]; ok {
		return res, nil
	}
	cfg := cmp.Config{
		Workload: w,
		L2:       h.l2Config(kind, w.Threads(), sizeKB),
		Params:   cpu.DefaultParams(),
		L1:       cpu.DefaultL1Config(128),
		MaxInsts: h.opt.Insts,
	}
	if acronym != "" {
		cpaCfg, err := core.ParseAcronym(acronym)
		if err != nil {
			return cmp.Results{}, err
		}
		cpaCfg.Interval = h.opt.Interval
		cpaCfg.SampleRate = h.opt.SampleRate
		cfg.CPA = &cpaCfg
	}
	sys, err := cmp.New(cfg)
	if err != nil {
		return cmp.Results{}, fmt.Errorf("experiments: %s: %w", key, err)
	}
	res := sys.Run()
	h.runCache[key] = res
	h.progress("ran %-26s throughput=%.3f", key, res.Throughput())
	return res, nil
}

// IsolationIPC returns the benchmark's IPC running alone on a full
// `sizeKB` LRU L2 (the weighted-speedup denominator; DESIGN.md §4.7).
func (h *Harness) IsolationIPC(bench string, sizeKB int) (float64, error) {
	key := fmt.Sprintf("%s|%d", bench, sizeKB)
	if ipc, ok := h.isoCache[key]; ok {
		return ipc, nil
	}
	w := workload.Workload{Name: "iso_" + bench, Benchmarks: []string{bench}}
	res, err := h.Run(w, replacement.LRU, "", sizeKB)
	if err != nil {
		return 0, err
	}
	ipc := res.PerCore[0].IPC
	h.isoCache[key] = ipc
	return ipc, nil
}

// Summarize converts run results into the paper's three metrics using the
// isolation baselines for the same cache size.
func (h *Harness) Summarize(w workload.Workload, res cmp.Results, sizeKB int) (metrics.Summary, error) {
	threads := make([]metrics.Thread, len(res.PerCore))
	for i, c := range res.PerCore {
		iso, err := h.IsolationIPC(w.Benchmarks[i], sizeKB)
		if err != nil {
			return metrics.Summary{}, err
		}
		threads[i] = metrics.Thread{Benchmark: c.Benchmark, IPC: c.IPC, IsolationIPC: iso}
	}
	return metrics.Compute(threads)
}

// policyOf maps a CPA acronym to the L2 replacement policy it requires.
func policyOf(acronym string) (replacement.Kind, error) {
	cfg, err := core.ParseAcronym(acronym)
	if err != nil {
		return 0, err
	}
	return cfg.Policy, nil
}

// PowerInputs assembles the power-model inputs for a finished run.
func (h *Harness) PowerInputs(w workload.Workload, res cmp.Results, kind replacement.Kind, partitioned bool, sizeKB int) power.Inputs {
	geom := complexity.Geometry{
		SizeBytes: sizeKB * 1024,
		LineBytes: 128,
		Ways:      16,
		Cores:     w.Threads(),
		TagBits:   47,
		LineBits:  128 * 8,
	}
	extraKB := complexity.StorageKB(kind, geom, partitioned)
	var insts uint64
	for _, c := range res.PerCore {
		insts += c.Insts
	}
	if partitioned {
		// Per-core sampled ATD + SDH registers.
		atdCfg := profiling.Config{
			L2Sets: geom.Sets(), Ways: 16, LineBytes: 128,
			SampleRate: h.opt.SampleRate, Kind: kind, NRUScale: 1,
		}
		atdBits := atdCfg.StorageBits(geom.TagBits) + (16+1)*32 // SDH: 17 32-bit registers
		extraKB += float64(w.Threads()) * float64(atdBits) / 8 / 1024
	}
	return power.Inputs{
		Cores:        w.Threads(),
		SumIPC:       res.Throughput(),
		Cycles:       res.FinishCycles,
		Insts:        insts,
		L2SizeMB:     float64(sizeKB) / 1024,
		L2Accesses:   res.L2Accesses,
		L2Misses:     res.L2Misses,
		MemWrites:    res.MemWrites,
		ATDObserves:  res.ATDObserves,
		ExtraStateKB: extraKB,
	}
}
