// Package experiments reproduces the paper's evaluation: Table I
// (complexity), Table II (setup), Figure 6 (pseudo-LRU vs LRU on
// non-partitioned caches), Figure 7 (the six CPA configurations), Figure 8
// (partitioned vs non-partitioned across cache sizes) and Figure 9 (power
// and energy).
//
// The harness runs scaled-down simulations by default (the paper commits
// 100 M instructions per thread on a cycle-accurate simulator; see
// EXPERIMENTS.md for the scaling discussion) and memoizes runs so figures
// that share configurations — 7 and 9 — reuse work.
//
// Simulations execute through a bounded worker pool (internal/
// experiments/sched): each figure first gathers the full list of
// simulations it needs, prefetches them concurrently, then assembles its
// data serially from the memoized results. Because every simulation is
// seeded from its own configuration and shares no state with its
// siblings, the assembled figures are bit-identical at any Parallelism
// setting, including 1.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/cmp"
	"repro/internal/complexity"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/experiments/sched"
	"repro/internal/metrics"
	"repro/internal/optref"
	"repro/internal/power"
	"repro/internal/profiling"
	"repro/internal/replacement"
	"repro/internal/workload"
)

// Options scale the experiments.
type Options struct {
	Insts      uint64 // per-thread instruction target
	Interval   uint64 // repartition interval in cycles
	SampleRate int    // ATD set sampling (paper: 32)
	L2SizeKB   int    // default L2 capacity for Figures 6, 7, 9
	// WorkloadLimit caps the number of workloads per thread count
	// (0 = all); used to keep tests and smoke runs fast.
	WorkloadLimit int
	// Parallelism bounds how many simulations run concurrently
	// (0 = GOMAXPROCS). Figure output is bit-identical at any setting.
	Parallelism int
	// Progress, when non-nil, receives one line per completed
	// simulation. It may be called from multiple goroutines at once and
	// must be safe for concurrent use.
	Progress func(format string, args ...any)
	// OnJob, when non-nil, receives (completed, total) after each
	// prefetched simulation finishes; calls are serialized. cmd/repro
	// uses it for a live completed/total counter.
	OnJob func(done, total int)
}

// DefaultOptions returns the scaled defaults recorded in EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{
		Insts:      1_000_000,
		Interval:   250_000,
		SampleRate: 32,
		L2SizeKB:   2048,
	}
}

// Harness runs simulations through a shared worker pool, memoizing every
// unique configuration so overlapping figures simulate it once.
type Harness struct {
	opt       Options
	pool      *sched.Pool
	runs      *sched.Cache[cmp.Results]
	optRuns   *sched.Cache[optref.Stats] // Belady replays, keyed per workload × size
	simulated atomic.Int64               // completed simulations (cache misses only)
}

// New returns a harness for the options; zero fields take the
// DefaultOptions values (Parallelism 0 = GOMAXPROCS).
func New(opt Options) *Harness {
	def := DefaultOptions()
	if opt.Insts == 0 {
		opt.Insts = def.Insts
	}
	if opt.Interval == 0 {
		opt.Interval = def.Interval
	}
	if opt.SampleRate == 0 {
		opt.SampleRate = def.SampleRate
	}
	if opt.L2SizeKB == 0 {
		opt.L2SizeKB = def.L2SizeKB
	}
	pool := sched.NewPool(opt.Parallelism)
	return &Harness{
		opt:     opt,
		pool:    pool,
		runs:    sched.NewCache[cmp.Results](pool),
		optRuns: sched.NewCache[optref.Stats](pool),
	}
}

// Options returns the harness options.
func (h *Harness) Options() Options { return h.opt }

// Parallelism reports the worker-pool size actually in use.
func (h *Harness) Parallelism() int { return h.pool.Size() }

// Simulated reports how many simulations actually executed (cache hits
// and singleflight followers excluded).
func (h *Harness) Simulated() int64 { return h.simulated.Load() }

// CachedRuns reports how many unique configurations are memoized.
func (h *Harness) CachedRuns() int { return h.runs.Len() }

func (h *Harness) progress(format string, args ...any) {
	if h.opt.Progress != nil {
		h.opt.Progress(format, args...)
	}
}

// limitWorkloads applies Options.WorkloadLimit.
func (h *Harness) limitWorkloads(ws []workload.Workload) []workload.Workload {
	if h.opt.WorkloadLimit > 0 && len(ws) > h.opt.WorkloadLimit {
		return ws[:h.opt.WorkloadLimit]
	}
	return ws
}

// l2Config builds the shared L2 for a run.
func (h *Harness) l2Config(kind replacement.Kind, cores, sizeKB int) cache.Config {
	return cache.Config{
		Name:      "L2",
		SizeBytes: sizeKB * 1024,
		LineBytes: 128,
		Ways:      16,
		Policy:    kind,
		Cores:     cores,
		Seed:      7777,
	}
}

// RunSpec identifies one simulation: a workload on a sizeKB L2 under the
// given replacement policy and optional CPA acronym (empty =
// non-partitioned). It doubles as the run-cache key.
type RunSpec struct {
	W       workload.Workload
	Kind    replacement.Kind
	Acronym string
	SizeKB  int
}

func (sp RunSpec) key() string {
	return fmt.Sprintf("%s|%s|%s|%d", sp.W.Name, sp.Kind, sp.Acronym, sp.SizeKB)
}

// isoWorkload is the single-thread workload used for isolation baselines.
func isoWorkload(bench string) workload.Workload {
	return workload.Workload{Name: "iso_" + bench, Benchmarks: []string{bench}}
}

// isoSpec is the isolation-baseline run for a benchmark: alone on a full
// sizeKB LRU L2 (the weighted-speedup denominator; DESIGN.md §4.7).
func isoSpec(bench string, sizeKB int) RunSpec {
	return RunSpec{W: isoWorkload(bench), Kind: replacement.LRU, SizeKB: sizeKB}
}

// Run simulates the spec described by its arguments, memoizing the
// result. Concurrent callers of the same configuration share a single
// simulation (singleflight).
func (h *Harness) Run(ctx context.Context, w workload.Workload, kind replacement.Kind, acronym string, sizeKB int) (cmp.Results, error) {
	return h.run(ctx, RunSpec{W: w, Kind: kind, Acronym: acronym, SizeKB: sizeKB})
}

func (h *Harness) run(ctx context.Context, sp RunSpec) (cmp.Results, error) {
	key := sp.key()
	return h.runs.Do(ctx, key, func(ctx context.Context) (cmp.Results, error) {
		cfg := cmp.Config{
			Workload: sp.W,
			L2:       h.l2Config(sp.Kind, sp.W.Threads(), sp.SizeKB),
			Params:   cpu.DefaultParams(),
			L1:       cpu.DefaultL1Config(128),
			MaxInsts: h.opt.Insts,
		}
		if sp.Acronym != "" {
			cpaCfg, err := core.ParseAcronym(sp.Acronym)
			if err != nil {
				return cmp.Results{}, err
			}
			cpaCfg.Interval = h.opt.Interval
			cpaCfg.SampleRate = h.opt.SampleRate
			cfg.CPA = &cpaCfg
		}
		sys, err := cmp.New(cfg)
		if err != nil {
			return cmp.Results{}, fmt.Errorf("experiments: %s: %w", key, err)
		}
		res, err := sys.RunContext(ctx)
		if err != nil {
			return cmp.Results{}, err
		}
		h.simulated.Add(1)
		h.progress("ran %-26s throughput=%.3f", key, res.Throughput())
		return res, nil
	})
}

// Prefetch pushes every spec through the worker pool, deduplicating
// against each other and the run cache, and waits for all of them. It
// cancels outstanding work and returns on the first error. Figures call
// it before their serial assembly loops so the expensive simulations run
// in parallel while the assembled output stays deterministic.
func (h *Harness) Prefetch(ctx context.Context, specs []RunSpec) error {
	seen := make(map[string]bool, len(specs))
	uniq := make([]RunSpec, 0, len(specs))
	for _, sp := range specs {
		if k := sp.key(); !seen[k] {
			seen[k] = true
			uniq = append(uniq, sp)
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	for _, sp := range uniq {
		wg.Add(1)
		go func(sp RunSpec) {
			defer wg.Done()
			_, err := h.run(ctx, sp)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				return
			}
			done++
			if h.opt.OnJob != nil {
				h.opt.OnJob(done, len(uniq))
			}
		}(sp)
	}
	wg.Wait()
	return firstErr
}

// IsolationIPC returns the benchmark's IPC running alone on a full
// `sizeKB` LRU L2. The underlying run is memoized like any other.
func (h *Harness) IsolationIPC(ctx context.Context, bench string, sizeKB int) (float64, error) {
	res, err := h.run(ctx, isoSpec(bench, sizeKB))
	if err != nil {
		return 0, err
	}
	return res.PerCore[0].IPC, nil
}

// Summarize converts run results into the paper's three metrics using the
// isolation baselines for the same cache size.
func (h *Harness) Summarize(ctx context.Context, w workload.Workload, res cmp.Results, sizeKB int) (metrics.Summary, error) {
	threads := make([]metrics.Thread, len(res.PerCore))
	for i, c := range res.PerCore {
		iso, err := h.IsolationIPC(ctx, w.Benchmarks[i], sizeKB)
		if err != nil {
			return metrics.Summary{}, err
		}
		threads[i] = metrics.Thread{Benchmark: c.Benchmark, IPC: c.IPC, IsolationIPC: iso}
	}
	return metrics.Compute(threads)
}

// policyOf maps a CPA acronym to the L2 replacement policy it requires.
func policyOf(acronym string) (replacement.Kind, error) {
	cfg, err := core.ParseAcronym(acronym)
	if err != nil {
		return 0, err
	}
	return cfg.Policy, nil
}

// PowerInputs assembles the power-model inputs for a finished run.
func (h *Harness) PowerInputs(w workload.Workload, res cmp.Results, kind replacement.Kind, partitioned bool, sizeKB int) power.Inputs {
	geom := complexity.Geometry{
		SizeBytes: sizeKB * 1024,
		LineBytes: 128,
		Ways:      16,
		Cores:     w.Threads(),
		TagBits:   47,
		LineBits:  128 * 8,
	}
	extraKB := complexity.StorageKB(kind, geom, partitioned)
	var insts uint64
	for _, c := range res.PerCore {
		insts += c.Insts
	}
	if partitioned {
		// Per-core sampled ATD + SDH registers.
		atdCfg := profiling.Config{
			L2Sets: geom.Sets(), Ways: 16, LineBytes: 128,
			SampleRate: h.opt.SampleRate, Kind: kind, NRUScale: 1,
		}
		atdBits := atdCfg.StorageBits(geom.TagBits) + (16+1)*32 // SDH: 17 32-bit registers
		extraKB += float64(w.Threads()) * float64(atdBits) / 8 / 1024
	}
	return power.Inputs{
		Cores:        w.Threads(),
		SumIPC:       res.Throughput(),
		Cycles:       res.FinishCycles,
		Insts:        insts,
		L2SizeMB:     float64(sizeKB) / 1024,
		L2Accesses:   res.L2Accesses,
		L2Misses:     res.L2Misses,
		MemWrites:    res.MemWrites,
		ATDObserves:  res.ATDObserves,
		ExtraStateKB: extraKB,
	}
}
