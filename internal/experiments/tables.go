package experiments

import (
	"fmt"
	"strings"

	"repro/internal/complexity"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// Table1 renders the paper's Table I (complexity of the LRU, NRU and BT
// replacement schemes) for the paper's example geometry.
func Table1() string {
	g := complexity.PaperGeometry()
	var sb strings.Builder
	sb.WriteString(textplot.Heading(
		"Table I: complexity of LRU, NRU and BT (16-way 2MB L2, 128B lines, 2 cores, 47 tag bits)"))
	headers := []string{"Quantity", "LRU", "NRU", "BT"}
	var rows [][]string
	for _, r := range complexity.Report(g) {
		rows = append(rows, append([]string{r.Label}, r.Values[:]...))
	}
	sb.WriteString(textplot.Table(headers, rows))
	sb.WriteString("\nPaper reference points: LRU 8 KB, NRU 2 KB (+pointer), BT 1.875 KB;\n" +
		"tag compare 752 bits; LRU worst-case update 64 bits; NRU 15+4; BT 4.\n")
	return sb.String()
}

// Table2 renders the paper's Table II: the processor setup and all 49
// multiprogrammed workloads.
func Table2() string {
	var sb strings.Builder
	sb.WriteString(textplot.Heading("Table II: baseline processor configuration"))
	sb.WriteString(`CORE:      8-wide out-of-order (modeled by per-benchmark BaseIPC), 98-entry window
Branch:    tournament (best of bimodal & gshare), BTB 1KB 4-way, min penalty 3 cycles
L1 D:      32KB, 2-way, 128B lines, LRU, 11-cycle miss penalty
L1 I:      64KB, 2-way (folded into BaseIPC; see DESIGN.md §5)
L2:        unified shared, 2MB, 16-way, 128B lines, 250-cycle miss penalty
CPA:       MinMisses, 1M-cycle interval (scaled by harness options)
`)
	sb.WriteString(textplot.Heading("Table II: workloads"))
	for _, n := range []int{2, 4, 8} {
		ws, err := workload.ByThreads(n)
		if err != nil {
			continue
		}
		for _, w := range ws {
			fmt.Fprintf(&sb, "%-6s %s\n", w.Name, strings.Join(w.Benchmarks, ", "))
		}
	}
	return sb.String()
}
