// Package optref is the offline-optimal (Belady/OPT) reference engine:
// given a recorded access trace, it computes the eviction decisions an
// omniscient policy would make under the same set/way/partition-mask
// constraints the real replacement policies operate under, and reports
// the resulting hit counts. Every online policy's hit rate divided by
// OPT's is its measured competitive position — the principled yardstick
// "On the complexity of cache analysis for different replacement
// policies" and "A Unified Framework for Quantitative Cache Analysis"
// (PAPERS.md) frame policies by, and the scoreboard the experiment
// harness and the cpacache differential suite grade against.
//
// The engine is two-pass. Pass one walks the trace backward building a
// next-use index: for every reference, the position of the next
// reference to the same line (or "never"). Pass two replays the trace
// forward against a simulated set-associative array, resolving hits
// through a resident-line map in O(1) and misses by scanning the at
// most `ways` candidate slots for the one whose next use lies farthest
// in the future — Belady's choice — restricted to the requesting
// core's way mask. With fixed associativity the whole replay is O(1)
// amortized per access.
//
// Mask constraints mirror the online policies exactly: a fill prefers
// an invalid way inside the requester's partition mask, then any
// invalid way (cold misses may spill across partitions, as in both
// internal/cache and pkg/cpacache), and only then evicts — always from
// inside the mask. Masks can change mid-trace (the paper's dynamic
// repartitioning); the recorded mask updates replay at the exact trace
// positions they occurred at.
//
// Three reference semantics cover both consumers: Access is a hardware
// demand access (hit, or miss that fills — internal/cmp's L2 stream);
// Lookup and Store split the software cache's Get/Set pair (a Lookup
// miss does not fill; a Store installs or refreshes without counting as
// a hit or a miss). Belady's exchange argument makes the farthest-
// next-use choice optimal for demand-fill traces; for Lookup/Store
// traces it is the same deterministic yardstick applied to the
// recorded fill points.
package optref

import (
	"fmt"
	"math"

	"repro/pkg/plru"
)

// Op identifies a trace event's semantics.
type Op uint8

const (
	// OpAccess is a demand access: a hit, or a miss that fills the line
	// (hardware cache semantics — what internal/cmp's L2 sees).
	OpAccess Op = iota
	// OpLookup is a pure lookup: a hit or a miss, never a fill
	// (pkg/cpacache's Get).
	OpLookup
	// OpStore installs the line if absent (choosing a victim if the set
	// is full) or refreshes it if resident; it counts neither a hit nor
	// a miss (pkg/cpacache's Set).
	OpStore
	// opMasks is an interleaved partition-mask update; the event's Line
	// indexes Trace.masks.
	opMasks
)

// Event is one recorded reference (or mask update) in a Trace.
type Event struct {
	Op   Op
	Core int32  // requesting core / tenant
	Set  int32  // cache set the line maps to
	Line uint64 // the line's full identity (address line or cache key)
}

// Trace is a recorded access stream with interleaved mask updates.
// Record with Access/Lookup/Store/SetMasks in execution order; the zero
// value is ready to use. A Trace is not safe for concurrent recording.
type Trace struct {
	events []Event
	masks  [][]plru.WayMask
}

// Access records a demand access (fills on miss).
func (t *Trace) Access(core, set int, line uint64) {
	t.events = append(t.events, Event{Op: OpAccess, Core: int32(core), Set: int32(set), Line: line})
}

// Lookup records a pure lookup (never fills).
func (t *Trace) Lookup(core, set int, line uint64) {
	t.events = append(t.events, Event{Op: OpLookup, Core: int32(core), Set: int32(set), Line: line})
}

// Store records an install/refresh (fills on absence, no hit/miss).
func (t *Trace) Store(core, set int, line uint64) {
	t.events = append(t.events, Event{Op: OpStore, Core: int32(core), Set: int32(set), Line: line})
}

// SetMasks records a partition-mask change taking effect at this trace
// position; masks[core] scopes which ways core may evict from. The
// slice is copied.
func (t *Trace) SetMasks(masks []plru.WayMask) {
	t.masks = append(t.masks, append([]plru.WayMask(nil), masks...))
	t.events = append(t.events, Event{Op: opMasks, Line: uint64(len(t.masks) - 1)})
}

// Len reports the number of recorded reference events (mask updates
// excluded).
func (t *Trace) Len() int {
	n := 0
	for _, ev := range t.events {
		if ev.Op != opMasks {
			n++
		}
	}
	return n
}

// Config describes the geometry OPT replays against — the same sets,
// ways and core count the traced cache had.
type Config struct {
	Sets, Ways, Cores int
	// Masks are the initial per-core partition masks; nil means every
	// core may evict from every way until the first recorded SetMasks.
	Masks []plru.WayMask
}

func (c Config) validate() error {
	if c.Sets <= 0 {
		return fmt.Errorf("optref: sets must be positive, got %d", c.Sets)
	}
	if c.Ways <= 0 || c.Ways > plru.MaxWays {
		return fmt.Errorf("optref: ways must be in [1,%d], got %d", plru.MaxWays, c.Ways)
	}
	if c.Cores <= 0 {
		return fmt.Errorf("optref: cores must be positive, got %d", c.Cores)
	}
	if c.Masks != nil && len(c.Masks) != c.Cores {
		return fmt.Errorf("optref: %d masks for %d cores", len(c.Masks), c.Cores)
	}
	return nil
}

// CoreStats counts one core's references under OPT replay.
type CoreStats struct {
	Accesses uint64 // counted references (Access + Lookup)
	Hits     uint64
}

// Misses returns Accesses - Hits.
func (c CoreStats) Misses() uint64 { return c.Accesses - c.Hits }

// Stats is the outcome of an OPT replay.
type Stats struct {
	PerCore []CoreStats
}

// Accesses sums counted references over cores.
func (s Stats) Accesses() uint64 {
	var t uint64
	for _, c := range s.PerCore {
		t += c.Accesses
	}
	return t
}

// Hits sums hits over cores.
func (s Stats) Hits() uint64 {
	var t uint64
	for _, c := range s.PerCore {
		t += c.Hits
	}
	return t
}

// Misses sums misses over cores.
func (s Stats) Misses() uint64 { return s.Accesses() - s.Hits() }

// HitRate returns Hits/Accesses (0 for an empty trace).
func (s Stats) HitRate() float64 {
	if acc := s.Accesses(); acc > 0 {
		return float64(s.Hits()) / float64(acc)
	}
	return 0
}

// setLine identifies a cacheable object: the set it maps to plus its
// full line identity (two keys may share low bits but map to different
// sets; the pair is what residency means).
type setLine struct {
	set  int32
	line uint64
}

// never marks a reference whose line is not referenced again.
const never = math.MaxInt64

// Replay runs the mask-constrained Belady simulation over the trace and
// returns the per-core hit statistics. Replay is deterministic: ties in
// the farthest-next-use choice break toward the lowest way index.
func Replay(cfg Config, tr *Trace) (Stats, error) {
	if err := cfg.validate(); err != nil {
		return Stats{}, err
	}
	full := plru.Full(cfg.Ways)
	masks := make([]plru.WayMask, cfg.Cores)
	for i := range masks {
		if cfg.Masks != nil {
			masks[i] = cfg.Masks[i] & full
		} else {
			masks[i] = full
		}
	}

	events := tr.events
	// Pass one: next-use indexing. nextUse[i] is the index of the next
	// reference to events[i]'s line, or never.
	nextUse := make([]int64, len(events))
	last := make(map[setLine]int64)
	for i := len(events) - 1; i >= 0; i-- {
		ev := events[i]
		if ev.Op == opMasks {
			continue
		}
		if ev.Set < 0 || int(ev.Set) >= cfg.Sets {
			return Stats{}, fmt.Errorf("optref: event %d references set %d outside [0,%d)", i, ev.Set, cfg.Sets)
		}
		if ev.Core < 0 || int(ev.Core) >= cfg.Cores {
			return Stats{}, fmt.Errorf("optref: event %d references core %d outside [0,%d)", i, ev.Core, cfg.Cores)
		}
		k := setLine{set: ev.Set, line: ev.Line}
		if nxt, ok := last[k]; ok {
			nextUse[i] = nxt
		} else {
			nextUse[i] = never
		}
		last[k] = int64(i)
	}

	// Pass two: forward Belady replay.
	slotLine := make([]uint64, cfg.Sets*cfg.Ways)
	slotNext := make([]int64, cfg.Sets*cfg.Ways)
	validMask := make([]plru.WayMask, cfg.Sets) // valid ways per set
	resident := make(map[setLine]int32, cfg.Sets*cfg.Ways)
	stats := Stats{PerCore: make([]CoreStats, cfg.Cores)}

	for i, ev := range events {
		if ev.Op == opMasks {
			upd := tr.masks[ev.Line]
			for c := 0; c < cfg.Cores && c < len(upd); c++ {
				if m := upd[c] & full; m != 0 {
					masks[c] = m
				}
			}
			continue
		}
		st := &stats.PerCore[ev.Core]
		if ev.Op != OpStore {
			st.Accesses++
		}
		k := setLine{set: ev.Set, line: ev.Line}
		base := int(ev.Set) * cfg.Ways
		if w, ok := resident[k]; ok {
			// Hit (or Store refresh): push the line's next use forward.
			if ev.Op != OpStore {
				st.Hits++
			}
			slotNext[base+int(w)] = nextUse[i]
			continue
		}
		if ev.Op == OpLookup {
			continue // lookup miss: no fill
		}
		// Fill: invalid way inside the mask, then any invalid way, then
		// Belady's victim inside the mask.
		mask := masks[ev.Core]
		way := -1
		if inv := mask &^ validMask[ev.Set]; inv != 0 {
			way = inv.Nth(0)
		} else if inv := full &^ validMask[ev.Set]; inv != 0 {
			way = inv.Nth(0)
		} else {
			farthest := int64(-1)
			for m := mask; m != 0; {
				w := m.Nth(0)
				m = m.Without(w)
				if nxt := slotNext[base+w]; nxt > farthest {
					farthest = nxt
					way = w
				}
			}
			delete(resident, setLine{set: ev.Set, line: slotLine[base+way]})
		}
		slotLine[base+way] = ev.Line
		slotNext[base+way] = nextUse[i]
		validMask[ev.Set] = validMask[ev.Set].With(way)
		resident[k] = int32(way)
	}
	return stats, nil
}
