package optref

import (
	"testing"

	"repro/pkg/plru"
)

// TestBeladyHandPicked replays the textbook example on one 2-way set:
// the trace a b c a b must keep `a` and `b` when `c` arrives (both are
// reused, c is not... but Belady evicts the *farthest* reuse, which is
// b), so the replay hits on the final `a` but misses the final `b`.
func TestBeladyHandPicked(t *testing.T) {
	tr := &Trace{}
	for _, line := range []uint64{1, 2, 3, 1, 2} {
		tr.Access(0, 0, line)
	}
	st, err := Replay(Config{Sets: 1, Ways: 2, Cores: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses() != 5 {
		t.Fatalf("accesses = %d, want 5", st.Accesses())
	}
	// Misses: 1, 2, 3 (cold), then 3 evicted b=2 (farthest next use),
	// so 1 hits and 2 misses again: 4 misses, 1 hit.
	if st.Hits() != 1 || st.Misses() != 4 {
		t.Fatalf("hits/misses = %d/%d, want 1/4", st.Hits(), st.Misses())
	}
}

// TestBeladyKeepsNearestReuse checks the eviction choice directly: with
// ways {a: next use soon, b: next use far}, filling c must evict b.
func TestBeladyKeepsNearestReuse(t *testing.T) {
	tr := &Trace{}
	tr.Access(0, 0, 10) // a
	tr.Access(0, 0, 20) // b
	tr.Access(0, 0, 30) // c fills, must evict b (reused later than a)
	tr.Access(0, 0, 10) // a: hit if OPT kept it
	tr.Access(0, 0, 20) // b: miss
	tr.Access(0, 0, 30) // c: hit
	st, err := Replay(Config{Sets: 1, Ways: 2, Cores: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits() != 2 {
		t.Fatalf("hits = %d, want 2 (a and c retained)", st.Hits())
	}
}

// TestLookupNeverFills drives Lookup misses and checks they leave no
// residue; Store installs, after which the Lookup hits.
func TestLookupNeverFills(t *testing.T) {
	tr := &Trace{}
	tr.Lookup(0, 0, 7)
	tr.Lookup(0, 0, 7) // still a miss: the first lookup must not fill
	tr.Store(0, 0, 7)
	tr.Lookup(0, 0, 7) // now a hit
	st, err := Replay(Config{Sets: 1, Ways: 4, Cores: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses() != 3 {
		t.Fatalf("accesses = %d, want 3 (Store is uncounted)", st.Accesses())
	}
	if st.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits())
	}
}

// TestMaskConstrainedEviction gives two cores disjoint 1-way masks on a
// full set and checks a core thrashing its own partition never evicts
// the other core's resident line.
func TestMaskConstrainedEviction(t *testing.T) {
	masks := []plru.WayMask{plru.WayMask(0b01), plru.WayMask(0b10)}
	tr := &Trace{}
	tr.Access(1, 0, 100) // core 1's line (fills way 0: invalid-anywhere spill)
	tr.Access(0, 0, 200) // core 0 fills the other way
	// Core 0 thrashes: each access misses (1-way partition conflict)
	// but must only evict inside mask {0b01}... line 100 landed in way
	// 0 via the cold spill, so give core 1 a stable line in its own way
	// first, then thrash core 0.
	tr.Access(1, 0, 100)
	for i := 0; i < 10; i++ {
		tr.Access(0, 0, uint64(300+i%2))
	}
	tr.Access(1, 0, 100) // must still be resident
	st, err := Replay(Config{Sets: 1, Ways: 2, Cores: 2, Masks: masks}, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Core 1: first access cold miss, the rest hits.
	c1 := st.PerCore[1]
	if c1.Accesses != 3 || c1.Hits != 2 {
		t.Fatalf("core 1 = %d/%d accesses/hits, want 3/2 (its line was evicted across the mask)", c1.Accesses, c1.Hits)
	}
}

// TestMaskUpdateMidTrace starts both cores unpartitioned, then narrows
// the masks mid-trace and checks the update takes effect at its recorded
// position: core 0's post-update fill must evict inside its narrowed
// mask (way 0, holding its own line) even though unconstrained Belady
// would pick core 1's line, whose next use lies farther ahead.
func TestMaskUpdateMidTrace(t *testing.T) {
	tr := &Trace{}
	tr.Access(0, 0, 1) // way 0
	tr.Access(1, 0, 2) // way 1
	tr.SetMasks([]plru.WayMask{plru.WayMask(0b01), plru.WayMask(0b10)})
	tr.Access(0, 0, 3) // must evict line 1 (mask), not line 2 (farthest)
	tr.Access(0, 0, 1) // miss if the mask applied, hit if it was ignored
	tr.Access(1, 0, 2) // hit if the mask applied, miss if it was ignored
	st, err := Replay(Config{Sets: 1, Ways: 2, Cores: 2}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if c0 := st.PerCore[0]; c0.Hits != 0 {
		t.Fatalf("core 0 hits = %d, want 0 (narrowed mask must confine its evictions)", c0.Hits)
	}
	if c1 := st.PerCore[1]; c1.Hits != 1 {
		t.Fatalf("core 1 hits = %d, want 1 (its line crossed-mask evicted)", c1.Hits)
	}
}

// replayOnline replays a demand-access trace through a plru policy with
// exactly optref's fill rules (invalid-in-mask, invalid-anywhere,
// mask-constrained victim), so its hit count is directly comparable to
// Replay's.
func replayOnline(cfg Config, tr *Trace, kind plru.Kind, seed uint64) Stats {
	pol := plru.New(kind, cfg.Sets, cfg.Ways, cfg.Cores, seed)
	full := plru.Full(cfg.Ways)
	masks := make([]plru.WayMask, cfg.Cores)
	for i := range masks {
		if cfg.Masks != nil {
			masks[i] = cfg.Masks[i] & full
		} else {
			masks[i] = full
		}
	}
	pol.SetPartition(masks)
	slotLine := make([]uint64, cfg.Sets*cfg.Ways)
	valid := make([]plru.WayMask, cfg.Sets)
	resident := make(map[setLine]int32)
	stats := Stats{PerCore: make([]CoreStats, cfg.Cores)}
	for _, ev := range tr.events {
		if ev.Op != OpAccess {
			panic("replayOnline handles demand traces only")
		}
		st := &stats.PerCore[ev.Core]
		st.Accesses++
		k := setLine{set: ev.Set, line: ev.Line}
		base := int(ev.Set) * cfg.Ways
		if w, ok := resident[k]; ok {
			st.Hits++
			pol.Touch(int(ev.Set), int(w), int(ev.Core))
			continue
		}
		mask := masks[ev.Core]
		way := -1
		if inv := mask &^ valid[ev.Set]; inv != 0 {
			way = inv.Nth(0)
		} else if inv := full &^ valid[ev.Set]; inv != 0 {
			way = inv.Nth(0)
		} else {
			way = pol.Victim(int(ev.Set), int(ev.Core), mask)
			delete(resident, setLine{set: ev.Set, line: slotLine[base+way]})
		}
		slotLine[base+way] = ev.Line
		valid[ev.Set] = valid[ev.Set].With(way)
		resident[k] = int32(way)
		pol.Fill(int(ev.Set), way, int(ev.Core), uint8(ev.Line))
	}
	return stats
}

// TestOPTDominatesOnlinePolicies generates random multi-core demand
// traces (unpartitioned, where Belady's exchange argument is exact) and
// asserts OPT's hit count is >= every online policy's on the identical
// trace — the property that makes the competitive-ratio scoreboard's
// denominator an upper bound.
func TestOPTDominatesOnlinePolicies(t *testing.T) {
	rng := uint64(0xbe1ad7)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 4; trial++ {
		cfg := Config{Sets: 8, Ways: 4, Cores: 2}
		tr := &Trace{}
		lines := uint64(cfg.Sets * cfg.Ways * 3)
		for i := 0; i < 20_000; i++ {
			line := next() % lines
			tr.Access(int(next()%uint64(cfg.Cores)), int(line)%cfg.Sets, line)
		}
		opt, err := Replay(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range plru.Kinds() {
			online := replayOnline(cfg, tr, kind, 42)
			if online.Hits() > opt.Hits() {
				t.Errorf("trial %d: %v hits %d > OPT hits %d", trial, kind, online.Hits(), opt.Hits())
			}
		}
		if opt.Accesses() != 20_000 {
			t.Fatalf("trial %d: OPT accesses = %d, want 20000", trial, opt.Accesses())
		}
	}
}

// TestReplayDeterministic replays the same trace twice and requires
// byte-identical stats.
func TestReplayDeterministic(t *testing.T) {
	rng := uint64(9)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	cfg := Config{Sets: 5, Ways: 3, Cores: 3}
	tr := &Trace{}
	for i := 0; i < 5000; i++ {
		line := next() % 64
		core := int(next() % 3)
		switch next() % 3 {
		case 0:
			tr.Access(core, int(line)%5, line)
		case 1:
			tr.Lookup(core, int(line)%5, line)
		default:
			tr.Store(core, int(line)%5, line)
		}
	}
	a, err := Replay(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	for c := range a.PerCore {
		if a.PerCore[c] != b.PerCore[c] {
			t.Fatalf("core %d diverges across replays: %+v vs %+v", c, a.PerCore[c], b.PerCore[c])
		}
	}
}

// TestReplayValidation covers the error paths.
func TestReplayValidation(t *testing.T) {
	tr := &Trace{}
	tr.Access(0, 9, 1)
	if _, err := Replay(Config{Sets: 4, Ways: 2, Cores: 1}, tr); err == nil {
		t.Fatal("out-of-range set not rejected")
	}
	tr2 := &Trace{}
	tr2.Access(3, 0, 1)
	if _, err := Replay(Config{Sets: 4, Ways: 2, Cores: 2}, tr2); err == nil {
		t.Fatal("out-of-range core not rejected")
	}
	if _, err := Replay(Config{Sets: 0, Ways: 2, Cores: 1}, &Trace{}); err == nil {
		t.Fatal("zero sets not rejected")
	}
	if _, err := Replay(Config{Sets: 1, Ways: 2, Cores: 2, Masks: []plru.WayMask{1}}, &Trace{}); err == nil {
		t.Fatal("mask/core count mismatch not rejected")
	}
}

// TestTraceLen counts reference events only.
func TestTraceLen(t *testing.T) {
	tr := &Trace{}
	tr.Access(0, 0, 1)
	tr.SetMasks([]plru.WayMask{1})
	tr.Lookup(0, 0, 1)
	tr.Store(0, 0, 2)
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}
