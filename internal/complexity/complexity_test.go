package complexity

import (
	"testing"

	"repro/internal/replacement"
)

// The assertions below pin the paper's bracketed Table I numbers for the
// 16-way 2MB L2 / 128B lines / 2 cores / 47 tag bits configuration.

func TestPaperGeometry(t *testing.T) {
	g := PaperGeometry()
	if g.Sets() != 1024 {
		t.Fatalf("sets = %d, want 1024", g.Sets())
	}
}

func TestTableIaStorageNoPartitioning(t *testing.T) {
	g := PaperGeometry()
	// LRU: A*log2(A) bits/set -> 8 KB.
	if kb := StorageKB(replacement.LRU, g, false); kb != 8.0 {
		t.Errorf("LRU storage = %v KB, want 8", kb)
	}
	// NRU: A bits/set + pointer -> 2 KB (pointer adds 4 bits: negligible
	// but present).
	bits := StorageBits(replacement.NRU, g, false)
	if bits != 1024*16+4 {
		t.Errorf("NRU storage = %d bits, want %d", bits, 1024*16+4)
	}
	if kb := StorageKB(replacement.NRU, g, false); kb < 2.0 || kb > 2.001 {
		t.Errorf("NRU storage = %v KB, want ~2", kb)
	}
	// BT: (A-1) bits/set -> 1.875 KB.
	if kb := StorageKB(replacement.BT, g, false); kb != 1.875 {
		t.Errorf("BT storage = %v KB, want 1.875", kb)
	}
}

func TestTableIaStorageWithMasks(t *testing.T) {
	g := PaperGeometry()
	// The table keeps the headline sizes (8 / 2 / 1.875 KB): the global
	// additions are a handful of bits.
	lru := StorageBits(replacement.LRU, g, true) - StorageBits(replacement.LRU, g, false)
	if lru != 16*2 {
		t.Errorf("LRU mask overhead = %d bits, want A*N = 32", lru)
	}
	nru := StorageBits(replacement.NRU, g, true) - StorageBits(replacement.NRU, g, false)
	if nru != 16*2 {
		t.Errorf("NRU mask overhead = %d bits, want A*N = 32", nru)
	}
	// BT: log2(A) up + log2(A) down per core = 8 bits/core.
	bt := StorageBits(replacement.BT, g, true) - StorageBits(replacement.BT, g, false)
	if bt != 2*2*4 {
		t.Errorf("BT vector overhead = %d bits, want 16", bt)
	}
}

func TestTableIbEventCosts(t *testing.T) {
	g := PaperGeometry()

	lru := Costs(replacement.LRU, g)
	if lru.TagCompare != 752 {
		t.Errorf("LRU tag compare = %d, want 752", lru.TagCompare)
	}
	if lru.UpdateNoPart != 64 {
		t.Errorf("LRU update = %d, want 64", lru.UpdateNoPart)
	}
	if lru.FindOwned != 32 {
		t.Errorf("LRU find owned = %d, want 32", lru.FindOwned)
	}
	// Formula (A-1)*log2(A) = 60; the paper's bracketed 52 is an
	// arithmetic slip (documented in Costs).
	if lru.UpdatePart != 60 {
		t.Errorf("LRU partitioned update = %d, want 60", lru.UpdatePart)
	}
	if lru.GetData != 1024 {
		t.Errorf("LRU get data = %d, want 1024", lru.GetData)
	}
	if lru.ProfilingRead != 4 {
		t.Errorf("LRU profiling read = %d, want 4", lru.ProfilingRead)
	}

	nru := Costs(replacement.NRU, g)
	if nru.TagCompare != 752 || nru.GetData != 1024 {
		t.Error("NRU shared costs wrong")
	}
	// 15 used bits + 4 pointer bits.
	if nru.UpdateNoPart != 19 {
		t.Errorf("NRU update = %d, want 19 (15+4)", nru.UpdateNoPart)
	}
	if nru.FindOwned != 32 {
		t.Errorf("NRU find owned = %d, want 32", nru.FindOwned)
	}
	if nru.ProfilingRead != 16 {
		t.Errorf("NRU profiling read = %d, want 16", nru.ProfilingRead)
	}

	bt := Costs(replacement.BT, g)
	if bt.UpdateNoPart != 4 {
		t.Errorf("BT update = %d, want 4", bt.UpdateNoPart)
	}
	if bt.FindOwned != 0 {
		t.Errorf("BT find owned = %d, want 0 (vectors encode it)", bt.FindOwned)
	}
	// log2(A) BT bits + log2(A) up + log2(A) down = 12.
	if bt.UpdatePart != 12 {
		t.Errorf("BT partitioned update = %d, want 12", bt.UpdatePart)
	}
	// XOR 2*log2(A) + SUB 2*log2(A) = 16.
	if bt.ProfilingRead != 16 {
		t.Errorf("BT profiling read = %d, want 16", bt.ProfilingRead)
	}
}

func TestStorageOrderingLRUWorst(t *testing.T) {
	// The paper's core complexity claim: LRU >> NRU > BT in metadata.
	g := PaperGeometry()
	lru := StorageBits(replacement.LRU, g, true)
	nru := StorageBits(replacement.NRU, g, true)
	bt := StorageBits(replacement.BT, g, true)
	if !(lru > nru && nru > bt) {
		t.Fatalf("storage ordering violated: LRU %d, NRU %d, BT %d", lru, nru, bt)
	}
}

func TestReportShape(t *testing.T) {
	rows := Report(PaperGeometry())
	if len(rows) != 8 {
		t.Fatalf("report has %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Label == "" {
			t.Error("row without label")
		}
		for i, v := range r.Values {
			if v == "" {
				t.Errorf("row %q column %d empty", r.Label, i)
			}
		}
	}
}

func TestScalesWithGeometry(t *testing.T) {
	small := Geometry{SizeBytes: 512 << 10, LineBytes: 128, Ways: 16,
		Cores: 2, TagBits: 47, LineBits: 1024}
	big := PaperGeometry()
	for _, k := range []replacement.Kind{replacement.LRU, replacement.NRU, replacement.BT} {
		if StorageBits(k, small, false)*4 != StorageBits(k, big, false)-boundaryBits(k) {
			// 512KB has 1/4 the sets; per-set storage scales by 4, global
			// bits (NRU pointer) do not.
			continue
		}
	}
	// Direct check for LRU (no global bits): exact 4x scaling.
	if StorageBits(replacement.LRU, small, false)*4 != StorageBits(replacement.LRU, big, false) {
		t.Error("LRU storage does not scale with sets")
	}
}

func boundaryBits(k replacement.Kind) int {
	if k == replacement.NRU {
		return 4
	}
	return 0
}
