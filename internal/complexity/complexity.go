// Package complexity implements the paper's Table I: the storage cost of
// each replacement scheme's metadata (with and without partitioning
// support) and the number of bits read or updated on each cache event.
// Every formula is taken verbatim from the paper; the bracketed example
// numbers (16-way 2 MB L2, 128 B lines, 2 cores, 47 tag bits) are encoded
// in the tests.
package complexity

import (
	"fmt"

	"repro/internal/replacement"
)

// Geometry describes the cache the costs are computed for.
type Geometry struct {
	SizeBytes int
	LineBytes int
	Ways      int
	Cores     int
	TagBits   int
	LineBits  int // data bits per line (LineBytes * 8)
}

// PaperGeometry returns Table I's example configuration: a 16-way 2 MB L2
// with 128 B lines, accessed by 2 cores, 64-bit architecture with 47 tag
// bits.
func PaperGeometry() Geometry {
	return Geometry{
		SizeBytes: 2 << 20,
		LineBytes: 128,
		Ways:      16,
		Cores:     2,
		TagBits:   47,
		LineBits:  128 * 8,
	}
}

// Sets returns the number of cache sets.
func (g Geometry) Sets() int { return g.SizeBytes / (g.LineBytes * g.Ways) }

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// ---- Table I(a): replacement-logic storage ----

// StorageBits returns the total replacement-metadata storage in bits for
// the given scheme, with or without global-replacement-mask partitioning
// support (Table I(a)). Masks, pointers, and up/down vectors are global
// (not per set), exactly as in the table.
func StorageBits(kind replacement.Kind, g Geometry, partitioned bool) int {
	sets := g.Sets()
	a := g.Ways
	var bits int
	switch kind {
	case replacement.LRU:
		bits = sets * a * log2(a) // A*log2(A) bits per set
		if partitioned {
			bits += a * g.Cores // A×N owner mask bits (global)
		}
	case replacement.NRU:
		bits = sets*a + log2(a) // A used bits per set + global pointer
		if partitioned {
			bits += a * g.Cores // A×N owner mask bits (global)
		}
	case replacement.BT:
		bits = sets * (a - 1) // A-1 tree bits per set
		if partitioned {
			bits += g.Cores * 2 * log2(a) // per-core up + down vectors
		}
	default:
		panic(fmt.Sprintf("complexity: no storage model for %v", kind))
	}
	return bits
}

// StorageKB returns StorageBits converted to kilobytes.
func StorageKB(kind replacement.Kind, g Geometry, partitioned bool) float64 {
	return float64(StorageBits(kind, g, partitioned)) / 8 / 1024
}

// ---- Table I(b): bits read/updated per event ----

// EventCosts collects the per-event bit counts of Table I(b) for one
// scheme.
type EventCosts struct {
	Kind replacement.Kind
	// TagCompare is the bits read to match the tag: A × TagBits.
	TagCompare int
	// UpdateNoPart is the worst-case bits updated to record an access
	// without partitioning.
	UpdateNoPart int
	// FindOwned is the bits read to locate a thread's lines when
	// partitioning with per-set information (N×A); zero when the scheme's
	// partitioning needs none (BT's vectors already encode it).
	FindOwned int
	// UpdatePart is the worst-case bits touched to select/maintain the
	// victim under partitioning.
	UpdatePart int
	// GetData is the data bits moved on a hit (the line size).
	GetData int
	// ProfilingRead is the bits read (or operated on) by the profiling
	// logic to estimate one stack distance.
	ProfilingRead int
}

// Costs returns Table I(b) for the scheme.
//
// One discrepancy is documented here rather than hidden: for LRU's "find
// LRU in owned lines" the paper prints 52 bits next to the formula
// (A−1)×log2(A), which evaluates to 60 for A=16. We implement the formula;
// the printed 52 appears to be an arithmetic slip in the paper.
func Costs(kind replacement.Kind, g Geometry) EventCosts {
	a := g.Ways
	l2a := log2(a)
	c := EventCosts{
		Kind:       kind,
		TagCompare: a * g.TagBits,
		GetData:    g.LineBits,
	}
	switch kind {
	case replacement.LRU:
		c.UpdateNoPart = a * l2a
		c.FindOwned = g.Cores * a
		c.UpdatePart = (a - 1) * l2a
		c.ProfilingRead = l2a
	case replacement.NRU:
		c.UpdateNoPart = (a - 1) + l2a // A-1 used bits + pointer
		c.FindOwned = g.Cores * a
		c.UpdatePart = (a - 1) + l2a
		c.ProfilingRead = a // count the used bits
	case replacement.BT:
		c.UpdateNoPart = l2a
		c.FindOwned = 0                 // up/down vectors already restrict the search
		c.UpdatePart = l2a + 2*l2a      // BT bits + up and down vectors
		c.ProfilingRead = 2*l2a + 2*l2a // XOR 2·log2(A) + SUB 2·log2(A)
	default:
		panic(fmt.Sprintf("complexity: no event model for %v", kind))
	}
	return c
}

// Row is one formatted line of the Table I report.
type Row struct {
	Label  string
	Values [3]string // LRU, NRU, BT
}

// Report renders both halves of Table I for the geometry.
func Report(g Geometry) []Row {
	kinds := [3]replacement.Kind{replacement.LRU, replacement.NRU, replacement.BT}
	var rows []Row

	storage := Row{Label: "Storage, no partitioning (KB)"}
	storagePart := Row{Label: "Storage, global masks (KB)"}
	for i, k := range kinds {
		storage.Values[i] = fmt.Sprintf("%.3f", StorageKB(k, g, false))
		storagePart.Values[i] = fmt.Sprintf("%.3f", StorageKB(k, g, true))
	}
	rows = append(rows, storage, storagePart)

	var costs [3]EventCosts
	for i, k := range kinds {
		costs[i] = Costs(k, g)
	}
	add := func(label string, f func(EventCosts) int) {
		r := Row{Label: label}
		for i := range kinds {
			r.Values[i] = fmt.Sprintf("%d", f(costs[i]))
		}
		rows = append(rows, r)
	}
	add("TAG comparison (bits)", func(c EventCosts) int { return c.TagCompare })
	add("Update position, no partitioning (bits)", func(c EventCosts) int { return c.UpdateNoPart })
	add("Find owned lines (bits)", func(c EventCosts) int { return c.FindOwned })
	add("Update position, partitioned (bits)", func(c EventCosts) int { return c.UpdatePart })
	add("Get data on hit (bits)", func(c EventCosts) int { return c.GetData })
	add("Profiling read/estimate (bits)", func(c EventCosts) int { return c.ProfilingRead })
	return rows
}
