package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Workload is a named multiprogrammed mix, one benchmark per core.
type Workload struct {
	Name       string
	Benchmarks []string
}

// Threads returns the number of cores the workload occupies.
func (w Workload) Threads() int { return len(w.Benchmarks) }

// String renders "2T_01: apsi, bzip2".
func (w Workload) String() string {
	return w.Name + ": " + strings.Join(w.Benchmarks, ", ")
}

// The workload tables below are transcribed verbatim from Table II.

var twoThread = []Workload{
	{"2T_01", []string{"apsi", "bzip2"}},
	{"2T_02", []string{"mcf", "parser"}},
	{"2T_03", []string{"twolf", "vortex"}},
	{"2T_04", []string{"vpr", "art"}},
	{"2T_05", []string{"apsi", "crafty"}},
	{"2T_06", []string{"bzip2", "eon"}},
	{"2T_07", []string{"mcf", "gcc"}},
	{"2T_08", []string{"parser", "gzip"}},
	{"2T_09", []string{"applu", "gap"}},
	{"2T_10", []string{"lucas", "sixtrack"}},
	{"2T_11", []string{"facerec", "wupwise"}},
	{"2T_12", []string{"galgel", "facerec"}},
	{"2T_13", []string{"applu", "apsi"}},
	{"2T_14", []string{"gap", "bzip2"}},
	{"2T_15", []string{"lucas", "mcf"}},
	{"2T_16", []string{"sixtrack", "parser"}},
	{"2T_17", []string{"applu", "crafty"}},
	{"2T_18", []string{"gap", "eon"}},
	{"2T_19", []string{"lucas", "gcc"}},
	{"2T_20", []string{"sixtrack", "gzip"}},
	{"2T_21", []string{"crafty", "eon"}},
	{"2T_22", []string{"gcc", "gzip"}},
	{"2T_23", []string{"mesa", "perlbmk"}},
	{"2T_24", []string{"equake", "mgrid"}},
}

var fourThread = []Workload{
	{"4T_01", []string{"apsi", "bzip2", "mcf", "parser"}},
	{"4T_02", []string{"parser", "twolf", "vortex", "vpr"}},
	{"4T_03", []string{"apsi", "crafty", "bzip2", "eon"}},
	{"4T_04", []string{"mcf", "gcc", "parser", "gzip"}},
	{"4T_05", []string{"applu", "gap", "lucas", "sixtrack"}},
	{"4T_06", []string{"lucas", "galgel", "facerec", "wupwise"}},
	{"4T_07", []string{"applu", "apsi", "gap", "bzip2"}},
	{"4T_08", []string{"lucas", "mcf", "sixtrack", "parser"}},
	{"4T_09", []string{"vpr", "wupwise", "gzip", "crafty"}},
	{"4T_10", []string{"fma3d", "swim", "mcf", "applu"}},
	{"4T_11", []string{"applu", "crafty", "gap", "eon"}},
	{"4T_12", []string{"lucas", "gcc", "sixtrack", "gzip"}},
	{"4T_13", []string{"crafty", "eon", "gcc", "gzip"}},
	{"4T_14", []string{"mesa", "perl", "equake", "mgrid"}},
}

var eightThread = []Workload{
	{"8T_01", []string{"apsi", "bzip2", "mcf", "parser", "twolf", "swim", "vpr", "art"}},
	{"8T_02", []string{"apsi", "crafty", "bzip2", "eon", "mcf", "gcc", "parser", "gzip"}},
	{"8T_03", []string{"twolf", "mesa", "vortex", "perl", "vpr", "equake", "art", "mgrid"}},
	{"8T_04", []string{"applu", "gap", "lucas", "sixtrack", "facerec", "wupwise", "galgel", "facerec"}},
	{"8T_05", []string{"applu", "apsi", "gap", "bzip2", "lucas", "mcf", "sixtrack", "parser"}},
	{"8T_06", []string{"lucas", "mcf", "sixtrack", "parser", "facerec", "twolf", "wupwise", "art"}},
	{"8T_07", []string{"galgel", "vpr", "twolf", "apsi", "art", "swim", "parser", "wupwise"}},
	{"8T_08", []string{"gzip", "crafty", "fma3d", "mcf", "applu", "gap", "mesa", "perlbmk"}},
	{"8T_09", []string{"applu", "crafty", "gap", "eon", "lucas", "gcc", "sixtrack", "gzip"}},
	{"8T_10", []string{"wupwise", "mesa", "facerec", "perl", "galgel", "equake", "facerec", "mgrid"}},
	{"8T_11", []string{"crafty", "eon", "gcc", "gzip", "mesa", "perl", "equake", "mgrid"}},
}

// ByThreads returns the paper's workloads for a given thread count
// (2, 4 or 8). The returned slice is a copy.
func ByThreads(n int) ([]Workload, error) {
	var src []Workload
	switch n {
	case 2:
		src = twoThread
	case 4:
		src = fourThread
	case 8:
		src = eightThread
	default:
		return nil, fmt.Errorf("workload: no workloads for %d threads", n)
	}
	return append([]Workload(nil), src...), nil
}

// All returns every workload (2T, 4T and 8T, 49 in total).
func All() []Workload {
	out := append([]Workload(nil), twoThread...)
	out = append(out, fourThread...)
	return append(out, eightThread...)
}

// SingleThread returns one single-benchmark workload per catalog entry,
// used by Figure 6's 1-core column and by the isolation baselines.
func SingleThread() []Workload {
	names := Names()
	sort.Strings(names)
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		out = append(out, Workload{Name: "1T_" + n, Benchmarks: []string{n}})
	}
	return out
}

// Lookup finds a workload by name across all tables.
func Lookup(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	for _, w := range SingleThread() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Validate checks that every workload references only known benchmarks;
// returns the first error found. Used as a start-up assertion by cmd/.
func Validate() error {
	for _, w := range All() {
		if len(w.Benchmarks) == 0 {
			return fmt.Errorf("workload %s: empty", w.Name)
		}
		for _, b := range w.Benchmarks {
			if _, err := Get(b); err != nil {
				return fmt.Errorf("workload %s: %v", w.Name, err)
			}
		}
	}
	return nil
}
