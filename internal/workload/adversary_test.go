package workload

import "testing"

func TestCollisionKeys(t *testing.T) {
	// Class = low 6 bits: every 64th key collides.
	class := func(k uint64) uint64 { return k & 63 }
	keys := CollisionKeys(class, 5, 10, 0)
	if len(keys) != 10 {
		t.Fatalf("got %d keys, want 10", len(keys))
	}
	if keys[0] != 5 {
		t.Fatalf("first key = %d, want the start key 5", keys[0])
	}
	for i, k := range keys {
		if class(k) != class(5) {
			t.Fatalf("key %d (%d) escapes the collision class", i, k)
		}
		if i > 0 && k <= keys[i-1] {
			t.Fatalf("keys not strictly increasing: %v", keys)
		}
	}
}

func TestCollisionKeysBoundedScan(t *testing.T) {
	// A class nothing else matches: the scan must stop at maxScan and
	// return only the start key.
	class := func(k uint64) uint64 {
		if k == 7 {
			return 1
		}
		return 0
	}
	keys := CollisionKeys(class, 7, 5, 1000)
	if len(keys) != 1 || keys[0] != 7 {
		t.Fatalf("got %v, want just [7]", keys)
	}
	if got := CollisionKeys(class, 7, 0, 0); got != nil {
		t.Fatalf("n=0 returned %v", got)
	}
}

func TestInterleaveKeys(t *testing.T) {
	got := InterleaveKeys([]uint64{1, 2, 3}, []uint64{10, 20}, []uint64{100})
	want := []uint64{1, 10, 100, 2, 20, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if out := InterleaveKeys(); len(out) != 0 {
		t.Fatalf("no-group interleave = %v", out)
	}
}
