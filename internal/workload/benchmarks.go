// Package workload provides the benchmark catalog and the multiprogrammed
// workloads of the paper's Table II.
//
// The paper evaluates SPEC CPU 2000 traces; those are proprietary, so each
// benchmark name maps to a synthetic trace.Profile whose working-set
// structure reproduces the published qualitative behavior of that program
// (see DESIGN.md §5): mcf and art are cache-hungry with large footprints,
// swim/lucas/applu/mgrid stream, crafty/eon/gzip/sixtrack are compute
// bound with small working sets, twolf/vpr/parser/bzip2 have mid-size
// working sets whose miss curves bend inside a 16-way L2 — the population
// that makes way-partitioning interesting.
//
// Working-set sizes are expressed in 128-byte lines: a 2 MB 16-way L2 with
// 128 B lines holds 16384 lines across 1024 sets, so a hot set of 2048
// lines occupies about 2 ways per set.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// lines converts KB of footprint into 128-byte lines.
func lines(kb int) int { return kb * 1024 / 128 }

// catalog lists every benchmark profile, keyed by paper name.
var catalog = map[string]trace.Profile{
	// --- compute-bound, small working sets -------------------------------
	"eon": {
		Name: "eon", BaseIPC: 2.6, MemRatio: 0.16, BranchRatio: 0.12,
		BranchBias: 0.93, MLPOverlap: 0.35, L1Locality: 0.97, WriteRatio: 0.25,
		Phases: []Phase{{Insts: 4_000_000, HotLines: lines(32), HotWeight: 0.98, ColdWeight: 0.02}},
	},
	"crafty": {
		Name: "crafty", BaseIPC: 2.3, MemRatio: 0.18, BranchRatio: 0.14,
		BranchBias: 0.88, MLPOverlap: 0.3, L1Locality: 0.96, WriteRatio: 0.20,
		Phases: []Phase{{Insts: 4_000_000, HotLines: lines(64), HotWeight: 0.97, ColdWeight: 0.03}},
	},
	"gzip": {
		Name: "gzip", BaseIPC: 1.9, MemRatio: 0.22, BranchRatio: 0.13,
		BranchBias: 0.9, MLPOverlap: 0.35, L1Locality: 0.96, WriteRatio: 0.30,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(128), HotWeight: 0.9, HotCyclic: 0.40,
			StreamLines: lines(512), StreamWeight: 0.09, ColdWeight: 0.01}},
	},
	"sixtrack": {
		Name: "sixtrack", BaseIPC: 2.1, MemRatio: 0.17, BranchRatio: 0.05,
		BranchBias: 0.97, MLPOverlap: 0.45, L1Locality: 0.96, WriteRatio: 0.20,
		Phases: []Phase{{Insts: 4_000_000, HotLines: lines(96), HotWeight: 0.97, ColdWeight: 0.03}},
	},
	"mesa": {
		Name: "mesa", BaseIPC: 2.0, MemRatio: 0.2, BranchRatio: 0.08,
		BranchBias: 0.94, MLPOverlap: 0.4, L1Locality: 0.96, WriteRatio: 0.30,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(128), HotWeight: 0.85, HotCyclic: 0.40,
			MidLines: lines(128), MidWeight: 0.13, ColdWeight: 0.02}},
	},
	"perlbmk": {
		Name: "perlbmk", BaseIPC: 1.8, MemRatio: 0.22, BranchRatio: 0.15,
		BranchBias: 0.9, MLPOverlap: 0.3, L1Locality: 0.95, WriteRatio: 0.30,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(128), HotWeight: 0.8, HotCyclic: 0.30,
			MidLines: lines(256), MidWeight: 0.18, ColdWeight: 0.02}},
	},

	// --- mid working sets: the partitioning-sensitive population ---------
	"bzip2": {
		Name: "bzip2", BaseIPC: 1.6, MemRatio: 0.26, BranchRatio: 0.13,
		BranchBias: 0.91, MLPOverlap: 0.35, L1Locality: 0.95, WriteRatio: 0.30,
		Phases: []Phase{
			{Insts: 2_000_000, HotLines: lines(192), HotWeight: 0.75, HotCyclic: 0.45,
				MidLines: lines(192), MidWeight: 0.22, ColdWeight: 0.03},
			{Insts: 2_000_000, HotLines: lines(256), HotWeight: 0.8, HotCyclic: 0.45,
				StreamLines: lines(1024), StreamWeight: 0.17, ColdWeight: 0.03},
		},
	},
	"parser": {
		Name: "parser", BaseIPC: 1.3, MemRatio: 0.28, BranchRatio: 0.16,
		BranchBias: 0.88, MLPOverlap: 0.2, L1Locality: 0.93, WriteRatio: 0.25,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(128), HotWeight: 0.6, HotCyclic: 0.40,
			MidLines: lines(256), MidWeight: 0.36, ColdWeight: 0.04}},
	},
	"twolf": {
		Name: "twolf", BaseIPC: 1.1, MemRatio: 0.3, BranchRatio: 0.14,
		BranchBias: 0.87, MLPOverlap: 0.2, L1Locality: 0.93, WriteRatio: 0.25,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(192), HotWeight: 0.55, HotCyclic: 0.55,
			MidLines: lines(256), MidWeight: 0.42, ColdWeight: 0.03}},
	},
	"vpr": {
		Name: "vpr", BaseIPC: 1.2, MemRatio: 0.29, BranchRatio: 0.13,
		BranchBias: 0.88, MLPOverlap: 0.2, L1Locality: 0.93, WriteRatio: 0.25,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(192), HotWeight: 0.6, HotCyclic: 0.55,
			MidLines: lines(192), MidWeight: 0.37, ColdWeight: 0.03}},
	},
	"vortex": {
		Name: "vortex", BaseIPC: 1.4, MemRatio: 0.25, BranchRatio: 0.14,
		BranchBias: 0.92, MLPOverlap: 0.3, L1Locality: 0.94, WriteRatio: 0.35,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(256), HotWeight: 0.62, HotCyclic: 0.50,
			MidLines: lines(256), MidWeight: 0.34, ColdWeight: 0.04}},
	},
	"gcc": {
		Name: "gcc", BaseIPC: 1.5, MemRatio: 0.24, BranchRatio: 0.17,
		BranchBias: 0.89, MLPOverlap: 0.25, L1Locality: 0.94, WriteRatio: 0.30,
		Phases: []Phase{
			{Insts: 2_000_000, HotLines: lines(256), HotWeight: 0.6, HotCyclic: 0.35,
				MidLines: lines(512), MidWeight: 0.3, ColdWeight: 0.1},
			{Insts: 1_500_000, HotLines: lines(256), HotWeight: 0.8, HotCyclic: 0.35,
				StreamLines: lines(2048), StreamWeight: 0.15, ColdWeight: 0.05},
		},
	},
	"apsi": {
		Name: "apsi", BaseIPC: 1.4, MemRatio: 0.26, BranchRatio: 0.06,
		BranchBias: 0.96, MLPOverlap: 0.45, L1Locality: 0.94, WriteRatio: 0.30,
		Phases: []Phase{
			{Insts: 2_500_000, HotLines: lines(192), HotWeight: 0.9, HotCyclic: 0.60, ColdWeight: 0.1},
			{Insts: 2_500_000, HotLines: lines(512), HotWeight: 0.92, HotCyclic: 0.60, ColdWeight: 0.08},
		},
	},
	"facerec": {
		Name: "facerec", BaseIPC: 1.3, MemRatio: 0.27, BranchRatio: 0.05,
		BranchBias: 0.97, MLPOverlap: 0.5, L1Locality: 0.94, WriteRatio: 0.25,
		Phases: []Phase{
			{Insts: 2_000_000, HotLines: lines(256), HotWeight: 0.7, HotCyclic: 0.60,
				StreamLines: lines(2048), StreamWeight: 0.28, ColdWeight: 0.02},
			{Insts: 2_000_000, HotLines: lines(320), HotWeight: 0.93, HotCyclic: 0.60, ColdWeight: 0.07},
		},
	},
	"galgel": {
		Name: "galgel", BaseIPC: 1.2, MemRatio: 0.28, BranchRatio: 0.04,
		BranchBias: 0.97, MLPOverlap: 0.45, L1Locality: 0.94, WriteRatio: 0.30,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(384), HotWeight: 0.94, HotCyclic: 0.70, ColdWeight: 0.06}},
	},
	"wupwise": {
		Name: "wupwise", BaseIPC: 1.6, MemRatio: 0.24, BranchRatio: 0.04,
		BranchBias: 0.98, MLPOverlap: 0.5, L1Locality: 0.94, WriteRatio: 0.30,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(256), HotWeight: 0.75, HotCyclic: 0.50,
			StreamLines: lines(4096), StreamWeight: 0.23, ColdWeight: 0.02}},
	},
	"gap": {
		Name: "gap", BaseIPC: 1.4, MemRatio: 0.25, BranchRatio: 0.12,
		BranchBias: 0.9, MLPOverlap: 0.35, L1Locality: 0.94, WriteRatio: 0.25,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(128), HotWeight: 0.62,
			StreamLines: lines(2048), StreamWeight: 0.35, ColdWeight: 0.03}},
	},

	// --- memory-bound / streaming ----------------------------------------
	"equake": {
		Name: "equake", BaseIPC: 0.9, MemRatio: 0.32, BranchRatio: 0.07,
		BranchBias: 0.95, MLPOverlap: 0.4, L1Locality: 0.92, WriteRatio: 0.20,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(192), HotWeight: 0.5, HotCyclic: 0.50,
			MidLines: lines(512), MidWeight: 0.42, ColdWeight: 0.08}},
	},
	"fma3d": {
		Name: "fma3d", BaseIPC: 1.0, MemRatio: 0.3, BranchRatio: 0.06,
		BranchBias: 0.96, MLPOverlap: 0.4, L1Locality: 0.92, WriteRatio: 0.30,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(256), HotWeight: 0.72, HotCyclic: 0.50,
			MidLines: lines(256), MidWeight: 0.2, ColdWeight: 0.08}},
	},
	"applu": {
		Name: "applu", BaseIPC: 1.0, MemRatio: 0.3, BranchRatio: 0.04,
		BranchBias: 0.98, MLPOverlap: 0.55, L1Locality: 0.91, WriteRatio: 0.35,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(128), HotWeight: 0.3,
			StreamLines: lines(3072) * 8, StreamWeight: 0.66, ColdWeight: 0.04}},
	},
	"mgrid": {
		Name: "mgrid", BaseIPC: 0.95, MemRatio: 0.31, BranchRatio: 0.03,
		BranchBias: 0.98, MLPOverlap: 0.55, L1Locality: 0.91, WriteRatio: 0.30,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(128), HotWeight: 0.25,
			MidLines: lines(512), MidWeight: 0.15,
			StreamLines: lines(3072) * 8, StreamWeight: 0.56, ColdWeight: 0.04}},
	},
	"lucas": {
		Name: "lucas", BaseIPC: 0.9, MemRatio: 0.3, BranchRatio: 0.03,
		BranchBias: 0.98, MLPOverlap: 0.5, L1Locality: 0.90, WriteRatio: 0.35,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(64), HotWeight: 0.2,
			StreamLines: lines(4096) * 8, StreamWeight: 0.72, ColdWeight: 0.08}},
	},
	"swim": {
		Name: "swim", BaseIPC: 0.8, MemRatio: 0.34, BranchRatio: 0.03,
		BranchBias: 0.98, MLPOverlap: 0.6, L1Locality: 0.90, WriteRatio: 0.40,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(64), HotWeight: 0.12,
			StreamLines: lines(4096) * 8, StreamWeight: 0.78, ColdWeight: 0.1}},
	},

	// --- cache-hungry -----------------------------------------------------
	"art": {
		Name: "art", BaseIPC: 0.6, MemRatio: 0.36, BranchRatio: 0.05,
		BranchBias: 0.95, MLPOverlap: 0.3, L1Locality: 0.86, WriteRatio: 0.20,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(1024), HotWeight: 0.92, HotCyclic: 0.80, ColdWeight: 0.08}},
	},
	"mcf": {
		Name: "mcf", BaseIPC: 0.45, MemRatio: 0.38, BranchRatio: 0.12,
		BranchBias: 0.86, MLPOverlap: 0.15, L1Locality: 0.82, WriteRatio: 0.20,
		Phases: []Phase{{Insts: 3_000_000, HotLines: lines(768), HotWeight: 0.55, HotCyclic: 0.30,
			MidLines: lines(1536), MidWeight: 0.3, ColdWeight: 0.15}},
	},
}

// Phase is re-exported so the catalog literals above stay compact.
type Phase = trace.Phase

// aliases maps paper spellings onto catalog names (Table II uses both
// "perl" and "perlbmk").
var aliases = map[string]string{
	"perl": "perlbmk",
}

// Names returns all benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for n := range catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the profile for a benchmark name (resolving aliases).
func Get(name string) (trace.Profile, error) {
	if canon, ok := aliases[name]; ok {
		name = canon
	}
	p, ok := catalog[name]
	if !ok {
		return trace.Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// MustGet is Get for known-good names (catalog-driven code paths).
func MustGet(name string) trace.Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Seed returns the deterministic trace seed for a benchmark: a hash of
// its canonical name, so the same program behaves identically wherever it
// appears.
func Seed(name string) uint64 {
	if canon, ok := aliases[name]; ok {
		name = canon
	}
	var h uint64 = 1469598103934665603 // FNV-64 offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
