package workload

// Adversarial key generation: streams engineered to collide in a
// keyed-hash cache's index structure. The generator is deliberately
// ignorant of any particular cache — the caller supplies a collision
// classifier (e.g. shard|set|tag derived from pkg/cpacache's seeded
// hash), and the generator scans the key space for keys falling into
// the same class. With an 8-bit SWAR tag a class holds 1/2^7 of a set's
// candidate keys, so storms that pile dozens of same-class keys onto
// one set drive exactly the probe path a birthday-accident workload
// almost never exercises: every tag word match is a candidate, and only
// the full-key confirm separates them.

// CollisionKeys scans keys upward from start and returns up to n keys
// (start first, when it qualifies against itself — it always does) that
// share start's collision class: class(k) == class(start). The scan
// gives up after maxScan candidates, returning what it found, so
// callers can bound worst-case work; maxScan <= 0 means 1<<22.
func CollisionKeys(class func(uint64) uint64, start uint64, n, maxScan int) []uint64 {
	if n <= 0 {
		return nil
	}
	if maxScan <= 0 {
		maxScan = 1 << 22
	}
	want := class(start)
	keys := make([]uint64, 0, n)
	for k, scanned := start, 0; scanned < maxScan && len(keys) < n; scanned++ {
		if class(k) == want {
			keys = append(keys, k)
		}
		k++
	}
	return keys
}

// InterleaveKeys round-robins several key groups into one stream:
// group0[0], group1[0], ..., group0[1], ... Groups may have different
// lengths; exhausted groups drop out. Interleaving collision classes
// keeps every class's set under simultaneous pressure instead of
// storming them one at a time.
func InterleaveKeys(groups ...[]uint64) []uint64 {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	out := make([]uint64, 0, total)
	for i := 0; len(out) < total; i++ {
		for _, g := range groups {
			if i < len(g) {
				out = append(out, g[i])
			}
		}
	}
	return out
}
