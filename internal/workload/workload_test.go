package workload

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/profiling"
	"repro/internal/replacement"
	"repro/internal/trace"
)

func TestCatalogComplete(t *testing.T) {
	// Every benchmark named in Table II must resolve.
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogProfilesValid(t *testing.T) {
	for _, name := range Names() {
		p := MustGet(name)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile name %q != catalog key %q", p.Name, name)
		}
	}
}

func TestCatalogSize(t *testing.T) {
	// The paper's Table II uses exactly 25 distinct programs.
	if got := len(Names()); got != 25 {
		t.Fatalf("catalog has %d benchmarks, want 25", got)
	}
}

func TestWorkloadCounts(t *testing.T) {
	// Paper: 24 two-thread, 14 four-thread, 11 eight-thread workloads.
	for _, tc := range []struct{ n, want int }{{2, 24}, {4, 14}, {8, 11}} {
		ws, err := ByThreads(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != tc.want {
			t.Errorf("%dT workloads: %d, want %d", tc.n, len(ws), tc.want)
		}
		for _, w := range ws {
			if w.Threads() != tc.n {
				t.Errorf("%s has %d benchmarks", w.Name, w.Threads())
			}
		}
	}
	if len(All()) != 49 {
		t.Errorf("All() = %d workloads, want 49", len(All()))
	}
	if _, err := ByThreads(3); err == nil {
		t.Error("ByThreads(3) accepted")
	}
}

func TestSpecificTableIIRows(t *testing.T) {
	w, err := Lookup("2T_04")
	if err != nil {
		t.Fatal(err)
	}
	if w.Benchmarks[0] != "vpr" || w.Benchmarks[1] != "art" {
		t.Errorf("2T_04 = %v, want vpr art", w.Benchmarks)
	}
	w, err = Lookup("8T_04")
	if err != nil {
		t.Fatal(err)
	}
	// facerec appears twice in 8T_04, as printed in the paper.
	count := 0
	for _, b := range w.Benchmarks {
		if b == "facerec" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("8T_04 should contain facerec twice, got %d", count)
	}
}

func TestAliasPerl(t *testing.T) {
	p, err := Get("perl")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "perlbmk" {
		t.Errorf("perl resolved to %q", p.Name)
	}
	if Seed("perl") != Seed("perlbmk") {
		t.Error("alias changes the trace seed")
	}
}

func TestSeedsDistinctAndStable(t *testing.T) {
	seen := map[uint64]string{}
	for _, n := range Names() {
		s := Seed(n)
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision: %s and %s", n, prev)
		}
		seen[s] = n
		if Seed(n) != s {
			t.Errorf("seed for %s not stable", n)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("9T_99"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Get("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSingleThreadCoversCatalog(t *testing.T) {
	ws := SingleThread()
	if len(ws) != len(Names()) {
		t.Fatalf("SingleThread gave %d workloads", len(ws))
	}
}

// l2Profile runs a benchmark's trace through a private L1 (as in the real
// system — the ATD only sees L2 accesses) into an LRU profiling monitor.
// It returns the monitor plus the count of memory accesses issued, so
// callers can normalize either per L2 access or per memory access.
func l2Profile(t *testing.T, name string) (*profiling.Monitor, uint64) {
	t.Helper()
	g := trace.NewGenerator(MustGet(name), 0, Seed(name), 128)
	l1 := cache.New(cache.Config{Name: "L1", SizeBytes: 32 * 1024,
		LineBytes: 128, Ways: 2, Policy: replacement.LRU, Cores: 1})
	m := profiling.NewMonitor(profiling.Config{
		L2Sets: 1024, Ways: 16, LineBytes: 128, SampleRate: 4,
		Kind: replacement.LRU,
	})
	var mem uint64
	for mem < 600000 {
		e := g.Next()
		if e.Kind != trace.Mem {
			continue
		}
		mem++
		if !l1.Access(0, e.Addr).Hit {
			m.Observe(e.Addr)
		}
	}
	if m.Observed() == 0 {
		t.Fatalf("%s: no L2 accesses reached the monitor", name)
	}
	return m, mem
}

// missPerL2 returns the L2 miss ratio at `ways` (relative to L2 accesses).
func missPerL2(t *testing.T, name string, ways int) float64 {
	m, _ := l2Profile(t, name)
	return float64(m.SDH().Misses(ways)) / float64(m.Observed())
}

// missPerMem returns L2 misses at `ways` per memory access. The monitor
// samples 1/4 of the sets, so scale the observed count accordingly.
func missPerMem(t *testing.T, name string, ways int) float64 {
	m, mem := l2Profile(t, name)
	return float64(m.SDH().Misses(ways)) * 4 / float64(mem)
}

func TestBenchmarkClassesBehaveAsDocumented(t *testing.T) {
	// Compute-bound programs barely touch the L2 once given 2 ways:
	// under 2% of their memory accesses miss.
	for _, n := range []string{"eon", "crafty", "sixtrack"} {
		if r := missPerMem(t, n, 2); r > 0.02 {
			t.Errorf("%s: %.4f L2 misses per memory access at 2 ways, want < 0.02", n, r)
		}
	}
	// Streaming programs miss heavily even with the whole cache.
	for _, n := range []string{"swim", "lucas"} {
		if r := missPerL2(t, n, 16); r < 0.3 {
			t.Errorf("%s: miss ratio %.3f at 16 ways, want streaming-high", n, r)
		}
	}
	// Cache-hungry programs keep improving with more ways.
	for _, n := range []string{"art", "mcf"} {
		few := missPerL2(t, n, 2)
		many := missPerL2(t, n, 16)
		if few-many < 0.1 {
			t.Errorf("%s: only %.3f miss-ratio gain from 2 to 16 ways", n, few-many)
		}
	}
	// Mid-size programs bend inside the cache: meaningful gain from 1 to
	// 8 ways, little after.
	for _, n := range []string{"twolf", "vpr", "parser"} {
		one := missPerL2(t, n, 1)
		eight := missPerL2(t, n, 8)
		sixteen := missPerL2(t, n, 16)
		if one-eight < 0.1 {
			t.Errorf("%s: flat inside the cache (%.3f -> %.3f)", n, one, eight)
		}
		if eight-sixteen > 0.05 {
			t.Errorf("%s: still dropping sharply past 8 ways", n)
		}
	}
}
