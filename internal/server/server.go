// Package server implements cpacached's network engine: a multi-tenant
// RESP (redis-compatible) cache service over pkg/cpacache.
//
// One goroutine per connection reads commands through internal/resp,
// executes them against a shared Cache[string, []byte], and writes
// replies in order. Pipelining costs nothing extra: replies accumulate
// in the connection's buffered writer and flush only when the parser
// has no more buffered input to serve, so a burst of N commands pays
// one syscall out instead of N. MGET and MSET funnel straight into the
// cache's GetBatch/SetBatch, which take each shard lock once per batch.
//
// Tenancy rides on the cache's way partitioning: each configured tenant
// maps to a cpacache tenant id with an optional way quota and byte
// budget, and AUTH binds a connection to its tenant by password. With
// no tenants configured the server is a single-tenant open cache, as a
// stock redis instance is.
//
// Shutdown drains: the listener closes, every connection finishes the
// commands it has fully read (their replies flush), blocked readers are
// woken by a read deadline, and the cache's background machinery stops
// via Close. Connections that ignore the drain past the context
// deadline are force-closed.
//
// The serving path defends itself: global and per-tenant connection
// caps ("-ERR max number of clients reached"), per-tenant token-bucket
// rate limits on ops/s and request bytes/s ("-BUSY"), read/idle and
// write deadlines that evict slow clients, a per-connection panic
// bulkhead (reply, close, count — never the process), and an accept
// loop that retries transient errors under backoff instead of exiting.
// Every defense increments a counter surfaced through INFO.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resp"
	"repro/pkg/cpacache"
	"repro/pkg/plru"
)

// TenantConfig declares one tenant of the cache service.
type TenantConfig struct {
	// Name labels the tenant in INFO output.
	Name string
	// Password is the AUTH credential binding a connection to this
	// tenant. Empty passwords are rejected by New when more than one
	// tenant is configured (they would be unreachable).
	Password string
	// Ways is the tenant's initial way quota; 0 means an even share.
	// Either every tenant sets Ways (summing to Config.Ways) or none
	// does.
	Ways int
	// Budget is the tenant's byte budget (0 = unlimited), enforced as
	// way caps at rebalance exactly as cpacache.SetBudgets documents.
	Budget uint64
}

// Config configures a Server. The zero value of any field falls back to
// the default noted on it.
type Config struct {
	Shards int // cache shards (default 8)
	Sets   int // sets per shard (default 1024)
	Ways   int // per-set associativity (default 16)
	Policy plru.Kind

	// PolicyAutoSelect enables online per-tenant policy selection
	// (cpacache.WithPolicyAutoSelect with the default candidate set):
	// every candidate policy runs warm, a shadow directory scores them
	// on sampled sets, and tenants switch at rebalance boundaries. Pair
	// it with AutoRebalance so switches actually happen. INFO reports
	// each tenant's active policy either way.
	PolicyAutoSelect bool

	// Tenants declares the multi-tenant layout; empty means one
	// anonymous tenant with no AUTH required.
	Tenants []TenantConfig

	// DefaultTTL is applied to every SET without an EX/PX option
	// (0 = entries live until displaced).
	DefaultTTL time.Duration

	// MaxBytes caps the cache's resident bytes (key length + value
	// length; 0 = uncapped). Inserts that push past the cap evict other
	// entries in the same write (cpacache.WithMaxBytes), and the
	// watermark ladder below gates writes before the cap is ever
	// reached.
	MaxBytes uint64
	// HardBudgets turns per-tenant Budget values into hard limits
	// enforced evict-on-write (cpacache.WithHardBudgets) instead of
	// rebalance-time way caps only.
	HardBudgets bool
	// HighWatermark and LowWatermark position the memory-pressure
	// ladder as fractions of MaxBytes (both zero = the cache defaults,
	// 0.9 and 0.75). At or above high×MaxBytes the server answers
	// writes with -OOM while reads, deletes and monitoring keep
	// working; between the watermarks the cache's sweeper and
	// auto-rebalance ticker run at an aggressive cadence; recovery
	// below low×MaxBytes clears the state.
	HighWatermark float64
	LowWatermark  float64
	// AutoRebalance enables the cache's background repartitioning
	// ticker (0 = manual only).
	AutoRebalance time.Duration

	// Limits bounds per-frame parser allocation; zero fields use
	// resp.DefaultLimits.
	Limits resp.Limits

	// MaxConns caps concurrently open connections (0 = unlimited).
	// Over the cap, an accepted socket is answered with
	// "-ERR max number of clients reached" and closed; the accept loop
	// keeps running and the rejection is counted in INFO.
	MaxConns int
	// MaxConnsPerTenant caps the connections bound to any one tenant
	// (0 = unlimited). The cap is enforced when the connection binds —
	// at accept for an open single-tenant server, at AUTH otherwise.
	MaxConnsPerTenant int

	// RateLimitOps and RateLimitBytes are per-tenant token-bucket
	// admission limits (commands/s and request bytes/s; 0 = unlimited).
	// Over-limit commands are refused with "-BUSY rate limit exceeded";
	// INFO and CONFIG are exempt so monitoring keeps working under
	// overload. Bursts of one second's worth are admitted.
	RateLimitOps   float64
	RateLimitBytes float64

	// ReadTimeout bounds the wait for the next command on a connection
	// (0 = no limit). A connection that stays silent past it — idle, or
	// too slow to deliver its frame — is evicted and counted in INFO as
	// a slow_client_eviction.
	ReadTimeout time.Duration
	// WriteTimeout bounds one reply flush (0 = no limit). A client that
	// stops reading until the server's write blocks past it is evicted.
	WriteTimeout time.Duration

	// Logf, when non-nil, receives one line per lifecycle event
	// (listen, drain, forced closes, accept retries, panics).
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() {
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Sets == 0 {
		c.Sets = 1024
	}
	if c.Ways == 0 {
		c.Ways = 16
	}
}

// Server is one cpacached instance. Create with New, start with Serve
// or ListenAndServe, stop with Shutdown.
type Server struct {
	cfg    Config
	cache  *cpacache.Cache[string, []byte]
	auth   map[string]int  // password -> tenant id
	names  []string        // tenant id -> display name
	gate   bool            // AUTH required before data commands
	limits []tenantLimiter // nil when no rate limits configured

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining atomic.Bool // set under mu, read lock-free on hot paths

	wg          sync.WaitGroup // one per live connection
	startedAt   time.Time
	tenantConns []atomic.Int32 // connections bound per tenant
	nCommands   atomic.Uint64
	nConns      atomic.Uint64

	// Overload / self-healing counters, surfaced through INFO.
	nRejected     atomic.Uint64 // connections refused at a conn cap
	nRateLimited  atomic.Uint64 // commands refused with -BUSY
	nSlowEvicted  atomic.Uint64 // connections evicted on a deadline
	nPanics       atomic.Uint64 // per-connection panics recovered
	nAcceptErrors atomic.Uint64 // transient accept errors retried
	nOOMRejected  atomic.Uint64 // writes refused with -OOM under memory pressure
}

// New builds the cache and the server around it. The cache measures
// entry cost as key length + value length, so tenant byte budgets are
// resident-byte budgets.
func New(cfg Config) (*Server, error) {
	cfg.withDefaults()
	tenants := len(cfg.Tenants)
	if tenants == 0 {
		tenants = 1
	}
	opts := []cpacache.Option{
		cpacache.WithShards(cfg.Shards),
		cpacache.WithSets(cfg.Sets),
		cpacache.WithWays(cfg.Ways),
		cpacache.WithPolicy(cfg.Policy),
		cpacache.WithPartitions(tenants),
		cpacache.WithCost[string, []byte](func(k string, v []byte) uint64 {
			return uint64(len(k) + len(v))
		}),
	}
	if cfg.PolicyAutoSelect {
		opts = append(opts, cpacache.WithPolicyAutoSelect())
	}
	if cfg.DefaultTTL > 0 {
		opts = append(opts, cpacache.WithDefaultTTL(cfg.DefaultTTL))
	}
	if cfg.AutoRebalance > 0 {
		opts = append(opts, cpacache.WithAutoRebalance(cfg.AutoRebalance))
	}
	if cfg.MaxBytes > 0 {
		opts = append(opts, cpacache.WithMaxBytes(cfg.MaxBytes))
	}
	if cfg.HardBudgets {
		opts = append(opts, cpacache.WithHardBudgets())
	}
	if cfg.HighWatermark > 0 || cfg.LowWatermark > 0 {
		opts = append(opts, cpacache.WithPressureWatermarks(cfg.HighWatermark, cfg.LowWatermark))
	}
	cache, err := cpacache.New[string, []byte](opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		cache:       cache,
		auth:        make(map[string]int, tenants),
		names:       make([]string, tenants),
		conns:       make(map[net.Conn]struct{}),
		tenantConns: make([]atomic.Int32, tenants),
	}
	if cfg.RateLimitOps > 0 || cfg.RateLimitBytes > 0 {
		s.limits = make([]tenantLimiter, tenants)
		for i := range s.limits {
			s.limits[i].init(cfg.RateLimitOps, cfg.RateLimitBytes)
		}
	}
	s.names[0] = "default"
	quotas := make([]int, 0, tenants)
	budgets := make([]uint64, 0, tenants)
	var anyQuota, anyBudget bool
	for i, tc := range cfg.Tenants {
		name := tc.Name
		if name == "" {
			name = fmt.Sprintf("tenant%d", i)
		}
		s.names[i] = name
		if tc.Password == "" {
			if len(cfg.Tenants) > 1 {
				cache.Close()
				return nil, fmt.Errorf("server: tenant %q has no password; multi-tenant configs need AUTH to tell tenants apart", name)
			}
		} else {
			if _, dup := s.auth[tc.Password]; dup {
				cache.Close()
				return nil, fmt.Errorf("server: tenant %q reuses another tenant's password", name)
			}
			s.auth[tc.Password] = i
			s.gate = true
		}
		quotas = append(quotas, tc.Ways)
		budgets = append(budgets, tc.Budget)
		anyQuota = anyQuota || tc.Ways != 0
		anyBudget = anyBudget || tc.Budget != 0
	}
	if anyQuota {
		for i, q := range quotas {
			if q == 0 {
				cache.Close()
				return nil, fmt.Errorf("server: tenant %q has no way quota but others do; set all or none", s.names[i])
			}
		}
		if err := cache.SetQuotas(quotas); err != nil {
			cache.Close()
			return nil, err
		}
	}
	if anyBudget {
		if err := cache.SetBudgets(budgets); err != nil {
			cache.Close()
			return nil, err
		}
	}
	return s, nil
}

// Cache exposes the underlying cache (tests and embedding callers).
func (s *Server) Cache() *cpacache.Cache[string, []byte] { return s.cache }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener's address once Serve has been called
// (useful with a ":0" listener), or nil before that.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil on a drain-initiated stop and the terminal accept error
// otherwise. Transient accept errors (EMFILE pressure, injected
// faults) do not kill the loop: they are retried under exponential
// backoff, and only a closed listener — the drain signal — ends it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.startedAt = time.Now()
	s.mu.Unlock()
	s.logf("cpacached listening on %s", ln.Addr())
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			// Transient: back off (5ms..1s, doubling) and keep
			// accepting. A file-descriptor squeeze or a hostile burst
			// must not take the listener down for the tenants behind it.
			s.nAcceptErrors.Add(1)
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			s.logf("cpacached accept error (retrying in %v): %v", backoff, err)
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.rejectConn(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.nConns.Add(1)
		go s.handleConn(conn)
	}
}

const maxClientsMsg = "ERR max number of clients reached"

// oomMsg is redis's refusal for writes over maxmemory, byte-compatible
// so clients' OOM handling (retry, backoff, shed) works unchanged.
const oomMsg = "OOM command not allowed when used memory > 'maxmemory'"

// rejectConn answers an over-cap socket without blocking the accept
// loop: the error line goes out under a short deadline in its own
// goroutine, then the socket closes.
func (s *Server) rejectConn(conn net.Conn) {
	s.nRejected.Add(1)
	go func() {
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		conn.Write([]byte("-" + maxClientsMsg + "\r\n"))
		conn.Close()
	}()
}

// Shutdown drains the server: stop accepting, let every connection
// finish (and flush replies for) the commands it has already received,
// wake blocked readers, stop the cache's background goroutines. When
// ctx expires first, the stragglers are force-closed and ctx's error is
// returned; a clean drain returns nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		return nil
	}
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	// Wake every reader blocked in a recv: the deadline fails the next
	// read syscall, but data already buffered keeps parsing, so a
	// connection mid-pipeline finishes its batch before noticing.
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	n := len(s.conns)
	s.mu.Unlock()
	s.logf("cpacached draining %d connection(s)", n)

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		forced := len(s.conns)
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		s.logf("cpacached force-closed %d connection(s)", forced)
		<-done
		err = ctx.Err()
	}
	s.cache.Close()
	s.logf("cpacached drained")
	return err
}

// connState is the per-connection session: its tenant binding and the
// batch scratch MGET/MSET reuse across commands.
type connState struct {
	tenant int
	authed bool
	bound  bool // counted in tenantConns[tenant]
	quit   bool

	keys []string
	vals [][]byte
	oks  []bool
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	s.serveConn(conn)
}

// bindTenant counts the connection against a tenant's connection cap,
// or reports the tenant full. The increment-then-check keeps the cap
// exact without a lock.
func (s *Server) bindTenant(st *connState, tenant int) bool {
	n := s.tenantConns[tenant].Add(1)
	if max := s.cfg.MaxConnsPerTenant; max > 0 && int(n) > max {
		s.tenantConns[tenant].Add(-1)
		return false
	}
	st.tenant = tenant
	st.bound = true
	return true
}

// flush writes out the connection's buffered replies, under the write
// deadline when one is configured. A flush that times out means the
// client stopped reading while the server's buffers filled — that
// connection is a slow client and the timeout is its eviction.
func (s *Server) flush(conn net.Conn, w *resp.Writer) error {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	err := w.Flush()
	if err != nil && isTimeout(err) && !s.draining.Load() {
		s.nSlowEvicted.Add(1)
		s.logf("cpacached evicting slow client %s: reply flush exceeded %v", conn.RemoteAddr(), s.cfg.WriteTimeout)
	}
	return err
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// serveConn runs one session's read-dispatch-flush loop. Its deferred
// recover is the panic bulkhead: a panic while serving one connection
// is counted, answered with -ERR, and costs exactly that connection —
// never the process and never another tenant's session.
func (s *Server) serveConn(conn net.Conn) {
	st := &connState{authed: !s.gate}
	defer func() {
		if st.bound {
			s.tenantConns[st.tenant].Add(-1)
		}
		if p := recover(); p != nil {
			s.nPanics.Add(1)
			s.logf("cpacached recovered panic serving %s (connection dropped): %v\n%s",
				conn.RemoteAddr(), p, debug.Stack())
			// Best-effort last reply on a fresh writer: the session's
			// writer may hold a half-rendered frame.
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			pw := resp.NewWriter(conn)
			pw.Error("ERR internal error")
			pw.Flush()
		}
	}()
	w := resp.NewWriter(conn)
	if !s.gate && !s.bindTenant(st, 0) {
		s.nRejected.Add(1)
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		w.Error(maxClientsMsg)
		w.Flush()
		return
	}
	r := resp.NewReaderLimits(conn, s.cfg.Limits)
	for {
		// Arm the idle/read deadline — except while draining, when the
		// immediate deadline Shutdown installed must stay in force.
		if s.cfg.ReadTimeout > 0 && !s.draining.Load() {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		args, err := r.ReadCommand()
		if err != nil {
			if resp.IsProtocol(err) {
				// Malformed frame: the parser resynchronized, the
				// session continues — one error reply per bad frame.
				w.Error(err.Error())
				if r.Buffered() == 0 && s.flush(conn, w) != nil {
					return
				}
				continue
			}
			if isTimeout(err) && !s.draining.Load() {
				// Slow or idle client: reclaim the connection. The
				// write side still works, so pending replies flush.
				s.nSlowEvicted.Add(1)
				s.logf("cpacached evicting slow client %s: no command in %v", conn.RemoteAddr(), s.cfg.ReadTimeout)
			}
			// EOF, client reset, eviction, or the drain deadline: flush
			// whatever replies are pending and close.
			s.flush(conn, w)
			return
		}
		s.nCommands.Add(1)
		s.dispatch(st, w, args)
		// Flush-on-idle: within a pipelined burst the replies stay
		// buffered; the last command of the burst pays the one write.
		if r.Buffered() == 0 {
			if s.flush(conn, w) != nil {
				return
			}
		}
		if st.quit {
			return
		}
	}
}

// commandName uppercases args[0] in place (command words are ASCII) and
// returns it as a string. The in-place mutation is safe: the parser
// allocated the slice for this command alone.
func commandName(arg []byte) string {
	for i, c := range arg {
		if 'a' <= c && c <= 'z' {
			arg[i] = c - 'a' + 'A'
		}
	}
	return string(arg)
}

func (s *Server) dispatch(st *connState, w *resp.Writer, args [][]byte) {
	cmd := commandName(args[0])
	switch cmd {
	case "PING":
		if len(args) > 1 {
			w.Bulk(args[1])
		} else {
			w.SimpleString("PONG")
		}
		return
	case "QUIT":
		w.SimpleString("OK")
		st.quit = true
		return
	case "COMMAND":
		// redis-cli probes COMMAND DOCS on connect; an empty array
		// satisfies it without implementing introspection.
		w.ArrayHeader(0)
		return
	case "AUTH":
		s.cmdAuth(st, w, args)
		return
	}
	if !st.authed {
		w.Error("NOAUTH Authentication required.")
		return
	}
	// Token-bucket admission: one op token plus the command's payload
	// bytes, charged to the connection's tenant. INFO and CONFIG are
	// exempt — monitoring an overloaded tenant must keep working.
	if s.limits != nil && cmd != "INFO" && cmd != "CONFIG" {
		if !s.limits[st.tenant].admit(time.Now().UnixNano(), argsBytes(args)) {
			s.nRateLimited.Add(1)
			w.Error("BUSY rate limit exceeded, retry later")
			return
		}
	}
	// Memory-pressure gate: at or above the high watermark, writes are
	// refused the way redis refuses them at maxmemory, while reads,
	// deletes, TTL management and monitoring keep working — deletes and
	// expiry are exactly what drains the pressure.
	if (cmd == "SET" || cmd == "MSET") && s.cache.Pressure() == cpacache.PressureOOM {
		s.nOOMRejected.Add(1)
		w.Error(oomMsg)
		return
	}
	switch cmd {
	case "GET":
		s.cmdGet(st, w, args)
	case "SET":
		s.cmdSet(st, w, args)
	case "MGET":
		s.cmdMGet(st, w, args)
	case "MSET":
		s.cmdMSet(st, w, args)
	case "DEL":
		s.cmdDel(w, args)
	case "EXISTS":
		s.cmdExists(w, args)
	case "TTL":
		s.cmdTTL(w, args, time.Second)
	case "PTTL":
		s.cmdTTL(w, args, time.Millisecond)
	case "EXPIRE":
		s.cmdExpire(w, args, time.Second)
	case "PEXPIRE":
		s.cmdExpire(w, args, time.Millisecond)
	case "PERSIST":
		s.cmdPersist(w, args)
	case "CONFIG":
		s.cmdConfig(w, args)
	case "INFO":
		w.BulkString(s.infoText())
	case "DEBUG":
		s.cmdDebug(w, args)
	default:
		w.Error(fmt.Sprintf("ERR unknown command '%s'", cmd))
	}
}

func wrongArity(w *resp.Writer, cmd string) {
	w.Error(fmt.Sprintf("ERR wrong number of arguments for '%s' command", cmd))
}

func (s *Server) cmdAuth(st *connState, w *resp.Writer, args [][]byte) {
	if len(args) != 2 {
		wrongArity(w, "auth")
		return
	}
	if !s.gate {
		w.Error("ERR Client sent AUTH, but no password is set")
		return
	}
	tenant, ok := s.auth[string(args[1])]
	if !ok {
		w.Error("WRONGPASS invalid password")
		return
	}
	if !st.bound || st.tenant != tenant {
		if st.bound {
			s.tenantConns[st.tenant].Add(-1)
			st.bound = false
		}
		if !s.bindTenant(st, tenant) {
			// The tenant's connection cap is full: refuse the binding
			// and end the session so the slot is not half-claimed.
			s.nRejected.Add(1)
			w.Error(maxClientsMsg)
			st.authed = false
			st.quit = true
			return
		}
	}
	st.tenant = tenant
	st.authed = true
	w.SimpleString("OK")
}

// cmdDebug implements the redis DEBUG subcommands the robustness suite
// leans on: PANIC panics the connection's goroutine — proving the
// panic bulkhead end-to-end against a live server — and SLEEP stalls
// the handler to simulate a slow command.
func (s *Server) cmdDebug(w *resp.Writer, args [][]byte) {
	if len(args) < 2 {
		wrongArity(w, "debug")
		return
	}
	switch sub := commandName(args[1]); sub {
	case "PANIC":
		panic("DEBUG PANIC requested by client")
	case "SLEEP":
		if len(args) != 3 {
			wrongArity(w, "debug|sleep")
			return
		}
		secs, err := strconv.ParseFloat(string(args[2]), 64)
		if err != nil || secs < 0 || secs > 60 {
			w.Error("ERR invalid sleep time")
			return
		}
		time.Sleep(time.Duration(secs * float64(time.Second)))
		w.SimpleString("OK")
	default:
		w.Error(fmt.Sprintf("ERR DEBUG %s is not supported", sub))
	}
}

func (s *Server) cmdGet(st *connState, w *resp.Writer, args [][]byte) {
	if len(args) != 2 {
		wrongArity(w, "get")
		return
	}
	if v, ok := s.cache.GetTenant(st.tenant, string(args[1])); ok {
		w.Bulk(v)
	} else {
		w.Null()
	}
}

func (s *Server) cmdSet(st *connState, w *resp.Writer, args [][]byte) {
	if len(args) < 3 {
		wrongArity(w, "set")
		return
	}
	key, val := string(args[1]), args[2]
	ttl := time.Duration(0)
	haveTTL := false
	for i := 3; i < len(args); i++ {
		opt := commandName(args[i])
		switch opt {
		case "EX", "PX":
			if haveTTL || i+1 >= len(args) {
				w.Error("ERR syntax error")
				return
			}
			n, err := strconv.ParseInt(string(args[i+1]), 10, 64)
			if err != nil || n <= 0 {
				w.Error("ERR invalid expire time in 'set' command")
				return
			}
			if opt == "EX" {
				ttl = time.Duration(n) * time.Second
			} else {
				ttl = time.Duration(n) * time.Millisecond
			}
			haveTTL = true
			i++
		default:
			w.Error("ERR syntax error")
			return
		}
	}
	var err error
	if haveTTL {
		err = s.cache.SetTenantTTL(st.tenant, key, val, ttl)
	} else {
		err = s.cache.SetTenant(st.tenant, key, val)
	}
	if err != nil {
		// The only insert error is an entry too large for its budget or
		// the global cap: no amount of eviction can admit it.
		s.nOOMRejected.Add(1)
		w.Error(oomMsg)
		return
	}
	w.SimpleString("OK")
}

func (s *Server) cmdMGet(st *connState, w *resp.Writer, args [][]byte) {
	if len(args) < 2 {
		wrongArity(w, "mget")
		return
	}
	n := len(args) - 1
	st.keys = st.keys[:0]
	for _, a := range args[1:] {
		st.keys = append(st.keys, string(a))
	}
	if cap(st.vals) < n {
		st.vals = make([][]byte, n)
		st.oks = make([]bool, n)
	}
	vals, oks := st.vals[:n], st.oks[:n]
	s.cache.GetBatch(st.tenant, st.keys, vals, oks)
	w.ArrayHeader(n)
	for i := range oks {
		if oks[i] {
			w.Bulk(vals[i])
		} else {
			w.Null()
		}
		vals[i] = nil // drop the value reference from the scratch
	}
	clearStrings(st.keys)
}

func (s *Server) cmdMSet(st *connState, w *resp.Writer, args [][]byte) {
	if len(args) < 3 || len(args)%2 != 1 {
		wrongArity(w, "mset")
		return
	}
	n := (len(args) - 1) / 2
	st.keys = st.keys[:0]
	if cap(st.vals) < n {
		st.vals = make([][]byte, n)
		st.oks = make([]bool, n)
	}
	vals := st.vals[:n]
	for i := 0; i < n; i++ {
		st.keys = append(st.keys, string(args[1+2*i]))
		vals[i] = args[2+2*i]
	}
	err := s.cache.SetBatch(st.tenant, st.keys, vals)
	clear(vals)
	clearStrings(st.keys)
	if err != nil {
		// Oversized pairs were skipped; the admissible rest of the batch
		// is applied, matching per-key SET semantics.
		s.nOOMRejected.Add(1)
		w.Error(oomMsg)
		return
	}
	w.SimpleString("OK")
}

// clearStrings drops the string references held by a scratch slice so a
// pooled session does not pin freed keys.
func clearStrings(ss []string) {
	for i := range ss {
		ss[i] = ""
	}
}

// cmdConfig answers the CONFIG GET parameters that redis load
// generators (memtier_benchmark, redis-benchmark) and clients probe on
// connect. maxmemory reports the real -max-bytes cap and
// maxmemory-policy the real write-pressure behavior — allkeys-lru when
// the cap evicts on write, noeviction when the server is uncapped —
// so a tool's capacity planning sees the truth instead of "0" (the old
// stub's answer, which read as "unlimited" on a capped server). save
// and appendonly keep their "no persistence" stubs. Unmatched
// parameters get an empty array, as redis replies for unknown names;
// every other CONFIG subcommand is refused — the server's real
// configuration surface is its process flags.
func (s *Server) cmdConfig(w *resp.Writer, args [][]byte) {
	if len(args) < 2 {
		wrongArity(w, "config")
		return
	}
	if sub := commandName(args[1]); sub != "GET" {
		w.Error(fmt.Sprintf("ERR CONFIG %s is not supported", sub))
		return
	}
	if len(args) != 3 {
		wrongArity(w, "config|get")
		return
	}
	policy := "noeviction"
	if s.cache.MaxBytes() > 0 {
		policy = "allkeys-lru"
	}
	stub := [...][2]string{
		{"maxmemory", strconv.FormatUint(s.cache.MaxBytes(), 10)},
		{"maxmemory-policy", policy},
		{"save", ""},
		{"appendonly", "no"},
	}
	pattern := strings.ToLower(string(args[2]))
	matched := make([][2]string, 0, len(stub))
	for _, kv := range stub {
		if pattern == "*" || pattern == kv[0] {
			matched = append(matched, kv)
		}
	}
	w.ArrayHeader(2 * len(matched))
	for _, kv := range matched {
		w.BulkString(kv[0])
		w.BulkString(kv[1])
	}
}

func (s *Server) cmdDel(w *resp.Writer, args [][]byte) {
	if len(args) < 2 {
		wrongArity(w, "del")
		return
	}
	n := int64(0)
	for _, a := range args[1:] {
		if s.cache.Delete(string(a)) {
			n++
		}
	}
	w.Int(n)
}

func (s *Server) cmdExists(w *resp.Writer, args [][]byte) {
	if len(args) < 2 {
		wrongArity(w, "exists")
		return
	}
	n := int64(0)
	for _, a := range args[1:] {
		if _, _, present := s.cache.TTL(string(a)); present {
			n++
		}
	}
	w.Int(n)
}

// cmdTTL implements TTL (unit = time.Second) and PTTL (time.Millisecond)
// with redis's reply convention: -2 when the key is absent, -1 when it
// has no deadline, else the remaining time rounded up to the unit (so a
// freshly SET ... EX 1 reports 1, not 0).
func (s *Server) cmdTTL(w *resp.Writer, args [][]byte, unit time.Duration) {
	if len(args) != 2 {
		wrongArity(w, "ttl")
		return
	}
	remaining, hasTTL, present := s.cache.TTL(string(args[1]))
	switch {
	case !present:
		w.Int(-2)
	case !hasTTL:
		w.Int(-1)
	default:
		w.Int(int64((remaining + unit - 1) / unit))
	}
}

// maxTTL caps client-supplied expire times: far enough out to mean
// "never" (≈100 years), small enough that now + ttl cannot overflow the
// cache clock's int64 nanoseconds.
const maxTTL = 100 * 365 * 24 * time.Hour

// cmdExpire implements EXPIRE (unit = time.Second) and PEXPIRE
// (time.Millisecond): 1 when the deadline was set, 0 when the key is
// absent (or already lapsed). A non-positive timeout deletes the key as
// redis does — here by arming an already-lapsed deadline, so the line
// dies through the normal expiry path and is counted as an expiration.
func (s *Server) cmdExpire(w *resp.Writer, args [][]byte, unit time.Duration) {
	if len(args) != 3 {
		wrongArity(w, "expire")
		return
	}
	n, err := strconv.ParseInt(string(args[2]), 10, 64)
	if err != nil {
		w.Error("ERR value is not an integer or out of range")
		return
	}
	var ttl time.Duration
	switch {
	case n <= 0:
		ttl = -time.Nanosecond
	case n > int64(maxTTL/unit):
		ttl = maxTTL
	default:
		ttl = time.Duration(n) * unit
	}
	if s.cache.SetTTL(string(args[1]), ttl) {
		w.Int(1)
	} else {
		w.Int(0)
	}
}

// cmdPersist implements PERSIST: 1 when a deadline was removed, 0 when
// the key is absent or carried none.
func (s *Server) cmdPersist(w *resp.Writer, args [][]byte) {
	if len(args) != 2 {
		wrongArity(w, "persist")
		return
	}
	key := string(args[1])
	if _, hasTTL, present := s.cache.TTL(key); !present || !hasTTL {
		w.Int(0)
		return
	}
	if s.cache.SetTTL(key, 0) {
		w.Int(1)
	} else {
		w.Int(0) // lapsed between the probe and the pin
	}
}

// infoText renders the INFO reply from a cache Snapshot: redis-style
// "# Section" headers with key:value lines, one frame of coherent
// counters per call.
func (s *Server) infoText() string {
	snap := s.cache.Snapshot()
	s.mu.Lock()
	open := len(s.conns)
	started := s.startedAt
	s.mu.Unlock()
	uptime := time.Duration(0)
	if !started.IsZero() {
		uptime = time.Since(started)
	}

	var b []byte
	line := func(format string, args ...any) {
		b = fmt.Appendf(b, format, args...)
		b = append(b, '\r', '\n')
	}
	line("# Server")
	line("uptime_seconds:%d", int64(uptime.Seconds()))
	line("connected_clients:%d", open)
	line("total_connections_received:%d", s.nConns.Load())
	line("total_commands_processed:%d", s.nCommands.Load())
	line("rejected_connections:%d", s.nRejected.Load())
	line("rate_limited_ops:%d", s.nRateLimited.Load())
	line("slow_client_evictions:%d", s.nSlowEvicted.Load())
	line("panics_recovered:%d", s.nPanics.Load())
	line("accept_errors:%d", s.nAcceptErrors.Load())
	line("")
	line("# Cache")
	line("policy:%s", s.cfg.Policy)
	line("policy_autoselect:%d", boolBit(s.cfg.PolicyAutoSelect))
	line("policy_switches:%d", snap.PolicySwitches)
	line("shards:%d", s.cfg.Shards)
	line("sets_per_shard:%d", s.cfg.Sets)
	line("ways:%d", s.cfg.Ways)
	line("entries:%d", snap.Len)
	line("capacity:%d", snap.Capacity)
	line("rebalances:%d", snap.Rebalances)
	line("rebalances_skipped:%d", snap.RebalancesSkipped)
	line("sweep_expired:%d", snap.SweepExpired)
	line("sweep_skipped:%d", snap.SweepSkipped)
	line("")
	line("# Memory")
	line("used_memory:%d", snap.UsedBytes)
	line("maxmemory:%d", snap.MaxBytes)
	line("evicted_bytes:%d", snap.BudgetEvictedBytes)
	line("oom_rejected_ops:%d", s.nOOMRejected.Load())
	line("pressure_state:%s", snap.Pressure)
	line("")
	line("# Tenants")
	for t, ts := range snap.Tenants {
		budget := uint64(0)
		if snap.Budgets != nil {
			budget = snap.Budgets[t]
		}
		line("tenant%d:name=%s,policy=%s,ways=%d,budget_bytes=%d,hits=%d,misses=%d,hit_rate=%.4f,evictions=%d,budget_evictions=%d,expirations=%d,bytes=%d",
			t, s.names[t], snap.Policies[t], snap.Quotas[t], budget,
			ts.Hits, ts.Misses, ts.HitRate(), ts.Evictions, ts.BudgetEvictions, ts.Expirations, ts.Bytes)
	}
	return string(b)
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ParsePolicy maps a policy name (case-insensitive; any plru.Kind:
// lru, nru, bt, random, awrp, arc) to its plru.Kind — the -policy
// flag's parser, here so cmd and tests share it.
func ParsePolicy(name string) (plru.Kind, error) {
	kinds := plru.Kinds()
	known := make([]string, len(kinds))
	for i, k := range kinds {
		if strings.EqualFold(name, k.String()) {
			return k, nil
		}
		known[i] = k.String()
	}
	return 0, fmt.Errorf("unknown policy %q (want one of %s)", name, strings.Join(known, ", "))
}
